// Command simd serves the simulator over HTTP: POST /run takes a (machine
// config, workload, params) request and answers with the run's counters,
// memoized under the canonical content key of the configuration. The service
// is built to survive misbehaving clients and poisoned sessions — see
// internal/simsrv and docs/ROBUSTNESS.md ("Service failure model").
//
//	simd -addr :8080 -workers 4 -queue 8 -max-deadline 1m \
//	     -cache-dir /var/cache/hugeomp -mem-budget 512MB -template-budget 2GB
//
// With -cache-dir, results persist across restarts in a crash-safe shared
// store (internal/memo/diskcache) that any number of simd, sweep and chaos
// processes may point at concurrently; -mem-budget bounds the summed
// estimated footprint of concurrently running sessions and -template-budget
// bounds the warmed-template pool (LRU beyond it rebuild cold).
//
// On SIGINT/SIGTERM the server drains: new requests get 503 with a
// Retry-After, in-flight sessions finish (or hit their deadlines), then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hugeomp/internal/simsrv"
	"hugeomp/internal/units"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
	defaultDeadline := flag.Duration("default-deadline", 30*time.Second, "deadline for requests that name none")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on any request's deadline budget")
	memoCap := flag.Int("memo-capacity", 4096, "result cache entries (0 = unbounded)")
	allowInject := flag.Bool("allow-inject", false, "enable test-only fault injection requests")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight sessions")
	cacheDir := flag.String("cache-dir", "", "shared on-disk result cache directory (empty = memory only)")
	memBudget := flag.String("mem-budget", "0", "footprint budget for concurrent sessions, e.g. 512MB (0 = unbounded)")
	tmplBudget := flag.String("template-budget", "0", "warmed-template pool byte budget, e.g. 2GB (0 = unbounded)")
	flag.Parse()

	memBytes, err := units.ParseBytes(*memBudget)
	if err != nil {
		log.Fatalf("simd: -mem-budget: %v", err)
	}
	tmplBytes, err := units.ParseBytes(*tmplBudget)
	if err != nil {
		log.Fatalf("simd: -template-budget: %v", err)
	}

	srv, err := simsrv.NewServer(simsrv.Config{
		Workers:         *workers,
		Queue:           *queue,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		MemoCapacity:    *memoCap,
		AllowInject:     *allowInject,
		CacheDir:        *cacheDir,
		MemBudget:       memBytes,
		TemplateBudget:  tmplBytes,
	})
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go serve(httpSrv, errc)
	log.Printf("simd: serving on %s (workers=%d queue=%d max-deadline=%s inject=%v cache-dir=%q mem-budget=%s template-budget=%s)",
		*addr, *workers, *queue, *maxDeadline, *allowInject, *cacheDir,
		units.HumanBytes(memBytes), units.HumanBytes(tmplBytes))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("simd: %v", err)
	case sig := <-sigc:
		log.Printf("simd: %s: draining", sig)
	}

	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("simd: shutdown: %v", err)
	}
	srv.Close()
	log.Printf("simd: drained")
}

// serve runs the HTTP listener as this command's one goroutine, under the
// panic boundary the simlint panicboundary rule demands: a listener panic
// becomes an orderly fatal error instead of a bare process crash.
//
//simlint:panicboundary
func serve(s *http.Server, errc chan<- error) {
	defer func() {
		if r := recover(); r != nil {
			errc <- fmt.Errorf("listener panicked: %v", r)
		}
	}()
	if err := s.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		errc <- err
	}
}
