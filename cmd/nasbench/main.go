// Command nasbench sweeps the whole NAS suite across machines, page
// policies and thread counts and prints a comparison table with the
// improvement of 2 MB over 4 KB pages per configuration.
//
// Usage:
//
//	nasbench -class W
//	nasbench -class A -apps CG,SP -machines Opteron270
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hugeomp/internal/bench"
	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nasbench: ")
	class := flag.String("class", "W", "problem class: T, S, W or A")
	apps := flag.String("apps", "", "comma-separated subset of BT,CG,FT,SP,MG (default all)")
	alt := flag.String("alt", "2M", "policy compared against the 4KB baseline: 2M, mixed or transparent")
	machines := flag.String("machines", "", "comma-separated subset of Opteron270,XeonHT (default both)")
	flag.Parse()

	cl, err := npb.ParseClass(*class)
	if err != nil {
		log.Fatal(err)
	}
	appList := npb.Names()
	if *apps != "" {
		appList = strings.Split(*apps, ",")
	}
	modelList := machine.Models()
	if *machines != "" {
		modelList = nil
		for _, name := range strings.Split(*machines, ",") {
			m, ok := machine.ModelByName(name)
			if !ok {
				log.Fatalf("unknown machine %q", name)
			}
			modelList = append(modelList, m)
		}
	}

	var altPolicy core.PagePolicy
	switch *alt {
	case "2M", "2m":
		altPolicy = core.Policy2M
	case "mixed":
		altPolicy = core.PolicyMixed
	case "transparent":
		altPolicy = core.PolicyTransparent
	default:
		log.Fatalf("unknown alt policy %q", *alt)
	}

	fmt.Printf("%-6s%-12s%5s%12s%16s%12s%16s\n",
		"App", "Machine", "Thr", "4KB (s)", altPolicy.String()+" (s)", "gain", "walk-reduction")
	for _, app := range appList {
		for _, model := range modelList {
			for _, threads := range bench.Fig4Threads(model) {
				var secs [2]float64
				var walks [2]uint64
				for i, policy := range []core.PagePolicy{core.Policy4K, altPolicy} {
					k, err := npb.New(app)
					if err != nil {
						log.Fatal(err)
					}
					res, err := npb.Run(k, npb.RunConfig{
						Model: model, Threads: threads, Policy: policy, Class: cl,
					})
					if err != nil {
						log.Fatalf("%s on %s/%d: %v", app, model.Name, threads, err)
					}
					secs[i] = res.Seconds
					walks[i] = res.Counters.DTLBWalks()
				}
				red := "-"
				if walks[1] > 0 {
					red = fmt.Sprintf("%.0fx", float64(walks[0])/float64(walks[1]))
				}
				fmt.Printf("%-6s%-12s%5d%12.4f%16.4f%11.1f%%%16s\n",
					app, model.Name, threads, secs[0], secs[1],
					stats.ImprovementPct(secs[0], secs[1]), red)
			}
		}
	}
}
