// Command sweep performs a sensitivity analysis of the reproduction's
// conclusions against one cost-model parameter: it varies the parameter
// across a range and reports how the large-page gain of a benchmark responds.
// This answers "does the headline result depend on a lucky constant?" — the
// CG gain should vary smoothly with the page-walk cost and vanish as the
// walk becomes free.
//
// Usage:
//
//	sweep -param walkRefCyc -values 25,50,100,150,200 -app CG -class W
//
// With -cache-dir, cell results are shared through the same crash-safe
// on-disk store the simd service uses: repeated sweeps (and concurrent simd
// or chaos -serve processes on the same directory) answer previously
// simulated cells from disk instead of recomputing them.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/memo"
	"hugeomp/internal/memo/diskcache"
	"hugeomp/internal/npb"
	"hugeomp/internal/par"
	"hugeomp/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		param    = flag.String("param", "walkRefCyc", "cost parameter: walkRefCyc, memCyc, streamCyc, flushCyc or msgCyc")
		values   = flag.String("values", "25,50,100,150,200", "comma-separated parameter values")
		app      = flag.String("app", "CG", "benchmark")
		class    = flag.String("class", "W", "problem class")
		model    = flag.String("machine", "Opteron270", "platform")
		threads  = flag.Int("threads", 4, "thread count")
		cacheDir = flag.String("cache-dir", "", "shared on-disk result cache directory (empty = memory only)")
	)
	flag.Parse()

	cl, err := npb.ParseClass(*class)
	if err != nil {
		log.Fatal(err)
	}
	base, ok := machine.ModelByName(*model)
	if !ok {
		log.Fatalf("unknown machine %q", *model)
	}

	var vals []uint64
	for _, tok := range strings.Split(*values, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			log.Fatalf("bad value %q: %v", tok, err)
		}
		vals = append(vals, v)
	}

	// The cost parameter only matters at run time, so all cells of one policy
	// share a single warmed snapshot: the system and kernel are constructed
	// once per policy, then every cell forks the snapshot and applies its
	// swept Model at fork time. Identical (config, seed) grid points — e.g.
	// repeated values in -values — dedupe through the result memo cache and
	// simulate exactly once.
	policies := []core.PagePolicy{core.Policy4K, core.Policy2M}
	warms := make(map[core.PagePolicy]*npb.Warm, len(policies))
	for _, p := range policies {
		w, err := npb.NewWarm(*app, npb.RunConfig{
			Model: base, Threads: *threads, Policy: p, Class: cl,
		})
		if err != nil {
			log.Fatal(err)
		}
		warms[p] = w
	}
	cache := memo.New()
	var disk *diskcache.Store
	if *cacheDir != "" {
		disk, err = diskcache.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		cache.SetBacking(disk)
	}

	// Every cell forks an independent system, so the sweep fans out over the
	// bounded worker pool; results come back in cell order, so the printed
	// table is deterministic.
	secs, err := par.Map(len(vals)*len(policies), func(i int) (float64, error) {
		m := base
		if err := setCost(&m.Costs, *param, vals[i/len(policies)]); err != nil {
			return 0, err
		}
		cfg := npb.RunConfig{
			Model: m, Threads: *threads, Policy: policies[i%len(policies)], Class: cl,
		}
		// The config is the seed: the simulation is bit-deterministic, so
		// the canonical hash of the run config keys the result completely —
		// npb.RunKey, the same address every other driver uses for this run.
		var res npb.Result
		if _, err := cache.GetOrCompute(npb.RunKey(*app, cfg), func() (any, error) {
			return warms[cfg.Policy].Run(cfg)
		}, &res); err != nil {
			return 0, err
		}
		return res.Seconds, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sensitivity of %s's 2MB-page gain to %s (%s, %d threads, class %s)\n\n",
		*app, *param, base.Name, *threads, cl)
	fmt.Printf("%12s%12s%12s%12s\n", *param, "4KB (s)", "2MB (s)", "gain")
	for i, v := range vals {
		s4, s2 := secs[i*2], secs[i*2+1]
		fmt.Printf("%12d%11.4fs%11.4fs%11.1f%%\n",
			v, s4, s2, stats.ImprovementPct(s4, s2))
	}
	hits, misses := cache.Stats()
	fmt.Printf("\nmemo: %d cells, %d memo misses, %d deduped (hit)\n",
		len(vals)*len(policies), misses, hits)
	if disk != nil {
		// A memo miss that hit disk was computed by an earlier process (or an
		// earlier identical sweep); disk misses were simulated here and
		// published for the next one.
		ds := disk.Stats()
		fmt.Printf("disk:  %s: %d cross-process hits, %d simulated+published, %d corrupt entries skipped\n",
			*cacheDir, ds.Hits, ds.Misses, ds.CorruptSkips)
	}
}

func setCost(c *machine.Costs, name string, v uint64) error {
	switch name {
	case "walkRefCyc":
		c.WalkRefCyc = v
	case "memCyc":
		c.MemCyc = v
	case "streamCyc":
		c.StreamCyc = v
	case "flushCyc":
		c.FlushCyc = v
	case "msgCyc":
		c.MsgCyc = v
	default:
		return fmt.Errorf("unknown parameter %q", name)
	}
	return nil
}
