package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
	"hugeomp/internal/simsrv"
)

// serveSoak is chaos's service-mode campaign: it stands up an in-process simd
// server on a loopback port and drives it with a seeded stream of client
// behavior — honest runs, duplicate bursts, mid-run disconnects, oversized
// bodies, malformed requests, tiny deadlines, and injected session panics —
// then holds the service to its contract:
//
//   - every answered result is bit-identical to every other answer for the
//     same configuration, across cache hits, evictions-and-recomputes, and
//     runs that happened after panics and aborts (zero cross-session
//     contamination);
//   - a sample of answers matches a cold in-process npb.Run of the same
//     config exactly;
//   - the typed counters conserve: every admitted request is accounted to
//     exactly one outcome, the pool backstop never fires, and no template was
//     quarantined (the shared snapshots survived every poisoned fork).
//
// The memo is kept deliberately tiny so the soak's identical requests are
// periodically evicted and re-simulated — byte-equality across the campaign
// is then a statement about the simulator's determinism, not about a cache
// echoing one result back. With cacheDir set, the soak additionally exercises
// the shared on-disk layer: memo evictions refill from disk instead of
// re-simulating, and a second soak on the same directory — a separate process
// — must answer from cross-process hits while still matching the cold
// ground-truth sample bit-for-bit.
func serveSoak(ops int, seed uint64, verbose bool, cacheDir string) error {
	srv, err := simsrv.NewServer(simsrv.Config{
		Workers:      4,
		Queue:        8,
		AllowInject:  true,
		MaxBodyBytes: 2048,
		MemoCapacity: 4,
		CacheDir:     cacheDir,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		_ = httpSrv.Serve(ln)
	}()
	defer func() {
		srv.Drain()
		_ = httpSrv.Shutdown(context.Background())
		srv.Close()
	}()
	base := "http://" + ln.Addr().String()
	hc := &http.Client{}

	cfgs := soakConfigs()
	// first-seen result bytes per config index: the reference every later
	// answer for that config must reproduce byte-for-byte.
	seen := make(map[int][]byte)
	var nRuns, nDups, nDrops, nBad, nBig, nPanics, nDeadlines int

	record := func(i int, body []byte) error {
		res, err := resultBytes(body)
		if err != nil {
			return err
		}
		if prev, ok := seen[i]; ok {
			if !bytes.Equal(prev, res) {
				return fmt.Errorf("config %d answered differently across the soak:\nfirst: %s\nnow:   %s",
					i, prev, res)
			}
		} else {
			seen[i] = res
		}
		return nil
	}

	s := seed
	for op := 0; op < ops; op++ {
		i := int(mix(&s) % uint64(len(cfgs)))
		switch mix(&s) % 8 {
		case 0, 1, 2: // honest run
			nRuns++
			code, body, err := post(hc, base, cfgs[i].req)
			if err != nil {
				return fmt.Errorf("op %d run: %w", op, err)
			}
			if code != http.StatusOK {
				return fmt.Errorf("op %d run: %d %s", op, code, body)
			}
			if err := record(i, body); err != nil {
				return err
			}
		case 3: // duplicate burst: concurrent identical requests
			nDups++
			const burst = 3
			type ans struct {
				code int
				body []byte
				err  error
			}
			ch := make(chan ans, burst)
			for j := 0; j < burst; j++ {
				go func() {
					code, body, err := post(hc, base, cfgs[i].req)
					ch <- ans{code, body, err}
				}()
			}
			for j := 0; j < burst; j++ {
				a := <-ch
				if a.err != nil {
					return fmt.Errorf("op %d dup: %w", op, a.err)
				}
				if a.code != http.StatusOK {
					return fmt.Errorf("op %d dup: %d %s", op, a.code, a.body)
				}
				if err := record(i, a.body); err != nil {
					return err
				}
			}
		case 4: // mid-run disconnect: the client walks away almost immediately
			nDrops++
			req := cfgs[i].req
			req.Iterations = 400 // long enough that the disconnect lands mid-run
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			_, _, _ = postCtx(ctx, hc, base, req) // outcome irrelevant; the server must survive it
			cancel()
		case 5: // malformed and unknown-field requests
			nBad++
			for _, raw := range []string{`{"kernel":`, `{"kernel":"CG","bogus":1}`, `{"kernel":"XX","class":"T","model":"Opteron270","threads":1,"policy":"4KB"}`} {
				code, body, err := postRaw(hc, base, raw)
				if err != nil {
					return fmt.Errorf("op %d bad: %w", op, err)
				}
				if code != http.StatusBadRequest {
					return fmt.Errorf("op %d bad: %d %s, want 400", op, code, body)
				}
			}
		case 6: // oversized body
			nBig++
			code, body, err := postRaw(hc, base, `{"kernel":"CG","junk":"`+strings.Repeat("x", 4096)+`"}`)
			if err != nil {
				return fmt.Errorf("op %d big: %w", op, err)
			}
			if code != http.StatusRequestEntityTooLarge {
				return fmt.Errorf("op %d big: %d %s, want 413", op, code, body)
			}
		default: // injected panic or starved deadline
			if mix(&s)%2 == 0 {
				nPanics++
				req := cfgs[i].req
				req.Inject = "panic"
				code, body, err := post(hc, base, req)
				if err != nil {
					return fmt.Errorf("op %d panic: %w", op, err)
				}
				if code != http.StatusInternalServerError {
					return fmt.Errorf("op %d panic: %d %s, want 500", op, code, body)
				}
			} else {
				nDeadlines++
				req := cfgs[i].req
				req.Iterations = 400
				req.DeadlineMS = 1
				code, body, err := post(hc, base, req)
				if err != nil {
					return fmt.Errorf("op %d deadline: %w", op, err)
				}
				// 504 when the budget dies mid-run; 200 if the box outran 1 ms.
				if code != http.StatusGatewayTimeout && code != http.StatusOK {
					return fmt.Errorf("op %d deadline: %d %s", op, code, body)
				}
			}
		}
		if verbose && (op+1)%50 == 0 {
			log.Printf("serve soak: %d/%d ops", op+1, ops)
		}
	}

	// The server took the whole campaign: it must still be healthy, ...
	resp, err := hc.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz after soak: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz after soak: %d", resp.StatusCode)
	}

	// ... every config it ever answered must still answer byte-identically
	// (retries are idempotent even though panics and aborts happened in
	// between, and the tiny memo guarantees many of these are fresh
	// simulations off the shared template), ...
	for i := range seen {
		code, body, err := post(hc, base, cfgs[i].req)
		if err != nil {
			return fmt.Errorf("final retry %d: %w", i, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("final retry %d: %d %s", i, code, body)
		}
		if err := record(i, body); err != nil {
			return fmt.Errorf("post-soak contamination: %w", err)
		}
	}

	// ... a sample must match ground truth computed cold in this process, ...
	checked := 0
	for i := range seen {
		if checked == 3 {
			break
		}
		checked++
		k, err := npb.New(cfgs[i].req.Kernel)
		if err != nil {
			return err
		}
		cold, err := npb.Run(k, cfgs[i].native)
		if err != nil {
			return fmt.Errorf("cold reference %d: %w", i, err)
		}
		cb, err := json.Marshal(cold)
		if err != nil {
			return err
		}
		if !bytes.Equal(cb, seen[i]) {
			return fmt.Errorf("config %d: served result differs from cold npb.Run:\ncold:   %s\nserved: %s",
				i, cb, seen[i])
		}
	}

	// ... and the typed counters must conserve.
	ctr := srv.Counters()
	if ctr.PoolPanics != 0 {
		return fmt.Errorf("pool backstop fired %d times; sessions must recover their own panics", ctr.PoolPanics)
	}
	if ctr.Quarantined != 0 {
		return fmt.Errorf("%d templates quarantined: a poisoned fork reached the shared snapshot", ctr.Quarantined)
	}
	if got := ctr.Completed + ctr.Rejected + ctr.Aborted + ctr.Panicked + ctr.Failed + ctr.Drained; got != ctr.Requests {
		return fmt.Errorf("counters leak: %d admitted, %d accounted (%+v)", ctr.Requests, got, ctr)
	}
	if int(ctr.Panicked) != nPanics {
		return fmt.Errorf("injected %d panics, session boundary recovered %d", nPanics, ctr.Panicked)
	}

	fmt.Printf("chaos -serve: %d ops against simd on %s: all answers bit-identical per config, sample matches cold runs\n",
		ops, base)
	fmt.Printf("chaos -serve: %d runs, %d duplicate bursts, %d disconnects, %d malformed, %d oversized, %d panics, %d starved deadlines\n",
		nRuns, nDups, nDrops, nBad, nBig, nPanics, nDeadlines)
	fmt.Printf("chaos -serve: counters %+v\n", ctr)
	if cacheDir == "" {
		fmt.Printf("chaos -serve: %d/%d simulations were fresh (memo capacity %d forced re-runs); every recomputation matched\n",
			ctr.MemoMisses, ctr.Requests, 4)
	} else {
		// With the shared disk layer, a memo miss refills from disk when the
		// key was ever published — by this soak or by any earlier process on
		// the same directory. Disk misses are the actual simulations.
		ds := srv.DiskStats()
		fmt.Printf("chaos -serve: shared cache %s: %d disk hits (cross-process or post-eviction), %d disk misses (fresh simulations), %d writes, %d corrupt entries skipped\n",
			cacheDir, ds.Hits, ds.Misses, ds.Writes, ds.CorruptSkips)
	}
	return nil
}

// soakConfigs is the fixed palette of honest configurations, each carried in
// both wire form and the native config a cold npb.Run needs for the
// ground-truth comparison. Native mirrors simsrv's compile defaults
// (partitioned sharing, tree barrier).
func soakConfigs() []struct {
	req    simsrv.Request
	native npb.RunConfig
} {
	model := machine.Opteron270()
	var out []struct {
		req    simsrv.Request
		native npb.RunConfig
	}
	for _, kernel := range []string{"CG", "MG"} {
		for _, threads := range []int{1, 2} {
			for _, pol := range []struct {
				wire   string
				native core.PagePolicy
			}{{"4KB", core.Policy4K}, {"2MB", core.Policy2M}, {"mixed", core.PolicyMixed}} {
				out = append(out, struct {
					req    simsrv.Request
					native npb.RunConfig
				}{
					req: simsrv.Request{
						Kernel: kernel, Class: "T", Model: "Opteron270",
						Threads: threads, Policy: pol.wire,
					},
					native: npb.RunConfig{
						Model: model, Threads: threads, Policy: pol.native,
						Class: npb.ClassT, Sharing: machine.SharePartition,
						Barrier: omp.TreeBarrier,
					},
				})
			}
		}
	}
	return out
}

// resultBytes extracts the compacted `result` object from a 200 answer.
func resultBytes(body []byte) ([]byte, error) {
	var resp struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("decode answer: %w\n%s", err, body)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, resp.Result); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func post(hc *http.Client, base string, req simsrv.Request) (int, []byte, error) {
	return postCtx(context.Background(), hc, base, req)
}

func postCtx(ctx context.Context, hc *http.Client, base string, req simsrv.Request) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	return do(ctx, hc, base, string(body))
}

func postRaw(hc *http.Client, base, body string) (int, []byte, error) {
	return do(context.Background(), hc, base, body)
}

func do(ctx context.Context, hc *http.Client, base, body string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/run", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
