// Command chaos is the fault-injection soak harness: it runs NAS kernels
// under many randomized-but-replayable fault plans and holds the simulator to
// the robustness contract — every injected-fault run completes, passes NPB
// verification with numerics identical to the fault-free baseline, keeps
// every structural invariant (internal/check), and replays the same seed to
// bit-identical counters. It finishes with a degradation report comparing a
// healthy 2 MB run against the forced 4 KB fallback (vm.nr_hugepages = 0).
//
// Usage:
//
//	chaos                    # 50 plans over CG, MG, SP at class T
//	chaos -plans 200 -v      # longer soak, per-plan lines
//	chaos -seed 7 -kernels CG
//	chaos -serve -plans 300  # soak the simd service over HTTP instead
//	chaos -serve -cache-dir /tmp/homc   # soak against a shared on-disk cache;
//	                                    # run twice to prove cross-process hits
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hugeomp/internal/check"
	"hugeomp/internal/core"
	"hugeomp/internal/faultinject"
	"hugeomp/internal/machine"
	"hugeomp/internal/memo"
	"hugeomp/internal/npb"
	"hugeomp/internal/par"
	"hugeomp/internal/stats"
)

// mix is splitmix64: the plan-shape generator. Deterministic in the seed, so
// a plan index always rebuilds the identical campaign.
func mix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit draws a float in [0,1).
func unit(s *uint64) float64 { return float64(mix(s)>>11) / float64(1<<53) }

// campaign is one seeded fault scenario: which policy runs and which fault
// sites fire at which rates. Everything derives from the seed, so rebuilding
// a campaign for the same seed replays it exactly.
type campaign struct {
	seed      uint64
	policy    core.PagePolicy
	threads   int
	hugePages int
	desc      string
}

// plan rebuilds the campaign's fault plan (a fresh Plan each run: plans carry
// occurrence counters and must not be shared between runs).
func (c campaign) plan() *faultinject.Plan {
	s := c.seed
	p := faultinject.New(c.seed)
	mix(&s) // policy draw (must stay in lockstep with newCampaign)
	p.Enable(faultinject.SitePTMap, 0.25*unit(&s))
	if c.policy == core.PolicyTransparent {
		p.Enable(faultinject.SiteTHPAlloc, 0.6*unit(&s))
		p.Enable(faultinject.SiteTHPPressure, 0.02*unit(&s))
	} else {
		p.Enable(faultinject.SiteHugetlbTake, 0.3*unit(&s))
		if mix(&s)%4 == 0 {
			p.Enable(faultinject.SiteHugetlbReserve, 0.05+0.2*unit(&s))
		}
	}
	return p
}

// newCampaign derives campaign i from the base seed. Transparent-policy
// campaigns run single-threaded: the THP pressure site is occurrence-keyed,
// and a single faulting thread is what makes its draw order (and therefore
// the demotion count) replayable.
func newCampaign(baseSeed uint64, i, threads int) campaign {
	c := campaign{seed: baseSeed + uint64(i), threads: threads}
	s := c.seed
	switch mix(&s) % 3 {
	case 0:
		c.policy = core.Policy2M
	case 1:
		c.policy = core.PolicyMixed
	default:
		c.policy = core.PolicyTransparent
		c.threads = 1
	}
	unit(&s) // pt-map rate draw
	if c.policy == core.PolicyTransparent {
		unit(&s)
		unit(&s)
	} else {
		unit(&s)
		if mix(&s)%4 == 0 {
			unit(&s)
		}
		if mix(&s)%5 == 0 {
			c.hugePages = core.NoHugePages
		}
	}
	c.desc = fmt.Sprintf("seed=%#x policy=%v threads=%d", c.seed, c.policy, c.threads)
	if c.hugePages == core.NoHugePages {
		c.desc += " pool=empty"
	}
	return c
}

// outcome is one (campaign, kernel) soak cell.
type outcome struct {
	campaign campaign
	kernel   string
	res      npb.Result
	checksum float64
	injected uint64
	planDesc string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos: ")
	plans := flag.Int("plans", 50, "number of seeded fault plans")
	kernels := flag.String("kernels", "CG,MG,SP", "comma-separated kernels to soak")
	classFlag := flag.String("class", "T", "problem class: T, S, W or A")
	threads := flag.Int("threads", 2, "threads for non-transparent campaigns")
	seed := flag.Uint64("seed", 0x5eed, "base seed; plan i uses seed+i")
	verbose := flag.Bool("v", false, "print one line per (plan, kernel) cell")
	serve := flag.Bool("serve", false, "soak the simd HTTP service instead of the in-process simulator; -plans becomes the op count")
	cacheDir := flag.String("cache-dir", "", "with -serve: shared on-disk result cache directory (as simd -cache-dir)")
	flag.Parse()

	if *serve {
		if err := serveSoak(*plans, *seed, *verbose, *cacheDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *cacheDir != "" {
		log.Fatal("-cache-dir requires -serve")
	}

	class, err := npb.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	names := strings.Split(*kernels, ",")
	model := machine.Opteron270()

	// Fault-free baselines: the numerics every fault run must reproduce and
	// the cycle counts the degradation report compares against. Keyed by
	// thread count too — reduction combine order (CG, MG, FT) is part of the
	// numerics, and transparent-policy campaigns run single-threaded.
	//
	// The baselines don't cold-construct per config: one warmed snapshot per
	// kernel is forked for every thread count (threads are a fork-time
	// parameter), and each baseline's result + checksum is memoized under the
	// canonical hash of its config, so nothing downstream ever re-simulates a
	// fault-free reference.
	type baseline struct {
		Res npb.Result
		Sum float64
	}
	cache := memo.New()
	warm4K := make(map[string]*npb.Warm, len(names))
	for _, name := range names {
		w, err := npb.NewWarm(name, npb.RunConfig{
			Model: model, Threads: *threads, Policy: core.Policy4K, Class: class,
		})
		if err != nil {
			log.Fatalf("baseline template %s: %v", name, err)
		}
		warm4K[name] = w
	}
	type baseKey struct {
		kernel  string
		threads int
	}
	baseSum := make(map[baseKey]float64)
	baseRes := make(map[baseKey]npb.Result)
	for _, name := range names {
		for _, th := range []int{1, *threads} {
			key := baseKey{name, th}
			if _, ok := baseSum[key]; ok {
				continue
			}
			cfg := npb.RunConfig{
				Model: model, Threads: th, Policy: core.Policy4K, Class: class,
			}
			var b baseline
			if _, err := cache.GetOrCompute(memo.MustKey("baseline", name, cfg),
				func() (any, error) {
					res, sum, err := warm4K[name].RunChecksum(cfg)
					if err != nil {
						return nil, err
					}
					return baseline{Res: res, Sum: sum}, nil
				}, &b); err != nil {
				log.Fatalf("baseline %s: %v", name, err)
			}
			baseSum[key] = b.Sum
			baseRes[key] = b.Res
		}
	}

	// The soak: every (plan, kernel) cell runs twice — once to measure, once
	// to prove same-seed replay produces bit-identical counters.
	cells := make([]struct {
		c      campaign
		kernel string
	}, 0, *plans*len(names))
	for i := 0; i < *plans; i++ {
		c := newCampaign(*seed, i, *threads)
		for _, name := range names {
			cells = append(cells, struct {
				c      campaign
				kernel string
			}{c, name})
		}
	}
	outcomes, err := par.Map(len(cells), func(i int) (outcome, error) {
		cell := cells[i]
		run := func() (npb.Result, float64, *faultinject.Plan, error) {
			k, err := npb.New(cell.kernel)
			if err != nil {
				return npb.Result{}, 0, nil, err
			}
			plan := cell.c.plan()
			res, sys, _, err := npb.RunOn(k, npb.RunConfig{
				Model: model, Threads: cell.c.threads, Policy: cell.c.policy,
				Class: class, HugePages: cell.c.hugePages, Fault: plan,
			})
			if err != nil {
				return npb.Result{}, 0, nil, fmt.Errorf("%s under %s: %w", cell.kernel, cell.c.desc, err)
			}
			if err := check.All(sys.Machine); err != nil {
				return npb.Result{}, 0, nil, fmt.Errorf("invariants after %s under %s: %w", cell.kernel, cell.c.desc, err)
			}
			return res, npb.Checksum(k), plan, nil
		}
		res, sum, plan, err := run()
		if err != nil {
			return outcome{}, err
		}
		want := baseSum[baseKey{cell.kernel, cell.c.threads}]
		if sum != want {
			return outcome{}, fmt.Errorf("%s under %s: checksum %v != fault-free %v",
				cell.kernel, cell.c.desc, sum, want)
		}
		replay, replaySum, replayPlan, err := run()
		if err != nil {
			return outcome{}, fmt.Errorf("replay: %w", err)
		}
		if replaySum != sum || replay.Counters != res.Counters ||
			replay.OS != res.OS || replay.Degraded != res.Degraded ||
			replayPlan.TotalInjected() != plan.TotalInjected() {
			return outcome{}, fmt.Errorf("%s under %s: replay diverged (counters or OS events differ)",
				cell.kernel, cell.c.desc)
		}
		return outcome{
			campaign: cell.c, kernel: cell.kernel, res: res,
			checksum: sum, injected: plan.TotalInjected(), planDesc: plan.String(),
		}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var degradedRuns, faultedRuns int
	for _, o := range outcomes {
		if o.res.Degraded {
			degradedRuns++
		}
		if o.injected > 0 {
			faultedRuns++
		}
		if *verbose {
			base := baseRes[baseKey{o.kernel, o.campaign.threads}]
			fmt.Printf("  %-2s %-44s busy %s  os[%s]  %s\n",
				o.kernel, o.campaign.desc,
				stats.FormatFactor(stats.Factor(base.Counters.Busy, o.res.Counters.Busy)),
				o.res.OS, o.planDesc)
		}
	}

	fmt.Printf("chaos: %d plans × %d kernels (class %s): all runs verified, invariants held, replays identical\n",
		*plans, len(names), *classFlag)
	fmt.Printf("chaos: %d/%d cells injected at least one fault; %d ran degraded (4 KB fallback)\n",
		faultedRuns, len(outcomes), degradedRuns)

	// Degradation report: healthy 2 MB backing vs. the forced 4 KB fallback.
	// The healthy rows fork a warmed 2 MB snapshot per kernel (and memoize);
	// the empty-pool rows must construct cold — the fallback they measure
	// happens during construction.
	fmt.Println("\ndegradation report (2MB pool vs vm.nr_hugepages=0, same binary, same numerics):")
	fmt.Printf("  %-3s %14s %14s %10s %10s %10s\n", "app", "walks(2M)", "walks(0)", "walks", "busy", "fallback")
	for _, name := range names {
		w2M, err := npb.NewWarm(name, npb.RunConfig{
			Model: model, Threads: *threads, Policy: core.Policy2M, Class: class,
		})
		if err != nil {
			log.Fatalf("degradation template %s: %v", name, err)
		}
		healthy, degraded := npb.Result{}, npb.Result{}
		for _, hp := range []int{0, core.NoHugePages} {
			cfg := npb.RunConfig{
				Model: model, Threads: *threads, Policy: core.Policy2M,
				Class: class, HugePages: hp,
			}
			var b baseline
			if _, err := cache.GetOrCompute(memo.MustKey("degradation", name, cfg),
				func() (any, error) {
					if hp == 0 {
						res, sum, err := w2M.RunChecksum(cfg)
						if err != nil {
							return nil, err
						}
						return baseline{Res: res, Sum: sum}, nil
					}
					k, err := npb.New(name)
					if err != nil {
						return nil, err
					}
					res, err := npb.Run(k, cfg)
					if err != nil {
						return nil, err
					}
					return baseline{Res: res, Sum: npb.Checksum(k)}, nil
				}, &b); err != nil {
				log.Fatalf("degradation report %s: %v", name, err)
			}
			if b.Sum != baseSum[baseKey{name, *threads}] {
				log.Fatalf("degradation report %s: numerics changed", name)
			}
			if hp == 0 {
				healthy = b.Res
			} else {
				degraded = b.Res
			}
		}
		if !degraded.Degraded || healthy.Degraded {
			log.Fatalf("degradation report %s: fallback flags wrong (healthy=%v degraded=%v)",
				name, healthy.Degraded, degraded.Degraded)
		}
		fmt.Printf("  %-3s %14d %14d %10s %10s %10d\n", name,
			healthy.Counters.DTLBWalks(), degraded.Counters.DTLBWalks(),
			stats.FormatFactor(stats.Factor(healthy.Counters.DTLBWalks(), degraded.Counters.DTLBWalks())),
			stats.FormatFactor(stats.Factor(healthy.Counters.Busy, degraded.Counters.Busy)),
			degraded.OS.HugePageFallbacks)
	}
	hits, misses := cache.Stats()
	fmt.Printf("\nmemo: %d reference simulations, %d reuses served from cache\n", misses, hits)
	os.Exit(0)
}
