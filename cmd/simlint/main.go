// Command simlint runs the simulator's static contract checks: determinism
// (no wall clocks, no global rand, no order-sensitive map iteration in
// simulator packages), lockdiscipline (bus-shard/cache lock ordering, no
// locks held across bus traffic, no defer-unlock on hot paths), atomicfield
// (//simlint:atomic fields only touched through sync/atomic), cowshared
// (//simlint:cowshared snapshot-shared arrays only written inside
// //simlint:cowbarrier functions — the copy-on-write write barrier) and
// padding (//simlint:padded layout and //simlint:writer false-sharing
// checks).
//
// Two modes share one engine:
//
//	simlint [flags] [packages]      # standalone, defaults to ./...
//	go vet -vettool=$(which simlint) ./...
//
// The second form speaks cmd/go's vettool protocol: -V=full and -flags for
// the handshake, then a single *.cfg argument per package with the build
// system supplying export data, so no source re-type-checking of
// dependencies is needed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"hugeomp/internal/lint"
	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/determinism"
	"hugeomp/internal/lint/load"
	"hugeomp/internal/lint/lockdiscipline"
)

var (
	versionFlag = flag.String("V", "", "print version and exit (the go command's vettool handshake)")
	flagsFlag   = flag.Bool("flags", false, "print the tool's flags as JSON and exit (vettool handshake)")
	jsonFlag    = flag.Bool("json", false, "emit diagnostics as JSON instead of text")
	contextFlag = flag.Int("c", -1, "display offending line plus this many lines of context")

	detPackages = flag.String("determinism.packages", strings.Join(determinism.Packages, ","),
		"comma-separated package suffixes held to the determinism contract")
	lockOrder = flag.String("lockdiscipline.order", lockdiscipline.Order,
		"lock hierarchy, outermost first, e.g. \"busShard < Cache, cacheFields\"")
	lockBus = flag.String("lockdiscipline.bus", lockdiscipline.BusTypes,
		"comma-separated type names whose Access* methods are bus traffic")

	// Per-analyzer enable flags, unitchecker-style: if any is set
	// explicitly, only the set ones run.
	enable = map[string]*bool{}
)

func init() {
	for _, a := range lint.Analyzers() {
		enable[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer (and other explicitly enabled ones)")
	}
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] [packages]\n   or: go vet -vettool=$(which simlint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		handshakeVersion()
		return
	}
	if *flagsFlag {
		handshakeFlags()
		return
	}

	determinism.Packages = splitList(*detPackages)
	lockdiscipline.Order = *lockOrder
	lockdiscipline.BusTypes = *lockBus

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}
	os.Exit(standalone(args))
}

// selected returns the analyzers to run, honouring explicit -<name> flags.
func selected() []*analysis.Analyzer {
	all := lint.Analyzers()
	anySet := false
	for _, a := range all {
		if *enable[a.Name] {
			anySet = true
		}
	}
	if !anySet {
		return all
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if *enable[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// --- standalone mode -------------------------------------------------------

func standalone(patterns []string) int {
	pkgs, err := load.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	analyzers := selected()
	found := false
	tree := make(jsonTree)
	for _, p := range pkgs {
		diags, err := lint.Run(&lint.Unit{
			Fset:  p.Fset,
			Files: p.Files,
			Pkg:   p.Types,
			Info:  p.Info,
			Sizes: p.Sizes,
		}, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", p.ImportPath, err)
			return 2
		}
		for _, d := range diags {
			found = true
			if *jsonFlag {
				tree.add(p.ImportPath, d)
			} else {
				printPlain(d)
			}
		}
	}
	if *jsonFlag {
		tree.print()
		return 0
	}
	if found {
		return 1
	}
	return 0
}

func printPlain(d lint.Diagnostic) {
	fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	if *contextFlag >= 0 {
		printContext(d.Pos)
	}
}

// printContext echoes the offending source line (plus -c lines around it),
// mirroring go vet's plain output.
func printContext(pos token.Position) {
	data, err := os.ReadFile(pos.Filename)
	if err != nil {
		return
	}
	lines := strings.Split(string(data), "\n")
	for i := pos.Line - *contextFlag; i <= pos.Line+*contextFlag; i++ {
		if i >= 1 && i <= len(lines) {
			fmt.Fprintf(os.Stderr, "%d\t%s\n", i, lines[i-1])
		}
	}
}

// jsonTree mirrors go vet's -json output: package → analyzer → diagnostics.
type jsonDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

type jsonTree map[string]map[string][]jsonDiag

func (t jsonTree) add(pkgID string, d lint.Diagnostic) {
	m := t[pkgID]
	if m == nil {
		m = make(map[string][]jsonDiag)
		t[pkgID] = m
	}
	m[d.Analyzer] = append(m[d.Analyzer], jsonDiag{Posn: d.Pos.String(), Message: d.Message})
}

func (t jsonTree) print() {
	data, err := json.MarshalIndent(t, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// --- vettool handshake -----------------------------------------------------

// handshakeVersion implements -V=full. cmd/go parses the line for a buildID,
// so the shape must match what x/tools' unitchecker prints: a hash of the
// executable stands in for a real build ID.
func handshakeVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), string(h.Sum(nil)))
}

// handshakeFlags implements -flags: the JSON flag inventory cmd/go uses to
// validate which flags it may forward to the tool.
func handshakeFlags() {
	type jsonFlagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var descs []jsonFlagDesc
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if bv, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = bv.IsBoolFlag()
		}
		descs = append(descs, jsonFlagDesc{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(descs)
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// --- vettool .cfg mode -----------------------------------------------------

// vetConfig is the per-package JSON config cmd/go hands a vettool. Field
// names follow the x/tools unitchecker Config so either side can evolve.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command also runs the vettool over dependency packages so a
	// tool can accumulate facts. simlint has no cross-package facts and its
	// contracts only bind module code, so packages outside any module (the
	// standard library has an empty ModulePath) get an empty fact file and
	// nothing else (some of them also trip go/types corner cases that never
	// matter for module code).
	if cfg.ModulePath == "" {
		return writeVetx(cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the build system already
	// produced (cfg.PackageFile), so dependencies are never re-checked
	// from source.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor(cfg.Compiler, runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	conf := types.Config{Importer: imp, Sizes: sizes, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		fmt.Fprintf(os.Stderr, "simlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := lint.Run(&lint.Unit{
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
		Sizes: sizes,
	}, selected())
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	if code := writeVetx(cfg); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}

	if *jsonFlag {
		tree := make(jsonTree)
		for _, d := range diags {
			tree.add(cfg.ID, d)
		}
		tree.print()
		return 0
	}
	for _, d := range diags {
		printPlain(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeVetx records this package's (empty) fact set where the build system
// asked for it; cmd/go treats a missing output file as a tool failure.
func writeVetx(cfg *vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	return 0
}
