// Command simlint runs the simulator's static contract checks: determinism
// (no wall clocks, no global rand, no scheduler queries, no order-sensitive
// map iteration in simulator packages), dettaint (interprocedural
// determinism taint from host-state sources into profile counters and memo
// keys), lockdiscipline (no defer-unlock on hot paths), lockorder
// (interprocedural lock-acquisition ordering against the documented
// hierarchy, with cycle detection), ctxflow (loops issuing omp regions must
// reach rt.Checkpoint or carry //simlint:nocheckpoint), atomicfield
// (//simlint:atomic fields only touched through sync/atomic), cowshared
// (//simlint:cowshared snapshot-shared arrays only written inside
// //simlint:cowbarrier functions — the copy-on-write write barrier) and
// padding (//simlint:padded layout and //simlint:writer false-sharing
// checks).
//
// Two modes share one engine:
//
//	simlint [flags] [packages]      # standalone, defaults to ./...
//	go vet -vettool=$(which simlint) ./...
//
// The second form speaks cmd/go's vettool protocol: -V=full and -flags for
// the handshake, then a single *.cfg argument per package with the build
// system supplying export data, so no source re-type-checking of
// dependencies is needed. Interprocedural facts (per-function summaries)
// flow between packages through the vetx files cmd/go threads from
// dependencies to dependents — and caches keyed by export data, so an
// unchanged package is never re-analyzed. The standalone mode walks the
// module in dependency order with one shared fact store, which by
// construction yields the same findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"hugeomp/internal/lint"
	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/ctxflow"
	"hugeomp/internal/lint/determinism"
	"hugeomp/internal/lint/dettaint"
	"hugeomp/internal/lint/load"
	"hugeomp/internal/lint/lockorder"
)

var (
	versionFlag = flag.String("V", "", "print version and exit (the go command's vettool handshake)")
	flagsFlag   = flag.Bool("flags", false, "print the tool's flags as JSON and exit (vettool handshake)")
	jsonFlag    = flag.Bool("json", false, "emit diagnostics as JSON instead of text")
	contextFlag = flag.Int("c", -1, "display offending line plus this many lines of context")

	detPackages = flag.String("determinism.packages", strings.Join(determinism.Packages, ","),
		"comma-separated package suffixes held to the determinism contract")
	dtPackages = flag.String("dettaint.packages", strings.Join(dettaint.Packages, ","),
		"comma-separated package suffixes where determinism taint is reported")
	dtSinkTypes = flag.String("dettaint.sinktypes", dettaint.SinkTypes,
		"comma-separated named types whose methods are determinism sinks")
	dtSinkFuncs = flag.String("dettaint.sinkfuncs", dettaint.SinkFuncs,
		"comma-separated pkg.Func sink functions (memo key builders)")
	loOrder = flag.String("lockorder.order", lockorder.Order,
		"lock hierarchy, outermost first, e.g. \"Context.l2Mu < busShard < Cache, cacheFields\"")
	loPackages = flag.String("lockorder.packages", strings.Join(lockorder.Packages, ","),
		"comma-separated package suffixes where lock-order violations are reported")
	cfPackages = flag.String("ctxflow.packages", strings.Join(ctxflow.Packages, ","),
		"comma-separated package suffixes whose loops must stay cancellable")
	cfRTType = flag.String("ctxflow.rttype", ctxflow.RTType,
		"pkg.Type of the omp runtime whose methods delimit regions and checkpoints")

	// Per-analyzer enable flags, unitchecker-style: if any is set
	// explicitly, only the set ones run.
	enable = map[string]*bool{}
)

func init() {
	for _, a := range lint.Analyzers() {
		enable[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer (and other explicitly enabled ones)")
	}
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] [packages]\n   or: go vet -vettool=$(which simlint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		handshakeVersion()
		return
	}
	if *flagsFlag {
		handshakeFlags()
		return
	}

	determinism.Packages = splitList(*detPackages)
	dettaint.Packages = splitList(*dtPackages)
	dettaint.SinkTypes = *dtSinkTypes
	dettaint.SinkFuncs = *dtSinkFuncs
	lockorder.Order = *loOrder
	lockorder.Packages = splitList(*loPackages)
	ctxflow.Packages = splitList(*cfPackages)
	ctxflow.RTType = *cfRTType

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}
	os.Exit(standalone(args))
}

// selected returns the analyzers to run, honouring explicit -<name> flags.
func selected() []*analysis.Analyzer {
	all := lint.Analyzers()
	anySet := false
	for _, a := range all {
		if *enable[a.Name] {
			anySet = true
		}
	}
	if !anySet {
		return all
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if *enable[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// --- standalone mode -------------------------------------------------------

func standalone(patterns []string) int {
	pkgs, err := load.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	analyzers := selected()
	// One fact store shared across the dependency-ordered walk: summaries
	// computed for a dependency are visible when its dependents run, exactly
	// as the vetx files thread them in vettool mode.
	facts := analysis.NewFactStore()
	found := false
	var report jsonReport
	for _, p := range pkgs {
		diags, err := lint.Run(&lint.Unit{
			Fset:  p.Fset,
			Files: p.Files,
			Pkg:   p.Types,
			Info:  p.Info,
			Sizes: p.Sizes,
			Facts: facts,
		}, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", p.ImportPath, err)
			return 2
		}
		if !p.Root {
			continue // dependencies contribute facts, not findings
		}
		for _, d := range diags {
			if *jsonFlag {
				report = append(report, jsonFinding(p.ImportPath, d))
			}
			if d.Suppressed {
				continue
			}
			found = true
			if !*jsonFlag {
				printPlain(d)
			}
		}
	}
	if *jsonFlag {
		report.print()
		return 0
	}
	if found {
		return 1
	}
	return 0
}

func printPlain(d lint.Diagnostic) {
	fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	if *contextFlag >= 0 {
		printContext(d.Pos)
	}
}

// printContext echoes the offending source line (plus -c lines around it),
// mirroring go vet's plain output.
func printContext(pos token.Position) {
	data, err := os.ReadFile(pos.Filename)
	if err != nil {
		return
	}
	lines := strings.Split(string(data), "\n")
	for i := pos.Line - *contextFlag; i <= pos.Line+*contextFlag; i++ {
		if i >= 1 && i <= len(lines) {
			fmt.Fprintf(os.Stderr, "%d\t%s\n", i, lines[i-1])
		}
	}
}

// --- machine-readable findings ---------------------------------------------

// A finding is the SARIF-ish machine-readable form of one diagnostic:
// stable rule id, position, message, the interprocedural call-chain trace
// (outermost frame first), and the ignore status. Suppressed findings are
// included so audit tooling can see what the //simlint:ignore comments are
// holding back; consumers gating CI must filter on !suppressed.
type finding struct {
	Rule           string   `json:"rule"`
	Package        string   `json:"package"`
	Posn           string   `json:"posn"`
	Message        string   `json:"message"`
	Trace          []string `json:"trace,omitempty"`
	Suppressed     bool     `json:"suppressed,omitempty"`
	SuppressReason string   `json:"suppressReason,omitempty"`
}

type jsonReport []finding

func jsonFinding(pkgID string, d lint.Diagnostic) finding {
	return finding{
		Rule:           d.Analyzer,
		Package:        pkgID,
		Posn:           d.Pos.String(),
		Message:        d.Message,
		Trace:          d.Trace,
		Suppressed:     d.Suppressed,
		SuppressReason: d.SuppressReason,
	}
}

func (r jsonReport) print() {
	if r == nil {
		r = jsonReport{} // emit [] rather than null for an empty report
	}
	data, err := json.MarshalIndent(r, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// --- vettool handshake -----------------------------------------------------

// handshakeVersion implements -V=full. cmd/go parses the line for a buildID,
// so the shape must match what x/tools' unitchecker prints: a hash of the
// executable stands in for a real build ID.
func handshakeVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), string(h.Sum(nil)))
}

// handshakeFlags implements -flags: the JSON flag inventory cmd/go uses to
// validate which flags it may forward to the tool.
func handshakeFlags() {
	type jsonFlagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var descs []jsonFlagDesc
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if bv, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = bv.IsBoolFlag()
		}
		descs = append(descs, jsonFlagDesc{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(descs)
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// --- vettool .cfg mode -----------------------------------------------------

// vetConfig is the per-package JSON config cmd/go hands a vettool. Field
// names follow the x/tools unitchecker Config so either side can evolve.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command also runs the vettool over dependency packages so a
	// tool can accumulate facts. simlint's contracts only bind module code
	// and its fact producers only summarize module functions, so packages
	// outside any module (the standard library has an empty ModulePath) get
	// an empty fact file and nothing else (some of them also trip go/types
	// corner cases that never matter for module code).
	if cfg.ModulePath == "" {
		return writeVetx(cfg, nil)
	}

	// Seed the fact store with the dependencies' summaries: cmd/go hands us
	// one vetx file per import, produced by earlier runs of this tool and
	// cached keyed by export data (so unchanged packages are incremental).
	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		raw, err := os.ReadFile(vetx)
		if err != nil || len(raw) == 0 {
			continue // empty or missing vetx: a package with no facts
		}
		if err := facts.MergeEncoded(raw); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: reading facts %s: %v\n", vetx, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg, nil)
			}
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the build system already
	// produced (cfg.PackageFile), so dependencies are never re-checked
	// from source.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor(cfg.Compiler, runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	conf := types.Config{Importer: imp, Sizes: sizes, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, nil)
		}
		fmt.Fprintf(os.Stderr, "simlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := lint.Run(&lint.Unit{
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
		Sizes: sizes,
		Facts: facts,
	}, selected())
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	if code := writeVetx(cfg, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}

	visible := diags[:0:0]
	for _, d := range diags {
		if !d.Suppressed {
			visible = append(visible, d)
		}
	}
	if *jsonFlag {
		report := make(jsonReport, 0, len(diags))
		for _, d := range diags {
			report = append(report, jsonFinding(cfg.ID, d))
		}
		report.print()
		return 0
	}
	for _, d := range visible {
		printPlain(d)
	}
	if len(visible) > 0 {
		return 1
	}
	return 0
}

// writeVetx records this package's fact set (its own summaries plus the
// re-exported transitive ones) where the build system asked for it; cmd/go
// treats a missing output file as a tool failure.
func writeVetx(cfg *vetConfig, facts *analysis.FactStore) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	var data []byte
	if facts != nil {
		var err error
		if data, err = facts.Encode(); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: encoding facts: %v\n", err)
			return 1
		}
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 1
	}
	return 0
}
