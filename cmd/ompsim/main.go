// Command ompsim runs one NAS benchmark on the simulated large-page OpenMP
// system and prints time, TLB and cache statistics.
//
// Usage:
//
//	ompsim -app CG -class W -machine Opteron270 -threads 4 -pages 2M
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ompsim: ")

	var (
		app     = flag.String("app", "CG", "benchmark: BT, CG, FT, SP or MG")
		class   = flag.String("class", "S", "problem class: T, S, W or A")
		model   = flag.String("machine", "Opteron270", "platform: Opteron270, XeonHT or NiagaraT1")
		mfile   = flag.String("machine-file", "", "JSON platform definition (overrides -machine)")
		threads = flag.Int("threads", 4, "OpenMP thread count")
		pages   = flag.String("pages", "4K", "page policy: 4K, 2M, mixed or transparent")
		iters   = flag.Int("iters", 0, "timesteps (0 = class default)")
		barrier = flag.String("barrier", "tree", "barrier algorithm: tree or central")
		sharing = flag.String("sharing", "partition", "SMT sharing model: partition or true")
		verbose = flag.Bool("v", false, "print the full OProfile-style counter report")
		asJSON  = flag.Bool("json", false, "emit the result as JSON (for scripting)")
	)
	flag.Parse()

	cfg, err := buildConfig(*model, *threads, *pages, *class, *iters, *barrier, *sharing)
	if err != nil {
		log.Fatal(err)
	}
	if *mfile != "" {
		m, err := machine.LoadModel(*mfile)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Model = m
	}
	k, err := npb.New(*app)
	if err != nil {
		log.Fatal(err)
	}
	res, err := npb.Run(k, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("%s class %s on %s, %d threads, %v pages\n",
		res.Kernel, res.Class, res.Model, res.Threads, res.Policy)
	fmt.Printf("  time        %10.4f s   (%d cycles)\n", res.Seconds, res.Cycles)
	fmt.Printf("  footprint   data %.1f MB, instr %.2f MB\n", res.DataMB, res.InstrMB)
	c := res.Counters
	fmt.Printf("  accesses    %12d\n", c.Accesses())
	fmt.Printf("  DTLB walks  %12d   (4K %d, 2M %d)\n", c.DTLBWalks(), c.DTLBWalks4K, c.DTLBWalks2M)
	fmt.Printf("  ITLB misses %12d\n", c.ITLBL1Miss)
	fmt.Printf("  L2 misses   %12d\n", c.L2Misses)
	fmt.Printf("  SMT flushes %12d\n", c.SMTSwitches)
	fmt.Printf("  walk cyc    %12d   (%.1f%% of busy)\n", c.WalkCyc, pct(c.WalkCyc, c.Busy))
	fmt.Printf("  mem cyc     %12d   (%.1f%% of busy)\n", c.MemCyc, pct(c.MemCyc, c.Busy))
	if *verbose {
		fmt.Println()
		fmt.Print(c.Report(res.Kernel, res.Seconds))
		if len(res.Regions) > 0 {
			fmt.Println("\nper-region profile (OProfile-style, by wall cycles):")
			fmt.Printf("  %-14s%10s%14s%9s%14s%12s\n",
				"region", "entries", "wall cyc", "wall %", "DTLB walks", "L2 misses")
			for _, p := range res.Regions {
				fmt.Printf("  %-14s%10d%14d%8.1f%%%14d%12d\n",
					p.Name, p.Entries, p.WallCycles,
					100*float64(p.WallCycles)/float64(res.Cycles),
					p.Counters.DTLBWalks(), p.Counters.L2Misses)
			}
		}
	}
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func buildConfig(model string, threads int, pages, class string, iters int,
	barrier, sharing string) (npb.RunConfig, error) {
	m, ok := machine.ModelByName(model)
	if !ok {
		return npb.RunConfig{}, fmt.Errorf("unknown machine %q", model)
	}
	var policy core.PagePolicy
	switch pages {
	case "4K", "4k":
		policy = core.Policy4K
	case "2M", "2m":
		policy = core.Policy2M
	case "mixed":
		policy = core.PolicyMixed
	case "transparent":
		policy = core.PolicyTransparent
	default:
		return npb.RunConfig{}, fmt.Errorf("unknown page policy %q", pages)
	}
	cl, err := npb.ParseClass(class)
	if err != nil {
		return npb.RunConfig{}, err
	}
	var alg omp.BarrierAlgo
	switch barrier {
	case "tree":
		alg = omp.TreeBarrier
	case "central":
		alg = omp.CentralBarrier
	default:
		return npb.RunConfig{}, fmt.Errorf("unknown barrier %q", barrier)
	}
	var share machine.SharingMode
	switch sharing {
	case "partition":
		share = machine.SharePartition
	case "true":
		share = machine.ShareTrue
	default:
		return npb.RunConfig{}, fmt.Errorf("unknown sharing mode %q", sharing)
	}
	if threads < 1 {
		fmt.Fprintln(os.Stderr, "ompsim: threads must be >= 1")
		os.Exit(2)
	}
	return npb.RunConfig{
		Model:      m,
		Threads:    threads,
		Policy:     policy,
		Class:      cl,
		Iterations: iters,
		Barrier:    alg,
		Sharing:    share,
	}, nil
}
