package main

import (
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
)

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("XeonHT", 8, "2M", "W", 3, "central", "true")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model.Name != "XeonHT" || cfg.Threads != 8 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Policy != core.Policy2M || cfg.Class != npb.ClassW || cfg.Iterations != 3 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Barrier != omp.CentralBarrier || cfg.Sharing != machine.ShareTrue {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestBuildConfigDefaultsAndAliases(t *testing.T) {
	cfg, err := buildConfig("Opteron270", 1, "transparent", "t", 0, "tree", "partition")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != core.PolicyTransparent || cfg.Class != npb.ClassT {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestBuildConfigRejectsBadInputs(t *testing.T) {
	cases := []struct {
		machine, pages, class, barrier, sharing string
	}{
		{"Pentium", "4K", "S", "tree", "partition"},
		{"XeonHT", "1G", "S", "tree", "partition"},
		{"XeonHT", "4K", "B", "tree", "partition"},
		{"XeonHT", "4K", "S", "butterfly", "partition"},
		{"XeonHT", "4K", "S", "tree", "exclusive"},
	}
	for _, c := range cases {
		if _, err := buildConfig(c.machine, 2, c.pages, c.class, 0, c.barrier, c.sharing); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
}
