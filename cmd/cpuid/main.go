// Command cpuid prints the TLB descriptors of the simulated processors the
// way the paper measured its Table 1 ("These sizes were measured through the
// CPUID instruction").
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hugeomp/internal/bench"
	"hugeomp/internal/cpuid"
	"hugeomp/internal/machine"
	"hugeomp/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpuid: ")
	verbose := flag.Bool("v", false, "also list every raw descriptor")
	flag.Parse()

	bench.Table1(os.Stdout)
	if !*verbose {
		return
	}
	for _, m := range []machine.Model{machine.XeonHT(), machine.Opteron270()} {
		fmt.Printf("\n%s descriptors:\n", m.Name)
		for _, d := range cpuid.Enumerate(m) {
			assoc := "full"
			if d.Ways > 0 {
				assoc = fmt.Sprintf("%d-way", d.Ways)
			}
			if d.Entries == 0 {
				fmt.Printf("  %-8s %-4s absent\n", d.Structure, d.PageSize)
				continue
			}
			fmt.Printf("  %-8s %-4s %4d entries, %6s, covers %s\n",
				d.Structure, d.PageSize, d.Entries, assoc, units.HumanBytes(d.Coverage()))
		}
	}
}
