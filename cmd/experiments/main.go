// Command experiments regenerates every table and figure of the paper's
// evaluation section at the requested class (the full reproduction uses
// class A; EXPERIMENTS.md records its output).
//
// Usage:
//
//	experiments -class A            # everything (minutes)
//	experiments -class W -only fig5 # one experiment
//	experiments -bench              # measure simulator perf -> BENCH_simulator.json
package main

import (
	"flag"
	"log"
	"os"

	"hugeomp/internal/bench"
	"hugeomp/internal/npb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	class := flag.String("class", "W", "problem class: T, S, W or A")
	only := flag.String("only", "", "run one experiment: table1, table2, fig3, fig4, fig5 or extensions")
	plot := flag.Bool("plot", false, "render fig4/fig5 as ASCII bar charts instead of tables")
	doBench := flag.Bool("bench", false, "measure simulator host-side performance and write -bench-out")
	benchOut := flag.String("bench-out", "BENCH_simulator.json", "output path for -bench")
	baseline := flag.Bool("bench-baseline", false, "re-measure the dense and gather fast paths and fail if either regressed >2x vs -bench-out")
	serveBench := flag.Bool("serve-bench", false, "measure only the service-scale throughput section and enforce its floors")
	flag.Parse()

	cl, err := npb.ParseClass(*class)
	if err != nil {
		log.Fatal(err)
	}
	if *serveBench {
		svc, err := bench.MeasureServiceThroughput()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("service: %d mixed requests (%d unique): warm-restart %.2fs (%.0f req/s, %.0f%% cache-answered, %d disk hits, %d disk misses) vs no-disk-cache single-template baseline %.2fs (%.0f req/s) = %.1fx",
			svc.Requests, svc.UniqueConfigs,
			svc.ServiceSeconds, svc.ServiceRPS, svc.WarmRestartHitPct, svc.DiskHits, svc.DiskMisses,
			svc.BaselineSeconds, svc.BaselineRPS, svc.SpeedupX)
		if svc.SpeedupX < 3.0 {
			log.Fatalf("service throughput %.2fx < 3.0x floor", svc.SpeedupX)
		}
		if svc.WarmRestartHitPct < 90 {
			log.Fatalf("warm restart answered only %.0f%% of requests from cache, floor 90%%", svc.WarmRestartHitPct)
		}
		log.Print("service-scale floors hold (>=3x over baseline, >=90% warm-restart cache share)")
		return
	}
	if *baseline {
		report, err := bench.RegressionCheck(*benchOut)
		if report != "" {
			log.Print(report)
		}
		if err != nil {
			log.Fatal(err)
		}
		log.Print("fast paths within 2x of committed baseline")
		return
	}
	if *doBench {
		perf, err := bench.MeasureSimPerf(cl, nil)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*benchOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.WriteSimPerf(f, perf); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Print(bench.FormatSimPerf(perf))
		for _, sweep := range [][]bench.MulticorePoint{perf.Multicore, perf.MulticoreMG} {
			for _, m := range sweep {
				if m.Capped {
					log.Printf("note: %d simulated threads time-sliced over %d host procs (host has %d); speedup understated",
						m.Threads, m.GOMAXPROCS, perf.HostProcs)
				}
			}
		}
		log.Printf("wrote %s", *benchOut)
		return
	}
	w := os.Stdout
	switch *only {
	case "":
		err = bench.All(w, cl)
	case "table1":
		bench.Table1(w)
	case "table2":
		err = bench.Table2(w, cl)
	case "fig3":
		err = bench.Fig3(w, cl)
	case "fig4":
		if *plot {
			err = bench.Fig4Plot(w, cl, nil)
		} else {
			err = bench.Fig4(w, cl, nil)
		}
	case "fig5":
		if *plot {
			err = bench.Fig5Plot(w, cl)
		} else {
			err = bench.Fig5(w, cl)
		}
	case "extensions":
		err = bench.Extensions(w, cl)
	default:
		log.Fatalf("unknown experiment %q", *only)
	}
	if err != nil {
		log.Fatal(err)
	}
}
