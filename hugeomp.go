// Package hugeomp is a Go reproduction of "Improving Scalability of OpenMP
// Applications on Multi-core Systems Using Large Page Support" (Noronha &
// Panda, IPPS 2007): an OpenMP runtime whose application data can be backed
// by preallocated 2 MB pages (via an emulated hugetlbfs) instead of 4 KB
// pages, running on deterministic, execution-driven models of the paper's
// two platforms — a dual dual-core AMD Opteron 270 and a dual dual-core
// Intel Xeon with hyper-threading — with exact TLB, page-walk, cache and SMT
// event accounting.
//
// # Quick start
//
//	sys, _ := hugeomp.NewSystem(hugeomp.Config{
//		Model:  hugeomp.Opteron270(),
//		Policy: hugeomp.Policy2M, // the paper's design: data in 2MB pages
//	})
//	arr := sys.MustArray("data", 1<<20)
//	rt, _ := sys.NewRT(4)
//	sum := rt.ParallelForReduce(nil, arr.Len(), hugeomp.For{}, 0,
//		func(tid int, c *hugeomp.Context, lo, hi int) float64 {
//			arr.LoadRange(c, lo, hi) // drives the simulated TLB/caches
//			s := 0.0
//			for i := lo; i < hi; i++ {
//				s += arr.Data[i]
//			}
//			return s
//		}, func(a, b float64) float64 { return a + b })
//	fmt.Println(sum, rt.Seconds(), rt.TotalCounters().DTLBWalks())
//
// # Structure
//
// The facade re-exports the layered implementation:
//
//   - machine: processor models, hardware contexts, cycle cost model
//   - omp: the OpenMP runtime (fork-join, schedules, barriers, reductions)
//   - core: page policies, hugetlbfs preallocation, shared arrays
//   - npb: the five NAS kernels of the paper's evaluation (BT, CG, FT, SP, MG)
//   - bench: the per-table/per-figure experiment harness
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package hugeomp

import (
	"io"

	"hugeomp/internal/bench"
	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/mpi"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
	"hugeomp/internal/profile"
	"hugeomp/internal/units"
)

// Core system types.
type (
	// System assembles physical memory, page tables, the hugetlbfs pool,
	// the SCASH shared space and the simulated machine for one run.
	System = core.System
	// Config configures a System.
	Config = core.Config
	// PagePolicy selects 4 KB, 2 MB or mixed backing for application data.
	PagePolicy = core.PagePolicy
	// Array is a shared float64 array whose accesses drive the simulation.
	Array = core.Array
	// Ints is a shared int64 array.
	Ints = core.Ints
)

// Machine types.
type (
	// Model describes a processor platform.
	Model = machine.Model
	// Machine is an instantiated platform.
	Machine = machine.Machine
	// Context is one hardware thread context (what loop bodies receive).
	Context = machine.Context
	// Costs is the cycle cost model.
	Costs = machine.Costs
)

// Runtime types.
type (
	// RT is the OpenMP runtime.
	RT = omp.RT
	// For configures a worksharing loop.
	For = omp.For
	// CodeRegion models the instruction footprint of a parallel region.
	CodeRegion = omp.CodeRegion
	// Counters is the exact hardware event record of a run.
	Counters = profile.Counters
	// RegionProfile is the per-region (OProfile-style) profile entry.
	RegionProfile = omp.RegionProfile
)

// Benchmark types.
type (
	// Kernel is one NAS benchmark.
	Kernel = npb.Kernel
	// Class is a scaled problem class (T, S, W, A).
	Class = npb.Class
	// RunConfig configures one benchmark run.
	RunConfig = npb.RunConfig
	// Result reports one benchmark run.
	Result = npb.Result
)

// Page policies.
const (
	Policy4K          = core.Policy4K
	Policy2M          = core.Policy2M
	PolicyMixed       = core.PolicyMixed
	PolicyTransparent = core.PolicyTransparent
)

// Problem classes.
const (
	ClassT = npb.ClassT
	ClassS = npb.ClassS
	ClassW = npb.ClassW
	ClassA = npb.ClassA
)

// Loop schedules.
const (
	Static  = omp.Static
	Dynamic = omp.Dynamic
	Guided  = omp.Guided
)

// Page sizes.
const (
	PageSize4K = units.PageSize4K
	PageSize2M = units.PageSize2M
)

// MPI extension types (the paper's future-work evaluation).
type (
	// MPIWorld is an intra-node MPI-style communicator whose message path
	// is governed by the system's page policy.
	MPIWorld = mpi.World
	// MPIRank is one SPMD rank.
	MPIRank = mpi.Rank
)

// NewSystem builds a large-page-aware OpenMP system.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// NewMPIWorld builds an n-rank MPI-style world on sys (see internal/mpi).
func NewMPIWorld(sys *System, n int) (*MPIWorld, error) { return mpi.NewWorld(sys, n) }

// Opteron270 returns the model of the paper's AMD platform.
func Opteron270() Model { return machine.Opteron270() }

// XeonHT returns the model of the paper's Intel platform (hyper-threading
// enabled).
func XeonHT() Model { return machine.XeonHT() }

// Models returns both platform models.
func Models() []Model { return machine.Models() }

// NewKernel returns a fresh NAS kernel by name (BT, CG, FT, SP or MG).
func NewKernel(name string) (Kernel, error) { return npb.New(name) }

// Kernels lists the benchmark names in the paper's order.
func Kernels() []string { return npb.Names() }

// RunBenchmark executes one NAS benchmark end to end and returns its timing
// and counters.
func RunBenchmark(k Kernel, cfg RunConfig) (Result, error) { return npb.Run(k, cfg) }

// WriteTable1 prints the paper's Table 1 (TLB sizes and coverage).
func WriteTable1(w io.Writer) { bench.Table1(w) }

// WriteAllExperiments prints every table and figure of the evaluation at the
// given class.
func WriteAllExperiments(w io.Writer, class Class) error { return bench.All(w, class) }
