package hugeomp_test

import (
	"fmt"

	"hugeomp"
)

// The paper's Algorithm 3.1: an OpenMP parallel-for sum over a shared
// array, with the data backed by preallocated 2 MB pages.
func ExampleNewSystem() {
	sys, err := hugeomp.NewSystem(hugeomp.Config{
		Model:  hugeomp.Opteron270(),
		Policy: hugeomp.Policy2M,
	})
	if err != nil {
		panic(err)
	}
	arr := sys.MustArray("array", 1<<16)
	for i := range arr.Data {
		arr.Data[i] = 1
	}
	sys.Seal()

	rt, err := sys.NewRT(4)
	if err != nil {
		panic(err)
	}
	sum := rt.ParallelForReduce(nil, arr.Len(), hugeomp.For{Schedule: hugeomp.Static}, 0,
		func(tid int, c *hugeomp.Context, lo, hi int) float64 {
			arr.LoadRange(c, lo, hi)
			s := 0.0
			for i := lo; i < hi; i++ {
				s += arr.Data[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	fmt.Println(int(sum))
	// Output: 65536
}

// Running one of the paper's NAS benchmarks and reading its DTLB behaviour.
func ExampleRunBenchmark() {
	k, err := hugeomp.NewKernel("CG")
	if err != nil {
		panic(err)
	}
	res, err := hugeomp.RunBenchmark(k, hugeomp.RunConfig{
		Model:   hugeomp.Opteron270(),
		Threads: 2,
		Policy:  hugeomp.Policy2M,
		Class:   hugeomp.ClassT,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Kernel, res.Threads, res.Cycles > 0, res.Counters.Accesses() > 0)
	// Output: CG 2 true true
}

// Comparing the two page policies on the same workload: the 2 MB run
// performs identical work with far fewer page walks.
func ExampleConfig_pagePolicies() {
	run := func(policy hugeomp.PagePolicy) uint64 {
		sys, err := hugeomp.NewSystem(hugeomp.Config{
			Model:  hugeomp.Opteron270(),
			Policy: policy,
		})
		if err != nil {
			panic(err)
		}
		arr := sys.MustArray("data", 1<<20) // 8MB
		rt, err := sys.NewRT(1)
		if err != nil {
			panic(err)
		}
		c := rt.Contexts()[0]
		arr.LoadRange(c, 0, arr.Len())
		return c.Ctr.DTLBWalks()
	}
	w4, w2 := run(hugeomp.Policy4K), run(hugeomp.Policy2M)
	fmt.Println(w4/w2, "x fewer walks with 2MB pages")
	// Output: 512 x fewer walks with 2MB pages
}
