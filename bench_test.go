package hugeomp

// One testing.B benchmark per table and figure of the paper's evaluation
// section, plus ablation benches for the design choices called out in
// DESIGN.md. Figures run at class W here so `go test -bench=.` finishes in
// minutes; the full class-A reproduction is `go run ./cmd/experiments
// -class A` (recorded in EXPERIMENTS.md).

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"hugeomp/internal/bench"
	"hugeomp/internal/core"
	"hugeomp/internal/hugetlbfs"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
	"hugeomp/internal/units"
)

const benchClass = npb.ClassW

var printOnce sync.Map

// printExperiment emits an experiment's rows once per process so benchmark
// repetitions do not spam the output.
func printExperiment(name string, f func(w io.Writer)) {
	if _, dup := printOnce.LoadOrStore(name, true); dup {
		return
	}
	fmt.Fprintf(os.Stdout, "\n=== %s ===\n", name)
	f(os.Stdout)
}

// BenchmarkTable1TLBSizes regenerates Table 1 (processor TLB sizes and
// coverage) from the simulated CPUID descriptors.
func BenchmarkTable1TLBSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printExperiment("Table 1", func(w io.Writer) { bench.Table1(w) })
		_ = machine.Models()
	}
}

// BenchmarkTable2Footprints regenerates Table 2 (application memory
// footprints): every kernel's setup is executed and its instruction and
// data footprints measured.
func BenchmarkTable2Footprints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2Data(benchClass)
		if err != nil {
			b.Fatal(err)
		}
		printExperiment("Table 2", func(w io.Writer) { _ = bench.Table2(w, benchClass) })
		var data float64
		for _, r := range rows {
			data += r.DataMB
		}
		b.ReportMetric(data, "dataMB/suite")
	}
}

// BenchmarkFig3ITLBMissRate regenerates Figure 3: aggregate ITLB misses per
// second for every application at 4 threads on the Opteron with 4 KB pages.
func BenchmarkFig3ITLBMissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3Data(benchClass)
		if err != nil {
			b.Fatal(err)
		}
		printExperiment("Figure 3", func(w io.Writer) { _ = bench.Fig3(w, benchClass) })
		var worst float64
		for _, r := range rows {
			if r.MissesPerS > worst {
				worst = r.MissesPerS
			}
		}
		b.ReportMetric(worst, "worst-ITLB-miss/s")
	}
}

// BenchmarkFig4Scalability regenerates Figure 4, one sub-benchmark per
// (application, machine, page size, thread count) cell.
func BenchmarkFig4Scalability(b *testing.B) {
	for _, app := range npb.Names() {
		for _, model := range machine.Models() {
			for _, policy := range []core.PagePolicy{core.Policy4K, core.Policy2M} {
				for _, threads := range bench.Fig4Threads(model) {
					name := fmt.Sprintf("%s/%s/%v/%dthr", app, model.Name, policy, threads)
					b.Run(name, func(b *testing.B) {
						for i := 0; i < b.N; i++ {
							k, err := npb.New(app)
							if err != nil {
								b.Fatal(err)
							}
							res, err := npb.Run(k, npb.RunConfig{
								Model: model, Threads: threads,
								Policy: policy, Class: benchClass,
							})
							if err != nil {
								b.Fatal(err)
							}
							b.ReportMetric(res.Seconds, "sim-sec")
							b.ReportMetric(float64(res.Counters.DTLBWalks()), "walks")
						}
					})
				}
			}
		}
	}
}

// BenchmarkFig5DTLBMisses regenerates Figure 5: normalized DTLB misses at 4
// threads on the Opteron, 4 KB vs 2 MB pages.
func BenchmarkFig5DTLBMisses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5Data(benchClass)
		if err != nil {
			b.Fatal(err)
		}
		printExperiment("Figure 5", func(w io.Writer) { _ = bench.Fig5(w, benchClass) })
		for _, r := range rows {
			if r.Walks2M > 0 {
				b.ReportMetric(float64(r.Walks4K)/float64(r.Walks2M), r.App+"-reduction-x")
			}
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationSharedTLB compares the default partitioned SMT resource
// model against the mutex-serialised true-shared model on the Xeon at 8
// threads.
func BenchmarkAblationSharedTLB(b *testing.B) {
	for _, mode := range []machine.SharingMode{machine.SharePartition, machine.ShareTrue} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := npb.NewCG()
				res, err := npb.Run(k, npb.RunConfig{
					Model: machine.XeonHT(), Threads: 8,
					Policy: core.Policy4K, Class: npb.ClassS,
					Sharing: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Seconds, "sim-sec")
				b.ReportMetric(float64(res.Counters.DTLBWalks()), "walks")
			}
		})
	}
}

// BenchmarkAblationOnDemand compares the paper's startup preallocation of
// the hugetlbfs pool against reservation-based on-demand allocation.
func BenchmarkAblationOnDemand(b *testing.B) {
	for _, mode := range []hugetlbfs.Mode{hugetlbfs.Preallocate, hugetlbfs.OnDemand} {
		name := "preallocate"
		if mode == hugetlbfs.OnDemand {
			name = "on-demand"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(core.Config{
					Model:       machine.Opteron270(),
					Policy:      core.Policy2M,
					SharedBytes: 64 * units.MB,
					PhysBytes:   512 * units.MB,
					Hugetlb:     mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.NewArray("a", 1<<20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBarrier compares the central and tree (dissemination)
// barrier algorithms on a barrier-heavy workload.
func BenchmarkAblationBarrier(b *testing.B) {
	for _, algo := range []omp.BarrierAlgo{omp.CentralBarrier, omp.TreeBarrier} {
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := npb.NewMG() // many small regions -> many barriers
				res, err := npb.Run(k, npb.RunConfig{
					Model: machine.Opteron270(), Threads: 4,
					Policy: core.Policy4K, Class: npb.ClassS,
					Barrier: algo,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Seconds, "sim-sec")
				b.ReportMetric(float64(res.Counters.BarrierCyc), "barrier-cyc")
			}
		})
	}
}

// BenchmarkAblationSchedule compares static, dynamic and guided loop
// schedules under the strided z-solve workload.
func BenchmarkAblationSchedule(b *testing.B) {
	for _, sched := range []omp.ScheduleKind{omp.Static, omp.Dynamic, omp.Guided} {
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(core.Config{
					Model:       machine.Opteron270(),
					Policy:      core.Policy4K,
					SharedBytes: 32 * units.MB,
				})
				if err != nil {
					b.Fatal(err)
				}
				arr := sys.MustArray("grid", 1<<21) // 16MB
				rt, err := sys.NewRT(4)
				if err != nil {
					b.Fatal(err)
				}
				rt.ParallelFor(nil, 1024, omp.For{Schedule: sched, Chunk: 8},
					func(tid int, c *machine.Context, lo, hi int) {
						for l := lo; l < hi; l++ {
							arr.LoadStride(c, l, 512, 1024) // plane-strided lines
						}
					})
				b.ReportMetric(float64(rt.WallCycles()), "wall-cyc")
			}
		})
	}
}

// BenchmarkAblationMixedPolicy compares the three page policies, including
// the paper's future-work mixed allocator, on CG.
func BenchmarkAblationMixedPolicy(b *testing.B) {
	for _, policy := range []core.PagePolicy{core.Policy4K, core.PolicyMixed, core.Policy2M} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := npb.NewCG()
				res, err := npb.Run(k, npb.RunConfig{
					Model: machine.Opteron270(), Threads: 4,
					Policy: policy, Class: npb.ClassS,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Seconds, "sim-sec")
				b.ReportMetric(float64(res.Counters.DTLBWalks()), "walks")
			}
		})
	}
}

// BenchmarkAblationTransparent compares explicit preallocation (the paper's
// design) against the transparent reservation-based promotion extension and
// the 4KB baseline: after the first-touch warmup, transparent mode should
// approach Policy2M.
func BenchmarkAblationTransparent(b *testing.B) {
	for _, policy := range []core.PagePolicy{core.Policy4K, core.PolicyTransparent, core.Policy2M} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := npb.NewCG()
				res, err := npb.Run(k, npb.RunConfig{
					Model: machine.Opteron270(), Threads: 4,
					Policy: policy, Class: npb.ClassS,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Seconds, "sim-sec")
				b.ReportMetric(float64(res.Counters.DTLBWalks()), "walks")
				b.ReportMetric(float64(res.Counters.SoftFaults), "faults")
			}
		})
	}
}

// --- Simulator throughput (not a paper experiment: how fast the simulator
// itself runs, in simulated accesses per host second) ---

// BenchmarkSimulatorScalarLoads measures the scalar access path.
func BenchmarkSimulatorScalarLoads(b *testing.B) {
	sys, err := core.NewSystem(core.Config{
		Model: machine.Opteron270(), Policy: core.Policy4K, SharedBytes: 32 * units.MB,
	})
	if err != nil {
		b.Fatal(err)
	}
	arr := sys.MustArray("a", 1<<20)
	rt, err := sys.NewRT(1)
	if err != nil {
		b.Fatal(err)
	}
	c := rt.Contexts()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Load(arr.Addr(i & (1<<20 - 1)))
	}
}

// BenchmarkSimulatorRangeLoads measures the coalesced dense-loop fast path.
func BenchmarkSimulatorRangeLoads(b *testing.B) {
	sys, err := core.NewSystem(core.Config{
		Model: machine.Opteron270(), Policy: core.Policy4K, SharedBytes: 32 * units.MB,
	})
	if err != nil {
		b.Fatal(err)
	}
	arr := sys.MustArray("a", 1<<20)
	rt, err := sys.NewRT(1)
	if err != nil {
		b.Fatal(err)
	}
	c := rt.Contexts()[0]
	const chunk = 1 << 16
	b.ResetTimer()
	for i := 0; i < b.N; i += chunk {
		arr.LoadRange(c, 0, chunk)
	}
}

// BenchmarkSimulatorStridedLoads measures the TLB-hostile strided path
// (every access probes and most walk).
func BenchmarkSimulatorStridedLoads(b *testing.B) {
	sys, err := core.NewSystem(core.Config{
		Model: machine.Opteron270(), Policy: core.Policy4K, SharedBytes: 32 * units.MB,
	})
	if err != nil {
		b.Fatal(err)
	}
	arr := sys.MustArray("a", 1<<21) // 16MB
	rt, err := sys.NewRT(1)
	if err != nil {
		b.Fatal(err)
	}
	c := rt.Contexts()[0]
	const lineLen = 1 << 11
	b.ResetTimer()
	for i := 0; i < b.N; i += lineLen {
		arr.LoadStride(c, 0, lineLen, 1024) // 8KB stride
	}
}
