package bench

import (
	"runtime"
	"testing"

	"hugeomp/internal/npb"
)

// TestMulticoreRowsAlwaysEmitted: the scaling sweep must emit a row for
// every requested simulated-thread count even when the host has fewer procs
// — recording the cap instead of silently dropping the point — with
// GOMAXPROCS clamped to the host and the speedup/efficiency chain anchored
// at the single-thread row.
func TestMulticoreRowsAlwaysEmitted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two CG class-S simulations")
	}
	threads := []int{1, 2, 8}
	pts, err := measureMulticore(func() npb.Kernel { return npb.NewCG() }, npb.ClassS, threads)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(threads) {
		t.Fatalf("emitted %d rows for %d requested thread counts", len(pts), len(threads))
	}
	host := runtime.NumCPU()
	for i, pt := range pts {
		if pt.Threads != threads[i] {
			t.Errorf("row %d: threads %d, want %d", i, pt.Threads, threads[i])
		}
		wantProcs := threads[i]
		if wantProcs > host {
			wantProcs = host
		}
		if pt.GOMAXPROCS != wantProcs {
			t.Errorf("row %d: GOMAXPROCS %d, want min(%d, %d host procs)", i, pt.GOMAXPROCS, threads[i], host)
		}
		if pt.Capped != (threads[i] > host) {
			t.Errorf("row %d: Capped=%v on a %d-proc host for %d threads", i, pt.Capped, host, threads[i])
		}
		if pt.WallSeconds <= 0 {
			t.Errorf("row %d: wall %.3fs", i, pt.WallSeconds)
		}
	}
	if pts[0].SpeedupX != 1 || pts[0].Efficiency != 1 {
		t.Errorf("single-thread anchor row has speedup %.2f, efficiency %.2f; want 1, 1",
			pts[0].SpeedupX, pts[0].Efficiency)
	}
	if pts[2].Model != "Opteron270x2" {
		t.Errorf("8-thread row ran on %q, want the 4-chip Opteron270x2", pts[2].Model)
	}
}
