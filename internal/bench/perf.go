package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/units"
)

// SimPerf records the simulator's host-side performance: nanoseconds of host
// time per simulated access for the canonical access patterns, and the wall
// time of a full Figure 4 sweep. It is emitted as BENCH_simulator.json by
// `experiments -bench` so the repository carries a perf trajectory across
// PRs.
type SimPerf struct {
	// DenseNs is the bulk fast path on a unit-stride run (8-byte elements).
	DenseNs float64 `json:"dense_unit_stride_ns_per_access"`
	// DenseScalarNs is the O(elements) reference path on the same run.
	DenseScalarNs float64 `json:"dense_unit_stride_scalar_ns_per_access"`
	// DenseSpeedup is DenseScalarNs / DenseNs.
	DenseSpeedup float64 `json:"dense_speedup_x"`
	// StridedNs is a page-hostile 8 KB stride (one line per element, most
	// accesses missing the TLB).
	StridedNs float64 `json:"strided_8k_ns_per_access"`
	// RandomNs is scalar loads at pseudo-random addresses.
	RandomNs float64 `json:"random_ns_per_access"`
	// Fig4WallSeconds is the host wall time of one full Fig4Data sweep at
	// Fig4Class on the parallel harness.
	Fig4WallSeconds float64 `json:"fig4_wall_seconds"`
	Fig4Class       string  `json:"fig4_class"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
}

func perfSystem(elems int) (*core.System, *machine.Context, *core.Array, error) {
	sys, err := core.NewSystem(core.Config{
		Model:       machine.Opteron270(),
		Policy:      core.Policy4K,
		SharedBytes: 64 * units.MB,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	arr, err := sys.NewArray("perf", elems)
	if err != nil {
		return nil, nil, nil, err
	}
	rt, err := sys.NewRT(1)
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, rt.Contexts()[0], arr, nil
}

// timePattern runs fn (which performs accesses simulated accesses) until it
// has consumed at least minWall of host time, and returns ns per access.
func timePattern(accesses int, fn func()) float64 {
	const minWall = 50 * time.Millisecond
	total := 0
	start := time.Now()
	for time.Since(start) < minWall {
		fn()
		total += accesses
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total)
}

// MeasureSimPerf measures the simulator's host-side speed on the canonical
// access patterns and times one Figure 4 sweep at the given class (apps nil
// = all five kernels).
func MeasureSimPerf(class npb.Class, apps []string) (SimPerf, error) {
	p := SimPerf{Fig4Class: class.String(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Dense unit stride: the bulk fast path vs the scalar reference. The
	// working set is L1-resident (32 KB in a 64 KB L1) and warmed before
	// timing, so the measurement isolates the per-access bookkeeping the
	// fast path removes; a streaming-sized array would instead be dominated
	// by the L2-miss machinery, which both paths pay identically per line.
	{
		const elems = 1 << 12 // 32 KB
		_, c, arr, err := perfSystem(elems)
		if err != nil {
			return p, err
		}
		arr.LoadRange(c, 0, elems) // warm the simulated caches
		p.DenseNs = timePattern(elems, func() { arr.LoadRange(c, 0, elems) })
		_, cs, arrS, err := perfSystem(elems)
		if err != nil {
			return p, err
		}
		cs.AccessRangeScalar(arrS.Addr(0), elems, 8, false)
		p.DenseScalarNs = timePattern(elems, func() {
			cs.AccessRangeScalar(arrS.Addr(0), elems, 8, false)
		})
		if p.DenseNs > 0 {
			p.DenseSpeedup = p.DenseScalarNs / p.DenseNs
		}
	}

	// Page-hostile stride: 8 KB between elements, TLB-bound.
	{
		const elems = 1 << 21 // 16 MB
		const count = 1 << 11
		_, c, arr, err := perfSystem(elems)
		if err != nil {
			return p, err
		}
		p.StridedNs = timePattern(count, func() { arr.LoadStride(c, 0, count, 1024) })
	}

	// Random scalar loads.
	{
		const elems = 1 << 20 // 8 MB
		_, c, arr, err := perfSystem(elems)
		if err != nil {
			return p, err
		}
		const count = 1 << 13
		seed := uint64(1)
		p.RandomNs = timePattern(count, func() {
			for i := 0; i < count; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				c.Load(arr.Addr(int(seed>>17) & (elems - 1)))
			}
		})
	}

	start := time.Now()
	if _, err := Fig4Data(class, apps); err != nil {
		return p, err
	}
	p.Fig4WallSeconds = time.Since(start).Seconds()
	return p, nil
}

// WriteSimPerf emits p as indented JSON (the BENCH_simulator.json format).
func WriteSimPerf(w io.Writer, p SimPerf) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// FormatSimPerf renders a human-readable summary of p.
func FormatSimPerf(p SimPerf) string {
	return fmt.Sprintf(
		"simulator perf: dense %.1f ns/access (scalar %.1f, speedup %.1fx), strided %.1f, random %.1f; Fig4 class %s sweep %.1fs on %d workers",
		p.DenseNs, p.DenseScalarNs, p.DenseSpeedup, p.StridedNs, p.RandomNs,
		p.Fig4Class, p.Fig4WallSeconds, p.GOMAXPROCS)
}
