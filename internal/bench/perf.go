package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/memo"
	"hugeomp/internal/npb"
	"hugeomp/internal/stats"
	"hugeomp/internal/units"
)

// multicoreThreads is the simulated team sizes of the scaling sweeps.
var multicoreThreads = []int{1, 2, 4, 8}

// SimPerf records the simulator's host-side performance: nanoseconds of host
// time per simulated access for the canonical access patterns, and the wall
// time of a full Figure 4 sweep. It is emitted as BENCH_simulator.json by
// `experiments -bench` so the repository carries a perf trajectory across
// PRs.
type SimPerf struct {
	// DenseNs is the bulk fast path on a unit-stride run (8-byte elements).
	DenseNs float64 `json:"dense_unit_stride_ns_per_access"`
	// DenseScalarNs is the O(elements) reference path on the same run.
	DenseScalarNs float64 `json:"dense_unit_stride_scalar_ns_per_access"`
	// DenseSpeedup is DenseScalarNs / DenseNs.
	DenseSpeedup float64 `json:"dense_speedup_x"`
	// StridedNs is a page-hostile 8 KB stride (one line per element, most
	// accesses missing the TLB).
	StridedNs float64 `json:"strided_8k_ns_per_access"`
	// RandomNs is committed scalar loads at pseudo-random addresses over an
	// 8 MB vector (the pre-gather cost of an indexed access, TLB-hostile).
	RandomNs float64 `json:"random_ns_per_access"`
	// RandomScalarNs is the pristine per-element reference engine
	// (AccessScalarRef) on the identical pseudo-random address stream.
	RandomScalarNs float64 `json:"random_scalar_ns_per_access"`
	// RandomSpeedup is RandomScalarNs / RandomNs. At this TLB-hostile size
	// most accesses walk in both engines (the memos only front TLB hits), so
	// the ratio hovers near 1.0 and mostly tracks host noise; the fast
	// path's wins show in RandomFastNs and SingleAddrNs, and the historical
	// 307→~125 ns drop came from the shared TLB/cache layout rework, which
	// both engines inherit.
	RandomSpeedup float64 `json:"random_speedup_x"`
	// RandomFastNs is the same pseudo-random pattern confined to a 128 KB
	// working set — 32 pages, exactly the Opteron's L1 DTLB reach, so after
	// warmup every translation is a memo hit and no walks or level
	// promotions occur — isolating the translation-memo plus
	// set-indexed-probe cost of the scalar fast path.
	RandomFastNs float64 `json:"random_fast_ns_per_access"`
	// SingleAddrNs is repeated loads of one address: the address-pattern
	// fold memo's best case (one probe, bulk-accounted hit cycles).
	SingleAddrNs float64 `json:"singleaddr_ns_per_access"`
	// GatherNs is the bulk indexed path (GatherRange) on a reused
	// pseudo-random index list over a TLB-hostile vector.
	GatherNs float64 `json:"gather_ns_per_access"`
	// GatherScalarNs is the per-element reference on the same list.
	GatherScalarNs float64 `json:"gather_scalar_ns_per_access"`
	// GatherSpeedup is GatherScalarNs / GatherNs.
	GatherSpeedup float64 `json:"gather_speedup_x"`
	// Fig4WallSeconds is the host wall time of one full Fig4Data sweep at
	// Fig4Class on the parallel harness.
	Fig4WallSeconds float64 `json:"fig4_wall_seconds"`
	Fig4Class       string  `json:"fig4_class"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	// HostProcs is runtime.NumCPU() at measurement time: the physical limit
	// every capped multicore row ran against.
	HostProcs int `json:"host_procs"`
	// SnapshotFork compares a repeated 16-config sweep cold-constructed per
	// cell against the warm snapshot-fork + result-memo path the sweep
	// driver uses.
	SnapshotFork SnapshotForkPerf `json:"snapshot_fork"`
	// Service is the service-scale throughput section: a mixed request load
	// replayed on a warm-restarted server over a populated shared disk cache
	// versus a no-disk-cache single-template baseline.
	Service ServiceThroughputPerf `json:"service_throughput"`
	// Multicore is the CG multi-core scaling section: the class-W region
	// simulation swept over 1/2/4/8 simulated threads with GOMAXPROCS set
	// to min(threads, host procs), demonstrating that N simulated threads
	// use N host cores now that translation, coherence and counters no
	// longer serialise on shared locks. Rows whose thread count exceeds the
	// host's are still emitted — time-sliced — with Capped recorded, so
	// few-core hosts produce trajectory data too.
	Multicore []MulticorePoint `json:"multicore_cg"`
	// MulticoreMG is the same sweep over the MG kernel.
	MulticoreMG []MulticorePoint `json:"multicore_mg"`
}

// SnapshotForkPerf is the snapshot/fork + memoization section: the same
// 16-cell CG sweep (4 unique page-walk costs × 4 repeats) run twice — once
// constructing every system cold, once forking a single warmed snapshot and
// deduping repeated configs through the result memo cache.
type SnapshotForkPerf struct {
	// Configs is the total grid size; UniqueConfigs of them are distinct, so
	// the fork+memo path simulates UniqueConfigs cells and serves the rest
	// from the cache.
	Configs       int `json:"configs"`
	UniqueConfigs int `json:"unique_configs"`
	// ColdSeconds constructs system + kernel from scratch for every cell.
	ColdSeconds float64 `json:"cold_seconds"`
	// ForkSeconds builds one warm template, then forks per unique cell —
	// template construction is included, so the ratio is end-to-end.
	ForkSeconds float64 `json:"fork_memo_seconds"`
	// SpeedupX is ColdSeconds / ForkSeconds (guarded >= 3x by make bench).
	SpeedupX   float64 `json:"speedup_x"`
	MemoHits   uint64  `json:"memo_hits"`
	MemoMisses uint64  `json:"memo_misses"`
}

// MulticorePoint is one simulated-thread count of a multi-core scaling
// sweep.
type MulticorePoint struct {
	// Threads is the simulated team size.
	Threads int `json:"threads"`
	// Model is the simulated machine (8 threads need a 4-chip Opteron).
	Model string `json:"model"`
	// GOMAXPROCS is the host parallelism the row ran at:
	// min(Threads, host procs).
	GOMAXPROCS int `json:"gomaxprocs"`
	// Capped records that the host had fewer procs than simulated threads,
	// so the row ran time-sliced and understates the achievable speedup.
	Capped      bool    `json:"capped,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// SpeedupX is relative to the Threads=1 row of the same sweep.
	SpeedupX float64 `json:"speedup_x"`
	// Efficiency is SpeedupX normalised by the thread count.
	Efficiency float64 `json:"efficiency"`
}

// perfSnap is the shared warmed snapshot behind every measurement section
// that uses the canonical perf machine (Opteron 270, 4 KB policy, 64 MB
// space): the system is constructed once, lazily, and each section forks it
// instead of re-running the address-space construction. The array each
// section needs is allocated on its private fork, so sections never see each
// other's mappings — and a forked system behaves bit-identically to a
// cold-built one (the warm_test equivalence suite pins this).
var (
	perfSnapOnce sync.Once
	perfSnap     *core.Snapshot
	perfSnapErr  error
)

func perfSystem(elems int) (*core.System, *machine.Context, *core.Array, error) {
	perfSnapOnce.Do(func() {
		sys, err := core.NewSystem(core.Config{
			Model:       machine.Opteron270(),
			Policy:      core.Policy4K,
			SharedBytes: 64 * units.MB,
		})
		if err != nil {
			perfSnapErr = err
			return
		}
		perfSnap = sys.Snapshot()
	})
	if perfSnapErr != nil {
		return nil, nil, nil, perfSnapErr
	}
	sys := perfSnap.Fork()
	arr, err := sys.NewArray("perf", elems)
	if err != nil {
		return nil, nil, nil, err
	}
	rt, err := sys.NewRT(1)
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, rt.Contexts()[0], arr, nil
}

// timePattern runs fn (which performs accesses simulated accesses) until it
// has consumed at least minWall of host time, and returns ns per access.
func timePattern(accesses int, fn func()) float64 {
	const minWall = 50 * time.Millisecond
	total := 0
	start := time.Now()
	for time.Since(start) < minWall {
		fn()
		total += accesses
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total)
}

// measureDense times the bulk unit-stride fast path and its scalar
// reference. The working set is L1-resident (32 KB in a 64 KB L1) and warmed
// before timing, so the measurement isolates the per-access bookkeeping the
// fast path removes; a streaming-sized array would instead be dominated by
// the L2-miss machinery, which both paths pay identically per line.
func measureDense() (dense, scalar float64, err error) {
	const elems = 1 << 12 // 32 KB
	_, c, arr, err := perfSystem(elems)
	if err != nil {
		return 0, 0, err
	}
	arr.LoadRange(c, 0, elems) // warm the simulated caches
	dense = timePattern(elems, func() { arr.LoadRange(c, 0, elems) })
	_, cs, arrS, err := perfSystem(elems)
	if err != nil {
		return 0, 0, err
	}
	cs.AccessRangeScalar(arrS.Addr(0), elems, 8, false)
	scalar = timePattern(elems, func() {
		cs.AccessRangeScalar(arrS.Addr(0), elems, 8, false)
	})
	return dense, scalar, nil
}

// gatherIndexList builds the reused pseudo-random index list of the gather
// measurements: count indices over an elems-element vector — far beyond the
// 4 KB DTLB reach, so the pattern is translation-bound like CG's matvec.
func gatherIndexList(elems, count int) []int64 {
	idx := make([]int64, count)
	seed := uint64(1)
	for i := range idx {
		seed = seed*6364136223846793005 + 1442695040888963407
		idx[i] = int64(int(seed>>17) & (elems - 1))
	}
	return idx
}

// measureGather times the bulk indexed path and its sorted scalar reference
// on a reused pseudo-random index list over a 1 MB vector — exactly the
// simulated L2 capacity, the stress end of CG's gather (class W's vector is
// ~56 KB and class A's ~112 KB, both cache-resident), with 256 pages of DTLB
// footprint against a 32-entry L1 DTLB so the pattern stays
// translation-bound.
func measureGather() (gather, scalar float64, err error) {
	const elems = 1 << 17 // 1 MB
	const count = 1 << 17
	idx := gatherIndexList(elems, count)
	_, c, arr, err := perfSystem(elems)
	if err != nil {
		return 0, 0, err
	}
	arr.Gather(c, idx) // warm the simulated caches and translation cache
	gather = timePattern(count, func() { arr.Gather(c, idx) })
	_, cs, arrS, err := perfSystem(elems)
	if err != nil {
		return 0, 0, err
	}
	cs.GatherRangeScalar(arrS.Base, 8, idx)
	scalar = timePattern(count, func() { cs.GatherRangeScalar(arrS.Base, 8, idx) })
	return gather, scalar, nil
}

// randomSeedStep is the LCG of every pseudo-random address stream in this
// file (Knuth's MMIX multiplier) — cheap enough that the generator itself is
// noise next to a simulated access.
func randomSeedStep(seed uint64) uint64 {
	return seed*6364136223846793005 + 1442695040888963407
}

// measureRandom times the committed scalar fast path on pseudo-random loads
// over an elems-element vector and, when withRef is set, the per-element
// reference engine on the identical address stream.
func measureRandom(elems int, withRef bool) (committed, scalar float64, err error) {
	const count = 1 << 13
	_, c, arr, err := perfSystem(elems)
	if err != nil {
		return 0, 0, err
	}
	seed := uint64(1)
	committed = timePattern(count, func() {
		for i := 0; i < count; i++ {
			seed = randomSeedStep(seed)
			c.Load(arr.Addr(int(seed>>17) & (elems - 1)))
		}
	})
	if !withRef {
		return committed, 0, nil
	}
	_, cs, arrS, err := perfSystem(elems)
	if err != nil {
		return 0, 0, err
	}
	seedS := uint64(1)
	scalar = timePattern(count, func() {
		for i := 0; i < count; i++ {
			seedS = randomSeedStep(seedS)
			cs.AccessScalarRef(arrS.Addr(int(seedS>>17)&(elems-1)), false)
		}
	})
	return committed, scalar, nil
}

// measureSingleAddr times repeated committed loads of a single address — the
// degenerate pointer-chase / spin-read pattern the fold memo collapses to
// one probe plus bulk-accounted hit cycles.
func measureSingleAddr() (float64, error) {
	_, c, arr, err := perfSystem(1 << 12)
	if err != nil {
		return 0, err
	}
	va := arr.Addr(0)
	c.Load(va) // warm translation and line
	const count = 1 << 13
	return timePattern(count, func() {
		for i := 0; i < count; i++ {
			c.Load(va)
		}
	}), nil
}

// snapshotForkConfig builds cell configs of the snapshot-fork sweep: CG at
// class T, 2 threads, with the page-walk cost as the swept parameter.
func snapshotForkConfig(walkRefCyc uint64) npb.RunConfig {
	m := machine.Opteron270()
	m.Costs.WalkRefCyc = walkRefCyc
	return npb.RunConfig{
		Model: m, Threads: 2, Policy: core.Policy4K, Class: npb.ClassT,
	}
}

// measureSnapshotFork times the 16-cell repeated sweep both ways. The grid
// repeats each unique walk cost 4 times — the shape of a sweep whose outer
// product revisits grid points — so the fork+memo path pays one warm
// construction plus one forked run per unique cost and serves 12 of the 16
// cells from the memo cache.
func measureSnapshotFork() (SnapshotForkPerf, error) {
	walks := []uint64{10, 25, 50, 100}
	const repeats = 4
	sf := SnapshotForkPerf{Configs: len(walks) * repeats, UniqueConfigs: len(walks)}

	start := time.Now()
	for r := 0; r < repeats; r++ {
		for _, wv := range walks {
			k, err := npb.New("CG")
			if err != nil {
				return sf, err
			}
			if _, err := npb.Run(k, snapshotForkConfig(wv)); err != nil {
				return sf, err
			}
		}
	}
	sf.ColdSeconds = time.Since(start).Seconds()

	start = time.Now()
	warm, err := npb.NewWarm("CG", snapshotForkConfig(walks[0]))
	if err != nil {
		return sf, err
	}
	cache := memo.New()
	for r := 0; r < repeats; r++ {
		for _, wv := range walks {
			cfg := snapshotForkConfig(wv)
			var res npb.Result
			if _, err := cache.GetOrCompute(memo.MustKey("CG", cfg),
				func() (any, error) { return warm.Run(cfg) }, &res); err != nil {
				return sf, err
			}
		}
	}
	sf.ForkSeconds = time.Since(start).Seconds()
	sf.MemoHits, sf.MemoMisses = cache.Stats()
	if sf.ForkSeconds > 0 {
		sf.SpeedupX = sf.ColdSeconds / sf.ForkSeconds
	}
	return sf, nil
}

// multicoreModel returns the simulated machine for a team of `threads`: the
// paper's Opteron 270 with coherence enabled — so the sweep exercises the
// sharded snoop bus and the private-line fast path under real host
// parallelism — and, for teams beyond its four contexts, a doubled
// four-chip board of the same cores ("Opteron270x2").
func multicoreModel(threads int) machine.Model {
	m := machine.Opteron270()
	m.Coherent = true
	if threads > m.MaxThreads() {
		m.Chips = 4
		m.Name = "Opteron270x2"
	}
	return m
}

// measureMulticore times one kernel's region simulation at each simulated
// team size in threads, with GOMAXPROCS set to min(threads, host procs) so
// every simulated thread that can get a host core does. Rows the host cannot
// physically parallelise are still emitted — time-sliced, with Capped
// recorded — so few-core hosts produce the full trajectory instead of
// silently dropping points (the caller logs the cap). Setup (matrix
// generation) happens outside the timed region; only the simulated parallel
// regions — where the team runs as real goroutines — are measured. Speedups
// are relative to the first (single-thread) row.
func measureMulticore(newKernel func() npb.Kernel, class npb.Class, threads []int) ([]MulticorePoint, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var pts []MulticorePoint
	for _, n := range threads {
		model := multicoreModel(n)
		procs := n
		capped := false
		if host := runtime.NumCPU(); procs > host {
			procs = host
			capped = true
		}
		runtime.GOMAXPROCS(procs)
		k := newKernel()
		shared := int64(64 * units.MB)
		sys, err := core.NewSystem(core.Config{
			Model:       model,
			Policy:      core.Policy4K,
			SharedBytes: shared,
			PhysBytes:   4 * shared,
		})
		if err != nil {
			return nil, err
		}
		if err := k.Setup(sys, class); err != nil {
			return nil, err
		}
		sys.Seal()
		rt, err := sys.NewRT(n)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := k.Run(rt, k.DefaultIterations(class)); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		pt := MulticorePoint{
			Threads:     n,
			Model:       model.Name,
			GOMAXPROCS:  procs,
			Capped:      capped,
			WallSeconds: wall,
			SpeedupX:    1,
		}
		if len(pts) > 0 && wall > 0 {
			pt.SpeedupX = pts[0].WallSeconds / wall
		}
		pt.Efficiency = stats.Efficiency(pt.SpeedupX, n)
		pts = append(pts, pt)
	}
	return pts, nil
}

// MeasureSimPerf measures the simulator's host-side speed on the canonical
// access patterns and times one Figure 4 sweep at the given class (apps nil
// = all five kernels).
func MeasureSimPerf(class npb.Class, apps []string) (SimPerf, error) {
	p := SimPerf{
		Fig4Class:  class.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HostProcs:  runtime.NumCPU(),
	}

	var err error
	if p.DenseNs, p.DenseScalarNs, err = measureDense(); err != nil {
		return p, err
	}
	if p.DenseNs > 0 {
		p.DenseSpeedup = p.DenseScalarNs / p.DenseNs
	}

	// Page-hostile stride: 8 KB between elements, TLB-bound.
	{
		const elems = 1 << 21 // 16 MB
		const count = 1 << 11
		_, c, arr, err := perfSystem(elems)
		if err != nil {
			return p, err
		}
		p.StridedNs = timePattern(count, func() { arr.LoadStride(c, 0, count, 1024) })
	}

	// Random scalar loads: the committed fast path vs the per-element
	// reference on an 8 MB (TLB-hostile) vector, plus the DTLB-resident
	// variant and the single-address fold-memo best case.
	if p.RandomNs, p.RandomScalarNs, err = measureRandom(1<<20, true); err != nil {
		return p, err
	}
	if p.RandomNs > 0 {
		p.RandomSpeedup = p.RandomScalarNs / p.RandomNs
	}
	if p.RandomFastNs, _, err = measureRandom(1<<14, false); err != nil {
		return p, err
	}
	if p.SingleAddrNs, err = measureSingleAddr(); err != nil {
		return p, err
	}

	if p.GatherNs, p.GatherScalarNs, err = measureGather(); err != nil {
		return p, err
	}
	if p.GatherNs > 0 {
		p.GatherSpeedup = p.GatherScalarNs / p.GatherNs
	}

	if p.SnapshotFork, err = measureSnapshotFork(); err != nil {
		return p, err
	}

	if p.Service, err = MeasureServiceThroughput(); err != nil {
		return p, err
	}

	if p.Multicore, err = measureMulticore(func() npb.Kernel { return npb.NewCG() }, npb.ClassW, multicoreThreads); err != nil {
		return p, err
	}
	if p.MulticoreMG, err = measureMulticore(func() npb.Kernel { return npb.NewMG() }, npb.ClassW, multicoreThreads); err != nil {
		return p, err
	}

	start := time.Now()
	if _, err := Fig4Data(class, apps); err != nil {
		return p, err
	}
	p.Fig4WallSeconds = time.Since(start).Seconds()
	return p, nil
}

// ReadSimPerf loads a committed BENCH_simulator.json.
func ReadSimPerf(path string) (SimPerf, error) {
	var p SimPerf
	raw, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	err = json.Unmarshal(raw, &p)
	return p, err
}

// minCGSpeedup4 is the parallel-efficiency floor RegressionCheck enforces: a
// 4-simulated-thread CG run on a host with at least 4 procs must beat the
// single-thread run by this factor, or coherence/counter contention has crept
// back into the parallel path.
const minCGSpeedup4 = 1.5

// maxRandomNs is the absolute ceiling RegressionCheck enforces on the
// committed random-access cost (8 MB vector). The growth seed measured
// ~307 ns/access on the reference host; the scalar overhaul (translation
// memo, set-indexed probes, batched drains, fold memo, packed TLB/cache
// layouts) brought that to ~125 ns. The aspirational 50 ns target is not
// reachable while keeping exact-LRU recency and byte-exact counters — what
// survives is ~10 dependent random host-cache touches per simulated access —
// so the ceiling pins the achieved level instead: a slide past it means one
// of the fast-path mechanisms stopped firing. Applied only on hosts with at
// least 4 procs (the same gate as the CG floor) so loaded or tiny CI hosts
// don't produce false alarms; the relative 2x guard always applies.
const maxRandomNs = 200

// minSnapshotForkSpeedup is the floor RegressionCheck enforces on the
// fork+memo sweep: the 16-cell repeated sweep must run at least this much
// faster through the warm snapshot + memo path than cold-constructing every
// cell. A slide below it means the fork stopped being O(metadata) (e.g. a
// fork method started deep-copying page frames) or the memo stopped hitting.
const minSnapshotForkSpeedup = 3.0

// minServiceSpeedup is the floor RegressionCheck enforces on the
// service-scale section: the mixed load on a warm-restarted server over a
// populated shared disk cache must run at least this much faster than the
// no-disk-cache single-template baseline. A slide below it means restarts
// stopped being served from disk or the template pool stopped retaining.
const minServiceSpeedup = 3.0

// minWarmRestartHitPct is the floor on the share of warm-restart requests
// answered from a cache layer without simulating.
const minWarmRestartHitPct = 90.0

// RegressionCheck re-measures the dense and gather fast paths and compares
// them against the committed baseline at path, returning an error if either
// regressed more than 2x. On hosts with at least 4 procs it also re-runs the
// CG scaling sweep at 1 and 4 simulated threads and fails if the 4-thread
// speedup falls below minCGSpeedup4; few-core hosts skip the floor (a
// time-sliced team cannot speed up) and say so in the report. Used by
// `make bench` as a cheap CI guard (the full Fig4 sweep is skipped).
func RegressionCheck(path string) (string, error) {
	base, err := ReadSimPerf(path)
	if err != nil {
		return "", fmt.Errorf("bench: baseline: %w", err)
	}
	dense, _, err := measureDense()
	if err != nil {
		return "", err
	}
	gather, _, err := measureGather()
	if err != nil {
		return "", err
	}
	random, _, err := measureRandom(1<<20, false)
	if err != nil {
		return "", err
	}
	report := fmt.Sprintf("dense %.2f ns/access (baseline %.2f), gather %.2f ns/access (baseline %.2f), random %.2f ns/access (baseline %.2f, ceiling %d)",
		dense, base.DenseNs, gather, base.GatherNs, random, base.RandomNs, maxRandomNs)
	if base.DenseNs > 0 && dense > 2*base.DenseNs {
		return report, fmt.Errorf("bench: dense fast path regressed >2x: %.2f ns/access vs baseline %.2f", dense, base.DenseNs)
	}
	if base.GatherNs > 0 && gather > 2*base.GatherNs {
		return report, fmt.Errorf("bench: gather fast path regressed >2x: %.2f ns/access vs baseline %.2f", gather, base.GatherNs)
	}
	if base.RandomNs > 0 && random > 2*base.RandomNs {
		return report, fmt.Errorf("bench: random scalar path regressed >2x: %.2f ns/access vs baseline %.2f", random, base.RandomNs)
	}
	if host := runtime.NumCPU(); host >= 4 && random > maxRandomNs {
		return report, fmt.Errorf(
			"bench: committed random access above absolute ceiling: %.2f ns/access > %d ns on a %d-proc host (scalar fast path stopped firing?)",
			random, maxRandomNs, host)
	}
	sf, err := measureSnapshotFork()
	if err != nil {
		return report, err
	}
	report += fmt.Sprintf(", snapshot-fork sweep %.1fx vs cold (floor %.1fx, %d/%d memo hits)",
		sf.SpeedupX, minSnapshotForkSpeedup, sf.MemoHits, uint64(sf.Configs))
	if sf.SpeedupX < minSnapshotForkSpeedup {
		return report, fmt.Errorf(
			"bench: snapshot-fork sweep speedup %.2fx < %.1fx floor (fork no longer O(metadata), or memo misses)",
			sf.SpeedupX, minSnapshotForkSpeedup)
	}
	if want := uint64(sf.Configs - sf.UniqueConfigs); sf.MemoHits != want {
		return report, fmt.Errorf("bench: memo served %d hits on the repeated sweep, want %d", sf.MemoHits, want)
	}
	svc, err := MeasureServiceThroughput()
	if err != nil {
		return report, err
	}
	report += fmt.Sprintf(", service warm-restart %.1fx vs single-template baseline (floor %.1fx, %.0f%% cache-answered, %d disk hits)",
		svc.SpeedupX, minServiceSpeedup, svc.WarmRestartHitPct, svc.DiskHits)
	if svc.SpeedupX < minServiceSpeedup {
		return report, fmt.Errorf(
			"bench: service throughput %.2fx < %.1fx floor over the no-disk-cache single-template baseline (disk layer cold, or template pool thrashing)",
			svc.SpeedupX, minServiceSpeedup)
	}
	if svc.WarmRestartHitPct < minWarmRestartHitPct {
		return report, fmt.Errorf(
			"bench: warm restart answered only %.0f%% of requests from cache, floor %.0f%% (disk entries unreadable?)",
			svc.WarmRestartHitPct, minWarmRestartHitPct)
	}
	if svc.DiskMisses != 0 {
		return report, fmt.Errorf(
			"bench: warm restart missed disk %d times on a fully populated cache", svc.DiskMisses)
	}
	if host := runtime.NumCPU(); host >= 4 {
		pts, err := measureMulticore(func() npb.Kernel { return npb.NewCG() }, npb.ClassW, []int{1, 4})
		if err != nil {
			return report, err
		}
		s := pts[1].SpeedupX
		report += fmt.Sprintf(", CG 4-thread speedup %.2fx (floor %.1fx)", s, minCGSpeedup4)
		if s < minCGSpeedup4 {
			return report, fmt.Errorf(
				"bench: parallel efficiency regressed: CG 4-thread speedup %.2fx < %.1fx floor on a %d-proc host",
				s, minCGSpeedup4, host)
		}
	} else {
		report += fmt.Sprintf(", CG speedup floor skipped (host has %d procs, need >= 4)", host)
	}
	return report, nil
}

// WriteSimPerf emits p as indented JSON (the BENCH_simulator.json format).
func WriteSimPerf(w io.Writer, p SimPerf) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// FormatSimPerf renders a human-readable summary of p.
func FormatSimPerf(p SimPerf) string {
	s := fmt.Sprintf(
		"simulator perf: dense %.1f ns/access (scalar %.1f, speedup %.1fx), strided %.1f, random %.1f (scalar %.1f, speedup %.1fx; dtlb-resident %.1f, single-addr %.1f), gather %.1f (scalar %.1f, speedup %.1fx); Fig4 class %s sweep %.1fs on %d workers",
		p.DenseNs, p.DenseScalarNs, p.DenseSpeedup, p.StridedNs,
		p.RandomNs, p.RandomScalarNs, p.RandomSpeedup, p.RandomFastNs, p.SingleAddrNs,
		p.GatherNs, p.GatherScalarNs, p.GatherSpeedup,
		p.Fig4Class, p.Fig4WallSeconds, p.GOMAXPROCS)
	if p.HostProcs > 0 {
		// The random and single-address rows are single-threaded and scale
		// with host core speed, not core count — trajectories are only
		// comparable between like hosts, so record what this one was.
		s += fmt.Sprintf("; random/single-addr rows measured single-threaded on a %d-proc host", p.HostProcs)
	}
	if p.SnapshotFork.Configs > 0 {
		s += fmt.Sprintf("; snapshot-fork sweep: %d cells (%d unique) cold %.2fs vs fork+memo %.2fs (%.1fx, %d memo hits)",
			p.SnapshotFork.Configs, p.SnapshotFork.UniqueConfigs,
			p.SnapshotFork.ColdSeconds, p.SnapshotFork.ForkSeconds,
			p.SnapshotFork.SpeedupX, p.SnapshotFork.MemoHits)
	}
	if p.Service.Requests > 0 {
		s += fmt.Sprintf("; service: %d mixed requests (%d unique) warm-restart %.2fs (%.0f req/s, %.0f%% cache-answered, %d disk hits) vs baseline %.2fs (%.0f req/s) = %.1fx",
			p.Service.Requests, p.Service.UniqueConfigs,
			p.Service.ServiceSeconds, p.Service.ServiceRPS,
			p.Service.WarmRestartHitPct, p.Service.DiskHits,
			p.Service.BaselineSeconds, p.Service.BaselineRPS, p.Service.SpeedupX)
	}
	s += formatMulticore("CG", p.Multicore)
	s += formatMulticore("MG", p.MulticoreMG)
	return s
}

func formatMulticore(name string, pts []MulticorePoint) string {
	var s string
	for _, m := range pts {
		cap := ""
		if m.Capped {
			cap = fmt.Sprintf(" capped@%d procs", m.GOMAXPROCS)
		}
		s += fmt.Sprintf("; %s %dT %.2fs (%.2fx, eff %.2f%s)",
			name, m.Threads, m.WallSeconds, m.SpeedupX, m.Efficiency, cap)
	}
	return s
}
