package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"hugeomp/internal/core"
	"hugeomp/internal/npb"
)

// ASCII renderings of the paper's figures, so `cmd/experiments -plot` shows
// shapes (who wins, where curves cross) and not just tables.

const barWidth = 46

func bar(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * barWidth))
	return strings.Repeat("█", n) + strings.Repeat("·", barWidth-n)
}

// Fig4Plot renders the scalability curves as per-app bar groups: one bar per
// (page size, thread count), scaled to the slowest run of the app.
func Fig4Plot(w io.Writer, class npb.Class, apps []string) error {
	pts, err := Fig4Data(class, apps)
	if err != nil {
		return err
	}
	type key struct {
		app, model string
	}
	groups := map[key]map[core.PagePolicy]map[int]float64{}
	var order []key
	for _, p := range pts {
		k := key{p.App, p.Model}
		if groups[k] == nil {
			groups[k] = map[core.PagePolicy]map[int]float64{}
			order = append(order, k)
		}
		if groups[k][p.Policy] == nil {
			groups[k][p.Policy] = map[int]float64{}
		}
		groups[k][p.Policy][p.Threads] = p.Seconds
	}
	fmt.Fprintf(w, "Figure 4 (plot): execution time, class %s — longer bar = slower\n", class)
	for _, k := range order {
		var max float64
		for _, byT := range groups[k] {
			for _, s := range byT {
				if s > max {
					max = s
				}
			}
		}
		fmt.Fprintf(w, "\n%s on %s\n", k.app, k.model)
		for _, pol := range []core.PagePolicy{core.Policy4K, core.Policy2M} {
			for _, t := range []int{1, 2, 4, 8} {
				s, ok := groups[k][pol][t]
				if !ok {
					continue
				}
				fmt.Fprintf(w, "  %-4v %d thr |%s| %.4fs\n", pol, t, bar(s/max), s)
			}
		}
	}
	return nil
}

// Fig5Plot renders the normalized DTLB miss bars the way the paper draws
// them: per app, the 4 KB bar is full scale and the 2 MB bar is normalized
// against it (log scale marker included because our reductions are large).
func Fig5Plot(w io.Writer, class npb.Class) error {
	rows, err := Fig5Data(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5 (plot): normalized DTLB misses at 4 threads, Opteron, class %s\n\n", class)
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s 4KB |%s| %d\n", r.App, bar(1), r.Walks4K)
		fmt.Fprintf(w, "     2MB |%s| %d (%.4fx)\n\n", bar(r.Normalized), r.Walks2M, r.Normalized)
	}
	return nil
}
