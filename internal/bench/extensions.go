package bench

import (
	"fmt"
	"io"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/par"
	"hugeomp/internal/stats"
)

// This file holds the experiments for the paper's future-work items, which
// this repository implements as extensions (DESIGN.md §5):
//
//   - the mixed and transparent page policies (paper §6, first future-work
//     paragraph);
//   - the Niagara-style interleaved-SMT platform (paper §2.1's other SMT
//     design point).

// PolicyRow is one application's execution time under every page policy.
type PolicyRow struct {
	App     string
	Seconds map[core.PagePolicy]float64
	Walks   map[core.PagePolicy]uint64
}

// ExtensionPolicies runs every application at 4 threads on the Opteron under
// all four page policies.
func ExtensionPolicies(class npb.Class) ([]PolicyRow, error) {
	policies := []core.PagePolicy{
		core.Policy4K, core.Policy2M, core.PolicyMixed, core.PolicyTransparent,
	}
	names := npb.Names()
	type cellRes struct {
		seconds float64
		walks   uint64
	}
	cells, err := par.Map(len(names)*len(policies), func(i int) (cellRes, error) {
		name := names[i/len(policies)]
		policy := policies[i%len(policies)]
		res, err := runCell(name, machine.Opteron270(), policy, 4, class)
		if err != nil {
			return cellRes{}, fmt.Errorf("bench: %s/%v: %w", name, policy, err)
		}
		return cellRes{res.Seconds, res.Counters.DTLBWalks()}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PolicyRow, len(names))
	for i, name := range names {
		row := PolicyRow{
			App:     name,
			Seconds: map[core.PagePolicy]float64{},
			Walks:   map[core.PagePolicy]uint64{},
		}
		for j, policy := range policies {
			c := cells[i*len(policies)+j]
			row.Seconds[policy] = c.seconds
			row.Walks[policy] = c.walks
		}
		rows[i] = row
	}
	return rows, nil
}

// NiagaraPoint is one thread-count measurement on the Niagara extension
// model.
type NiagaraPoint struct {
	Threads int
	Policy  core.PagePolicy
	Seconds float64
}

// ExtensionNiagara sweeps CG across the NiagaraT1's 32 hardware threads:
// interleaved SMT keeps scaling past one thread per core, unlike the Xeon.
func ExtensionNiagara(class npb.Class) ([]NiagaraPoint, error) {
	threadCounts := []int{1, 2, 4, 8, 16, 32}
	policies := []core.PagePolicy{core.Policy4K, core.Policy2M}
	return par.Map(len(policies)*len(threadCounts), func(i int) (NiagaraPoint, error) {
		policy := policies[i/len(threadCounts)]
		threads := threadCounts[i%len(threadCounts)]
		res, err := runCell("CG", machine.NiagaraT1(), policy, threads, class)
		if err != nil {
			return NiagaraPoint{}, err
		}
		return NiagaraPoint{Threads: threads, Policy: policy, Seconds: res.Seconds}, nil
	})
}

// Extensions prints both future-work experiments.
func Extensions(w io.Writer, class npb.Class) error {
	rows, err := ExtensionPolicies(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Extension 1: page policies incl. the paper's future work (4 threads, Opteron, class %s)\n", class)
	fmt.Fprintf(w, "%-6s%12s%12s%12s%14s%18s\n", "App", "4KB", "2MB", "mixed", "transparent", "transp. vs 4KB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s%11.4fs%11.4fs%11.4fs%13.4fs%17.1f%%\n",
			r.App,
			r.Seconds[core.Policy4K], r.Seconds[core.Policy2M],
			r.Seconds[core.PolicyMixed], r.Seconds[core.PolicyTransparent],
			stats.ImprovementPct(r.Seconds[core.Policy4K], r.Seconds[core.PolicyTransparent]))
	}

	pts, err := ExtensionNiagara(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nExtension 2: CG on the NiagaraT1 (interleaved SMT, 8 cores x 4 threads, class %s)\n", class)
	fmt.Fprintf(w, "%-8s%12s%12s\n", "Threads", "4KB", "2MB")
	byT := map[int]map[core.PagePolicy]float64{}
	for _, p := range pts {
		if byT[p.Threads] == nil {
			byT[p.Threads] = map[core.PagePolicy]float64{}
		}
		byT[p.Threads][p.Policy] = p.Seconds
	}
	for _, t := range []int{1, 2, 4, 8, 16, 32} {
		fmt.Fprintf(w, "%-8d%11.4fs%11.4fs\n", t, byT[t][core.Policy4K], byT[t][core.Policy2M])
	}
	return nil
}
