package bench

import (
	"fmt"
	"io"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/stats"
)

// This file holds the experiments for the paper's future-work items, which
// this repository implements as extensions (DESIGN.md §5):
//
//   - the mixed and transparent page policies (paper §6, first future-work
//     paragraph);
//   - the Niagara-style interleaved-SMT platform (paper §2.1's other SMT
//     design point).

// PolicyRow is one application's execution time under every page policy.
type PolicyRow struct {
	App     string
	Seconds map[core.PagePolicy]float64
	Walks   map[core.PagePolicy]uint64
}

// ExtensionPolicies runs every application at 4 threads on the Opteron under
// all four page policies.
func ExtensionPolicies(class npb.Class) ([]PolicyRow, error) {
	policies := []core.PagePolicy{
		core.Policy4K, core.Policy2M, core.PolicyMixed, core.PolicyTransparent,
	}
	var rows []PolicyRow
	for _, name := range npb.Names() {
		row := PolicyRow{
			App:     name,
			Seconds: map[core.PagePolicy]float64{},
			Walks:   map[core.PagePolicy]uint64{},
		}
		for _, policy := range policies {
			k, err := npb.New(name)
			if err != nil {
				return nil, err
			}
			res, err := npb.Run(k, npb.RunConfig{
				Model:   machine.Opteron270(),
				Threads: 4,
				Policy:  policy,
				Class:   class,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%v: %w", name, policy, err)
			}
			row.Seconds[policy] = res.Seconds
			row.Walks[policy] = res.Counters.DTLBWalks()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// NiagaraPoint is one thread-count measurement on the Niagara extension
// model.
type NiagaraPoint struct {
	Threads int
	Policy  core.PagePolicy
	Seconds float64
}

// ExtensionNiagara sweeps CG across the NiagaraT1's 32 hardware threads:
// interleaved SMT keeps scaling past one thread per core, unlike the Xeon.
func ExtensionNiagara(class npb.Class) ([]NiagaraPoint, error) {
	var pts []NiagaraPoint
	for _, policy := range []core.PagePolicy{core.Policy4K, core.Policy2M} {
		for _, threads := range []int{1, 2, 4, 8, 16, 32} {
			k := npb.NewCG()
			res, err := npb.Run(k, npb.RunConfig{
				Model:   machine.NiagaraT1(),
				Threads: threads,
				Policy:  policy,
				Class:   class,
			})
			if err != nil {
				return nil, err
			}
			pts = append(pts, NiagaraPoint{Threads: threads, Policy: policy, Seconds: res.Seconds})
		}
	}
	return pts, nil
}

// Extensions prints both future-work experiments.
func Extensions(w io.Writer, class npb.Class) error {
	rows, err := ExtensionPolicies(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Extension 1: page policies incl. the paper's future work (4 threads, Opteron, class %s)\n", class)
	fmt.Fprintf(w, "%-6s%12s%12s%12s%14s%18s\n", "App", "4KB", "2MB", "mixed", "transparent", "transp. vs 4KB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s%11.4fs%11.4fs%11.4fs%13.4fs%17.1f%%\n",
			r.App,
			r.Seconds[core.Policy4K], r.Seconds[core.Policy2M],
			r.Seconds[core.PolicyMixed], r.Seconds[core.PolicyTransparent],
			stats.ImprovementPct(r.Seconds[core.Policy4K], r.Seconds[core.PolicyTransparent]))
	}

	pts, err := ExtensionNiagara(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nExtension 2: CG on the NiagaraT1 (interleaved SMT, 8 cores x 4 threads, class %s)\n", class)
	fmt.Fprintf(w, "%-8s%12s%12s\n", "Threads", "4KB", "2MB")
	byT := map[int]map[core.PagePolicy]float64{}
	for _, p := range pts {
		if byT[p.Threads] == nil {
			byT[p.Threads] = map[core.PagePolicy]float64{}
		}
		byT[p.Threads][p.Policy] = p.Seconds
	}
	for _, t := range []int{1, 2, 4, 8, 16, 32} {
		fmt.Fprintf(w, "%-8d%11.4fs%11.4fs\n", t, byT[t][core.Policy4K], byT[t][core.Policy2M])
	}
	return nil
}
