package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
	"hugeomp/internal/simsrv"
)

// ServiceThroughputPerf is the service-scale section of BENCH_simulator.json:
// a mixed request load (repeated visits to a small config grid — the shape of
// clients exploring a parameter space) replayed against a warm-restarted
// simd server on a populated shared disk cache, versus the same load on a
// baseline server with no disk cache and a single-template pool. The warm
// service answers from the cache layers without simulating or rebuilding
// templates; the baseline simulates every unique cell and rebuilds templates
// as the load cycles its one resident — so the ratio measures exactly what
// the persistent cache plus warmed-template pool buy a service restart.
type ServiceThroughputPerf struct {
	// Requests is the replayed mixed load; UniqueConfigs of them are
	// distinct (kernel × policy × threads cells of the grid).
	Requests      int `json:"requests"`
	UniqueConfigs int `json:"unique_configs"`
	// PopulateSeconds ran the unique cells once on the first server — the
	// cost a restart never pays again.
	PopulateSeconds float64 `json:"populate_seconds"`
	// ServiceSeconds / ServiceRPS replay the load on a restarted server
	// sharing the first server's cache directory.
	ServiceSeconds float64 `json:"service_seconds"`
	ServiceRPS     float64 `json:"service_rps"`
	// BaselineSeconds / BaselineRPS replay the load on a no-disk-cache
	// server whose template budget fits one template.
	BaselineSeconds float64 `json:"baseline_seconds"`
	BaselineRPS     float64 `json:"baseline_rps"`
	// SpeedupX is BaselineSeconds / ServiceSeconds (guarded by make bench).
	SpeedupX float64 `json:"speedup_x"`
	// WarmRestartHitPct is the share of replayed requests the restarted
	// server answered from a cache layer (memo or disk) without simulating.
	WarmRestartHitPct float64 `json:"warm_restart_hit_pct"`
	// DiskHits / DiskMisses are the restarted server's disk-layer traffic:
	// hits refill the fresh memo cross-process, misses would be simulations.
	DiskHits   uint64 `json:"disk_hits"`
	DiskMisses uint64 `json:"disk_misses"`
	// BaselineTemplateBuilds counts the baseline's cold template
	// constructions as the load cycled its single-resident pool.
	BaselineTemplateBuilds uint64 `json:"baseline_template_builds"`
	// Note records why a floor was skipped, when it was.
	Note string `json:"note,omitempty"`
}

// serviceGrid is the mixed load: every (kernel, policy, threads) cell of a
// small grid at class T on the paper's Opteron, visited `repeats` times in a
// deterministically shuffled order.
func serviceGrid(repeats int) (reqs []simsrv.Request, unique int) {
	var grid []simsrv.Request
	for _, kernel := range []string{"CG", "MG"} {
		for _, policy := range []string{"4KB", "2MB"} {
			for _, threads := range []int{1, 2} {
				grid = append(grid, simsrv.Request{
					Kernel: kernel, Class: "T", Model: "Opteron270",
					Threads: threads, Policy: policy,
				})
			}
		}
	}
	for r := 0; r < repeats; r++ {
		reqs = append(reqs, grid...)
	}
	// LCG shuffle: same mixed order every run, so trajectories compare.
	seed := uint64(0x5eed)
	for i := len(reqs) - 1; i > 0; i-- {
		seed = randomSeedStep(seed)
		j := int(seed>>33) % (i + 1)
		reqs[i], reqs[j] = reqs[j], reqs[i]
	}
	return reqs, len(grid)
}

// driveService posts each request to the server's handler in-process (no
// sockets — the measurement is the service stack, not the loopback) and
// returns the wall time plus how many answers came from a cache layer and
// the first answer's compacted result bytes for the ground-truth check.
func driveService(s *simsrv.Server, reqs []simsrv.Request) (wall float64, cached int, sample []byte, err error) {
	h := s.Handler()
	start := time.Now()
	for i, req := range reqs {
		body, merr := json.Marshal(req)
		if merr != nil {
			return 0, 0, nil, merr
		}
		r := httptest.NewRequest("POST", "/run", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != 200 {
			return 0, 0, nil, fmt.Errorf("bench: service answered %d: %s", w.Code, w.Body.String())
		}
		var resp struct {
			Cached bool            `json:"cached"`
			Result json.RawMessage `json:"result"`
		}
		if derr := json.Unmarshal(w.Body.Bytes(), &resp); derr != nil {
			return 0, 0, nil, derr
		}
		if resp.Cached {
			cached++
		}
		if i == 0 {
			var buf bytes.Buffer
			if cerr := json.Compact(&buf, resp.Result); cerr != nil {
				return 0, 0, nil, cerr
			}
			sample = buf.Bytes()
		}
	}
	return time.Since(start).Seconds(), cached, sample, nil
}

// MeasureServiceThroughput runs the service-scale comparison. The disk cache
// lives in a throwaway directory for the measurement's lifetime.
func MeasureServiceThroughput() (ServiceThroughputPerf, error) {
	const repeats = 4
	reqs, unique := serviceGrid(repeats)
	p := ServiceThroughputPerf{Requests: len(reqs), UniqueConfigs: unique}

	dir, err := os.MkdirTemp("", "hugeomp-bench-cache-*")
	if err != nil {
		return p, err
	}
	defer os.RemoveAll(dir)

	// Phase 1: populate. A first server computes each unique cell once —
	// the sweep, soak or prior service life that filled the shared cache.
	populate, err := simsrv.NewServer(simsrv.Config{CacheDir: dir})
	if err != nil {
		return p, err
	}
	start := time.Now()
	var uniq []simsrv.Request
	seen := map[string]bool{}
	for _, r := range reqs {
		k := fmt.Sprintf("%s/%s/%d", r.Kernel, r.Policy, r.Threads)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, r)
		}
	}
	if _, _, _, err := driveService(populate, uniq); err != nil {
		return p, err
	}
	p.PopulateSeconds = time.Since(start).Seconds()
	populate.Drain()
	populate.Close()

	// Phase 2: warm restart. A fresh server — empty memo, empty template
	// pool, same directory — replays the whole mixed load.
	restarted, err := simsrv.NewServer(simsrv.Config{CacheDir: dir})
	if err != nil {
		return p, err
	}
	wall, cachedN, sample, err := driveService(restarted, reqs)
	if err != nil {
		return p, err
	}
	p.ServiceSeconds = wall
	if wall > 0 {
		p.ServiceRPS = float64(len(reqs)) / wall
	}
	p.WarmRestartHitPct = 100 * float64(cachedN) / float64(len(reqs))
	g := restarted.Gauges()
	p.DiskHits, p.DiskMisses = g.DiskHits, g.DiskMisses
	restarted.Drain()
	restarted.Close()

	// Ground truth: the first replayed answer must equal a cold npb.Run of
	// the same configuration bit-for-bit — a cache hit is indistinguishable
	// from a re-run or the disk layer has no business existing.
	if err := checkServiceSample(reqs[0], sample); err != nil {
		return p, err
	}

	// Phase 3: baseline. No disk cache, a template budget that fits one
	// template — the pool never evicts its most recent resident, so this is
	// the single-template server the tentpole replaced.
	baseline, err := simsrv.NewServer(simsrv.Config{
		TemplateBudget: npb.TemplateBytes(npb.ClassT),
	})
	if err != nil {
		return p, err
	}
	wall, _, _, err = driveService(baseline, reqs)
	if err != nil {
		return p, err
	}
	p.BaselineSeconds = wall
	if wall > 0 {
		p.BaselineRPS = float64(len(reqs)) / wall
	}
	bg := baseline.Gauges()
	p.BaselineTemplateBuilds = bg.TemplateBuilds
	baseline.Drain()
	baseline.Close()

	if p.ServiceSeconds > 0 {
		p.SpeedupX = p.BaselineSeconds / p.ServiceSeconds
	}
	return p, nil
}

// checkServiceSample recomputes req cold — fresh system, no caches — and
// compares the compacted result JSON against what the service answered.
func checkServiceSample(req simsrv.Request, served []byte) error {
	k, err := npb.New(req.Kernel)
	if err != nil {
		return err
	}
	model, ok := machine.ModelByName(req.Model)
	if !ok {
		return fmt.Errorf("bench: unknown model %q", req.Model)
	}
	class, err := npb.ParseClass(req.Class)
	if err != nil {
		return err
	}
	cfg := npb.RunConfig{
		Model: model, Threads: req.Threads, Class: class,
		Sharing: machine.SharePartition, Barrier: omp.TreeBarrier,
	}
	switch req.Policy {
	case "2MB":
		cfg.Policy = core.Policy2M
	default:
		cfg.Policy = core.Policy4K
	}
	cold, err := npb.Run(k, cfg)
	if err != nil {
		return err
	}
	cb, err := json.Marshal(cold)
	if err != nil {
		return err
	}
	if !bytes.Equal(cb, served) {
		return fmt.Errorf("bench: served result differs from cold npb.Run:\ncold:   %s\nserved: %s", cb, served)
	}
	return nil
}
