// Package bench is the experiment harness of the reproduction: one function
// per table and figure of the paper's evaluation section, each of which runs
// the exact workloads and prints rows shaped like the paper's (and returns
// the raw data for EXPERIMENTS.md and the testing.B benchmarks).
//
//	Table 1 — processor TLB sizes and coverage          (Table1)
//	Table 2 — application memory footprints             (Table2)
//	Fig. 3  — aggregate ITLB miss rate, 4 thr, Opteron  (Fig3)
//	Fig. 4  — scalability, both platforms, 4K vs 2M     (Fig4)
//	Fig. 5  — normalized DTLB misses, 4 thr, Opteron    (Fig5)
package bench

import (
	"fmt"
	"io"

	"hugeomp/internal/core"
	"hugeomp/internal/cpuid"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/par"
	"hugeomp/internal/stats"
	"hugeomp/internal/units"
)

// Every experiment cell (one kernel run on one configuration) builds its own
// core.System and shares nothing with its neighbours, so the harness fans
// the cells out over par.Map's GOMAXPROCS-bounded worker pool. Results come
// back in cell order, so the printed tables are byte-identical to the old
// sequential harness.

// runCell executes one benchmark cell.
func runCell(app string, model machine.Model, policy core.PagePolicy, threads int, class npb.Class) (npb.Result, error) {
	k, err := npb.New(app)
	if err != nil {
		return npb.Result{}, err
	}
	return npb.Run(k, npb.RunConfig{
		Model:   model,
		Threads: threads,
		Policy:  policy,
		Class:   class,
	})
}

// Table1 prints the paper's Table 1 from the simulated processors' CPUID
// descriptors, in the paper's column order (Xeon, Opteron).
func Table1(w io.Writer) {
	fmt.Fprint(w, cpuid.Table1([]machine.Model{machine.XeonHT(), machine.Opteron270()}))
}

// FootprintRow is one application's Table 2 entry.
type FootprintRow struct {
	App        string
	InstrMB    float64 // ours (scaled class)
	DataMB     float64 // ours (scaled class)
	PaperInstr int64   // paper's class B bytes
	PaperData  int64   // paper's class B bytes
}

// Table2Data measures every kernel's instruction and data footprint at the
// given class (by building the system and running setup, exactly where the
// paper measured its Table 2).
func Table2Data(class npb.Class) ([]FootprintRow, error) {
	names := npb.Names()
	return par.Map(len(names), func(i int) (FootprintRow, error) {
		name := names[i]
		k, err := npb.New(name)
		if err != nil {
			return FootprintRow{}, err
		}
		sys, err := core.NewSystem(core.Config{
			Model:       machine.Opteron270(),
			Policy:      core.Policy4K,
			SharedBytes: 256 * units.MB,
			PhysBytes:   1 * units.GB,
		})
		if err != nil {
			return FootprintRow{}, err
		}
		if err := k.Setup(sys, class); err != nil {
			return FootprintRow{}, fmt.Errorf("bench: setup %s: %w", name, err)
		}
		pi, pd := k.PaperFootprint()
		return FootprintRow{
			App:        name,
			InstrMB:    float64(sys.InstrFootprint()) / float64(units.MB),
			DataMB:     float64(sys.DataFootprint()) / float64(units.MB),
			PaperInstr: pi,
			PaperData:  pd,
		}, nil
	})
}

// Table2 prints the Table 2 reproduction.
func Table2(w io.Writer, class npb.Class) error {
	rows, err := Table2Data(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 2: Application Memory Footprint (class %s; paper class B in parentheses)\n", class)
	fmt.Fprintf(w, "%-8s%16s%20s\n", "", "Instruction", "Data")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s%8.2fMB (%s)%12.1fMB (%s)\n",
			r.App, r.InstrMB, units.HumanBytes(r.PaperInstr),
			r.DataMB, units.HumanBytes(r.PaperData))
	}
	return nil
}

// Fig3Row is one application's ITLB miss measurement.
type Fig3Row struct {
	App        string
	Misses     uint64
	Seconds    float64
	MissesPerS float64
}

// Fig3Data runs every application with 4 threads on the Opteron with 4 KB
// pages (the paper's Figure 3 configuration) and reports aggregate ITLB
// misses and their rate.
func Fig3Data(class npb.Class) ([]Fig3Row, error) {
	names := npb.Names()
	return par.Map(len(names), func(i int) (Fig3Row, error) {
		res, err := runCell(names[i], machine.Opteron270(), core.Policy4K, 4, class)
		if err != nil {
			return Fig3Row{}, err
		}
		return Fig3Row{
			App:        names[i],
			Misses:     res.Counters.ITLBL1Miss,
			Seconds:    res.Seconds,
			MissesPerS: stats.Ratio(float64(res.Counters.ITLBL1Miss), res.Seconds),
		}, nil
	})
}

// Fig3 prints the Figure 3 reproduction.
func Fig3(w io.Writer, class npb.Class) error {
	rows, err := Fig3Data(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 3: Aggregate ITLB misses (4 threads, Opteron, 4KB pages, class %s)\n", class)
	fmt.Fprintf(w, "%-8s%12s%12s%14s\n", "App", "misses", "sim secs", "misses/sec")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s%12d%12.4f%14.1f\n", r.App, r.Misses, r.Seconds, r.MissesPerS)
	}
	fmt.Fprintln(w, "(ITLB miss cycles are a negligible share of execution in every app,")
	fmt.Fprintln(w, " reproducing the paper's conclusion that large pages for code are not needed.)")
	return nil
}

// Fig4Point is one scalability measurement.
type Fig4Point struct {
	App     string
	Model   string
	Policy  core.PagePolicy
	Threads int
	Seconds float64
	Cycles  uint64
}

// Fig4Threads returns the paper's thread counts for a platform: "Single
// thread per core is used up to 4 threads. Two threads per core are used at
// eight threads (using hyperthreading on the Intel Xeon platform)."
func Fig4Threads(m machine.Model) []int {
	ts := []int{1, 2, 4}
	if m.MaxThreads() >= 8 {
		ts = append(ts, 8)
	}
	return ts
}

// Fig4Data runs the full scalability sweep of the paper's Figure 4: every
// application on both platforms with 4 KB and 2 MB pages across the thread
// counts.
func Fig4Data(class npb.Class, apps []string) ([]Fig4Point, error) {
	if apps == nil {
		apps = npb.Names()
	}
	type cell struct {
		app     string
		model   machine.Model
		policy  core.PagePolicy
		threads int
	}
	var cells []cell
	for _, name := range apps {
		for _, model := range machine.Models() {
			for _, policy := range []core.PagePolicy{core.Policy4K, core.Policy2M} {
				for _, threads := range Fig4Threads(model) {
					cells = append(cells, cell{name, model, policy, threads})
				}
			}
		}
	}
	return par.Map(len(cells), func(i int) (Fig4Point, error) {
		cl := cells[i]
		res, err := runCell(cl.app, cl.model, cl.policy, cl.threads, class)
		if err != nil {
			return Fig4Point{}, fmt.Errorf("bench: %s on %s/%v/%d: %w",
				cl.app, cl.model.Name, cl.policy, cl.threads, err)
		}
		return Fig4Point{
			App: cl.app, Model: cl.model.Name, Policy: cl.policy,
			Threads: cl.threads, Seconds: res.Seconds, Cycles: res.Cycles,
		}, nil
	})
}

// Fig4 prints the Figure 4 reproduction for the given apps (nil = all).
func Fig4(w io.Writer, class npb.Class, apps []string) error {
	pts, err := Fig4Data(class, apps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: Scalability with 4KB and 2MB pages (class %s)\n", class)
	fmt.Fprintf(w, "%-6s%-12s%-6s%10s%10s%10s%10s\n", "App", "Machine", "Pages", "1 thr", "2 thr", "4 thr", "8 thr")
	type key struct {
		app, model string
		policy     core.PagePolicy
	}
	series := map[key]map[int]float64{}
	var order []key
	for _, p := range pts {
		k := key{p.App, p.Model, p.Policy}
		if series[k] == nil {
			series[k] = map[int]float64{}
			order = append(order, k)
		}
		series[k][p.Threads] = p.Seconds
	}
	for _, k := range order {
		fmt.Fprintf(w, "%-6s%-12s%-6v", k.app, k.model, k.policy)
		for _, t := range []int{1, 2, 4, 8} {
			if s, ok := series[k][t]; ok {
				fmt.Fprintf(w, "%9.4fs", s)
			} else {
				fmt.Fprintf(w, "%10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig5Row is one application's DTLB miss comparison at 4 threads on the
// Opteron.
type Fig5Row struct {
	App        string
	Walks4K    uint64
	Walks2M    uint64
	Normalized float64 // walks2M / walks4K (the paper normalises to the 4KB bar)
}

// Fig5Data reproduces Figure 5: DTLB misses (page walks) with 4 KB and 2 MB
// pages at 4 threads on the Opteron, normalized to the 4 KB count.
func Fig5Data(class npb.Class) ([]Fig5Row, error) {
	names := npb.Names()
	policies := []core.PagePolicy{core.Policy4K, core.Policy2M}
	// One cell per (app, policy); rows are assembled from the ordered
	// results afterwards.
	walks, err := par.Map(len(names)*len(policies), func(i int) (uint64, error) {
		res, err := runCell(names[i/len(policies)], machine.Opteron270(),
			policies[i%len(policies)], 4, class)
		if err != nil {
			return 0, err
		}
		return res.Counters.DTLBWalks(), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, len(names))
	for i, name := range names {
		w4, w2 := walks[i*2], walks[i*2+1]
		rows[i] = Fig5Row{
			App:        name,
			Walks4K:    w4,
			Walks2M:    w2,
			Normalized: stats.Ratio(float64(w2), float64(w4)),
		}
	}
	return rows, nil
}

// Fig5 prints the Figure 5 reproduction.
func Fig5(w io.Writer, class npb.Class) error {
	rows, err := Fig5Data(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5: Normalized DTLB misses at 4 threads, Opteron (class %s)\n", class)
	fmt.Fprintf(w, "%-8s%14s%14s%14s%12s\n", "App", "4KB walks", "2MB walks", "normalized", "reduction")
	for _, r := range rows {
		red := "-"
		if r.Walks2M > 0 {
			red = fmt.Sprintf("%.0fx", float64(r.Walks4K)/float64(r.Walks2M))
		}
		fmt.Fprintf(w, "%-8s%14d%14d%14.4f%12s\n", r.App, r.Walks4K, r.Walks2M, r.Normalized, red)
	}
	return nil
}

// All prints every table and figure.
func All(w io.Writer, class npb.Class) error {
	Table1(w)
	fmt.Fprintln(w)
	if err := Table2(w, class); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Fig3(w, class); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Fig4(w, class, nil); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return Fig5(w, class)
}
