// Package bench is the experiment harness of the reproduction: one function
// per table and figure of the paper's evaluation section, each of which runs
// the exact workloads and prints rows shaped like the paper's (and returns
// the raw data for EXPERIMENTS.md and the testing.B benchmarks).
//
//	Table 1 — processor TLB sizes and coverage          (Table1)
//	Table 2 — application memory footprints             (Table2)
//	Fig. 3  — aggregate ITLB miss rate, 4 thr, Opteron  (Fig3)
//	Fig. 4  — scalability, both platforms, 4K vs 2M     (Fig4)
//	Fig. 5  — normalized DTLB misses, 4 thr, Opteron    (Fig5)
package bench

import (
	"fmt"
	"io"

	"hugeomp/internal/core"
	"hugeomp/internal/cpuid"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/stats"
	"hugeomp/internal/units"
)

// Table1 prints the paper's Table 1 from the simulated processors' CPUID
// descriptors, in the paper's column order (Xeon, Opteron).
func Table1(w io.Writer) {
	fmt.Fprint(w, cpuid.Table1([]machine.Model{machine.XeonHT(), machine.Opteron270()}))
}

// FootprintRow is one application's Table 2 entry.
type FootprintRow struct {
	App        string
	InstrMB    float64 // ours (scaled class)
	DataMB     float64 // ours (scaled class)
	PaperInstr int64   // paper's class B bytes
	PaperData  int64   // paper's class B bytes
}

// Table2Data measures every kernel's instruction and data footprint at the
// given class (by building the system and running setup, exactly where the
// paper measured its Table 2).
func Table2Data(class npb.Class) ([]FootprintRow, error) {
	var rows []FootprintRow
	for _, name := range npb.Names() {
		k, err := npb.New(name)
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(core.Config{
			Model:       machine.Opteron270(),
			Policy:      core.Policy4K,
			SharedBytes: 256 * units.MB,
			PhysBytes:   1 * units.GB,
		})
		if err != nil {
			return nil, err
		}
		if err := k.Setup(sys, class); err != nil {
			return nil, fmt.Errorf("bench: setup %s: %w", name, err)
		}
		pi, pd := k.PaperFootprint()
		rows = append(rows, FootprintRow{
			App:        name,
			InstrMB:    float64(sys.InstrFootprint()) / float64(units.MB),
			DataMB:     float64(sys.DataFootprint()) / float64(units.MB),
			PaperInstr: pi,
			PaperData:  pd,
		})
	}
	return rows, nil
}

// Table2 prints the Table 2 reproduction.
func Table2(w io.Writer, class npb.Class) error {
	rows, err := Table2Data(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 2: Application Memory Footprint (class %s; paper class B in parentheses)\n", class)
	fmt.Fprintf(w, "%-8s%16s%20s\n", "", "Instruction", "Data")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s%8.2fMB (%s)%12.1fMB (%s)\n",
			r.App, r.InstrMB, units.HumanBytes(r.PaperInstr),
			r.DataMB, units.HumanBytes(r.PaperData))
	}
	return nil
}

// Fig3Row is one application's ITLB miss measurement.
type Fig3Row struct {
	App        string
	Misses     uint64
	Seconds    float64
	MissesPerS float64
}

// Fig3Data runs every application with 4 threads on the Opteron with 4 KB
// pages (the paper's Figure 3 configuration) and reports aggregate ITLB
// misses and their rate.
func Fig3Data(class npb.Class) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, name := range npb.Names() {
		k, err := npb.New(name)
		if err != nil {
			return nil, err
		}
		res, err := npb.Run(k, npb.RunConfig{
			Model:   machine.Opteron270(),
			Threads: 4,
			Policy:  core.Policy4K,
			Class:   class,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{
			App:        name,
			Misses:     res.Counters.ITLBL1Miss,
			Seconds:    res.Seconds,
			MissesPerS: stats.Ratio(float64(res.Counters.ITLBL1Miss), res.Seconds),
		})
	}
	return rows, nil
}

// Fig3 prints the Figure 3 reproduction.
func Fig3(w io.Writer, class npb.Class) error {
	rows, err := Fig3Data(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 3: Aggregate ITLB misses (4 threads, Opteron, 4KB pages, class %s)\n", class)
	fmt.Fprintf(w, "%-8s%12s%12s%14s\n", "App", "misses", "sim secs", "misses/sec")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s%12d%12.4f%14.1f\n", r.App, r.Misses, r.Seconds, r.MissesPerS)
	}
	fmt.Fprintln(w, "(ITLB miss cycles are a negligible share of execution in every app,")
	fmt.Fprintln(w, " reproducing the paper's conclusion that large pages for code are not needed.)")
	return nil
}

// Fig4Point is one scalability measurement.
type Fig4Point struct {
	App     string
	Model   string
	Policy  core.PagePolicy
	Threads int
	Seconds float64
	Cycles  uint64
}

// Fig4Threads returns the paper's thread counts for a platform: "Single
// thread per core is used up to 4 threads. Two threads per core are used at
// eight threads (using hyperthreading on the Intel Xeon platform)."
func Fig4Threads(m machine.Model) []int {
	ts := []int{1, 2, 4}
	if m.MaxThreads() >= 8 {
		ts = append(ts, 8)
	}
	return ts
}

// Fig4Data runs the full scalability sweep of the paper's Figure 4: every
// application on both platforms with 4 KB and 2 MB pages across the thread
// counts.
func Fig4Data(class npb.Class, apps []string) ([]Fig4Point, error) {
	if apps == nil {
		apps = npb.Names()
	}
	var pts []Fig4Point
	for _, name := range apps {
		for _, model := range machine.Models() {
			for _, policy := range []core.PagePolicy{core.Policy4K, core.Policy2M} {
				for _, threads := range Fig4Threads(model) {
					k, err := npb.New(name)
					if err != nil {
						return nil, err
					}
					res, err := npb.Run(k, npb.RunConfig{
						Model:   model,
						Threads: threads,
						Policy:  policy,
						Class:   class,
					})
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s/%v/%d: %w",
							name, model.Name, policy, threads, err)
					}
					pts = append(pts, Fig4Point{
						App: name, Model: model.Name, Policy: policy,
						Threads: threads, Seconds: res.Seconds, Cycles: res.Cycles,
					})
				}
			}
		}
	}
	return pts, nil
}

// Fig4 prints the Figure 4 reproduction for the given apps (nil = all).
func Fig4(w io.Writer, class npb.Class, apps []string) error {
	pts, err := Fig4Data(class, apps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: Scalability with 4KB and 2MB pages (class %s)\n", class)
	fmt.Fprintf(w, "%-6s%-12s%-6s%10s%10s%10s%10s\n", "App", "Machine", "Pages", "1 thr", "2 thr", "4 thr", "8 thr")
	type key struct {
		app, model string
		policy     core.PagePolicy
	}
	series := map[key]map[int]float64{}
	var order []key
	for _, p := range pts {
		k := key{p.App, p.Model, p.Policy}
		if series[k] == nil {
			series[k] = map[int]float64{}
			order = append(order, k)
		}
		series[k][p.Threads] = p.Seconds
	}
	for _, k := range order {
		fmt.Fprintf(w, "%-6s%-12s%-6v", k.app, k.model, k.policy)
		for _, t := range []int{1, 2, 4, 8} {
			if s, ok := series[k][t]; ok {
				fmt.Fprintf(w, "%9.4fs", s)
			} else {
				fmt.Fprintf(w, "%10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig5Row is one application's DTLB miss comparison at 4 threads on the
// Opteron.
type Fig5Row struct {
	App        string
	Walks4K    uint64
	Walks2M    uint64
	Normalized float64 // walks2M / walks4K (the paper normalises to the 4KB bar)
}

// Fig5Data reproduces Figure 5: DTLB misses (page walks) with 4 KB and 2 MB
// pages at 4 threads on the Opteron, normalized to the 4 KB count.
func Fig5Data(class npb.Class) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, name := range npb.Names() {
		var walks [2]uint64
		for i, policy := range []core.PagePolicy{core.Policy4K, core.Policy2M} {
			k, err := npb.New(name)
			if err != nil {
				return nil, err
			}
			res, err := npb.Run(k, npb.RunConfig{
				Model:   machine.Opteron270(),
				Threads: 4,
				Policy:  policy,
				Class:   class,
			})
			if err != nil {
				return nil, err
			}
			walks[i] = res.Counters.DTLBWalks()
		}
		rows = append(rows, Fig5Row{
			App:        name,
			Walks4K:    walks[0],
			Walks2M:    walks[1],
			Normalized: stats.Ratio(float64(walks[1]), float64(walks[0])),
		})
	}
	return rows, nil
}

// Fig5 prints the Figure 5 reproduction.
func Fig5(w io.Writer, class npb.Class) error {
	rows, err := Fig5Data(class)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5: Normalized DTLB misses at 4 threads, Opteron (class %s)\n", class)
	fmt.Fprintf(w, "%-8s%14s%14s%14s%12s\n", "App", "4KB walks", "2MB walks", "normalized", "reduction")
	for _, r := range rows {
		red := "-"
		if r.Walks2M > 0 {
			red = fmt.Sprintf("%.0fx", float64(r.Walks4K)/float64(r.Walks2M))
		}
		fmt.Fprintf(w, "%-8s%14d%14d%14.4f%12s\n", r.App, r.Walks4K, r.Walks2M, r.Normalized, red)
	}
	return nil
}

// All prints every table and figure.
func All(w io.Writer, class npb.Class) error {
	Table1(w)
	fmt.Fprintln(w)
	if err := Table2(w, class); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Fig3(w, class); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Fig4(w, class, nil); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return Fig5(w, class)
}
