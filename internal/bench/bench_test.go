package bench

import (
	"bytes"
	"strings"
	"testing"

	"hugeomp/internal/npb"
)

// The harness tests run at class S so the full suite stays fast; the shape
// assertions they make are the paper's qualitative claims.

func TestTable1Prints(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	if !strings.Contains(buf.String(), "Coverage") {
		t.Error("Table 1 missing coverage rows")
	}
}

func TestTable2AllAppsPresent(t *testing.T) {
	// Class W: the footprint relations of the full classes hold (setup
	// only, no run, so this stays fast).
	rows, err := Table2Data(npb.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	data := map[string]float64{}
	for _, r := range rows {
		if r.DataMB <= 0 || r.InstrMB <= 0 {
			t.Errorf("%s: footprints %v/%v", r.App, r.InstrMB, r.DataMB)
		}
		data[r.App] = r.DataMB
		// Paper class-B reference values are carried alongside.
		if r.PaperData <= 0 || r.PaperInstr <= 0 {
			t.Errorf("%s: missing paper reference footprints", r.App)
		}
	}
	// The big-footprint kernels (CG, FT) dwarf the structured-grid ones, as
	// in the paper's Table 2 (our CG is relatively larger than the paper's
	// because its gather vector must exceed the real TLB reach; DESIGN.md).
	if data["FT"] <= data["BT"] {
		t.Errorf("FT (%.1fMB) should exceed BT (%.1fMB)", data["FT"], data["BT"])
	}
	for _, small := range []string{"BT", "SP", "MG", "FT"} {
		if data["CG"] <= data[small] {
			t.Errorf("CG (%.1fMB) should exceed %s (%.1fMB)", data["CG"], small, data[small])
		}
	}
}

func TestFig3ITLBNegligible(t *testing.T) {
	rows, err := Fig3Data(npb.ClassS)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's conclusion: ITLB misses are not a significant
		// overhead. Each run's total must stay tiny relative to the
		// billions of data accesses.
		if r.Misses > 10000 {
			t.Errorf("%s: %d ITLB misses — should be negligible", r.App, r.Misses)
		}
	}
}

func TestFig4ShapesClassS(t *testing.T) {
	pts, err := Fig4Data(npb.ClassS, []string{"CG"})
	if err != nil {
		t.Fatal(err)
	}
	get := func(model string, pol int, threads int) float64 {
		for _, p := range pts {
			if p.Model == model && int(p.Policy) == pol && p.Threads == threads {
				return p.Seconds
			}
		}
		t.Fatalf("missing point %s/%d/%d", model, pol, threads)
		return 0
	}
	// Opteron scales 1 -> 4.
	if !(get("Opteron270", 0, 4) < get("Opteron270", 0, 1)) {
		t.Error("CG does not scale on the Opteron")
	}
	// Xeon 8 threads is not 2x faster than 4 (SMT serialisation).
	if get("XeonHT", 0, 8) < get("XeonHT", 0, 4)*0.7 {
		t.Error("Xeon 8-thread run scales too well; SMT siblings should serialise")
	}
}

func TestFig5OrderingClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W sweep in -short mode")
	}
	rows, err := Fig5Data(npb.ClassW)
	if err != nil {
		t.Fatal(err)
	}
	norm := map[string]float64{}
	walks := map[string]uint64{}
	for _, r := range rows {
		norm[r.App] = r.Normalized
		walks[r.App] = r.Walks4K
	}
	// The paper's Figure 5: CG, SP and MG see reductions of a factor of 10
	// or more.
	for _, app := range []string{"CG", "SP", "MG"} {
		if norm[app] > 0.1 {
			t.Errorf("%s: normalized 2MB misses %.3f, want < 0.1", app, norm[app])
		}
	}
	// BT's absolute 4KB miss count is far below the big three.
	if walks["BT"]*10 > walks["CG"] {
		t.Errorf("BT walks %d should be tiny next to CG walks %d", walks["BT"], walks["CG"])
	}
}

func TestAllPrintsEveryExperimentClassT(t *testing.T) {
	var buf bytes.Buffer
	if err := All(&buf, npb.ClassT); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Figure 3", "Figure 4", "Figure 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("All output missing %q", want)
		}
	}
}

func TestPlotsRenderClassT(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4Plot(&buf, npb.ClassT, []string{"CG"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "█") {
		t.Error("Fig4Plot drew no bars")
	}
	buf.Reset()
	if err := Fig5Plot(&buf, npb.ClassT); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4KB |") {
		t.Error("Fig5Plot drew no labels")
	}
}

func TestExtensionsClassT(t *testing.T) {
	rows, err := ExtensionPolicies(npb.ClassT)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Seconds) != 4 {
			t.Errorf("%s: %d policies measured", r.App, len(r.Seconds))
		}
	}
	var buf bytes.Buffer
	if err := Extensions(&buf, npb.ClassT); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NiagaraT1") {
		t.Error("extensions output missing the Niagara sweep")
	}
}
