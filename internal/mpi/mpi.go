// Package mpi implements the paper's last future-work item ("we would also
// like to evaluate the benefit of large pages on the performance of other
// programming paradigms such as MPI"): a small intra-node message-passing
// layer in the style of an MPI shared-memory device.
//
// Ranks are SPMD processes pinned to simulated hardware contexts. A message
// is staged through a shared-memory buffer — the sender streams its source
// buffer into the staging area, the receiver streams it out — with a
// control-channel handshake per fragment, which is how intra-node MPI
// devices of the era (e.g. MPICH's shm channel, or SCore's SMP device that
// Omni/SCASH replaced) moved data. Because both the private buffers and the
// staging area live in the System's data region, the page policy under test
// (4 KB, 2 MB, mixed, transparent) governs every copy — which is exactly the
// evaluation the paper proposed.
package mpi

import (
	"fmt"
	"math"

	"hugeomp/internal/core"
	"hugeomp/internal/faultinject"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
	"hugeomp/internal/shmem"
	"hugeomp/internal/units"
)

// StagingBytes is the size of each ordered pair's staging buffer; larger
// messages are pipelined through it fragment by fragment.
const StagingBytes = 64 * units.KB

// World is an MPI communicator over n ranks.
type World struct {
	sys  *core.System
	rt   *omp.RT
	mesh *shmem.Mesh

	staging []units.Addr     // staging[from*n+to]
	payload []chan []float64 // out-of-band payload movement, same indexing
	n       int

	fault *faultinject.Plan // nil = no injection
	// Per-ordered-pair control-message sequence numbers. sendSeq[p] is
	// touched only by the sending rank's goroutine and recvSeq[p] only by
	// the receiving rank's, so they need no locks — and they key fault
	// decisions to the message itself, independent of goroutine scheduling.
	sendSeq []uint64
	recvSeq []uint64
}

// NewWorld builds an n-rank world on sys. Staging buffers are allocated
// from the shared data region, so the system's page policy applies to the
// message path.
func NewWorld(sys *core.System, n int) (*World, error) {
	rt, err := sys.NewRT(n)
	if err != nil {
		return nil, err
	}
	w := &World{
		sys:     sys,
		rt:      rt,
		mesh:    shmem.NewMesh(n),
		staging: make([]units.Addr, n*n),
		payload: make([]chan []float64, n*n),
		n:       n,
		sendSeq: make([]uint64, n*n),
		recvSeq: make([]uint64, n*n),
	}
	for i := range w.staging {
		addr, err := sys.Malloc(StagingBytes)
		if err != nil {
			return nil, fmt.Errorf("mpi: staging buffer %d: %w", i, err)
		}
		w.staging[i] = addr
		w.payload[i] = make(chan []float64, 64)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// SetFaultPlan arms (or, with nil, disarms) message-loss/duplication
// injection. Call before Run.
func (w *World) SetFaultPlan(p *faultinject.Plan) { w.fault = p }

// RT exposes the underlying runtime (wall clock, counters).
func (w *World) RT() *omp.RT { return w.rt }

// Seconds returns the simulated wall-clock duration so far.
func (w *World) Seconds() float64 { return w.rt.Seconds() }

// Rank is one SPMD process.
type Rank struct {
	ID int
	C  *machine.Context
	w  *World
}

// Run executes body as an SPMD program: one goroutine per rank, wall-clock
// accounted like a single parallel region.
func (w *World) Run(body func(r *Rank)) {
	w.rt.Parallel(nil, func(tid int, c *machine.Context) {
		body(&Rank{ID: tid, C: c, w: w})
	})
}

func (w *World) pair(from, to int) int { return from*w.n + to }

// maxCtlRetries bounds the resend loop for a lost control message. Even a
// plan firing at rate 0.5 leaves a ~0.4% chance of exhausting 8 retries; the
// final send always goes through (the simulated network never hard-fails),
// so the bound caps cost, not correctness.
const maxCtlRetries = 8

// ctlSend posts one control message for pair p, simulating loss under an
// armed SiteMPILoss plan: each lost attempt charges a timeout with
// exponential backoff before the resend. Numerics are untouched — the real
// channel send always happens exactly once.
func (r *Rank) ctlSend(p int, ch *shmem.Channel, data []byte, what string) {
	w := r.w
	costs := w.rt.Machine().Model.Costs
	seq := w.sendSeq[p]
	w.sendSeq[p]++
	key := uint64(p)<<32 | seq&0xffffffff
	for attempt := uint64(0); attempt < maxCtlRetries; attempt++ {
		if !w.fault.ShouldKey(faultinject.SiteMPILoss, key^(attempt+1)*0x9e3779b97f4a7c15) {
			break
		}
		// Timeout waiting for the ack that never came, then back off and
		// resend: 2^attempt message latencies, doubling per round.
		r.C.Wait(costs.MsgCyc << attempt)
		r.C.Ctr.MsgRetries++
	}
	if err := ch.Send(data); err != nil {
		panic(fmt.Sprintf("mpi: %s send: %v", what, err))
	}
	r.C.Wait(costs.MsgCyc)
}

// ctlRecv receives one control message for pair p, simulating duplicate
// delivery under an armed SiteMPIDup plan: the duplicate is recognised by
// its repeated sequence number and dropped at the cost of one extra message
// latency.
func (r *Rank) ctlRecv(p int, ch *shmem.Channel, buf []byte) int {
	w := r.w
	costs := w.rt.Machine().Model.Costs
	seq := w.recvSeq[p]
	w.recvSeq[p]++
	key := uint64(p)<<32 | seq&0xffffffff
	n := ch.Recv(buf)
	r.C.Wait(costs.MsgCyc)
	if w.fault.ShouldKey(faultinject.SiteMPIDup, key) {
		r.C.Wait(costs.MsgCyc)
		r.C.Ctr.MsgDups++
	}
	return n
}

// Send transmits elements [lo, hi) of arr to rank `to`. The transfer is
// pipelined through the shared staging buffer: per fragment the sender
// streams the source (read) and the staging area (write) and posts a
// control message.
func (r *Rank) Send(to int, arr *core.Array, lo, hi int) {
	if to == r.ID {
		panic("mpi: send to self")
	}
	w := r.w
	p := w.pair(r.ID, to)
	ch := w.mesh.Chan(r.ID, to)
	fragElems := int(StagingBytes / 8)
	for base := lo; base < hi; base += fragElems {
		end := base + fragElems
		if end > hi {
			end = hi
		}
		// Stream source out, staging in.
		arr.LoadRange(r.C, base, end)
		r.C.AccessRange(w.staging[p], end-base, 8, true)
		// Payload moves out of band; the handshake is a real message.
		frag := make([]float64, end-base)
		copy(frag, arr.Data[base:end])
		w.payload[p] <- frag
		r.ctlSend(p, ch, []byte{1}, "control")
	}
}

// Recv receives into elements [lo, hi) of arr from rank `from`.
func (r *Rank) Recv(from int, arr *core.Array, lo, hi int) {
	if from == r.ID {
		panic("mpi: recv from self")
	}
	w := r.w
	p := w.pair(from, r.ID)
	ch := w.mesh.Chan(from, r.ID)
	var ctl [8]byte
	fragElems := int(StagingBytes / 8)
	for base := lo; base < hi; base += fragElems {
		end := base + fragElems
		if end > hi {
			end = hi
		}
		r.ctlRecv(p, ch, ctl[:])
		// Stream staging out, destination in.
		r.C.AccessRange(w.staging[p], end-base, 8, false)
		arr.StoreRange(r.C, base, end)
		frag := <-w.payload[p]
		copy(arr.Data[base:end], frag)
	}
}

// SendRecv exchanges with a partner (deadlock-free pairwise exchange: the
// lower rank sends first).
func (r *Rank) SendRecv(partner int, send *core.Array, slo, shi int, recv *core.Array, rlo, rhi int) {
	if r.ID < partner {
		r.Send(partner, send, slo, shi)
		r.Recv(partner, recv, rlo, rhi)
	} else {
		r.Recv(partner, recv, rlo, rhi)
		r.Send(partner, send, slo, shi)
	}
}

// Barrier is a dissemination barrier across the world.
func (r *Rank) Barrier() {
	w := r.w
	var buf [8]byte
	for round := 1; round < w.n; round <<= 1 {
		to := (r.ID + round) % w.n
		from := (r.ID - round + w.n) % w.n
		r.ctlSend(w.pair(r.ID, to), w.mesh.Chan(r.ID, to), []byte{byte(round)}, "barrier")
		r.ctlRecv(w.pair(from, r.ID), w.mesh.Chan(from, r.ID), buf[:])
	}
}

// Allreduce sums each rank's value across the world (recursive doubling on
// scalars; O(log n) rounds of control messages). The world size must be a
// power of two (as for the classic recursive-doubling algorithm).
func (r *Rank) Allreduce(v float64) float64 {
	w := r.w
	if w.n&(w.n-1) != 0 {
		panic(fmt.Sprintf("mpi: Allreduce requires a power-of-two world, have %d", w.n))
	}
	var buf [16]byte
	for round := 1; round < w.n; round <<= 1 {
		to := (r.ID + round) % w.n
		from := (r.ID - round + w.n) % w.n
		var out [8]byte
		putFloat(out[:], v)
		r.ctlSend(w.pair(r.ID, to), w.mesh.Chan(r.ID, to), out[:], "allreduce")
		n := r.ctlRecv(w.pair(from, r.ID), w.mesh.Chan(from, r.ID), buf[:])
		v += getFloat(buf[:n])
	}
	return v
}

func putFloat(b []byte, f float64) {
	bits := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

func getFloat(b []byte) float64 {
	var bits uint64
	for i := 0; i < 8 && i < len(b); i++ {
		bits |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(bits)
}
