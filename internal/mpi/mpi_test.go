package mpi

import (
	"sync/atomic"
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/faultinject"
	"hugeomp/internal/machine"
	"hugeomp/internal/units"
)

func world(t *testing.T, policy core.PagePolicy, ranks int) (*World, *core.System) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Model:       machine.Opteron270(),
		Policy:      policy,
		SharedBytes: 64 * units.MB,
		PhysBytes:   512 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(sys, ranks)
	if err != nil {
		t.Fatal(err)
	}
	return w, sys
}

func TestSendRecvMovesData(t *testing.T) {
	w, sys := world(t, core.Policy4K, 2)
	const n = 20000 // > one staging fragment (8192 elems)
	src := sys.MustArray("src", n)
	dst := sys.MustArray("dst", n)
	for i := range src.Data {
		src.Data[i] = float64(i) * 1.5
	}
	w.Run(func(r *Rank) {
		switch r.ID {
		case 0:
			r.Send(1, src, 0, n)
		case 1:
			r.Recv(0, dst, 0, n)
		}
	})
	for i := range dst.Data {
		if dst.Data[i] != float64(i)*1.5 {
			t.Fatalf("dst[%d] = %v", i, dst.Data[i])
		}
	}
	// The transfer streamed both buffers and the staging area.
	total := w.RT().TotalCounters()
	if total.Loads == 0 || total.Stores == 0 {
		t.Error("no simulated traffic from the transfer")
	}
}

func TestSendRecvExchange(t *testing.T) {
	w, sys := world(t, core.Policy4K, 4)
	const n = 4096
	mine := sys.MustArray("mine", 4*n)
	theirs := sys.MustArray("theirs", 4*n)
	for i := range mine.Data {
		mine.Data[i] = float64(i / n) // rank id
	}
	w.Run(func(r *Rank) {
		partner := r.ID ^ 1
		o := r.ID * n
		po := partner * n
		r.SendRecv(partner, mine, o, o+n, theirs, po, po+n)
	})
	for rank := 0; rank < 4; rank++ {
		partner := rank ^ 1
		if got := theirs.Data[partner*n]; got != float64(partner) {
			t.Errorf("rank %d received %v from %d", rank, got, partner)
		}
	}
}

func TestBarrierSynchronises(t *testing.T) {
	w, _ := world(t, core.Policy4K, 4)
	var before, violations atomic.Int32
	w.Run(func(r *Rank) {
		before.Add(1)
		r.Barrier()
		if before.Load() != 4 {
			violations.Add(1)
		}
	})
	if violations.Load() != 0 {
		t.Error("a rank passed the barrier before all arrived")
	}
}

func TestAllreduce(t *testing.T) {
	w, _ := world(t, core.Policy4K, 4)
	results := make([]float64, 4)
	w.Run(func(r *Rank) {
		results[r.ID] = r.Allreduce(float64(r.ID + 1))
	})
	for rank, got := range results {
		if got != 10 { // 1+2+3+4
			t.Errorf("rank %d allreduce = %v, want 10", rank, got)
		}
	}
}

func TestAllreduceRequiresPow2(t *testing.T) {
	w, _ := world(t, core.Policy4K, 3)
	var panicked atomic.Bool
	w.Run(func(r *Rank) {
		defer func() {
			if recover() != nil {
				panicked.Store(true)
			}
		}()
		r.Allreduce(1)
	})
	if !panicked.Load() {
		t.Error("3-rank allreduce should panic")
	}
}

func TestLargePagesHelpMessagePath(t *testing.T) {
	// The paper's proposed MPI evaluation: halo-style exchanges of large
	// buffers should walk far less with 2MB pages.
	run := func(policy core.PagePolicy) (float64, uint64) {
		w, sys := world(t, policy, 4)
		const n = 1 << 19 // 4MB per array
		a := sys.MustArray("a", n)
		b := sys.MustArray("b", n)
		w.Run(func(r *Rank) {
			part := n / 4
			o := r.ID * part
			po := (r.ID ^ 1) * part
			for step := 0; step < 2; step++ {
				r.SendRecv(r.ID^1, a, o, o+part, b, po, po+part)
				r.Barrier()
			}
		})
		return w.Seconds(), w.RT().TotalCounters().DTLBWalks()
	}
	s4, w4 := run(core.Policy4K)
	s2, w2 := run(core.Policy2M)
	if w2*2 >= w4 {
		t.Errorf("2M walks %d not well below 4K walks %d", w2, w4)
	}
	if s2 > s4 {
		t.Errorf("2M pages slower on the message path: %v > %v", s2, s4)
	}
}

// TestInjectedLossAndDupOnlyShiftCycles: with loss and duplication armed,
// transfers still deliver byte-identical data; retries/dups are counted and
// cost cycles; and the same seed reproduces the same counters.
func TestInjectedLossAndDupOnlyShiftCycles(t *testing.T) {
	const n = 80000 // ~10 staging fragments, enough draws for both sites
	run := func(seed uint64, arm bool) ([]float64, uint64, uint64, uint64) {
		w, sys := world(t, core.Policy4K, 2)
		if arm {
			w.SetFaultPlan(faultinject.New(seed).
				Enable(faultinject.SiteMPILoss, 0.5).
				Enable(faultinject.SiteMPIDup, 0.5))
		}
		src := sys.MustArray("src", n)
		dst := sys.MustArray("dst", n)
		for i := range src.Data {
			src.Data[i] = float64(i) * 1.5
		}
		w.Run(func(r *Rank) {
			switch r.ID {
			case 0:
				r.Send(1, src, 0, n)
			case 1:
				r.Recv(0, dst, 0, n)
			}
		})
		total := w.RT().TotalCounters()
		out := make([]float64, n)
		copy(out, dst.Data)
		return out, total.MsgRetries, total.MsgDups, total.Busy
	}
	clean, r0, d0, busyClean := run(1, false)
	if r0 != 0 || d0 != 0 {
		t.Fatalf("unarmed run counted retries=%d dups=%d", r0, d0)
	}
	faulty, retries, dups, busyFaulty := run(1, true)
	if retries == 0 || dups == 0 {
		t.Fatalf("armed run at rate 0.3 counted retries=%d dups=%d", retries, dups)
	}
	if busyFaulty <= busyClean {
		t.Fatalf("injected faults did not cost cycles: %d <= %d", busyFaulty, busyClean)
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("numerics diverged at %d under injected faults", i)
		}
	}
	_, retries2, dups2, busy2 := run(1, true)
	if retries2 != retries || dups2 != dups || busy2 != busyFaulty {
		t.Fatalf("same seed not reproducible: (%d,%d,%d) vs (%d,%d,%d)",
			retries, dups, busyFaulty, retries2, dups2, busy2)
	}
}

// TestInjectedLossInCollectives: barrier and allreduce survive loss/dup and
// still compute the right reduction.
func TestInjectedLossInCollectives(t *testing.T) {
	w, _ := world(t, core.Policy4K, 4)
	w.SetFaultPlan(faultinject.New(9).
		Enable(faultinject.SiteMPILoss, 0.4).
		Enable(faultinject.SiteMPIDup, 0.4))
	var bad atomic.Int64
	w.Run(func(r *Rank) {
		r.Barrier()
		got := r.Allreduce(float64(r.ID + 1))
		if got != 10 { // 1+2+3+4
			bad.Add(1)
		}
		r.Barrier()
	})
	if bad.Load() != 0 {
		t.Fatal("allreduce wrong under injected message faults")
	}
	if total := w.RT().TotalCounters(); total.MsgRetries == 0 {
		t.Fatal("collectives drew no retries at rate 0.4")
	}
}
