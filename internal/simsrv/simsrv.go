// Package simsrv is the fault-tolerant simulator service behind cmd/simd: an
// HTTP/JSON front end that accepts (machine config, workload, params)
// requests, runs them on warmed snapshot forks, and returns the run's
// counters. The batch drivers (cmd/hugeomp, cmd/sweep, cmd/chaos) build one
// System per cell and crash loudly on any error; the service inverts every
// one of those assumptions:
//
//   - Cancellation. Each request carries a deadline budget; the run context
//     is threaded through the OpenMP runtime (omp.RT.Bind) so an abandoned
//     request stops at its next checkpoint, frees its worker, and leaves an
//     aborted fork that still passes the full check.All audit.
//
//   - Admission control. A bounded worker pool (internal/par.Pool) with a
//     bounded queue refuses work it cannot start promptly — 429 with a
//     Retry-After — instead of queueing unboundedly; a draining server
//     answers 503.
//
//   - Panic quarantine. A panic inside a session is recovered at the session
//     boundary, turned into a typed error for that request alone, and the
//     poisoned fork is abandoned. The shared warm snapshot is then audited
//     through a sibling fork; only if the audit fails is the template itself
//     quarantined (evicted). The server never dies with a session.
//
//   - Idempotent retries. Results are memoized under the canonical content
//     key of the simulated configuration (internal/memo), so a client retry
//     — or a concurrent duplicate, collapsed by the memo's single-flight —
//     observes bit-identical counters without a second simulation.
//
// See docs/ROBUSTNESS.md ("Service failure model") for the contract each
// piece upholds.
package simsrv

import (
	"errors"
	"sync/atomic"
	"time"

	"hugeomp/internal/core"
	"hugeomp/internal/memo"
	"hugeomp/internal/memo/diskcache"
	"hugeomp/internal/npb"
	"hugeomp/internal/par"
)

// Typed session errors: every failure a request can observe is classified,
// counted, and reported with a machine-readable kind.
var (
	// ErrSessionPanic wraps a panic recovered at a session boundary.
	ErrSessionPanic = errors.New("simsrv: session panicked")
	// ErrSaturated mirrors par.ErrSaturated at the admission layer.
	ErrSaturated = errors.New("simsrv: admission queue full")
	// ErrDraining reports a server that is shutting down.
	ErrDraining = errors.New("simsrv: draining")
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrent simulations; 0 = GOMAXPROCS.
	Workers int
	// Queue bounds admitted-but-not-started simulations; 0 = 2×workers.
	Queue int
	// DefaultDeadline applies when a request names none.
	DefaultDeadline time.Duration
	// MaxDeadline caps any request's deadline budget: the server owns its
	// worst-case occupancy, not the client.
	MaxDeadline time.Duration
	// MemoCapacity bounds the result cache (entries); 0 = unbounded.
	MemoCapacity int
	// AllowInject enables the test-only fault injection field on requests
	// (the chaos harness's panic trigger). Off in production.
	AllowInject bool
	// MaxBodyBytes bounds a request body; 0 = 1 MiB.
	MaxBodyBytes int64
	// CacheDir, when non-empty, backs the result memo with the crash-safe
	// shared on-disk store at that path (internal/memo/diskcache): results
	// survive restarts and are shared with every process — sweeps, soaks,
	// other simd instances — pointed at the same directory.
	CacheDir string
	// MemBudget bounds the summed estimated footprint (npb.ForkBytes) of
	// concurrently admitted sessions, in bytes; 0 = unbounded. Sessions that
	// would overflow it wait FIFO on their own deadline budget.
	MemBudget int64
	// TemplateBudget bounds the warmed-template pool's resident bytes
	// (npb.TemplateBytes per template); 0 = unbounded. Least-recently-used
	// templates beyond it are evicted and rebuilt cold on next use.
	TemplateBudget int64
	// SchedQueue bounds sessions waiting on the footprint budget;
	// 0 = 2×workers (mirroring the worker pool's queue default).
	SchedQueue int
}

func (c Config) withDefaults() Config {
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Counters are the service's typed event counts, one per observable outcome
// class, exposed by /stats and asserted by the soak harness.
type Counters struct {
	Requests    uint64 `json:"requests"`     // admitted /run requests
	Completed   uint64 `json:"completed"`    // answered with a result
	CacheHits   uint64 `json:"cache_hits"`   // answered from the memo
	Aborted     uint64 `json:"aborted"`      // cancelled or deadline-expired
	Panicked    uint64 `json:"panicked"`     // sessions recovered at the boundary
	Quarantined uint64 `json:"quarantined"`  // templates evicted after a failed audit
	Rejected    uint64 `json:"rejected"`     // refused by admission control (429)
	Drained     uint64 `json:"drained"`      // refused while draining (503)
	Invalid     uint64 `json:"invalid"`      // malformed or oversized requests (4xx)
	Failed      uint64 `json:"failed"`       // other run failures (500)
	Retries     uint64 `json:"retries"`      // single-flight retries after a leader abort
	PoolPanics  uint64 `json:"pool_panics"`  // backstop catches (should stay 0)
	MemoMisses  uint64 `json:"memo_misses"`  // simulations actually run
	MemoEvicted uint64 `json:"memo_evicted"` // results dropped by the capacity bound
}

type counters struct {
	requests, completed, cacheHits atomic.Uint64
	aborted, panicked, quarantined atomic.Uint64
	rejected, drained, invalid     atomic.Uint64
	failed, retries                atomic.Uint64
}

// Server is the simulator service. Create with NewServer; serve its Handler.
type Server struct {
	cfg   Config
	pool  *par.Pool
	sched *sched
	memo  *memo.Cache
	disk  *diskcache.Store // nil when CacheDir is unset
	tmpls *tmplPool
	ctr   counters

	draining atomic.Bool
}

// tmplKey identifies a warm template: exactly the construction-shaping
// fields that must match between a template and a fork (npb.Warm's
// contract); model, sharing, barrier, threads and iterations are free per
// fork and deliberately absent.
type tmplKey struct {
	Kernel    string
	Class     npb.Class
	Policy    core.PagePolicy
	HugePages int
}

// NewServer builds a server. Callers serve s.Handler() and, on shutdown,
// call s.Drain followed by s.Close. The only constructor failure is an
// unusable CacheDir — a server without a disk cache never errors.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	pool := par.NewPool(cfg.Workers, cfg.Queue)
	schedQueue := cfg.SchedQueue
	if schedQueue <= 0 {
		schedQueue = 2 * pool.Workers()
	}
	s := &Server{
		cfg:   cfg,
		pool:  pool,
		sched: newSched(cfg.MemBudget, schedQueue),
		memo:  memo.NewBounded(cfg.MemoCapacity),
		tmpls: newTmplPool(cfg.TemplateBudget),
	}
	if cfg.CacheDir != "" {
		disk, err := diskcache.Open(cfg.CacheDir)
		if err != nil {
			pool.Close()
			return nil, err
		}
		s.disk = disk
		s.memo.SetBacking(disk)
	}
	return s, nil
}

// Drain puts the server into draining mode: every subsequent request is
// refused with 503 while in-flight sessions run to completion (or their
// deadlines). Idempotent.
func (s *Server) Drain() { s.draining.Store(true) }

// Close drains the worker pool, waiting for queued sessions. Call after
// Drain and after the HTTP listener has shut down.
func (s *Server) Close() { s.pool.Close() }

// Counters snapshots the typed event counts.
func (s *Server) Counters() Counters {
	_, misses := s.memo.Stats()
	return Counters{
		Requests:    s.ctr.requests.Load(),
		Completed:   s.ctr.completed.Load(),
		CacheHits:   s.ctr.cacheHits.Load(),
		Aborted:     s.ctr.aborted.Load(),
		Panicked:    s.ctr.panicked.Load(),
		Quarantined: s.ctr.quarantined.Load(),
		Rejected:    s.ctr.rejected.Load(),
		Drained:     s.ctr.drained.Load(),
		Invalid:     s.ctr.invalid.Load(),
		Failed:      s.ctr.failed.Load(),
		Retries:     s.ctr.retries.Load(),
		PoolPanics:  s.pool.Panics(),
		MemoMisses:  misses,
		MemoEvicted: s.memo.Evictions(),
	}
}

// template returns the warm template for cfg's construction-shaping fields,
// building it once and settling it into the budget-bounded pool. A
// quarantined or capacity-evicted template is simply gone from the pool, so
// the next session rebuilds from scratch — cold construction cannot be
// poisoned by a dead fork.
func (s *Server) template(cfg npb.RunConfig, kernel string) (*npb.Warm, tmplKey, error) {
	key := tmplKey{Kernel: kernel, Class: cfg.Class, Policy: cfg.Policy, HugePages: cfg.HugePages}
	e := s.tmpls.get(key)
	e.once.Do(func() {
		base := cfg
		base.Ctx = nil // templates outlive any request
		e.w, e.err = npb.NewWarm(kernel, base)
		if e.err == nil {
			e.bytes = npb.TemplateBytes(cfg.Class)
		}
	})
	if e.err != nil {
		// Failed construction is not cached: drop the slot so a later
		// request retries (the failure may have been load-dependent).
		s.tmpls.drop(key, e)
		return nil, key, e.err
	}
	s.tmpls.settle(key, e)
	return e.w, key, nil
}

// evictTemplate quarantines one template: future sessions rebuild cold.
func (s *Server) evictTemplate(key tmplKey, e *tmplEntry) {
	s.tmpls.drop(key, e)
	s.ctr.quarantined.Add(1)
}

func (s *Server) tmplEntryFor(key tmplKey) *tmplEntry {
	return s.tmpls.lookup(key)
}

// Gauges are the service's point-in-time readings — scheduler occupancy,
// template-pool residency, disk-cache traffic — exposed by /stats next to
// the monotone Counters.
type Gauges struct {
	// Footprint scheduler: sessions waiting on the budget, sessions charged
	// against it, bytes charged now / at peak, and the configured budget
	// (0 = unbounded). Waits and rejects are monotone.
	SchedQueued        int    `json:"sched_queued"`
	SchedRunning       int    `json:"sched_running"`
	SchedChargedBytes  int64  `json:"sched_charged_bytes"`
	SchedPeakBytes     int64  `json:"sched_peak_bytes"`
	SchedBudgetBytes   int64  `json:"sched_budget_bytes"`
	SchedBudgetWaits   uint64 `json:"sched_budget_waits"`
	SchedBudgetRejects uint64 `json:"sched_budget_rejects"`
	// Warmed-template pool: settled residents, their estimated bytes, the
	// budget (0 = unbounded), capacity evictions and cold builds.
	TemplateResidents   int    `json:"template_residents"`
	TemplateBytes       int64  `json:"template_bytes"`
	TemplateBudgetBytes int64  `json:"template_budget_bytes"`
	TemplateEvictions   uint64 `json:"template_evictions"`
	TemplateBuilds      uint64 `json:"template_builds"`
	// Shared disk cache (zero-valued with DiskEnabled=false when no
	// -cache-dir was given).
	DiskEnabled       bool   `json:"disk_enabled"`
	DiskHits          uint64 `json:"disk_hits"`
	DiskMisses        uint64 `json:"disk_misses"`
	DiskWrites        uint64 `json:"disk_writes"`
	DiskCorruptSkips  uint64 `json:"disk_corrupt_skips"`
	DiskStaleVersions uint64 `json:"disk_stale_versions"`
	DiskWaits         uint64 `json:"disk_waits"`
}

// Gauges snapshots the point-in-time readings.
func (s *Server) Gauges() Gauges {
	queued, running, charged := s.sched.snapshot()
	residents, bytes, evictions, builds := s.tmpls.snapshot()
	g := Gauges{
		SchedQueued:         queued,
		SchedRunning:        running,
		SchedChargedBytes:   charged,
		SchedPeakBytes:      s.sched.peakCharged.Load(),
		SchedBudgetBytes:    s.cfg.MemBudget,
		SchedBudgetWaits:    s.sched.budgetWaits.Load(),
		SchedBudgetRejects:  s.sched.budgetRejects.Load(),
		TemplateResidents:   residents,
		TemplateBytes:       bytes,
		TemplateBudgetBytes: s.cfg.TemplateBudget,
		TemplateEvictions:   evictions,
		TemplateBuilds:      builds,
	}
	if s.disk != nil {
		st := s.disk.Stats()
		g.DiskEnabled = true
		g.DiskHits = st.Hits
		g.DiskMisses = st.Misses
		g.DiskWrites = st.Writes
		g.DiskCorruptSkips = st.CorruptSkips
		g.DiskStaleVersions = st.StaleVersions
		g.DiskWaits = st.Waits
	}
	return g
}

// DiskStats returns the shared disk cache's counters (zero when disabled).
func (s *Server) DiskStats() diskcache.Stats {
	if s.disk == nil {
		return diskcache.Stats{}
	}
	return s.disk.Stats()
}
