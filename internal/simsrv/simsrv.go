// Package simsrv is the fault-tolerant simulator service behind cmd/simd: an
// HTTP/JSON front end that accepts (machine config, workload, params)
// requests, runs them on warmed snapshot forks, and returns the run's
// counters. The batch drivers (cmd/hugeomp, cmd/sweep, cmd/chaos) build one
// System per cell and crash loudly on any error; the service inverts every
// one of those assumptions:
//
//   - Cancellation. Each request carries a deadline budget; the run context
//     is threaded through the OpenMP runtime (omp.RT.Bind) so an abandoned
//     request stops at its next checkpoint, frees its worker, and leaves an
//     aborted fork that still passes the full check.All audit.
//
//   - Admission control. A bounded worker pool (internal/par.Pool) with a
//     bounded queue refuses work it cannot start promptly — 429 with a
//     Retry-After — instead of queueing unboundedly; a draining server
//     answers 503.
//
//   - Panic quarantine. A panic inside a session is recovered at the session
//     boundary, turned into a typed error for that request alone, and the
//     poisoned fork is abandoned. The shared warm snapshot is then audited
//     through a sibling fork; only if the audit fails is the template itself
//     quarantined (evicted). The server never dies with a session.
//
//   - Idempotent retries. Results are memoized under the canonical content
//     key of the simulated configuration (internal/memo), so a client retry
//     — or a concurrent duplicate, collapsed by the memo's single-flight —
//     observes bit-identical counters without a second simulation.
//
// See docs/ROBUSTNESS.md ("Service failure model") for the contract each
// piece upholds.
package simsrv

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hugeomp/internal/core"
	"hugeomp/internal/memo"
	"hugeomp/internal/npb"
	"hugeomp/internal/par"
)

// Typed session errors: every failure a request can observe is classified,
// counted, and reported with a machine-readable kind.
var (
	// ErrSessionPanic wraps a panic recovered at a session boundary.
	ErrSessionPanic = errors.New("simsrv: session panicked")
	// ErrSaturated mirrors par.ErrSaturated at the admission layer.
	ErrSaturated = errors.New("simsrv: admission queue full")
	// ErrDraining reports a server that is shutting down.
	ErrDraining = errors.New("simsrv: draining")
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrent simulations; 0 = GOMAXPROCS.
	Workers int
	// Queue bounds admitted-but-not-started simulations; 0 = 2×workers.
	Queue int
	// DefaultDeadline applies when a request names none.
	DefaultDeadline time.Duration
	// MaxDeadline caps any request's deadline budget: the server owns its
	// worst-case occupancy, not the client.
	MaxDeadline time.Duration
	// MemoCapacity bounds the result cache (entries); 0 = unbounded.
	MemoCapacity int
	// AllowInject enables the test-only fault injection field on requests
	// (the chaos harness's panic trigger). Off in production.
	AllowInject bool
	// MaxBodyBytes bounds a request body; 0 = 1 MiB.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Counters are the service's typed event counts, one per observable outcome
// class, exposed by /stats and asserted by the soak harness.
type Counters struct {
	Requests    uint64 `json:"requests"`     // admitted /run requests
	Completed   uint64 `json:"completed"`    // answered with a result
	CacheHits   uint64 `json:"cache_hits"`   // answered from the memo
	Aborted     uint64 `json:"aborted"`      // cancelled or deadline-expired
	Panicked    uint64 `json:"panicked"`     // sessions recovered at the boundary
	Quarantined uint64 `json:"quarantined"`  // templates evicted after a failed audit
	Rejected    uint64 `json:"rejected"`     // refused by admission control (429)
	Drained     uint64 `json:"drained"`      // refused while draining (503)
	Invalid     uint64 `json:"invalid"`      // malformed or oversized requests (4xx)
	Failed      uint64 `json:"failed"`       // other run failures (500)
	Retries     uint64 `json:"retries"`      // single-flight retries after a leader abort
	PoolPanics  uint64 `json:"pool_panics"`  // backstop catches (should stay 0)
	MemoMisses  uint64 `json:"memo_misses"`  // simulations actually run
	MemoEvicted uint64 `json:"memo_evicted"` // results dropped by the capacity bound
}

type counters struct {
	requests, completed, cacheHits atomic.Uint64
	aborted, panicked, quarantined atomic.Uint64
	rejected, drained, invalid     atomic.Uint64
	failed, retries                atomic.Uint64
}

// Server is the simulator service. Create with NewServer; serve its Handler.
type Server struct {
	cfg  Config
	pool *par.Pool
	memo *memo.Cache
	ctr  counters

	draining atomic.Bool

	mu    sync.Mutex
	tmpls map[tmplKey]*tmplEntry
}

// tmplKey identifies a warm template: exactly the construction-shaping
// fields that must match between a template and a fork (npb.Warm's
// contract); model, sharing, barrier, threads and iterations are free per
// fork and deliberately absent.
type tmplKey struct {
	Kernel    string
	Class     npb.Class
	Policy    core.PagePolicy
	HugePages int
}

// tmplEntry is a single-flight slot for one template: the first session
// builds it, concurrent sessions for the same key wait on the same once.
type tmplEntry struct {
	once sync.Once
	w    *npb.Warm
	err  error
}

// NewServer builds a server. Callers serve s.Handler() and, on shutdown,
// call s.Drain followed by s.Close.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		pool:  par.NewPool(cfg.Workers, cfg.Queue),
		memo:  memo.NewBounded(cfg.MemoCapacity),
		tmpls: make(map[tmplKey]*tmplEntry),
	}
}

// Drain puts the server into draining mode: every subsequent request is
// refused with 503 while in-flight sessions run to completion (or their
// deadlines). Idempotent.
func (s *Server) Drain() { s.draining.Store(true) }

// Close drains the worker pool, waiting for queued sessions. Call after
// Drain and after the HTTP listener has shut down.
func (s *Server) Close() { s.pool.Close() }

// Counters snapshots the typed event counts.
func (s *Server) Counters() Counters {
	_, misses := s.memo.Stats()
	return Counters{
		Requests:    s.ctr.requests.Load(),
		Completed:   s.ctr.completed.Load(),
		CacheHits:   s.ctr.cacheHits.Load(),
		Aborted:     s.ctr.aborted.Load(),
		Panicked:    s.ctr.panicked.Load(),
		Quarantined: s.ctr.quarantined.Load(),
		Rejected:    s.ctr.rejected.Load(),
		Drained:     s.ctr.drained.Load(),
		Invalid:     s.ctr.invalid.Load(),
		Failed:      s.ctr.failed.Load(),
		Retries:     s.ctr.retries.Load(),
		PoolPanics:  s.pool.Panics(),
		MemoMisses:  misses,
		MemoEvicted: s.memo.Evictions(),
	}
}

// template returns the warm template for cfg's construction-shaping fields,
// building it once. A quarantined template has been evicted, so the next
// session rebuilds from scratch — cold construction cannot be poisoned by a
// dead fork.
func (s *Server) template(cfg npb.RunConfig, kernel string) (*npb.Warm, tmplKey, error) {
	key := tmplKey{Kernel: kernel, Class: cfg.Class, Policy: cfg.Policy, HugePages: cfg.HugePages}
	s.mu.Lock()
	e := s.tmpls[key]
	if e == nil {
		e = &tmplEntry{}
		s.tmpls[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		base := cfg
		base.Ctx = nil // templates outlive any request
		e.w, e.err = npb.NewWarm(kernel, base)
	})
	if e.err != nil {
		// Failed construction is not cached: drop the slot so a later
		// request retries (the failure may have been load-dependent).
		s.mu.Lock()
		if s.tmpls[key] == e {
			delete(s.tmpls, key)
		}
		s.mu.Unlock()
		return nil, key, e.err
	}
	return e.w, key, nil
}

// evictTemplate quarantines one template: future sessions rebuild cold.
func (s *Server) evictTemplate(key tmplKey, e *tmplEntry) {
	s.mu.Lock()
	if s.tmpls[key] == nil || s.tmpls[key] == e {
		delete(s.tmpls, key)
	}
	s.mu.Unlock()
	s.ctr.quarantined.Add(1)
}

func (s *Server) tmplEntryFor(key tmplKey) *tmplEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tmpls[key]
}
