package simsrv

import (
	"context"
	"errors"
	"fmt"

	"hugeomp/internal/check"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
	"hugeomp/internal/par"
)

// run answers one compiled request: memoized, single-flighted, executed on
// the admission-controlled pool under ctx's deadline budget.
//
// The memo collapses concurrent identical requests onto one flight. When
// that flight's leader is cancelled, its abort error is reported to every
// collapsed waiter and the key is forgotten — so a waiter whose own budget
// is still live retries and becomes the new leader, keeping retries
// idempotent: the first request to actually finish publishes the
// bit-deterministic result everyone else decodes.
func (s *Server) run(ctx context.Context, cfg npb.RunConfig, kernel, key string) (npb.Result, bool, error) {
	for {
		var res npb.Result
		hit, err := s.memo.GetOrCompute(key, func() (any, error) {
			return s.dispatch(ctx, cfg, kernel, "")
		}, &res)
		if err == nil {
			return res, hit, nil
		}
		if errors.Is(err, omp.ErrAborted) && ctx.Err() == nil {
			// The flight we were collapsed onto died with its leader's
			// budget, not ours: retry under our own.
			s.ctr.retries.Add(1)
			continue
		}
		return npb.Result{}, false, err
	}
}

// dispatch submits one session to the worker pool and waits for it. The
// admission decision is made here — a full queue refuses immediately with
// ErrSaturated, it never blocks — and the session itself always runs to a
// conclusion once admitted: a cancelled request's session observes the dead
// context at its first checkpoint and returns within one checkpoint
// interval, freeing the worker.
func (s *Server) dispatch(ctx context.Context, cfg npb.RunConfig, kernel, inject string) (npb.Result, error) {
	type outcome struct {
		res npb.Result
		err error
	}
	// Charge the session's estimated footprint before it may occupy a
	// worker: the scheduler packs concurrent sessions under the global
	// memory budget, blocking on the request's own deadline budget when the
	// server is footprint-saturated. Cache hits never reach this point.
	est := npb.ForkBytes(cfg.Class)
	if err := s.sched.acquire(ctx, est); err != nil {
		return npb.Result{}, err
	}
	defer s.sched.release(est)

	done := make(chan outcome, 1)
	err := s.pool.Submit(func() {
		res, err := s.session(ctx, cfg, kernel, inject)
		done <- outcome{res, err}
	})
	switch {
	case errors.Is(err, par.ErrSaturated):
		return npb.Result{}, ErrSaturated
	case errors.Is(err, par.ErrClosed):
		return npb.Result{}, ErrDraining
	case err != nil:
		return npb.Result{}, err
	}
	o := <-done
	return o.res, o.err
}

// session is one simulation and the panic boundary around it: a panic
// anywhere inside — kernel, runtime, machine model, or an injected fault —
// is recovered here, counted, and converted into a typed error for this
// request only. The poisoned fork is simply abandoned (its COW pagetables
// share nothing writable with the snapshot), and the shared template is
// audited before being trusted again.
func (s *Server) session(ctx context.Context, cfg npb.RunConfig, kernel, inject string) (res npb.Result, err error) {
	w, key, terr := s.template(cfg, kernel)
	if terr != nil {
		return npb.Result{}, terr
	}
	e := s.tmplEntryFor(key)
	defer func() {
		if r := recover(); r != nil {
			s.ctr.panicked.Add(1)
			if !s.auditTemplate(w, cfg) {
				s.evictTemplate(key, e)
			}
			err = fmt.Errorf("%w: %v", ErrSessionPanic, r)
		}
	}()
	if inject == "panic" {
		panic("simsrv: injected session panic")
	}
	run := cfg
	run.Ctx = ctx
	result, _, _, rerr := w.RunOn(run)
	if rerr != nil {
		return npb.Result{}, rerr
	}
	return result, nil
}

// auditTemplate asserts COW sibling isolation after a panic: a fresh fork of
// the template must run to a verified completion and pass the full machine
// audit. True means the snapshot is intact — the panic died with its own
// fork; false quarantines the template. The audit run is uncancellable by
// design: it is the server deciding whether its own shared state is sound.
func (s *Server) auditTemplate(w *npb.Warm, cfg npb.RunConfig) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false // the snapshot itself reproduces the panic
		}
	}()
	probe := cfg
	probe.Ctx = nil
	_, sys, _, err := w.RunOn(probe)
	if err != nil || sys == nil {
		return false
	}
	return check.All(sys.Machine) == nil
}
