package simsrv

import (
	"fmt"
	"time"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
)

// Request is the wire form of one simulation: machine config, workload, and
// parameters. Deadline and injection fields shape the request's handling,
// never the simulation, and are excluded from the memo key.
type Request struct {
	Kernel     string `json:"kernel"`               // BT, CG, FT, SP, MG
	Class      string `json:"class"`                // T, S, W, A
	Model      string `json:"model"`                // Opteron270, XeonHT, NiagaraT1
	Threads    int    `json:"threads"`              // team size; 0 = 1
	Policy     string `json:"policy"`               // 4KB, 2MB, mixed, transparent
	Sharing    string `json:"sharing,omitempty"`    // partitioned (default), true-shared
	Barrier    string `json:"barrier,omitempty"`    // tree (default), central
	Iterations int    `json:"iterations,omitempty"` // 0 = kernel default
	HugePages  int    `json:"huge_pages,omitempty"` // hugetlbfs pool size; 0 = fit

	// DeadlineMS is the client's deadline budget in milliseconds, capped by
	// the server's MaxDeadline; 0 takes the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Inject triggers a test-only fault inside the session ("panic");
	// rejected unless the server runs with AllowInject.
	Inject string `json:"inject,omitempty"`
}

// Response is the wire form of a completed simulation.
type Response struct {
	Key    string     `json:"key"`    // canonical content key of the run
	Cached bool       `json:"cached"` // true if answered from the memo
	Result npb.Result `json:"result"`
}

// errorKind classifies a failed request for the wire and the counters.
type errorKind string

const (
	kindInvalid   errorKind = "invalid_request"
	kindSaturated errorKind = "saturated"
	kindDraining  errorKind = "draining"
	kindAborted   errorKind = "aborted"
	kindPanic     errorKind = "session_panic"
	kindInternal  errorKind = "internal"
)

// ErrorBody is the wire form of a failed request.
type ErrorBody struct {
	Kind    errorKind `json:"kind"`
	Message string    `json:"message"`
}

// compile translates the wire request into a run config, rejecting anything
// the simulator cannot represent. The returned key is the canonical content
// hash of everything that shapes the simulation — model cost tables
// included — and nothing that does not (deadline, injection).
func (s *Server) compile(req *Request) (npb.RunConfig, string, error) {
	var cfg npb.RunConfig
	if _, err := npb.New(req.Kernel); err != nil {
		return cfg, "", err
	}
	class, err := npb.ParseClass(req.Class)
	if err != nil {
		return cfg, "", err
	}
	model, ok := machine.ModelByName(req.Model)
	if !ok {
		return cfg, "", fmt.Errorf("simsrv: unknown model %q", req.Model)
	}
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		return cfg, "", err
	}
	sharing, err := parseSharing(req.Sharing)
	if err != nil {
		return cfg, "", err
	}
	barrier, err := parseBarrier(req.Barrier)
	if err != nil {
		return cfg, "", err
	}
	threads := req.Threads
	if threads == 0 {
		threads = 1
	}
	if threads < 1 || threads > model.MaxThreads() {
		return cfg, "", fmt.Errorf("simsrv: %d threads exceed %s's %d hardware contexts",
			threads, model.Name, model.MaxThreads())
	}
	if req.Iterations < 0 || req.HugePages < 0 || req.DeadlineMS < 0 {
		return cfg, "", fmt.Errorf("simsrv: negative iterations, huge_pages or deadline_ms")
	}
	if req.Inject != "" && req.Inject != "panic" {
		return cfg, "", fmt.Errorf("simsrv: unknown inject %q", req.Inject)
	}
	if req.Inject != "" && !s.cfg.AllowInject {
		return cfg, "", fmt.Errorf("simsrv: fault injection is disabled on this server")
	}
	cfg = npb.RunConfig{
		Model:      model,
		Threads:    threads,
		Policy:     policy,
		Class:      class,
		Iterations: req.Iterations,
		Sharing:    sharing,
		Barrier:    barrier,
		HugePages:  req.HugePages,
	}
	// RunConfig.Ctx carries json:"-", so the key covers exactly the
	// simulated configuration: a retry with a different deadline, or a
	// duplicate from another client, lands on the same content address —
	// and, through npb.RunKey, the same address every other driver (sweep,
	// bench, another simd) uses for the same run.
	return cfg, npb.RunKey(req.Kernel, cfg), nil
}

// budget computes the request's deadline budget under the server cap.
func (s *Server) budget(req *Request) time.Duration {
	d := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		d = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

func parsePolicy(s string) (core.PagePolicy, error) {
	switch s {
	case "4KB", "4kb", "4k", "":
		return core.Policy4K, nil
	case "2MB", "2mb", "2m":
		return core.Policy2M, nil
	case "mixed":
		return core.PolicyMixed, nil
	case "transparent", "thp":
		return core.PolicyTransparent, nil
	}
	return 0, fmt.Errorf("simsrv: unknown policy %q", s)
}

func parseSharing(s string) (machine.SharingMode, error) {
	switch s {
	case "partitioned", "":
		return machine.SharePartition, nil
	case "true-shared":
		return machine.ShareTrue, nil
	}
	return 0, fmt.Errorf("simsrv: unknown sharing mode %q", s)
}

func parseBarrier(s string) (omp.BarrierAlgo, error) {
	switch s {
	case "tree", "":
		return omp.TreeBarrier, nil
	case "central":
		return omp.CentralBarrier, nil
	}
	return 0, fmt.Errorf("simsrv: unknown barrier %q", s)
}
