package simsrv

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
)

// Handler returns the service's HTTP surface:
//
//	POST /run     — run (or recall) one simulation
//	GET  /healthz — liveness and drain state
//	GET  /stats   — typed event counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.ctr.drained.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, kindDraining, "server is draining")
		return
	}

	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.ctr.invalid.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, kindInvalid, "request body exceeds limit")
			return
		}
		writeError(w, http.StatusBadRequest, kindInvalid, "malformed request: "+err.Error())
		return
	}

	cfg, key, err := s.compile(&req)
	if err != nil {
		s.ctr.invalid.Add(1)
		writeError(w, http.StatusBadRequest, kindInvalid, err.Error())
		return
	}

	// The deadline budget starts at admission: queue wait spends it too, so
	// a request cannot hold a queue slot beyond the budget it arrived with.
	ctx, cancel := context.WithTimeout(r.Context(), s.budget(&req))
	defer cancel()

	s.ctr.requests.Add(1)
	var (
		res npb.Result
		hit bool
	)
	if req.Inject != "" {
		// Injected faults bypass the memo: a poisoned session must never
		// publish — or be answered from — a content-addressed result.
		res, err = s.dispatch(ctx, cfg, req.Kernel, req.Inject)
	} else {
		res, hit, err = s.run(ctx, cfg, req.Kernel, key)
	}
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	s.ctr.completed.Add(1)
	if hit {
		s.ctr.cacheHits.Add(1)
	}
	writeJSON(w, http.StatusOK, Response{Key: key, Cached: hit, Result: res})
}

// writeRunError maps a failed session onto status, typed kind, and counters.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated):
		s.ctr.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, kindSaturated, "admission queue full; retry later")
	case errors.Is(err, ErrDraining):
		s.ctr.drained.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, kindDraining, "server is draining")
	case errors.Is(err, omp.ErrAborted):
		s.ctr.aborted.Add(1)
		writeError(w, http.StatusGatewayTimeout, kindAborted, err.Error())
	case errors.Is(err, ErrSessionPanic):
		// counted at the session boundary, where the recover runs
		writeError(w, http.StatusInternalServerError, kindPanic, err.Error())
	default:
		s.ctr.failed.Add(1)
		writeError(w, http.StatusInternalServerError, kindInternal, err.Error())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": status})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	type stats struct {
		Counters Counters `json:"counters"`
		Gauges   Gauges   `json:"gauges"`
		Workers  int      `json:"workers"`
		QueueCap int      `json:"queue_cap"`
		Queued   int      `json:"queued"`
		MemoLen  int      `json:"memo_len"`
		MemoCap  int      `json:"memo_cap"`
	}
	writeJSON(w, http.StatusOK, stats{
		Counters: s.Counters(),
		Gauges:   s.Gauges(),
		Workers:  s.pool.Workers(),
		QueueCap: s.pool.QueueCap(),
		Queued:   s.pool.Queued(),
		MemoLen:  s.memo.Len(),
		MemoCap:  s.memo.Capacity(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, kind errorKind, msg string) {
	writeJSON(w, code, map[string]ErrorBody{"error": {Kind: kind, Message: msg}})
}
