package simsrv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"hugeomp/internal/omp"
)

// sched is the footprint-aware admission layer in front of the worker pool:
// where par.Pool hands out first-come slots, sched packs sessions under a
// global memory budget. Every session is charged an estimated fork footprint
// (npb.ForkBytes: class-dependent mutable-array bytes plus metadata) before
// it may occupy a worker; sessions that would overflow the budget wait in
// FIFO order — spending their own deadline budget, never the server's — and
// a bounded number of waiters turns further arrivals into ErrSaturated
// (429). Requests answerable from a cache layer never reach the scheduler at
// all: the memo and disk lookups run before dispatch, so under saturation
// the service keeps serving exactly the cache-hit-likely traffic while
// compute-bound requests queue.
//
// One deliberate asymmetry: a request whose footprint alone exceeds the
// budget is admitted when the scheduler is idle (nothing charged). The
// budget bounds concurrent packing; it must not make a large class
// permanently unservable.
type sched struct {
	budget   int64 // bytes; 0 = unbounded
	maxQueue int   // bound on waiting sessions

	mu      sync.Mutex
	charged int64
	running int
	waiters []*schedWaiter

	budgetWaits   atomic.Uint64
	budgetRejects atomic.Uint64
	peakCharged   atomic.Int64
}

type schedWaiter struct {
	est   int64
	ready chan struct{} // closed by release once the waiter's charge is applied
}

func newSched(budget int64, maxQueue int) *sched {
	if maxQueue <= 0 {
		maxQueue = 16
	}
	return &sched{budget: budget, maxQueue: maxQueue}
}

// fitsLocked reports whether charging est more bytes respects the budget.
// An idle scheduler always fits (see the type comment).
func (s *sched) fitsLocked(est int64) bool {
	if s.budget <= 0 || s.charged == 0 {
		return true
	}
	return s.charged+est <= s.budget
}

func (s *sched) chargeLocked(est int64) {
	s.charged += est
	s.running++
	if s.charged > s.peakCharged.Load() {
		s.peakCharged.Store(s.charged)
	}
}

// acquire charges est bytes against the budget, waiting — under ctx's
// deadline — for running sessions to release enough. FIFO: a small request
// does not overtake a large one (no starvation of big classes). Returns
// ErrSaturated when the waiter queue is full, and an omp.ErrAborted-wrapping
// error when ctx dies first, so the HTTP layer maps the outcome onto the
// same 429/504 vocabulary as the worker pool.
func (s *sched) acquire(ctx context.Context, est int64) error {
	s.mu.Lock()
	if s.fitsLocked(est) {
		s.chargeLocked(est)
		s.mu.Unlock()
		return nil
	}
	if len(s.waiters) >= s.maxQueue {
		s.mu.Unlock()
		s.budgetRejects.Add(1)
		return ErrSaturated
	}
	w := &schedWaiter{est: est, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	s.budgetWaits.Add(1)

	select {
	case <-w.ready:
		return nil // release already charged us
	case <-ctx.Done():
		s.mu.Lock()
		removed := s.removeWaiterLocked(w)
		s.mu.Unlock()
		if !removed {
			// Granted concurrently with the abort: we own a charge we will
			// never use. Hand it back (this also wakes the next waiter).
			s.release(est)
		}
		return fmt.Errorf("%w: deadline spent waiting for footprint budget: %v", omp.ErrAborted, ctx.Err())
	}
}

func (s *sched) removeWaiterLocked(w *schedWaiter) bool {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// release returns est charged bytes and admits, in FIFO order, every waiter
// the freed budget now fits.
func (s *sched) release(est int64) {
	s.mu.Lock()
	s.charged -= est
	s.running--
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if !s.fitsLocked(w.est) {
			break
		}
		s.chargeLocked(w.est)
		s.waiters = s.waiters[1:]
		close(w.ready)
	}
	s.mu.Unlock()
}

// snapshot returns the scheduler's gauges.
func (s *sched) snapshot() (queued, running int, charged int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters), s.running, s.charged
}
