package simsrv

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
		s.Close()
	})
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeResponse(t *testing.T, body []byte) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("decode response: %v\n%s", err, body)
	}
	return r
}

func errKind(t *testing.T, body []byte) errorKind {
	t.Helper()
	var e map[string]ErrorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decode error body: %v\n%s", err, body)
	}
	return e["error"].Kind
}

var baseReq = Request{Kernel: "CG", Class: "T", Model: "Opteron270", Threads: 2, Policy: "2MB"}

// TestServerMemoizedRetry: an identical retry is answered from the memo with
// a byte-identical result — the idempotency contract.
func TestServerMemoizedRetry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp1, body1 := postRun(t, ts, baseReq)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp1.StatusCode, body1)
	}
	r1 := decodeResponse(t, body1)
	if r1.Cached {
		t.Error("first run reported cached")
	}
	resp2, body2 := postRun(t, ts, baseReq)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry: %d %s", resp2.StatusCode, body2)
	}
	r2 := decodeResponse(t, body2)
	if !r2.Cached {
		t.Error("retry not answered from the memo")
	}
	if r1.Key != r2.Key || !reflect.DeepEqual(r1.Result, r2.Result) {
		t.Errorf("retry result differs:\nfirst: %+v\nretry: %+v", r1, r2)
	}
	// A different deadline must not change the content key.
	req3 := baseReq
	req3.DeadlineMS = 55_000
	_, body3 := postRun(t, ts, req3)
	if r3 := decodeResponse(t, body3); r3.Key != r1.Key {
		t.Errorf("deadline changed the content key: %s vs %s", r3.Key, r1.Key)
	}
}

// TestServerSingleFlight: concurrent identical requests collapse onto one
// simulation; everyone gets the same bytes.
func TestServerSingleFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 8
	results := make([]Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postRun(t, ts, baseReq)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d %s", i, resp.StatusCode, body)
				return
			}
			results[i] = decodeResponse(t, body)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0].Result, results[i].Result) {
			t.Fatalf("request %d result differs from request 0", i)
		}
	}
	if misses := s.Counters().MemoMisses; misses != 1 {
		t.Errorf("%d simulations ran for %d identical requests, want 1", misses, n)
	}
}

// TestServerDeadlineAborts: a request whose budget expires mid-run is
// answered 504 with the typed aborted kind, and the worker it held is free
// for the next request.
func TestServerDeadlineAborts(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})

	// Prime the warm template with a generous budget (template construction
	// is uncancellable and would eat a tiny budget before the first
	// checkpoint could).
	if resp, body := postRun(t, ts, baseReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: %d %s", resp.StatusCode, body)
	}

	slow := baseReq
	slow.Iterations = 500 // long enough that a 1ms budget dies mid-run
	slow.DeadlineMS = 1
	resp, body := postRun(t, ts, slow)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline run: %d %s, want 504", resp.StatusCode, body)
	}
	if k := errKind(t, body); k != kindAborted {
		t.Errorf("kind = %s, want %s", k, kindAborted)
	}
	if got := s.Counters().Aborted; got == 0 {
		t.Error("aborted counter not bumped")
	}

	// The single worker must be free again: a fresh (uncached) run succeeds.
	next := baseReq
	next.Threads = 1
	if resp, body := postRun(t, ts, next); resp.StatusCode != http.StatusOK {
		t.Fatalf("run after abort: %d %s", resp.StatusCode, body)
	}

	// An identical request with a live budget must not inherit the aborted
	// flight's error: errors are never memoized.
	slow.DeadlineMS = 60_000
	if resp, body := postRun(t, ts, slow); resp.StatusCode != http.StatusOK {
		t.Fatalf("retry of aborted config: %d %s", resp.StatusCode, body)
	}
}

// TestServerPanicQuarantine: an injected panic yields a typed 500 for that
// request only; the server keeps serving, and a later run forked from the
// same template matches a cold run bit-for-bit — the panic died with its
// fork, not with the snapshot.
func TestServerPanicQuarantine(t *testing.T) {
	s, ts := newTestServer(t, Config{AllowInject: true})

	if resp, body := postRun(t, ts, baseReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: %d %s", resp.StatusCode, body)
	}

	boom := baseReq
	boom.Inject = "panic"
	resp, body := postRun(t, ts, boom)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic: %d %s, want 500", resp.StatusCode, body)
	}
	if k := errKind(t, body); k != kindPanic {
		t.Errorf("kind = %s, want %s", k, kindPanic)
	}
	ctr := s.Counters()
	if ctr.Panicked != 1 {
		t.Errorf("panicked = %d, want 1", ctr.Panicked)
	}
	if ctr.Quarantined != 0 {
		t.Errorf("quarantined = %d, want 0 (the snapshot was not poisoned)", ctr.Quarantined)
	}
	if ctr.PoolPanics != 0 {
		t.Errorf("pool backstop caught %d panics; the session boundary must recover first", ctr.PoolPanics)
	}

	// Post-panic sibling fork vs a cold run of the same config: threads=4
	// forces a fresh simulation (new content key) from the surviving
	// template.
	after := baseReq
	after.Threads = 4
	respA, bodyA := postRun(t, ts, after)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("run after panic: %d %s", respA.StatusCode, bodyA)
	}
	got := decodeResponse(t, bodyA).Result

	k, err := npb.New("CG")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := npb.Run(k, npb.RunConfig{
		Model: machine.Opteron270(), Threads: 4, Policy: core.Policy2M, Class: npb.ClassT,
		Sharing: machine.SharePartition, Barrier: omp.TreeBarrier,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare through the same JSON round-trip the service performs.
	cb, _ := json.Marshal(cold)
	var coldRT npb.Result
	if err := json.Unmarshal(cb, &coldRT); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRT, got) {
		t.Errorf("post-panic sibling differs from cold run:\ncold: %+v\ngot:  %+v", coldRT, got)
	}
}

// TestServerAdmissionRefuses: with the pool saturated, /run answers 429 with
// a Retry-After instead of queueing, and recovers once capacity returns.
func TestServerAdmissionRefuses(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})
	block := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(block) }) })
	var wg sync.WaitGroup
	// Saturate: one running task (wait until the worker holds it), then one
	// queued — otherwise both could land in the queue and the second Submit
	// would race the worker for the only slot.
	started := make(chan struct{})
	wg.Add(1)
	if err := s.pool.Submit(func() { defer wg.Done(); close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	wg.Add(1)
	if err := s.pool.Submit(func() { defer wg.Done(); <-block }); err != nil {
		t.Fatal(err)
	}
	resp, body := postRun(t, ts, baseReq)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated run: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if k := errKind(t, body); k != kindSaturated {
		t.Errorf("kind = %s, want %s", k, kindSaturated)
	}
	if got := s.Counters().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	once.Do(func() { close(block) })
	wg.Wait()
	if resp, body := postRun(t, ts, baseReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("run after capacity returned: %d %s", resp.StatusCode, body)
	}
}

// TestServerDrain: a draining server refuses new work with 503 + Retry-After
// and reports draining on /healthz.
func TestServerDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Drain()
	resp, body := postRun(t, ts, baseReq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining run: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if k := errKind(t, body); k != kindDraining {
		t.Errorf("kind = %s, want %s", k, kindDraining)
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", h.StatusCode)
	}
}

// TestServerRejectsBadRequests: malformed, unknown-field, oversized, and
// disabled-injection requests all get typed 4xx answers.
func TestServerRejectsBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad kernel", `{"kernel":"LU","class":"T","model":"Opteron270","threads":1,"policy":"4KB"}`, 400},
		{"bad model", `{"kernel":"CG","class":"T","model":"EPYC","threads":1,"policy":"4KB"}`, 400},
		{"bad policy", `{"kernel":"CG","class":"T","model":"Opteron270","threads":1,"policy":"1GB"}`, 400},
		{"too many threads", `{"kernel":"CG","class":"T","model":"Opteron270","threads":64,"policy":"4KB"}`, 400},
		{"unknown field", `{"kernel":"CG","class":"T","model":"Opteron270","threads":1,"policy":"4KB","fault":"x"}`, 400},
		{"not json", `kernel=CG`, 400},
		{"oversized", `{"kernel":"CG","junk":"` + strings.Repeat("x", 4096) + `"}`, 413},
		{"inject disabled", `{"kernel":"CG","class":"T","model":"Opteron270","threads":1,"policy":"4KB","inject":"panic"}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}
	if got := s.Counters().Invalid; got != uint64(len(cases)) {
		t.Errorf("invalid = %d, want %d", got, len(cases))
	}
}

// TestServerSmoke is the CI race-mode smoke: a handful of mixed requests
// against a live server, then clean drain. Kept fast deliberately.
func TestServerSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Queue: 4, MemoCapacity: 8})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := baseReq
			req.Threads = 1 + i%2
			resp, body := postRun(t, ts, req)
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("smoke %d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats struct {
		Counters Counters `json:"counters"`
	}
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Counters.Completed+stats.Counters.Rejected == 0 {
		t.Error("smoke produced no outcomes")
	}
	if stats.Counters.PoolPanics != 0 {
		t.Errorf("pool panics = %d", stats.Counters.PoolPanics)
	}
}

// TestBudgetCap: the server cap binds client budgets.
func TestBudgetCap(t *testing.T) {
	s, err := NewServer(Config{MaxDeadline: time.Second, DefaultDeadline: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if d := s.budget(&Request{}); d != 500*time.Millisecond {
		t.Errorf("default budget = %s", d)
	}
	if d := s.budget(&Request{DeadlineMS: 100}); d != 100*time.Millisecond {
		t.Errorf("explicit budget = %s", d)
	}
	if d := s.budget(&Request{DeadlineMS: 60_000}); d != time.Second {
		t.Errorf("capped budget = %s, want 1s", d)
	}
}

// TestTemplateReuse: requests differing only in fork-free fields share one
// warm template.
func TestTemplateReuse(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, req := range []Request{
		baseReq,
		{Kernel: "CG", Class: "T", Model: "XeonHT", Threads: 4, Policy: "2MB", Sharing: "true-shared", Barrier: "central"},
		{Kernel: "CG", Class: "T", Model: "Opteron270", Threads: 1, Policy: "2MB", Iterations: 3},
	} {
		if resp, body := postRun(t, ts, req); resp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: %d %s", req, resp.StatusCode, body)
		}
	}
	n, _, _, builds := s.tmpls.snapshot()
	if n != 1 {
		t.Errorf("%d templates for fork-free variations, want 1", n)
	}
	if builds != 1 {
		t.Errorf("%d template builds for fork-free variations, want 1", builds)
	}
}
