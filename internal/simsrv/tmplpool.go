package simsrv

import (
	"sync"

	"hugeomp/internal/npb"
)

// tmplPool is the warmed-template pool: an LRU of npb.Warm snapshots keyed
// by the construction-shaping fields (kernel, class, policy, hugetlbfs
// pool), bounded by a byte budget so mixed-model traffic keeps its hot
// request classes warm without letting every class ever seen pin its shared
// region forever. Each entry is a single-flight slot — the first session for
// a key builds the template, concurrent sessions wait on the same once — and
// eviction only unlinks an entry: sessions already holding the *npb.Warm
// keep forking it safely (the snapshot is immutable), the memory is simply
// released once the last of them finishes.
//
// Accounting is by estimate (npb.TemplateBytes — the snapshot pins the
// class's whole shared region), charged when a build settles. The
// most-recently-touched entry is never evicted, so a budget smaller than one
// template degrades to a single-resident pool rather than thrashing to
// empty — exactly the "single-template baseline" the service benchmark
// compares against.
type tmplPool struct {
	mu        sync.Mutex
	budget    int64 // bytes; 0 = unbounded
	entries   map[tmplKey]*tmplEntry
	lru       []tmplKey // least-recently-used first
	resident  int64     // settled bytes
	evictions uint64    // capacity evictions (quarantines counted separately)
	builds    uint64    // templates constructed (cold)
}

// tmplEntry is a single-flight slot for one template: the first session
// builds it, concurrent sessions for the same key wait on the same once.
type tmplEntry struct {
	once    sync.Once
	w       *npb.Warm
	err     error
	bytes   int64
	settled bool // accounted into the pool's resident total
}

func newTmplPool(budget int64) *tmplPool {
	return &tmplPool{budget: budget, entries: make(map[tmplKey]*tmplEntry)}
}

// get returns the entry for key, creating an empty slot on first sight, and
// marks key most recently used.
func (p *tmplPool) get(key tmplKey) *tmplEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[key]
	if e == nil {
		e = &tmplEntry{}
		p.entries[key] = e
	}
	p.touchLocked(key)
	return e
}

func (p *tmplPool) touchLocked(key tmplKey) {
	for i, k := range p.lru {
		if k == key {
			p.lru = append(p.lru[:i], p.lru[i+1:]...)
			break
		}
	}
	p.lru = append(p.lru, key)
}

// settle accounts a successfully built entry's bytes and evicts
// least-recently-used settled entries until the pool fits its budget again.
// The just-settled key itself is exempt, so one oversized template resides
// alone instead of thrashing. Idempotent per entry.
func (p *tmplPool) settle(key tmplKey, e *tmplEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.settled || p.entries[key] != e {
		return // already accounted, or evicted while building
	}
	e.settled = true
	p.resident += e.bytes
	p.builds++
	if p.budget <= 0 {
		return
	}
	for p.resident > p.budget {
		victim, ok := p.victimLocked(key)
		if !ok {
			return
		}
		p.dropLocked(victim, p.entries[victim])
		p.evictions++
	}
}

// victimLocked returns the least-recently-used settled key other than keep.
func (p *tmplPool) victimLocked(keep tmplKey) (tmplKey, bool) {
	for _, k := range p.lru {
		if k == keep {
			continue
		}
		if e := p.entries[k]; e != nil && e.settled {
			return k, true
		}
	}
	return tmplKey{}, false
}

// drop removes key's entry if it is still e (a rebuilt successor is left
// alone), returning whether it was removed. Used for failed builds and
// quarantines; capacity eviction goes through settle.
func (p *tmplPool) drop(key tmplKey, e *tmplEntry) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.entries[key]
	if cur == nil || (e != nil && cur != e) {
		return false
	}
	p.dropLocked(key, cur)
	return true
}

func (p *tmplPool) dropLocked(key tmplKey, e *tmplEntry) {
	if e != nil && e.settled {
		p.resident -= e.bytes
	}
	delete(p.entries, key)
	for i, k := range p.lru {
		if k == key {
			p.lru = append(p.lru[:i], p.lru[i+1:]...)
			break
		}
	}
}

// lookup returns the live entry for key without touching recency.
func (p *tmplPool) lookup(key tmplKey) *tmplEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.entries[key]
}

// snapshot returns the pool's gauges: settled residents, resident bytes,
// lifetime capacity evictions and cold builds.
func (p *tmplPool) snapshot() (residents int, bytes int64, evictions, builds uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		if e.settled {
			residents++
		}
	}
	return residents, p.resident, p.evictions, p.builds
}
