package simsrv

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"hugeomp/internal/npb"
	"hugeomp/internal/omp"
	"hugeomp/internal/units"
)

// TestSchedPacking: the footprint scheduler admits sessions up to the budget,
// queues the overflow FIFO, and admits waiters as charges release.
func TestSchedPacking(t *testing.T) {
	s := newSched(100, 4)
	ctx := context.Background()
	if err := s.acquire(ctx, 60); err != nil {
		t.Fatal(err)
	}
	if err := s.acquire(ctx, 40); err != nil {
		t.Fatal(err)
	}
	// 100/100 charged: the next session must wait.
	admitted := make(chan error, 1)
	go func() { admitted <- s.acquire(ctx, 50) }()
	select {
	case err := <-admitted:
		t.Fatalf("over-budget acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if q, r, c := s.snapshot(); q != 1 || r != 2 || c != 100 {
		t.Fatalf("snapshot = queued %d, running %d, charged %d", q, r, c)
	}
	s.release(60)
	if err := <-admitted; err != nil {
		t.Fatalf("waiter not admitted after release: %v", err)
	}
	if q, r, c := s.snapshot(); q != 0 || r != 2 || c != 90 {
		t.Fatalf("after release: queued %d, running %d, charged %d", q, r, c)
	}
	if s.budgetWaits.Load() != 1 {
		t.Errorf("budget waits = %d, want 1", s.budgetWaits.Load())
	}
}

// TestSchedIdleOverride: a request larger than the whole budget is admitted
// when nothing is charged — the budget bounds packing, it must not make a
// class unservable.
func TestSchedIdleOverride(t *testing.T) {
	s := newSched(100, 4)
	if err := s.acquire(context.Background(), 1000); err != nil {
		t.Fatalf("idle oversized acquire: %v", err)
	}
	s.release(1000)
}

// TestSchedSaturationAndAbort: a full waiter queue refuses with ErrSaturated;
// a waiter whose context dies leaves with an omp.ErrAborted-wrapping error
// and no leaked charge.
func TestSchedSaturationAndAbort(t *testing.T) {
	s := newSched(100, 1)
	ctx := context.Background()
	if err := s.acquire(ctx, 100); err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(ctx)
	waiter := make(chan error, 1)
	go func() { waiter <- s.acquire(dead, 10) }()
	for {
		if q, _, _ := s.snapshot(); q == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.acquire(ctx, 10); !errors.Is(err, ErrSaturated) {
		t.Fatalf("full queue acquire = %v, want ErrSaturated", err)
	}
	if s.budgetRejects.Load() != 1 {
		t.Errorf("budget rejects = %d, want 1", s.budgetRejects.Load())
	}
	cancel()
	if err := <-waiter; !errors.Is(err, omp.ErrAborted) {
		t.Fatalf("aborted waiter = %v, want omp.ErrAborted", err)
	}
	s.release(100)
	if q, r, c := s.snapshot(); q != 0 || r != 0 || c != 0 {
		t.Fatalf("charge leaked: queued %d, running %d, charged %d", q, r, c)
	}
}

// TestTmplPoolEviction: settling templates past the byte budget evicts the
// least recently used, never the one just settled — a budget smaller than one
// template degrades to a single-resident pool.
func TestTmplPoolEviction(t *testing.T) {
	p := newTmplPool(250)
	keys := []tmplKey{{Kernel: "CG"}, {Kernel: "MG"}, {Kernel: "SP"}}
	for _, k := range keys {
		e := p.get(k)
		e.bytes = 100
		p.settle(k, e)
	}
	// 3×100 > 250: the LRU (CG) must be gone, MG and SP resident.
	if p.lookup(keys[0]) != nil {
		t.Error("LRU entry survived past the budget")
	}
	residents, bytes, evictions, builds := p.snapshot()
	if residents != 2 || bytes != 200 || evictions != 1 || builds != 3 {
		t.Fatalf("snapshot = %d residents, %d bytes, %d evictions, %d builds",
			residents, bytes, evictions, builds)
	}
	// Touch MG, settle a new entry: SP (now LRU) is the victim.
	p.get(keys[1])
	e := p.get(tmplKey{Kernel: "FT"})
	e.bytes = 100
	p.settle(tmplKey{Kernel: "FT"}, e)
	if p.lookup(keys[2]) != nil {
		t.Error("recency not honored: SP should have been evicted")
	}
	if p.lookup(keys[1]) == nil {
		t.Error("touched entry was evicted")
	}
	// An entry bigger than the whole budget still resides alone.
	tiny := newTmplPool(10)
	big := tiny.get(keys[0])
	big.bytes = 1000
	tiny.settle(keys[0], big)
	if tiny.lookup(keys[0]) == nil {
		t.Error("oversized template not resident in its own pool")
	}
}

// TestServerTemplateBudget: a server whose template budget fits one template
// serves distinct kernels correctly while cycling the pool, and reports the
// evictions in its gauges.
func TestServerTemplateBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{TemplateBudget: npb.TemplateBytes(npb.ClassT)})
	for _, kernel := range []string{"CG", "MG", "CG"} {
		req := baseReq
		req.Kernel = kernel
		if resp, body := postRun(t, ts, req); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", kernel, resp.StatusCode, body)
		}
	}
	g := s.Gauges()
	if g.TemplateResidents != 1 {
		t.Errorf("residents = %d, want 1 under a one-template budget", g.TemplateResidents)
	}
	if g.TemplateEvictions == 0 {
		t.Error("no evictions under a one-template budget across two kernels")
	}
	if g.TemplateBuilds < 2 {
		t.Errorf("builds = %d, want >= 2", g.TemplateBuilds)
	}
}

// TestServerMemBudget: sessions run under a footprint budget sized for one
// fork at a time; concurrent distinct requests all complete and the waits
// show up in the gauges.
func TestServerMemBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{MemBudget: npb.ForkBytes(npb.ClassT), SchedQueue: 8})
	reqs := []Request{
		{Kernel: "CG", Class: "T", Model: "Opteron270", Threads: 1, Policy: "4KB"},
		{Kernel: "CG", Class: "T", Model: "Opteron270", Threads: 1, Policy: "2MB"},
		{Kernel: "CG", Class: "T", Model: "Opteron270", Threads: 2, Policy: "4KB"},
		{Kernel: "CG", Class: "T", Model: "Opteron270", Threads: 2, Policy: "2MB"},
	}
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			if resp, body := postRun(t, ts, req); resp.StatusCode != http.StatusOK {
				t.Errorf("%+v: %d %s", req, resp.StatusCode, body)
			}
		}(reqs[i])
	}
	wg.Wait()
	g := s.Gauges()
	if g.SchedChargedBytes != 0 || g.SchedRunning != 0 {
		t.Errorf("charges leaked: %d bytes, %d running", g.SchedChargedBytes, g.SchedRunning)
	}
	if g.SchedPeakBytes > npb.ForkBytes(npb.ClassT) {
		t.Errorf("peak %d exceeded the one-fork budget %d",
			g.SchedPeakBytes, npb.ForkBytes(npb.ClassT))
	}
}

// TestStatsGauges: GET /stats exposes the scheduler, template-pool and
// disk-cache gauges with the configured budgets.
func TestStatsGauges(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		CacheDir:       dir,
		MemBudget:      512 * units.MB,
		TemplateBudget: 2 * units.GB,
	})
	if resp, body := postRun(t, ts, baseReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Counters Counters `json:"counters"`
		Gauges   Gauges   `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	g := stats.Gauges
	if g.SchedBudgetBytes != 512*units.MB || g.TemplateBudgetBytes != 2*units.GB {
		t.Errorf("budgets not reported: sched %d, template %d", g.SchedBudgetBytes, g.TemplateBudgetBytes)
	}
	if g.TemplateResidents != 1 || g.TemplateBytes != npb.TemplateBytes(npb.ClassT) {
		t.Errorf("template gauges: %d residents, %d bytes", g.TemplateResidents, g.TemplateBytes)
	}
	if g.SchedPeakBytes != npb.ForkBytes(npb.ClassT) {
		t.Errorf("peak charged = %d, want one fork (%d)", g.SchedPeakBytes, npb.ForkBytes(npb.ClassT))
	}
	if !g.DiskEnabled || g.DiskMisses != 1 || g.DiskWrites != 1 {
		t.Errorf("disk gauges after one cold run: %+v", g)
	}
	if in := s.Gauges(); in != g {
		t.Errorf("in-process gauges differ from /stats: %+v vs %+v", in, g)
	}
}

// TestServerWarmRestartFromDisk: a second server on the same cache directory
// — a restart, or another process — answers a previously computed request as
// a cache hit without running a simulation.
func TestServerWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{CacheDir: dir})
	_, body1 := postRun(t, ts1, baseReq)
	r1 := decodeResponse(t, body1)
	if r1.Cached {
		t.Fatal("first-ever run reported cached")
	}

	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	resp, body2 := postRun(t, ts2, baseReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart run: %d %s", resp.StatusCode, body2)
	}
	r2 := decodeResponse(t, body2)
	if !r2.Cached {
		t.Error("warm-restart run not served as a cache hit")
	}
	if r2.Key != r1.Key || !reflect.DeepEqual(r2.Result, r1.Result) {
		t.Errorf("disk round trip changed the result:\nfirst:   %+v\nrestart: %+v", r1, r2)
	}
	ctr := s2.Counters()
	if ctr.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", ctr.CacheHits)
	}
	g := s2.Gauges()
	if g.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1 (%+v)", g.DiskHits, g)
	}
	if g.TemplateBuilds != 0 {
		t.Errorf("warm restart built %d templates for a cached answer", g.TemplateBuilds)
	}
}
