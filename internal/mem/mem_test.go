package mem

import (
	"testing"

	"hugeomp/internal/units"
)

func TestAllocBothClasses(t *testing.T) {
	p := New(16 * units.MB)
	small, err := p.Alloc4K()
	if err != nil {
		t.Fatal(err)
	}
	large, err := p.Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	if large%uint64(FramesPer2M) != 0 {
		t.Errorf("2MB frame PFN %d not naturally aligned", large)
	}
	if small == large {
		t.Error("overlapping frames")
	}
	if p.Used4K() != 1 || p.Used2M() != 1 {
		t.Errorf("usage = %d,%d want 1,1", p.Used4K(), p.Used2M())
	}
	if got := p.UsedBytes(); got != units.PageSize4K+units.PageSize2M {
		t.Errorf("UsedBytes = %d", got)
	}
}

func TestLargeFramesDisjointFromSmall(t *testing.T) {
	p := New(8 * units.MB)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		pfn, err := p.Alloc4K()
		if err != nil {
			t.Fatal(err)
		}
		if seen[pfn] {
			t.Fatalf("duplicate 4K PFN %d", pfn)
		}
		seen[pfn] = true
	}
	for i := 0; i < 3; i++ {
		pfn, err := p.Alloc2M()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < FramesPer2M; j++ {
			if seen[pfn+uint64(j)] {
				t.Fatalf("2M frame overlaps 4K PFN %d", pfn+uint64(j))
			}
		}
	}
}

func TestExhaustion(t *testing.T) {
	p := New(4 * units.MB) // two 2MB frames
	if _, err := p.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc2M(); err != ErrOutOfMemory {
		t.Errorf("expected ErrOutOfMemory, got %v", err)
	}
	// Small allocations must also fail now.
	if _, err := p.Alloc4K(); err != ErrOutOfMemory {
		t.Errorf("expected ErrOutOfMemory for 4K, got %v", err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	p := New(4 * units.MB)
	a, _ := p.Alloc2M()
	b, _ := p.Alloc2M()
	p.Free2M(a)
	c, err := p.Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("expected freed frame %d to be reused, got %d", a, c)
	}
	if b == c {
		t.Error("live frame reallocated")
	}
	if p.Used2M() != 2 {
		t.Errorf("Used2M = %d, want 2", p.Used2M())
	}
}

func TestSmallAndLargeMeetInTheMiddle(t *testing.T) {
	p := New(2 * units.MB) // exactly one 2MB frame worth
	// Take one 4K page; the single large frame region is now unavailable.
	if _, err := p.Alloc4K(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc2M(); err != ErrOutOfMemory {
		t.Errorf("expected large alloc to fail after small overlap, got %v", err)
	}
}

func TestConcurrentAlloc(t *testing.T) {
	p := New(64 * units.MB)
	done := make(chan map[uint64]bool, 8)
	for g := 0; g < 8; g++ {
		go func() {
			local := map[uint64]bool{}
			for i := 0; i < 200; i++ {
				pfn, err := p.Alloc4K()
				if err != nil {
					break
				}
				local[pfn] = true
			}
			done <- local
		}()
	}
	all := map[uint64]bool{}
	for g := 0; g < 8; g++ {
		for pfn := range <-done {
			if all[pfn] {
				t.Fatalf("PFN %d handed out twice", pfn)
			}
			all[pfn] = true
		}
	}
	if len(all) != 1600 {
		t.Errorf("allocated %d frames, want 1600", len(all))
	}
}
