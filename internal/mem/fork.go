package mem

// Fork returns an independent copy of the allocator state. The clone sees
// exactly the frames the parent had allocated and free at the instant of the
// fork; subsequent Alloc/Free calls on either side do not affect the other.
// Because allocation is a deterministic bump-plus-freelist discipline, a fork
// that replays the same allocation sequence as a cold-built PhysMem receives
// identical frame numbers — the property the snapshot/fork layer builds on.
func (p *PhysMem) Fork() *PhysMem {
	p.mu.Lock()
	defer p.mu.Unlock()
	np := &PhysMem{
		totalBytes: p.totalBytes,
		next4K:     p.next4K,
		next2M:     p.next2M,
		used4K:     p.used4K,
		used2M:     p.used2M,
	}
	if p.free4K != nil {
		np.free4K = append([]uint64(nil), p.free4K...)
	}
	if p.free2M != nil {
		np.free2M = append([]uint64(nil), p.free2M...)
	}
	return np
}
