// Package mem models the physical memory of the simulated node: a pool of
// page frames in two size classes (4 KB and 2 MB). The page-table and
// hugetlbfs layers allocate frames from here; the allocator tracks usage so
// footprint accounting (paper Table 2) is exact.
//
// Physical frame numbers (PFNs) are always expressed in 4 KB units, so a
// 2 MB frame occupies 512 consecutive 4 KB PFNs, exactly as on x86-64 where a
// large page must be 2 MB-aligned in physical memory.
package mem

import (
	"errors"
	"fmt"
	"sync"

	"hugeomp/internal/units"
)

// FramesPer2M is the number of 4 KB frames covered by one 2 MB frame.
const FramesPer2M = int(units.PageSize2M / units.PageSize4K)

// ErrOutOfMemory is returned when the physical pool is exhausted.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// PhysMem is a physical memory of a fixed size from which 4 KB and 2 MB
// frames are carved. 2 MB frames are naturally aligned. It is safe for
// concurrent use.
type PhysMem struct {
	mu sync.Mutex

	totalBytes int64
	next4K     uint64 // bump pointer for small frames (in 4 KB PFN units)
	next2M     uint64 // bump pointer for large frames, grows downward
	free4K     []uint64
	free2M     []uint64

	used4K int // live small frames
	used2M int // live large frames
}

// New creates a physical memory of size bytes (rounded down to a 2 MB
// multiple). Small frames grow from the bottom, large frames from the top, so
// neither fragments the other — mirroring a reserved hugetlbfs pool.
func New(bytes int64) *PhysMem {
	bytes = bytes &^ (units.PageSize2M - 1)
	if bytes < units.PageSize2M {
		bytes = units.PageSize2M
	}
	return &PhysMem{
		totalBytes: bytes,
		next4K:     0,
		next2M:     uint64(bytes / units.PageSize4K),
	}
}

// TotalBytes returns the configured physical size.
func (p *PhysMem) TotalBytes() int64 { return p.totalBytes }

// Alloc4K allocates one 4 KB frame and returns its PFN.
func (p *PhysMem) Alloc4K() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free4K); n > 0 {
		pfn := p.free4K[n-1]
		p.free4K = p.free4K[:n-1]
		p.used4K++
		return pfn, nil
	}
	if p.next4K+1 > p.next2M {
		return 0, ErrOutOfMemory
	}
	pfn := p.next4K
	p.next4K++
	p.used4K++
	return pfn, nil
}

// Alloc2M allocates one naturally aligned 2 MB frame and returns the PFN of
// its first 4 KB sub-frame.
func (p *PhysMem) Alloc2M() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free2M); n > 0 {
		pfn := p.free2M[n-1]
		p.free2M = p.free2M[:n-1]
		p.used2M++
		return pfn, nil
	}
	if p.next2M < uint64(FramesPer2M) || p.next2M-uint64(FramesPer2M) < p.next4K {
		return 0, ErrOutOfMemory
	}
	p.next2M -= uint64(FramesPer2M)
	p.used2M++
	return p.next2M, nil
}

// Free4K returns a 4 KB frame to the pool.
func (p *PhysMem) Free4K(pfn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free4K = append(p.free4K, pfn)
	p.used4K--
}

// Free2M returns a 2 MB frame to the pool.
func (p *PhysMem) Free2M(pfn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free2M = append(p.free2M, pfn)
	p.used2M--
}

// Used4K reports the number of live 4 KB frames.
func (p *PhysMem) Used4K() int { p.mu.Lock(); defer p.mu.Unlock(); return p.used4K }

// Used2M reports the number of live 2 MB frames.
func (p *PhysMem) Used2M() int { p.mu.Lock(); defer p.mu.Unlock(); return p.used2M }

// UsedBytes reports the bytes of live frames in both classes.
func (p *PhysMem) UsedBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.used4K)*units.PageSize4K + int64(p.used2M)*units.PageSize2M
}

// String summarises pool usage.
func (p *PhysMem) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	used := int64(p.used4K)*units.PageSize4K + int64(p.used2M)*units.PageSize2M
	return fmt.Sprintf("physmem %s used %s (%d small, %d large frames)",
		units.HumanBytes(p.totalBytes), units.HumanBytes(used), p.used4K, p.used2M)
}
