package par

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Submission errors of Pool. ErrSaturated is the backpressure signal an
// admission controller turns into a 429: the queue is full and the caller
// should retry later rather than block. ErrClosed means the pool is draining
// or drained and will never accept the task.
var (
	ErrSaturated = errors.New("par: pool saturated")
	ErrClosed    = errors.New("par: pool closed")
)

// Pool is a long-lived bounded worker pool with a bounded submission queue —
// the admission substrate of the simulator service. Unlike Map, which exists
// for the duration of one batch, a Pool serves an open-ended request stream:
// Submit either enqueues a task or refuses immediately (ErrSaturated /
// ErrClosed), so callers can apply backpressure instead of queueing without
// limit.
//
// Workers are panic-backstopped: a task panic is counted, the worker replaces
// itself, and the pool keeps serving. Tasks that need their panics observed
// (the service's session boundary) install their own recover; the backstop
// only guarantees a misbehaving task cannot burn a worker slot forever.
type Pool struct {
	mu      sync.RWMutex // guards closed vs. the tasks channel send
	tasks   chan func()
	closed  bool
	wg      sync.WaitGroup
	workers int
	panics  atomic.Uint64
	queued  atomic.Int64 // tasks submitted and not yet started
}

// NewPool starts a pool with the given worker count and queue capacity.
// workers <= 0 defaults to GOMAXPROCS (the internal/par sizing rule: one
// simulation saturates one host core); queue <= 0 defaults to 2x workers.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{tasks: make(chan func(), queue), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

// work is a worker goroutine: it drains the task queue until Close. The
// backstop defer runs before this worker's wg.Done (LIFO), so a replacement
// is registered before the crashed worker retires and Close's Wait can never
// observe a transient zero.
//
//simlint:panicboundary
func (p *Pool) work() {
	defer p.wg.Done()
	defer p.backstop()
	for task := range p.tasks {
		p.queued.Add(-1)
		task()
	}
}

// backstop recovers a panic that escaped a task, counts it, and replaces the
// lost worker so pool capacity survives any request.
func (p *Pool) backstop() {
	if r := recover(); r != nil {
		p.panics.Add(1)
		p.wg.Add(1)
		go p.work()
	}
}

// Submit enqueues task for execution, never blocking: ErrSaturated when the
// queue is full (retry-later backpressure), ErrClosed once Close has begun.
func (p *Pool) Submit(task func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.tasks <- task:
		p.queued.Add(1)
		return nil
	default:
		return ErrSaturated
	}
}

// Close stops admission and waits for every queued and running task to
// finish. Safe to call once; Submit after Close returns ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueCap returns the submission queue capacity.
func (p *Pool) QueueCap() int { return cap(p.tasks) }

// Queued returns the number of submitted tasks not yet started.
func (p *Pool) Queued() int { return int(p.queued.Load()) }

// Panics returns the number of task panics absorbed by the worker backstop.
func (p *Pool) Panics() uint64 { return p.panics.Load() }
