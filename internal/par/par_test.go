package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	out, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapReturnsLowestError(t *testing.T) {
	// Both 30 and 70 fail; the reported error must be index 30's,
	// regardless of completion order.
	_, err := Map(100, func(i int) (int, error) {
		if i == 30 || i == 70 {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "cell 30 failed" {
		t.Errorf("err = %v, want cell 30's", err)
	}
}

func TestMapRunsEveryCellOnce(t *testing.T) {
	var calls [257]atomic.Int32
	_, err := Map(len(calls), func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if got := calls[i].Load(); got != 1 {
			t.Errorf("cell %d ran %d times", i, got)
		}
	}
}

func TestMapEmptyAndError(t *testing.T) {
	out, err := Map(0, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Errorf("empty map: out=%v err=%v", out, err)
	}
}
