// Package par provides the bounded worker pool used by the experiment
// harness. Every Fig. 4/Fig. 5 cell and every sweep point builds its own
// core.System — the cells share no state — so they can run concurrently;
// the pool bounds concurrency at GOMAXPROCS and returns results in input
// order, keeping the harness output deterministic regardless of which
// worker finished first.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(0..n-1) on a bounded worker pool and returns the results in
// index order. Concurrency is min(n, GOMAXPROCS). If any call fails, Map
// returns the error of the lowest failing index (deterministic even when
// several cells fail); all cells still run to completion.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n <= 0 {
		return out, nil
	}
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//simlint:ignore panicboundary batch harness cells crash loudly by design; only the service Pool quarantines panics
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
