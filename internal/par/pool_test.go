package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		for {
			err := p.Submit(func() { ran.Add(1); wg.Done() })
			if err == nil {
				break
			}
			if !errors.Is(err, ErrSaturated) {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond) // backpressure: retry later
		}
	}
	wg.Wait()
	if ran.Load() != 50 {
		t.Errorf("ran %d tasks, want 50", ran.Load())
	}
	p.Close()
}

func TestPoolSaturationRefusesWithoutBlocking(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := p.Submit(func() { defer wg.Done(); <-block }); err != nil {
		t.Fatal(err)
	}
	// Fill the queue, then the next submit must refuse immediately.
	deadline := time.After(2 * time.Second)
	saturated := false
	for !saturated {
		select {
		case <-deadline:
			t.Fatal("pool never saturated")
		default:
		}
		err := p.Submit(func() {})
		if errors.Is(err, ErrSaturated) {
			saturated = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	wg.Wait()
	p.Close()
}

func TestPoolCloseDrainsAndRefuses(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		for p.Submit(func() { ran.Add(1) }) != nil {
			time.Sleep(time.Millisecond)
		}
	}
	p.Close() // must wait for all queued tasks
	if ran.Load() != 8 {
		t.Errorf("Close returned with %d/8 tasks run", ran.Load())
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

// TestPoolPanicBackstop: a panicking task is absorbed, counted, and the pool
// keeps its full capacity — later tasks still run.
func TestPoolPanicBackstop(t *testing.T) {
	p := NewPool(2, 8)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := p.Submit(func() { defer wg.Done(); panic("poisoned session") }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		for p.Submit(func() { ran.Add(1); wg.Done() }) != nil {
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	if ran.Load() != 8 {
		t.Errorf("after panics, ran %d/8 tasks", ran.Load())
	}
	if got := p.Panics(); got != 3 {
		t.Errorf("panics = %d, want 3", got)
	}
	p.Close()
}
