package scash

import "hugeomp/internal/units"

// Fork returns an independent copy of the allocator: same bump pointer,
// free list, and block-size index, so the clone hands out exactly the
// addresses the parent would. Forked and cold allocators that see the same
// Alloc/Free sequence produce identical layouts — the determinism the
// snapshot layer relies on.
func (a *Allocator) Fork() *Allocator {
	a.mu.Lock()
	defer a.mu.Unlock()
	na := &Allocator{
		base:  a.base,
		limit: a.limit,
		brk:   a.brk,
		used:  a.used,
		high:  a.high,
		sizes: make(map[units.Addr]int64, len(a.sizes)),
	}
	if a.free != nil {
		na.free = append([]span(nil), a.free...)
	}
	for addr, sz := range a.sizes {
		na.sizes[addr] = sz
	}
	return na
}

// Fork returns an independent copy of the shared space: symbol table,
// registration order, allocator state, and seal bit. The region descriptor
// is plain data (base, length, page size) and is copied by value; the
// physical frames behind it belong to the forked PhysMem/page table that the
// caller forks alongside this space.
func (s *Space) Fork() *Space {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := &Space{
		alloc:   s.alloc.Fork(),
		symbols: make(map[string]Symbol, len(s.symbols)),
		sealed:  s.sealed,
	}
	if s.region != nil {
		r := *s.region
		ns.region = &r
	}
	for name, sym := range s.symbols {
		ns.symbols[name] = sym
	}
	if s.order != nil {
		ns.order = append([]string(nil), s.order...)
	}
	return ns
}
