package scash

import (
	"testing"

	"hugeomp/internal/machine"
	"hugeomp/internal/units"
)

// TestClusterModeContextDrivesERC wires a simulated hardware context to a
// DSM process's protected page table: the context's accesses trap into the
// ERC protocol through the machine-layer fault hook, exactly the cluster
// configuration of the original Omni/SCASH (which the paper's intra-node
// mode bypasses).
func TestClusterModeContextDrivesERC(t *testing.T) {
	const base = units.Addr(0x40000000)
	d, err := NewDSM(2, units.Size4K, base, 4)
	if err != nil {
		t.Fatal(err)
	}
	proc := d.Proc(0)

	m := machine.New(machine.Opteron270())
	m.AttachProcess(proc.PT)
	ctxs, err := m.Configure(1)
	if err != nil {
		t.Fatal(err)
	}
	c := ctxs[0]
	c.OnFault = proc.FaultHandler()

	// Cold read: traps (page Invalid), fetches from the home, retries.
	c.Load(base)
	if d.Stats.Fetches != 1 {
		t.Errorf("fetches = %d, want 1", d.Stats.Fetches)
	}
	// Second read on the same page: no further protocol action.
	c.Load(base + 64)
	if d.Stats.Fetches != 1 {
		t.Errorf("warm read refetched: %d", d.Stats.Fetches)
	}
	// Write: traps again (page ReadOnly), creates a twin.
	c.Store(base + 128)
	if d.Stats.WriteFaults != 1 {
		t.Errorf("write faults = %d, want 1", d.Stats.WriteFaults)
	}
	// After a release the page is downgraded: next write re-twins.
	proc.Release()
	c.InvalidatePage(base, units.Size4K) // TLB shootdown accompanies the downgrade
	c.Store(base + 256)
	if d.Stats.WriteFaults != 2 {
		t.Errorf("write faults after release = %d, want 2", d.Stats.WriteFaults)
	}
}
