package scash

import (
	"testing"
	"testing/quick"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/units"
)

func newDSM(t *testing.T, nproc, npages int) *DSM {
	t.Helper()
	d, err := NewDSM(nproc, units.Size4K, 0x40000000, npages)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestERCReadSeesHomeData(t *testing.T) {
	d := newDSM(t, 2, 4)
	w := d.Proc(0)
	if err := w.WriteAt(0x40000000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	d.Barrier()
	r := d.Proc(1)
	got, err := r.ReadAt(0x40000000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("reader sees %v", got)
	}
}

func TestERCNoVisibilityBeforeBarrier(t *testing.T) {
	d := newDSM(t, 2, 2)
	r := d.Proc(1)
	// Reader caches the page first.
	if _, err := r.ReadAt(0x40000000, 1); err != nil {
		t.Fatal(err)
	}
	// Writer updates but does not release.
	if err := d.Proc(0).WriteAt(0x40000000, []byte{42}); err != nil {
		t.Fatal(err)
	}
	got, _ := r.ReadAt(0x40000000, 1)
	if got[0] == 42 {
		t.Error("write visible before release — not release consistency")
	}
	d.Barrier()
	got, _ = r.ReadAt(0x40000000, 1)
	if got[0] != 42 {
		t.Errorf("write invisible after barrier: %v", got)
	}
}

func TestERCFalseSharingMerge(t *testing.T) {
	// Two processes write disjoint halves of the same page between
	// barriers; diffs must merge at the home without clobbering.
	d := newDSM(t, 2, 1)
	half := int(units.PageSize4K / 2)
	a := make([]byte, half)
	b := make([]byte, half)
	for i := range a {
		a[i] = 0xAA
		b[i] = 0xBB
	}
	if err := d.Proc(0).WriteAt(0x40000000, a); err != nil {
		t.Fatal(err)
	}
	if err := d.Proc(1).WriteAt(0x40000000+units.Addr(half), b); err != nil {
		t.Fatal(err)
	}
	d.Barrier()
	got, err := d.Proc(0).ReadAt(0x40000000, int(units.PageSize4K))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < half; i++ {
		if got[i] != 0xAA {
			t.Fatalf("byte %d = %#x, want AA (proc0's half lost)", i, got[i])
		}
		if got[half+i] != 0xBB {
			t.Fatalf("byte %d = %#x, want BB (proc1's half lost)", half+i, got[half+i])
		}
	}
}

func TestERCTwinPerWriteInterval(t *testing.T) {
	d := newDSM(t, 2, 1)
	p := d.Proc(0)
	_ = p.WriteAt(0x40000000, []byte{1})
	_ = p.WriteAt(0x40000001, []byte{2}) // same interval: one twin
	if d.Stats.WriteFaults != 1 {
		t.Errorf("write faults = %d, want 1", d.Stats.WriteFaults)
	}
	d.Barrier()
	_ = p.WriteAt(0x40000000, []byte{3}) // new interval: new twin
	if d.Stats.WriteFaults != 2 {
		t.Errorf("write faults = %d, want 2", d.Stats.WriteFaults)
	}
}

func TestERCDiffOnlySendsChangedBytes(t *testing.T) {
	d := newDSM(t, 2, 1)
	p := d.Proc(0)
	_ = p.WriteAt(0x40000100, []byte{9, 9})
	p.Release()
	if d.Stats.DiffBytes != 2 {
		t.Errorf("diff bytes = %d, want 2", d.Stats.DiffBytes)
	}
	if d.HomeVersion(0) != 1 {
		t.Errorf("home version = %d", d.HomeVersion(0))
	}
}

func TestERCHomeDistribution(t *testing.T) {
	d := newDSM(t, 3, 7)
	for pg := 0; pg < 7; pg++ {
		if d.HomeOf(pg) != pg%3 {
			t.Errorf("home of %d = %d", pg, d.HomeOf(pg))
		}
	}
}

func TestERCOutOfRegionAccess(t *testing.T) {
	d := newDSM(t, 1, 2)
	if _, err := d.Proc(0).ReadAt(0x3fffffff, 1); err == nil {
		t.Error("below-region read accepted")
	}
	if _, err := d.Proc(0).ReadAt(0x40000000+units.Addr(2*units.PageSize4K), 1); err == nil {
		t.Error("beyond-region read accepted")
	}
	if err := d.Proc(0).WriteAt(0x40000000+units.Addr(units.PageSize4K-1), []byte{1, 2}); err == nil {
		t.Error("page-crossing write accepted")
	}
}

// Property: for any interleaving of single-writer updates with barriers, a
// reader after the final barrier sees exactly the last written value at
// every touched offset (sequential consistency at barrier granularity with
// one writer).
func TestERCSingleWriterPropertry(t *testing.T) {
	type wr struct {
		Off uint8
		Val byte
	}
	f := func(writes []wr) bool {
		d, err := NewDSM(2, units.Size4K, 0x40000000, 1)
		if err != nil {
			return false
		}
		want := map[uint8]byte{}
		for _, w := range writes {
			if err := d.Proc(0).WriteAt(0x40000000+units.Addr(w.Off), []byte{w.Val}); err != nil {
				return false
			}
			want[w.Off] = w.Val
		}
		d.Barrier()
		for off, val := range want {
			got, err := d.Proc(1).ReadAt(0x40000000+units.Addr(off), 1)
			if err != nil || got[0] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestERC2MPages(t *testing.T) {
	d, err := NewDSM(2, units.Size2M, 0x40000000, 2)
	if err != nil {
		t.Fatal(err)
	}
	va := units.Addr(0x40000000 + units.PageSize2M + 12345)
	if err := d.Proc(0).WriteAt(va, []byte{7}); err != nil {
		t.Fatal(err)
	}
	d.Barrier()
	got, err := d.Proc(1).ReadAt(va, 1)
	if err != nil || got[0] != 7 {
		t.Errorf("2M DSM read = %v, %v", got, err)
	}
	// One page fetch of 2MB fragments into 2048 messages plus a request.
	if d.Stats.Msgs == 0 {
		t.Error("no protocol messages counted")
	}
}

// TestInjectedFetchLossOnlyAddsTraffic: with SiteSCASHFetch armed, reads
// still observe the home's data exactly; lost replies surface as Refetches
// and extra messages, reproducibly per seed.
func TestInjectedFetchLossOnlyAddsTraffic(t *testing.T) {
	run := func(arm bool) ([]byte, DSMStats) {
		d := newDSM(t, 2, 8)
		if arm {
			d.SetFaultPlan(faultinject.New(0xca5c).Enable(faultinject.SiteSCASHFetch, 0.5))
		}
		w := d.Proc(0)
		for pg := 0; pg < 8; pg++ {
			va := units.Addr(0x40000000 + int64(pg)*units.PageSize4K)
			if err := w.WriteAt(va, []byte{byte(pg), byte(pg + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Barrier(); err != nil {
			t.Fatal(err)
		}
		r := d.Proc(1)
		var out []byte
		for pg := 0; pg < 8; pg++ {
			va := units.Addr(0x40000000 + int64(pg)*units.PageSize4K)
			b, err := r.ReadAt(va, 2)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b...)
		}
		return out, d.Stats
	}
	clean, statsClean := run(false)
	if statsClean.Refetches != 0 {
		t.Fatalf("unarmed run counted %d refetches", statsClean.Refetches)
	}
	faulty, statsFaulty := run(true)
	if statsFaulty.Refetches == 0 {
		t.Fatal("armed run at rate 0.5 drew no refetches")
	}
	if statsFaulty.Msgs <= statsClean.Msgs {
		t.Fatalf("refetches added no traffic: %d <= %d msgs", statsFaulty.Msgs, statsClean.Msgs)
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("data diverged at byte %d under fetch loss", i)
		}
	}
	_, again := run(true)
	if again.Refetches != statsFaulty.Refetches || again.Msgs != statsFaulty.Msgs {
		t.Fatalf("same seed not reproducible: %+v vs %+v", statsFaulty, again)
	}
}
