package scash

import (
	"errors"
	"testing"
	"testing/quick"

	"hugeomp/internal/hugetlbfs"
	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

func newSpace4K(t *testing.T, size int64) *Space {
	t.Helper()
	phys := mem.New(256 * units.MB)
	pt := pagetable.New()
	s, err := NewSpace(Config{
		Phys: phys, PT: pt, Base: units.Addr(16 * units.MB),
		Size: size, PageSize: units.Size4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpace4KBacking(t *testing.T) {
	s := newSpace4K(t, 4*units.MB)
	if s.PageSize() != units.Size4K {
		t.Errorf("PageSize = %v", s.PageSize())
	}
}

func TestSpace2MBackingUsesHugetlbfs(t *testing.T) {
	phys := mem.New(64 * units.MB)
	pt := pagetable.New()
	fs, err := hugetlbfs.Mount(phys, 8, hugetlbfs.Preallocate)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpace(Config{
		Phys: phys, PT: pt, Base: units.Addr(16 * units.MB),
		Size: 5 * units.MB, PageSize: units.Size2M, Hugetlb: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 5MB rounds to 3 large pages.
	if s.Region().Len != 6*units.MB {
		t.Errorf("region len = %d", s.Region().Len)
	}
	if fs.UsedPages() != 3 {
		t.Errorf("hugetlbfs used = %d, want 3", fs.UsedPages())
	}
	wr, err := pt.Translate(s.Region().Base)
	if err != nil || wr.Entry.Size != units.Size2M {
		t.Errorf("backing not 2MB: %v %v", wr, err)
	}
}

func TestSpace2MWithoutMountFails(t *testing.T) {
	phys := mem.New(64 * units.MB)
	if _, err := NewSpace(Config{
		Phys: phys, PT: pagetable.New(), Base: 0,
		Size: units.MB, PageSize: units.Size2M,
	}); err == nil {
		t.Error("2MB space without hugetlbfs mount should fail")
	}
}

func TestGlobalsTransformation(t *testing.T) {
	s := newSpace4K(t, 4*units.MB)
	a, err := s.RegisterGlobal("a", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RegisterGlobal("b", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base == b.Base {
		t.Error("globals alias")
	}
	if uint64(a.Base)%4096 != 0 || uint64(b.Base)%4096 != 0 {
		t.Error("globals not page aligned")
	}
	if _, err := s.RegisterGlobal("a", 10); !errors.Is(err, ErrDupSymbol) {
		t.Errorf("duplicate: %v", err)
	}
	got, err := s.Lookup("b")
	if err != nil || got != b {
		t.Errorf("Lookup(b) = %+v, %v", got, err)
	}
	if _, err := s.Lookup("zzz"); !errors.Is(err, ErrUnknownName) {
		t.Errorf("unknown lookup: %v", err)
	}
	gl := s.Globals()
	if len(gl) != 2 || gl[0].Name != "a" || gl[1].Name != "b" {
		t.Errorf("Globals() = %+v", gl)
	}
}

func TestSealStopsGlobals(t *testing.T) {
	s := newSpace4K(t, units.MB)
	s.Seal()
	if _, err := s.RegisterGlobal("late", 8); !errors.Is(err, ErrSealed) {
		t.Errorf("want ErrSealed, got %v", err)
	}
	// Dynamic allocation still works after seal.
	if _, err := s.Malloc(64); err != nil {
		t.Errorf("Malloc after seal: %v", err)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	s := newSpace4K(t, units.MB)
	if _, err := s.Malloc(2 * units.MB); !errors.Is(err, ErrNoSpace) {
		t.Errorf("want ErrNoSpace, got %v", err)
	}
}

func TestAllocatorFreeReuseCoalesce(t *testing.T) {
	a := NewAllocator(0, 64*units.KB)
	p1, _ := a.Alloc(4096)
	p2, _ := a.Alloc(4096)
	p3, _ := a.Alloc(4096)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	// p1+p2 coalesced: an 8KB block fits where two 4KB holes were.
	big, err := a.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if big != p1 {
		t.Errorf("coalesced alloc at %#x, want %#x", big, p1)
	}
	_ = p3
	if err := a.Free(0xdead000); !errors.Is(err, ErrBadFree) {
		t.Errorf("bad free: %v", err)
	}
	if err := a.Free(p3); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p3); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: %v", err)
	}
}

// Property: live allocations never overlap and stay inside the arena.
func TestAllocatorNoOverlapProperty(t *testing.T) {
	type op struct {
		Alloc bool
		Size  uint16
	}
	f := func(ops []op) bool {
		a := NewAllocator(0x1000000, 8*units.MB)
		type block struct {
			base units.Addr
			size int64
		}
		var live []block
		for _, o := range ops {
			if o.Alloc || len(live) == 0 {
				sz := int64(o.Size)%65536 + 1
				base, err := a.Alloc(sz)
				if err != nil {
					continue
				}
				aligned := units.AlignUp(sz, 4096)
				for _, b := range live {
					if base < b.base+units.Addr(b.size) && b.base < base+units.Addr(aligned) {
						return false // overlap
					}
				}
				if base < 0x1000000 || base+units.Addr(aligned) > 0x1000000+units.Addr(8*units.MB) {
					return false // escaped arena
				}
				live = append(live, block{base, aligned})
			} else {
				i := int(o.Size) % len(live)
				if err := a.Free(live[i].base); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUsedBytesAccounting(t *testing.T) {
	s := newSpace4K(t, units.MB)
	if s.UsedBytes() != 0 {
		t.Error("fresh space reports usage")
	}
	addr, _ := s.Malloc(100) // rounds to 4096
	if s.UsedBytes() != 4096 {
		t.Errorf("UsedBytes = %d", s.UsedBytes())
	}
	_ = s.Free(addr)
	if s.UsedBytes() != 0 {
		t.Errorf("UsedBytes after free = %d", s.UsedBytes())
	}
}
