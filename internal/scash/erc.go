package scash

import (
	"errors"
	"fmt"
	"sync"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/shmem"
	"hugeomp/internal/units"
)

// This file implements the SCASH software-DSM coherence protocol: a
// home-based eager release consistency (ERC) protocol driven by page
// protections, as sketched in the paper's §3.3. Every shared page has a home
// process holding the master copy. A process reads through a locally cached
// copy (fetched from the home on a read fault), writes through a twin (a
// pristine snapshot taken on the first write fault), and at a release point
// diffs its pages against their twins and sends the diffs to the homes; an
// acquire invalidates cached copies so subsequent reads refetch.
//
// The paper runs Omni/SCASH in intra-node mode where this protocol is
// DISABLED ("the native hardware virtual memory run-time system is used to
// manage page coherency"); the implementation is here because it is part of
// the substrate the paper modifies, and its page-protection machinery is
// what the machine layer's fault hooks exist for.

// DSMStats counts protocol traffic. Message counts follow the shmem channel
// geometry: payloads are fragmented into MaxMsgSize chunks.
type DSMStats struct {
	Fetches     uint64 // page fetches from a home
	Refetches   uint64 // fetch replies lost (injected) and repeated
	WriteFaults uint64 // twin creations
	Diffs       uint64 // diff flushes to a home
	DiffBytes   uint64 // bytes of diffed data moved
	Msgs        uint64 // total shared-memory messages
}

// DSM is a software distributed shared memory over nproc simulated
// processes.
type DSM struct {
	nproc    int
	pageSize units.PageSize
	base     units.Addr
	npages   int

	mu    sync.Mutex
	homes []homePage
	Stats DSMStats

	procs []*Proc
	fault *faultinject.Plan // nil = no injection
}

type homePage struct {
	data    []byte
	version uint64
}

// Proc is one DSM endpoint with its own page table (and therefore its own
// protection state — the trap mechanism).
type Proc struct {
	dsm *DSM
	id  int
	PT  *pagetable.Table

	local map[uint64][]byte // cached page copies
	twins map[uint64][]byte // pre-write snapshots
	// fetchSeq numbers this proc's fetches of each page; touched only by the
	// proc's own goroutine, it keys loss decisions to the specific fetch so
	// injection stays schedule-independent across procs.
	fetchSeq map[uint64]uint64
}

// NewDSM builds a DSM of npages pages of the given size starting at base.
// Pages are homed round-robin across processes, SCASH's default
// distribution.
func NewDSM(nproc int, pageSize units.PageSize, base units.Addr, npages int) (*DSM, error) {
	if uint64(base)%uint64(pageSize.Bytes()) != 0 {
		return nil, fmt.Errorf("scash: DSM base %#x not %s aligned", base, pageSize)
	}
	d := &DSM{
		nproc:    nproc,
		pageSize: pageSize,
		base:     base,
		npages:   npages,
		homes:    make([]homePage, npages),
	}
	for i := range d.homes {
		d.homes[i].data = make([]byte, pageSize.Bytes())
	}
	for p := 0; p < nproc; p++ {
		proc := &Proc{
			dsm:      d,
			id:       p,
			PT:       pagetable.New(),
			local:    make(map[uint64][]byte),
			twins:    make(map[uint64][]byte),
			fetchSeq: make(map[uint64]uint64),
		}
		// Map every page with no access so the first touch traps.
		for i := 0; i < npages; i++ {
			va := base + units.Addr(int64(i)*pageSize.Bytes())
			pfn := uint64(i)
			if pageSize == units.Size2M {
				pfn *= 512 // natural alignment in 4 KB PFN units
			}
			if err := proc.PT.Map(va, pageSize, pfn, pagetable.ProtNone); err != nil {
				return nil, err
			}
		}
		d.procs = append(d.procs, proc)
	}
	return d, nil
}

// Proc returns endpoint i.
func (d *DSM) Proc(i int) *Proc { return d.procs[i] }

// SetFaultPlan arms (or, with nil, disarms) fetch-loss injection. Call
// before the processes start accessing.
func (d *DSM) SetFaultPlan(p *faultinject.Plan) { d.fault = p }

// HomeOf returns the home process of the page index.
func (d *DSM) HomeOf(page int) int { return page % d.nproc }

func (d *DSM) pageIndex(va units.Addr) (int, error) {
	if va < d.base {
		return 0, fmt.Errorf("scash: %#x below DSM region", va)
	}
	idx := int(int64(va-d.base) / d.pageSize.Bytes())
	if idx >= d.npages {
		return 0, fmt.Errorf("scash: %#x beyond DSM region", va)
	}
	return idx, nil
}

func msgsFor(bytes int) uint64 {
	if bytes <= 0 {
		return 1 // control message
	}
	return uint64((bytes + shmem.MaxMsgSize - 1) / shmem.MaxMsgSize)
}

// maxFetchRetries bounds the refetch loop for a lost page reply; the last
// attempt always succeeds (the simulated interconnect never hard-fails), so
// the bound caps traffic, not correctness.
const maxFetchRetries = 8

// fetch pulls the home copy of page idx into the local cache (read fault
// service). Under an armed SiteSCASHFetch plan, page replies can be lost:
// each loss repeats the request/reply exchange (counted in Refetches and in
// message traffic) before the copy lands — the data that finally arrives is
// always the home's current master copy, so numerics never change.
func (p *Proc) fetch(idx int) {
	d := p.dsm
	seq := p.fetchSeq[idx64(idx)]
	p.fetchSeq[idx64(idx)]++
	key := uint64(p.id)<<48 | uint64(idx)<<16 | seq&0xffff
	attempts := uint64(1)
	for a := uint64(0); a < maxFetchRetries; a++ {
		if !d.fault.ShouldKey(faultinject.SiteSCASHFetch, key^(a+1)*0x9e3779b97f4a7c15) {
			break
		}
		attempts++
	}
	d.mu.Lock()
	src := d.homes[idx]
	cp := make([]byte, len(src.data))
	copy(cp, src.data)
	d.Stats.Fetches++
	d.Stats.Refetches += attempts - 1
	d.Stats.Msgs += attempts * (1 + msgsFor(len(cp))) // request + fragmented page reply, per attempt
	d.mu.Unlock()
	p.local[idx64(idx)] = cp
}

func idx64(i int) uint64 { return uint64(i) }

// FaultHandler exposes the protocol's fault service in the shape the
// machine layer's Context.OnFault hook expects, so simulated hardware
// contexts can run directly against a DSM process's protected page table in
// cluster mode.
func (p *Proc) FaultHandler() func(va units.Addr, write bool) error {
	return p.onFault
}

// onFault services a protection fault at va, upgrading page state per the
// ERC state machine: Invalid --read--> ReadOnly --write--> ReadWrite (with
// twin). It is installed as the machine-layer fault handler in cluster mode.
func (p *Proc) onFault(va units.Addr, write bool) error {
	idx, err := p.dsm.pageIndex(va)
	if err != nil {
		return err
	}
	pageVA := p.dsm.base + units.Addr(int64(idx)*p.dsm.pageSize.Bytes())
	if _, cached := p.local[idx64(idx)]; !cached {
		p.fetch(idx)
		if _, perr := p.PT.Protect(pageVA, pagetable.ProtRead); perr != nil {
			return perr
		}
	}
	if write {
		if _, twinned := p.twins[idx64(idx)]; !twinned {
			local := p.local[idx64(idx)]
			twin := make([]byte, len(local))
			copy(twin, local)
			p.twins[idx64(idx)] = twin
			p.dsm.mu.Lock()
			p.dsm.Stats.WriteFaults++
			p.dsm.mu.Unlock()
		}
		if _, perr := p.PT.Protect(pageVA, pagetable.ProtRW); perr != nil {
			return perr
		}
	}
	return nil
}

// access checks protections and services faults until the access is legal.
func (p *Proc) access(va units.Addr, n int, write bool) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("scash: non-positive access size %d", n)
	}
	idx, err := p.dsm.pageIndex(va)
	if err != nil {
		return nil, err
	}
	off := int(int64(va-p.dsm.base) % p.dsm.pageSize.Bytes())
	if int64(off+n) > p.dsm.pageSize.Bytes() {
		return nil, fmt.Errorf("scash: access at %#x crosses page boundary", va)
	}
	for {
		_, aerr := p.PT.Access(va, write)
		if aerr == nil {
			break
		}
		if !errors.Is(aerr, pagetable.ErrProtViolation) {
			return nil, aerr
		}
		if ferr := p.onFault(va, write); ferr != nil {
			return nil, ferr
		}
	}
	return p.local[idx64(idx)][off : off+n], nil
}

// ReadAt copies n bytes at va out of the process's coherent view.
func (p *Proc) ReadAt(va units.Addr, n int) ([]byte, error) {
	src, err := p.access(va, n, false)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, src)
	return out, nil
}

// WriteAt stores data at va through the coherence protocol.
func (p *Proc) WriteAt(va units.Addr, data []byte) error {
	dst, err := p.access(va, len(data), true)
	if err != nil {
		return err
	}
	copy(dst, data)
	return nil
}

// Release flushes this process's dirty pages: each twinned page is diffed
// against its twin and the differing bytes are sent to the page's home,
// which applies them ("eager" — propagation happens at the release, not
// lazily at the next acquire). A protection downgrade that fails reports a
// page-table inconsistency (every DSM page was mapped at construction, so
// ErrNotMapped here means the trap machinery is broken, not a benign race).
func (p *Proc) Release() error {
	d := p.dsm
	var firstErr error
	for key, twin := range p.twins {
		idx := int(key)
		local := p.local[key]
		var diffBytes int
		d.mu.Lock()
		home := d.homes[idx].data
		for i := range local {
			if local[i] != twin[i] {
				home[i] = local[i]
				diffBytes++
			}
		}
		if diffBytes > 0 {
			d.homes[idx].version++
		}
		d.Stats.Diffs++
		d.Stats.DiffBytes += uint64(diffBytes)
		d.Stats.Msgs += 1 + msgsFor(diffBytes)
		d.mu.Unlock()
		delete(p.twins, key)
		// Downgrade to read-only: the next write re-twins.
		pageVA := d.base + units.Addr(int64(idx)*d.pageSize.Bytes())
		if _, err := p.PT.Protect(pageVA, pagetable.ProtRead); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("scash: release downgrade of page %d: %w", idx, err)
		}
	}
	return firstErr
}

// Acquire invalidates every cached page so subsequent reads observe all
// diffs released before this acquire. Like Release, a failed protection
// change is a real inconsistency and is reported.
func (p *Proc) Acquire() error {
	d := p.dsm
	var firstErr error
	for key := range p.local {
		idx := int(key)
		pageVA := d.base + units.Addr(int64(idx)*d.pageSize.Bytes())
		if _, err := p.PT.Protect(pageVA, pagetable.ProtNone); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("scash: acquire invalidation of page %d: %w", idx, err)
		}
		delete(p.local, key)
	}
	return firstErr
}

// Barrier performs the ERC barrier: every process releases, then every
// process acquires. The caller must ensure no process is mid-access.
func (d *DSM) Barrier() error {
	var firstErr error
	for _, p := range d.procs {
		if err := p.Release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range d.procs {
		if err := p.Acquire(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// HomeVersion exposes a page's home version for protocol tests.
func (d *DSM) HomeVersion(page int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.homes[page].version
}
