package scash

import (
	"testing"

	"hugeomp/internal/units"
)

// FuzzAllocator drives the shared-region allocator with an encoded op
// sequence (byte >= 128: alloc of (b%16+1) KB; otherwise free the (b % live)
// oldest block) and checks the invariants: no overlap, bounds respected,
// usage accounting exact.
func FuzzAllocator(f *testing.F) {
	f.Add([]byte{200, 210, 3, 220, 0, 1})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 255})
	f.Add([]byte{129})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const arena = 4 * 1024 * 1024
		a := NewAllocator(0x1000000, arena)
		type block struct {
			base units.Addr
			size int64
		}
		var live []block
		var want int64
		for _, op := range ops {
			if op >= 128 || len(live) == 0 {
				sz := int64(op%16+1) * 1024
				base, err := a.Alloc(sz)
				if err != nil {
					continue // arena full is fine
				}
				aligned := units.AlignUp(sz, 4096)
				for _, b := range live {
					if base < b.base+units.Addr(b.size) && b.base < base+units.Addr(aligned) {
						t.Fatalf("overlap: [%#x,%#x) with [%#x,%#x)",
							base, base+units.Addr(aligned), b.base, b.base+units.Addr(b.size))
					}
				}
				if base < 0x1000000 || base+units.Addr(aligned) > 0x1000000+arena {
					t.Fatalf("block escapes arena: %#x", base)
				}
				live = append(live, block{base, aligned})
				want += aligned
			} else {
				i := int(op) % len(live)
				if err := a.Free(live[i].base); err != nil {
					t.Fatalf("free of live block: %v", err)
				}
				want -= live[i].size
				live = append(live[:i], live[i+1:]...)
			}
			if a.Used() != want {
				t.Fatalf("Used() = %d, want %d", a.Used(), want)
			}
		}
	})
}
