// Package scash reproduces the slice of the Omni/SCASH cluster-OpenMP system
// the paper builds on (§3.3):
//
//   - the Omni compiler's transformation of global variables into pointers
//     into a shared mapped region (Space and its symbol table);
//   - the internal memory allocator that carves global and dynamic memory
//     out of that region at process startup (Allocator);
//   - the SCASH eager-release-consistency (ERC) software-DSM protocol driven
//     by page protections (erc.go), which the paper's intra-node mode
//     disables in favour of hardware coherence.
//
// The paper's modification is exactly one knob here: whether the shared data
// region is backed by a plain mapped file (4 KB pages) or by a hugetlbfs
// file (2 MB pages preallocated at startup).
package scash

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hugeomp/internal/hugetlbfs"
	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/shmem"
	"hugeomp/internal/units"
)

// Errors.
var (
	ErrNoSpace     = errors.New("scash: shared region exhausted")
	ErrDupSymbol   = errors.New("scash: global already registered")
	ErrBadFree     = errors.New("scash: free of unknown address")
	ErrSealed      = errors.New("scash: globals sealed after startup")
	ErrUnknownName = errors.New("scash: unknown global")
)

// Symbol is one transformed global: Omni rewrites `double a[N]` into a
// pointer that the runtime points at shared memory at startup.
type Symbol struct {
	Name string
	Base units.Addr
	Size int64
}

// Config configures a shared Space.
type Config struct {
	Phys *mem.PhysMem
	PT   *pagetable.Table
	Base units.Addr // region base virtual address (2 MB aligned)
	Size int64      // region length

	PageSize units.PageSize // backing page size for application data
	Hugetlb  *hugetlbfs.FS  // required when PageSize == Size2M
}

// Space is the process-shared data region: the target of the Omni global
// transformation and the arena of the internal allocator.
type Space struct {
	mu      sync.Mutex
	region  *shmem.Region
	alloc   *Allocator
	symbols map[string]Symbol
	order   []string // registration order, for reporting
	sealed  bool
}

// NewSpace maps the shared region and prepares the allocator. With
// PageSize == Size2M the region is a hugetlbfs file created (and therefore
// preallocated) at startup, as in the paper; otherwise it is an ordinary
// 4 KB-page mapped file.
func NewSpace(cfg Config) (*Space, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("scash: non-positive region size %d", cfg.Size)
	}
	if uint64(cfg.Base)%uint64(units.PageSize2M) != 0 {
		return nil, fmt.Errorf("scash: region base %#x not 2MB aligned", cfg.Base)
	}
	var region *shmem.Region
	switch cfg.PageSize {
	case units.Size2M:
		if cfg.Hugetlb == nil {
			return nil, fmt.Errorf("scash: 2MB region requires a hugetlbfs mount")
		}
		length := units.AlignUp(cfg.Size, units.PageSize2M)
		f, err := cfg.Hugetlb.Create(fmt.Sprintf("scash-%#x", cfg.Base), length)
		if err != nil {
			return nil, fmt.Errorf("scash: backing file: %w", err)
		}
		if err := f.Map(cfg.PT, cfg.Base, pagetable.ProtRW); err != nil {
			return nil, err
		}
		region = &shmem.Region{Base: cfg.Base, Len: length, Size: units.Size2M}
	default:
		r, err := shmem.NewRegion(cfg.Phys, cfg.PT, cfg.Base, cfg.Size, units.Size4K, pagetable.ProtRW)
		if err != nil {
			return nil, err
		}
		region = r
	}
	return &Space{
		region:  region,
		alloc:   NewAllocator(region.Base, region.Len),
		symbols: make(map[string]Symbol),
	}, nil
}

// NewSpaceLazy builds a Space over an address range WITHOUT installing any
// mappings: the pages are demand-faulted by an external manager (the
// transparent-huge-page extension). The nominal page size is 4 KB; actual
// mappings may be promoted to 2 MB behind the process's back.
func NewSpaceLazy(base units.Addr, size int64) (*Space, error) {
	if size <= 0 {
		return nil, fmt.Errorf("scash: non-positive region size %d", size)
	}
	if uint64(base)%uint64(units.PageSize2M) != 0 {
		return nil, fmt.Errorf("scash: region base %#x not 2MB aligned", base)
	}
	size = units.AlignUp(size, units.PageSize2M)
	return &Space{
		region:  &shmem.Region{Base: base, Len: size, Size: units.Size4K},
		alloc:   NewAllocator(base, size),
		symbols: make(map[string]Symbol),
	}, nil
}

// Region returns the backing shared region.
func (s *Space) Region() *shmem.Region { return s.region }

// PageSize returns the backing page size of application data.
func (s *Space) PageSize() units.PageSize { return s.region.Size }

// RegisterGlobal performs the Omni transformation for one global of the
// given size: it allocates shared memory and records the symbol. Globals
// must all be registered before Seal (process startup), matching
// Omni/SCASH's allocate-everything-at-startup behaviour.
func (s *Space) RegisterGlobal(name string, size int64) (Symbol, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return Symbol{}, ErrSealed
	}
	if _, dup := s.symbols[name]; dup {
		return Symbol{}, fmt.Errorf("%w: %q", ErrDupSymbol, name)
	}
	base, err := s.alloc.Alloc(size)
	if err != nil {
		return Symbol{}, fmt.Errorf("scash: global %q (%s): %w", name, units.HumanBytes(size), err)
	}
	sym := Symbol{Name: name, Base: base, Size: size}
	s.symbols[name] = sym
	s.order = append(s.order, name)
	return sym, nil
}

// Seal marks the end of startup; later RegisterGlobal calls fail. Malloc
// remains available (SCASH also routes dynamic allocation through the shared
// region).
func (s *Space) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
}

// Lookup returns a registered global.
func (s *Space) Lookup(name string) (Symbol, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sym, ok := s.symbols[name]
	if !ok {
		return Symbol{}, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	return sym, nil
}

// Globals returns all registered symbols in registration order.
func (s *Space) Globals() []Symbol {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Symbol, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.symbols[n])
	}
	return out
}

// Malloc allocates dynamic shared memory.
func (s *Space) Malloc(size int64) (units.Addr, error) {
	return s.alloc.Alloc(size)
}

// Free releases a Malloc'd block.
func (s *Space) Free(addr units.Addr) error { return s.alloc.Free(addr) }

// UsedBytes reports allocator usage (paper Table 2's data footprint).
func (s *Space) UsedBytes() int64 { return s.alloc.Used() }

// FootprintPages reports how many backing pages the allocated data spans.
func (s *Space) FootprintPages() int64 {
	used := s.alloc.HighWater() - int64(0)
	return (used + s.region.Size.Bytes() - 1) / s.region.Size.Bytes()
}

// Allocator is the SCASH internal allocator: a 4 KB-aligned first-fit
// allocator with an address-ordered free list and coalescing, carving blocks
// out of the shared region.
type Allocator struct {
	mu    sync.Mutex
	base  units.Addr
	limit units.Addr
	brk   units.Addr // bump pointer; blocks above came from the free list
	used  int64
	high  int64 // high-water mark of brk, relative to base

	free  []span // address-ordered, coalesced
	sizes map[units.Addr]int64
}

type span struct {
	base units.Addr
	size int64
}

// allocAlign keeps every block page-aligned so distinct arrays never share a
// 4 KB page (matching how Omni lays out transformed globals).
const allocAlign = units.PageSize4K

// NewAllocator creates an allocator over [base, base+size).
func NewAllocator(base units.Addr, size int64) *Allocator {
	return &Allocator{
		base:  base,
		limit: base + units.Addr(size),
		brk:   base,
		sizes: make(map[units.Addr]int64),
	}
}

// Alloc returns a page-aligned block of at least size bytes.
func (a *Allocator) Alloc(size int64) (units.Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("scash: non-positive allocation %d", size)
	}
	size = units.AlignUp(size, allocAlign)
	a.mu.Lock()
	defer a.mu.Unlock()
	// First fit in the free list.
	for i, sp := range a.free {
		if sp.size >= size {
			addr := sp.base
			if sp.size == size {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = span{base: sp.base + units.Addr(size), size: sp.size - size}
			}
			a.sizes[addr] = size
			a.used += size
			return addr, nil
		}
	}
	// Bump.
	if a.brk+units.Addr(size) > a.limit {
		return 0, fmt.Errorf("%w: need %s, %s left", ErrNoSpace,
			units.HumanBytes(size), units.HumanBytes(int64(a.limit-a.brk)))
	}
	addr := a.brk
	a.brk += units.Addr(size)
	if hw := int64(a.brk - a.base); hw > a.high {
		a.high = hw
	}
	a.sizes[addr] = size
	a.used += size
	return addr, nil
}

// Free returns a block to the free list, coalescing with neighbours.
func (a *Allocator) Free(addr units.Addr) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	size, ok := a.sizes[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, addr)
	}
	delete(a.sizes, addr)
	a.used -= size
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].base >= addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{base: addr, size: size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].base+units.Addr(a.free[i].size) == a.free[i+1].base {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].base+units.Addr(a.free[i-1].size) == a.free[i].base {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// Used returns live allocated bytes.
func (a *Allocator) Used() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.used }

// HighWater returns the peak extent of the arena ever used, in bytes from
// the region base.
func (a *Allocator) HighWater() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.high }
