package cache

import (
	"testing"
	"testing/quick"

	"hugeomp/internal/units"
)

func small() *Cache {
	// 512B, 2-way, 64B lines -> 8 lines, 4 sets.
	return New(Config{SizeBytes: 512, Ways: 2})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if r := c.Access(10, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(10, false); !r.Hit {
		t.Error("warm access missed")
	}
}

func TestLineAddr(t *testing.T) {
	c := New(Config{SizeBytes: 64 * units.KB, Ways: 2})
	if c.LineAddr(0) != 0 || c.LineAddr(63) != 0 || c.LineAddr(64) != 1 {
		t.Error("LineAddr boundaries wrong")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := small()       // 4 sets: lines congruent mod 4 conflict
	c.Access(0, true)  // set 0, dirty
	c.Access(4, false) // set 0
	r := c.Access(8, false)
	if !r.HadEvict || !r.Writeback || r.Evicted != 0 {
		t.Errorf("expected writeback of line 0, got %+v", r)
	}
	// Clean eviction: no writeback.
	r = c.Access(12, false)
	if !r.HadEvict || r.Writeback {
		t.Errorf("expected clean eviction, got %+v", r)
	}
}

func TestWriteMakesModified(t *testing.T) {
	c := small()
	c.Access(3, false)
	if st := c.Probe(3); st != Exclusive {
		t.Errorf("read fill state = %v, want E", st)
	}
	c.Access(3, true)
	if st := c.Probe(3); st != Modified {
		t.Errorf("after write = %v, want M", st)
	}
}

func TestFlushCountsDirty(t *testing.T) {
	c := small()
	c.Access(0, true)
	c.Access(1, true)
	c.Access(2, false)
	if d := c.Flush(); d != 2 {
		t.Errorf("Flush wrote back %d lines, want 2", d)
	}
	if c.Live() != 0 {
		t.Error("lines survive flush")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false) // refresh 0; 4 is now LRU
	r := c.Access(8, false)
	if r.Evicted != 4 {
		t.Errorf("evicted %d, want 4", r.Evicted)
	}
}

// Property: live line count never exceeds capacity, and an access directly
// after a fill always hits.
func TestCapacityInvariant(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(Config{SizeBytes: 4 * units.KB, Ways: 4}) // 64 lines
		for _, l := range lines {
			c.Access(uint64(l), l%3 == 0)
			if c.Live() > 64 {
				return false
			}
			if !c.Access(uint64(l), false).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("3-set cache should panic")
		}
	}()
	New(Config{SizeBytes: 3 * 64, Ways: 1})
}

func TestMESIBusReadSharing(t *testing.T) {
	bus := NewBus()
	a := New(Config{SizeBytes: 1 * units.KB, Ways: 2})
	b := New(Config{SizeBytes: 1 * units.KB, Ways: 2})
	bus.Attach(a)
	bus.Attach(b)

	bus.Access(a, 5, false)
	if st := a.Probe(5); st != Exclusive {
		t.Errorf("sole reader state = %v, want E", st)
	}
	_, interv := bus.Access(b, 5, false)
	if !interv {
		t.Error("expected intervention from E peer")
	}
	if a.Probe(5) != Shared || b.Probe(5) != Shared {
		t.Errorf("states after read share: %v/%v, want S/S", a.Probe(5), b.Probe(5))
	}
}

func TestMESIBusWriteInvalidates(t *testing.T) {
	bus := NewBus()
	a := New(Config{SizeBytes: 1 * units.KB, Ways: 2})
	b := New(Config{SizeBytes: 1 * units.KB, Ways: 2})
	bus.Attach(a)
	bus.Attach(b)

	bus.Access(a, 9, false)
	bus.Access(b, 9, false)
	bus.Access(a, 9, true) // write: b's copy must die
	if st := b.Probe(9); st != Invalid {
		t.Errorf("peer state after remote write = %v, want I", st)
	}
	if st := a.Probe(9); st != Modified {
		t.Errorf("writer state = %v, want M", st)
	}
	if bus.Invalidations() == 0 {
		t.Error("no invalidations counted")
	}
}

func TestMESIModifiedIntervention(t *testing.T) {
	bus := NewBus()
	a := New(Config{SizeBytes: 1 * units.KB, Ways: 2})
	b := New(Config{SizeBytes: 1 * units.KB, Ways: 2})
	bus.Attach(a)
	bus.Attach(b)

	bus.Access(a, 3, true) // a: M
	_, interv := bus.Access(b, 3, false)
	if !interv {
		t.Error("dirty peer must intervene")
	}
	if bus.Writebacks() == 0 {
		t.Error("M->S downgrade must write back")
	}
	if a.Probe(3) != Shared || b.Probe(3) != Shared {
		t.Errorf("states = %v/%v, want S/S", a.Probe(3), b.Probe(3))
	}
}

// MESI safety property: after any access sequence there is at most one M or
// E owner of a line, and an M/E owner excludes Shared copies.
func TestMESISafetyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		bus := NewBus()
		caches := []*Cache{
			New(Config{SizeBytes: 512, Ways: 2}),
			New(Config{SizeBytes: 512, Ways: 2}),
			New(Config{SizeBytes: 512, Ways: 2}),
		}
		for _, c := range caches {
			bus.Attach(c)
		}
		for _, op := range ops {
			who := int(op) % 3
			line := uint64(op/4) % 8
			write := op%4 == 0
			bus.Access(caches[who], line, write)
			m, e, s := bus.Owners(line)
			if m+e > 1 {
				return false
			}
			if (m+e == 1) && s > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
