package cache

import "unsafe"

// Fork returns an independent deep copy of the cache: tags, MESI states, LRU
// order vectors, and private-fill stamps. The copy is detached (id -1, no
// bus); Bus.Fork re-attaches forked caches in the parent's attach order.
// Call only at a quiescent point (no traffic in flight). The fork reproduces
// New's 64-byte placement of the metadata blocks so the packed-set layout
// contract holds in the clone too.
func (c *Cache) Fork() *Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	nc := &Cache{}
	nc.cacheFields = cacheFields{
		priv:       append([]uint64(nil), c.priv...),
		assoc:      c.assoc,
		sets:       c.sets,
		setMask:    c.setMask,
		setBits:    c.setBits,
		blockWords: c.blockWords,
		orderMask:  c.orderMask,
		presMask:   c.presMask,
		lineShift:  c.lineShift,
		id:         -1,
	}
	raw := make([]uint64, c.sets*c.blockWords+7)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % 64; rem != 0 {
		off = int((64 - rem) / 8)
	}
	nc.blocks = raw[off : off+c.sets*c.blockWords]
	copy(nc.blocks, c.blocks)
	return nc
}

// Fork returns an independent copy of the bus wired to the forked caches.
// replace maps each attached parent cache to its fork; the clone preserves
// attach order (hence cache ids and the deterministic counter-merge order),
// the per-cache transaction counter blocks, and every shard's cross-cache
// transition generation — so private-fill stamps recorded before the fork
// remain valid on both sides. Call only at a quiescent point.
func (b *Bus) Fork(replace func(*Cache) *Cache) *Bus {
	b.mu.Lock()
	defer b.mu.Unlock()
	nb := NewBus()
	for i, c := range b.caches {
		nc := replace(c)
		nc.id = i
		nc.bus = nb
		nb.caches = append(nb.caches, nc)
		ctr := *b.ctrs[i]
		nb.ctrs = append(nb.ctrs, &ctr)
	}
	for i := range b.shards {
		nb.shards[i].xgen.Store(b.shards[i].xgen.Load())
	}
	return nb
}
