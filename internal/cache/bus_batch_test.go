package cache

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"hugeomp/internal/units"
)

// batchSetup builds n mirrored caches on one bus with 64 sets each, the
// geometry the machine layer requires for batching (Sets() >= GroupLines, so
// the lines of one shard group occupy distinct sets).
func batchSetup(n int) (*Bus, []*Cache) {
	bus := NewBus()
	caches := make([]*Cache, n)
	for i := range caches {
		caches[i] = New(Config{SizeBytes: 8 * units.KB, Ways: 2}) // 64 sets
		bus.Attach(caches[i])
	}
	return bus, caches
}

type busCtrs struct{ rm, wm, inv, itv, wb uint64 }

func snapshotCtrs(b *Bus) busCtrs {
	var c busCtrs
	c.rm, c.wm, c.inv, c.itv, c.wb = b.counters()
	return c
}

// randomRun draws a run satisfying the AccessLines contract: distinct
// ascending line addresses from a single shard group.
func randomRun(rng *rand.Rand, group uint64) []uint64 {
	n := 1 + rng.Intn(GroupLines)
	offs := rng.Perm(GroupLines)[:n]
	sort.Ints(offs)
	lines := make([]uint64, n)
	for i, o := range offs {
		lines[i] = group*GroupLines + uint64(o)
	}
	return lines
}

// TestAccessLinesMatchesPerLineAccess: a batched run transaction must be
// observably identical to issuing Access once per line in order — same
// per-line hit/intervention outcomes, same transaction counters, same MESI
// state in every cache — across arbitrary interleavings of requesters,
// groups and read/write runs.
func TestAccessLinesMatchesPerLineAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	busA, cachesA := batchSetup(3) // per-line protocol
	busB, cachesB := batchSetup(3) // batched protocol
	out := make([]LineTxn, GroupLines)
	for step := 0; step < 500; step++ {
		who := rng.Intn(3)
		lines := randomRun(rng, uint64(rng.Intn(6)))
		write := rng.Intn(2) == 0

		hits := make([]bool, len(lines))
		itvs := make([]bool, len(lines))
		for i, ln := range lines {
			res, itv := busA.Access(cachesA[who], ln, write)
			hits[i], itvs[i] = res.Hit, itv
		}
		busB.AccessLines(cachesB[who], lines, write, out)

		for i := range lines {
			if hits[i] != out[i].Hit || itvs[i] != out[i].Intervention {
				t.Fatalf("step %d line %#x write=%v: per-line (hit=%v itv=%v) != batched (hit=%v itv=%v)",
					step, lines[i], write, hits[i], itvs[i], out[i].Hit, out[i].Intervention)
			}
		}
		if a, b := snapshotCtrs(busA), snapshotCtrs(busB); a != b {
			t.Fatalf("step %d: counters diverge: per-line %+v, batched %+v", step, a, b)
		}
		for i := range cachesA {
			if !reflect.DeepEqual(cachesA[i].Snapshot(), cachesB[i].Snapshot()) {
				t.Fatalf("step %d: cache %d MESI state diverges", step, i)
			}
		}
	}
}

// TestFastAccessMatchesBusAccess: the lock-free private-line fast path with
// its bus fallback must be observably identical to routing every access
// through the bus — FastAccess may only serve accesses whose full protocol
// round would have been a pure local hit, so states and counters never drift.
func TestFastAccessMatchesBusAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	busA, cachesA := batchSetup(2) // fast path + fallback
	busB, cachesB := batchSetup(2) // pure bus protocol
	served := 0
	for step := 0; step < 4000; step++ {
		who := rng.Intn(2)
		line := uint64(rng.Intn(48))
		write := rng.Intn(2) == 0
		if cachesA[who].FastAccess(line, write) {
			served++
		} else {
			busA.Access(cachesA[who], line, write)
		}
		busB.Access(cachesB[who], line, write)
		if a, b := snapshotCtrs(busA), snapshotCtrs(busB); a != b {
			t.Fatalf("step %d: counters diverge: fast %+v, pure %+v", step, a, b)
		}
	}
	for i := range cachesA {
		if !reflect.DeepEqual(cachesA[i].Snapshot(), cachesB[i].Snapshot()) {
			t.Fatalf("cache %d MESI state diverges", i)
		}
	}
	if served == 0 {
		t.Error("fast path never served an access; the test exercised nothing")
	}
}

// TestFastAccessConcurrent hammers the lock-free fast path from four
// goroutines — each driving its own cache over a private line group plus a
// small shared set — interleaved with batched run transactions, and checks
// the MESI single-owner discipline afterwards. Run under -race this is the
// proof that the generation-stamp protocol publishes states safely.
func TestFastAccessConcurrent(t *testing.T) {
	bus, caches := batchSetup(4)
	const iters = 4000
	var wg sync.WaitGroup
	for g := range caches {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := caches[g]
			rng := rand.New(rand.NewSource(int64(g)))
			privBase := uint64((16 + 4*g) * GroupLines) // disjoint group per goroutine
			run := make([]uint64, GroupLines)
			out := make([]LineTxn, GroupLines)
			for i := range run {
				run[i] = privBase + uint64(i)
			}
			for i := 0; i < iters; i++ {
				write := rng.Intn(2) == 0
				ln := privBase + uint64(rng.Intn(GroupLines))
				if !c.FastAccess(ln, write) {
					bus.Access(c, ln, write)
				}
				sln := uint64(rng.Intn(8)) // contended lines
				if !c.FastAccess(sln, write) {
					bus.Access(c, sln, write)
				}
				if i%97 == 0 {
					bus.AccessLines(c, run, false, out)
				}
			}
		}(g)
	}
	wg.Wait()
	for ln := uint64(0); ln < 8; ln++ {
		m, e, s := bus.Owners(ln)
		if m+e > 1 || (m+e == 1 && s > 0) {
			t.Errorf("line %#x: %d Modified, %d Exclusive, %d Shared owners", ln, m, e, s)
		}
	}
}

// TestPrivateStampSurvivesUnrelatedTraffic: traffic on other caches that
// never touches a private line's group must not bump the group's generation,
// so a partitioned workload's stamps keep the owner on the fast path
// indefinitely; a peer actually reading the line must knock it off.
func TestPrivateStampSurvivesUnrelatedTraffic(t *testing.T) {
	bus, caches := batchSetup(2)
	const priv = 5 * GroupLines // cache 0's private line
	bus.Access(caches[0], priv, false)
	if !caches[0].FastAccess(priv, true) {
		t.Fatal("freshly filled private line must take the E->M fast path")
	}

	// Unrelated traffic in a different group, same shard layout.
	other := uint64((5+busShards)*GroupLines + 3) // same shard as priv's group
	bus.Access(caches[1], other, true)
	bus.Access(caches[0], 7*GroupLines, false)
	if !caches[0].FastAccess(priv, false) {
		t.Error("read hit on owned line left the fast path")
	}

	// A peer reads the line: now Shared, writes must fall back to the bus.
	bus.Access(caches[1], priv, false)
	if caches[0].FastAccess(priv, true) {
		t.Error("write on a Shared line served lock-free; invalidation lost")
	}
}
