// Package cache implements the set-associative write-back data caches of the
// simulated processors, plus a snooping bus that keeps private caches
// coherent with a MESI protocol (the paper's Opterons keep their private
// 1 MB L2s coherent by snooping over HyperTransport; the Xeon cores share an
// L2 per chip instead).
//
// Caches are owned by one simulated context and are not goroutine-safe. The
// machine layer either partitions shared caches among co-scheduled contexts
// (its default deterministic model) or serialises access through the Bus.
package cache

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"hugeomp/internal/units"
)

// State is a MESI coherence state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	default:
		return "M"
	}
}

// Config sizes a cache.
type Config struct {
	SizeBytes int64
	Ways      int
	LineSize  int64 // defaults to units.CacheLineSize
}

// Result reports what an access did.
type Result struct {
	Hit       bool
	Writeback bool // a dirty (Modified) line was evicted
	Evicted   uint64
	HadEvict  bool
}

// maxAssoc bounds associativity to what the packed per-set metadata encodes:
// a 4-bit way ID per LRU-order position and a 2-bit MESI state per way. The
// paper-era processors top out at 16 ways, and the bound is what makes every
// set's replacement and coherence state one 16-byte control block.
const maxAssoc = 16

// Cache is one set-associative write-back LRU cache level.
//
// The simulated access path is the hottest loop in the simulator, so the
// per-set metadata is packed and interleaved to minimise distinct host cache
// lines touched per simulated access. Each set owns one contiguous block of
// uint64 words (block 0 on a 64-byte host line boundary):
//
//   - word 0 is the LRU order nibble vector (owner-only): nibble 0 is the
//     MRU way ID, nibble assoc-1 the LRU victim. A recency refresh is a
//     shift-and-insert, eviction recycles the top nibble, and the whole
//     "stamp scan" of a timestamp scheme disappears — victim selection
//     reads one word;
//
//   - word 1 holds the 2-bit MESI states, atomically accessed when
//     bus-attached: the per-set valid count is a popcount, and "first
//     Invalid way by index" — the victim preference that keeps the old scan
//     order — is a bit trick on the inverted presence mask;
//
//   - words 2.. hold the ways' 32-bit set-relative tags
//     (lineAddr >> setBits), two per word in ascending way order.
//
// Order, states and a 16-way set's tags together are 80 bytes, so a whole
// set's replacement, coherence and residency metadata lands on one or two
// adjacent host lines instead of the three scattered arrays of the previous
// layout; a 2-way set (the Opteron L1) is one 32-byte half-line.
//
// Concurrency roles when the cache is attached to a Bus: tags, the order
// word and priv are written only by the owning context's goroutine (fills
// happen inside that context's own bus transactions), so the lock-free fast
// path may read them plainly. The states word is the one field peers mutate
// (invalidations and downgrades on behalf of other caches' transactions), so
// every cross-goroutine access to it goes through sync/atomic — peer-side
// transitions are CAS loops, and the owner's lock-free E→M promotion is a
// CAS that simply fails into the locked slow path if a peer transition wins
// the race (a peer's change to any way of the set changes the word, which
// only makes the owner's CAS conservatively fail). Peers never touch the
// order word: an invalidated way simply stays in recency position until the
// owner recycles it through the first-Invalid victim rule.
type cacheFields struct {
	// blocks holds the per-set metadata blocks, blockWords words per set:
	// word 0 order, word 1 states, words 2.. tags. Aligned so block 0
	// starts on a 64-byte host line.
	//
	// The states word (index bb+1 of a set's block) is the CAS-published
	// word peers mutate, so every access to it — owner and peer alike —
	// must go through sync/atomic on &blocks[bb+1]; the order and tag
	// words are owner-only (peer-side transitions never touch them) and
	// are read and written plainly. The //simlint:atomic annotation is
	// deliberately absent: it is field-granular, and this field packs the
	// one atomic word per set between owner-only words, so annotating it
	// would force ignores onto every plain tag/order access instead of
	// protecting the states word. Grep for `blocks[bb+1]` when auditing:
	// a plain access to that index is a bug.
	blocks []uint64
	priv   []uint64 // per-line private-fill stamps (see FastAccess)

	assoc      int
	sets       int
	setMask    uint64
	setBits    uint
	blockWords int    // words per set block: 2 + ceil(assoc/2)
	orderMask  uint64 // low assoc nibbles
	presMask   uint32 // low assoc 2-bit fields, 01 pattern
	lineShift  uint

	id  int  // position on the bus, -1 if not attached
	bus *Bus // nil when coherence is disabled

	// mu serialises bus-side operations on this cache: a sharded-bus
	// transaction on one line can evict this cache's copy of a line from a
	// different shard, so shard locks alone cannot protect the line arrays.
	// The raw single-owner methods (Access, Probe, …) do not take it.
	mu sync.Mutex
}

// Cache pads its fields to a whole number of 64-byte host cache lines so
// that adjacently allocated caches (the machine layer builds one per
// context, back to back) never false-share a line between one cache's
// mutable tail fields (mu) and the next one's slice headers. The
// whole-lines layout is checked by simlint's padding analyzer.
//
//simlint:padded
type Cache struct {
	cacheFields
	_ [(64 - unsafe.Sizeof(cacheFields{})%64) % 64]byte
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	ls := cfg.LineSize
	if ls == 0 {
		ls = units.CacheLineSize
	}
	nLines := int(cfg.SizeBytes / ls)
	if nLines <= 0 {
		panic("cache: zero size")
	}
	assoc := cfg.Ways
	if assoc <= 0 || assoc > nLines {
		assoc = nLines
	}
	sets := nLines / assoc
	if sets*assoc != nLines {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", nLines, assoc))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	if assoc > maxAssoc {
		panic(fmt.Sprintf("cache: associativity %d exceeds the packed-set limit of %d ways (give the config an explicit, hardware-like way count)", assoc, maxAssoc))
	}
	shift := uint(0)
	for 1<<shift != ls {
		shift++
	}
	orderMask := ^uint64(0)
	if assoc < 16 {
		orderMask = (uint64(1) << (4 * assoc)) - 1
	}
	// The per-set block is exactly order + states + tag words — padding it
	// (say to a power of two) would inflate the metadata footprint past the
	// host L2 working set for the big simulated L2s, which costs more than
	// the multiply in the index computation. Over-allocate so block 0 can
	// be placed on a 64-byte host line boundary.
	blockWords := 2 + (assoc+1)/2
	raw := make([]uint64, sets*blockWords+7)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % 64; rem != 0 {
		off = int((64 - rem) / 8)
	}
	c := &Cache{}
	c.cacheFields = cacheFields{
		blocks:     raw[off : off+sets*blockWords],
		priv:       make([]uint64, nLines),
		assoc:      assoc,
		sets:       sets,
		setMask:    uint64(sets - 1),
		setBits:    uint(bits.TrailingZeros64(uint64(sets))),
		blockWords: blockWords,
		orderMask:  orderMask,
		presMask:   uint32(0x55555555) & uint32((uint64(1)<<(2*assoc))-1),
		lineShift:  shift,
		id:         -1,
	}
	c.resetOrder()
	return c
}

// resetOrder sets every set's recency vector to the identity permutation
// (all ways invalid, so the order is arbitrary but deterministic).
func (c *cacheFields) resetOrder() {
	var ident uint64
	for w := c.assoc - 1; w >= 0; w-- {
		ident = ident<<4 | uint64(w)
	}
	for s := 0; s < c.sets; s++ {
		c.blocks[s*c.blockWords] = ident
	}
}

// tagAt reads way w's tag from the set block starting at word bb.
func (c *cacheFields) tagAt(bb, w int) uint32 {
	return uint32(c.blocks[bb+2+(w>>1)] >> (32 * uint(w&1)))
}

// setTag writes way w's tag in the set block starting at word bb.
// Owner-only, like the order word.
func (c *cacheFields) setTag(bb, w int, tag uint32) {
	i := bb + 2 + (w >> 1)
	sh := 32 * uint(w&1)
	c.blocks[i] = c.blocks[i]&^(uint64(0xffffffff)<<sh) | uint64(tag)<<sh
}

// tagOf splits a line address into its set-relative tag.
func (c *cacheFields) tagOf(lineAddr uint64) uint32 { return uint32(lineAddr >> c.setBits) }

// lineOf reconstructs a line address from a set and a stored tag.
func (c *cacheFields) lineOf(set int, tag uint32) uint64 {
	return uint64(tag)<<c.setBits | uint64(set)
}

// stateOf extracts way w's MESI state from a states word.
func stateOf(word uint64, w int) State { return State((word >> (2 * uint(w))) & 3) }

// setNibble returns word with way w's 2-bit state replaced by st.
func setNibble(word uint64, w int, st State) uint64 {
	sh := 2 * uint(w)
	return word&^(3<<sh) | uint64(st)<<sh
}

// present returns the 01-pattern mask of valid ways in a states word.
func (c *cacheFields) present(word uint64) uint32 {
	v := uint32(word)
	return (v | v>>1) & c.presMask
}

// statesWord reads set s's packed states with an atomic load (safe against
// concurrent peer transitions; on the owner's goroutine the value cannot go
// stale for owner-held decisions — see the cacheFields doc).
func (c *cacheFields) statesWord(s int) uint64 {
	return atomic.LoadUint64(&c.blocks[s*c.blockWords+1])
}

// touchOrder moves way w to the MRU front of the order vector. pos is found
// with a SWAR zero-nibble search: the permutation holds w exactly once in
// the low assoc nibbles, and the borrow trick flags the lowest zero nibble
// exactly.
func touchOrder(order uint64, w int) uint64 {
	if order&0xF == uint64(w) {
		return order
	}
	x := order ^ (uint64(w) * 0x1111111111111111)
	p := uint(bits.TrailingZeros64((x-0x1111111111111111)&^x&0x8888888888888888)) / 4
	below := order & ((uint64(1) << (4 * p)) - 1)
	var above uint64
	if p < 15 {
		above = order &^ ((uint64(1) << (4 * (p + 1))) - 1)
	}
	return above | below<<4 | uint64(w)
}

// LineAddr converts a physical address into a line number.
func (c *Cache) LineAddr(pa units.Addr) uint64 { return uint64(pa) >> c.lineShift }

// Sets returns the number of sets (the machine layer's run batching requires
// the lines of one bus shard group to map to distinct sets).
func (c *Cache) Sets() int { return c.sets }

// Access looks up the line containing pa; on a miss it fills the line,
// evicting the set's LRU way. write marks the line dirty (Modified).
// Coherence (if the cache is attached to a Bus) is handled by the caller via
// Bus.Access; this method is the raw, single-owner path.
//
//simlint:hotpath
func (c *Cache) Access(lineAddr uint64, write bool) Result {
	set := int(lineAddr & c.setMask)
	bb := set * c.blockWords
	tag := c.tagOf(lineAddr)
	order := c.blocks[bb]
	word := atomic.LoadUint64(&c.blocks[bb+1])
	// Set-indexed probe: the MRU head resolves repeat accesses to the same
	// line without scanning the set at all.
	if h := int(order & 0xF); c.tagAt(bb, h) == tag && stateOf(word, h) != Invalid {
		if write && stateOf(word, h) != Modified {
			atomic.StoreUint64(&c.blocks[bb+1], setNibble(word, h, Modified))
		}
		return Result{Hit: true}
	}
	// Hit scan: the set's own block of tag words, one load per word with
	// both halves compared, in ascending way order so a stale invalid
	// duplicate (always at a higher way than the valid copy) can never
	// shadow the real line. An odd-assoc set's unused top half can only
	// phantom-match as way assoc, whose state bits are never set, so the
	// Invalid check rejects it.
	pat := uint64(tag) | uint64(tag)<<32
	for wi := 2; wi < c.blockWords; wi++ {
		x := c.blocks[bb+wi] ^ pat
		if uint32(x) == 0 {
			if w := 2 * (wi - 2); stateOf(word, w) != Invalid {
				c.blocks[bb] = touchOrder(order, w)
				if write && stateOf(word, w) != Modified {
					atomic.StoreUint64(&c.blocks[bb+1], setNibble(word, w, Modified))
				}
				return Result{Hit: true}
			}
		}
		if x>>32 == 0 {
			if w := 2*(wi-2) + 1; stateOf(word, w) != Invalid {
				c.blocks[bb] = touchOrder(order, w)
				if write && stateOf(word, w) != Modified {
					atomic.StoreUint64(&c.blocks[bb+1], setNibble(word, w, Modified))
				}
				return Result{Hit: true}
			}
		}
	}
	// Miss: choose victim — first Invalid way by index if the set has any,
	// else the LRU tail nibble (exact-order LRU).
	res := Result{}
	var victim int
	if inv := ^c.present(word) & c.presMask; inv != 0 {
		victim = bits.TrailingZeros32(inv) / 2
		c.blocks[bb] = touchOrder(order, victim)
	} else {
		victim = int(order >> (4 * uint(c.assoc-1)) & 0xF)
		res.HadEvict = true
		res.Evicted = c.lineOf(set, c.tagAt(bb, victim))
		res.Writeback = stateOf(word, victim) == Modified
		// Recycling the tail is a rotate: every other way ages one recency
		// position and the refilled way re-enters at the front.
		c.blocks[bb] = (order<<4 | uint64(victim)) & c.orderMask
	}
	st := Exclusive
	if write {
		st = Modified
	}
	c.setTag(bb, victim, tag)
	atomic.StoreUint64(&c.blocks[bb+1], setNibble(word, victim, st))
	return res
}

// FastAccess is the contention-free private-line fast path: a hit probe that
// takes neither the bus shard lock nor the per-cache mutex. It serves the
// access and reports true only when doing so requires no bus transaction:
//
//   - a read hit on any valid copy (M, E or S reads never generate traffic);
//   - a write hit on a Modified line (no transition);
//   - a write hit on an Exclusive line whose private-fill stamp still equals
//     the line's bus shard generation — proof that no cross-cache transition
//     has touched the shard since this cache filled the line private, so the
//     silent E→M promotion MESI grants an exclusive owner applies. The
//     promotion itself is a CAS on the set's states word that loses
//     gracefully to any racing peer transition in the set (the caller then
//     retries through the locked bus path).
//
// Everything else (misses, write-upgrades of Shared lines, stale stamps)
// returns false and must go through Bus.Access. Call only from the owning
// context's goroutine with the cache attached to a bus.
//
//simlint:hotpath
func (c *Cache) FastAccess(lineAddr uint64, write bool) bool {
	set := int(lineAddr & c.setMask)
	bb := set * c.blockWords
	tag := c.tagOf(lineAddr)
	pat := uint64(tag) | uint64(tag)<<32
	for wi := 2; wi < c.blockWords; wi++ {
		x := c.blocks[bb+wi] ^ pat
		var w int
		switch {
		case uint32(x) == 0:
			w = 2 * (wi - 2)
		case x>>32 == 0:
			w = 2*(wi-2) + 1
		default:
			continue
		}
		word := atomic.LoadUint64(&c.blocks[bb+1])
		st := stateOf(word, w)
		switch {
		case st == Invalid:
			return false // stale tag; the locked path refills
		case !write || st == Modified:
			c.blocks[bb] = touchOrder(c.blocks[bb], w)
			return true
		case st == Exclusive:
			sh := c.bus.shard(lineAddr)
			if c.priv[set*c.assoc+w] != sh.xgen.Load() {
				return false // shard saw cross-cache traffic since the fill
			}
			if !atomic.CompareAndSwapUint64(&c.blocks[bb+1],
				word, setNibble(word, w, Modified)) {
				return false // a peer transition won the race
			}
			c.blocks[bb] = touchOrder(c.blocks[bb], w)
			return true
		default: // Shared write: needs an invalidating upgrade transaction
			return false
		}
	}
	return false
}

// stampPrivate records the current shard generation on lineAddr's slot after
// a private (Exclusive) fill, arming the lock-free E→M promotion. Owner-only
// state; called from the filling transaction.
func (c *cacheFields) stampPrivate(lineAddr uint64, gen uint64) {
	set := int(lineAddr & c.setMask)
	bb := set * c.blockWords
	tag := c.tagOf(lineAddr)
	word := c.statesWord(set)
	for w := 0; w < c.assoc; w++ {
		if c.tagAt(bb, w) == tag && stateOf(word, w) != Invalid {
			c.priv[set*c.assoc+w] = gen
			return
		}
	}
}

// Probe reports the state of lineAddr without touching LRU state.
func (c *Cache) Probe(lineAddr uint64) State {
	set := int(lineAddr & c.setMask)
	bb := set * c.blockWords
	tag := c.tagOf(lineAddr)
	word := c.statesWord(set)
	for w := 0; w < c.assoc; w++ {
		if c.tagAt(bb, w) == tag && stateOf(word, w) != Invalid {
			return stateOf(word, w)
		}
	}
	return Invalid
}

func (c *Cache) setState(lineAddr uint64, st State) {
	set := int(lineAddr & c.setMask)
	bb := set * c.blockWords
	tag := c.tagOf(lineAddr)
	for w := 0; w < c.assoc; w++ {
		if c.tagAt(bb, w) != tag {
			continue
		}
		for {
			word := c.statesWord(set)
			if stateOf(word, w) == Invalid {
				return
			}
			if atomic.CompareAndSwapUint64(&c.blocks[bb+1],
				word, setNibble(word, w, st)) {
				return
			}
		}
	}
}

// lockedAccess is Access under the cache's bus-side mutex.
func (c *Cache) lockedAccess(lineAddr uint64, write bool) Result {
	c.mu.Lock()
	res := c.Access(lineAddr, write)
	c.mu.Unlock()
	return res
}

// lockedSetState is setState under the cache's bus-side mutex.
func (c *Cache) lockedSetState(lineAddr uint64, st State) {
	c.mu.Lock()
	c.setState(lineAddr, st)
	c.mu.Unlock()
}

// invalidateSlot atomically removes lineAddr (if present) and returns the
// state it held. The transition is a CAS loop because the line's owner may
// concurrently promote E→M through the lock-free fast path; the loop
// re-reads so a promoted line is correctly observed (and billed) as
// Modified. Caller holds c.mu.
func (c *cacheFields) invalidateSlot(lineAddr uint64) State {
	set := int(lineAddr & c.setMask)
	bb := set * c.blockWords
	tag := c.tagOf(lineAddr)
	for w := 0; w < c.assoc; w++ {
		if c.tagAt(bb, w) != tag {
			continue
		}
		for {
			word := c.statesWord(set)
			st := stateOf(word, w)
			if st == Invalid {
				return Invalid
			}
			if atomic.CompareAndSwapUint64(&c.blocks[bb+1],
				word, setNibble(word, w, Invalid)) {
				return st
			}
		}
	}
	return Invalid
}

// downgradeSlot atomically moves lineAddr (if present) to Shared and returns
// the state it held; CAS loop for the same reason as invalidateSlot. Caller
// holds c.mu.
func (c *cacheFields) downgradeSlot(lineAddr uint64) State {
	set := int(lineAddr & c.setMask)
	bb := set * c.blockWords
	tag := c.tagOf(lineAddr)
	for w := 0; w < c.assoc; w++ {
		if c.tagAt(bb, w) != tag {
			continue
		}
		for {
			word := c.statesWord(set)
			st := stateOf(word, w)
			if st == Invalid || st == Shared {
				return st
			}
			if atomic.CompareAndSwapUint64(&c.blocks[bb+1],
				word, setNibble(word, w, Shared)) {
				return st
			}
		}
	}
	return Invalid
}

// invalidate is invalidateSlot under the bus-side mutex.
func (c *Cache) invalidate(lineAddr uint64) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.invalidateSlot(lineAddr)
}

// downgrade is downgradeSlot under the bus-side mutex.
func (c *Cache) downgrade(lineAddr uint64) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downgradeSlot(lineAddr)
}

// Flush invalidates every line, returning the number of dirty lines written
// back.
func (c *Cache) Flush() int {
	dirty := 0
	for s := 0; s < c.sets; s++ {
		bb := s * c.blockWords
		word := c.statesWord(s)
		for w := 0; w < c.assoc; w++ {
			if stateOf(word, w) == Modified {
				dirty++
			}
		}
		atomic.StoreUint64(&c.blocks[bb+1], 0)
		for i := bb + 2; i < bb+2+(c.assoc+1)/2; i++ {
			c.blocks[i] = 0
		}
	}
	for i := range c.priv {
		c.priv[i] = 0
	}
	c.resetOrder()
	return dirty
}

// Snapshot returns every valid line's coherence state, keyed by line
// address, under the bus-side lock — the raw material for the MESI audit in
// internal/check. Call only when no traffic is in flight.
func (c *Cache) Snapshot() map[uint64]State {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]State)
	for s := 0; s < c.sets; s++ {
		word := c.statesWord(s)
		for w := 0; w < c.assoc; w++ {
			if st := stateOf(word, w); st != Invalid {
				out[c.lineOf(s, c.tagAt(s*c.blockWords, w))] = st
			}
		}
	}
	return out
}

// ForceState overwrites the state of lineAddr if the cache holds it,
// reporting whether it did. It exists so the checker's own tests can corrupt
// MESI state and prove the audit is not vacuously green; simulation code
// must never call it.
func (c *Cache) ForceState(lineAddr uint64, st State) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := int(lineAddr & c.setMask)
	bb := set * c.blockWords
	tag := c.tagOf(lineAddr)
	word := c.statesWord(set)
	for w := 0; w < c.assoc; w++ {
		if c.tagAt(bb, w) == tag && stateOf(word, w) != Invalid {
			atomic.StoreUint64(&c.blocks[bb+1], setNibble(word, w, st))
			return true
		}
	}
	return false
}

// Live returns the number of valid lines.
func (c *Cache) Live() int {
	n := 0
	for s := 0; s < c.sets; s++ {
		n += bits.OnesCount32(c.present(c.statesWord(s)))
	}
	return n
}

// Lines returns total capacity in lines.
func (c *Cache) Lines() int { return c.sets * c.assoc }
