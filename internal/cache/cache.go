// Package cache implements the set-associative write-back data caches of the
// simulated processors, plus a snooping bus that keeps private caches
// coherent with a MESI protocol (the paper's Opterons keep their private
// 1 MB L2s coherent by snooping over HyperTransport; the Xeon cores share an
// L2 per chip instead).
//
// Caches are owned by one simulated context and are not goroutine-safe. The
// machine layer either partitions shared caches among co-scheduled contexts
// (its default deterministic model) or serialises access through the Bus.
package cache

import (
	"fmt"
	"sync"

	"hugeomp/internal/units"
)

// State is a MESI coherence state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	default:
		return "M"
	}
}

// Config sizes a cache.
type Config struct {
	SizeBytes int64
	Ways      int
	LineSize  int64 // defaults to units.CacheLineSize
}

// Result reports what an access did.
type Result struct {
	Hit       bool
	Writeback bool // a dirty (Modified) line was evicted
	Evicted   uint64
	HadEvict  bool
}

// Cache is one set-associative write-back LRU cache level.
//
// Line metadata is stored structure-of-arrays: the tag scan — the hot loop
// of every simulated access — walks a contiguous []uint64, so a 16-way probe
// touches two host cache lines instead of the six an array-of-structs layout
// costs; stamps are only touched on the miss path (victim selection) and
// states only on state transitions.
type Cache struct {
	tags      []uint64
	stamps    []uint64
	states    []State
	assoc     int
	setMask   uint64
	lineShift uint
	tick      uint64

	id  int  // position on the bus, -1 if not attached
	bus *Bus // nil when coherence is disabled

	// mu serialises bus-side operations on this cache: a sharded-bus
	// transaction on one line can evict this cache's copy of a line from a
	// different shard, so shard locks alone cannot protect the line arrays.
	// The raw single-owner methods (Access, Probe, …) do not take it.
	mu sync.Mutex
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	ls := cfg.LineSize
	if ls == 0 {
		ls = units.CacheLineSize
	}
	nLines := int(cfg.SizeBytes / ls)
	if nLines <= 0 {
		panic("cache: zero size")
	}
	assoc := cfg.Ways
	if assoc <= 0 || assoc > nLines {
		assoc = nLines
	}
	sets := nLines / assoc
	if sets*assoc != nLines {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", nLines, assoc))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	shift := uint(0)
	for 1<<shift != ls {
		shift++
	}
	return &Cache{
		tags:      make([]uint64, nLines),
		stamps:    make([]uint64, nLines),
		states:    make([]State, nLines),
		assoc:     assoc,
		setMask:   uint64(sets - 1),
		lineShift: shift,
		id:        -1,
	}
}

// LineAddr converts a physical address into a line number.
func (c *Cache) LineAddr(pa units.Addr) uint64 { return uint64(pa) >> c.lineShift }

// Access looks up the line containing pa; on a miss it fills the line,
// evicting the set's LRU way. write marks the line dirty (Modified).
// Coherence (if the cache is attached to a Bus) is handled by the caller via
// Bus.Access; this method is the raw, single-owner path.
func (c *Cache) Access(lineAddr uint64, write bool) Result {
	base := int(lineAddr&c.setMask) * c.assoc
	// Hit scan: tags only, so the common case stays within one or two host
	// cache lines.
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			c.tick++
			c.stamps[i] = c.tick
			if write {
				c.states[i] = Modified
			}
			return Result{Hit: true}
		}
	}
	// Miss: choose victim (first Invalid way, else LRU).
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+c.assoc; i++ {
		if c.states[i] == Invalid {
			victim = i
			break
		}
		if c.stamps[i] < oldest {
			victim, oldest = i, c.stamps[i]
		}
	}
	res := Result{}
	if c.states[victim] != Invalid {
		res.HadEvict = true
		res.Evicted = c.tags[victim]
		res.Writeback = c.states[victim] == Modified
	}
	c.tick++
	st := Exclusive
	if write {
		st = Modified
	}
	c.tags[victim] = lineAddr
	c.stamps[victim] = c.tick
	c.states[victim] = st
	return res
}

// Probe reports the state of lineAddr without touching LRU state.
func (c *Cache) Probe(lineAddr uint64) State {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			return c.states[i]
		}
	}
	return Invalid
}

func (c *Cache) setState(lineAddr uint64, st State) {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			c.states[i] = st
			return
		}
	}
}

// lockedAccess is Access under the cache's bus-side mutex.
func (c *Cache) lockedAccess(lineAddr uint64, write bool) Result {
	c.mu.Lock()
	res := c.Access(lineAddr, write)
	c.mu.Unlock()
	return res
}

// lockedSetState is setState under the cache's bus-side mutex.
func (c *Cache) lockedSetState(lineAddr uint64, st State) {
	c.mu.Lock()
	c.setState(lineAddr, st)
	c.mu.Unlock()
}

// invalidate atomically removes lineAddr (if present) and returns the state
// it held, so a bus write transaction probes and invalidates a peer in one
// critical section.
func (c *Cache) invalidate(lineAddr uint64) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			st := c.states[i]
			c.states[i] = Invalid
			return st
		}
	}
	return Invalid
}

// downgrade atomically moves lineAddr (if present) to Shared and returns the
// state it held, so a bus read transaction probes and downgrades a peer in
// one critical section.
func (c *Cache) downgrade(lineAddr uint64) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			st := c.states[i]
			c.states[i] = Shared
			return st
		}
	}
	return Invalid
}

// Flush invalidates every line, returning the number of dirty lines written
// back.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.states {
		if c.states[i] == Modified {
			dirty++
		}
		c.states[i] = Invalid
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	return dirty
}

// Snapshot returns every valid line's coherence state, keyed by line
// address, under the bus-side lock — the raw material for the MESI audit in
// internal/check. Call only when no traffic is in flight.
func (c *Cache) Snapshot() map[uint64]State {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]State)
	for i := range c.states {
		if c.states[i] != Invalid {
			out[c.tags[i]] = c.states[i]
		}
	}
	return out
}

// ForceState overwrites the state of lineAddr if the cache holds it,
// reporting whether it did. It exists so the checker's own tests can corrupt
// MESI state and prove the audit is not vacuously green; simulation code
// must never call it.
func (c *Cache) ForceState(lineAddr uint64, st State) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			c.states[i] = st
			return true
		}
	}
	return false
}

// Live returns the number of valid lines.
func (c *Cache) Live() int {
	n := 0
	for i := range c.states {
		if c.states[i] != Invalid {
			n++
		}
	}
	return n
}

// Lines returns total capacity in lines.
func (c *Cache) Lines() int { return len(c.states) }
