// Package cache implements the set-associative write-back data caches of the
// simulated processors, plus a snooping bus that keeps private caches
// coherent with a MESI protocol (the paper's Opterons keep their private
// 1 MB L2s coherent by snooping over HyperTransport; the Xeon cores share an
// L2 per chip instead).
//
// Caches are owned by one simulated context and are not goroutine-safe. The
// machine layer either partitions shared caches among co-scheduled contexts
// (its default deterministic model) or serialises access through the Bus.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"hugeomp/internal/units"
)

// State is a MESI coherence state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	default:
		return "M"
	}
}

// Config sizes a cache.
type Config struct {
	SizeBytes int64
	Ways      int
	LineSize  int64 // defaults to units.CacheLineSize
}

// Result reports what an access did.
type Result struct {
	Hit       bool
	Writeback bool // a dirty (Modified) line was evicted
	Evicted   uint64
	HadEvict  bool
}

// Cache is one set-associative write-back LRU cache level.
//
// Line metadata is stored structure-of-arrays: the tag scan — the hot loop
// of every simulated access — walks a contiguous []uint64, so a 16-way probe
// touches two host cache lines instead of the six an array-of-structs layout
// costs; stamps are only touched on the miss path (victim selection) and
// states only on state transitions.
//
// Concurrency roles when the cache is attached to a Bus: tags, stamps, tick
// and priv are written only by the owning context's goroutine (fills happen
// inside that context's own bus transactions), so the lock-free fast path may
// read them plainly. states is the one array peers mutate (invalidations and
// downgrades on behalf of other caches' transactions), so every
// cross-goroutine state access goes through sync/atomic — peer-side
// transitions are CAS loops, and the owner's lock-free E→M promotion is a CAS
// that simply fails into the locked slow path if a peer transition wins the
// race.
type cacheFields struct {
	tags   []uint64
	stamps []uint64
	// states holds State values, atomically accessed when bus-attached.
	//simlint:atomic
	states    []uint32
	priv      []uint64 // per-line private-fill stamps (see FastAccess)
	assoc     int
	sets      int
	setMask   uint64
	lineShift uint
	tick      uint64

	id  int  // position on the bus, -1 if not attached
	bus *Bus // nil when coherence is disabled

	// mu serialises bus-side operations on this cache: a sharded-bus
	// transaction on one line can evict this cache's copy of a line from a
	// different shard, so shard locks alone cannot protect the line arrays.
	// The raw single-owner methods (Access, Probe, …) do not take it.
	mu sync.Mutex
}

// Cache pads its fields to a whole number of 64-byte host cache lines so
// that adjacently allocated caches (the machine layer builds one per
// context, back to back) never false-share a line between one cache's
// mutable tail fields (tick, mu) and the next one's slice headers. The
// whole-lines layout is checked by simlint's padding analyzer.
//
//simlint:padded
type Cache struct {
	cacheFields
	_ [(64 - unsafe.Sizeof(cacheFields{})%64) % 64]byte
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	ls := cfg.LineSize
	if ls == 0 {
		ls = units.CacheLineSize
	}
	nLines := int(cfg.SizeBytes / ls)
	if nLines <= 0 {
		panic("cache: zero size")
	}
	assoc := cfg.Ways
	if assoc <= 0 || assoc > nLines {
		assoc = nLines
	}
	sets := nLines / assoc
	if sets*assoc != nLines {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", nLines, assoc))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	shift := uint(0)
	for 1<<shift != ls {
		shift++
	}
	c := &Cache{}
	c.cacheFields = cacheFields{
		tags:      make([]uint64, nLines),
		stamps:    make([]uint64, nLines),
		states:    make([]uint32, nLines),
		priv:      make([]uint64, nLines),
		assoc:     assoc,
		sets:      sets,
		setMask:   uint64(sets - 1),
		lineShift: shift,
		id:        -1,
	}
	return c
}

// LineAddr converts a physical address into a line number.
func (c *Cache) LineAddr(pa units.Addr) uint64 { return uint64(pa) >> c.lineShift }

// Sets returns the number of sets (the machine layer's run batching requires
// the lines of one bus shard group to map to distinct sets).
func (c *Cache) Sets() int { return c.sets }

// st reads the state of way slot i. Plain read: safe on the owner's
// goroutine and under the bus-side mutex (see cacheFields doc). Every other
// states access in the package goes through sync/atomic; this accessor is
// the single sanctioned exception.
//
//simlint:ignore atomicfield owner-goroutine/bus-mutex read; the cacheFields doc defines when a plain load is safe
func (c *cacheFields) st(i int) State { return State(c.states[i]) }

// stAtomic reads the state of way slot i with an atomic load, for lock-free
// readers racing peer-side transitions.
func (c *cacheFields) stAtomic(i int) State {
	return State(atomic.LoadUint32(&c.states[i]))
}

// touch refreshes the LRU stamp of way slot i. Owner-only state.
func (c *cacheFields) touch(i int) {
	c.tick++
	c.stamps[i] = c.tick
}

// Access looks up the line containing pa; on a miss it fills the line,
// evicting the set's LRU way. write marks the line dirty (Modified).
// Coherence (if the cache is attached to a Bus) is handled by the caller via
// Bus.Access; this method is the raw, single-owner path.
//
//simlint:hotpath
func (c *Cache) Access(lineAddr uint64, write bool) Result {
	base := int(lineAddr&c.setMask) * c.assoc
	// Hit scan: tags only, so the common case stays within one or two host
	// cache lines.
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.st(i) != Invalid {
			c.touch(i)
			if write && c.st(i) != Modified {
				atomic.StoreUint32(&c.states[i], uint32(Modified))
			}
			return Result{Hit: true}
		}
	}
	// Miss: choose victim (first Invalid way, else LRU).
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+c.assoc; i++ {
		if c.st(i) == Invalid {
			victim = i
			break
		}
		if c.stamps[i] < oldest {
			victim, oldest = i, c.stamps[i]
		}
	}
	res := Result{}
	if c.st(victim) != Invalid {
		res.HadEvict = true
		res.Evicted = c.tags[victim]
		res.Writeback = c.st(victim) == Modified
	}
	st := Exclusive
	if write {
		st = Modified
	}
	c.tags[victim] = lineAddr
	c.touch(victim)
	atomic.StoreUint32(&c.states[victim], uint32(st))
	return res
}

// FastAccess is the contention-free private-line fast path: a hit probe that
// takes neither the bus shard lock nor the per-cache mutex. It serves the
// access and reports true only when doing so requires no bus transaction:
//
//   - a read hit on any valid copy (M, E or S reads never generate traffic);
//   - a write hit on a Modified line (no transition);
//   - a write hit on an Exclusive line whose private-fill stamp still equals
//     the line's bus shard generation — proof that no cross-cache transition
//     has touched the shard since this cache filled the line private, so the
//     silent E→M promotion MESI grants an exclusive owner applies. The
//     promotion itself is a CAS that loses gracefully to a racing peer
//     transition (the caller then retries through the locked bus path).
//
// Everything else (misses, write-upgrades of Shared lines, stale stamps)
// returns false and must go through Bus.Access. Call only from the owning
// context's goroutine with the cache attached to a bus.
//
//simlint:hotpath
func (c *Cache) FastAccess(lineAddr uint64, write bool) bool {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] != lineAddr {
			continue
		}
		st := c.stAtomic(i)
		switch {
		case st == Invalid:
			return false // stale tag; the locked path refills
		case !write || st == Modified:
			c.touch(i)
			return true
		case st == Exclusive:
			sh := c.bus.shard(lineAddr)
			if c.priv[i] != sh.xgen.Load() {
				return false // shard saw cross-cache traffic since the fill
			}
			if !atomic.CompareAndSwapUint32(&c.states[i],
				uint32(Exclusive), uint32(Modified)) {
				return false // a peer transition won the race
			}
			c.touch(i)
			return true
		default: // Shared write: needs an invalidating upgrade transaction
			return false
		}
	}
	return false
}

// stampPrivate records the current shard generation on lineAddr's slot after
// a private (Exclusive) fill, arming the lock-free E→M promotion. Owner-only
// state; called from the filling transaction.
func (c *cacheFields) stampPrivate(lineAddr uint64, gen uint64) {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.st(i) != Invalid {
			c.priv[i] = gen
			return
		}
	}
}

// Probe reports the state of lineAddr without touching LRU state.
func (c *Cache) Probe(lineAddr uint64) State {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.stAtomic(i) != Invalid {
			return c.stAtomic(i)
		}
	}
	return Invalid
}

func (c *Cache) setState(lineAddr uint64, st State) {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.st(i) != Invalid {
			atomic.StoreUint32(&c.states[i], uint32(st))
			return
		}
	}
}

// lockedAccess is Access under the cache's bus-side mutex.
func (c *Cache) lockedAccess(lineAddr uint64, write bool) Result {
	c.mu.Lock()
	res := c.Access(lineAddr, write)
	c.mu.Unlock()
	return res
}

// lockedSetState is setState under the cache's bus-side mutex.
func (c *Cache) lockedSetState(lineAddr uint64, st State) {
	c.mu.Lock()
	c.setState(lineAddr, st)
	c.mu.Unlock()
}

// invalidateSlot atomically removes lineAddr (if present) and returns the
// state it held. The transition is a CAS loop because the line's owner may
// concurrently promote E→M through the lock-free fast path; the loop
// re-reads so a promoted line is correctly observed (and billed) as
// Modified. Caller holds c.mu.
func (c *cacheFields) invalidateSlot(lineAddr uint64) State {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] != lineAddr {
			continue
		}
		for {
			st := c.stAtomic(i)
			if st == Invalid {
				return Invalid
			}
			if atomic.CompareAndSwapUint32(&c.states[i],
				uint32(st), uint32(Invalid)) {
				return st
			}
		}
	}
	return Invalid
}

// downgradeSlot atomically moves lineAddr (if present) to Shared and returns
// the state it held; CAS loop for the same reason as invalidateSlot. Caller
// holds c.mu.
func (c *cacheFields) downgradeSlot(lineAddr uint64) State {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] != lineAddr {
			continue
		}
		for {
			st := c.stAtomic(i)
			if st == Invalid || st == Shared {
				return st
			}
			if atomic.CompareAndSwapUint32(&c.states[i],
				uint32(st), uint32(Shared)) {
				return st
			}
		}
	}
	return Invalid
}

// invalidate is invalidateSlot under the bus-side mutex.
func (c *Cache) invalidate(lineAddr uint64) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.invalidateSlot(lineAddr)
}

// downgrade is downgradeSlot under the bus-side mutex.
func (c *Cache) downgrade(lineAddr uint64) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downgradeSlot(lineAddr)
}

// Flush invalidates every line, returning the number of dirty lines written
// back.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.states {
		if c.st(i) == Modified {
			dirty++
		}
		atomic.StoreUint32(&c.states[i], uint32(Invalid))
		c.tags[i] = 0
		c.stamps[i] = 0
		c.priv[i] = 0
	}
	return dirty
}

// Snapshot returns every valid line's coherence state, keyed by line
// address, under the bus-side lock — the raw material for the MESI audit in
// internal/check. Call only when no traffic is in flight.
func (c *Cache) Snapshot() map[uint64]State {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]State)
	for i := range c.states {
		if c.st(i) != Invalid {
			out[c.tags[i]] = c.st(i)
		}
	}
	return out
}

// ForceState overwrites the state of lineAddr if the cache holds it,
// reporting whether it did. It exists so the checker's own tests can corrupt
// MESI state and prove the audit is not vacuously green; simulation code
// must never call it.
func (c *Cache) ForceState(lineAddr uint64, st State) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.st(i) != Invalid {
			atomic.StoreUint32(&c.states[i], uint32(st))
			return true
		}
	}
	return false
}

// Live returns the number of valid lines.
func (c *Cache) Live() int {
	n := 0
	for i := range c.states {
		if c.st(i) != Invalid {
			n++
		}
	}
	return n
}

// Lines returns total capacity in lines.
func (c *Cache) Lines() int { return len(c.states) }
