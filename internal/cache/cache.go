// Package cache implements the set-associative write-back data caches of the
// simulated processors, plus a snooping bus that keeps private caches
// coherent with a MESI protocol (the paper's Opterons keep their private
// 1 MB L2s coherent by snooping over HyperTransport; the Xeon cores share an
// L2 per chip instead).
//
// Caches are owned by one simulated context and are not goroutine-safe. The
// machine layer either partitions shared caches among co-scheduled contexts
// (its default deterministic model) or serialises access through the Bus.
package cache

import (
	"fmt"

	"hugeomp/internal/units"
)

// State is a MESI coherence state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	default:
		return "M"
	}
}

// Config sizes a cache.
type Config struct {
	SizeBytes int64
	Ways      int
	LineSize  int64 // defaults to units.CacheLineSize
}

type line struct {
	tag   uint64
	stamp uint64
	state State
}

// Result reports what an access did.
type Result struct {
	Hit       bool
	Writeback bool // a dirty (Modified) line was evicted
	Evicted   uint64
	HadEvict  bool
}

// Cache is one set-associative write-back LRU cache level.
type Cache struct {
	lines     []line
	assoc     int
	setMask   uint64
	lineShift uint
	tick      uint64

	id  int  // position on the bus, -1 if not attached
	bus *Bus // nil when coherence is disabled
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	ls := cfg.LineSize
	if ls == 0 {
		ls = units.CacheLineSize
	}
	nLines := int(cfg.SizeBytes / ls)
	if nLines <= 0 {
		panic("cache: zero size")
	}
	assoc := cfg.Ways
	if assoc <= 0 || assoc > nLines {
		assoc = nLines
	}
	sets := nLines / assoc
	if sets*assoc != nLines {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", nLines, assoc))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	shift := uint(0)
	for 1<<shift != ls {
		shift++
	}
	return &Cache{
		lines:     make([]line, nLines),
		assoc:     assoc,
		setMask:   uint64(sets - 1),
		lineShift: shift,
		id:        -1,
	}
}

// LineAddr converts a physical address into a line number.
func (c *Cache) LineAddr(pa units.Addr) uint64 { return uint64(pa) >> c.lineShift }

// Access looks up the line containing pa; on a miss it fills the line,
// evicting the set's LRU way. write marks the line dirty (Modified).
// Coherence (if the cache is attached to a Bus) is handled by the caller via
// Bus.Access; this method is the raw, single-owner path.
func (c *Cache) Access(lineAddr uint64, write bool) Result {
	set := lineAddr & c.setMask
	base := int(set) * c.assoc
	for i := 0; i < c.assoc; i++ {
		l := &c.lines[base+i]
		if l.state != Invalid && l.tag == lineAddr {
			c.tick++
			l.stamp = c.tick
			if write {
				l.state = Modified
			}
			return Result{Hit: true}
		}
	}
	// Miss: choose victim.
	victim, oldest := 0, ^uint64(0)
	for i := 0; i < c.assoc; i++ {
		l := &c.lines[base+i]
		if l.state == Invalid {
			victim, oldest = i, 0
			break
		}
		if l.stamp < oldest {
			victim, oldest = i, l.stamp
		}
	}
	l := &c.lines[base+victim]
	res := Result{}
	if l.state != Invalid {
		res.HadEvict = true
		res.Evicted = l.tag
		res.Writeback = l.state == Modified
	}
	c.tick++
	st := Exclusive
	if write {
		st = Modified
	}
	*l = line{tag: lineAddr, stamp: c.tick, state: st}
	return res
}

// Probe reports the state of lineAddr without touching LRU state.
func (c *Cache) Probe(lineAddr uint64) State {
	set := lineAddr & c.setMask
	base := int(set) * c.assoc
	for i := 0; i < c.assoc; i++ {
		l := &c.lines[base+i]
		if l.state != Invalid && l.tag == lineAddr {
			return l.state
		}
	}
	return Invalid
}

func (c *Cache) setState(lineAddr uint64, st State) {
	set := lineAddr & c.setMask
	base := int(set) * c.assoc
	for i := 0; i < c.assoc; i++ {
		l := &c.lines[base+i]
		if l.state != Invalid && l.tag == lineAddr {
			if st == Invalid {
				l.state = Invalid
			} else {
				l.state = st
			}
			return
		}
	}
}

// Flush invalidates every line, returning the number of dirty lines written
// back.
func (c *Cache) Flush() int {
	dirty := 0
	for i := range c.lines {
		if c.lines[i].state == Modified {
			dirty++
		}
		c.lines[i] = line{}
	}
	return dirty
}

// Live returns the number of valid lines.
func (c *Cache) Live() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			n++
		}
	}
	return n
}

// Lines returns total capacity in lines.
func (c *Cache) Lines() int { return len(c.lines) }
