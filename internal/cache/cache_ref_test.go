package cache

import (
	"math/rand"
	"testing"
)

// refCache is the pre-rework timestamp-LRU replacement policy, kept as a
// test oracle for the linked-list scheme: hit/miss outcomes, evictions,
// writebacks and victim choices must be byte-identical for every
// single-owner op sequence, including ones with peer-style invalidations
// and downgrades mixed in.
type refCache struct {
	tags    []uint64
	stamps  []uint64
	states  []State
	assoc   int
	setMask uint64
	tick    uint64
}

func newRefCache(cfg Config) *refCache {
	nLines := int(cfg.SizeBytes / 64)
	assoc := cfg.Ways
	if assoc <= 0 || assoc > nLines {
		assoc = nLines
	}
	return &refCache{
		tags:    make([]uint64, nLines),
		stamps:  make([]uint64, nLines),
		states:  make([]State, nLines),
		assoc:   assoc,
		setMask: uint64(nLines/assoc - 1),
	}
}

func (c *refCache) touch(i int) {
	c.tick++
	c.stamps[i] = c.tick
}

func (c *refCache) access(lineAddr uint64, write bool) Result {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			c.touch(i)
			if write && c.states[i] != Modified {
				c.states[i] = Modified
			}
			return Result{Hit: true}
		}
	}
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+c.assoc; i++ {
		if c.states[i] == Invalid {
			victim = i
			break
		}
		if c.stamps[i] < oldest {
			victim, oldest = i, c.stamps[i]
		}
	}
	res := Result{}
	if c.states[victim] != Invalid {
		res.HadEvict = true
		res.Evicted = c.tags[victim]
		res.Writeback = c.states[victim] == Modified
	}
	st := Exclusive
	if write {
		st = Modified
	}
	c.tags[victim] = lineAddr
	c.touch(victim)
	c.states[victim] = st
	return res
}

func (c *refCache) invalidate(lineAddr uint64) State {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			st := c.states[i]
			c.states[i] = Invalid
			return st
		}
	}
	return Invalid
}

func (c *refCache) downgrade(lineAddr uint64) State {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			st := c.states[i]
			if st != Shared {
				c.states[i] = Shared
			}
			return st
		}
	}
	return Invalid
}

func (c *refCache) probe(lineAddr uint64) State {
	base := int(lineAddr&c.setMask) * c.assoc
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == lineAddr && c.states[i] != Invalid {
			return c.states[i]
		}
	}
	return Invalid
}

func (c *refCache) live() int {
	n := 0
	for i := range c.states {
		if c.states[i] != Invalid {
			n++
		}
	}
	return n
}

func driveCacheEquiv(t *testing.T, cfg Config, ops []byte) {
	t.Helper()
	n := New(cfg)
	r := newRefCache(cfg)
	for k := 0; k+1 < len(ops); k += 2 {
		op, arg := ops[k], ops[k+1]
		line := uint64(arg % 53)
		w := op&0x80 != 0
		switch op % 6 {
		case 0, 1, 2: // access dominates, like real traffic
			nr := n.Access(line, w)
			rr := r.access(line, w)
			if nr != rr {
				t.Fatalf("op %d: access(%d,w=%v) = %+v want %+v", k, line, w, nr, rr)
			}
		case 3: // peer-style invalidation
			if ni, ri := n.invalidate(line), r.invalidate(line); ni != ri {
				t.Fatalf("op %d: invalidate(%d) = %v want %v", k, line, ni, ri)
			}
		case 4: // peer-style downgrade
			if nd, rd := n.downgrade(line), r.downgrade(line); nd != rd {
				t.Fatalf("op %d: downgrade(%d) = %v want %v", k, line, nd, rd)
			}
		case 5:
			if np, rp := n.Probe(line), r.probe(line); np != rp {
				t.Fatalf("op %d: probe(%d) = %v want %v", k, line, np, rp)
			}
		}
		if n.Live() != r.live() {
			t.Fatalf("op %d: live %d want %d", k, n.Live(), r.live())
		}
	}
	// Final full-state comparison.
	for line := uint64(0); line < 64; line++ {
		if np, rp := n.Probe(line), r.probe(line); np != rp {
			t.Fatalf("final: probe(%d) = %v want %v", line, np, rp)
		}
	}
}

// TestLinkedLRUMatchesStampReference pins the linked-list recency scheme to
// the old timestamp policy across random op streams and the associativity
// classes the simulated processors use (2-way Opteron L1, 8/16-way L2s,
// fully associative edge case).
func TestLinkedLRUMatchesStampReference(t *testing.T) {
	cfgs := []Config{
		{SizeBytes: 16 * 64, Ways: 2},
		{SizeBytes: 64 * 64, Ways: 8},
		{SizeBytes: 64 * 64, Ways: 16},
		{SizeBytes: 8 * 64}, // fully associative
		{SizeBytes: 1 * 64, Ways: 1},
	}
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range cfgs {
		for trial := 0; trial < 40; trial++ {
			ops := make([]byte, 500)
			rng.Read(ops)
			driveCacheEquiv(t, cfg, ops)
		}
	}
}

// FuzzLinkedLRUEquivalence is the fuzz-driven version of the same oracle.
func FuzzLinkedLRUEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 0, 17, 6, 1, 128, 17, 3, 17, 0, 17})
	f.Add([]byte{9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		driveCacheEquiv(t, Config{SizeBytes: 16 * 64, Ways: 4}, ops)
		driveCacheEquiv(t, Config{SizeBytes: 8 * 64}, ops)
	})
}
