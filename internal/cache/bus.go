package cache

import "sync"

// busShards is the number of independently locked directory shards. Must be
// a power of two. 64 shards make same-line conflicts the only contended case
// even with every simulated context missing its L2 at once.
const busShards = 64

// busShard is one directory shard: a lock serialising every transaction on
// the lines that hash to it, plus that shard's slice of the transaction
// counters. Padded to a host cache line so neighbouring shards don't false-
// share.
type busShard struct {
	mu sync.Mutex

	readMisses    uint64
	writeMisses   uint64
	invalidations uint64
	interventions uint64
	writebacks    uint64

	_ [16]byte
}

// Bus is a snooping coherence interconnect connecting the private last-level
// caches of the simulated cores (the Opteron keeps its per-core L2s coherent
// by snooping, as the paper describes). It implements an invalidation-based
// MESI protocol:
//
//   - a read miss snoops peers; if any peer holds the line Modified or
//     Exclusive it is downgraded to Shared (a Modified peer writes back), and
//     the requester fills in Shared; otherwise the requester fills Exclusive.
//   - a write (hit-on-Shared or miss) invalidates every peer copy and the
//     requester holds the line Modified.
//
// The directory is sharded by line address: transactions on the same line
// always serialise on one shard lock (which is what keeps the per-line MESI
// invariants), while transactions on different shards proceed concurrently —
// so N simulated contexts missing their L2s at once no longer serialise on a
// single global mutex. Each cache additionally carries its own mutex,
// because a transaction on line X can evict a cache's copy of line Y from a
// different shard; every per-cache operation inside a transaction takes that
// cache's lock (never two at once, so lock order is trivially acyclic:
// shard → one cache).
//
// The default machine model runs with coherence traffic disabled for speed
// (worksharing kernels partition their data); the Bus is exercised by the
// true-sharing ablation and by the SCASH intra-node tests.
type Bus struct {
	mu     sync.Mutex
	caches []*Cache // attach-time only; read-only during traffic

	shards [busShards]busShard
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach registers c on the bus. Attachment happens at machine configuration
// time, strictly before any traffic.
func (b *Bus) Attach(c *Cache) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c.id = len(b.caches)
	c.bus = b
	b.caches = append(b.caches, c)
}

// Access performs a coherent access by cache c to lineAddr. It returns the
// local cache Result plus whether a peer intervention occurred (which the
// cost model charges as a cache-to-cache transfer rather than a memory
// fetch).
func (b *Bus) Access(c *Cache, lineAddr uint64, write bool) (Result, bool) {
	sh := &b.shards[lineAddr&(busShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	intervention := false

	if write {
		// Invalidate all peer copies, then take the line Modified locally.
		for _, p := range b.caches {
			if p == c {
				continue
			}
			switch p.invalidate(lineAddr) {
			case Invalid:
				continue
			case Modified:
				sh.writebacks++
				intervention = true
			case Exclusive:
				intervention = true
			}
			sh.invalidations++
		}
		res := c.lockedAccess(lineAddr, true)
		if !res.Hit {
			sh.writeMisses++
		}
		if intervention {
			sh.interventions++
		}
		return res, intervention
	}

	res := c.lockedAccess(lineAddr, false)
	if res.Hit {
		return res, false
	}
	// Read miss: the line filled Exclusive; snoop peers and downgrade to
	// Shared all round if any other copy exists.
	sh.readMisses++
	shared := false
	for _, p := range b.caches {
		if p == c {
			continue
		}
		switch p.downgrade(lineAddr) {
		case Modified:
			sh.writebacks++
			intervention = true
			shared = true
		case Exclusive:
			intervention = true
			shared = true
		case Shared:
			shared = true
		}
	}
	if shared {
		c.lockedSetState(lineAddr, Shared)
	}
	if intervention {
		sh.interventions++
	}
	return res, intervention
}

// counters sums the per-shard transaction counters.
func (b *Bus) counters() (rm, wm, inv, itv, wb uint64) {
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		rm += sh.readMisses
		wm += sh.writeMisses
		inv += sh.invalidations
		itv += sh.interventions
		wb += sh.writebacks
		sh.mu.Unlock()
	}
	return
}

// ReadMisses returns the total read-miss transactions across all shards.
func (b *Bus) ReadMisses() uint64 { rm, _, _, _, _ := b.counters(); return rm }

// WriteMisses returns the total write-miss transactions.
func (b *Bus) WriteMisses() uint64 { _, wm, _, _, _ := b.counters(); return wm }

// Invalidations returns the total peer copies invalidated.
func (b *Bus) Invalidations() uint64 { _, _, inv, _, _ := b.counters(); return inv }

// Interventions returns the transactions a peer supplied the line for
// (it held the line M or E).
func (b *Bus) Interventions() uint64 { _, _, _, itv, _ := b.counters(); return itv }

// Writebacks returns the dirty peer copies written back by snoops.
func (b *Bus) Writebacks() uint64 { _, _, _, _, wb := b.counters(); return wb }

// Caches returns the caches attached to the bus, for the post-run MESI
// audit in internal/check. Attachment is configuration-time-only, so the
// slice is stable once traffic starts.
func (b *Bus) Caches() []*Cache {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Cache, len(b.caches))
	copy(out, b.caches)
	return out
}

// Owners returns, for tests, the number of caches holding lineAddr in each
// state; MESI requires at most one Modified-or-Exclusive owner and that an
// M/E owner excludes Shared copies.
func (b *Bus) Owners(lineAddr uint64) (m, e, s int) {
	sh := &b.shards[lineAddr&(busShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, p := range b.caches {
		p.mu.Lock()
		switch p.Probe(lineAddr) {
		case Modified:
			m++
		case Exclusive:
			e++
		case Shared:
			s++
		}
		p.mu.Unlock()
	}
	return
}
