package cache

import "sync"

// Bus is a snooping coherence interconnect connecting the private last-level
// caches of the simulated cores (the Opteron keeps its per-core L2s coherent
// by snooping, as the paper describes). It implements an invalidation-based
// MESI protocol:
//
//   - a read miss snoops peers; if any peer holds the line Modified or
//     Exclusive it is downgraded to Shared (a Modified peer writes back), and
//     the requester fills in Shared; otherwise the requester fills Exclusive.
//   - a write (hit-on-Shared or miss) invalidates every peer copy and the
//     requester holds the line Modified.
//
// The Bus serialises transactions with a mutex, which is faithful to a bus
// and keeps the protocol race-free when contexts run as parallel goroutines.
// The default machine model runs with coherence traffic disabled for speed
// (worksharing kernels partition their data); the Bus is exercised by the
// true-sharing ablation and by the SCASH intra-node tests.
type Bus struct {
	mu     sync.Mutex
	caches []*Cache

	// Transaction counters.
	ReadMisses    uint64
	WriteMisses   uint64
	Invalidations uint64
	Interventions uint64 // peer supplied the line (was M or E)
	Writebacks    uint64
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach registers c on the bus.
func (b *Bus) Attach(c *Cache) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c.id = len(b.caches)
	c.bus = b
	b.caches = append(b.caches, c)
}

// Access performs a coherent access by cache c to lineAddr. It returns the
// local cache Result plus whether a peer intervention occurred (which the
// cost model charges as a cache-to-cache transfer rather than a memory
// fetch).
func (b *Bus) Access(c *Cache, lineAddr uint64, write bool) (Result, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()

	hitState := c.Probe(lineAddr)
	intervention := false

	if write {
		// Invalidate all peer copies.
		for _, p := range b.caches {
			if p == c {
				continue
			}
			st := p.Probe(lineAddr)
			if st == Invalid {
				continue
			}
			if st == Modified {
				b.Writebacks++
				intervention = true
			} else if st == Exclusive {
				intervention = true
			}
			p.setState(lineAddr, Invalid)
			b.Invalidations++
		}
		if hitState == Invalid {
			b.WriteMisses++
		}
		res := c.Access(lineAddr, true)
		if intervention {
			b.Interventions++
		}
		return res, intervention
	}

	if hitState != Invalid {
		return c.Access(lineAddr, false), false
	}
	b.ReadMisses++
	shared := false
	for _, p := range b.caches {
		if p == c {
			continue
		}
		switch p.Probe(lineAddr) {
		case Modified:
			b.Writebacks++
			p.setState(lineAddr, Shared)
			intervention = true
			shared = true
		case Exclusive:
			p.setState(lineAddr, Shared)
			intervention = true
			shared = true
		case Shared:
			shared = true
		}
	}
	res := c.Access(lineAddr, false)
	if shared {
		c.setState(lineAddr, Shared)
	}
	if intervention {
		b.Interventions++
	}
	return res, intervention
}

// Owners returns, for tests, the number of caches holding lineAddr in each
// state; MESI requires at most one Modified-or-Exclusive owner and that an
// M/E owner excludes Shared copies.
func (b *Bus) Owners(lineAddr uint64) (m, e, s int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range b.caches {
		switch p.Probe(lineAddr) {
		case Modified:
			m++
		case Exclusive:
			e++
		case Shared:
			s++
		}
	}
	return
}
