package cache

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Directory sharding. The directory is sharded by line *group*: GroupLines
// consecutive lines (one 4 KB page's worth) share a shard, so a coalesced
// run of lines from one page is one shard critical section — the unit of the
// run-level transactions in AccessLines. busShards must be a power of two.
const (
	// GroupShift is log2 of the lines per shard group. 6 → 64 lines = 4 KB,
	// exactly one small page and exactly the lines of one rangeBulk page
	// segment stride.
	GroupShift = 6
	// GroupLines is the number of consecutive line addresses sharing a shard.
	GroupLines = 1 << GroupShift

	busShards = 64
)

// GroupOf returns the shard-group number of a line address; lines with equal
// groups can be batched into one AccessLines transaction.
func GroupOf(lineAddr uint64) uint64 { return lineAddr >> GroupShift }

// shardIndex maps a line address to its directory shard.
func shardIndex(lineAddr uint64) uint64 {
	return (lineAddr >> GroupShift) & (busShards - 1)
}

// busShard is one directory shard: a lock serialising every transaction on
// the line groups that hash to it, plus the shard's cross-cache transition
// generation. xgen is bumped (under the shard lock, before the peer line is
// mutated) whenever a transaction transitions a line held by *another*
// cache — invalidations and downgrades. A cache that filled a line private
// (Exclusive) remembers the generation it saw; as long as the generation is
// unchanged, no peer can have gained a copy of any line in the shard, so the
// owner may promote E→M without touching the bus (see Cache.FastAccess).
// Partitioned workloads never transition remote copies, so their stamps stay
// valid for the whole run. Padded to a host cache line so neighbouring
// shards don't false-share (layout checked by simlint's padding analyzer).
//
//simlint:padded
type busShard struct {
	mu   sync.Mutex
	xgen atomic.Uint64
	_    [64 - unsafe.Sizeof(sync.Mutex{}) - unsafe.Sizeof(atomic.Uint64{})]byte
}

// txnCounters is one cache's shard of the bus transaction counters. Each
// requester counts its own transactions in its own block — written only from
// that cache's transactions (which its per-context goroutine, or l2Mu for a
// truly shared L2, already serialises) — so the hot path never contends on a
// shared counter word. Blocks are read back merged, in deterministic attach
// order, by the Bus counter accessors; merge only at quiescent points.
// Padded to a host cache line against false sharing between neighbours
// (layout checked by simlint's padding analyzer).
//
//simlint:padded
type txnCounters struct {
	readMisses    uint64
	writeMisses   uint64
	invalidations uint64
	interventions uint64
	writebacks    uint64
	_             [24]byte
}

// LineTxn is the per-line outcome of a batched AccessLines transaction.
type LineTxn struct {
	Hit          bool // local hit (no fill needed)
	Intervention bool // a peer supplied the line (held it M or E)

	shared bool // some peer retains a copy (read path bookkeeping)
}

// Bus is a snooping coherence interconnect connecting the private last-level
// caches of the simulated cores (the Opteron keeps its per-core L2s coherent
// by snooping, as the paper describes). It implements an invalidation-based
// MESI protocol:
//
//   - a read miss snoops peers; if any peer holds the line Modified or
//     Exclusive it is downgraded to Shared (a Modified peer writes back), and
//     the requester fills in Shared; otherwise the requester fills Exclusive.
//   - a write (hit-on-Shared or miss) invalidates every peer copy and the
//     requester holds the line Modified.
//
// The directory is sharded by line group: transactions on the same line
// always serialise on one shard lock (which is what keeps the per-line MESI
// invariants), while transactions on different shards proceed concurrently —
// so N simulated contexts missing their L2s at once no longer serialise on a
// single global mutex. Each cache additionally carries its own mutex,
// because a transaction on line X can evict a cache's copy of line Y from a
// different shard; every per-cache operation inside a transaction takes that
// cache's lock (never two at once, so lock order is trivially acyclic:
// shard → one cache).
//
// The default machine model runs with coherence traffic disabled for speed
// (worksharing kernels partition their data); the Bus is exercised by the
// true-sharing ablation and by the SCASH intra-node tests.
type Bus struct {
	mu     sync.Mutex
	caches []*Cache // attach-time only; read-only during traffic

	// ctrs[i] is the padded transaction-counter block of the cache attached
	// with id i. Same indexing as caches.
	ctrs []*txnCounters

	shards [busShards]busShard
}

// NewBus creates an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach registers c on the bus. Attachment happens at machine configuration
// time, strictly before any traffic.
func (b *Bus) Attach(c *Cache) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c.id = len(b.caches)
	c.bus = b
	b.caches = append(b.caches, c)
	b.ctrs = append(b.ctrs, &txnCounters{})
}

// shard returns the directory shard owning lineAddr.
func (b *Bus) shard(lineAddr uint64) *busShard {
	return &b.shards[shardIndex(lineAddr)]
}

// bumper bumps the shard generation at most once per transaction, and only
// when the transaction actually transitions a line held by another cache.
// New copies of a shard's lines cannot appear while the shard lock is held
// (fills go through the same lock), so a transaction that finds no peer
// copies correctly leaves the generation — and every private-line stamp —
// intact; that is what keeps partitioned workloads on the fast path forever.
// Soundness does not depend on bump/transition ordering: the stamp is a
// conservative filter, and the owner-side E→M promotion it gates is a CAS
// that loses to any racing peer transition.
type bumper struct {
	sh     *busShard
	bumped bool
}

func (bp *bumper) bump() {
	if !bp.bumped {
		bp.sh.xgen.Add(1)
		bp.bumped = true
	}
}

// Access performs a coherent access by cache c to lineAddr. It returns the
// local cache Result plus whether a peer intervention occurred (which the
// cost model charges as a cache-to-cache transfer rather than a memory
// fetch).
func (b *Bus) Access(c *Cache, lineAddr uint64, write bool) (Result, bool) {
	sh := b.shard(lineAddr)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	ctr := b.ctrs[c.id]
	bp := bumper{sh: sh}
	intervention := false

	if write {
		// Invalidate all peer copies, then take the line Modified locally.
		for _, p := range b.caches {
			if p == c {
				continue
			}
			switch p.invalidate(lineAddr) {
			case Invalid:
				continue
			case Modified:
				ctr.writebacks++
				intervention = true
			case Exclusive:
				intervention = true
			}
			bp.bump()
			ctr.invalidations++
		}
		res := c.lockedAccess(lineAddr, true)
		if !res.Hit {
			ctr.writeMisses++
		}
		if intervention {
			ctr.interventions++
		}
		return res, intervention
	}

	res := c.lockedAccess(lineAddr, false)
	if res.Hit {
		return res, false
	}
	// Read miss: the line filled Exclusive; snoop peers and downgrade to
	// Shared all round if any other copy exists.
	ctr.readMisses++
	shared := false
	for _, p := range b.caches {
		if p == c {
			continue
		}
		switch p.downgrade(lineAddr) {
		case Modified:
			ctr.writebacks++
			intervention = true
			shared = true
			bp.bump()
		case Exclusive:
			intervention = true
			shared = true
			bp.bump()
		case Shared:
			shared = true
		}
	}
	if shared {
		c.lockedSetState(lineAddr, Shared)
	} else {
		// Line filled private (Exclusive): arm the lock-free E→M promotion.
		c.mu.Lock()
		c.stampPrivate(lineAddr, sh.xgen.Load())
		c.mu.Unlock()
	}
	if intervention {
		ctr.interventions++
	}
	return res, intervention
}

// AccessLines performs one coherent transaction for a whole run of lines by
// cache c: a single shard critical section, and a single acquisition of each
// peer's (and the requester's) mutex for the entire run, instead of one
// shard+cache lock round-trip per line. out[i] receives the outcome for
// lines[i].
//
// Contract: len(out) >= len(lines); all lines are distinct and belong to one
// shard group (GroupOf equal — the machine layer flushes its batch at group
// boundaries). The per-line MESI transitions, private-line stamps and
// counter increments are exactly those of calling Access once per line in
// order; the machine layer additionally requires the requester cache to have
// at least GroupLines sets so the lines of a group occupy distinct sets and
// batching cannot reorder victim selection.
func (b *Bus) AccessLines(c *Cache, lines []uint64, write bool, out []LineTxn) {
	if len(lines) == 0 {
		return
	}
	sh := b.shard(lines[0])
	sh.mu.Lock()
	defer sh.mu.Unlock()

	ctr := b.ctrs[c.id]
	bp := bumper{sh: sh}
	for i := range lines {
		out[i] = LineTxn{}
	}

	if write {
		var inv, wb uint64
		for _, p := range b.caches {
			if p == c {
				continue
			}
			p.mu.Lock()
			for i, ln := range lines {
				switch p.invalidateSlot(ln) {
				case Invalid:
					continue
				case Modified:
					wb++
					out[i].Intervention = true
				case Exclusive:
					out[i].Intervention = true
				}
				bp.bump()
				inv++
			}
			p.mu.Unlock()
		}
		c.mu.Lock()
		for i, ln := range lines {
			res := c.Access(ln, true)
			out[i].Hit = res.Hit
			if !res.Hit {
				ctr.writeMisses++
			}
			if out[i].Intervention {
				ctr.interventions++
			}
		}
		c.mu.Unlock()
		ctr.invalidations += inv
		ctr.writebacks += wb
		return
	}

	// Read run: local lookups first, then snoop peers for the missed lines,
	// then settle the fills' final states.
	c.mu.Lock()
	for i, ln := range lines {
		out[i].Hit = c.Access(ln, false).Hit
	}
	c.mu.Unlock()
	var wb uint64
	for _, p := range b.caches {
		if p == c {
			continue
		}
		p.mu.Lock()
		for i, ln := range lines {
			if out[i].Hit {
				continue
			}
			switch p.downgradeSlot(ln) {
			case Modified:
				wb++
				out[i].Intervention = true
				out[i].shared = true
				bp.bump()
			case Exclusive:
				out[i].Intervention = true
				out[i].shared = true
				bp.bump()
			case Shared:
				out[i].shared = true
			}
		}
		p.mu.Unlock()
	}
	c.mu.Lock()
	gen := sh.xgen.Load()
	for i, ln := range lines {
		if out[i].Hit {
			continue
		}
		ctr.readMisses++
		if out[i].shared {
			c.setState(ln, Shared)
		} else {
			c.stampPrivate(ln, gen)
		}
		if out[i].Intervention {
			ctr.interventions++
		}
	}
	c.mu.Unlock()
	ctr.writebacks += wb
}

// counters merges the per-cache transaction-counter blocks in deterministic
// attach order. Only meaningful at quiescent points (no traffic in flight) —
// which is when the audits and reports run.
func (b *Bus) counters() (rm, wm, inv, itv, wb uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ctr := range b.ctrs {
		rm += ctr.readMisses
		wm += ctr.writeMisses
		inv += ctr.invalidations
		itv += ctr.interventions
		wb += ctr.writebacks
	}
	return
}

// ReadMisses returns the total read-miss transactions across all caches.
func (b *Bus) ReadMisses() uint64 { rm, _, _, _, _ := b.counters(); return rm }

// WriteMisses returns the total write-miss transactions.
func (b *Bus) WriteMisses() uint64 { _, wm, _, _, _ := b.counters(); return wm }

// Invalidations returns the total peer copies invalidated.
func (b *Bus) Invalidations() uint64 { _, _, inv, _, _ := b.counters(); return inv }

// Interventions returns the transactions a peer supplied the line for
// (it held the line M or E).
func (b *Bus) Interventions() uint64 { _, _, _, itv, _ := b.counters(); return itv }

// Writebacks returns the dirty peer copies written back by snoops.
func (b *Bus) Writebacks() uint64 { _, _, _, _, wb := b.counters(); return wb }

// Caches returns the caches attached to the bus, for the post-run MESI
// audit in internal/check. Attachment is configuration-time-only, so the
// slice is stable once traffic starts.
func (b *Bus) Caches() []*Cache {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Cache, len(b.caches))
	copy(out, b.caches)
	return out
}

// Owners returns, for tests, the number of caches holding lineAddr in each
// state; MESI requires at most one Modified-or-Exclusive owner and that an
// M/E owner excludes Shared copies.
func (b *Bus) Owners(lineAddr uint64) (m, e, s int) {
	sh := b.shard(lineAddr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, p := range b.caches {
		p.mu.Lock()
		switch p.Probe(lineAddr) {
		case Modified:
			m++
		case Exclusive:
			e++
		case Shared:
			s++
		}
		p.mu.Unlock()
	}
	return
}
