// Package units defines the elementary types shared by every layer of the
// simulator: virtual addresses, cycle counts, page sizes and byte-size
// formatting. Keeping these in one dependency-free package lets the
// hardware-model packages (tlb, cache, pagetable, machine) agree on
// representations without import cycles.
package units

import "fmt"

// Addr is a 64-bit virtual or physical address.
type Addr uint64

// Cycles counts simulated processor clock cycles.
type Cycles uint64

// Byte size constants.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// Page sizes supported by the simulated processors, matching the paper:
// traditional 4 KB pages and 2 MB large ("huge") pages.
const (
	PageSize4K int64 = 4 * KB
	PageSize2M int64 = 2 * MB

	PageShift4K = 12
	PageShift2M = 21
)

// CacheLineSize is the line size of every simulated cache (both the 2007-era
// Opteron and Xeon used 64-byte lines).
const CacheLineSize int64 = 64

// PageSize enumerates the two page-size classes.
type PageSize uint8

const (
	Size4K PageSize = iota
	Size2M
	numPageSizes
)

// NumPageSizes is the number of page-size classes (for sizing per-class
// arrays such as split TLBs).
const NumPageSizes = int(numPageSizes)

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() int64 {
	if s == Size2M {
		return PageSize2M
	}
	return PageSize4K
}

// Shift returns log2 of the page size.
func (s PageSize) Shift() uint {
	if s == Size2M {
		return PageShift2M
	}
	return PageShift4K
}

// Mask returns the offset mask within a page of this size.
func (s PageSize) Mask() Addr { return Addr(s.Bytes() - 1) }

// VPN returns the virtual page number of va under this page size.
func (s PageSize) VPN(va Addr) uint64 { return uint64(va) >> s.Shift() }

// Base returns the page-aligned base of va under this page size.
func (s PageSize) Base(va Addr) Addr { return va &^ s.Mask() }

// String implements fmt.Stringer.
func (s PageSize) String() string {
	if s == Size2M {
		return "2MB"
	}
	return "4KB"
}

// HumanBytes renders n as a compact human-readable byte count, e.g. "512KB",
// "64MB", "2.4GB". It is used by the Table 1 / Table 2 reproductions.
func HumanBytes(n int64) string {
	switch {
	case n >= GB:
		if n%GB == 0 {
			return fmt.Sprintf("%dGB", n/GB)
		}
		return fmt.Sprintf("%.1fGB", float64(n)/float64(GB))
	case n >= MB:
		if n%MB == 0 {
			return fmt.Sprintf("%dMB", n/MB)
		}
		return fmt.Sprintf("%.1fMB", float64(n)/float64(MB))
	case n >= KB:
		if n%KB == 0 {
			return fmt.Sprintf("%dKB", n/KB)
		}
		return fmt.Sprintf("%.1fKB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ParseBytes parses a human byte count — the inverse of HumanBytes and the
// format of every size-taking command-line flag: "512MB", "2gb", "64K", a
// trailing "B"/"iB" optional and case ignored, a bare number meaning bytes.
// Fractions are accepted ("1.5GB"); negatives are not.
func ParseBytes(s string) (int64, error) {
	t := s
	for len(t) > 0 {
		c := t[len(t)-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		t = t[:len(t)-1]
	}
	num, suffix := t, s[len(t):]
	mult := int64(1)
	switch {
	case suffix == "" || eqFold(suffix, "B"):
	case eqFold(suffix, "K") || eqFold(suffix, "KB") || eqFold(suffix, "KiB"):
		mult = KB
	case eqFold(suffix, "M") || eqFold(suffix, "MB") || eqFold(suffix, "MiB"):
		mult = MB
	case eqFold(suffix, "G") || eqFold(suffix, "GB") || eqFold(suffix, "GiB"):
		mult = GB
	default:
		return 0, fmt.Errorf("units: bad byte size %q", s)
	}
	if num == "" {
		return 0, fmt.Errorf("units: bad byte size %q", s)
	}
	var f float64
	if _, err := fmt.Sscanf(num+"\n", "%g\n", &f); err != nil || f < 0 {
		return 0, fmt.Errorf("units: bad byte size %q", s)
	}
	return int64(f * float64(mult)), nil
}

func eqFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca >= 'A' && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if cb >= 'A' && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// AlignUp rounds n up to the next multiple of align (a power of two).
func AlignUp(n int64, align int64) int64 {
	return (n + align - 1) &^ (align - 1)
}

// AlignUpAddr rounds a up to the next multiple of align (a power of two).
func AlignUpAddr(a Addr, align int64) Addr {
	return Addr(AlignUp(int64(a), align))
}
