package units

import (
	"testing"
	"testing/quick"
)

func TestPageSizeBytes(t *testing.T) {
	if Size4K.Bytes() != 4096 {
		t.Errorf("Size4K.Bytes() = %d, want 4096", Size4K.Bytes())
	}
	if Size2M.Bytes() != 2*1024*1024 {
		t.Errorf("Size2M.Bytes() = %d, want 2MiB", Size2M.Bytes())
	}
	if Size4K.Shift() != 12 || Size2M.Shift() != 21 {
		t.Errorf("shifts = %d,%d want 12,21", Size4K.Shift(), Size2M.Shift())
	}
}

func TestPageSizeString(t *testing.T) {
	if Size4K.String() != "4KB" || Size2M.String() != "2MB" {
		t.Errorf("strings: %s %s", Size4K, Size2M)
	}
}

func TestVPNBaseConsistency(t *testing.T) {
	// Property: for any address and size, Base(va) <= va < Base(va)+Bytes,
	// and VPN is Base/Bytes.
	f := func(raw uint64) bool {
		va := Addr(raw)
		for _, s := range []PageSize{Size4K, Size2M} {
			base := s.Base(va)
			if base > va || uint64(va)-uint64(base) >= uint64(s.Bytes()) {
				return false
			}
			if s.VPN(va) != uint64(base)/uint64(s.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{4 * KB, "4KB"},
		{512 * KB, "512KB"},
		{64 * MB, "64MB"},
		{2 * GB, "2GB"},
		{GB*2 + GB*4/10, "2.4GB"},
		{1536 * KB, "1.5MB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestAlignUp(t *testing.T) {
	if AlignUp(1, 4096) != 4096 {
		t.Error("AlignUp(1,4096)")
	}
	if AlignUp(4096, 4096) != 4096 {
		t.Error("AlignUp(4096,4096)")
	}
	if AlignUp(0, 4096) != 0 {
		t.Error("AlignUp(0,4096)")
	}
	f := func(raw uint32) bool {
		n := int64(raw)
		a := AlignUp(n, PageSize2M)
		return a >= n && a%PageSize2M == 0 && a-n < PageSize2M
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseBytes(t *testing.T) {
	good := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"123", 123},
		{"64B", 64},
		{"512KB", 512 * KB},
		{"512kb", 512 * KB},
		{"64K", 64 * KB},
		{"2MB", 2 * MB},
		{"2MiB", 2 * MB},
		{"1.5GB", GB + GB/2},
		{"2g", 2 * GB},
	}
	for _, c := range good {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, in := range []string{"", "MB", "-1KB", "12XB", "1a2", "1..5MB"} {
		if got, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", in, got)
		}
	}
	// Round trip with HumanBytes for exact multiples.
	for _, n := range []int64{64, 4 * KB, 512 * KB, 2 * MB, 3 * GB} {
		got, err := ParseBytes(HumanBytes(n))
		if err != nil || got != n {
			t.Errorf("ParseBytes(HumanBytes(%d)) = %d, %v", n, got, err)
		}
	}
}
