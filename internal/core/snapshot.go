package core

import "sync"

// Fork returns an independent copy of the assembled system: physical memory,
// page table (copy-on-write — PGD entries are aliased and privatized on
// first mutation, so the fork is O(metadata), not O(mapped pages)), the
// hugetlbfs mount, both SCASH spaces, the THP manager and the machine. The
// fork is the warm-construction replacement for NewSystem + kernel Setup:
// calling NewRT on it configures fresh (cold) hardware contexts exactly as a
// cold-built system would, so a forked run's counters are bit-identical to a
// cold run's while skipping the expensive address-space construction.
//
// Fault plans are not re-armed on the fork: injected faults fire during
// construction (hugetlbfs reservation, page mapping), which the fork skips
// by definition, so faulted configs must take the cold path. The THP
// shootdown hook and OnFault handlers are re-wired by NewRT as usual.
func (s *System) Fork() *System {
	pt := s.PT.Fork()
	ns := &System{
		Cfg:       s.Cfg,
		Phys:      s.Phys.Fork(),
		PT:        pt,
		Machine:   s.Machine.Fork(pt),
		Degraded:  s.Degraded,
		codeAlloc: s.codeAlloc.Fork(),
		codeUsed:  s.codeUsed,
	}
	ns.Cfg.Fault = nil
	if s.FS != nil {
		ns.FS = s.FS.Fork(ns.Phys)
	}
	if s.space4K != nil {
		ns.space4K = s.space4K.Fork()
	}
	if s.space2M != nil {
		ns.space2M = s.space2M.Fork()
	}
	if s.THP != nil {
		ns.THP = s.THP.Fork(ns.Phys, pt)
	}
	return ns
}

// Snapshot freezes a fully constructed (and typically sealed) system as an
// immutable template. The capture forks once, so the parent may keep running
// or be discarded; the frozen copy itself is never simulated on. Fork then
// stamps out independent systems, safely from concurrent goroutines (the
// sweep driver forks under internal/par).
type Snapshot struct {
	mu     sync.Mutex
	frozen *System
}

// Snapshot captures the system. Call after Setup/Seal, before NewRT, at a
// quiescent point.
func (s *System) Snapshot() *Snapshot {
	return &Snapshot{frozen: s.Fork()}
}

// Fork stamps out an independent system from the frozen template.
func (sn *Snapshot) Fork() *System {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.frozen.Fork()
}
