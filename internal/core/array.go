package core

import (
	"fmt"

	"hugeomp/internal/machine"
	"hugeomp/internal/units"
)

// Array is a shared global array of float64: real values live in Data (so
// kernels compute real results), while Base anchors the array in the
// simulated address space (so every access exercises the TLB/cache model).
type Array struct {
	Name string
	Base units.Addr
	Data []float64
}

// NewArray registers a float64 global of n elements under the page policy.
func (s *System) NewArray(name string, n int) (*Array, error) {
	sym, err := s.Global(name, int64(n)*8)
	if err != nil {
		return nil, err
	}
	return &Array{Name: name, Base: sym.Base, Data: make([]float64, n)}, nil
}

// MustArray is NewArray that panics on failure (setup-time convenience).
func (s *System) MustArray(name string, n int) *Array {
	a, err := s.NewArray(name, n)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return a
}

// Len returns the element count.
func (a *Array) Len() int { return len(a.Data) }

// Addr returns the simulated address of element i.
func (a *Array) Addr(i int) units.Addr { return a.Base + units.Addr(i*8) }

// Load reads element i through the simulated memory system.
func (a *Array) Load(c *machine.Context, i int) float64 {
	c.Load(a.Addr(i))
	return a.Data[i]
}

// Store writes element i through the simulated memory system.
func (a *Array) Store(c *machine.Context, i int, v float64) {
	c.Store(a.Addr(i))
	a.Data[i] = v
}

// LoadRange simulates reading elements [lo, hi) sequentially (unit stride).
// The caller computes on a.Data[lo:hi] directly.
func (a *Array) LoadRange(c *machine.Context, lo, hi int) {
	c.AccessRange(a.Addr(lo), hi-lo, 8, false)
}

// StoreRange simulates writing elements [lo, hi) sequentially.
func (a *Array) StoreRange(c *machine.Context, lo, hi int) {
	c.AccessRange(a.Addr(lo), hi-lo, 8, true)
}

// LoadStride simulates count reads starting at element start with a stride
// of strideElems elements.
func (a *Array) LoadStride(c *machine.Context, start, count, strideElems int) {
	c.AccessRange(a.Addr(start), count, int64(strideElems)*8, false)
}

// StoreStride simulates count writes starting at element start with a
// stride of strideElems elements.
func (a *Array) StoreStride(c *machine.Context, start, count, strideElems int) {
	c.AccessRange(a.Addr(start), count, int64(strideElems)*8, true)
}

// Gather simulates reading elements a[idx[j]] for every j — the indexed
// access pattern of sparse kernels — through the bulk GatherRange fast path
// (one translation per touched page, one cache probe per line run). idx is
// never mutated; the caller computes on a.Data[idx[j]] directly.
func (a *Array) Gather(c *machine.Context, idx []int64) {
	c.GatherRange(a.Base, 8, idx)
}

// Scatter simulates writing elements a[idx[j]] for every j (the write-side
// dual of Gather, e.g. a permutation store).
func (a *Array) Scatter(c *machine.Context, idx []int64) {
	c.ScatterRange(a.Base, 8, idx)
}

// Fork returns a privately writable copy of the array for a forked run: the
// simulated placement (Name, Base) is preserved and Data is deep-copied.
// Arrays a kernel only reads during Run don't need forking — forked runs
// share them read-only (the copy-on-write discipline of the snapshot layer:
// static inputs alias, mutable state privatizes).
func (a *Array) Fork() *Array {
	if a == nil {
		return nil
	}
	return &Array{Name: a.Name, Base: a.Base, Data: append([]float64(nil), a.Data...)}
}

// Ints is a shared global array of int64 (index arrays of the CG kernel).
type Ints struct {
	Name string
	Base units.Addr
	Data []int64
}

// NewInts registers an int64 global of n elements under the page policy.
func (s *System) NewInts(name string, n int) (*Ints, error) {
	sym, err := s.Global(name, int64(n)*8)
	if err != nil {
		return nil, err
	}
	return &Ints{Name: name, Base: sym.Base, Data: make([]int64, n)}, nil
}

// MustInts is NewInts that panics on failure.
func (s *System) MustInts(name string, n int) *Ints {
	a, err := s.NewInts(name, n)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return a
}

// Len returns the element count.
func (a *Ints) Len() int { return len(a.Data) }

// Addr returns the simulated address of element i.
func (a *Ints) Addr(i int) units.Addr { return a.Base + units.Addr(i*8) }

// Load reads element i through the simulated memory system.
func (a *Ints) Load(c *machine.Context, i int) int64 {
	c.Load(a.Addr(i))
	return a.Data[i]
}

// Store writes element i through the simulated memory system.
func (a *Ints) Store(c *machine.Context, i int, v int64) {
	c.Store(a.Addr(i))
	a.Data[i] = v
}

// LoadRange simulates reading elements [lo, hi) sequentially.
func (a *Ints) LoadRange(c *machine.Context, lo, hi int) {
	c.AccessRange(a.Addr(lo), hi-lo, 8, false)
}

// Fork returns a privately writable copy (see Array.Fork).
func (a *Ints) Fork() *Ints {
	if a == nil {
		return nil
	}
	return &Ints{Name: a.Name, Base: a.Base, Data: append([]int64(nil), a.Data...)}
}
