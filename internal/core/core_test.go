package core

import (
	"testing"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
	"hugeomp/internal/units"
)

func sys(t *testing.T, policy PagePolicy) *System {
	t.Helper()
	s, err := NewSystem(Config{
		Model:       machine.Opteron270(),
		Policy:      policy,
		PhysBytes:   1 * units.GB,
		SharedBytes: 64 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPolicy4KBacking(t *testing.T) {
	s := sys(t, Policy4K)
	a := s.MustArray("x", 1024)
	wr, err := s.PT.Translate(a.Base)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size4K {
		t.Errorf("4K policy backed by %v", wr.Entry.Size)
	}
	if s.FS != nil {
		t.Error("4K policy mounted hugetlbfs")
	}
}

func TestPolicy2MBackingAndPreallocation(t *testing.T) {
	s := sys(t, Policy2M)
	if s.FS == nil {
		t.Fatal("2M policy needs hugetlbfs")
	}
	// Preallocation: the whole pool is reserved before any allocation.
	if got := s.Phys.Used2M(); got < 32 {
		t.Errorf("pool reserved %d large frames, want >= 32 (64MB)", got)
	}
	a := s.MustArray("x", 1024)
	wr, err := s.PT.Translate(a.Base)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size2M {
		t.Errorf("2M policy backed by %v", wr.Entry.Size)
	}
}

func TestPolicyMixedSplitsBySize(t *testing.T) {
	s := sys(t, PolicyMixed)
	small := s.MustArray("small", 128)                 // 1KB -> 4K space
	big := s.MustArray("big", int(MixedThreshold/8)+1) // >= threshold -> 2M space
	if ws, _ := s.PT.Translate(small.Base); ws.Entry.Size != units.Size4K {
		t.Errorf("small allocation backed by %v", ws.Entry.Size)
	}
	if wb, _ := s.PT.Translate(big.Base); wb.Entry.Size != units.Size2M {
		t.Errorf("big allocation backed by %v", wb.Entry.Size)
	}
	if s.DataPageSize(1) != units.Size4K || s.DataPageSize(MixedThreshold) != units.Size2M {
		t.Error("DataPageSize policy wrong")
	}
}

func TestArrayLoadStoreSimulates(t *testing.T) {
	s := sys(t, Policy4K)
	rt, err := s.NewRT(1)
	if err != nil {
		t.Fatal(err)
	}
	a := s.MustArray("v", 100)
	c := rt.Contexts()[0]
	a.Store(c, 3, 42.5)
	if got := a.Load(c, 3); got != 42.5 {
		t.Errorf("Load = %v", got)
	}
	if c.Ctr.Loads != 1 || c.Ctr.Stores != 1 {
		t.Errorf("counters: %d loads %d stores", c.Ctr.Loads, c.Ctr.Stores)
	}
}

func TestIntsRoundTrip(t *testing.T) {
	s := sys(t, Policy4K)
	rt, _ := s.NewRT(1)
	ix := s.MustInts("idx", 10)
	c := rt.Contexts()[0]
	ix.Store(c, 7, -5)
	if got := ix.Load(c, 7); got != -5 {
		t.Errorf("Ints.Load = %d", got)
	}
	if ix.Len() != 10 {
		t.Error("Len")
	}
}

func TestFootprintAccounting(t *testing.T) {
	s := sys(t, Policy2M)
	s.MustArray("a", 1<<20) // 8MB
	if got := s.DataFootprint(); got != 8*units.MB {
		t.Errorf("data footprint = %s", units.HumanBytes(got))
	}
	if _, err := s.NewCodeRegion("main", 100*units.KB); err != nil {
		t.Fatal(err)
	}
	if got := s.InstrFootprint(); got != units.AlignUp(100*units.KB, units.PageSize4K) {
		t.Errorf("instr footprint = %s", units.HumanBytes(got))
	}
}

func TestSealStopsGlobals(t *testing.T) {
	s := sys(t, PolicyMixed)
	s.Seal()
	if _, err := s.NewArray("late", 8); err == nil {
		t.Error("NewArray after Seal should fail")
	}
	// Dynamic allocation still allowed.
	if _, err := s.Malloc(4096); err != nil {
		t.Errorf("Malloc after seal: %v", err)
	}
}

func TestPoolExhaustionSurfacesAsError(t *testing.T) {
	s, err := NewSystem(Config{
		Model:       machine.Opteron270(),
		Policy:      Policy2M,
		PhysBytes:   256 * units.MB,
		SharedBytes: 8 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewArray("toobig", int(16*units.MB/8)); err == nil {
		t.Error("allocation beyond the preallocated pool should fail")
	}
}

func TestHintPrimedByPolicy(t *testing.T) {
	s := sys(t, Policy2M)
	rt, err := s.NewRT(2)
	if err != nil {
		t.Fatal(err)
	}
	a := s.MustArray("x", 4096)
	// A cold access works and is attributed to the 2M class.
	c := rt.Contexts()[0]
	a.Load(c, 0)
	if c.Ctr.DTLBWalks2M != 1 || c.Ctr.DTLBWalks4K != 0 {
		t.Errorf("walks 2M=%d 4K=%d", c.Ctr.DTLBWalks2M, c.Ctr.DTLBWalks4K)
	}
}

func TestEndToEndParallelSum(t *testing.T) {
	// The paper's Algorithm 3.1: parallel sum of a large array, on both
	// page policies; results identical, 2MB never slower.
	run := func(policy PagePolicy) (float64, uint64, uint64) {
		s := sys(t, policy)
		rt, err := s.NewRT(4)
		if err != nil {
			t.Fatal(err)
		}
		const n = 1 << 18 // 2MB of data
		arr := s.MustArray("array", n)
		for i := range arr.Data {
			arr.Data[i] = float64(i % 7)
		}
		sum := rt.ParallelForReduce(nil, n, omp.For{Schedule: omp.Static}, 0,
			func(tid int, c *machine.Context, lo, hi int) float64 {
				arr.LoadRange(c, lo, hi)
				p := 0.0
				for i := lo; i < hi; i++ {
					p += arr.Data[i]
				}
				return p
			}, func(x, y float64) float64 { return x + y })
		total := rt.TotalCounters()
		return sum, rt.WallCycles(), total.DTLBWalks()
	}
	sum4, wall4, walks4 := run(Policy4K)
	sum2, wall2, walks2 := run(Policy2M)
	if sum4 != sum2 {
		t.Errorf("results differ: %v vs %v", sum4, sum2)
	}
	if walks2 >= walks4 {
		t.Errorf("2M walks %d >= 4K walks %d", walks2, walks4)
	}
	if wall2 > wall4 {
		t.Errorf("2M wall %d > 4K wall %d", wall2, wall4)
	}
}

func TestPolicyTransparentPromotes(t *testing.T) {
	s, err := NewSystem(Config{
		Model:       machine.Opteron270(),
		Policy:      PolicyTransparent,
		PhysBytes:   1 * units.GB,
		SharedBytes: 64 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.THP == nil {
		t.Fatal("transparent policy needs a THP manager")
	}
	const n = 1 << 19 // 4MB
	arr := s.MustArray("x", n)
	rt, err := s.NewRT(2)
	if err != nil {
		t.Fatal(err)
	}
	c := rt.Contexts()[0]
	// First pass demand-faults everything; reservations promote to 2MB.
	arr.StoreRange(c, 0, n)
	if c.Ctr.SoftFaults == 0 {
		t.Error("no demand-paging faults recorded")
	}
	if s.THP.Stats.Promotions == 0 {
		t.Error("no chunks promoted despite full population")
	}
	// Second pass translates through 2MB mappings.
	before2M := c.Ctr.DTLBWalks2M
	c.FlushTLBs()
	arr.LoadRange(c, 0, n)
	if c.Ctr.DTLBWalks2M <= before2M {
		t.Error("post-promotion walks are not using 2MB mappings")
	}
	if got := s.THP.PromotedBytes(); got < 4*units.MB {
		t.Errorf("promoted bytes = %s", units.HumanBytes(got))
	}
}

func TestPolicyTransparentSharedAcrossThreads(t *testing.T) {
	s, err := NewSystem(Config{
		Model:       machine.Opteron270(),
		Policy:      PolicyTransparent,
		PhysBytes:   512 * units.MB,
		SharedBytes: 32 * units.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr := s.MustArray("y", 1<<18)
	rt, err := s.NewRT(4)
	if err != nil {
		t.Fatal(err)
	}
	rt.ParallelFor(nil, arr.Len(), omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			arr.StoreRange(c, lo, hi)
			for i := lo; i < hi; i++ {
				arr.Data[i] = float64(tid)
			}
		})
	// All threads faulted concurrently; mappings must be consistent.
	wr, err := s.PT.Translate(arr.Base)
	if err != nil {
		t.Fatalf("unmapped after parallel first touch: %v", err)
	}
	_ = wr
	total := rt.TotalCounters()
	if total.SoftFaults == 0 {
		t.Error("no faults recorded")
	}
}

func TestInjectedReserveFailureDegradesTo4K(t *testing.T) {
	plan := faultinject.New(0x5eed)
	plan.Enable(faultinject.SiteHugetlbReserve, 1) // every reservation fails
	s, err := NewSystem(Config{
		Model:       machine.Opteron270(),
		Policy:      Policy2M,
		PhysBytes:   1 * units.GB,
		SharedBytes: 64 * units.MB,
		Fault:       plan,
	})
	if err != nil {
		t.Fatalf("reservation failure must degrade, not fail: %v", err)
	}
	if !s.Degraded {
		t.Fatal("system not marked Degraded")
	}
	if s.FS != nil {
		t.Error("degraded system kept a hugetlbfs mount")
	}
	// The region is alive at the same base, on 4 KB pages.
	a := s.MustArray("x", 1024)
	if a.Base < HugeBase {
		t.Errorf("degraded array at %#x, below HugeBase", a.Base)
	}
	wr, err := s.PT.Translate(a.Base)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size4K {
		t.Errorf("degraded backing is %s, want 4KB", wr.Entry.Size)
	}
	if got := s.OSCounters().HugePageFallbacks; got != 1 {
		t.Errorf("HugePageFallbacks = %d, want 1", got)
	}
	if s.DataPageSize(1*units.MB) != units.Size4K {
		t.Error("DataPageSize still reports 2MB after degradation")
	}
}

func TestNoHugePagesSentinel(t *testing.T) {
	s, err := NewSystem(Config{
		Model:       machine.Opteron270(),
		Policy:      PolicyMixed,
		PhysBytes:   1 * units.GB,
		SharedBytes: 64 * units.MB,
		HugePages:   NoHugePages,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Degraded {
		t.Fatal("HugePages = NoHugePages did not degrade")
	}
	// Mixed policy still splits by size; the "2MB" side is 4 KB-backed.
	big := s.MustArray("big", int(MixedThreshold/8)+1)
	wr, err := s.PT.Translate(big.Base)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size4K || big.Base < HugeBase {
		t.Errorf("big allocation at %#x size %s", big.Base, wr.Entry.Size)
	}
}
