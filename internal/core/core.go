// Package core is the paper's primary contribution: an OpenMP system whose
// application data (global and dynamic, following the Omni/SCASH
// allocate-at-startup design) can be backed by preallocated 2 MB large pages
// from hugetlbfs instead of traditional 4 KB pages, on a simulated
// multi-core machine.
//
// The public surface is System: it assembles the physical memory, process
// page table, hugetlbfs mount, SCASH shared space, simulated machine and the
// OpenMP runtime, under one of three page policies:
//
//   - Policy4K  — the baseline: everything in 4 KB pages.
//   - Policy2M  — the paper's design: all application data in 2 MB pages,
//     preallocated at startup.
//   - PolicyMixed — the paper's future-work proposal: "allocate a mix of
//     large pages for the bigger allocation and the typical 4KB pages for
//     the smaller allocations".
//   - PolicyTransparent — the paper's other future-work item: demand paging
//     with reservation-based transparent promotion to 2 MB pages (see
//     internal/thp).
package core

import (
	"errors"
	"fmt"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/hugetlbfs"
	"hugeomp/internal/machine"
	"hugeomp/internal/mem"
	"hugeomp/internal/omp"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/profile"
	"hugeomp/internal/scash"
	"hugeomp/internal/thp"
	"hugeomp/internal/units"
)

// PagePolicy selects how application data is backed.
type PagePolicy uint8

const (
	Policy4K PagePolicy = iota
	Policy2M
	PolicyMixed
	// PolicyTransparent implements the paper's other future-work item
	// ("ideally, the kernel ... should be able to allocate a mix of large
	// pages ... transparently"): no preallocation, demand paging, and
	// reservation-based promotion to 2 MB pages à la Navarro et al. (the
	// paper's reference [16]) via internal/thp.
	PolicyTransparent
)

// String implements fmt.Stringer.
func (p PagePolicy) String() string {
	switch p {
	case Policy2M:
		return "2MB"
	case PolicyMixed:
		return "mixed"
	case PolicyTransparent:
		return "transparent"
	default:
		return "4KB"
	}
}

// MixedThreshold is the allocation size at and above which PolicyMixed uses
// large pages.
const MixedThreshold = 256 * units.KB

// Address-space layout of the simulated process.
const (
	CodeBase  = units.Addr(4 * units.MB)   // text segment
	DataBase  = units.Addr(1 * units.GB)   // 4 KB-backed shared data region
	HugeBase  = units.Addr(4 * units.GB)   // 2 MB-backed shared data region
	StackBase = units.Addr(256 * units.MB) // small 4 KB-backed private area
)

// Config configures a System.
type Config struct {
	Model   machine.Model
	Policy  PagePolicy
	Sharing machine.SharingMode
	Barrier omp.BarrierAlgo

	PhysBytes   int64 // simulated physical memory (default 8 GB)
	SharedBytes int64 // application data region size (default 256 MB)
	CodeBytes   int64 // text segment size (default 2 MB)

	// Hugetlb selects the large-page allocation strategy (the paper
	// preallocates; OnDemand is the ablation).
	Hugetlb hugetlbfs.Mode

	// HugePages sets the hugetlbfs pool size in 2 MB pages. 0 sizes the
	// pool to fit SharedBytes (the paper's `echo N > nr_hugepages`
	// configuration); NoHugePages models a host whose pool is empty. A pool
	// that cannot back the shared region does not fail the run: the region
	// degrades to 4 KB pages at the same virtual addresses, so the numerics
	// are untouched and only translation costs shift (see System.Degraded).
	HugePages int

	// Fault, if non-nil, arms deterministic fault injection across every
	// subsystem the system assembles: hugetlbfs reservation and pool
	// exhaustion, transient page-table map failures, and THP allocation
	// failure / pressure-triggered demotion.
	Fault *faultinject.Plan
}

// NoHugePages is the Config.HugePages sentinel for an empty large-page pool
// (`vm.nr_hugepages = 0`): the 2 MB policies run fully degraded on 4 KB
// pages.
const NoHugePages = -1

// System is an assembled large-page-aware OpenMP system for one application
// run.
type System struct {
	Cfg     Config
	Phys    *mem.PhysMem
	PT      *pagetable.Table
	Machine *machine.Machine
	FS      *hugetlbfs.FS // nil under Policy4K

	space4K *scash.Space // nil under Policy2M
	space2M *scash.Space // nil under Policy4K

	// THP is the transparent-huge-page manager (PolicyTransparent only).
	THP *thp.Manager

	// Degraded reports that the 2 MB shared region fell back to 4 KB
	// backing (pool empty, too small, or reservation failure — injected or
	// real). The fallback preserves every virtual address, so kernels run
	// unchanged; only the translation costs differ.
	Degraded bool

	codeAlloc *scash.Allocator
	codeUsed  int64
}

// NewSystem builds a system: physical memory, page table, machine, the
// hugetlbfs pool (preallocated up front under the paper's policy) and the
// SCASH shared data region(s).
func NewSystem(cfg Config) (*System, error) {
	if cfg.PhysBytes == 0 {
		cfg.PhysBytes = 8 * units.GB
	}
	if cfg.SharedBytes == 0 {
		cfg.SharedBytes = 256 * units.MB
	}
	if cfg.CodeBytes == 0 {
		cfg.CodeBytes = 2 * units.MB
	}
	s := &System{
		Cfg:  cfg,
		Phys: mem.New(cfg.PhysBytes),
		PT:   pagetable.New(),
	}
	s.Machine = machine.New(cfg.Model)
	s.Machine.Sharing = cfg.Sharing
	s.Machine.AttachProcess(s.PT)
	s.PT.SetFaultPlan(cfg.Fault)

	// Text segment: 4 KB pages (the paper measures ITLB misses to be
	// negligible and does not pursue large pages for code).
	for off := int64(0); off < cfg.CodeBytes; off += units.PageSize4K {
		pfn, err := s.Phys.Alloc4K()
		if err != nil {
			return nil, fmt.Errorf("core: code segment: %w", err)
		}
		if err := s.PT.MapRetry(CodeBase+units.Addr(off), units.Size4K, pfn, pagetable.ProtRead); err != nil {
			return nil, err
		}
	}
	s.codeAlloc = scash.NewAllocator(CodeBase, cfg.CodeBytes)

	if cfg.Policy == PolicyTransparent {
		sp, err := scash.NewSpaceLazy(DataBase, cfg.SharedBytes)
		if err != nil {
			return nil, fmt.Errorf("core: transparent space: %w", err)
		}
		s.space4K = sp
		s.THP = thp.New(s.Phys, s.PT, nil)
		s.THP.SetFaultPlan(cfg.Fault)
		if err := s.THP.Register(DataBase, cfg.SharedBytes); err != nil {
			return nil, fmt.Errorf("core: thp region: %w", err)
		}
		return s, nil
	}

	need2M := cfg.Policy == Policy2M || cfg.Policy == PolicyMixed
	need4K := cfg.Policy == Policy4K || cfg.Policy == PolicyMixed

	if need2M {
		if err := s.mount2M(cfg); err != nil {
			return nil, err
		}
	}
	if need4K {
		sp, err := scash.NewSpace(scash.Config{
			Phys: s.Phys, PT: s.PT, Base: DataBase,
			Size: cfg.SharedBytes, PageSize: units.Size4K,
		})
		if err != nil {
			return nil, fmt.Errorf("core: 4KB space: %w", err)
		}
		s.space4K = sp
	}
	return s, nil
}

// mount2M backs the HugeBase region with 2 MB pages from a hugetlbfs pool,
// degrading to 4 KB backing at the same addresses when the pool cannot cover
// it. Only capacity-class failures degrade — an empty or undersized pool, a
// reservation that could not find contiguous memory (real or injected), or a
// map whose transient-failure retries ran dry; anything else (overlap,
// misalignment) is a real bug and propagates.
func (s *System) mount2M(cfg Config) error {
	need := int((cfg.SharedBytes + units.PageSize2M - 1) / units.PageSize2M)
	pool := need
	switch {
	case cfg.HugePages == NoHugePages:
		pool = 0
	case cfg.HugePages > 0:
		pool = cfg.HugePages
	}
	if pool > 0 {
		err := func() error {
			fs, err := hugetlbfs.MountWithFault(s.Phys, pool, cfg.Hugetlb, cfg.Fault)
			if err != nil {
				return err
			}
			sp, err := scash.NewSpace(scash.Config{
				Phys: s.Phys, PT: s.PT, Base: HugeBase,
				Size: cfg.SharedBytes, PageSize: units.Size2M, Hugetlb: fs,
			})
			if err != nil {
				// Return the pool's frames to physical memory: the
				// degraded region allocates 4 KB frames instead.
				_ = fs.Remove(fmt.Sprintf("scash-%#x", HugeBase))
				_ = fs.Resize(0)
				return err
			}
			s.FS = fs
			s.space2M = sp
			return nil
		}()
		if err == nil {
			return nil
		}
		if !errors.Is(err, mem.ErrOutOfMemory) && !errors.Is(err, hugetlbfs.ErrNoSpace) &&
			!errors.Is(err, pagetable.ErrTransient) {
			return fmt.Errorf("core: 2MB region: %w", err)
		}
	}
	sp, err := scash.NewSpace(scash.Config{
		Phys: s.Phys, PT: s.PT, Base: HugeBase,
		Size: cfg.SharedBytes, PageSize: units.Size4K,
	})
	if err != nil {
		return fmt.Errorf("core: degraded 4KB region: %w", err)
	}
	s.space2M = sp
	s.Degraded = true
	return nil
}

// OSCounters aggregates the run's OS-level degraded-path events: huge-page
// fallbacks, THP demotions and broken reservations, and absorbed transient
// map failures. DSM refetch counts live with the DSM itself (cluster mode);
// an intra-node System reports zero there.
func (s *System) OSCounters() profile.OSCounters {
	var o profile.OSCounters
	o.PTMapRetries = s.PT.MapRetries()
	if s.Degraded {
		o.HugePageFallbacks = 1
	}
	if s.THP != nil {
		o.THPDemotions = s.THP.Stats.Demotions
		o.BrokenReservations = s.THP.Stats.BrokenReservations
	}
	return o
}

// spaceFor applies the page policy to one allocation.
func (s *System) spaceFor(size int64) *scash.Space {
	switch s.Cfg.Policy {
	case Policy2M:
		return s.space2M
	case PolicyMixed:
		if size >= MixedThreshold {
			return s.space2M
		}
		return s.space4K
	default: // Policy4K and PolicyTransparent
		return s.space4K
	}
}

// DataPageSize returns the page size backing an allocation of the given
// size under the system's policy.
func (s *System) DataPageSize(size int64) units.PageSize {
	return s.spaceFor(size).PageSize()
}

// Global allocates a transformed global of the given size under the page
// policy (the Omni global→shared-pointer transformation).
func (s *System) Global(name string, size int64) (scash.Symbol, error) {
	return s.spaceFor(size).RegisterGlobal(name, size)
}

// Malloc allocates dynamic shared memory under the page policy.
func (s *System) Malloc(size int64) (units.Addr, error) {
	return s.spaceFor(size).Malloc(size)
}

// Seal ends startup-time global registration in every space.
func (s *System) Seal() {
	if s.space4K != nil {
		s.space4K.Seal()
	}
	if s.space2M != nil {
		s.space2M.Seal()
	}
}

// DataFootprint reports total live application data bytes (Table 2's data
// column).
func (s *System) DataFootprint() int64 {
	var n int64
	if s.space4K != nil {
		n += s.space4K.UsedBytes()
	}
	if s.space2M != nil {
		n += s.space2M.UsedBytes()
	}
	return n
}

// InstrFootprint reports the bytes of the text segment in use (Table 2's
// instruction column).
func (s *System) InstrFootprint() int64 { return s.codeUsed }

// NewCodeRegion carves a code range for one parallel region out of the text
// segment.
func (s *System) NewCodeRegion(name string, size int64) (*omp.CodeRegion, error) {
	base, err := s.codeAlloc.Alloc(size)
	if err != nil {
		return nil, fmt.Errorf("core: code region %q: %w", name, err)
	}
	s.codeUsed += units.AlignUp(size, units.PageSize4K)
	return &omp.CodeRegion{Name: name, Base: base, Size: size}, nil
}

// NewRT creates an OpenMP runtime with nthreads threads. Hardware contexts
// are configured fresh (cold TLBs and caches), and their page-size probe
// hint is primed with the policy's dominant class.
func (s *System) NewRT(nthreads int) (*omp.RT, error) {
	rt, err := omp.New(s.Machine, nthreads, omp.WithBarrier(s.Cfg.Barrier))
	if err != nil {
		return nil, err
	}
	hint := units.Size4K
	if s.Cfg.Policy == Policy2M && !s.Degraded {
		hint = units.Size2M
	}
	for _, c := range rt.Contexts() {
		c.SetPageHint(hint)
	}
	if s.THP != nil {
		// Transparent mode: contexts demand-fault into the THP manager,
		// and promotions shoot down every context's stale translations.
		ctxs := rt.Contexts()
		for _, c := range ctxs {
			c.OnFault = s.THP.HandleFault
		}
		s.THP.SetShootdown(func(va units.Addr, size units.PageSize) {
			for _, c := range ctxs {
				c.InvalidatePage(va, size)
			}
		})
	}
	return rt, nil
}
