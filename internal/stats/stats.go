// Package stats provides the small numeric helpers used by the experiment
// harness: speedups, improvement percentages, normalisation and simple
// aggregates.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Speedup returns base/new (how many times faster new is than base); 0 when
// new is 0.
func Speedup(base, new float64) float64 {
	if new == 0 {
		return 0
	}
	return base / new
}

// Efficiency returns the parallel efficiency of a measured speedup on n
// workers: speedup/n, so 1.0 is perfect linear scaling. 0 when n <= 0.
func Efficiency(speedup float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return speedup / float64(n)
}

// ImprovementPct returns the relative improvement of new over base in
// percent: (base-new)/base · 100.
func ImprovementPct(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - new) / base
}

// Normalize divides each value by base (1.0 = equal to base); 0 when base
// is 0.
func Normalize(base float64, xs []float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Factor returns new/base — the multiplicative cost of new relative to base
// (1.0 = unchanged, 9.7 = 9.7× more). 0 when base is 0.
func Factor(base, new uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(new) / float64(base)
}

// FormatFactor renders a Factor for degradation reports: "×9.7" for growth,
// "×0.83" for shrinkage, "×1.0" for unchanged, "—" for an undefined (zero
// base) factor.
func FormatFactor(f float64) string {
	if f == 0 {
		return "—"
	}
	if f >= 10 {
		return fmt.Sprintf("×%.0f", f)
	}
	if f >= 1 {
		return fmt.Sprintf("×%.1f", f)
	}
	return fmt.Sprintf("×%.2f", f)
}
