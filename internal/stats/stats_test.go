package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Error("single-sample stddev")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138089935299395) > 1e-12 {
		t.Errorf("stddev = %v", got)
	}
}

func TestSpeedupImprovement(t *testing.T) {
	if Speedup(10, 5) != 2 {
		t.Error("speedup")
	}
	if Speedup(10, 0) != 0 {
		t.Error("speedup by zero")
	}
	if ImprovementPct(100, 75) != 25 {
		t.Error("improvement")
	}
	if ImprovementPct(0, 5) != 0 {
		t.Error("improvement base zero")
	}
}

func TestEfficiency(t *testing.T) {
	if Efficiency(4, 4) != 1 {
		t.Error("linear scaling")
	}
	if Efficiency(3, 4) != 0.75 {
		t.Error("sublinear scaling")
	}
	if Efficiency(2, 0) != 0 {
		t.Error("zero workers")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize(4, []float64{4, 2, 8})
	want := []float64{1, 0.5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("normalize[%d] = %v", i, got[i])
		}
	}
	if z := Normalize(0, []float64{1})[0]; z != 0 {
		t.Error("normalize by zero")
	}
}

// Property: improvement and speedup agree: speedup s corresponds to
// improvement (1 - 1/s)·100.
func TestSpeedupImprovementConsistency(t *testing.T) {
	f := func(baseRaw, newRaw uint16) bool {
		base := float64(baseRaw) + 1
		new := float64(newRaw) + 1
		s := Speedup(base, new)
		imp := ImprovementPct(base, new)
		return math.Abs(imp-100*(1-1/s)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
