package machine

import (
	"fmt"
	"sync"

	"hugeomp/internal/cache"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

// Machine is an instantiated platform running one simulated process.
type Machine struct {
	Model   Model
	Sharing SharingMode

	pt  *pagetable.Table
	bus *cache.Bus

	contexts []*Context
}

// New instantiates model with the default partitioned sharing mode.
func New(model Model) *Machine {
	return &Machine{Model: model, Sharing: SharePartition}
}

// AttachProcess connects the process page table that every context
// translates through.
func (m *Machine) AttachProcess(pt *pagetable.Table) { m.pt = pt }

// PageTable returns the attached process page table.
func (m *Machine) PageTable() *pagetable.Table { return m.pt }

// Bus returns the snoop bus, if the machine was configured coherent.
func (m *Machine) Bus() *cache.Bus { return m.bus }

// Contexts returns the contexts built by the last Configure call.
func (m *Machine) Contexts() []*Context { return m.contexts }

// slot identifies one hardware thread.
type slot struct {
	chip, core, thread int
}

// placement enumerates hardware threads in the paper's scheduling order:
// "Single thread per core is used up to 4 threads. Two threads per core are
// used at eight threads" — i.e. fill one thread on every core (spreading
// across chips first) before using SMT siblings.
func (m *Machine) placement(n int) ([]slot, error) {
	max := m.Model.MaxThreads()
	if n < 1 || n > max {
		return nil, fmt.Errorf("machine: %d threads out of range 1..%d on %s", n, max, m.Model.Name)
	}
	var slots []slot
	for t := 0; t < m.Model.ThreadsPerCore; t++ {
		for c := 0; c < m.Model.CoresPerChip; c++ {
			for ch := 0; ch < m.Model.Chips; ch++ {
				slots = append(slots, slot{chip: ch, core: c, thread: t})
			}
		}
	}
	return slots[:n], nil
}

// Configure builds the hardware contexts for an n-thread run. Context
// resources (TLBs, caches) are sized according to how many co-scheduled
// contexts share them under the machine's SharingMode. Configure must be
// called after AttachProcess.
func (m *Machine) Configure(n int) ([]*Context, error) {
	if m.pt == nil {
		return nil, fmt.Errorf("machine: Configure before AttachProcess")
	}
	slots, err := m.placement(n)
	if err != nil {
		return nil, err
	}

	// Count active contexts per core and per L2 domain.
	coreKey := func(s slot) int { return s.chip*m.Model.CoresPerChip + s.core }
	l2Key := func(s slot) int {
		if m.Model.L2PerChip {
			return s.chip
		}
		return coreKey(s)
	}
	perCore := map[int]int{}
	perL2 := map[int]int{}
	for _, s := range slots {
		perCore[coreKey(s)]++
		perL2[l2Key(s)]++
	}

	m.bus = nil
	if m.Model.Coherent {
		m.bus = cache.NewBus()
	}

	m.contexts = make([]*Context, 0, n)
	switch m.Sharing {
	case SharePartition:
		for id, s := range slots {
			coreShare := perCore[coreKey(s)]
			l2Share := perL2[l2Key(s)]
			itlbSpec, dtlbSpec := m.Model.ITLB, m.Model.DTLB
			l1cfg, l2cfg := m.Model.L1D, m.Model.L2
			if coreShare > 1 {
				itlbSpec = itlbSpec.Halve()
				dtlbSpec = dtlbSpec.Halve()
				l1cfg.SizeBytes /= int64(coreShare)
			}
			if l2Share > 1 {
				l2cfg.SizeBytes /= int64(l2Share)
			}
			ctx := m.newContext(id, s, itlbSpec, dtlbSpec, l1cfg, l2cfg, coreShare > 1)
			m.contexts = append(m.contexts, ctx)
		}
	case ShareTrue:
		// Co-located contexts share the same structures behind locks.
		type coreRes struct {
			itlb, dtlb *tlb.Hierarchy
			l1         *cache.Cache
			mu         *sync.Mutex
		}
		type l2Res struct {
			l2 *cache.Cache
			mu *sync.Mutex
		}
		cores := map[int]*coreRes{}
		l2s := map[int]*l2Res{}
		for id, s := range slots {
			ck, lk := coreKey(s), l2Key(s)
			cr := cores[ck]
			if cr == nil {
				cr = &coreRes{
					itlb: tlb.NewHierarchy(m.Model.ITLB),
					dtlb: tlb.NewHierarchy(m.Model.DTLB),
					l1:   cache.New(m.Model.L1D),
					mu:   &sync.Mutex{},
				}
				cores[ck] = cr
			}
			lr := l2s[lk]
			if lr == nil {
				lr = &l2Res{l2: cache.New(m.Model.L2), mu: &sync.Mutex{}}
				if m.bus != nil {
					m.bus.Attach(lr.l2)
				}
				l2s[lk] = lr
			}
			ctx := &Context{
				ID: id, Chip: s.chip, Core: s.core, Thread: s.thread,
				machine: m, pt: m.pt,
				itlb: cr.itlb, dtlb: cr.dtlb, l1: cr.l1, l2: lr.l2,
				costs:      &m.Model.Costs,
				hasSibling: perCore[ck] > 1,
				xlat:       make([]xlatSlot, xlatSlots),
			}
			if perCore[ck] > 1 {
				ctx.coreMu = cr.mu
			}
			if perL2[lk] > 1 {
				ctx.l2Mu = lr.mu
			}
			ctx.smtFlush = m.Model.SMT == SMTFlushOnSwitch && ctx.hasSibling
			ctx.resetPageCache()
			m.contexts = append(m.contexts, ctx)
		}
	}
	return m.contexts, nil
}

func (m *Machine) newContext(id int, s slot, itlbSpec, dtlbSpec tlb.Spec,
	l1cfg, l2cfg cache.Config, hasSibling bool) *Context {
	l2 := cache.New(l2cfg)
	if m.bus != nil {
		m.bus.Attach(l2)
	}
	ctx := &Context{
		ID: id, Chip: s.chip, Core: s.core, Thread: s.thread,
		machine: m, pt: m.pt,
		itlb:       tlb.NewHierarchy(itlbSpec),
		dtlb:       tlb.NewHierarchy(dtlbSpec),
		l1:         cache.New(l1cfg),
		l2:         l2,
		costs:      &m.Model.Costs,
		hasSibling: hasSibling,
		xlat:       make([]xlatSlot, xlatSlots),
	}
	ctx.smtFlush = m.Model.SMT == SMTFlushOnSwitch && hasSibling
	ctx.resetPageCache()
	return ctx
}

// CoreOf returns a stable key for the physical core of ctx, used by the
// runtime to aggregate per-core busy time (SMT siblings serialise).
func (m *Machine) CoreOf(c *Context) int { return c.Chip*m.Model.CoresPerChip + c.Core }

// Seconds converts cycles to simulated seconds at the model's clock.
func (m *Machine) Seconds(cyc uint64) float64 {
	return float64(cyc) / (m.Model.Costs.ClockGHz * 1e9)
}

// TLBReach reports the data-TLB coverage of the model for the given page
// size in bytes (paper Table 1's coverage rows).
func (m *Machine) TLBReach(size units.PageSize) int64 {
	return m.Model.DTLB.Coverage(size)
}
