package machine

import (
	"testing"

	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

// mapRange maps [base, base+size) with pages of the given class.
func mapRange(t testing.TB, pt *pagetable.Table, base units.Addr, size int64, ps units.PageSize) {
	t.Helper()
	pfn := uint64(0)
	step := ps.Bytes()
	if ps == units.Size2M {
		pfn = 1 << 20 // keep large frames away from small ones
	}
	for off := int64(0); off < size; off += step {
		p := pfn + uint64(off/units.PageSize4K)
		if ps == units.Size2M {
			p = pfn + uint64(off/units.PageSize4K)
		}
		if err := pt.Map(base+units.Addr(off), ps, p, pagetable.ProtRW); err != nil {
			t.Fatal(err)
		}
	}
}

func newCtx(t *testing.T, model Model, threads int, ps units.PageSize, dataBytes int64) []*Context {
	t.Helper()
	pt := pagetable.New()
	base := units.Addr(0)
	mapRange(t, pt, base, units.AlignUp(dataBytes, ps.Bytes()), ps)
	m := New(model)
	m.AttachProcess(pt)
	ctxs, err := m.Configure(threads)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ctxs {
		c.SetPageHint(ps)
	}
	return ctxs
}

func TestPlacementSpreadsCoresFirst(t *testing.T) {
	m := New(XeonHT())
	m.AttachProcess(pagetable.New())
	ctxs, err := m.Configure(4)
	if err != nil {
		t.Fatal(err)
	}
	cores := map[int]int{}
	for _, c := range ctxs {
		cores[m.CoreOf(c)]++
		if c.HasSibling() {
			t.Error("4 threads on 4 cores should have no SMT siblings")
		}
	}
	if len(cores) != 4 {
		t.Errorf("4 threads placed on %d cores, want 4", len(cores))
	}
	ctxs, err = m.Configure(8)
	if err != nil {
		t.Fatal(err)
	}
	cores = map[int]int{}
	for _, c := range ctxs {
		cores[m.CoreOf(c)]++
		if !c.HasSibling() {
			t.Error("8 threads on 4 cores: every context has a sibling")
		}
	}
	for core, n := range cores {
		if n != 2 {
			t.Errorf("core %d has %d contexts, want 2", core, n)
		}
	}
}

func TestPlacementRejectsOversubscription(t *testing.T) {
	m := New(Opteron270())
	m.AttachProcess(pagetable.New())
	if _, err := m.Configure(5); err == nil {
		t.Error("Opteron accepts 5 threads but has only 4 contexts")
	}
	if _, err := m.Configure(0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestSMTPartitionHalvesTLB(t *testing.T) {
	m := New(XeonHT())
	m.AttachProcess(pagetable.New())
	ctxs, _ := m.Configure(8)
	full := XeonHT().DTLB.L1.E4K.Entries
	if got := ctxs[0].DTLB().Spec().L1.E4K.Entries; got != full/2 {
		t.Errorf("SMT-shared DTLB entries = %d, want %d", got, full/2)
	}
	ctxs, _ = m.Configure(4)
	if got := ctxs[0].DTLB().Spec().L1.E4K.Entries; got != full {
		t.Errorf("sole-owner DTLB entries = %d, want %d", got, full)
	}
}

func TestSequentialAccessCountsOnePageWalkPerPage(t *testing.T) {
	ctxs := newCtx(t, Opteron270(), 1, units.Size4K, 64*units.KB)
	c := ctxs[0]
	// Touch every 8 bytes of 16 pages.
	c.AccessRange(0, 16*512, 8, false)
	if got := c.Ctr.DTLBWalks4K; got != 16 {
		t.Errorf("walks = %d, want 16 (one per page, all cold)", got)
	}
	if got := c.Ctr.Loads; got != 16*512 {
		t.Errorf("loads = %d", got)
	}
	// Second pass: the 16 pages fit the 32-entry L1 DTLB, no more walks.
	walks := c.Ctr.DTLBWalks4K
	c.AccessRange(0, 16*512, 8, false)
	if c.Ctr.DTLBWalks4K != walks {
		t.Errorf("warm pass added %d walks", c.Ctr.DTLBWalks4K-walks)
	}
}

func TestLargePagesReduceWalksForStrides(t *testing.T) {
	const span = 8 * units.MB
	// Stride of one 4 KB page over 8 MB: 2048 pages with 4 KB pages but
	// only 4 large pages.
	ctx4 := newCtx(t, Opteron270(), 1, units.Size4K, span)[0]
	ctx2 := newCtx(t, Opteron270(), 1, units.Size2M, span)[0]
	n := int(span / units.PageSize4K)
	for pass := 0; pass < 3; pass++ {
		ctx4.AccessRange(0, n, units.PageSize4K, false)
		ctx2.AccessRange(0, n, units.PageSize4K, false)
	}
	if ctx2.Ctr.DTLBWalks() >= ctx4.Ctr.DTLBWalks()/100 {
		t.Errorf("2MB walks = %d vs 4KB walks = %d; expected >100x reduction",
			ctx2.Ctr.DTLBWalks(), ctx4.Ctr.DTLBWalks())
	}
	if ctx2.Ctr.Busy >= ctx4.Ctr.Busy {
		t.Errorf("2MB busy = %d >= 4KB busy = %d", ctx2.Ctr.Busy, ctx4.Ctr.Busy)
	}
}

func TestScalarAndRangeEquivalence(t *testing.T) {
	// AccessRange must produce the same counters as elementwise Load.
	mk := func() *Context { return newCtx(t, Opteron270(), 1, units.Size4K, units.MB)[0] }
	a, b := mk(), mk()
	const n = 4096
	const stride = 24
	a.AccessRange(0, n, stride, false)
	for i := 0; i < n; i++ {
		b.Load(units.Addr(int64(i) * stride))
	}
	if a.Ctr != b.Ctr {
		t.Errorf("counter mismatch:\nrange:  %+v\nscalar: %+v", a.Ctr, b.Ctr)
	}
}

func TestWalkCyclesShorterFor2M(t *testing.T) {
	c4 := newCtx(t, Opteron270(), 1, units.Size4K, units.PageSize2M)[0]
	c2 := newCtx(t, Opteron270(), 1, units.Size2M, units.PageSize2M)[0]
	c4.Load(0)
	c2.Load(0)
	if c4.Ctr.WalkCyc != 2*DefaultCosts().WalkRefCyc {
		t.Errorf("4K walk cycles = %d", c4.Ctr.WalkCyc)
	}
	if c2.Ctr.WalkCyc != DefaultCosts().WalkRefCyc {
		t.Errorf("2M walk cycles = %d (one fewer level)", c2.Ctr.WalkCyc)
	}
}

func TestSMTFlushPenaltyOnXeonSiblings(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, 64*units.MB, units.Size4K)
	m := New(XeonHT())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(8)
	c := ctxs[0]
	if !c.smtFlush {
		t.Fatal("sibling context should have flush-on-switch enabled")
	}
	// Strided misses: every access a cache miss -> memory -> switch.
	c.AccessRange(0, 1000, 8192, false)
	if c.Ctr.SMTSwitches == 0 {
		t.Error("no SMT switches recorded on memory stalls")
	}
	if c.Ctr.FlushCycles != c.Ctr.SMTSwitches*DefaultCosts().FlushCyc {
		t.Error("flush cycle accounting inconsistent")
	}
	// At 4 threads there is no sibling and no flush penalty.
	ctxs, _ = m.Configure(4)
	c = ctxs[0]
	c.AccessRange(0, 1000, 8192, false)
	if c.Ctr.SMTSwitches != 0 {
		t.Error("flush penalty applied without a sibling")
	}
}

func TestFetchITLB(t *testing.T) {
	pt := pagetable.New()
	// Code segment: 1.6MB of 4K pages at 1GB.
	codeBase := units.Addr(units.GB)
	mapRange(t, pt, codeBase, int64(units.AlignUp(1600*units.KB, units.PageSize4K)), units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	c.Fetch(codeBase)
	if c.Ctr.ITLBL1Miss != 1 || c.Ctr.ITLBWalks != 1 {
		t.Errorf("cold fetch: %d misses %d walks", c.Ctr.ITLBL1Miss, c.Ctr.ITLBWalks)
	}
	c.Fetch(codeBase + 8)
	if c.Ctr.ITLBL1Miss != 1 {
		t.Error("same-page fetch missed")
	}
	// A hot loop over a few pages stays resident: no further misses.
	for i := 0; i < 1000; i++ {
		for p := 0; p < 4; p++ {
			c.Fetch(codeBase + units.Addr(p)*4096)
		}
	}
	if c.Ctr.ITLBL1Miss > 4 {
		t.Errorf("hot code misses = %d, want <= 4", c.Ctr.ITLBL1Miss)
	}
}

func TestTrueSharingMode(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(XeonHT())
	m.Sharing = ShareTrue
	m.AttachProcess(pt)
	ctxs, err := m.Configure(8)
	if err != nil {
		t.Fatal(err)
	}
	// Siblings literally share the DTLB object.
	var sib *Context
	for _, c := range ctxs[1:] {
		if m.CoreOf(c) == m.CoreOf(ctxs[0]) {
			sib = c
			break
		}
	}
	if sib == nil {
		t.Fatal("no sibling found")
	}
	if ctxs[0].dtlb != sib.dtlb {
		t.Error("true-sharing siblings have distinct DTLBs")
	}
	// One sibling's fill is visible to the other: touch a page on ctx0;
	// sibling access is a hit (no walk).
	ctxs[0].Load(0)
	sib.Load(8)
	if sib.Ctr.DTLBWalks() != 0 {
		t.Error("sibling missed a translation the other thread loaded")
	}
}

func TestCoherentBusIntervention(t *testing.T) {
	model := Opteron270()
	model.Coherent = true
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(model)
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(2)
	if m.Bus() == nil {
		t.Fatal("coherent model has no bus")
	}
	ctxs[0].Store(0)
	ctxs[1].Load(0) // must intervene: ctx0 holds the line Modified
	if m.Bus().Interventions() == 0 {
		t.Error("no cache-to-cache intervention recorded")
	}
}

func TestSecondsConversion(t *testing.T) {
	m := New(Opteron270())
	if s := m.Seconds(2e9); s != 1.0 {
		t.Errorf("2e9 cycles at 2GHz = %v s, want 1", s)
	}
}

func TestTable1Reaches(t *testing.T) {
	// The two load-bearing Table 1 facts.
	xeon, opt := New(XeonHT()), New(Opteron270())
	if got := xeon.TLBReach(units.Size2M); got != 64*units.MB {
		t.Errorf("Xeon 2MB reach = %s, want 64MB", units.HumanBytes(got))
	}
	if got := opt.TLBReach(units.Size2M); got != 16*units.MB {
		t.Errorf("Opteron 2MB reach = %s, want 16MB", units.HumanBytes(got))
	}
}

func TestNiagaraInterleavedScaling(t *testing.T) {
	// The Niagara extension model: 32 hardware threads, no flush penalty.
	m := New(NiagaraT1())
	m.AttachProcess(pagetable.New())
	if NiagaraT1().MaxThreads() != 32 {
		t.Fatal("T1 has 32 hardware threads")
	}
	ctxs, err := m.Configure(32)
	if err != nil {
		t.Fatal(err)
	}
	if !ctxs[0].HasSibling() {
		t.Error("fully loaded T1 cores have siblings")
	}
	if ctxs[0].smtFlush {
		t.Error("interleaved SMT must not flush on switch")
	}
	if _, ok := ModelByName("NiagaraT1"); !ok {
		t.Error("NiagaraT1 not discoverable by name")
	}
}
