package machine

import (
	"sync"

	"hugeomp/internal/cache"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/tlb"
)

// Fork returns an independent deep copy of the machine translating through
// pt, the forked page table of the same process. Model and Sharing are value
// copies; every context is cloned with its warmed TLB stacks, caches,
// translation cache, shootdown mailbox and counters intact. Sharing topology
// is preserved: contexts that shared a TLB/cache/lock in the parent share a
// single forked instance in the clone (identity-mapped, so ShareTrue forks
// keep co-scheduled contexts behind one lock), and the bus — when present —
// is forked with attach order, transaction counters and shard generations
// carried over, so private-line fast-path stamps stay valid.
//
// Two caveats, both by design:
//
//   - OnFault handlers are copied as-is. They are closures over the parent
//     world (SCASH space, THP manager), so any caller that installs handlers
//     must re-wire them on the fork before simulating — exactly what
//     core.System does when a forked system builds its runtime.
//   - Fault plans are not part of the machine; the page table fork likewise
//     drops its plan (occurrence counters make a shared plan order-dependent).
//
// Call only at a quiescent point: no simulated threads running, no shootdowns
// in flight beyond the queued mailbox entries (which are cloned).
func (m *Machine) Fork(pt *pagetable.Table) *Machine {
	nm := &Machine{Model: m.Model, Sharing: m.Sharing, pt: pt}
	if len(m.contexts) == 0 {
		return nm
	}

	// Identity maps preserve the sharing topology of ShareTrue machines.
	cacheMap := map[*cache.Cache]*cache.Cache{}
	forkCache := func(c *cache.Cache) *cache.Cache {
		if c == nil {
			return nil
		}
		if nc, ok := cacheMap[c]; ok {
			return nc
		}
		nc := c.Fork()
		cacheMap[c] = nc
		return nc
	}
	tlbMap := map[*tlb.Hierarchy]*tlb.Hierarchy{}
	forkTLB := func(h *tlb.Hierarchy) *tlb.Hierarchy {
		if h == nil {
			return nil
		}
		if nh, ok := tlbMap[h]; ok {
			return nh
		}
		nh := h.Fork()
		tlbMap[h] = nh
		return nh
	}
	muMap := map[*sync.Mutex]*sync.Mutex{}
	forkMu := func(mu *sync.Mutex) *sync.Mutex {
		if mu == nil {
			return nil
		}
		if n, ok := muMap[mu]; ok {
			return n
		}
		n := &sync.Mutex{}
		muMap[mu] = n
		return n
	}

	if m.bus != nil {
		// Bus.Fork walks the attach order, so every bus-attached cache lands
		// in cacheMap before the context loop asks for it.
		nm.bus = m.bus.Fork(forkCache)
	}

	nm.contexts = make([]*Context, len(m.contexts))
	for i, c := range m.contexts {
		nc := &Context{
			ID: c.ID, Chip: c.Chip, Core: c.Core, Thread: c.Thread,
			machine: nm, pt: pt,
			itlb: forkTLB(c.itlb), dtlb: forkTLB(c.dtlb),
			l1: forkCache(c.l1), l2: forkCache(c.l2),
			coreMu:     forkMu(c.coreMu),
			l2Mu:       forkMu(c.l2Mu),
			costs:      &nm.Model.Costs,
			hasSibling: c.hasSibling,
			smtFlush:   c.smtFlush,
			OnFault:    c.OnFault,
			dataHint:   c.dataHint, fetchHint: c.fetchHint,
			foldLine: c.foldLine, foldMod: c.foldMod, foldOK: c.foldOK,
			lastFetchBase: c.lastFetchBase,
			lastFetchMask: c.lastFetchMask,
			fetchCacheOK:  c.fetchCacheOK,
			lastMissLine:  c.lastMissLine,
			lastMissValid: c.lastMissValid,
			xlat:          append([]xlatSlot(nil), c.xlat...),
			xlatGen:       c.xlatGen,
			Ctr:           c.Ctr,
		}
		// Scratch buffers stay nil: they are reallocated on first use and
		// carry no observable state.
		if len(c.pending) > 0 {
			nc.pending = append([]shootReq(nil), c.pending...)
		}
		nc.shootFlag.Store(c.shootFlag.Load())
		nm.contexts[i] = nc
	}
	return nm
}

// Snapshot captures the machine and its page table as an immutable template
// that Fork stamps out independent copies of. The capture itself forks once,
// so the parent machine may keep running (or be discarded) without affecting
// the snapshot; the frozen copy is never simulated on.
type Snapshot struct {
	mu     sync.Mutex
	frozen *Machine
	pt     *pagetable.Table
}

// Snapshot freezes the machine's current warmed state. Call at a quiescent
// point (see Fork).
func (m *Machine) Snapshot() *Snapshot {
	fpt := m.pt.Fork()
	return &Snapshot{frozen: m.Fork(fpt), pt: fpt}
}

// Fork stamps out an independent machine plus page table from the frozen
// template. Safe to call concurrently (sweep drivers fork under
// internal/par); forks never observe each other's writes — the page-table
// COW barrier privatizes PTE frames on first mutation, and every other
// structure is deep-copied.
func (s *Snapshot) Fork() (*Machine, *pagetable.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pt := s.pt.Fork()
	return s.frozen.Fork(pt), pt
}
