package machine

import (
	"testing"

	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

// walks returns the total page-walk count, the observable that tells whether
// a queued shootdown has actually been applied (the re-touch must walk).
func walks(c *Context) uint64 {
	return c.Ctr.DTLBWalks4K + c.Ctr.DTLBWalks2M
}

// TestDrainWindowObservationEquivalence pins the batched-drain contract
// promised by drainWindow's doc comment: a shootdown pending when a
// committed range engine is entered is drained before element 0 — exactly
// where the per-element scalar reference drains it — so the two engines stay
// byte-identical; and on a quiescent stream (nothing queued) neither engine
// drains anything, so the window polls are free of observable effect.
//
// Zero-stride AccessRange dispatches to the committed scalar engine
// (rangeScalar), making the committed drain points directly comparable to
// AccessRangeScalar's.
func TestDrainWindowObservationEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			const n = 200 // spans several drain windows (drainWindow = 64)
			base := units.Addr(0)

			t.Run("pending-at-entry", func(t *testing.T) {
				a, s := cfg.mk(t), cfg.mk(t)
				// Warm the translation for base so the shootdown has an
				// entry to kill.
				a.Load(base)
				s.AccessScalarRef(base, false)
				if a.Ctr != s.Ctr {
					t.Fatalf("warmup diverged:\ncommitted: %+v\nreference: %+v", a.Ctr, s.Ctr)
				}
				preA, preS := walks(a), walks(s)
				a.InvalidatePage(base, cfg.ps)
				s.InvalidatePage(base, cfg.ps)
				a.AccessRange(base, n, 0, false) // zero stride: committed scalar engine
				s.AccessRangeScalar(base, n, 0, false)
				if a.Ctr != s.Ctr {
					t.Errorf("drain points observable:\ncommitted: %+v\nreference: %+v", a.Ctr, s.Ctr)
				}
				// The drain must have landed before element 0: the first
				// touch re-walks, the remaining n-1 do not.
				if got := walks(a) - preA; got != 1 {
					t.Errorf("committed engine: walks after pending shootdown = %d, want 1", got)
				}
				if got := walks(s) - preS; got != 1 {
					t.Errorf("reference engine: walks after pending shootdown = %d, want 1", got)
				}
			})

			t.Run("quiescent", func(t *testing.T) {
				a, s := cfg.mk(t), cfg.mk(t)
				a.Load(base)
				s.AccessScalarRef(base, false)
				preA, preS := walks(a), walks(s)
				a.AccessRange(base, n, 0, false)
				s.AccessRangeScalar(base, n, 0, false)
				if a.Ctr != s.Ctr {
					t.Errorf("quiescent streams diverged:\ncommitted: %+v\nreference: %+v", a.Ctr, s.Ctr)
				}
				// Nothing queued: the window polls must drain nothing.
				if got := walks(a) - preA; got != 0 {
					t.Errorf("committed engine walked %d times on a quiescent warm page", got)
				}
				if got := walks(s) - preS; got != 0 {
					t.Errorf("reference engine walked %d times on a quiescent warm page", got)
				}
			})

			t.Run("full-flush-gather", func(t *testing.T) {
				a, s := cfg.mk(t), cfg.mk(t)
				idx := make([]int64, 160)
				for j := range idx {
					idx[j] = int64((j * 37) % 2048)
				}
				a.GatherRange(base, 8, idx)
				s.GatherRangeScalar(base, 8, idx)
				a.FlushTLBs()
				s.FlushTLBs()
				a.GatherRange(base, 8, idx)
				s.GatherRangeScalar(base, 8, idx)
				if a.Ctr != s.Ctr {
					t.Errorf("flush drain diverged:\ncommitted: %+v\nreference: %+v", a.Ctr, s.Ctr)
				}
			})
		})
	}
}

// fuzzWorld is one side of the fuzz comparison: a context plus its page
// table, so the op stream can degrade mappings the way thp.Manager.Demote
// does (unmap the 2MB chunk, shoot it down, re-map the same frames as 4KB
// pages).
type fuzzWorld struct {
	c  *Context
	pt *pagetable.Table
}

func mkFuzzWorld(t testing.TB, ps units.PageSize) fuzzWorld {
	pt := pagetable.New()
	mapRange(t, pt, 0, 4*units.MB, ps)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, err := m.Configure(1)
	if err != nil {
		t.Fatal(err)
	}
	ctxs[0].SetPageHint(ps)
	return fuzzWorld{c: ctxs[0], pt: pt}
}

// demoteChunk mirrors thp.Manager.Demote's degradation recipe on one world:
// unmap the 2MB chunk, queue the shootdown, and re-map the same physical
// frames as 512 4KB pages. Reports whether the chunk was actually demoted
// (false when it is already 4KB-mapped, so callers stay in lockstep).
func (w fuzzWorld) demoteChunk(t testing.TB, chunk int) bool {
	chunkVA := units.Addr(int64(chunk) * units.Size2M.Bytes())
	if _, err := w.pt.Unmap(chunkVA, units.Size2M); err != nil {
		return false
	}
	w.c.InvalidatePage(chunkVA, units.Size2M)
	for pi := 0; pi < 512; pi++ {
		pageVA := chunkVA + units.Addr(int64(pi)*units.PageSize4K)
		// Same frame numbering mapRange used for the 2MB chunk.
		pfn := uint64(1<<20) + uint64(int64(chunkVA)/units.PageSize4K) + uint64(pi)
		if err := w.pt.Map(pageVA, units.Size4K, pfn, pagetable.ProtRW); err != nil {
			t.Fatal(err)
		}
	}
	return true
}

// FuzzScalarFastPath drives random interleavings of scalar loads/stores,
// ranges and gathers — with TLB shootdowns, full flushes and 2MB→4KB page
// degradation injected between operations — through the committed fast path
// (translation memo, set-indexed probes, fold memo, batched drains) and the
// pristine per-element reference engines, and requires byte-identical
// counters after every single operation.
func FuzzScalarFastPath(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{6, 0, 0, 0, 0, 0, 8, 0, 0, 1, 255, 17})
	f.Add([]byte{7, 0, 0, 2, 9, 3, 5, 100, 4, 8, 1, 1, 0, 200, 77})
	f.Add([]byte{8, 1, 0, 8, 0, 0, 3, 50, 50, 6, 4, 0, 1, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		// Byte 0 picks the initial page-size policy; 2MB policies give the
		// degradation op something to demote.
		ps := units.Size4K
		if data[0]&1 == 1 {
			ps = units.Size2M
		}
		com := mkFuzzWorld(t, ps) // committed fast path
		ref := mkFuzzWorld(t, ps) // per-element reference

		const span = 4 * units.MB
		for i := 1; i+2 < len(data); i += 3 {
			op, a1, a2 := data[i], int64(data[i+1]), int64(data[i+2])
			va := units.Addr((a1<<12 | a2<<5 | a1*13) % span)
			switch op % 9 {
			case 0:
				com.c.Load(va)
				ref.c.AccessScalarRef(va, false)
			case 1:
				com.c.Store(va)
				ref.c.AccessScalarRef(va, true)
			case 2, 3:
				count := int(a1)%120 + 1
				stride := a2%200 + 1
				if int64(va)+int64(count)*stride >= span {
					continue
				}
				write := op%9 == 3
				com.c.AccessRange(va, count, stride, write)
				ref.c.AccessRangeScalar(va, count, stride, write)
			case 4:
				// Zero stride: forces the committed scalar engine, the
				// path whose drain windows the drainWindow test pins.
				count := int(a1)%150 + 1
				com.c.AccessRange(va, count, 0, a2&1 == 1)
				ref.c.AccessRangeScalar(va, count, 0, a2&1 == 1)
			case 5:
				n := int(a1)%60 + 1
				idx := make([]int64, n)
				bound := (span - int64(va)) / 8
				if bound <= 0 {
					continue
				}
				for j := range idx {
					idx[j] = (a2*31 + int64(j)*(a1+7)) % bound
				}
				com.c.GatherRange(va, 8, idx)
				ref.c.GatherRangeScalar(va, 8, idx)
			case 6:
				page := va &^ units.Addr(units.PageSize4K-1)
				size := units.Size4K
				if a2&1 == 1 {
					size = units.Size2M
					page = va &^ units.Addr(units.Size2M.Bytes()-1)
				}
				com.c.InvalidatePage(page, size)
				ref.c.InvalidatePage(page, size)
			case 7:
				com.c.FlushTLBs()
				ref.c.FlushTLBs()
			case 8:
				chunk := int(a1) % 2
				dc := com.demoteChunk(t, chunk)
				dr := ref.demoteChunk(t, chunk)
				if dc != dr {
					t.Fatalf("op %d: demote lockstep broken: committed=%v reference=%v", i, dc, dr)
				}
			}
			if com.c.Ctr != ref.c.Ctr {
				t.Fatalf("op %d (%d): counters diverged:\ncommitted: %+v\nreference: %+v",
					i, op%9, com.c.Ctr, ref.c.Ctr)
			}
		}
	})
}
