package machine

import (
	"encoding/json"
	"fmt"
	"os"

	"hugeomp/internal/cache"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

// This file lets users define their own platform models as JSON, so the
// simulator can answer "what if the TLB were bigger / the walk slower /
// the L2 shared" without recompiling:
//
//	{
//	  "name": "MyChip",
//	  "chips": 2, "coresPerChip": 4, "threadsPerCore": 2,
//	  "smt": "interleave",
//	  "itlb": {"l1": {"e4k": {"entries": 64}, "e2m": {"entries": 8}}},
//	  "dtlb": {"l1": {"e4k": {"entries": 64}, "e2m": {"entries": 8}},
//	           "l2": {"e4k": {"entries": 512, "ways": 4}}},
//	  "l1d": {"sizeKB": 32, "ways": 8},
//	  "l2":  {"sizeKB": 1024, "ways": 16, "perChip": true},
//	  "costs": {"walkRefCyc": 100}
//	}
//
// Omitted cost fields inherit DefaultCosts; omitted TLB structures are
// absent (never hit).

// ModelConfig is the JSON form of a Model.
type ModelConfig struct {
	Name           string `json:"name"`
	Chips          int    `json:"chips"`
	CoresPerChip   int    `json:"coresPerChip"`
	ThreadsPerCore int    `json:"threadsPerCore"`
	SMT            string `json:"smt"` // "none", "flush" or "interleave"

	ITLB TLBSpecConfig `json:"itlb"`
	DTLB TLBSpecConfig `json:"dtlb"`

	L1D CacheConfig `json:"l1d"`
	L2  CacheConfig `json:"l2"`

	Coherent bool         `json:"coherent"`
	Costs    *CostsConfig `json:"costs"`
}

// TLBSpecConfig is the JSON form of a two-level TLB spec.
type TLBSpecConfig struct {
	L1 TLBLevelConfig `json:"l1"`
	L2 TLBLevelConfig `json:"l2"`
}

// TLBLevelConfig is one level's per-page-size entry classes.
type TLBLevelConfig struct {
	E4K TLBEntryConfig `json:"e4k"`
	E2M TLBEntryConfig `json:"e2m"`
}

// TLBEntryConfig sizes one TLB structure.
type TLBEntryConfig struct {
	Entries int `json:"entries"`
	Ways    int `json:"ways"`
}

// CacheConfig sizes one cache.
type CacheConfig struct {
	SizeKB  int64 `json:"sizeKB"`
	Ways    int   `json:"ways"`
	PerChip bool  `json:"perChip"` // only meaningful for L2
}

// CostsConfig overrides individual cost-model fields; zero values inherit
// the defaults.
type CostsConfig struct {
	ClockGHz     float64 `json:"clockGHz"`
	ExecCyc      uint64  `json:"execCyc"`
	L1HitCyc     uint64  `json:"l1HitCyc"`
	L2HitCyc     uint64  `json:"l2HitCyc"`
	MemCyc       uint64  `json:"memCyc"`
	StreamCyc    uint64  `json:"streamCyc"`
	TLBL2Cyc     uint64  `json:"tlbL2Cyc"`
	WalkRefCyc   uint64  `json:"walkRefCyc"`
	C2CCyc       uint64  `json:"c2cCyc"`
	FlushCyc     uint64  `json:"flushCyc"`
	FetchCyc     uint64  `json:"fetchCyc"`
	MsgCyc       uint64  `json:"msgCyc"`
	ForkCyc      uint64  `json:"forkCyc"`
	AtomicCyc    uint64  `json:"atomicCyc"`
	SoftFaultCyc uint64  `json:"softFaultCyc"`
}

func (c TLBEntryConfig) toConfig() tlb.Config {
	return tlb.Config{Entries: c.Entries, Ways: c.Ways}
}

func (c TLBSpecConfig) toSpec(name string) tlb.Spec {
	return tlb.Spec{
		Name: name,
		L1:   tlb.LevelSpec{E4K: c.L1.E4K.toConfig(), E2M: c.L1.E2M.toConfig()},
		L2:   tlb.LevelSpec{E4K: c.L2.E4K.toConfig(), E2M: c.L2.E2M.toConfig()},
	}
}

// Model materialises the configuration, validating topology and applying
// cost defaults.
func (mc ModelConfig) Model() (Model, error) {
	if mc.Name == "" {
		return Model{}, fmt.Errorf("machine: config needs a name")
	}
	if mc.Chips < 1 || mc.CoresPerChip < 1 || mc.ThreadsPerCore < 1 {
		return Model{}, fmt.Errorf("machine: %s: topology must be at least 1x1x1", mc.Name)
	}
	var smt SMTPolicy
	switch mc.SMT {
	case "", "none":
		smt = SMTNone
	case "flush":
		smt = SMTFlushOnSwitch
	case "interleave":
		smt = SMTInterleave
	default:
		return Model{}, fmt.Errorf("machine: %s: unknown smt policy %q", mc.Name, mc.SMT)
	}
	if mc.ThreadsPerCore > 1 && smt == SMTNone {
		return Model{}, fmt.Errorf("machine: %s: %d threads/core needs an smt policy", mc.Name, mc.ThreadsPerCore)
	}
	if mc.L1D.SizeKB <= 0 || mc.L2.SizeKB <= 0 {
		return Model{}, fmt.Errorf("machine: %s: caches need positive sizes", mc.Name)
	}
	if mc.DTLB.L1.E4K.Entries == 0 {
		return Model{}, fmt.Errorf("machine: %s: the L1 DTLB needs 4KB entries", mc.Name)
	}

	costs := DefaultCosts()
	if cc := mc.Costs; cc != nil {
		apply := func(dst *uint64, v uint64) {
			if v != 0 {
				*dst = v
			}
		}
		if cc.ClockGHz != 0 {
			costs.ClockGHz = cc.ClockGHz
		}
		apply(&costs.ExecCyc, cc.ExecCyc)
		apply(&costs.L1HitCyc, cc.L1HitCyc)
		apply(&costs.L2HitCyc, cc.L2HitCyc)
		apply(&costs.MemCyc, cc.MemCyc)
		apply(&costs.StreamCyc, cc.StreamCyc)
		apply(&costs.TLBL2Cyc, cc.TLBL2Cyc)
		apply(&costs.WalkRefCyc, cc.WalkRefCyc)
		apply(&costs.C2CCyc, cc.C2CCyc)
		apply(&costs.FlushCyc, cc.FlushCyc)
		apply(&costs.FetchCyc, cc.FetchCyc)
		apply(&costs.MsgCyc, cc.MsgCyc)
		apply(&costs.ForkCyc, cc.ForkCyc)
		apply(&costs.AtomicCyc, cc.AtomicCyc)
		apply(&costs.SoftFaultCyc, cc.SoftFaultCyc)
	}

	return Model{
		Name:           mc.Name,
		Chips:          mc.Chips,
		CoresPerChip:   mc.CoresPerChip,
		ThreadsPerCore: mc.ThreadsPerCore,
		ITLB:           mc.ITLB.toSpec(mc.Name + "-itlb"),
		DTLB:           mc.DTLB.toSpec(mc.Name + "-dtlb"),
		L1D:            cache.Config{SizeBytes: mc.L1D.SizeKB * units.KB, Ways: mc.L1D.Ways},
		L2:             cache.Config{SizeBytes: mc.L2.SizeKB * units.KB, Ways: mc.L2.Ways},
		L2PerChip:      mc.L2.PerChip,
		SMT:            smt,
		Coherent:       mc.Coherent,
		Costs:          costs,
	}, nil
}

// LoadModel reads a platform model from a JSON file.
func LoadModel(path string) (Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Model{}, fmt.Errorf("machine: %w", err)
	}
	var mc ModelConfig
	if err := json.Unmarshal(data, &mc); err != nil {
		return Model{}, fmt.Errorf("machine: parsing %s: %w", path, err)
	}
	return mc.Model()
}
