package machine

import (
	"testing"

	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

// applyForkOp decodes and applies one fuzz op to world w through the
// committed engines — the op set of FuzzScalarFastPath plus a page-fault op
// that maps a fresh page after the fork point (so post-fork mutations travel
// through the page table's COW write barrier) and an abort marker (op%11 ==
// 10) that is a no-op here: abandoning a run touches no machine state, and
// FuzzForkEquivalence decodes it at the driver level to abandon the fork
// mid-stream. The return value is the demote outcome (always true for other
// ops) so callers can require worlds to stay in lockstep.
func applyForkOp(t testing.TB, w fuzzWorld, op byte, a1, a2 int64) bool {
	const span = 4 * units.MB
	va := units.Addr((a1<<12 | a2<<5 | a1*13) % span)
	switch op % 11 {
	case 0:
		w.c.Load(va)
	case 1:
		w.c.Store(va)
	case 2, 3:
		count := int(a1)%120 + 1
		stride := a2%200 + 1
		if int64(va)+int64(count)*stride >= span {
			return true
		}
		w.c.AccessRange(va, count, stride, op%11 == 3)
	case 4:
		w.c.AccessRange(va, int(a1)%150+1, 0, a2&1 == 1)
	case 5:
		n := int(a1)%60 + 1
		bound := (span - int64(va)) / 8
		if bound <= 0 {
			return true
		}
		idx := make([]int64, n)
		for j := range idx {
			idx[j] = (a2*31 + int64(j)*(a1+7)) % bound
		}
		w.c.GatherRange(va, 8, idx)
	case 6:
		page := va &^ units.Addr(units.PageSize4K-1)
		size := units.Size4K
		if a2&1 == 1 {
			size = units.Size2M
			page = va &^ units.Addr(units.Size2M.Bytes()-1)
		}
		w.c.InvalidatePage(page, size)
	case 7:
		w.c.FlushTLBs()
	case 8:
		return w.demoteChunk(t, int(a1)%2)
	case 9:
		// Page-fault analog: map a fresh 4KB page above the pre-mapped span
		// and touch it. Every world maps the same (va, pfn), so a re-map of
		// an already-faulted slot fails identically everywhere and the load
		// still stays in lockstep.
		pageVA := units.Addr(span) + units.Addr((a1&63)*units.PageSize4K)
		pfn := uint64(2<<20) + uint64(int64(pageVA)/units.PageSize4K)
		_ = w.pt.Map(pageVA, units.Size4K, pfn, pagetable.ProtRW)
		w.c.Load(pageVA)
	case 10:
		// Abort marker — no machine state changes; see FuzzForkEquivalence.
	}
	return true
}

// FuzzForkEquivalence is the correctness bar of the machine-level snapshot:
// after any warmup prefix of random operations, a Snapshot+Fork of the warm
// world must continue byte-identically — every counter after every op — to a
// world that never forked, and the act of snapshotting must leave the parent
// untouched. The op stream mixes scalar loads/stores, ranges, gathers,
// shootdowns, full flushes, 2MB→4KB degradation, post-fork page faults, and
// an abort op (op%11 == 10): the first abort after the fork point abandons
// the forked world mid-stream — exactly what a cancelled service request
// does — then forks a *sibling* from the same snapshot, replays the
// post-capture stream, and requires the sibling to land on the control's
// counters byte-for-byte before continuing in lockstep. An abandoned fork
// must never have leaked into the snapshot it came from.
//
// Byte 0 picks the page-size policy, byte 1 the fork point; each op is 3
// bytes (op, a1, a2) as in FuzzScalarFastPath.
func FuzzForkEquivalence(f *testing.F) {
	f.Add([]byte{0, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{1, 1, 8, 0, 0, 0, 30, 7, 2, 9, 3, 9, 40, 1})
	f.Add([]byte{1, 0, 8, 1, 0, 5, 17, 80, 6, 4, 1, 7, 0, 0})
	f.Add([]byte{0, 3, 9, 5, 0, 9, 5, 0, 3, 50, 50, 1, 255, 17, 8, 0, 0})
	f.Add([]byte{1, 1, 0, 1, 2, 9, 3, 9, 10, 0, 0, 3, 60, 5, 8, 0, 0, 1, 10, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip()
		}
		ps := units.Size4K
		if data[0]&1 == 1 {
			ps = units.Size2M
		}
		nops := (len(data) - 2) / 3
		split := int(data[1]) % (nops + 1)

		orig := mkFuzzWorld(t, ps) // parent: snapshotted mid-stream
		ctrl := mkFuzzWorld(t, ps) // control: never forked
		var snap *Snapshot
		var forked fuzzWorld
		haveFork := false
		abortedOnce := false
		var replay [][3]byte // ops applied to the fork since capture

		opIdx := 0
		for i := 2; i+2 < len(data); i += 3 {
			if opIdx == split && !haveFork {
				snap = orig.c.machine.Snapshot()
				fm, fpt := snap.Fork()
				forked = fuzzWorld{c: fm.Contexts()[0], pt: fpt}
				haveFork = true
				if forked.c.Ctr != ctrl.c.Ctr {
					t.Fatalf("fork at op %d: counters differ at capture:\nforked: %+v\ncontrol: %+v",
						opIdx, forked.c.Ctr, ctrl.c.Ctr)
				}
			}
			op, a1, a2 := data[i], int64(data[i+1]), int64(data[i+2])
			if op%11 == 10 {
				// Abort: abandon the fork exactly here, mid-stream, and prove
				// the snapshot is unperturbed — a fresh sibling replaying the
				// same post-capture stream must land on the control's
				// counters. The sibling then takes over the lockstep.
				if haveFork && !abortedOnce {
					abortedOnce = true
					fm, fpt := snap.Fork()
					sib := fuzzWorld{c: fm.Contexts()[0], pt: fpt}
					for _, r := range replay {
						applyForkOp(t, sib, r[0], int64(r[1]), int64(r[2]))
					}
					if sib.c.Ctr != ctrl.c.Ctr {
						t.Fatalf("abort at op %d: sibling fork replay diverged — the abandoned fork leaked into the snapshot:\nsibling: %+v\ncontrol: %+v",
							opIdx, sib.c.Ctr, ctrl.c.Ctr)
					}
					forked = sib
				}
				opIdx++
				continue // the abort marker mutates no world
			}
			dc := applyForkOp(t, ctrl, op, a1, a2)
			do := applyForkOp(t, orig, op, a1, a2)
			if do != dc {
				t.Fatalf("op %d: parent demote lockstep broken", opIdx)
			}
			if haveFork {
				replay = append(replay, [3]byte{op, byte(a1), byte(a2)})
				if df := applyForkOp(t, forked, op, a1, a2); df != dc {
					t.Fatalf("op %d: forked demote lockstep broken", opIdx)
				}
				if forked.c.Ctr != ctrl.c.Ctr {
					t.Fatalf("op %d (%d): forked run diverged from cold run:\nforked: %+v\ncontrol: %+v",
						opIdx, op%11, forked.c.Ctr, ctrl.c.Ctr)
				}
			}
			if orig.c.Ctr != ctrl.c.Ctr {
				t.Fatalf("op %d (%d): snapshot perturbed the parent:\nparent: %+v\ncontrol: %+v",
					opIdx, op%11, orig.c.Ctr, ctrl.c.Ctr)
			}
			opIdx++
		}
	})
}

// TestSnapshotForksIsolated: two forks of one snapshot never observe each
// other's writes. Each fork runs a different op stream, interleaved with the
// other's, and must stay byte-identical at every step to a control world
// that ran the shared prefix plus only its own stream — any cross-fork leak
// through the shared page table, TLBs, caches or bus would knock a fork off
// its control.
func TestSnapshotForksIsolated(t *testing.T) {
	for _, ps := range []units.PageSize{units.Size4K, units.Size2M} {
		t.Run(ps.String(), func(t *testing.T) {
			parent := mkFuzzWorld(t, ps)
			ctrlA := mkFuzzWorld(t, ps)
			ctrlB := mkFuzzWorld(t, ps)

			// Shared warmup prefix on the parent and both controls.
			prefix := []byte{0, 3, 1, 2, 40, 9, 5, 17, 80, 0, 200, 7}
			for i := 0; i+2 < len(prefix); i += 3 {
				for _, w := range []fuzzWorld{parent, ctrlA, ctrlB} {
					applyForkOp(t, w, prefix[i], int64(prefix[i+1]), int64(prefix[i+2]))
				}
			}

			snap := parent.c.machine.Snapshot()
			fmA, ptA := snap.Fork()
			fmB, ptB := snap.Fork()
			wa := fuzzWorld{c: fmA.Contexts()[0], pt: ptA}
			wb := fuzzWorld{c: fmB.Contexts()[0], pt: ptB}

			// Divergent streams. A degrades chunk 0 and stores through it; B
			// gathers, faults in fresh pages and flushes — so if A's unmap or
			// B's map leaked through the snapshot, the other fork's walk and
			// miss counters would diverge from its control.
			streamA := []byte{8, 0, 0, 1, 10, 3, 3, 60, 5, 6, 0, 1, 0, 10, 3}
			streamB := []byte{5, 30, 9, 9, 7, 0, 7, 0, 0, 9, 8, 0, 5, 50, 3}
			for i := 0; i+2 < len(streamA) && i+2 < len(streamB); i += 3 {
				applyForkOp(t, wa, streamA[i], int64(streamA[i+1]), int64(streamA[i+2]))
				applyForkOp(t, ctrlA, streamA[i], int64(streamA[i+1]), int64(streamA[i+2]))
				applyForkOp(t, wb, streamB[i], int64(streamB[i+1]), int64(streamB[i+2]))
				applyForkOp(t, ctrlB, streamB[i], int64(streamB[i+1]), int64(streamB[i+2]))
				if wa.c.Ctr != ctrlA.c.Ctr {
					t.Fatalf("op %d: fork A observed fork B's writes:\nfork A: %+v\ncontrol: %+v",
						i/3, wa.c.Ctr, ctrlA.c.Ctr)
				}
				if wb.c.Ctr != ctrlB.c.Ctr {
					t.Fatalf("op %d: fork B observed fork A's writes:\nfork B: %+v\ncontrol: %+v",
						i/3, wb.c.Ctr, ctrlB.c.Ctr)
				}
			}
		})
	}
}
