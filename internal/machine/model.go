// Package machine models the two multi-core platforms of the paper's
// evaluation — a dual dual-core AMD Opteron 270 node and a dual dual-core
// Intel Xeon node with hyper-threading — as parameterised, deterministic,
// execution-driven processor models. Simulated OpenMP threads run on
// hardware contexts; every data access goes through the context's DTLB
// stack, page walker and cache hierarchy, and every event is counted
// exactly.
package machine

import (
	"hugeomp/internal/cache"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

// SMTPolicy selects how a core runs two hardware threads.
type SMTPolicy uint8

const (
	// SMTNone: one thread per core (the Opteron).
	SMTNone SMTPolicy = iota
	// SMTFlushOnSwitch: the Xeon hyper-threading behaviour the paper blames
	// for poor 4→8-thread scaling — a memory load stall evicts the thread
	// context and flushes the pipeline.
	SMTFlushOnSwitch
	// SMTInterleave: Niagara-style fine-grain interleave (no flush penalty);
	// provided as an extension/ablation, not used by the paper's platforms.
	SMTInterleave
)

// String implements fmt.Stringer.
func (p SMTPolicy) String() string {
	switch p {
	case SMTFlushOnSwitch:
		return "flush-on-switch"
	case SMTInterleave:
		return "interleave"
	default:
		return "none"
	}
}

// SharingMode selects how co-scheduled contexts see shared core/chip
// resources (DTLB, L1, shared L2).
type SharingMode uint8

const (
	// SharePartition (default): co-scheduled contexts statically partition
	// shared structures ("the effective number of TLB entries could
	// potentially be halved" — the paper, §3.2). Deterministic and
	// lock-free.
	SharePartition SharingMode = iota
	// ShareTrue: co-scheduled contexts contend for the same structures,
	// serialised by a lock. Ablation mode.
	ShareTrue
)

// String implements fmt.Stringer.
func (m SharingMode) String() string {
	if m == ShareTrue {
		return "true-shared"
	}
	return "partitioned"
}

// Costs is the cycle cost model. All values are in CPU cycles at ClockGHz.
type Costs struct {
	ClockGHz float64 // simulated core clock

	ExecCyc   uint64 // base cost of one data access instruction
	L1HitCyc  uint64 // L1D hit latency
	L2HitCyc  uint64 // L2 hit latency
	MemCyc    uint64 // memory access latency (demand miss)
	StreamCyc uint64 // memory cost of a prefetched sequential line: the
	// hardware stream prefetcher hides most of the latency of unit-stride
	// misses, but stops at every 4 KB boundary and never hides TLB walks
	TLBL2Cyc     uint64 // extra latency when L1 TLB misses but L2 TLB hits
	WalkRefCyc   uint64 // per memory reference of a page walk (4 KB walk = 2 refs, 2 MB walk = 1)
	C2CCyc       uint64 // cache-to-cache intervention transfer
	FlushCyc     uint64 // pipeline flush on an SMT context switch
	FetchCyc     uint64 // charged per instruction-fetch block
	MsgCyc       uint64 // one shared-memory message (barrier/reduction transport)
	ForkCyc      uint64 // spawning the worker team for a parallel region
	AtomicCyc    uint64 // one atomic read-modify-write (dynamic-schedule chunk grab)
	SoftFaultCyc uint64 // kernel entry/exit + fill for a serviced page fault
}

// DefaultCosts returns the cost model shared by both platform models (the
// paper observes "the Intel and Opteron systems perform similarly on all
// five applications up to 4 threads", so a common baseline is appropriate).
func DefaultCosts() Costs {
	return Costs{
		ClockGHz:  2.0,
		ExecCyc:   1,
		L1HitCyc:  3,
		L2HitCyc:  14,
		MemCyc:    240,
		StreamCyc: 40,
		TLBL2Cyc:  8,
		// The paper's own estimate: "assuming an ITLB miss of 200 cycles"
		// (§4.3). A 4 KB walk is two memory references (200 cycles), a
		// 2 MB walk one (100 cycles).
		WalkRefCyc:   100,
		C2CCyc:       110,
		FlushCyc:     160,
		FetchCyc:     1,
		MsgCyc:       900,
		ForkCyc:      4000,
		AtomicCyc:    40,
		SoftFaultCyc: 2400,
	}
}

// Model describes one processor platform.
type Model struct {
	Name           string
	Chips          int
	CoresPerChip   int
	ThreadsPerCore int

	ITLB tlb.Spec
	DTLB tlb.Spec

	L1D       cache.Config // per core
	L2        cache.Config // per core, or per chip when L2PerChip
	L2PerChip bool         // Xeon: both cores of a chip share the L2

	SMT      SMTPolicy
	Coherent bool // attach private L2s to a MESI snooping bus

	Costs Costs
}

// MaxThreads returns the number of hardware contexts.
func (m Model) MaxThreads() int { return m.Chips * m.CoresPerChip * m.ThreadsPerCore }

// Cores returns the number of physical cores.
func (m Model) Cores() int { return m.Chips * m.CoresPerChip }

// Opteron270 models the paper's dual dual-core AMD Opteron 270 platform:
// four cores, no SMT, private 1 MB L2 per core kept coherent by snooping,
// two-level DTLB whose L2 holds no 2 MB entries (so 2 MB TLB reach is only
// the 8 L1 entries = 16 MB).
func Opteron270() Model {
	return Model{
		Name:           "Opteron270",
		Chips:          2,
		CoresPerChip:   2,
		ThreadsPerCore: 1,
		ITLB: tlb.Spec{
			Name: "opteron-itlb",
			L1: tlb.LevelSpec{
				E4K: tlb.Config{Entries: 32},
				E2M: tlb.Config{Entries: 8},
			},
		},
		DTLB: tlb.Spec{
			Name: "opteron-dtlb",
			L1: tlb.LevelSpec{
				E4K: tlb.Config{Entries: 32},
				E2M: tlb.Config{Entries: 8},
			},
			L2: tlb.LevelSpec{
				E4K: tlb.Config{Entries: 512, Ways: 4},
				// No large-page entries in the Opteron L2 DTLB.
			},
		},
		L1D:      cache.Config{SizeBytes: 64 * units.KB, Ways: 2},
		L2:       cache.Config{SizeBytes: 1 * units.MB, Ways: 16},
		SMT:      SMTNone,
		Coherent: false, // snoop bus available via ShareTrue/Coherent ablations
		Costs:    DefaultCosts(),
	}
}

// XeonHT models the paper's dual dual-core Intel Xeon platform with
// hyper-threading: four cores, two SMT threads per core sharing the DTLB and
// L1, a 2 MB L2 shared by the two cores of each chip, and the
// flush-pipeline-on-context-switch SMT implementation.
func XeonHT() Model {
	return Model{
		Name:           "XeonHT",
		Chips:          2,
		CoresPerChip:   2,
		ThreadsPerCore: 2,
		ITLB: tlb.Spec{
			Name: "xeon-itlb",
			L1: tlb.LevelSpec{
				E4K: tlb.Config{Entries: 128, Ways: 4},
				E2M: tlb.Config{Entries: 16},
			},
		},
		DTLB: tlb.Spec{
			Name: "xeon-dtlb",
			L1: tlb.LevelSpec{
				E4K: tlb.Config{Entries: 64, Ways: 4},
				E2M: tlb.Config{Entries: 32},
			},
			L2: tlb.LevelSpec{
				E4K: tlb.Config{Entries: 128, Ways: 4},
			},
		},
		L1D:       cache.Config{SizeBytes: 16 * units.KB, Ways: 8},
		L2:        cache.Config{SizeBytes: 2 * units.MB, Ways: 8},
		L2PerChip: true,
		SMT:       SMTFlushOnSwitch,
		Costs:     DefaultCosts(),
	}
}

// NiagaraT1 models the Sun Niagara the paper's background section describes
// as the other SMT design point ("implement different thread contexts and
// allow different stages of the pipeline to run different thread contexts.
// This potentially maximizes throughput, especially in the face of load
// stalls", §2.1): eight simple cores with four interleaved threads each, a
// shared L2, small per-core L1s and a modest unified DTLB. It is an
// extension model — the paper evaluates only the Opteron and Xeon — useful
// for contrasting interleaved SMT (no flush penalty) with the Xeon's
// flush-on-switch behaviour.
func NiagaraT1() Model {
	return Model{
		Name:           "NiagaraT1",
		Chips:          1,
		CoresPerChip:   8,
		ThreadsPerCore: 4,
		ITLB: tlb.Spec{
			Name: "niagara-itlb",
			L1: tlb.LevelSpec{
				E4K: tlb.Config{Entries: 64},
				E2M: tlb.Config{Entries: 8},
			},
		},
		DTLB: tlb.Spec{
			Name: "niagara-dtlb",
			L1: tlb.LevelSpec{
				E4K: tlb.Config{Entries: 64},
				E2M: tlb.Config{Entries: 8},
			},
		},
		L1D:       cache.Config{SizeBytes: 8 * units.KB, Ways: 4},
		L2:        cache.Config{SizeBytes: 3 * units.MB, Ways: 12},
		L2PerChip: true,
		SMT:       SMTInterleave,
		Costs:     niagaraCosts(),
	}
}

func niagaraCosts() Costs {
	c := DefaultCosts()
	c.ClockGHz = 1.2 // the T1 traded clock rate for thread count
	c.FlushCyc = 0   // interleaved threading: stalls overlap, no flush
	return c
}

// Models returns the two platform models of the paper's evaluation.
func Models() []Model { return []Model{Opteron270(), XeonHT()} }

// AllModels returns every built-in platform, including the NiagaraT1
// extension model.
func AllModels() []Model { return []Model{Opteron270(), XeonHT(), NiagaraT1()} }

// ModelByName looks up a platform model by name ("Opteron270", "XeonHT" or
// "NiagaraT1").
func ModelByName(name string) (Model, bool) {
	for _, m := range AllModels() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}
