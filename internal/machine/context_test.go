package machine

import (
	"runtime"
	"testing"
	"testing/quick"

	"hugeomp/internal/pagetable"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

// equivCfg is one machine configuration of the equivalence property: the
// bulk AccessRange path must match the scalar paths on every page-size
// policy and SMT-sharing mode, not just the default Opteron.
type equivCfg struct {
	name    string
	model   Model
	threads int
	sharing SharingMode
	ps      units.PageSize
}

func coherentOpteron() Model {
	m := Opteron270()
	m.Coherent = true
	return m
}

func equivConfigs() []equivCfg {
	return []equivCfg{
		{"opteron/1thr/partition/4K", Opteron270(), 1, SharePartition, units.Size4K},
		{"opteron/1thr/partition/2M", Opteron270(), 1, SharePartition, units.Size2M},
		{"xeon/8thr/partition/4K", XeonHT(), 8, SharePartition, units.Size4K},
		{"xeon/8thr/sharetrue/2M", XeonHT(), 8, ShareTrue, units.Size2M},
		// Coherent Opteron: the run-level bus transactions (AccessLines) and
		// the private-line fast path must be counter-identical to the scalar
		// per-line protocol. 4 threads so every transaction snoops 3 peers.
		{"opteron-coherent/4thr/partition/4K", coherentOpteron(), 4, SharePartition, units.Size4K},
		{"opteron-coherent/4thr/partition/2M", coherentOpteron(), 4, SharePartition, units.Size2M},
	}
}

func (cfg equivCfg) mk(t testing.TB) *Context {
	pt := pagetable.New()
	mapRange(t, pt, 0, 4*units.MB, cfg.ps)
	m := New(cfg.model)
	m.Sharing = cfg.sharing
	m.AttachProcess(pt)
	ctxs, err := m.Configure(cfg.threads)
	if err != nil {
		t.Fatal(err)
	}
	c := ctxs[0]
	c.SetPageHint(cfg.ps)
	return c
}

// TestAccessRangeEquivalenceProperty: for arbitrary (start, count, stride,
// write) on every configuration, the bulk path, elementwise Load/Store, and
// the AccessRangeScalar reference must produce byte-identical counters.
func TestAccessRangeEquivalenceProperty(t *testing.T) {
	for _, cfg := range equivConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			f := func(startRaw uint16, countRaw uint8, strideRaw uint16, write bool) bool {
				count := int(countRaw)%200 + 1
				// Exercise both bulk regimes: sub-line strides (coalesced
				// line runs) and line-or-larger strides (per-element probes).
				var stride int64
				if strideRaw%2 == 0 {
					stride = int64(strideRaw/2)%63 + 1
				} else {
					stride = int64(strideRaw)%3000 + 64
				}
				start := units.Addr(startRaw)
				// Keep within the mapped range.
				if int64(start)+int64(count)*stride >= 4*units.MB {
					return true
				}
				a, b, s := cfg.mk(t), cfg.mk(t), cfg.mk(t)
				a.AccessRange(start, count, stride, write)
				for i := 0; i < count; i++ {
					if write {
						b.Store(start + units.Addr(int64(i)*stride))
					} else {
						b.Load(start + units.Addr(int64(i)*stride))
					}
				}
				s.AccessRangeScalar(start, count, stride, write)
				if a.Ctr != b.Ctr {
					t.Logf("bulk != elementwise:\nbulk:  %+v\nelem:  %+v", a.Ctr, b.Ctr)
					return false
				}
				if a.Ctr != s.Ctr {
					t.Logf("bulk != scalar reference:\nbulk:   %+v\nscalar: %+v", a.Ctr, s.Ctr)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAccessRangeNegativeStrideEquivalence: the bulk path walks descending
// ranges natively (page segments and line runs mirrored downward) and must
// match both elementwise accesses and the scalar reference exactly.
func TestAccessRangeNegativeStrideEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			for _, stride := range []int64{-8, -24, -136, -4096, -9000} {
				a, b, s := cfg.mk(t), cfg.mk(t), cfg.mk(t)
				const count = 300
				start := units.Addr(3 * units.MB)
				a.AccessRange(start, count, stride, true)
				for i := 0; i < count; i++ {
					b.Store(start + units.Addr(int64(i)*stride))
				}
				s.AccessRangeScalar(start, count, stride, true)
				if a.Ctr != b.Ctr {
					t.Errorf("stride %d: bulk != elementwise:\nrange: %+v\nelem:  %+v", stride, a.Ctr, b.Ctr)
				}
				if a.Ctr != s.Ctr {
					t.Errorf("stride %d: bulk != scalar:\nrange:  %+v\nscalar: %+v", stride, a.Ctr, s.Ctr)
				}
			}
		})
	}
}

// TestAccessRangeWriteUpgradeEquivalence covers the write-upgrade edge: a
// read range primes the micro-TLB with a read-only-checked entry, and the
// following write range over the same pages must re-probe for writability on
// each segment head exactly as the scalar path does per element.
func TestAccessRangeWriteUpgradeEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			a, b := cfg.mk(t), cfg.mk(t)
			const count, stride = 4000, 24
			a.AccessRange(0, count, stride, false)
			a.AccessRange(0, count, stride, true)
			b.AccessRangeScalar(0, count, stride, false)
			b.AccessRangeScalar(0, count, stride, true)
			if a.Ctr != b.Ctr {
				t.Errorf("write-after-read counters diverge:\nbulk:   %+v\nscalar: %+v", a.Ctr, b.Ctr)
			}
		})
	}
}

// TestFetchRangeEquivalenceProperty: FetchRange must match elementwise Fetch
// for arbitrary positive-stride runs.
func TestFetchRangeEquivalenceProperty(t *testing.T) {
	cfg := equivConfigs()[0]
	f := func(startRaw uint16, countRaw uint8, strideRaw uint16) bool {
		count := int(countRaw)%100 + 1
		stride := int64(strideRaw)%(2*units.PageSize4K) + 1
		start := units.Addr(startRaw)
		if int64(start)+int64(count)*stride >= 4*units.MB {
			return true
		}
		a, b := cfg.mk(t), cfg.mk(t)
		a.FetchRange(start, count, stride)
		for i := 0; i < count; i++ {
			b.Fetch(start + units.Addr(int64(i)*stride))
		}
		return a.Ctr == b.Ctr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStreamPrefetcherCheapensSequentialMisses(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, 8*units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)

	// Sequential stream: misses after the first line of each page are
	// prefetched.
	ctxs, _ := m.Configure(1)
	seq := ctxs[0]
	seq.AccessRange(0, 1<<16, 64, false) // one access per line, 4MB

	ctxs, _ = m.Configure(1)
	rnd := ctxs[0]
	// Strided past any prefetch window (stays within the mapped 8MB).
	rnd.AccessRange(0, 1<<10, 8192, false)

	if seq.Ctr.L2Misses == 0 || rnd.Ctr.L2Misses == 0 {
		t.Fatal("expected misses in both runs")
	}
	seqPer := float64(seq.Ctr.MemCyc) / float64(seq.Ctr.L2Misses)
	rndPer := float64(rnd.Ctr.MemCyc) / float64(rnd.Ctr.L2Misses)
	if seqPer >= rndPer {
		t.Errorf("sequential misses cost %.0f cyc vs strided %.0f; prefetcher missing", seqPer, rndPer)
	}
	if rndPer != float64(DefaultCosts().MemCyc) {
		t.Errorf("strided misses cost %.0f, want full %d", rndPer, DefaultCosts().MemCyc)
	}
}

func TestPrefetcherStopsAtPageBoundary(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	// 128 sequential lines span two pages: two full-cost misses (one per
	// page head), the rest prefetched.
	c.AccessRange(0, 128, 64, false)
	costs := DefaultCosts()
	wantMem := 2*costs.MemCyc + 126*costs.StreamCyc
	if c.Ctr.MemCyc != wantMem {
		t.Errorf("MemCyc = %d, want %d (prefetch must break at 4KB boundaries)", c.Ctr.MemCyc, wantMem)
	}
}

func TestComputeAndWait(t *testing.T) {
	pt := pagetable.New()
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	c.Compute(100)
	c.Wait(50)
	if c.Ctr.Busy != 150 || c.Ctr.BarrierCyc != 50 {
		t.Errorf("busy=%d barrier=%d", c.Ctr.Busy, c.Ctr.BarrierCyc)
	}
}

func TestInvalidatePageForcesRewalk(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	c.Load(0)
	walks := c.Ctr.DTLBWalks()
	c.Load(8) // same page: no walk
	if c.Ctr.DTLBWalks() != walks {
		t.Fatal("unexpected walk")
	}
	c.InvalidatePage(0, units.Size4K)
	c.Load(16)
	if c.Ctr.DTLBWalks() != walks+1 {
		t.Error("shootdown did not force a re-walk")
	}
}

func TestFaultHandlerRetries(t *testing.T) {
	pt := pagetable.New()
	if err := pt.Map(0, units.Size4K, 1, pagetable.ProtRead); err != nil {
		t.Fatal(err)
	}
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	faults := 0
	c.OnFault = func(va units.Addr, write bool) error {
		faults++
		_, err := pt.Protect(0, pagetable.ProtRW)
		return err
	}
	c.Store(0x10) // write to a read-only page: trap, upgrade, retry
	if faults != 1 {
		t.Errorf("fault handler ran %d times, want 1", faults)
	}
	if c.Ctr.Stores != 1 {
		t.Error("store not completed after fault service")
	}
}

func TestUnhandledFaultPanics(t *testing.T) {
	pt := pagetable.New() // nothing mapped
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	defer func() {
		if recover() == nil {
			t.Error("access to unmapped memory should panic (simulation bug trap)")
		}
	}()
	ctxs[0].Load(0xdead000)
}

func TestSMTInterleavePolicyNoFlush(t *testing.T) {
	model := XeonHT()
	model.SMT = SMTInterleave
	pt := pagetable.New()
	mapRange(t, pt, 0, 16*units.MB, units.Size4K)
	m := New(model)
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(8)
	c := ctxs[0]
	c.AccessRange(0, 1000, 8192, false)
	if c.Ctr.SMTSwitches != 0 {
		t.Error("interleaved SMT must not charge flush penalties")
	}
	if !c.HasSibling() {
		t.Error("sibling expected at 8 threads")
	}
}

func TestL2PartitionAcrossChipSharers(t *testing.T) {
	// Xeon: the chip L2 is shared by 2 cores at 4 threads (half each) and
	// by 4 contexts at 8 threads (quarter each).
	m := New(XeonHT())
	m.AttachProcess(pagetable.New())
	full := XeonHT().L2.SizeBytes
	ctxs, _ := m.Configure(4)
	if got := int64(ctxs[0].l2.Lines()) * units.CacheLineSize; got != full/2 {
		t.Errorf("4-thread L2 share = %d, want %d", got, full/2)
	}
	ctxs, _ = m.Configure(8)
	if got := int64(ctxs[0].l2.Lines()) * units.CacheLineSize; got != full/4 {
		t.Errorf("8-thread L2 share = %d, want %d", got, full/4)
	}
	// Opteron L2 is private: never partitioned.
	mo := New(Opteron270())
	mo.AttachProcess(pagetable.New())
	ctxs, _ = mo.Configure(4)
	if got := int64(ctxs[0].l2.Lines()) * units.CacheLineSize; got != Opteron270().L2.SizeBytes {
		t.Errorf("Opteron L2 share = %d, want private %d", got, Opteron270().L2.SizeBytes)
	}
}

func TestShootdownMailboxIsAsynchronous(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(2)
	victim := ctxs[0]

	victim.Load(0) // fill the translation
	walks := victim.Ctr.DTLBWalks()

	// A foreign goroutine queues the shootdown (the THP/SCASH hook calls
	// victim.InvalidatePage); the victim's TLB structures are untouched
	// until its own next access (IPI semantics).
	victim.InvalidatePage(0, units.Size4K)
	if !victim.shootFlag.Load() {
		t.Fatal("shootdown not queued")
	}
	if victim.dtlb.Access(units.Size4K.VPN(0), units.Size4K, false) == tlb.Miss {
		t.Fatal("shootdown mutated the TLB before the owner drained it")
	}
	victim.Load(8) // drains the mailbox, then must re-walk
	if victim.Ctr.DTLBWalks() != walks+1 {
		t.Errorf("walks = %d, want %d (re-walk after drained shootdown)",
			victim.Ctr.DTLBWalks(), walks+1)
	}
	// FlushTLBs is delivered the same way.
	victim.Load(16) // hit
	victim.FlushTLBs()
	victim.Load(24)
	if victim.Ctr.DTLBWalks() != walks+2 {
		t.Errorf("walks after flush = %d, want %d", victim.Ctr.DTLBWalks(), walks+2)
	}
}

// TestPrefetcherRunBrokenByL2Hit is the regression test for the stale
// lastMissLine bug: an L1-miss/L2-hit used to leave the previous miss run's
// tail line in place, so a later miss at tail+1 was wrongly charged the
// prefetched StreamCyc cost. The scenario builds three lines in one L1 set
// (Opteron L1 is 64KB 2-way: lines 512 apart conflict), evicts the first,
// re-reads it (L2 hit — breaks any run), then misses at lastMissLine+1.
func TestPrefetcherRunBrokenByL2Hit(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	costs := DefaultCosts()

	line := func(l int64) units.Addr { return units.Addr(l * units.CacheLineSize) }
	// Three conflicting lines fill the 2-way set and evict line 100 from L1;
	// all three stay resident in the 16-way L2. None are sequential, so each
	// costs the full MemCyc. lastMissLine ends at 1124.
	c.Load(line(100))
	c.Load(line(612))
	c.Load(line(1124))
	// L1 miss, L2 hit: no memory access, and the miss run state must clear.
	c.Load(line(100))
	if c.Ctr.L2Hits != 1 {
		t.Fatalf("L2Hits = %d, want 1 (line 100 should be L2-resident)", c.Ctr.L2Hits)
	}
	// Line 1125 == lastMissLine+1 and 1125%64 != 0: with the stale-run bug
	// this was charged StreamCyc; it must cost the full MemCyc.
	c.Load(line(1125))
	// Line 1126 genuinely continues a run and is prefetched.
	c.Load(line(1126))

	wantMem := 4*costs.MemCyc + costs.StreamCyc
	if c.Ctr.MemCyc != wantMem {
		t.Errorf("MemCyc = %d, want %d (4 full misses + 1 prefetched)", c.Ctr.MemCyc, wantMem)
	}
	if c.Ctr.L2Misses != 5 {
		t.Errorf("L2Misses = %d, want 5", c.Ctr.L2Misses)
	}
}

// TestPrefetcherFirstMissAtLineOne pins the latent zero-value bug the
// lastMissValid flag also fixes: a fresh context's very first miss at line 1
// used to look like a continuation of a run ending at line 0.
func TestPrefetcherFirstMissAtLineOne(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	c.Load(units.Addr(units.CacheLineSize)) // line 1, first access ever
	if want := DefaultCosts().MemCyc; c.Ctr.MemCyc != want {
		t.Errorf("first miss at line 1 cost %d, want full %d", c.Ctr.MemCyc, want)
	}
}

// TestShootdownDuringBulkRange: shootdowns queued from another goroutine
// land mid-AccessRange (the bulk path checks the mailbox at page-segment
// granularity) and the resulting counters still match the scalar path given
// the same delivery point.
func TestShootdownDuringBulkRange(t *testing.T) {
	cfg := equivConfigs()[0]
	const count = 6000 // spans ~12 pages at stride 8
	run := func(bulk bool) *Context {
		c := cfg.mk(t)
		// Prime the TLBs over the range so the shootdown has entries to kill.
		c.AccessRange(0, count, 8, false)
		// Deliver an invalidation and a full flush from another goroutine;
		// the join guarantees they are pending when the range starts, so
		// the bulk path must drain them at its first segment check.
		done := make(chan struct{})
		go func() {
			defer close(done)
			c.InvalidatePage(units.Addr(units.PageSize4K), units.Size4K)
			c.FlushTLBs()
		}()
		<-done
		if bulk {
			c.AccessRange(0, count, 8, false)
		} else {
			c.AccessRangeScalar(0, count, 8, false)
		}
		return c
	}
	clean := cfg.mk(t)
	clean.AccessRange(0, count, 8, false)
	clean.AccessRange(0, count, 8, false)

	b, s := run(true), run(false)
	if b.shootFlag.Load() {
		t.Error("bulk path finished with shootdowns still pending")
	}
	if b.Ctr != s.Ctr {
		t.Errorf("counters diverge after mid-range shootdown:\nbulk:   %+v\nscalar: %+v", b.Ctr, s.Ctr)
	}
	if b.Ctr.DTLBWalks() <= clean.Ctr.DTLBWalks() {
		t.Errorf("flush caused no extra walks: got %d, clean run %d",
			b.Ctr.DTLBWalks(), clean.Ctr.DTLBWalks())
	}
}

// TestShootdownConcurrentWithBulkRange is the -race stress variant: another
// goroutine hammers the mailbox while a bulk range is in flight. Counter
// values are timing-dependent, so only invariants are asserted: the access
// count is exact and the mailbox is drained by the next access.
func TestShootdownConcurrentWithBulkRange(t *testing.T) {
	cfg := equivConfigs()[0]
	c := cfg.mk(t)
	const count = 200000
	const shots = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < shots; i++ {
			if i%2 == 0 {
				c.InvalidatePage(units.Addr(int64(i%16)*units.PageSize4K), units.Size4K)
			} else {
				c.FlushTLBs()
			}
			runtime.Gosched() // interleave with the bulk run in flight
		}
	}()
	c.AccessRange(0, count, 8, false)
	<-done
	if c.Ctr.Loads != count {
		t.Errorf("Loads = %d, want %d", c.Ctr.Loads, count)
	}
	c.Load(0) // any access drains whatever arrived after the range finished
	if c.shootFlag.Load() {
		t.Error("mailbox still flagged after a post-range access")
	}
}
