package machine

import (
	"testing"
	"testing/quick"

	"hugeomp/internal/pagetable"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

// TestAccessRangeEquivalenceProperty: for arbitrary (start, count, stride)
// the bulk path must produce exactly the same counters as elementwise loads.
func TestAccessRangeEquivalenceProperty(t *testing.T) {
	mk := func() *Context {
		pt := pagetable.New()
		mapRange(t, pt, 0, 4*units.MB, units.Size4K)
		m := New(Opteron270())
		m.AttachProcess(pt)
		ctxs, err := m.Configure(1)
		if err != nil {
			t.Fatal(err)
		}
		return ctxs[0]
	}
	f := func(startRaw uint16, countRaw uint8, strideRaw uint16, write bool) bool {
		count := int(countRaw)%200 + 1
		stride := int64(strideRaw)%3000 + 1
		start := units.Addr(startRaw)
		// Keep within the mapped range.
		if int64(start)+int64(count)*stride >= 4*units.MB {
			return true
		}
		a, b := mk(), mk()
		a.AccessRange(start, count, stride, write)
		for i := 0; i < count; i++ {
			if write {
				b.Store(start + units.Addr(int64(i)*stride))
			} else {
				b.Load(start + units.Addr(int64(i)*stride))
			}
		}
		return a.Ctr == b.Ctr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStreamPrefetcherCheapensSequentialMisses(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, 8*units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)

	// Sequential stream: misses after the first line of each page are
	// prefetched.
	ctxs, _ := m.Configure(1)
	seq := ctxs[0]
	seq.AccessRange(0, 1<<16, 64, false) // one access per line, 4MB

	ctxs, _ = m.Configure(1)
	rnd := ctxs[0]
	// Strided past any prefetch window (stays within the mapped 8MB).
	rnd.AccessRange(0, 1<<10, 8192, false)

	if seq.Ctr.L2Misses == 0 || rnd.Ctr.L2Misses == 0 {
		t.Fatal("expected misses in both runs")
	}
	seqPer := float64(seq.Ctr.MemCyc) / float64(seq.Ctr.L2Misses)
	rndPer := float64(rnd.Ctr.MemCyc) / float64(rnd.Ctr.L2Misses)
	if seqPer >= rndPer {
		t.Errorf("sequential misses cost %.0f cyc vs strided %.0f; prefetcher missing", seqPer, rndPer)
	}
	if rndPer != float64(DefaultCosts().MemCyc) {
		t.Errorf("strided misses cost %.0f, want full %d", rndPer, DefaultCosts().MemCyc)
	}
}

func TestPrefetcherStopsAtPageBoundary(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	// 128 sequential lines span two pages: two full-cost misses (one per
	// page head), the rest prefetched.
	c.AccessRange(0, 128, 64, false)
	costs := DefaultCosts()
	wantMem := 2*costs.MemCyc + 126*costs.StreamCyc
	if c.Ctr.MemCyc != wantMem {
		t.Errorf("MemCyc = %d, want %d (prefetch must break at 4KB boundaries)", c.Ctr.MemCyc, wantMem)
	}
}

func TestComputeAndWait(t *testing.T) {
	pt := pagetable.New()
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	c.Compute(100)
	c.Wait(50)
	if c.Ctr.Busy != 150 || c.Ctr.BarrierCyc != 50 {
		t.Errorf("busy=%d barrier=%d", c.Ctr.Busy, c.Ctr.BarrierCyc)
	}
}

func TestInvalidatePageForcesRewalk(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	c.Load(0)
	walks := c.Ctr.DTLBWalks()
	c.Load(8) // same page: no walk
	if c.Ctr.DTLBWalks() != walks {
		t.Fatal("unexpected walk")
	}
	c.InvalidatePage(0, units.Size4K)
	c.Load(16)
	if c.Ctr.DTLBWalks() != walks+1 {
		t.Error("shootdown did not force a re-walk")
	}
}

func TestFaultHandlerRetries(t *testing.T) {
	pt := pagetable.New()
	if err := pt.Map(0, units.Size4K, 1, pagetable.ProtRead); err != nil {
		t.Fatal(err)
	}
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	c := ctxs[0]
	faults := 0
	c.OnFault = func(va units.Addr, write bool) error {
		faults++
		_, err := pt.Protect(0, pagetable.ProtRW)
		return err
	}
	c.Store(0x10) // write to a read-only page: trap, upgrade, retry
	if faults != 1 {
		t.Errorf("fault handler ran %d times, want 1", faults)
	}
	if c.Ctr.Stores != 1 {
		t.Error("store not completed after fault service")
	}
}

func TestUnhandledFaultPanics(t *testing.T) {
	pt := pagetable.New() // nothing mapped
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(1)
	defer func() {
		if recover() == nil {
			t.Error("access to unmapped memory should panic (simulation bug trap)")
		}
	}()
	ctxs[0].Load(0xdead000)
}

func TestSMTInterleavePolicyNoFlush(t *testing.T) {
	model := XeonHT()
	model.SMT = SMTInterleave
	pt := pagetable.New()
	mapRange(t, pt, 0, 16*units.MB, units.Size4K)
	m := New(model)
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(8)
	c := ctxs[0]
	c.AccessRange(0, 1000, 8192, false)
	if c.Ctr.SMTSwitches != 0 {
		t.Error("interleaved SMT must not charge flush penalties")
	}
	if !c.HasSibling() {
		t.Error("sibling expected at 8 threads")
	}
}

func TestL2PartitionAcrossChipSharers(t *testing.T) {
	// Xeon: the chip L2 is shared by 2 cores at 4 threads (half each) and
	// by 4 contexts at 8 threads (quarter each).
	m := New(XeonHT())
	m.AttachProcess(pagetable.New())
	full := XeonHT().L2.SizeBytes
	ctxs, _ := m.Configure(4)
	if got := int64(ctxs[0].l2.Lines()) * units.CacheLineSize; got != full/2 {
		t.Errorf("4-thread L2 share = %d, want %d", got, full/2)
	}
	ctxs, _ = m.Configure(8)
	if got := int64(ctxs[0].l2.Lines()) * units.CacheLineSize; got != full/4 {
		t.Errorf("8-thread L2 share = %d, want %d", got, full/4)
	}
	// Opteron L2 is private: never partitioned.
	mo := New(Opteron270())
	mo.AttachProcess(pagetable.New())
	ctxs, _ = mo.Configure(4)
	if got := int64(ctxs[0].l2.Lines()) * units.CacheLineSize; got != Opteron270().L2.SizeBytes {
		t.Errorf("Opteron L2 share = %d, want private %d", got, Opteron270().L2.SizeBytes)
	}
}

func TestShootdownMailboxIsAsynchronous(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, _ := m.Configure(2)
	victim := ctxs[0]

	victim.Load(0) // fill the translation
	walks := victim.Ctr.DTLBWalks()

	// A foreign goroutine queues the shootdown (the THP/SCASH hook calls
	// victim.InvalidatePage); the victim's TLB structures are untouched
	// until its own next access (IPI semantics).
	victim.InvalidatePage(0, units.Size4K)
	if !victim.shootFlag.Load() {
		t.Fatal("shootdown not queued")
	}
	if victim.dtlb.Access(units.Size4K.VPN(0), units.Size4K, false) == tlb.Miss {
		t.Fatal("shootdown mutated the TLB before the owner drained it")
	}
	victim.Load(8) // drains the mailbox, then must re-walk
	if victim.Ctr.DTLBWalks() != walks+1 {
		t.Errorf("walks = %d, want %d (re-walk after drained shootdown)",
			victim.Ctr.DTLBWalks(), walks+1)
	}
	// FlushTLBs is delivered the same way.
	victim.Load(16) // hit
	victim.FlushTLBs()
	victim.Load(24)
	if victim.Ctr.DTLBWalks() != walks+2 {
		t.Errorf("walks after flush = %d, want %d", victim.Ctr.DTLBWalks(), walks+2)
	}
}
