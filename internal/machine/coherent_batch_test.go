package machine

import (
	"sync"
	"testing"

	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

// TestCoherentConcurrentAccessRange drives all four coherent Opteron contexts
// from real goroutines through overlapping bulk ranges and gathers — private
// partitions that stay on the lock-free fast path plus a contended shared
// window that forces run-level bus transactions — and then audits the two
// properties concurrency could break: every context L2 miss is exactly one
// bus transaction (the counters conserve across the per-cache shards), and
// the MESI single-owner discipline holds on the contended lines. Run under
// -race this also proves the fast path publishes states safely.
func TestCoherentConcurrentAccessRange(t *testing.T) {
	pt := pagetable.New()
	mapRange(t, pt, 0, 4*units.MB, units.Size4K)
	m := New(coherentOpteron())
	m.AttachProcess(pt)
	ctxs, err := m.Configure(4)
	if err != nil {
		t.Fatal(err)
	}
	const sharedBase = units.Addr(3 * units.MB)
	var wg sync.WaitGroup
	for i, c := range ctxs {
		wg.Add(1)
		go func(i int, c *Context) {
			defer wg.Done()
			base := units.Addr(int64(i) * 512 * units.KB) // private partition
			idx := make([]int64, 512)
			for j := range idx {
				idx[j] = int64((j*37 + i*13) % 4096)
			}
			for rep := 0; rep < 16; rep++ {
				c.AccessRange(base, 4096, 8, rep%2 == 0)
				c.AccessRange(sharedBase, 2048, 8, rep%3 == 0)
				c.GatherRange(base, 8, idx)
			}
		}(i, c)
	}
	wg.Wait()

	var l2Misses uint64
	for _, c := range ctxs {
		l2Misses += c.Ctr.L2Misses
	}
	b := m.Bus()
	if busMisses := b.ReadMisses() + b.WriteMisses(); busMisses != l2Misses {
		t.Errorf("conservation broken: %d bus miss transactions != %d context L2 misses",
			busMisses, l2Misses)
	}
	for off := int64(0); off < 2048*8; off += 64 {
		line := (uint64(sharedBase) + uint64(off)) / 64
		mo, e, s := b.Owners(line)
		if mo+e > 1 || (mo+e == 1 && s > 0) {
			t.Errorf("line %#x: %d Modified, %d Exclusive, %d Shared owners", line, mo, e, s)
		}
	}
}
