package machine

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"hugeomp/internal/cache"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/profile"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

const lineShift = 6 // 64-byte cache lines

// FaultHandler services a protection fault raised during simulated access.
// The SCASH coherence protocol installs one; after it returns nil the access
// is retried.
type FaultHandler func(va units.Addr, write bool) error

// Context is one hardware thread context: the unit a simulated OpenMP thread
// runs on. It owns (or, in true-sharing mode, co-owns behind locks) an ITLB
// stack, a DTLB stack and an L1/L2 cache pair, and accumulates exact event
// counts and cycle costs for every access.
//
// A Context is driven by exactly one goroutine at a time. Caches are indexed
// by virtual line address (the simulated process is the only user of the
// machine, so virtual≡physical indexing is behaviour-preserving and lets the
// hot path skip PFN bookkeeping).
type Context struct {
	ID     int
	Chip   int
	Core   int
	Thread int

	machine *Machine
	pt      *pagetable.Table
	itlb    *tlb.Hierarchy
	dtlb    *tlb.Hierarchy
	l1      *cache.Cache
	l2      *cache.Cache

	coreMu *sync.Mutex // guards itlb/dtlb/l1 in true-sharing mode
	l2Mu   *sync.Mutex // guards l2 in true-sharing mode

	costs      *Costs
	hasSibling bool // another context is co-scheduled on this core
	smtFlush   bool // flush-on-switch SMT penalty applies

	// OnFault, if set, services protection faults (SCASH coherence traps).
	OnFault FaultHandler

	// Page-size probe hints (most processes use one size class per segment).
	dataHint  units.PageSize
	fetchHint units.PageSize

	// Address-pattern memo: the line of the last committed single access and
	// whether that probe was a write. A repeat touch of the same line is an
	// L1 hit by construction (the line is resident and MRU, and this context
	// is the only mutator of its L1), so spinlock spins, reduction cells and
	// barrier-flag polls fold into bulk-accounted hit cycles without
	// re-probing — the same trick the bulk paths' runExtra plays for line
	// runs. Valid only while no drain, flush or range/gather engine has run
	// since the probe; never armed in true-sharing mode (coreMu != nil),
	// where a sibling can evict the line.
	foldLine uint64
	foldMod  bool
	foldOK   bool

	// Fetch micro-TLB: the translation of the last code page touched.
	// Consecutive same-page fetches are ITLB hits by construction, so
	// skipping the probe is behaviour-preserving.
	lastFetchBase units.Addr
	lastFetchMask units.Addr
	fetchCacheOK  bool

	// Stream-prefetcher state: the last line that missed to memory, valid
	// only while the miss run is unbroken (an intervening L2 hit ends it).
	lastMissLine  uint64
	lastMissValid bool

	// Translation cache: a direct-mapped host-side cache covering every
	// scalar translation. Each slot packs two independently valid facts
	// about one 4 KB-granule VPN: the page-walk result (generation-stamped
	// via xlatGen, so repeat walks to an unchanged table never take the
	// table's RWMutex) and a DTLB L1 way handle (validated against the live
	// TLB on every use, so scalar accesses that stay TLB-resident skip the
	// whole probe cascade). Purely a simulator fast path — simulated costs
	// are charged identically either way. Only the owning goroutine touches
	// it; see walk and translateScalar for the validity protocols.
	xlat []xlatSlot
	// xlatGen is the pagetable generation the walk halves of xlat were
	// filled under; a mismatch with pt.Gen() lazily wipes the cache (the
	// epoch sweep that replaced per-slot generation stamps).
	xlatGen uint64

	// Scratch buffers for GatherRange/ScatterRange index sorting, reused
	// across calls so steady-state gathers are allocation-free.
	idxSort []int64
	idxTmp  []int64
	idxCnt  []int32

	// Run-batch scratch for the coherent-bus bulk paths (see flushRuns),
	// reused across calls so steady-state ranges are allocation-free.
	runLine  []uint64
	runExtra []int32
	runKind  []uint8
	pendIdx  []int32
	pendLine []uint64
	pendOut  []cache.LineTxn

	// Shootdown mailbox: cross-context TLB invalidations are delivered like
	// IPIs — enqueued by the sender, drained by the owning goroutine at its
	// next access — so no other goroutine ever mutates this context's TLBs.
	shootFlag atomic.Bool
	shootMu   sync.Mutex
	pending   []shootReq

	// Ctr accumulates this context's events. Busy is its cycle clock.
	Ctr profile.Counters
}

type shootReq struct {
	va   units.Addr
	size units.PageSize
	all  bool // full flush
}

// xlatSlots sizes the per-context translation cache (direct-mapped, keyed by
// 4 KB virtual page number). Must be a power of two. 4096 slots cover 16 MB
// of 4 KB pages — the working sets of the NPB classes the harness sweeps —
// in 64 KB per context; conflicts merely fall back to a locked walk.
const xlatSlots = 4096

// xlatSlot key bits. The key is vpn<<2 with two validity bits: xlatWay marks
// the TLB way handle (low byte of val) valid, xlatWalk the packed page-walk
// result (upper bits of val). The zero key carries neither bit, so a zeroed
// cache is empty.
const (
	xlatWalk = 1 << 0
	xlatWay  = 1 << 1
)

// xlatSlot caches what the simulator knows about one 4 KB-granule VPN in 16
// bytes: val's low byte holds the DTLB L1 way (7 bits) and page-size class
// (1 bit) for the scalar fast path, and its upper bits a
// pagetable.WalkResult packed by pagetable.Pack. Either half may be valid
// without the other (ITLB walks install no way; TLB-hit memoisation installs
// no walk result).
type xlatSlot struct {
	key uint64
	val uint64
}

// HasSibling reports whether an SMT sibling is co-scheduled on this core.
func (c *Context) HasSibling() bool { return c.hasSibling }

// Machine returns the owning machine.
func (c *Context) Machine() *Machine { return c.machine }

// DTLB exposes the data-TLB stack (tests and the cpuid reproduction).
func (c *Context) DTLB() *tlb.Hierarchy { return c.dtlb }

// ITLB exposes the instruction-TLB stack.
func (c *Context) ITLB() *tlb.Hierarchy { return c.itlb }

func (c *Context) resetPageCache() {
	c.foldOK = false
	c.fetchCacheOK = false
}

// SetPageHint primes the page-size probe order (the core layer sets it from
// the allocation policy so the common class is probed first).
func (c *Context) SetPageHint(s units.PageSize) {
	c.dataHint = s
	c.fetchHint = s
}

// lockCore acquires the core lock in true-sharing mode.
func (c *Context) lockCore() {
	if c.coreMu != nil {
		c.coreMu.Lock()
	}
}
func (c *Context) unlockCore() {
	if c.coreMu != nil {
		c.coreMu.Unlock()
	}
}

// translateData resolves va through the DTLB stack, walking the page table
// on a full miss (or a write hitting a non-writable entry). It returns the
// mapped page size, whether the filled entry is writable, and the cycle cost
// beyond a first-level hit. Caller holds the core lock in true-sharing mode.
func (c *Context) translateData(va units.Addr, write bool) (units.PageSize, bool, uint64) {
	order := [2]units.PageSize{c.dataHint, c.dataHint ^ 1}
	for _, s := range order {
		vpn := s.VPN(va)
		switch c.dtlb.Access(vpn, s, write) {
		case tlb.HitL1:
			c.dataHint = s
			return s, write, 0
		case tlb.HitL2:
			c.dataHint = s
			c.countL1Miss(s)
			c.Ctr.DTLBL2Hit++
			return s, write, c.costs.TLBL2Cyc
		}
	}
	// Full miss: hardware page walk (servicing protection faults first).
	wr := c.walk(va, write)
	size := wr.Entry.Size
	c.countL1Miss(size)
	if size == units.Size2M {
		c.Ctr.DTLBWalks2M++
	} else {
		c.Ctr.DTLBWalks4K++
	}
	cyc := uint64(wr.MemRefs) * c.costs.WalkRefCyc
	c.Ctr.WalkCyc += cyc
	writable := wr.Entry.Prot&pagetable.ProtWrite != 0
	c.dtlb.Fill(size.VPN(va), size, writable)
	c.dataHint = size
	return size, writable, cyc
}

func (c *Context) countL1Miss(s units.PageSize) {
	if s == units.Size2M {
		c.Ctr.DTLBL1Miss2M++
	} else {
		c.Ctr.DTLBL1Miss4K++
	}
}

// translateScalar resolves va for the scalar access paths, returning the
// page mask, the writability the page state may assume, and the cycle cost
// beyond a first-level TLB hit. It fronts translateData with the xlat way
// memo: a slot whose page-size class matches the probe hint and whose
// memoised DTLB L1 way still holds the VPN (L1HitAt — which performs exactly
// the recency refresh and hit accounting a Lookup hit would) resolves in one
// validated probe, skipping the filter load and scan of the full cascade.
// The size gate is what makes the memo hit byte-identical to translateData:
// it proves the full path's first-probed class would have hit L1, so the
// outcome, the zero cycle cost and the unchanged probe hint all coincide. A
// failed validation has no effect and falls through to the full path, which
// re-memoises: every translation resolved by translateData sits at its L1
// set's MRU position, so the handle is O(1) to capture. Caller holds the
// core lock in true-sharing mode.
//
//simlint:hotpath
func (c *Context) translateScalar(va units.Addr, write bool) (units.Addr, bool, uint64) {
	vpn := uint64(va) >> units.PageShift4K
	slot := &c.xlat[vpn&(xlatSlots-1)]
	if slot.key>>2 == vpn && slot.key&xlatWay != 0 {
		size := units.PageSize(slot.val >> 7 & 1)
		if size == c.dataHint &&
			c.dtlb.L1HitAt(size, int(slot.val&0x7f), size.VPN(va), write) {
			return size.Mask(), write, 0
		}
	}
	size, writable, cyc := c.translateData(va, write)
	if w := c.dtlb.L1MRUWay(size, size.VPN(va)); w >= 0 {
		memo := uint64(w) | uint64(size)<<7
		if slot.key>>2 == vpn {
			slot.key |= xlatWay
			slot.val = slot.val&^0xff | memo
		} else {
			// Direct-mapped conflict: the way memo displaces the slot's
			// previous VPN entirely (a half-valid mix of two pages would be
			// unsound).
			slot.key = vpn<<2 | xlatWay
			slot.val = memo
		}
	}
	return size.Mask(), writable, cyc
}

// walk resolves va through the page table, retrying after serviced faults.
// Repeat walks are served from the per-context translation cache: the cache
// as a whole is stamped with the table generation its walk results were
// filled under (xlatGen), so while that stamp still equals Gen() the table
// has not mutated and every cached result is exactly what a fresh walk would
// return — without taking the table's RWMutex. A stale stamp lazily wipes
// the cache; a protection mismatch (which must reach OnFault) just falls
// through to the locked walk. Invalidation is purely monotonic: Map/Unmap/
// Protect bump the generation, and the TLB-level consequences are already
// handled by the shootdown mailbox. A walk that races a table mutation
// installs a result the sweep will discard at the next walk (xlatGen is only
// synced at entry, so it can never run ahead and validate a stale slot).
func (c *Context) walk(va units.Addr, write bool) pagetable.WalkResult {
	vpn := uint64(va) >> units.PageShift4K
	if gen := c.pt.Gen(); gen != c.xlatGen {
		clear(c.xlat)
		c.xlatGen = gen
	}
	slot := &c.xlat[vpn&(xlatSlots-1)]
	if slot.key>>2 == vpn && slot.key&xlatWalk != 0 {
		wr := pagetable.UnpackWalk(slot.val >> 8)
		need := pagetable.ProtRead
		if write {
			need = pagetable.ProtWrite
		}
		if wr.Entry.Prot&need != 0 {
			return wr
		}
	}
	for {
		wr, err := c.pt.Access(va, write)
		if err == nil {
			if packed, ok := wr.Pack(); ok {
				if slot.key>>2 == vpn {
					slot.key |= xlatWalk
					slot.val = slot.val&0xff | packed<<8
				} else {
					slot.key = vpn<<2 | xlatWalk
					slot.val = packed << 8
				}
			}
			return wr
		}
		faultable := errors.Is(err, pagetable.ErrProtViolation) ||
			errors.Is(err, pagetable.ErrNotMapped)
		if faultable && c.OnFault != nil {
			// Soft fault: protection trap (SCASH coherence) or demand
			// paging (transparent huge pages). Charge the kernel
			// entry/exit and fill cost to this context.
			if ferr := c.OnFault(va, write); ferr != nil {
				panic(fmt.Sprintf("machine: context %d fault handler failed at %#x: %v", c.ID, va, ferr))
			}
			c.Ctr.SoftFaults++
			c.Ctr.Busy += c.costs.SoftFaultCyc
			continue
		}
		panic(fmt.Sprintf("machine: context %d unhandled fault at %#x: %v", c.ID, va, err))
	}
}

// cacheAccess runs the data-cache hierarchy for one line and returns its
// cycle cost. Caller holds the core lock in true-sharing mode.
//
//simlint:hotpath
func (c *Context) cacheAccess(line uint64, write bool) uint64 {
	res := c.l1.Access(line, write)
	if res.Hit {
		c.Ctr.L1Hits++
		return c.costs.L1HitCyc
	}
	c.Ctr.L1Misses++
	// Private-line fast path: with a private L2 on a coherent bus, an owner
	// hit that needs no bus transaction (any read hit, or a write hit on an
	// M line or a still-private E line) is served lock-free — no shard lock,
	// no per-cache mutex. Counter-equivalent to the locked path: these hits
	// touch no bus counters there either.
	if c.machine.bus != nil && c.l2Mu == nil && c.l2.FastAccess(line, write) {
		c.Ctr.L2Hits++
		c.lastMissValid = false
		return c.costs.L2HitCyc
	}
	// Only the L2/bus lookup touches shared state; counters and prefetcher
	// state are per-context, so the lock window stays minimal (no defer —
	// this is the hottest path in the simulator).
	if c.l2Mu != nil {
		c.l2Mu.Lock()
	}
	var res2 cache.Result
	interv := false
	if bus := c.machine.bus; bus != nil {
		// l2Mu is only non-nil for a truly shared L2, where it is the
		// outermost lock of the hierarchy (Context.l2Mu ranks above busShard
		// and Cache in lockorder.Order) and no bus path ever takes it back,
		// so holding it across the transaction cannot deadlock — it is what
		// serialises the shared L2.
		res2, interv = bus.Access(c.l2, line, write)
	} else {
		res2 = c.l2.Access(line, write)
	}
	if c.l2Mu != nil {
		c.l2Mu.Unlock()
	}
	if res2.Hit {
		c.Ctr.L2Hits++
		// The L2 hit interrupts the miss stream: the prefetcher's run
		// continuation must not survive it, or the next unrelated miss
		// would be mislabelled as sequential.
		c.lastMissValid = false
		return c.costs.L2HitCyc
	}
	c.Ctr.L2Misses++
	cyc := c.costs.MemCyc
	// Stream prefetcher: a miss continuing a sequential run is mostly
	// hidden, except at 4 KB boundaries where the 2007-era prefetchers
	// stop (64 lines of 64 B per 4 KB).
	if c.lastMissValid && line == c.lastMissLine+1 && line%64 != 0 {
		cyc = c.costs.StreamCyc
	}
	c.lastMissLine = line
	c.lastMissValid = true
	if interv {
		cyc = c.costs.C2CCyc
	}
	c.Ctr.MemCyc += cyc
	if c.smtFlush {
		// The Xeon SMT implementation evicts the thread context on a memory
		// load stall, flushing the pipeline (paper §3.2, §4.4).
		c.Ctr.SMTSwitches++
		c.Ctr.FlushCycles += c.costs.FlushCyc
		cyc += c.costs.FlushCyc
	}
	return cyc
}

// Resolution outcomes of a collected line run (see flushRuns).
const (
	runPending uint8 = iota
	runL1Hit
	runL2Hit
	runMem    // memory fill
	runMemItv // memory fill supplied by a peer cache (cache-to-cache)
)

// batchRuns reports whether the bulk paths may collect line runs and resolve
// them through batched bus transactions: a coherent bus, a private L2 (no
// l2Mu — a truly shared L2 serialises on its mutex anyway), and an L2 with
// at least one set per line of a shard group. The set-count condition makes
// the lines of one group occupy pairwise-distinct sets, which is what lets a
// deferred group transaction commute with the fast-path hits attempted
// between its lines (no victim-selection interaction between batch members).
func (c *Context) batchRuns() bool {
	return c.machine.bus != nil && c.l2Mu == nil && c.l2.Sets() >= cache.GroupLines
}

// pushRun collects one line run (head line plus extra same-line follow-up
// accesses) for deferred resolution by flushRuns.
func (c *Context) pushRun(line uint64, extra int32) {
	c.runLine = append(c.runLine, line)
	c.runExtra = append(c.runExtra, extra)
}

// flushRuns resolves the line runs collected from one page segment and
// returns their cycle cost. It is the run-transaction counterpart of calling
// cacheAccess once per run head, restructured into three passes so a whole
// shard group of L2 misses becomes one bus transaction:
//
//  1. L1 lookups, in access order (L1 state never depends on L2 outcomes);
//  2. L2 resolution for the L1 misses, in access order: the private-line
//     fast path first, then one Bus.AccessLines transaction per shard group
//     for the leftovers. The pending batch is flushed whenever the next
//     miss crosses into a different group, so operations never reorder
//     across groups; within a group the batch members occupy distinct L2
//     sets (batchRuns' geometry gate), so deferring them past the group's
//     fast-path hits commutes.
//  3. cycle charging and prefetcher bookkeeping, in access order (the
//     stream-detector state is order-sensitive, so it runs only after every
//     run's outcome is known).
//
// The per-line counter updates and cache-state evolution are exactly those
// of the per-line path; the equivalence is property-tested against
// AccessRangeScalar/GatherRangeScalar on coherent machines.
//
//simlint:hotpath
func (c *Context) flushRuns(write bool) uint64 {
	nr := len(c.runLine)
	if nr == 0 {
		return 0
	}
	if cap(c.runKind) < nr {
		c.runKind = make([]uint8, nr, cap(c.runLine))
	}
	c.runKind = c.runKind[:nr]

	// Pass 1: L1.
	for r, line := range c.runLine {
		if c.l1.Access(line, write).Hit {
			c.Ctr.L1Hits++
			c.runKind[r] = runL1Hit
		} else {
			c.Ctr.L1Misses++
			c.runKind[r] = runPending
		}
	}

	// Pass 2: L2 fast path + batched bus transactions.
	bus := c.machine.bus
	c.pendIdx = c.pendIdx[:0]
	c.pendLine = c.pendLine[:0]
	flush := func() {
		if len(c.pendLine) == 0 {
			return
		}
		if cap(c.pendOut) < len(c.pendLine) {
			c.pendOut = make([]cache.LineTxn, len(c.pendLine))
		}
		out := c.pendOut[:len(c.pendLine)]
		bus.AccessLines(c.l2, c.pendLine, write, out)
		for k, r := range c.pendIdx {
			if out[k].Hit {
				c.Ctr.L2Hits++
				c.runKind[r] = runL2Hit
			} else if out[k].Intervention {
				c.Ctr.L2Misses++
				c.runKind[r] = runMemItv
			} else {
				c.Ctr.L2Misses++
				c.runKind[r] = runMem
			}
		}
		c.pendIdx = c.pendIdx[:0]
		c.pendLine = c.pendLine[:0]
	}
	for r, line := range c.runLine {
		if c.runKind[r] != runPending {
			continue
		}
		if len(c.pendLine) > 0 && cache.GroupOf(line) != cache.GroupOf(c.pendLine[0]) {
			flush()
		}
		if c.l2.FastAccess(line, write) {
			c.Ctr.L2Hits++
			c.runKind[r] = runL2Hit
			continue
		}
		c.pendIdx = append(c.pendIdx, int32(r))
		c.pendLine = append(c.pendLine, line)
	}
	flush()

	// Pass 3: cycles.
	var busy uint64
	hitCyc := c.costs.ExecCyc + c.costs.L1HitCyc
	for r, line := range c.runLine {
		busy += c.costs.ExecCyc
		switch c.runKind[r] {
		case runL1Hit:
			busy += c.costs.L1HitCyc
		case runL2Hit:
			busy += c.costs.L2HitCyc
			c.lastMissValid = false
		default:
			cyc := c.costs.MemCyc
			if c.lastMissValid && line == c.lastMissLine+1 && line%64 != 0 {
				cyc = c.costs.StreamCyc
			}
			c.lastMissLine = line
			c.lastMissValid = true
			if c.runKind[r] == runMemItv {
				cyc = c.costs.C2CCyc
			}
			c.Ctr.MemCyc += cyc
			if c.smtFlush {
				c.Ctr.SMTSwitches++
				c.Ctr.FlushCycles += c.costs.FlushCyc
				cyc += c.costs.FlushCyc
			}
			busy += cyc
		}
		if extra := c.runExtra[r]; extra > 0 {
			c.Ctr.L1Hits += uint64(extra)
			busy += uint64(extra) * hitCyc
		}
	}
	c.runLine = c.runLine[:0]
	c.runExtra = c.runExtra[:0]
	return busy
}

// dataAccess commits one scalar data access. The fast path is the
// address-pattern fold: a repeat touch of the last line charges one
// bulk-accounted L1 hit without translating or probing (see the foldLine
// field docs for the equivalence argument — a write only folds onto a
// previous write, whose probe left the line Modified). Everything else
// resolves through the translation memo and the cache hierarchy.
//
//simlint:hotpath
func (c *Context) dataAccess(va units.Addr, write bool) {
	if write {
		c.Ctr.Stores++
	} else {
		c.Ctr.Loads++
	}
	c.lockCore()
	if c.shootFlag.Load() {
		c.drainShootdowns()
	}
	line := uint64(va) >> lineShift
	if c.foldOK && line == c.foldLine && (!write || c.foldMod) {
		c.Ctr.L1Hits++
		c.unlockCore()
		c.Ctr.Busy += c.costs.ExecCyc + c.costs.L1HitCyc
		return
	}
	cyc := c.costs.ExecCyc
	_, _, tcyc := c.translateScalar(va, write)
	cyc += tcyc
	cyc += c.cacheAccess(line, write)
	if c.coreMu == nil {
		c.foldLine, c.foldMod, c.foldOK = line, write, true
	}
	c.unlockCore()
	c.Ctr.Busy += cyc
}

// Load simulates an 8-byte load at va.
func (c *Context) Load(va units.Addr) { c.dataAccess(va, false) }

// Store simulates an 8-byte store at va.
func (c *Context) Store(va units.Addr) { c.dataAccess(va, true) }

// AccessRange simulates n accesses at base, base+stride, base+2·stride, …
// with exact TLB/cache behaviour. Non-zero-stride runs take the bulk fast
// path, which computes the identical counter updates in O(pages·lines)
// instead of O(elements): one translation per page segment and, for stride
// magnitudes below the cache-line size, one cache lookup per line run with
// the remaining same-line accesses bulk-accounted as the L1 hits they are by
// construction (negative strides walk the segments in descending address
// order). Zero strides and contexts with a fault handler installed (SCASH
// coherence, transparent huge pages — where a walk can change the mapping
// mid-run) fall back to the scalar reference path.
func (c *Context) AccessRange(base units.Addr, n int, stride int64, write bool) {
	if n <= 0 {
		return
	}
	if write {
		c.Ctr.Stores += uint64(n)
	} else {
		c.Ctr.Loads += uint64(n)
	}
	c.lockCore()
	c.foldOK = false
	var busy uint64
	if stride != 0 && c.OnFault == nil {
		busy = c.rangeBulk(base, n, stride, write)
	} else {
		busy = c.rangeScalar(base, n, stride, write)
	}
	c.unlockCore()
	c.Ctr.Busy += busy
}

// AccessRangeScalar is the O(elements) reference implementation of
// AccessRange: every element is translated and cache-probed individually
// through the pristine cascade (no translation memo, no fold, per-element
// drain polls). The committed paths are property-tested to produce
// byte-identical counters (TestAccessRangeEquivalenceProperty,
// FuzzScalarFastPath); this entry point exists for those tests and for the
// before/after micro-benchmarks.
func (c *Context) AccessRangeScalar(base units.Addr, n int, stride int64, write bool) {
	if n <= 0 {
		return
	}
	if write {
		c.Ctr.Stores += uint64(n)
	} else {
		c.Ctr.Loads += uint64(n)
	}
	c.lockCore()
	c.foldOK = false
	busy := c.rangeScalarRef(base, n, stride, write)
	c.unlockCore()
	c.Ctr.Busy += busy
}

// AccessScalarRef is the pristine single-access reference: one element of
// rangeScalarRef. It is what Load/Store commit to being equivalent with —
// the fuzz harness replays committed op streams through it and compares
// counters byte-for-byte.
func (c *Context) AccessScalarRef(va units.Addr, write bool) {
	if write {
		c.Ctr.Stores++
	} else {
		c.Ctr.Loads++
	}
	c.lockCore()
	c.foldOK = false
	busy := c.rangeScalarRef(va, 1, 0, write)
	c.unlockCore()
	c.Ctr.Busy += busy
}

// drainWindow is the element interval at which the scalar range/gather
// engines poll shootFlag. The mailbox contract is "applied at a subsequent
// access of the owning context", which any polling interval satisfies; the
// window turns n atomic loads into n/64 without changing where quiescent
// runs drain (a stream with no shootdown in flight drains nowhere, and one
// with a shootdown pending at entry drains at element 0 either way — the
// property test in scalar_ref_test.go pins both). Must be a power of two.
const drainWindow = 64

// rangeScalar is the committed per-element engine behind the scalar range
// entry points (zero strides, fault-handler contexts). It keeps the page
// translation and the single-line fold in loop locals: one translation per
// page run and one cache probe per line run, with repeat touches
// bulk-accounted as the L1 hits they are by construction — byte-identical
// counters to rangeScalarRef's element-at-a-time cascade. Shootdowns drain
// at drainWindow boundaries, resetting both memos. Caller holds the core
// lock.
//
//simlint:hotpath
func (c *Context) rangeScalar(base units.Addr, n int, stride int64, write bool) uint64 {
	var busy uint64
	var pageBase, pageMask units.Addr
	var pageW, pageOK bool
	var foldLine uint64
	foldOK := false
	canFold := c.coreMu == nil
	hitCyc := c.costs.ExecCyc + c.costs.L1HitCyc
	for i := 0; i < n; i++ {
		if i&(drainWindow-1) == 0 && c.shootFlag.Load() {
			c.drainShootdowns()
			pageOK, foldOK = false, false
		}
		va := base + units.Addr(int64(i)*stride)
		line := uint64(va) >> lineShift
		if foldOK && line == foldLine {
			c.Ctr.L1Hits++
			busy += hitCyc
			continue
		}
		cyc := c.costs.ExecCyc
		if !pageOK || va&^pageMask != pageBase || (write && !pageW) {
			mask, w, tcyc := c.translateScalar(va, write)
			cyc += tcyc
			pageMask, pageBase, pageW, pageOK = mask, va&^mask, w, true
		}
		cyc += c.cacheAccess(line, write)
		if canFold {
			foldLine, foldOK = line, true
		}
		busy += cyc
	}
	return busy
}

// rangeScalarRef is the pristine per-element reference engine: every element
// runs the full translate→TLB→L1→L2 cascade with no memo, no fold and a
// per-element drain poll. The committed engines (rangeScalar, rangeBulk) are
// property- and fuzz-tested to produce byte-identical counters. Caller holds
// the core lock.
func (c *Context) rangeScalarRef(base units.Addr, n int, stride int64, write bool) uint64 {
	var busy uint64
	for i := 0; i < n; i++ {
		va := base + units.Addr(int64(i)*stride)
		cyc := c.costs.ExecCyc
		if c.shootFlag.Load() {
			c.drainShootdowns()
		}
		_, _, tcyc := c.translateData(va, write)
		cyc += tcyc
		cyc += c.cacheAccess(uint64(va)>>lineShift, write)
		busy += cyc
	}
	return busy
}

// rangeBulk is the O(pages·lines) fast path. The range is decomposed into
// page segments (one translation each — exactly what the per-element
// micro-TLB check would do, since the write-upgrade re-probe can only fire
// on a segment's first element) and each segment into cache-line runs: after
// a run's head access the line is resident, so the remaining same-line
// accesses are L1 hits by construction and are accounted in bulk. Skipping
// their individual probes also skips LRU stamp refreshes, but a skip only
// happens inside a run of accesses to one line, so the relative recency of
// distinct lines — all that LRU replacement observes — is unchanged.
// Shootdowns are drained at page-segment granularity (the mailbox contract
// is "applied at the next access", which this satisfies). Negative strides
// walk the same decomposition in descending address order: a segment ends
// when the address drops below the page base, a run when it drops below the
// line base. Caller holds the core lock; stride must be non-zero and OnFault
// nil.
func (c *Context) rangeBulk(base units.Addr, n int, stride int64, write bool) uint64 {
	var busy uint64
	hitCyc := c.costs.ExecCyc + c.costs.L1HitCyc
	batched := c.batchRuns()
	var pageBase, pageMask units.Addr
	var pageW, pageOK bool
	abs := stride
	if abs < 0 {
		abs = -abs
	}
	for i := 0; i < n; {
		if c.shootFlag.Load() {
			c.drainShootdowns()
			pageOK = false
		}
		va := base + units.Addr(int64(i)*stride)
		if !pageOK || va&^pageMask != pageBase || (write && !pageW) {
			mask, w, tcyc := c.translateScalar(va, write)
			busy += tcyc
			pageMask, pageBase, pageW, pageOK = mask, va&^mask, w, true
		}
		// Elements landing on this page: ascending, ceil((pageEnd−va)/stride);
		// descending, those down to the page base inclusive.
		var segN int
		if stride > 0 {
			pageEnd := int64(pageBase) + int64(pageMask) + 1
			segN = int((pageEnd - int64(va) + stride - 1) / stride)
		} else {
			segN = int((int64(va)-int64(pageBase))/abs) + 1
		}
		if segN > n-i {
			segN = n - i
		}
		if abs >= units.CacheLineSize {
			// At most one element per line: the translation is amortised
			// but every element still probes the cache hierarchy.
			if batched {
				for j := 0; j < segN; j++ {
					eva := va + units.Addr(int64(j)*stride)
					c.pushRun(uint64(eva)>>lineShift, 0)
				}
				busy += c.flushRuns(write)
			} else {
				for j := 0; j < segN; j++ {
					eva := va + units.Addr(int64(j)*stride)
					busy += c.costs.ExecCyc + c.cacheAccess(uint64(eva)>>lineShift, write)
				}
			}
		} else {
			// When a positive stride divides the line size, every
			// line-aligned run holds exactly lineSize/stride elements, so the
			// run-length division is needed only for partial (unaligned)
			// runs. Descending runs always compute their length down to the
			// line base.
			kFull := 0
			if stride > 0 && units.CacheLineSize%stride == 0 {
				kFull = int(units.CacheLineSize / stride)
			}
			for j := 0; j < segN; {
				eva := va + units.Addr(int64(j)*stride)
				line := uint64(eva) >> lineShift
				var k int
				if stride > 0 {
					k = kFull
					if k == 0 || int64(eva)&(units.CacheLineSize-1) != 0 {
						lineEnd := int64(line+1) << lineShift
						k = int((lineEnd - int64(eva) + stride - 1) / stride)
					}
				} else {
					lineBase := int64(line) << lineShift
					k = int((int64(eva)-lineBase)/abs) + 1
				}
				if k > segN-j {
					k = segN - j
				}
				if batched {
					c.pushRun(line, int32(k-1))
				} else {
					busy += c.costs.ExecCyc + c.cacheAccess(line, write)
					if k > 1 {
						c.Ctr.L1Hits += uint64(k - 1)
						busy += uint64(k-1) * hitCyc
					}
				}
				j += k
			}
			if batched {
				busy += c.flushRuns(write)
			}
		}
		i += segN
	}
	return busy
}

// GatherRange simulates len(idx) loads at base + idx[j]·elemSize — the
// indexed access pattern of sparse kernels (CG's a[colidx[k]] gather). The
// accesses are issued in ascending index order: the list is copied into a
// per-context scratch buffer and sorted (the caller's slice is never
// mutated), then decomposed into page segments and cache-line runs exactly
// like rangeBulk — one translation per touched page, one cache probe per
// line run, with the remaining same-line accesses (duplicates included;
// every index counts) bulk-accounted as the L1 hits they are by
// construction. GatherRangeScalar is the per-element reference for the same
// sorted order and is property-tested to produce byte-identical counters.
// Non-positive element sizes and contexts with a fault handler installed
// take the scalar path (still in sorted index order).
func (c *Context) GatherRange(base units.Addr, elemSize int64, idx []int64) {
	c.indexedRange(base, elemSize, idx, false)
}

// ScatterRange simulates len(idx) stores at base + idx[j]·elemSize — the
// write-side dual of GatherRange (e.g. x[perm[i]] = …). Same issue order and
// decomposition as GatherRange.
func (c *Context) ScatterRange(base units.Addr, elemSize int64, idx []int64) {
	c.indexedRange(base, elemSize, idx, true)
}

// GatherRangeScalar is the O(elements) reference implementation of
// GatherRange: the identical sorted issue order, but every element
// translated and cache-probed individually. Exists for the equivalence
// property tests and the before/after micro-benchmarks.
func (c *Context) GatherRangeScalar(base units.Addr, elemSize int64, idx []int64) {
	c.indexedRangeScalar(base, elemSize, idx, false)
}

// ScatterRangeScalar is the scalar reference for ScatterRange.
func (c *Context) ScatterRangeScalar(base units.Addr, elemSize int64, idx []int64) {
	c.indexedRangeScalar(base, elemSize, idx, true)
}

func (c *Context) indexedRange(base units.Addr, elemSize int64, idx []int64, write bool) {
	n := len(idx)
	if n == 0 {
		return
	}
	if write {
		c.Ctr.Stores += uint64(n)
	} else {
		c.Ctr.Loads += uint64(n)
	}
	sorted := c.sortedIndices(idx)
	c.lockCore()
	c.foldOK = false
	var busy uint64
	if elemSize > 0 && c.OnFault == nil {
		busy = c.gatherBulk(base, elemSize, sorted, write)
	} else {
		busy = c.gatherScalar(base, elemSize, sorted, write)
	}
	c.unlockCore()
	c.Ctr.Busy += busy
}

func (c *Context) indexedRangeScalar(base units.Addr, elemSize int64, idx []int64, write bool) {
	n := len(idx)
	if n == 0 {
		return
	}
	if write {
		c.Ctr.Stores += uint64(n)
	} else {
		c.Ctr.Loads += uint64(n)
	}
	sorted := c.sortedIndices(idx)
	c.lockCore()
	c.foldOK = false
	busy := c.gatherScalarRef(base, elemSize, sorted, write)
	c.unlockCore()
	c.Ctr.Busy += busy
}

// gatherScalar is the committed per-element engine over an already-sorted
// index list (fault-handler contexts, non-positive element sizes). Same
// loop-local page and fold memos and windowed drain polls as rangeScalar;
// byte-identical counters to gatherScalarRef. Caller holds the core lock.
//
//simlint:hotpath
func (c *Context) gatherScalar(base units.Addr, elemSize int64, sorted []int64, write bool) uint64 {
	var busy uint64
	var pageBase, pageMask units.Addr
	var pageW, pageOK bool
	var foldLine uint64
	foldOK := false
	canFold := c.coreMu == nil
	hitCyc := c.costs.ExecCyc + c.costs.L1HitCyc
	for i, ix := range sorted {
		if i&(drainWindow-1) == 0 && c.shootFlag.Load() {
			c.drainShootdowns()
			pageOK, foldOK = false, false
		}
		va := base + units.Addr(ix*elemSize)
		line := uint64(va) >> lineShift
		if foldOK && line == foldLine {
			c.Ctr.L1Hits++
			busy += hitCyc
			continue
		}
		cyc := c.costs.ExecCyc
		if !pageOK || va&^pageMask != pageBase || (write && !pageW) {
			mask, w, tcyc := c.translateScalar(va, write)
			cyc += tcyc
			pageMask, pageBase, pageW, pageOK = mask, va&^mask, w, true
		}
		cyc += c.cacheAccess(line, write)
		if canFold {
			foldLine, foldOK = line, true
		}
		busy += cyc
	}
	return busy
}

// gatherScalarRef is the pristine per-element reference for the gather
// paths: the full cascade per element, like rangeScalarRef. Caller holds the
// core lock.
func (c *Context) gatherScalarRef(base units.Addr, elemSize int64, sorted []int64, write bool) uint64 {
	var busy uint64
	for _, ix := range sorted {
		va := base + units.Addr(ix*elemSize)
		cyc := c.costs.ExecCyc
		if c.shootFlag.Load() {
			c.drainShootdowns()
		}
		_, _, tcyc := c.translateData(va, write)
		cyc += tcyc
		cyc += c.cacheAccess(uint64(va)>>lineShift, write)
		busy += cyc
	}
	return busy
}

// gatherBulk is the O(pages·lines) indexed fast path over an already-sorted
// index list. Ascending order makes the rangeBulk argument carry over
// unchanged: all elements on one page are consecutive, so the write-upgrade
// re-probe can only fire on a page's first element and one translation per
// page matches the per-element micro-TLB behaviour; all elements on one line
// are consecutive, so after the run head's probe the rest are L1 hits by
// construction (skipped LRU refreshes stay within a single line's run, so
// the relative recency of distinct lines is unchanged). Shootdowns drain at
// page-segment granularity, like rangeBulk. Caller holds the core lock;
// elemSize must be positive and OnFault nil.
func (c *Context) gatherBulk(base units.Addr, elemSize int64, sorted []int64, write bool) uint64 {
	var busy uint64
	hitCyc := c.costs.ExecCyc + c.costs.L1HitCyc
	batched := c.batchRuns()
	var pageBase, pageMask units.Addr
	var pageW, pageOK bool
	n := len(sorted)
	for i := 0; i < n; {
		if c.shootFlag.Load() {
			c.drainShootdowns()
			pageOK = false
		}
		va := base + units.Addr(sorted[i]*elemSize)
		if !pageOK || va&^pageMask != pageBase || (write && !pageW) {
			mask, w, tcyc := c.translateScalar(va, write)
			busy += tcyc
			pageMask, pageBase, pageW, pageOK = mask, va&^mask, w, true
		}
		pageLast := pageBase + pageMask
		for i < n {
			eva := base + units.Addr(sorted[i]*elemSize)
			if eva > pageLast {
				break
			}
			line := uint64(eva) >> lineShift
			k := 1
			for i+k < n && uint64(base+units.Addr(sorted[i+k]*elemSize))>>lineShift == line {
				k++
			}
			if batched {
				c.pushRun(line, int32(k-1))
			} else {
				busy += c.costs.ExecCyc + c.cacheAccess(line, write)
				if k > 1 {
					c.Ctr.L1Hits += uint64(k - 1)
					busy += uint64(k-1) * hitCyc
				}
			}
			i += k
		}
		if batched {
			busy += c.flushRuns(write)
		}
	}
	return busy
}

// sortedIndices returns idx sorted ascending in a reusable per-context
// scratch buffer, leaving the caller's slice untouched. Index lists are
// either tiny (one sparse row's column indices) or large and uniform (a
// whole region's permutation), so short lists insertion-sort and long ones
// dispatch through distSort — allocation-free once the scratch is warm.
func (c *Context) sortedIndices(idx []int64) []int64 {
	n := len(idx)
	if cap(c.idxSort) < n {
		c.idxSort = make([]int64, n)
	}
	s := c.idxSort[:n]
	copy(s, idx)
	ascending := true
	for i := 1; i < n; i++ {
		if s[i-1] > s[i] {
			ascending = false
			break
		}
	}
	if ascending {
		return s
	}
	if n <= 48 {
		for i := 1; i < n; i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return s
	}
	c.distSort(s)
	return s
}

// distSort sorts a long index list, dispatching on its value range: a dense
// range takes a counting sort (values are their own keys, so the output is
// regenerated from the histogram with no data movement at all), anything
// else the byte-wise radix. Gather index lists are array subscripts, so the
// dense case — range within a small factor of the list length — is the norm.
func (c *Context) distSort(s []int64) {
	n := len(s)
	mn, mx := s[0], s[0]
	for _, v := range s[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	rng := uint64(mx - mn)
	if rng <= uint64(2*n) && rng < 1<<22 { // bucket scratch capped at 16 MB
		buckets := int(rng) + 1
		if cap(c.idxCnt) < buckets {
			c.idxCnt = make([]int32, buckets)
		}
		cnt := c.idxCnt[:buckets]
		for i := range cnt {
			cnt[i] = 0
		}
		for _, v := range s {
			cnt[v-mn]++
		}
		pos := 0
		for b, k := range cnt {
			for ; k > 0; k-- {
				s[pos] = mn + int64(b)
				pos++
			}
		}
		return
	}
	c.radixSort(s, mn, mx)
}

// radixSort sorts s ascending with a byte-wise LSD radix, given the list's
// min and max. Keys compare as uint64(v) XOR the sign bit, which orders
// negative values correctly. Byte lanes above the common prefix of the min
// and max key are constant for every key in between and are skipped
// entirely; a lane whose histogram puts all keys in one bucket skips its
// scatter pass.
func (c *Context) radixSort(s []int64, vmn, vmx int64) {
	n := len(s)
	if cap(c.idxTmp) < n {
		c.idxTmp = make([]int64, n)
	}
	t := c.idxTmp[:n]
	const signBit = uint64(1) << 63
	mn := uint64(vmn) ^ signBit
	mx := uint64(vmx) ^ signBit
	top := 0
	if diff := mn ^ mx; diff != 0 {
		top = (63 - bits.LeadingZeros64(diff)) / 8
	}
	orig := s
	for d := 0; d <= top; d++ {
		shift := uint(8 * d)
		var count [256]int
		for _, v := range s {
			count[((uint64(v)^signBit)>>shift)&0xff]++
		}
		if count[((uint64(s[0])^signBit)>>shift)&0xff] == n {
			continue // constant lane: nothing to move
		}
		pos := 0
		for b := 0; b < 256; b++ {
			cnt := count[b]
			count[b] = pos
			pos += cnt
		}
		for _, v := range s {
			b := ((uint64(v) ^ signBit) >> shift) & 0xff
			t[count[b]] = v
			count[b]++
		}
		s, t = t, s
	}
	if &s[0] != &orig[0] {
		copy(orig, s)
	}
}

// translateFetch resolves va through the ITLB stack, refreshing the fetch
// micro-TLB, and returns the cycle cost beyond a first-level hit. Caller
// holds the core lock.
func (c *Context) translateFetch(va units.Addr) uint64 {
	var cyc uint64
	order := [2]units.PageSize{c.fetchHint, c.fetchHint ^ 1}
	resolved := false
	var size units.PageSize
	for _, s := range order {
		vpn := s.VPN(va)
		if o := c.itlb.Access(vpn, s, false); o != tlb.Miss {
			if o == tlb.HitL2 {
				cyc += c.costs.TLBL2Cyc
			}
			size, resolved = s, true
			break
		}
	}
	if !resolved {
		wr := c.walk(va, false)
		size = wr.Entry.Size
		c.Ctr.ITLBL1Miss++
		c.Ctr.ITLBWalks++
		w := uint64(wr.MemRefs) * c.costs.WalkRefCyc
		c.Ctr.WalkCyc += w
		cyc += w
		c.itlb.Fill(size.VPN(va), size, false)
	}
	c.fetchHint = size
	c.lastFetchMask = size.Mask()
	c.lastFetchBase = va &^ c.lastFetchMask
	c.fetchCacheOK = true
	return cyc
}

// Fetch simulates one instruction-fetch block at code address va through the
// ITLB stack.
func (c *Context) Fetch(va units.Addr) {
	c.Ctr.Fetches++
	cyc := c.costs.FetchCyc
	c.lockCore()
	if c.shootFlag.Load() {
		c.drainShootdowns()
	}
	if !c.fetchCacheOK || va&^c.lastFetchMask != c.lastFetchBase {
		cyc += c.translateFetch(va)
	}
	c.unlockCore()
	c.Ctr.Busy += cyc
}

// FetchRange simulates n instruction-fetch blocks at base, base+stride, …
// (a parallel region's entry touching its code pages), amortising the ITLB
// probe over each page the way rangeBulk does for data: a page segment's
// blocks after the first are fetch micro-TLB hits by construction, so they
// are bulk-accounted at FetchCyc each. Counter-equivalent to calling Fetch
// per block (TestFetchRangeEquivalenceProperty); non-positive strides fall
// back to the per-block loop.
func (c *Context) FetchRange(base units.Addr, n int, stride int64) {
	if n <= 0 {
		return
	}
	c.Ctr.Fetches += uint64(n)
	c.lockCore()
	var busy uint64
	if stride <= 0 {
		for i := 0; i < n; i++ {
			va := base + units.Addr(int64(i)*stride)
			cyc := c.costs.FetchCyc
			if c.shootFlag.Load() {
				c.drainShootdowns()
			}
			if !c.fetchCacheOK || va&^c.lastFetchMask != c.lastFetchBase {
				cyc += c.translateFetch(va)
			}
			busy += cyc
		}
	} else {
		for i := 0; i < n; {
			if c.shootFlag.Load() {
				c.drainShootdowns()
			}
			va := base + units.Addr(int64(i)*stride)
			if !c.fetchCacheOK || va&^c.lastFetchMask != c.lastFetchBase {
				busy += c.translateFetch(va)
			}
			pageEnd := int64(c.lastFetchBase) + int64(c.lastFetchMask) + 1
			segN := int((pageEnd - int64(va) + stride - 1) / stride)
			if segN > n-i {
				segN = n - i
			}
			busy += uint64(segN) * c.costs.FetchCyc
			i += segN
		}
	}
	c.unlockCore()
	c.Ctr.Busy += busy
}

// Compute charges cyc cycles of pure computation (ALU/FPU work between
// memory operations).
func (c *Context) Compute(cyc uint64) { c.Ctr.Busy += cyc }

// Wait charges cyc cycles of synchronisation/communication wait, attributing
// them to the barrier counter.
func (c *Context) Wait(cyc uint64) {
	c.Ctr.Busy += cyc
	c.Ctr.BarrierCyc += cyc
}

// InvalidatePage requests a TLB shootdown for the page of the given size at
// va (used when SCASH changes page protections or THP promotes a chunk).
// Like a real IPI it is asynchronous: the invalidation is applied by the
// owning context at its next memory access.
func (c *Context) InvalidatePage(va units.Addr, size units.PageSize) {
	c.shootMu.Lock()
	c.pending = append(c.pending, shootReq{va: va, size: size})
	c.shootMu.Unlock()
	c.shootFlag.Store(true)
}

// FlushTLBs requests a full TLB flush, applied at the context's next access.
func (c *Context) FlushTLBs() {
	c.shootMu.Lock()
	c.pending = append(c.pending, shootReq{all: true})
	c.shootMu.Unlock()
	c.shootFlag.Store(true)
}

// PageTable exposes the process page table this context translates through
// (the post-run consistency audits in internal/check walk it).
func (c *Context) PageTable() *pagetable.Table { return c.pt }

// SettleForAudit applies any queued TLB shootdowns, putting the context in
// the state its next access would observe. The mailbox contract is "applied
// at the next access", so undelivered invalidations are legal; a consistency
// audit must deliver them first or it would flag that legal window. Call only
// while the context is quiescent.
func (c *Context) SettleForAudit() {
	c.lockCore()
	if c.shootFlag.Load() {
		c.drainShootdowns()
	}
	c.unlockCore()
}

// AuditTranslationCache re-validates every generation-current slot of the
// per-context translation cache against the live page table. The cache's
// validity protocol promises that while xlatGen equals the current table
// generation, every walk-valid slot holds exactly what a fresh walk would
// return; this audit proves it by re-walking. A stale epoch (the whole
// cache is then dead) and empty or way-only slots are legal (walk ignores
// them) and are skipped. Call only while the context is quiescent (no
// access in flight).
func (c *Context) AuditTranslationCache() error {
	if c.xlatGen != c.pt.Gen() {
		return nil
	}
	for i := range c.xlat {
		slot := &c.xlat[i]
		if slot.key&xlatWalk == 0 {
			continue
		}
		vpn := slot.key >> 2
		cached := pagetable.UnpackWalk(slot.val >> 8)
		va := units.Addr(vpn) << units.PageShift4K
		wr, err := c.pt.Translate(va)
		if err != nil {
			return fmt.Errorf("machine: context %d xlat slot %d: cached vpn %#x (gen %d) no longer translates: %w",
				c.ID, i, vpn, c.xlatGen, err)
		}
		if wr != cached {
			return fmt.Errorf("machine: context %d xlat slot %d: cached walk for vpn %#x is %+v but the table says %+v",
				c.ID, i, vpn, cached, wr)
		}
	}
	return nil
}

// ForceTranslationCacheEntry overwrites the translation-cache slot for vpn
// with the given walk result, stamped current. It exists so internal/check's
// tests can corrupt the cache and prove AuditTranslationCache is not
// vacuously green; simulation code must never call it. Results outside the
// packed ranges (see pagetable.Pack) cannot be planted.
func (c *Context) ForceTranslationCacheEntry(vpn uint64, wr pagetable.WalkResult) {
	packed, ok := wr.Pack()
	if !ok {
		panic(fmt.Sprintf("machine: ForceTranslationCacheEntry: unpackable walk result %+v", wr))
	}
	if gen := c.pt.Gen(); gen != c.xlatGen {
		clear(c.xlat)
		c.xlatGen = gen
	}
	c.xlat[vpn&(xlatSlots-1)] = xlatSlot{key: vpn<<2 | xlatWalk, val: packed << 8}
}

// drainShootdowns applies queued invalidations. Caller holds the core lock
// in true-sharing mode.
func (c *Context) drainShootdowns() {
	c.shootMu.Lock()
	reqs := c.pending
	c.pending = nil
	c.shootFlag.Store(false)
	c.shootMu.Unlock()
	for _, r := range reqs {
		if r.all {
			c.dtlb.Flush()
			c.itlb.Flush()
		} else {
			c.dtlb.Invalidate(r.size.VPN(r.va), r.size)
			c.itlb.Invalidate(r.size.VPN(r.va), r.size)
		}
	}
	c.resetPageCache()
}
