package machine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hugeomp/internal/cache"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/profile"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

const lineShift = 6 // 64-byte cache lines

// FaultHandler services a protection fault raised during simulated access.
// The SCASH coherence protocol installs one; after it returns nil the access
// is retried.
type FaultHandler func(va units.Addr, write bool) error

// Context is one hardware thread context: the unit a simulated OpenMP thread
// runs on. It owns (or, in true-sharing mode, co-owns behind locks) an ITLB
// stack, a DTLB stack and an L1/L2 cache pair, and accumulates exact event
// counts and cycle costs for every access.
//
// A Context is driven by exactly one goroutine at a time. Caches are indexed
// by virtual line address (the simulated process is the only user of the
// machine, so virtual≡physical indexing is behaviour-preserving and lets the
// hot path skip PFN bookkeeping).
type Context struct {
	ID     int
	Chip   int
	Core   int
	Thread int

	machine *Machine
	pt      *pagetable.Table
	itlb    *tlb.Hierarchy
	dtlb    *tlb.Hierarchy
	l1      *cache.Cache
	l2      *cache.Cache

	coreMu *sync.Mutex // guards itlb/dtlb/l1 in true-sharing mode
	l2Mu   *sync.Mutex // guards l2 in true-sharing mode

	costs      *Costs
	hasSibling bool // another context is co-scheduled on this core
	smtFlush   bool // flush-on-switch SMT penalty applies

	// OnFault, if set, services protection faults (SCASH coherence traps).
	OnFault FaultHandler

	// Page-size probe hints (most processes use one size class per segment).
	dataHint  units.PageSize
	fetchHint units.PageSize

	// Micro-TLB: the translation of the last page touched. Purely a
	// simulator fast path — consecutive same-page accesses are TLB hits by
	// construction, so skipping the probe is behaviour-preserving. Writes
	// only short-circuit when the cached entry carries the W bit.
	lastDataBase  units.Addr
	lastDataMask  units.Addr
	lastDataW     bool
	dataCacheOK   bool
	lastFetchBase units.Addr
	lastFetchMask units.Addr
	fetchCacheOK  bool

	// Stream-prefetcher state: the last line that missed to memory, valid
	// only while the miss run is unbroken (an intervening L2 hit ends it).
	lastMissLine  uint64
	lastMissValid bool

	// Shootdown mailbox: cross-context TLB invalidations are delivered like
	// IPIs — enqueued by the sender, drained by the owning goroutine at its
	// next access — so no other goroutine ever mutates this context's TLBs.
	shootFlag atomic.Bool
	shootMu   sync.Mutex
	pending   []shootReq

	// Ctr accumulates this context's events. Busy is its cycle clock.
	Ctr profile.Counters
}

type shootReq struct {
	va   units.Addr
	size units.PageSize
	all  bool // full flush
}

// HasSibling reports whether an SMT sibling is co-scheduled on this core.
func (c *Context) HasSibling() bool { return c.hasSibling }

// Machine returns the owning machine.
func (c *Context) Machine() *Machine { return c.machine }

// DTLB exposes the data-TLB stack (tests and the cpuid reproduction).
func (c *Context) DTLB() *tlb.Hierarchy { return c.dtlb }

// ITLB exposes the instruction-TLB stack.
func (c *Context) ITLB() *tlb.Hierarchy { return c.itlb }

func (c *Context) resetPageCache() {
	c.dataCacheOK = false
	c.fetchCacheOK = false
}

// SetPageHint primes the page-size probe order (the core layer sets it from
// the allocation policy so the common class is probed first).
func (c *Context) SetPageHint(s units.PageSize) {
	c.dataHint = s
	c.fetchHint = s
}

// lockCore acquires the core lock in true-sharing mode.
func (c *Context) lockCore() {
	if c.coreMu != nil {
		c.coreMu.Lock()
	}
}
func (c *Context) unlockCore() {
	if c.coreMu != nil {
		c.coreMu.Unlock()
	}
}

// translateData resolves va through the DTLB stack, walking the page table
// on a full miss (or a write hitting a non-writable entry). It returns the
// mapped page size, whether the filled entry is writable, and the cycle cost
// beyond a first-level hit. Caller holds the core lock in true-sharing mode.
func (c *Context) translateData(va units.Addr, write bool) (units.PageSize, bool, uint64) {
	order := [2]units.PageSize{c.dataHint, c.dataHint ^ 1}
	for _, s := range order {
		vpn := s.VPN(va)
		switch c.dtlb.Access(vpn, s, write) {
		case tlb.HitL1:
			c.dataHint = s
			return s, write, 0
		case tlb.HitL2:
			c.dataHint = s
			c.countL1Miss(s)
			c.Ctr.DTLBL2Hit++
			return s, write, c.costs.TLBL2Cyc
		}
	}
	// Full miss: hardware page walk (servicing protection faults first).
	wr := c.walk(va, write)
	size := wr.Entry.Size
	c.countL1Miss(size)
	if size == units.Size2M {
		c.Ctr.DTLBWalks2M++
	} else {
		c.Ctr.DTLBWalks4K++
	}
	cyc := uint64(wr.MemRefs) * c.costs.WalkRefCyc
	c.Ctr.WalkCyc += cyc
	writable := wr.Entry.Prot&pagetable.ProtWrite != 0
	c.dtlb.Fill(size.VPN(va), size, writable)
	c.dataHint = size
	return size, writable, cyc
}

func (c *Context) countL1Miss(s units.PageSize) {
	if s == units.Size2M {
		c.Ctr.DTLBL1Miss2M++
	} else {
		c.Ctr.DTLBL1Miss4K++
	}
}

func (c *Context) walk(va units.Addr, write bool) pagetable.WalkResult {
	for {
		wr, err := c.pt.Access(va, write)
		if err == nil {
			return wr
		}
		faultable := errors.Is(err, pagetable.ErrProtViolation) ||
			errors.Is(err, pagetable.ErrNotMapped)
		if faultable && c.OnFault != nil {
			// Soft fault: protection trap (SCASH coherence) or demand
			// paging (transparent huge pages). Charge the kernel
			// entry/exit and fill cost to this context.
			if ferr := c.OnFault(va, write); ferr != nil {
				panic(fmt.Sprintf("machine: context %d fault handler failed at %#x: %v", c.ID, va, ferr))
			}
			c.Ctr.SoftFaults++
			c.Ctr.Busy += c.costs.SoftFaultCyc
			continue
		}
		panic(fmt.Sprintf("machine: context %d unhandled fault at %#x: %v", c.ID, va, err))
	}
}

// cacheAccess runs the data-cache hierarchy for one line and returns its
// cycle cost. Caller holds the core lock in true-sharing mode.
func (c *Context) cacheAccess(line uint64, write bool) uint64 {
	res := c.l1.Access(line, write)
	if res.Hit {
		c.Ctr.L1Hits++
		return c.costs.L1HitCyc
	}
	c.Ctr.L1Misses++
	// Only the L2/bus lookup touches shared state; counters and prefetcher
	// state are per-context, so the lock window stays minimal (no defer —
	// this is the hottest path in the simulator).
	if c.l2Mu != nil {
		c.l2Mu.Lock()
	}
	var res2 cache.Result
	interv := false
	if bus := c.machine.bus; bus != nil {
		res2, interv = bus.Access(c.l2, line, write)
	} else {
		res2 = c.l2.Access(line, write)
	}
	if c.l2Mu != nil {
		c.l2Mu.Unlock()
	}
	if res2.Hit {
		c.Ctr.L2Hits++
		// The L2 hit interrupts the miss stream: the prefetcher's run
		// continuation must not survive it, or the next unrelated miss
		// would be mislabelled as sequential.
		c.lastMissValid = false
		return c.costs.L2HitCyc
	}
	c.Ctr.L2Misses++
	cyc := c.costs.MemCyc
	// Stream prefetcher: a miss continuing a sequential run is mostly
	// hidden, except at 4 KB boundaries where the 2007-era prefetchers
	// stop (64 lines of 64 B per 4 KB).
	if c.lastMissValid && line == c.lastMissLine+1 && line%64 != 0 {
		cyc = c.costs.StreamCyc
	}
	c.lastMissLine = line
	c.lastMissValid = true
	if interv {
		cyc = c.costs.C2CCyc
	}
	c.Ctr.MemCyc += cyc
	if c.smtFlush {
		// The Xeon SMT implementation evicts the thread context on a memory
		// load stall, flushing the pipeline (paper §3.2, §4.4).
		c.Ctr.SMTSwitches++
		c.Ctr.FlushCycles += c.costs.FlushCyc
		cyc += c.costs.FlushCyc
	}
	return cyc
}

func (c *Context) dataAccess(va units.Addr, write bool) {
	if write {
		c.Ctr.Stores++
	} else {
		c.Ctr.Loads++
	}
	cyc := c.costs.ExecCyc
	c.lockCore()
	if c.shootFlag.Load() {
		c.drainShootdowns()
	}
	if !c.dataCacheOK || va&^c.lastDataMask != c.lastDataBase || (write && !c.lastDataW) {
		size, writable, tcyc := c.translateData(va, write)
		cyc += tcyc
		c.lastDataMask = size.Mask()
		c.lastDataBase = va &^ c.lastDataMask
		c.lastDataW = writable
		c.dataCacheOK = true
	}
	cyc += c.cacheAccess(uint64(va)>>lineShift, write)
	c.unlockCore()
	c.Ctr.Busy += cyc
}

// Load simulates an 8-byte load at va.
func (c *Context) Load(va units.Addr) { c.dataAccess(va, false) }

// Store simulates an 8-byte store at va.
func (c *Context) Store(va units.Addr) { c.dataAccess(va, true) }

// AccessRange simulates n accesses at base, base+stride, base+2·stride, …
// with exact TLB/cache behaviour. Dense positive-stride runs take the bulk
// fast path, which computes the identical counter updates in O(pages·lines)
// instead of O(elements): one translation per page segment and, for strides
// below the cache-line size, one cache lookup per line run with the
// remaining same-line accesses bulk-accounted as the L1 hits they are by
// construction. Non-positive strides and contexts with a fault handler
// installed (SCASH coherence, transparent huge pages — where a walk can
// change the mapping mid-run) fall back to the scalar reference path.
func (c *Context) AccessRange(base units.Addr, n int, stride int64, write bool) {
	if n <= 0 {
		return
	}
	if write {
		c.Ctr.Stores += uint64(n)
	} else {
		c.Ctr.Loads += uint64(n)
	}
	c.lockCore()
	var busy uint64
	if stride > 0 && c.OnFault == nil {
		busy = c.rangeBulk(base, n, stride, write)
	} else {
		busy = c.rangeScalar(base, n, stride, write)
	}
	c.unlockCore()
	c.Ctr.Busy += busy
}

// AccessRangeScalar is the O(elements) reference implementation of
// AccessRange: every element is translated and cache-probed individually.
// The bulk fast path is property-tested to produce byte-identical counters
// (TestAccessRangeEquivalenceProperty); this entry point exists for those
// tests and for the before/after micro-benchmarks.
func (c *Context) AccessRangeScalar(base units.Addr, n int, stride int64, write bool) {
	if n <= 0 {
		return
	}
	if write {
		c.Ctr.Stores += uint64(n)
	} else {
		c.Ctr.Loads += uint64(n)
	}
	c.lockCore()
	busy := c.rangeScalar(base, n, stride, write)
	c.unlockCore()
	c.Ctr.Busy += busy
}

// rangeScalar is the per-element loop shared by the scalar entry points.
// Caller holds the core lock.
func (c *Context) rangeScalar(base units.Addr, n int, stride int64, write bool) uint64 {
	var busy uint64
	for i := 0; i < n; i++ {
		va := base + units.Addr(int64(i)*stride)
		cyc := c.costs.ExecCyc
		if c.shootFlag.Load() {
			c.drainShootdowns()
		}
		if !c.dataCacheOK || va&^c.lastDataMask != c.lastDataBase || (write && !c.lastDataW) {
			size, writable, tcyc := c.translateData(va, write)
			cyc += tcyc
			c.lastDataMask = size.Mask()
			c.lastDataBase = va &^ c.lastDataMask
			c.lastDataW = writable
			c.dataCacheOK = true
		}
		cyc += c.cacheAccess(uint64(va)>>lineShift, write)
		busy += cyc
	}
	return busy
}

// rangeBulk is the O(pages·lines) fast path. The range is decomposed into
// page segments (one translation each — exactly what the per-element
// micro-TLB check would do, since the write-upgrade re-probe can only fire
// on a segment's first element) and each segment into cache-line runs: after
// a run's head access the line is resident, so the remaining same-line
// accesses are L1 hits by construction and are accounted in bulk. Skipping
// their individual probes also skips LRU stamp refreshes, but a skip only
// happens inside a run of accesses to one line, so the relative recency of
// distinct lines — all that LRU replacement observes — is unchanged.
// Shootdowns are drained at page-segment granularity (the mailbox contract
// is "applied at the next access", which this satisfies). Caller holds the
// core lock; stride must be positive and OnFault nil.
func (c *Context) rangeBulk(base units.Addr, n int, stride int64, write bool) uint64 {
	var busy uint64
	hitCyc := c.costs.ExecCyc + c.costs.L1HitCyc
	for i := 0; i < n; {
		if c.shootFlag.Load() {
			c.drainShootdowns()
		}
		va := base + units.Addr(int64(i)*stride)
		if !c.dataCacheOK || va&^c.lastDataMask != c.lastDataBase || (write && !c.lastDataW) {
			size, writable, tcyc := c.translateData(va, write)
			busy += tcyc
			c.lastDataMask = size.Mask()
			c.lastDataBase = va &^ c.lastDataMask
			c.lastDataW = writable
			c.dataCacheOK = true
		}
		// Elements landing on this page: ceil((pageEnd−va)/stride).
		pageEnd := int64(c.lastDataBase) + int64(c.lastDataMask) + 1
		segN := int((pageEnd - int64(va) + stride - 1) / stride)
		if segN > n-i {
			segN = n - i
		}
		if stride >= units.CacheLineSize {
			// At most one element per line: the translation is amortised
			// but every element still probes the cache hierarchy.
			for j := 0; j < segN; j++ {
				eva := va + units.Addr(int64(j)*stride)
				busy += c.costs.ExecCyc + c.cacheAccess(uint64(eva)>>lineShift, write)
			}
		} else {
			// When the stride divides the line size, every line-aligned run
			// holds exactly lineSize/stride elements, so the run-length
			// division is needed only for partial (unaligned) runs.
			kFull := 0
			if units.CacheLineSize%stride == 0 {
				kFull = int(units.CacheLineSize / stride)
			}
			for j := 0; j < segN; {
				eva := va + units.Addr(int64(j)*stride)
				line := uint64(eva) >> lineShift
				k := kFull
				if k == 0 || int64(eva)&(units.CacheLineSize-1) != 0 {
					lineEnd := int64(line+1) << lineShift
					k = int((lineEnd - int64(eva) + stride - 1) / stride)
				}
				if k > segN-j {
					k = segN - j
				}
				busy += c.costs.ExecCyc + c.cacheAccess(line, write)
				if k > 1 {
					c.Ctr.L1Hits += uint64(k - 1)
					busy += uint64(k-1) * hitCyc
				}
				j += k
			}
		}
		i += segN
	}
	return busy
}

// translateFetch resolves va through the ITLB stack, refreshing the fetch
// micro-TLB, and returns the cycle cost beyond a first-level hit. Caller
// holds the core lock.
func (c *Context) translateFetch(va units.Addr) uint64 {
	var cyc uint64
	order := [2]units.PageSize{c.fetchHint, c.fetchHint ^ 1}
	resolved := false
	var size units.PageSize
	for _, s := range order {
		vpn := s.VPN(va)
		if o := c.itlb.Access(vpn, s, false); o != tlb.Miss {
			if o == tlb.HitL2 {
				cyc += c.costs.TLBL2Cyc
			}
			size, resolved = s, true
			break
		}
	}
	if !resolved {
		wr := c.walk(va, false)
		size = wr.Entry.Size
		c.Ctr.ITLBL1Miss++
		c.Ctr.ITLBWalks++
		w := uint64(wr.MemRefs) * c.costs.WalkRefCyc
		c.Ctr.WalkCyc += w
		cyc += w
		c.itlb.Fill(size.VPN(va), size, false)
	}
	c.fetchHint = size
	c.lastFetchMask = size.Mask()
	c.lastFetchBase = va &^ c.lastFetchMask
	c.fetchCacheOK = true
	return cyc
}

// Fetch simulates one instruction-fetch block at code address va through the
// ITLB stack.
func (c *Context) Fetch(va units.Addr) {
	c.Ctr.Fetches++
	cyc := c.costs.FetchCyc
	c.lockCore()
	if c.shootFlag.Load() {
		c.drainShootdowns()
	}
	if !c.fetchCacheOK || va&^c.lastFetchMask != c.lastFetchBase {
		cyc += c.translateFetch(va)
	}
	c.unlockCore()
	c.Ctr.Busy += cyc
}

// FetchRange simulates n instruction-fetch blocks at base, base+stride, …
// (a parallel region's entry touching its code pages), amortising the ITLB
// probe over each page the way rangeBulk does for data: a page segment's
// blocks after the first are fetch micro-TLB hits by construction, so they
// are bulk-accounted at FetchCyc each. Counter-equivalent to calling Fetch
// per block (TestFetchRangeEquivalenceProperty); non-positive strides fall
// back to the per-block loop.
func (c *Context) FetchRange(base units.Addr, n int, stride int64) {
	if n <= 0 {
		return
	}
	c.Ctr.Fetches += uint64(n)
	c.lockCore()
	var busy uint64
	if stride <= 0 {
		for i := 0; i < n; i++ {
			va := base + units.Addr(int64(i)*stride)
			cyc := c.costs.FetchCyc
			if c.shootFlag.Load() {
				c.drainShootdowns()
			}
			if !c.fetchCacheOK || va&^c.lastFetchMask != c.lastFetchBase {
				cyc += c.translateFetch(va)
			}
			busy += cyc
		}
	} else {
		for i := 0; i < n; {
			if c.shootFlag.Load() {
				c.drainShootdowns()
			}
			va := base + units.Addr(int64(i)*stride)
			if !c.fetchCacheOK || va&^c.lastFetchMask != c.lastFetchBase {
				busy += c.translateFetch(va)
			}
			pageEnd := int64(c.lastFetchBase) + int64(c.lastFetchMask) + 1
			segN := int((pageEnd - int64(va) + stride - 1) / stride)
			if segN > n-i {
				segN = n - i
			}
			busy += uint64(segN) * c.costs.FetchCyc
			i += segN
		}
	}
	c.unlockCore()
	c.Ctr.Busy += busy
}

// Compute charges cyc cycles of pure computation (ALU/FPU work between
// memory operations).
func (c *Context) Compute(cyc uint64) { c.Ctr.Busy += cyc }

// Wait charges cyc cycles of synchronisation/communication wait, attributing
// them to the barrier counter.
func (c *Context) Wait(cyc uint64) {
	c.Ctr.Busy += cyc
	c.Ctr.BarrierCyc += cyc
}

// InvalidatePage requests a TLB shootdown for the page of the given size at
// va (used when SCASH changes page protections or THP promotes a chunk).
// Like a real IPI it is asynchronous: the invalidation is applied by the
// owning context at its next memory access.
func (c *Context) InvalidatePage(va units.Addr, size units.PageSize) {
	c.shootMu.Lock()
	c.pending = append(c.pending, shootReq{va: va, size: size})
	c.shootMu.Unlock()
	c.shootFlag.Store(true)
}

// FlushTLBs requests a full TLB flush, applied at the context's next access.
func (c *Context) FlushTLBs() {
	c.shootMu.Lock()
	c.pending = append(c.pending, shootReq{all: true})
	c.shootMu.Unlock()
	c.shootFlag.Store(true)
}

// drainShootdowns applies queued invalidations. Caller holds the core lock
// in true-sharing mode.
func (c *Context) drainShootdowns() {
	c.shootMu.Lock()
	reqs := c.pending
	c.pending = nil
	c.shootFlag.Store(false)
	c.shootMu.Unlock()
	for _, r := range reqs {
		if r.all {
			c.dtlb.Flush()
			c.itlb.Flush()
		} else {
			c.dtlb.Invalidate(r.size.VPN(r.va), r.size)
			c.itlb.Invalidate(r.size.VPN(r.va), r.size)
		}
	}
	c.resetPageCache()
}
