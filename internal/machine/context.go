package machine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hugeomp/internal/cache"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/profile"
	"hugeomp/internal/tlb"
	"hugeomp/internal/units"
)

const lineShift = 6 // 64-byte cache lines

// FaultHandler services a protection fault raised during simulated access.
// The SCASH coherence protocol installs one; after it returns nil the access
// is retried.
type FaultHandler func(va units.Addr, write bool) error

// Context is one hardware thread context: the unit a simulated OpenMP thread
// runs on. It owns (or, in true-sharing mode, co-owns behind locks) an ITLB
// stack, a DTLB stack and an L1/L2 cache pair, and accumulates exact event
// counts and cycle costs for every access.
//
// A Context is driven by exactly one goroutine at a time. Caches are indexed
// by virtual line address (the simulated process is the only user of the
// machine, so virtual≡physical indexing is behaviour-preserving and lets the
// hot path skip PFN bookkeeping).
type Context struct {
	ID     int
	Chip   int
	Core   int
	Thread int

	machine *Machine
	pt      *pagetable.Table
	itlb    *tlb.Hierarchy
	dtlb    *tlb.Hierarchy
	l1      *cache.Cache
	l2      *cache.Cache

	coreMu *sync.Mutex // guards itlb/dtlb/l1 in true-sharing mode
	l2Mu   *sync.Mutex // guards l2 in true-sharing mode

	costs      *Costs
	hasSibling bool // another context is co-scheduled on this core
	smtFlush   bool // flush-on-switch SMT penalty applies

	// OnFault, if set, services protection faults (SCASH coherence traps).
	OnFault FaultHandler

	// Page-size probe hints (most processes use one size class per segment).
	dataHint  units.PageSize
	fetchHint units.PageSize

	// Micro-TLB: the translation of the last page touched. Purely a
	// simulator fast path — consecutive same-page accesses are TLB hits by
	// construction, so skipping the probe is behaviour-preserving. Writes
	// only short-circuit when the cached entry carries the W bit.
	lastDataBase  units.Addr
	lastDataMask  units.Addr
	lastDataW     bool
	dataCacheOK   bool
	lastFetchBase units.Addr
	lastFetchMask units.Addr
	fetchCacheOK  bool

	// Stream-prefetcher state: the last line that missed to memory.
	lastMissLine uint64

	// Shootdown mailbox: cross-context TLB invalidations are delivered like
	// IPIs — enqueued by the sender, drained by the owning goroutine at its
	// next access — so no other goroutine ever mutates this context's TLBs.
	shootFlag atomic.Bool
	shootMu   sync.Mutex
	pending   []shootReq

	// Ctr accumulates this context's events. Busy is its cycle clock.
	Ctr profile.Counters
}

type shootReq struct {
	va   units.Addr
	size units.PageSize
	all  bool // full flush
}

// HasSibling reports whether an SMT sibling is co-scheduled on this core.
func (c *Context) HasSibling() bool { return c.hasSibling }

// Machine returns the owning machine.
func (c *Context) Machine() *Machine { return c.machine }

// DTLB exposes the data-TLB stack (tests and the cpuid reproduction).
func (c *Context) DTLB() *tlb.Hierarchy { return c.dtlb }

// ITLB exposes the instruction-TLB stack.
func (c *Context) ITLB() *tlb.Hierarchy { return c.itlb }

func (c *Context) resetPageCache() {
	c.dataCacheOK = false
	c.fetchCacheOK = false
}

// SetPageHint primes the page-size probe order (the core layer sets it from
// the allocation policy so the common class is probed first).
func (c *Context) SetPageHint(s units.PageSize) {
	c.dataHint = s
	c.fetchHint = s
}

// lockCore acquires the core lock in true-sharing mode.
func (c *Context) lockCore() {
	if c.coreMu != nil {
		c.coreMu.Lock()
	}
}
func (c *Context) unlockCore() {
	if c.coreMu != nil {
		c.coreMu.Unlock()
	}
}

// translateData resolves va through the DTLB stack, walking the page table
// on a full miss (or a write hitting a non-writable entry). It returns the
// mapped page size, whether the filled entry is writable, and the cycle cost
// beyond a first-level hit. Caller holds the core lock in true-sharing mode.
func (c *Context) translateData(va units.Addr, write bool) (units.PageSize, bool, uint64) {
	order := [2]units.PageSize{c.dataHint, c.dataHint ^ 1}
	for _, s := range order {
		vpn := s.VPN(va)
		switch c.dtlb.Access(vpn, s, write) {
		case tlb.HitL1:
			c.dataHint = s
			return s, write, 0
		case tlb.HitL2:
			c.dataHint = s
			c.countL1Miss(s)
			c.Ctr.DTLBL2Hit++
			return s, write, c.costs.TLBL2Cyc
		}
	}
	// Full miss: hardware page walk (servicing protection faults first).
	wr := c.walk(va, write)
	size := wr.Entry.Size
	c.countL1Miss(size)
	if size == units.Size2M {
		c.Ctr.DTLBWalks2M++
	} else {
		c.Ctr.DTLBWalks4K++
	}
	cyc := uint64(wr.MemRefs) * c.costs.WalkRefCyc
	c.Ctr.WalkCyc += cyc
	writable := wr.Entry.Prot&pagetable.ProtWrite != 0
	c.dtlb.Fill(size.VPN(va), size, writable)
	c.dataHint = size
	return size, writable, cyc
}

func (c *Context) countL1Miss(s units.PageSize) {
	if s == units.Size2M {
		c.Ctr.DTLBL1Miss2M++
	} else {
		c.Ctr.DTLBL1Miss4K++
	}
}

func (c *Context) walk(va units.Addr, write bool) pagetable.WalkResult {
	for {
		wr, err := c.pt.Access(va, write)
		if err == nil {
			return wr
		}
		faultable := errors.Is(err, pagetable.ErrProtViolation) ||
			errors.Is(err, pagetable.ErrNotMapped)
		if faultable && c.OnFault != nil {
			// Soft fault: protection trap (SCASH coherence) or demand
			// paging (transparent huge pages). Charge the kernel
			// entry/exit and fill cost to this context.
			if ferr := c.OnFault(va, write); ferr != nil {
				panic(fmt.Sprintf("machine: context %d fault handler failed at %#x: %v", c.ID, va, ferr))
			}
			c.Ctr.SoftFaults++
			c.Ctr.Busy += c.costs.SoftFaultCyc
			continue
		}
		panic(fmt.Sprintf("machine: context %d unhandled fault at %#x: %v", c.ID, va, err))
	}
}

// cacheAccess runs the data-cache hierarchy for one line and returns its
// cycle cost. Caller holds the core lock in true-sharing mode.
func (c *Context) cacheAccess(line uint64, write bool) uint64 {
	res := c.l1.Access(line, write)
	if res.Hit {
		c.Ctr.L1Hits++
		return c.costs.L1HitCyc
	}
	c.Ctr.L1Misses++
	if c.l2Mu != nil {
		c.l2Mu.Lock()
		defer c.l2Mu.Unlock()
	}
	var res2 cache.Result
	interv := false
	if bus := c.machine.bus; bus != nil {
		res2, interv = bus.Access(c.l2, line, write)
	} else {
		res2 = c.l2.Access(line, write)
	}
	if res2.Hit {
		c.Ctr.L2Hits++
		return c.costs.L2HitCyc
	}
	c.Ctr.L2Misses++
	cyc := c.costs.MemCyc
	// Stream prefetcher: a miss continuing a sequential run is mostly
	// hidden, except at 4 KB boundaries where the 2007-era prefetchers
	// stop (64 lines of 64 B per 4 KB).
	if line == c.lastMissLine+1 && line%64 != 0 {
		cyc = c.costs.StreamCyc
	}
	c.lastMissLine = line
	if interv {
		cyc = c.costs.C2CCyc
	}
	c.Ctr.MemCyc += cyc
	if c.smtFlush {
		// The Xeon SMT implementation evicts the thread context on a memory
		// load stall, flushing the pipeline (paper §3.2, §4.4).
		c.Ctr.SMTSwitches++
		c.Ctr.FlushCycles += c.costs.FlushCyc
		cyc += c.costs.FlushCyc
	}
	return cyc
}

func (c *Context) dataAccess(va units.Addr, write bool) {
	if write {
		c.Ctr.Stores++
	} else {
		c.Ctr.Loads++
	}
	cyc := c.costs.ExecCyc
	c.lockCore()
	if c.shootFlag.Load() {
		c.drainShootdowns()
	}
	if !c.dataCacheOK || va&^c.lastDataMask != c.lastDataBase || (write && !c.lastDataW) {
		size, writable, tcyc := c.translateData(va, write)
		cyc += tcyc
		c.lastDataMask = size.Mask()
		c.lastDataBase = va &^ c.lastDataMask
		c.lastDataW = writable
		c.dataCacheOK = true
	}
	cyc += c.cacheAccess(uint64(va)>>lineShift, write)
	c.unlockCore()
	c.Ctr.Busy += cyc
}

// Load simulates an 8-byte load at va.
func (c *Context) Load(va units.Addr) { c.dataAccess(va, false) }

// Store simulates an 8-byte store at va.
func (c *Context) Store(va units.Addr) { c.dataAccess(va, true) }

// AccessRange simulates n accesses at base, base+stride, base+2·stride, …
// with exact TLB/cache behaviour; same-page probes are coalesced, which is
// the simulator's dense-loop fast path.
func (c *Context) AccessRange(base units.Addr, n int, stride int64, write bool) {
	if n <= 0 {
		return
	}
	if write {
		c.Ctr.Stores += uint64(n)
	} else {
		c.Ctr.Loads += uint64(n)
	}
	c.lockCore()
	var busy uint64
	for i := 0; i < n; i++ {
		va := base + units.Addr(int64(i)*stride)
		cyc := c.costs.ExecCyc
		if c.shootFlag.Load() {
			c.drainShootdowns()
		}
		if !c.dataCacheOK || va&^c.lastDataMask != c.lastDataBase || (write && !c.lastDataW) {
			size, writable, tcyc := c.translateData(va, write)
			cyc += tcyc
			c.lastDataMask = size.Mask()
			c.lastDataBase = va &^ c.lastDataMask
			c.lastDataW = writable
			c.dataCacheOK = true
		}
		cyc += c.cacheAccess(uint64(va)>>lineShift, write)
		busy += cyc
	}
	c.unlockCore()
	c.Ctr.Busy += busy
}

// Fetch simulates one instruction-fetch block at code address va through the
// ITLB stack.
func (c *Context) Fetch(va units.Addr) {
	c.Ctr.Fetches++
	cyc := c.costs.FetchCyc
	c.lockCore()
	if c.shootFlag.Load() {
		c.drainShootdowns()
	}
	if !c.fetchCacheOK || va&^c.lastFetchMask != c.lastFetchBase {
		order := [2]units.PageSize{c.fetchHint, c.fetchHint ^ 1}
		resolved := false
		var size units.PageSize
		for _, s := range order {
			vpn := s.VPN(va)
			if o := c.itlb.Access(vpn, s, false); o != tlb.Miss {
				if o == tlb.HitL2 {
					cyc += c.costs.TLBL2Cyc
				}
				size, resolved = s, true
				break
			}
		}
		if !resolved {
			wr := c.walk(va, false)
			size = wr.Entry.Size
			c.Ctr.ITLBL1Miss++
			c.Ctr.ITLBWalks++
			w := uint64(wr.MemRefs) * c.costs.WalkRefCyc
			c.Ctr.WalkCyc += w
			cyc += w
			c.itlb.Fill(size.VPN(va), size, false)
		}
		c.fetchHint = size
		c.lastFetchMask = size.Mask()
		c.lastFetchBase = va &^ c.lastFetchMask
		c.fetchCacheOK = true
	}
	c.unlockCore()
	c.Ctr.Busy += cyc
}

// Compute charges cyc cycles of pure computation (ALU/FPU work between
// memory operations).
func (c *Context) Compute(cyc uint64) { c.Ctr.Busy += cyc }

// Wait charges cyc cycles of synchronisation/communication wait, attributing
// them to the barrier counter.
func (c *Context) Wait(cyc uint64) {
	c.Ctr.Busy += cyc
	c.Ctr.BarrierCyc += cyc
}

// InvalidatePage requests a TLB shootdown for the page of the given size at
// va (used when SCASH changes page protections or THP promotes a chunk).
// Like a real IPI it is asynchronous: the invalidation is applied by the
// owning context at its next memory access.
func (c *Context) InvalidatePage(va units.Addr, size units.PageSize) {
	c.shootMu.Lock()
	c.pending = append(c.pending, shootReq{va: va, size: size})
	c.shootMu.Unlock()
	c.shootFlag.Store(true)
}

// FlushTLBs requests a full TLB flush, applied at the context's next access.
func (c *Context) FlushTLBs() {
	c.shootMu.Lock()
	c.pending = append(c.pending, shootReq{all: true})
	c.shootMu.Unlock()
	c.shootFlag.Store(true)
}

// drainShootdowns applies queued invalidations. Caller holds the core lock
// in true-sharing mode.
func (c *Context) drainShootdowns() {
	c.shootMu.Lock()
	reqs := c.pending
	c.pending = nil
	c.shootFlag.Store(false)
	c.shootMu.Unlock()
	for _, r := range reqs {
		if r.all {
			c.dtlb.Flush()
			c.itlb.Flush()
		} else {
			c.dtlb.Invalidate(r.size.VPN(r.va), r.size)
			c.itlb.Invalidate(r.size.VPN(r.va), r.size)
		}
	}
	c.resetPageCache()
}
