package machine

import (
	"os"
	"path/filepath"
	"testing"

	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

const sampleConfig = `{
  "name": "TestChip",
  "chips": 1, "coresPerChip": 2, "threadsPerCore": 2,
  "smt": "interleave",
  "itlb": {"l1": {"e4k": {"entries": 32}, "e2m": {"entries": 4}}},
  "dtlb": {"l1": {"e4k": {"entries": 32}, "e2m": {"entries": 4}},
           "l2": {"e4k": {"entries": 256, "ways": 4}}},
  "l1d": {"sizeKB": 16, "ways": 4},
  "l2":  {"sizeKB": 512, "ways": 8, "perChip": true},
  "costs": {"walkRefCyc": 150, "clockGHz": 3.0}
}`

func TestLoadModelFromJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chip.json")
	if err := os.WriteFile(path, []byte(sampleConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "TestChip" || m.MaxThreads() != 4 {
		t.Errorf("model = %s, %d threads", m.Name, m.MaxThreads())
	}
	if m.SMT != SMTInterleave {
		t.Errorf("smt = %v", m.SMT)
	}
	if m.Costs.WalkRefCyc != 150 || m.Costs.ClockGHz != 3.0 {
		t.Errorf("cost overrides not applied: %+v", m.Costs)
	}
	// Non-overridden costs inherit defaults.
	if m.Costs.MemCyc != DefaultCosts().MemCyc {
		t.Errorf("MemCyc = %d, want default", m.Costs.MemCyc)
	}
	if m.DTLB.L2.E4K.Entries != 256 || m.DTLB.L2.E2M.Entries != 0 {
		t.Errorf("DTLB spec = %+v", m.DTLB)
	}
	if m.L2.SizeBytes != 512*units.KB || !m.L2PerChip {
		t.Errorf("L2 = %+v perChip=%v", m.L2, m.L2PerChip)
	}

	// The loaded model runs.
	mac := New(m)
	pt := pagetable.New()
	if err := pt.Map(0, units.Size4K, 1, pagetable.ProtRW); err != nil {
		t.Fatal(err)
	}
	mac.AttachProcess(pt)
	ctxs, err := mac.Configure(4)
	if err != nil {
		t.Fatal(err)
	}
	ctxs[0].Load(8)
	if ctxs[0].Ctr.Loads != 1 {
		t.Error("loaded model does not simulate")
	}
}

func TestModelConfigValidation(t *testing.T) {
	base := func() ModelConfig {
		return ModelConfig{
			Name: "X", Chips: 1, CoresPerChip: 1, ThreadsPerCore: 1,
			DTLB: TLBSpecConfig{L1: TLBLevelConfig{E4K: TLBEntryConfig{Entries: 16}}},
			L1D:  CacheConfig{SizeKB: 16, Ways: 2},
			L2:   CacheConfig{SizeKB: 256, Ways: 4},
		}
	}
	good := base()
	if _, err := good.Model(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ModelConfig)
	}{
		{"no name", func(c *ModelConfig) { c.Name = "" }},
		{"zero cores", func(c *ModelConfig) { c.CoresPerChip = 0 }},
		{"smt without policy", func(c *ModelConfig) { c.ThreadsPerCore = 2 }},
		{"bad smt", func(c *ModelConfig) { c.SMT = "hyper" }},
		{"no dtlb", func(c *ModelConfig) { c.DTLB.L1.E4K.Entries = 0 }},
		{"no l2", func(c *ModelConfig) { c.L2.SizeKB = 0 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if _, err := cfg.Model(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel("/does/not/exist.json"); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	_ = os.WriteFile(path, []byte("{not json"), 0o644)
	if _, err := LoadModel(path); err == nil {
		t.Error("malformed JSON accepted")
	}
}
