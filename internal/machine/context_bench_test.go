package machine

import (
	"testing"

	"hugeomp/internal/units"
)

// The before/after pair for the bulk fast path: BenchmarkAccessRangeDense
// exercises rangeBulk, BenchmarkAccessRangeDenseScalar the O(elements)
// reference. The working set is L1-resident so the comparison isolates the
// per-access bookkeeping rather than the shared L2-miss machinery.
const benchElems = 1 << 12 // 32 KB of 8-byte elements

func benchCtx(b *testing.B) *Context {
	c := equivConfigs()[0].mk(b)
	c.AccessRange(0, benchElems, 8, false) // warm caches and TLBs
	c.Ctr.Loads = 0
	return c
}

func BenchmarkAccessRangeDense(b *testing.B) {
	c := benchCtx(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchElems {
		c.AccessRange(0, benchElems, 8, false)
	}
}

func BenchmarkAccessRangeDenseScalar(b *testing.B) {
	c := benchCtx(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchElems {
		c.AccessRangeScalar(0, benchElems, 8, false)
	}
}

func BenchmarkAccessRangeStrided(b *testing.B) {
	c := benchCtx(b)
	const count = 1 << 9 // 512 accesses, 8KB apart: one line per element
	b.ResetTimer()
	for i := 0; i < b.N; i += count {
		c.AccessRange(0, count, 8192, false)
	}
}

func BenchmarkFetchRange(b *testing.B) {
	c := equivConfigs()[0].mk(b)
	const blocks = 1 << 9 // one fetch per 4KB block over 2MB
	c.FetchRange(0, blocks, units.PageSize4K)
	b.ResetTimer()
	for i := 0; i < b.N; i += blocks {
		c.FetchRange(0, blocks, units.PageSize4K)
	}
}
