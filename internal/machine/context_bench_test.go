package machine

import (
	"testing"

	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

// The before/after pair for the bulk fast path: BenchmarkAccessRangeDense
// exercises rangeBulk, BenchmarkAccessRangeDenseScalar the O(elements)
// reference. The working set is L1-resident so the comparison isolates the
// per-access bookkeeping rather than the shared L2-miss machinery.
const benchElems = 1 << 12 // 32 KB of 8-byte elements

func benchCtx(b *testing.B) *Context {
	c := equivConfigs()[0].mk(b)
	c.AccessRange(0, benchElems, 8, false) // warm caches and TLBs
	c.Ctr.Loads = 0
	return c
}

func BenchmarkAccessRangeDense(b *testing.B) {
	c := benchCtx(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchElems {
		c.AccessRange(0, benchElems, 8, false)
	}
}

func BenchmarkAccessRangeDenseScalar(b *testing.B) {
	c := benchCtx(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += benchElems {
		c.AccessRangeScalar(0, benchElems, 8, false)
	}
}

func BenchmarkAccessRangeStrided(b *testing.B) {
	c := benchCtx(b)
	const count = 1 << 9 // 512 accesses, 8KB apart: one line per element
	b.ResetTimer()
	for i := 0; i < b.N; i += count {
		c.AccessRange(0, count, 8192, false)
	}
}

// The committed-scalar trio tracks the tentpole cost this PR sequence
// optimises: random Loads over an 8 MB vector (TLB-hostile, the pattern the
// translation memo and set-indexed probes serve), the per-element reference
// on the same stream, and the repeated single-address case the fold memo
// collapses. `go test -bench ScalarRandom ./internal/machine/ -count 3` —
// host noise on identical builds spans several ns, so never trust one run.
func scalarBenchCtx(b *testing.B) *Context {
	pt := pagetable.New()
	mapRange(b, pt, 0, 16*units.MB, units.Size4K)
	m := New(Opteron270())
	m.AttachProcess(pt)
	ctxs, err := m.Configure(1)
	if err != nil {
		b.Fatal(err)
	}
	c := ctxs[0]
	c.SetPageHint(units.Size4K)
	return c
}

const scalarRandElems = 1 << 20 // 8 MB of 8-byte elements

func BenchmarkScalarRandom(b *testing.B) {
	c := scalarBenchCtx(b)
	seed := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		c.Load(units.Addr((int(seed>>17) & (scalarRandElems - 1)) * 8))
	}
}

func BenchmarkScalarRandomRef(b *testing.B) {
	c := scalarBenchCtx(b)
	seed := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		c.AccessScalarRef(units.Addr((int(seed>>17)&(scalarRandElems-1))*8), false)
	}
}

func BenchmarkScalarSingleAddr(b *testing.B) {
	c := scalarBenchCtx(b)
	c.Load(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Load(0)
	}
}

func BenchmarkFetchRange(b *testing.B) {
	c := equivConfigs()[0].mk(b)
	const blocks = 1 << 9 // one fetch per 4KB block over 2MB
	c.FetchRange(0, blocks, units.PageSize4K)
	b.ResetTimer()
	for i := 0; i < b.N; i += blocks {
		c.FetchRange(0, blocks, units.PageSize4K)
	}
}
