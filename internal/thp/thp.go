// Package thp implements transparent huge page support — the paper's future
// work ("transparent native kernel support for large pages is still not
// present in the Linux kernel", §6) — using the reservation-based design of
// Navarro, Iyer, Druschel & Cox (the paper's reference [16], discussed in
// its related work):
//
//   - when a region is registered, nothing is mapped;
//   - the first touch inside each 2 MB-aligned chunk RESERVES a naturally
//     aligned 2 MB physical frame for it, but maps only the touched 4 KB
//     base page out of the reservation (demand paging);
//   - once enough of a chunk's base pages are populated, the chunk is
//     PROMOTED: the 4 KB mappings are torn down (with TLB shootdowns) and
//     replaced by a single 2 MB mapping — no copy is needed because the
//     reservation guaranteed physical contiguity;
//   - when the large-frame pool runs dry, reservations are BROKEN: untouched
//     sub-frames are released and further faults in the chunk fall back to
//     ordinary 4 KB frames.
//
// The manager plugs into the machine layer as a Context fault handler, so
// simulated applications page in lazily and get large pages transparently —
// without the explicit hugetlbfs preallocation of the paper's design. The
// ablation bench compares the two.
package thp

import (
	"errors"
	"fmt"
	"sync"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

// ErrOutOfRegion is returned for faults outside every registered region.
var ErrOutOfRegion = errors.New("thp: fault outside registered regions")

// basePagesPerChunk is the number of 4 KB pages per 2 MB chunk.
const basePagesPerChunk = int(units.PageSize2M / units.PageSize4K)

// Stats counts manager events.
type Stats struct {
	SoftFaults         uint64 // demand-paging faults serviced
	Reservations       uint64 // 2 MB frames reserved
	Promotions         uint64 // chunks promoted to a 2 MB mapping
	Demotions          uint64 // promoted chunks split back to 4 KB under pressure
	BrokenReservations uint64 // reservations released under pressure
	Fallback4K         uint64 // base pages served without a reservation
	Shootdowns         uint64 // TLB invalidations issued at promotion/demotion
}

// Shootdown is the hook the manager calls to invalidate stale translations
// in every hardware context after it changes a mapping.
type Shootdown func(va units.Addr, size units.PageSize)

type chunk struct {
	reserved bool
	broken   bool // reservation lost; chunk stays 4 KB forever
	promoted bool
	demoted  bool   // was promoted, split back to 4 KB under pressure
	basePFN  uint64 // of the reservation (2 MB aligned), when reserved
	mapped   [basePagesPerChunk / 64]uint64
	nMapped  int
}

func (c *chunk) isMapped(i int) bool { return c.mapped[i/64]&(1<<(i%64)) != 0 }
func (c *chunk) setMapped(i int)     { c.mapped[i/64] |= 1 << (i % 64) }

type region struct {
	base   units.Addr
	length int64
	chunks []chunk
}

// Manager is a transparent-huge-page fault handler over one page table.
type Manager struct {
	mu      sync.Mutex
	phys    *mem.PhysMem
	pt      *pagetable.Table
	regions []*region

	// PromoteAt is the number of populated base pages after which a chunk
	// is promoted. The Navarro design promotes at full population (512);
	// lower values promote more eagerly at the cost of mapping untouched
	// memory.
	PromoteAt int

	shoot Shootdown
	fault *faultinject.Plan // nil = no injection
	Stats Stats
}

// New creates a manager over phys and pt. shoot may be nil (no TLB
// shootdowns issued — single-context tests).
func New(phys *mem.PhysMem, pt *pagetable.Table, shoot Shootdown) *Manager {
	return &Manager{
		phys:      phys,
		pt:        pt,
		PromoteAt: basePagesPerChunk,
		shoot:     shoot,
	}
}

// SetShootdown installs the TLB shootdown hook (the core layer wires it to
// every configured hardware context).
func (m *Manager) SetShootdown(s Shootdown) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shoot = s
}

// SetFaultPlan arms (or, with nil, disarms) fault injection for this manager.
func (m *Manager) SetFaultPlan(p *faultinject.Plan) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fault = p
}

// Register adds [base, base+length) as a demand-paged region. base must be
// 2 MB aligned (so chunks align with possible large mappings).
func (m *Manager) Register(base units.Addr, length int64) error {
	if uint64(base)%uint64(units.PageSize2M) != 0 {
		return fmt.Errorf("thp: region base %#x not 2MB aligned", base)
	}
	if length <= 0 {
		return fmt.Errorf("thp: non-positive region length %d", length)
	}
	length = units.AlignUp(length, units.PageSize2M)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.regions = append(m.regions, &region{
		base:   base,
		length: length,
		chunks: make([]chunk, length/units.PageSize2M),
	})
	return nil
}

func (m *Manager) find(va units.Addr) (*region, int, int) {
	for _, r := range m.regions {
		if va >= r.base && va < r.base+units.Addr(r.length) {
			off := int64(va - r.base)
			ci := int(off / units.PageSize2M)
			pi := int(off % units.PageSize2M / units.PageSize4K)
			return r, ci, pi
		}
	}
	return nil, 0, 0
}

// HandleFault services a demand-paging fault at va: it maps the touched base
// page (reserving a 2 MB frame for the chunk if possible) and promotes the
// chunk when it reaches PromoteAt populated pages. It has the machine
// layer's FaultHandler shape.
func (m *Manager) HandleFault(va units.Addr, write bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ci, pi := m.find(va)
	if r == nil {
		return fmt.Errorf("%w: %#x", ErrOutOfRegion, va)
	}
	c := &r.chunks[ci]
	if c.promoted {
		// Already a 2 MB mapping: the fault must be a stale-TLB retry.
		return nil
	}
	if c.isMapped(pi) {
		return nil // raced retry
	}
	m.Stats.SoftFaults++
	chunkVA := r.base + units.Addr(int64(ci)*units.PageSize2M)

	// Reserve a 2 MB frame on the first touch of the chunk. An injected
	// SiteTHPAlloc fault (keyed by the chunk address, so concurrent faulting
	// threads draw the same decision regardless of which one wins the race)
	// emulates the kernel failing to assemble a contiguous 2 MB frame: the
	// chunk degrades to 4 KB pages exactly as if the pool were dry.
	if !c.reserved && !c.broken {
		if m.fault.ShouldKey(faultinject.SiteTHPAlloc, uint64(chunkVA)) {
			c.broken = true
			m.Stats.BrokenReservations++
		} else if pfn, err := m.phys.Alloc2M(); err == nil {
			c.reserved = true
			c.basePFN = pfn
			m.Stats.Reservations++
		} else {
			c.broken = true // pool dry: this chunk stays 4 KB
			m.Stats.BrokenReservations++
		}
	}

	var pfn uint64
	if c.reserved {
		pfn = c.basePFN + uint64(pi)
	} else {
		p, err := m.phys.Alloc4K()
		if err != nil {
			return fmt.Errorf("thp: out of memory at %#x: %w", va, err)
		}
		pfn = p
		m.Stats.Fallback4K++
	}
	pageVA := chunkVA + units.Addr(int64(pi)*units.PageSize4K)
	if err := m.pt.MapRetry(pageVA, units.Size4K, pfn, pagetable.ProtRW); err != nil {
		return err
	}
	c.setMapped(pi)
	c.nMapped++

	if c.reserved && c.nMapped >= m.PromoteAt {
		if err := m.promote(r, ci, chunkVA); err != nil {
			return err
		}
	}

	// Memory-pressure events (khugepaged splitting THPs to reclaim) are
	// drawn per serviced fault; a hit demotes the oldest promoted chunk.
	// Occurrence-keyed, so plans arming this site should drive the manager
	// from one thread to stay replayable.
	if m.fault.Should(faultinject.SiteTHPPressure) {
		return m.demoteFirstLocked()
	}
	return nil
}

// promote replaces a chunk's base mappings with one 2 MB mapping. Untouched
// base pages inside the reservation become mapped as a side effect (they are
// physically contiguous by construction). Caller holds m.mu.
func (m *Manager) promote(r *region, ci int, chunkVA units.Addr) error {
	c := &r.chunks[ci]
	for pi := 0; pi < basePagesPerChunk; pi++ {
		if !c.isMapped(pi) {
			continue
		}
		pageVA := chunkVA + units.Addr(int64(pi)*units.PageSize4K)
		if _, err := m.pt.Unmap(pageVA, units.Size4K); err != nil {
			return fmt.Errorf("thp: promote unmap: %w", err)
		}
		if m.shoot != nil {
			m.shoot(pageVA, units.Size4K)
			m.Stats.Shootdowns++
		}
	}
	if err := m.pt.MapRetry(chunkVA, units.Size2M, c.basePFN, pagetable.ProtRW); err != nil {
		return fmt.Errorf("thp: promote map: %w", err)
	}
	c.promoted = true
	m.Stats.Promotions++
	return nil
}

// Demote splits the promoted chunk containing va back into 4 KB mappings —
// the khugepaged split under memory pressure. The 2 MB mapping is torn down
// (with a TLB shootdown covering the whole chunk) and every base page is
// re-mapped from the same physical frame, so memory contents are untouched
// and only translation costs change. Returns ErrOutOfRegion if va is not in
// a registered region and nil (no-op) if the chunk is not promoted.
func (m *Manager) Demote(va units.Addr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ci, _ := m.find(va)
	if r == nil {
		return fmt.Errorf("%w: %#x", ErrOutOfRegion, va)
	}
	if !r.chunks[ci].promoted {
		return nil
	}
	return m.demoteLocked(r, ci)
}

// demoteFirstLocked demotes the lowest-addressed promoted chunk, if any —
// the deterministic victim choice for injected pressure events. Caller
// holds m.mu.
func (m *Manager) demoteFirstLocked() error {
	for _, r := range m.regions {
		for ci := range r.chunks {
			if r.chunks[ci].promoted {
				return m.demoteLocked(r, ci)
			}
		}
	}
	return nil
}

// demoteLocked does the split. Caller holds m.mu and has verified promoted.
func (m *Manager) demoteLocked(r *region, ci int) error {
	c := &r.chunks[ci]
	chunkVA := r.base + units.Addr(int64(ci)*units.PageSize2M)
	if _, err := m.pt.Unmap(chunkVA, units.Size2M); err != nil {
		return fmt.Errorf("thp: demote unmap: %w", err)
	}
	if m.shoot != nil {
		m.shoot(chunkVA, units.Size2M)
		m.Stats.Shootdowns++
	}
	for pi := 0; pi < basePagesPerChunk; pi++ {
		pageVA := chunkVA + units.Addr(int64(pi)*units.PageSize4K)
		if err := m.pt.MapRetry(pageVA, units.Size4K, c.basePFN+uint64(pi), pagetable.ProtRW); err != nil {
			return fmt.Errorf("thp: demote map: %w", err)
		}
		c.setMapped(pi)
	}
	c.nMapped = basePagesPerChunk
	c.promoted = false
	c.demoted = true
	m.Stats.Demotions++
	return nil
}

// DemotedBytes reports how much of the registered space was split back to
// 4 KB pages by pressure events.
func (m *Manager) DemotedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, r := range m.regions {
		for i := range r.chunks {
			if r.chunks[i].demoted && !r.chunks[i].promoted {
				n += units.PageSize2M
			}
		}
	}
	return n
}

// Touch pre-faults the whole range (an madvise(MADV_WILLNEED) analogue used
// by tests and by eager initialisation).
func (m *Manager) Touch(base units.Addr, length int64) error {
	for off := int64(0); off < length; off += units.PageSize4K {
		if _, err := m.pt.Translate(base + units.Addr(off)); err == nil {
			continue
		}
		if err := m.HandleFault(base+units.Addr(off), true); err != nil {
			return err
		}
	}
	return nil
}

// PromotedBytes reports how much of the registered space is mapped with
// 2 MB pages.
func (m *Manager) PromotedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, r := range m.regions {
		for i := range r.chunks {
			if r.chunks[i].promoted {
				n += units.PageSize2M
			}
		}
	}
	return n
}
