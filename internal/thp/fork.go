package thp

import (
	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
)

// Fork returns an independent copy of the manager over the forked physical
// memory and page table. Region descriptors and per-chunk population bitmaps
// are deep-copied (chunks are value structs), and Stats carries over. The
// shootdown hook and fault plan are NOT inherited: both are wired to the
// parent world (the hook closes over the parent's contexts; plans carry
// occurrence counters), so the forked system re-installs its own via
// SetShootdown/SetFaultPlan before simulating.
func (m *Manager) Fork(phys *mem.PhysMem, pt *pagetable.Table) *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	nm := &Manager{
		phys:      phys,
		pt:        pt,
		PromoteAt: m.PromoteAt,
		Stats:     m.Stats,
	}
	nm.regions = make([]*region, len(m.regions))
	for i, r := range m.regions {
		nm.regions[i] = &region{
			base:   r.base,
			length: r.length,
			chunks: append([]chunk(nil), r.chunks...),
		}
	}
	return nm
}
