package thp

import (
	"errors"
	"testing"
	"testing/quick"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/mem"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

func newMgr(t *testing.T, physMB int64) (*Manager, *pagetable.Table) {
	t.Helper()
	phys := mem.New(physMB * units.MB)
	pt := pagetable.New()
	return New(phys, pt, nil), pt
}

func TestDemandPagingMapsOnePage(t *testing.T) {
	m, pt := newMgr(t, 64)
	if err := m.Register(0, 4*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Translate(0); !errors.Is(err, pagetable.ErrNotMapped) {
		t.Fatal("nothing should be mapped before the first touch")
	}
	if err := m.HandleFault(0x100, false); err != nil {
		t.Fatal(err)
	}
	wr, err := pt.Translate(0x100)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size4K {
		t.Errorf("first touch mapped %v, want a 4KB base page", wr.Entry.Size)
	}
	// The neighbouring base page is still unmapped.
	if _, err := pt.Translate(0x1000); !errors.Is(err, pagetable.ErrNotMapped) {
		t.Error("untouched base page mapped eagerly")
	}
	if m.Stats.Reservations != 1 || m.Stats.SoftFaults != 1 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestReservationGivesContiguousFrames(t *testing.T) {
	m, pt := newMgr(t, 64)
	if err := m.Register(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	_ = m.HandleFault(0, false)
	_ = m.HandleFault(0x5000, false) // base page 5
	w0, _ := pt.Translate(0)
	w5, _ := pt.Translate(0x5000)
	if w5.Entry.PFN != w0.Entry.PFN+5 {
		t.Errorf("frames not contiguous: %d and %d", w0.Entry.PFN, w5.Entry.PFN)
	}
	if w0.Entry.PFN%512 != 0 {
		t.Error("reservation not 2MB aligned")
	}
}

func TestPromotionAtFullPopulation(t *testing.T) {
	m, pt := newMgr(t, 64)
	if err := m.Register(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if err := m.Touch(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", m.Stats.Promotions)
	}
	wr, err := pt.Translate(0x12345)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size2M {
		t.Errorf("after promotion size = %v, want 2MB", wr.Entry.Size)
	}
	if pt.Mapped4K() != 0 || pt.Mapped2M() != 1 {
		t.Errorf("mappings = %d x4K, %d x2M", pt.Mapped4K(), pt.Mapped2M())
	}
	if m.PromotedBytes() != units.PageSize2M {
		t.Error("PromotedBytes")
	}
}

func TestEagerPromotionThreshold(t *testing.T) {
	m, pt := newMgr(t, 64)
	m.PromoteAt = 4
	if err := m.Register(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.HandleFault(units.Addr(i)*0x1000, true); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1 at threshold 4", m.Stats.Promotions)
	}
	// Untouched pages became accessible through the 2MB mapping.
	if _, err := pt.Translate(0x100000); err != nil {
		t.Errorf("untouched page unreachable after promotion: %v", err)
	}
}

func TestShootdownsIssuedOnPromotion(t *testing.T) {
	phys := mem.New(64 * units.MB)
	pt := pagetable.New()
	var shot int
	m := New(phys, pt, func(va units.Addr, size units.PageSize) { shot++ })
	m.PromoteAt = 8
	if err := m.Register(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_ = m.HandleFault(units.Addr(i)*0x1000, true)
	}
	if shot != 8 {
		t.Errorf("shootdowns = %d, want 8 (one per replaced base page)", shot)
	}
}

func TestBrokenReservationFallsBackTo4K(t *testing.T) {
	// Physical memory with room for the page-table side but only one 2MB
	// frame: the second chunk's reservation must break.
	phys := mem.New(4 * units.MB) // two 2MB frames total
	pt := pagetable.New()
	m := New(phys, pt, nil)
	if err := m.Register(0, 4*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	// Touch chunk 0 and chunk 1: two reservations exhaust the pool.
	_ = m.HandleFault(0, true)
	_ = m.HandleFault(units.Addr(units.PageSize2M), true)
	if m.Stats.Reservations != 2 {
		t.Fatalf("reservations = %d", m.Stats.Reservations)
	}
	// Chunk 2 cannot reserve and cannot even get a 4K frame (pool is
	// fully reserved): out of memory.
	err := m.HandleFault(units.Addr(2*units.PageSize2M), true)
	if err == nil {
		t.Fatal("expected OOM")
	}
	if m.Stats.BrokenReservations != 1 {
		t.Errorf("broken reservations = %d, want 1", m.Stats.BrokenReservations)
	}
}

func TestFallback4KWhenPoolDry(t *testing.T) {
	// 2MB of physical memory: first chunk reserves it all; second chunk
	// falls back... with no free frames it fails, so give 2 large frames
	// and pre-consume one with a small allocation to misalign the pool.
	phys := mem.New(6 * units.MB)
	pt := pagetable.New()
	m := New(phys, pt, nil)
	// Consume large frames so reservations break but 4K frames remain.
	if _, err := phys.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	if _, err := phys.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	if _, err := phys.Alloc2M(); err != nil {
		t.Fatal(err)
	}
	// Pool now has no full 2MB frame but still has the bottom-up 4K space?
	// mem.New carves small frames from the bottom; all three large frames
	// came off the top. With 6MB total they consumed everything.
	if err := m.Register(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	err := m.HandleFault(0, true)
	if err == nil {
		t.Skip("allocator still had room; fallback path covered elsewhere")
	}
}

func TestOutOfRegionFault(t *testing.T) {
	m, _ := newMgr(t, 16)
	if err := m.Register(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if err := m.HandleFault(units.Addr(units.GB), false); !errors.Is(err, ErrOutOfRegion) {
		t.Errorf("want ErrOutOfRegion, got %v", err)
	}
}

func TestMisalignedRegionRejected(t *testing.T) {
	m, _ := newMgr(t, 16)
	if err := m.Register(0x1000, units.PageSize2M); err == nil {
		t.Error("misaligned region accepted")
	}
	if err := m.Register(0, 0); err == nil {
		t.Error("empty region accepted")
	}
}

// Property: after any touch sequence, every touched address translates, and
// the number of 2MB mappings equals the promotion count.
func TestTouchTranslateProperty(t *testing.T) {
	f := func(offs []uint32) bool {
		phys := mem.New(64 * units.MB)
		pt := pagetable.New()
		m := New(phys, pt, nil)
		m.PromoteAt = 16
		if err := m.Register(0, 8*units.PageSize2M); err != nil {
			return false
		}
		span := uint64(8 * units.PageSize2M)
		for _, o := range offs {
			va := units.Addr(uint64(o) % span)
			if _, err := pt.Translate(va); err == nil {
				continue
			}
			if err := m.HandleFault(va, true); err != nil {
				return false
			}
			if _, err := pt.Translate(va); err != nil {
				return false
			}
		}
		return int64(pt.Mapped2M()) == int64(m.Stats.Promotions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInjectedAllocFailureBreaksReservation: a SiteTHPAlloc fault keyed at
// the chunk address breaks the reservation so the chunk serves 4 KB pages,
// without touching other chunks.
func TestInjectedAllocFailureBreaksReservation(t *testing.T) {
	m, pt := newMgr(t, 64)
	m.SetFaultPlan(faultinject.New(1).EnableAt(faultinject.SiteTHPAlloc, 0)) // key 0 = chunk at VA 0
	if err := m.Register(0, 2*units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if err := m.HandleFault(0x100, false); err != nil {
		t.Fatal(err)
	}
	if m.Stats.BrokenReservations != 1 || m.Stats.Fallback4K != 1 {
		t.Fatalf("stats = %+v, want broken=1 fallback=1", m.Stats)
	}
	// Second chunk (key PageSize2M) is unaffected and reserves normally.
	if err := m.HandleFault(units.Addr(units.PageSize2M), false); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Reservations != 1 {
		t.Fatalf("stats = %+v, want one reservation for the healthy chunk", m.Stats)
	}
	if _, err := pt.Translate(0x100); err != nil {
		t.Fatal(err)
	}
}

// TestDemoteSplitsPromotedChunk: Demote tears down the 2 MB mapping with a
// shootdown and re-maps every base page from the same frame.
func TestDemoteSplitsPromotedChunk(t *testing.T) {
	phys := mem.New(64 * units.MB)
	pt := pagetable.New()
	var shots []units.Addr
	m := New(phys, pt, func(va units.Addr, size units.PageSize) {
		if size == units.Size2M {
			shots = append(shots, va)
		}
	})
	m.PromoteAt = 4
	if err := m.Register(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.HandleFault(units.Addr(int64(i)*units.PageSize4K), true); err != nil {
			t.Fatal(err)
		}
	}
	if pt.Mapped2M() != 1 {
		t.Fatal("chunk not promoted")
	}
	w2m, _ := pt.Translate(0x5000)
	if err := m.Demote(0x100); err != nil {
		t.Fatal(err)
	}
	if pt.Mapped2M() != 0 || pt.Mapped4K() != basePagesPerChunk {
		t.Fatalf("after demote: 2M=%d 4K=%d, want 0/%d", pt.Mapped2M(), pt.Mapped4K(), basePagesPerChunk)
	}
	// Same physical frame: translation of any offset resolves to the same
	// physical address as before the split.
	w4k, err := pt.Translate(0x5000)
	if err != nil {
		t.Fatal(err)
	}
	if pagetable.PhysAddr(0x5000, w4k.Entry) != pagetable.PhysAddr(0x5000, w2m.Entry) {
		t.Fatal("demotion moved the page contents")
	}
	if len(shots) != 1 || shots[0] != 0 {
		t.Fatalf("2M shootdowns = %v, want one at 0", shots)
	}
	if m.Stats.Demotions != 1 {
		t.Fatalf("Demotions = %d", m.Stats.Demotions)
	}
	if m.DemotedBytes() != units.PageSize2M {
		t.Fatalf("DemotedBytes = %d", m.DemotedBytes())
	}
	// A fault in the demoted chunk is a no-op (everything is mapped) and
	// must not re-promote.
	if err := m.HandleFault(0x100, true); err != nil {
		t.Fatal(err)
	}
	if pt.Mapped2M() != 0 {
		t.Fatal("demoted chunk re-promoted by a stale fault")
	}
}

// TestDemoteNonPromotedNoop: Demote of an unpromoted chunk does nothing;
// outside any region it returns the typed error.
func TestDemoteNonPromotedNoop(t *testing.T) {
	m, pt := newMgr(t, 64)
	if err := m.Register(0, units.PageSize2M); err != nil {
		t.Fatal(err)
	}
	if err := m.HandleFault(0, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Demote(0); err != nil {
		t.Fatal(err)
	}
	if pt.Mapped4K() != 1 || m.Stats.Demotions != 0 {
		t.Fatalf("no-op demote changed state: 4K=%d demotions=%d", pt.Mapped4K(), m.Stats.Demotions)
	}
	if err := m.Demote(units.Addr(64 * units.PageSize2M)); !errors.Is(err, ErrOutOfRegion) {
		t.Fatalf("want ErrOutOfRegion, got %v", err)
	}
}

// TestInjectedPressureDemotesDeterministically: a pressure plan fired from
// the fault path demotes the lowest promoted chunk, and the same seed
// reproduces the same demotion count.
func TestInjectedPressureDemotesDeterministically(t *testing.T) {
	run := func() uint64 {
		phys := mem.New(256 * units.MB)
		pt := pagetable.New()
		m := New(phys, pt, nil)
		m.PromoteAt = 2
		m.SetFaultPlan(faultinject.New(0xfeed).Enable(faultinject.SiteTHPPressure, 0.2))
		if err := m.Register(0, 8*units.PageSize2M); err != nil {
			t.Fatal(err)
		}
		for ci := 0; ci < 8; ci++ {
			for pi := 0; pi < 2; pi++ {
				va := units.Addr(int64(ci)*units.PageSize2M + int64(pi)*units.PageSize4K)
				if err := m.HandleFault(va, true); err != nil {
					t.Fatal(err)
				}
			}
		}
		return m.Stats.Demotions
	}
	a := run()
	if a == 0 {
		t.Fatal("pressure plan at rate 0.2 over 16 faults demoted nothing")
	}
	if b := run(); a != b {
		t.Fatalf("demotions differ across replays: %d vs %d", a, b)
	}
}
