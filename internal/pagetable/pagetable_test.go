package pagetable

import (
	"errors"
	"testing"
	"testing/quick"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/units"
)

func TestMapTranslate4K(t *testing.T) {
	pt := New()
	va := units.Addr(0x400000)
	if err := pt.Map(va, units.Size4K, 42, ProtRW); err != nil {
		t.Fatal(err)
	}
	wr, err := pt.Translate(va + 123)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.PFN != 42 || wr.Entry.Size != units.Size4K {
		t.Errorf("entry = %+v", wr.Entry)
	}
	if wr.MemRefs != 2 {
		t.Errorf("4KB walk refs = %d, want 2 (PGD + PTE)", wr.MemRefs)
	}
	if pa := PhysAddr(va+123, wr.Entry); pa != 42*4096+123 {
		t.Errorf("PhysAddr = %#x", pa)
	}
}

func TestMapTranslate2M(t *testing.T) {
	pt := New()
	va := units.Addr(0x40000000)
	if err := pt.Map(va, units.Size2M, 1024, ProtRW); err != nil {
		t.Fatal(err)
	}
	wr, err := pt.Translate(va + 0x12345)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Entry.Size != units.Size2M {
		t.Errorf("size = %v", wr.Entry.Size)
	}
	if wr.MemRefs != 1 {
		t.Errorf("2MB walk refs = %d, want 1 (PGD only) — the shorter walk is a core large-page benefit", wr.MemRefs)
	}
	if pa := PhysAddr(va+0x12345, wr.Entry); pa != 1024*4096+0x12345 {
		t.Errorf("PhysAddr = %#x", pa)
	}
}

func TestMisalignedMap(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1001, units.Size4K, 1, ProtRW); !errors.Is(err, ErrMisaligned) {
		t.Errorf("want ErrMisaligned, got %v", err)
	}
	if err := pt.Map(units.Addr(units.PageSize4K), units.Size2M, 512, ProtRW); !errors.Is(err, ErrMisaligned) {
		t.Errorf("want ErrMisaligned for unaligned 2MB va, got %v", err)
	}
	if err := pt.Map(0, units.Size2M, 5, ProtRW); !errors.Is(err, ErrMisaligned) {
		t.Errorf("want ErrMisaligned for unaligned 2MB pfn, got %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	pt := New()
	if err := pt.Map(0, units.Size2M, 0, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x1000, units.Size4K, 99, ProtRW); !errors.Is(err, ErrOverlap) {
		t.Errorf("4K inside 2M: want ErrOverlap, got %v", err)
	}
	if err := pt.Map(0, units.Size2M, 512, ProtRW); !errors.Is(err, ErrOverlap) {
		t.Errorf("2M on 2M: want ErrOverlap, got %v", err)
	}
	pt2 := New()
	if err := pt2.Map(0x1000, units.Size4K, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := pt2.Map(0, units.Size2M, 512, ProtRW); !errors.Is(err, ErrOverlap) {
		t.Errorf("2M over 4K: want ErrOverlap, got %v", err)
	}
	if err := pt2.Map(0x1000, units.Size4K, 2, ProtRW); !errors.Is(err, ErrOverlap) {
		t.Errorf("4K on 4K: want ErrOverlap, got %v", err)
	}
}

func TestUnmap(t *testing.T) {
	pt := New()
	if err := pt.Map(0x2000, units.Size4K, 7, ProtRW); err != nil {
		t.Fatal(err)
	}
	e, err := pt.Unmap(0x2000, units.Size4K)
	if err != nil {
		t.Fatal(err)
	}
	if e.PFN != 7 {
		t.Errorf("unmapped PFN = %d", e.PFN)
	}
	if _, err := pt.Translate(0x2000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("want ErrNotMapped after unmap, got %v", err)
	}
	if pt.Mapped4K() != 0 {
		t.Errorf("Mapped4K = %d", pt.Mapped4K())
	}
}

func TestProtectionTrap(t *testing.T) {
	pt := New()
	if err := pt.Map(0, units.Size4K, 3, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Access(0x10, false); err != nil {
		t.Errorf("read should succeed: %v", err)
	}
	if _, err := pt.Access(0x10, true); !errors.Is(err, ErrProtViolation) {
		t.Errorf("write should trap: %v", err)
	}
	if _, err := pt.Protect(0, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Access(0x10, true); err != nil {
		t.Errorf("write after Protect(RW) should succeed: %v", err)
	}
	if _, err := pt.Protect(0, ProtNone); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Access(0x10, false); !errors.Is(err, ErrProtViolation) {
		t.Errorf("read of ProtNone page should trap: %v", err)
	}
}

func TestMappedBytesAccounting(t *testing.T) {
	pt := New()
	for i := 0; i < 10; i++ {
		va := units.Addr(int64(i) * units.PageSize4K)
		if err := pt.Map(va, units.Size4K, uint64(i), ProtRW); err != nil {
			t.Fatal(err)
		}
	}
	if err := pt.Map(units.Addr(units.PageSize2M*4), units.Size2M, 2048, ProtRW); err != nil {
		t.Fatal(err)
	}
	want := 10*units.PageSize4K + units.PageSize2M
	if got := pt.MappedBytes(); got != want {
		t.Errorf("MappedBytes = %d, want %d", got, want)
	}
}

// Property: mapping a random set of non-overlapping 4K pages and translating
// any address inside each page returns the page's PFN and offset.
func TestTranslateRoundTrip(t *testing.T) {
	f := func(pages []uint16, offs uint16) bool {
		pt := New()
		seen := map[uint64]uint64{}
		pfn := uint64(1)
		for _, p := range pages {
			vpn := uint64(p)
			if _, dup := seen[vpn]; dup {
				continue
			}
			va := units.Addr(vpn * uint64(units.PageSize4K))
			if err := pt.Map(va, units.Size4K, pfn, ProtRW); err != nil {
				return false
			}
			seen[vpn] = pfn
			pfn++
		}
		for vpn, want := range seen {
			va := units.Addr(vpn*uint64(units.PageSize4K) + uint64(offs)%4096)
			wr, err := pt.Translate(va)
			if err != nil || wr.Entry.PFN != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestUnmapProtectUnmappedTyped: operations on an unmapped page must fail
// with the typed ErrNotMapped — callers distinguish it from transient faults.
func TestUnmapProtectUnmappedTyped(t *testing.T) {
	pt := New()
	if _, err := pt.Unmap(0x5000, units.Size4K); !errors.Is(err, ErrNotMapped) {
		t.Errorf("Unmap of unmapped 4K: want ErrNotMapped, got %v", err)
	}
	if _, err := pt.Unmap(0, units.Size2M); !errors.Is(err, ErrNotMapped) {
		t.Errorf("Unmap of unmapped 2M: want ErrNotMapped, got %v", err)
	}
	if _, err := pt.Protect(0x5000, ProtRW); !errors.Is(err, ErrNotMapped) {
		t.Errorf("Protect of unmapped: want ErrNotMapped, got %v", err)
	}
	// Size-mismatched unmaps are also typed, not silent.
	if err := pt.Map(0, units.Size2M, 0, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Unmap(0, units.Size4K); !errors.Is(err, ErrNotMapped) {
		t.Errorf("4K unmap of 2M mapping: want ErrNotMapped, got %v", err)
	}
	pt2 := New()
	if err := pt2.Map(0x1000, units.Size4K, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, err := pt2.Unmap(0, units.Size2M); !errors.Is(err, ErrNotMapped) {
		t.Errorf("2M unmap of 4K mapping: want ErrNotMapped, got %v", err)
	}
}

// TestMapFaultInjection: an armed SitePTMap plan makes Map fail with the
// typed ErrTransient and leaves the table unchanged.
func TestMapFaultInjection(t *testing.T) {
	pt := New()
	pt.SetFaultPlan(faultinject.New(1).Enable(faultinject.SitePTMap, 1))
	err := pt.Map(0x3000, units.Size4K, 9, ProtRW)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient, got %v", err)
	}
	if pt.Mapped4K() != 0 {
		t.Fatal("failed Map mutated the table")
	}
	pt.SetFaultPlan(nil)
	if err := pt.Map(0x3000, units.Size4K, 9, ProtRW); err != nil {
		t.Fatalf("Map after disarm: %v", err)
	}
}

// TestMapRetryAbsorbsTransients: MapRetry succeeds through rate-based
// transient faults, counts the absorbed retries, and still propagates
// non-transient errors immediately.
func TestMapRetryAbsorbsTransients(t *testing.T) {
	pt := New()
	pt.SetFaultPlan(faultinject.New(7).Enable(faultinject.SitePTMap, 0.5))
	var retries uint64
	for i := 0; i < 64; i++ {
		va := units.Addr(int64(i) * units.PageSize4K)
		if err := pt.MapRetry(va, units.Size4K, uint64(i), ProtRW); err != nil {
			t.Fatalf("MapRetry(%#x): %v", va, err)
		}
	}
	retries = pt.MapRetries()
	if retries == 0 {
		t.Fatal("rate 0.5 over 64 maps absorbed zero retries — injection not exercised")
	}
	if pt.Mapped4K() != 64 {
		t.Fatalf("Mapped4K = %d, want 64", pt.Mapped4K())
	}
	// Non-transient errors are not retried (plan disarmed so the transient
	// draw, which precedes the overlap check, cannot interleave).
	pt.SetFaultPlan(nil)
	before := pt.MapRetries()
	if err := pt.MapRetry(0, units.Size4K, 999, ProtRW); !errors.Is(err, ErrOverlap) {
		t.Fatalf("want ErrOverlap, got %v", err)
	}
	if pt.MapRetries() != before {
		t.Fatal("overlap error consumed retries")
	}
}

// TestMapRetryDeterministic: the same seed absorbs the same number of
// retries — MapRetry is part of the replayable-counters contract.
func TestMapRetryDeterministic(t *testing.T) {
	run := func() uint64 {
		pt := New()
		pt.SetFaultPlan(faultinject.New(0xabc).Enable(faultinject.SitePTMap, 0.4))
		for i := 0; i < 32; i++ {
			if err := pt.MapRetry(units.Addr(int64(i)*units.PageSize4K), units.Size4K, uint64(i), ProtRW); err != nil {
				t.Fatalf("MapRetry: %v", err)
			}
		}
		return pt.MapRetries()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("retry counts differ across replays: %d vs %d", a, b)
	}
}

func TestGenerationAdvancesOnMutation(t *testing.T) {
	pt := New()
	g0 := pt.Gen()
	if g0 == 0 {
		t.Fatal("generation 0 is reserved; a fresh table must start above it")
	}
	if err := pt.Map(0, units.Size4K, 1, ProtRW); err != nil {
		t.Fatal(err)
	}
	g1 := pt.Gen()
	if g1 <= g0 {
		t.Fatalf("Map did not advance generation: %d -> %d", g0, g1)
	}
	if _, err := pt.Translate(0); err != nil {
		t.Fatal(err)
	}
	if pt.Gen() != g1 {
		t.Fatal("Translate must not advance the generation")
	}
	if _, err := pt.Protect(0, ProtRead); err != nil {
		t.Fatal(err)
	}
	g2 := pt.Gen()
	if g2 <= g1 {
		t.Fatalf("Protect did not advance generation: %d -> %d", g1, g2)
	}
	if _, err := pt.Unmap(0, units.Size4K); err != nil {
		t.Fatal(err)
	}
	if pt.Gen() <= g2 {
		t.Fatalf("Unmap did not advance generation: %d -> %d", g2, pt.Gen())
	}
}
