// Package pagetable implements the per-process radix page table described in
// the paper (its Figure 2, after Gorman): on x86-64 Linux of that era the
// Page Global Directory (PGD) points directly at page frames holding Page
// Table Entries (PTEs) — there is no middle directory — and the virtual
// address is split into a PGD index, a PTE index and an in-page offset.
//
// A 2 MB large-page mapping terminates at the PGD level, so its page walk is
// one memory reference shorter than the two-reference walk of a 4 KB page.
// The Translate result reports exactly how many memory references the walk
// performed; the machine layer converts that into cycles.
package pagetable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hugeomp/internal/faultinject"
	"hugeomp/internal/units"
)

// Prot is a page protection mask, used by the SCASH eager-release-consistency
// machinery to trap accesses (the paper's section 3.3 "Memory Protection").
type Prot uint8

const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtRW         = ProtRead | ProtWrite
)

// Fault kinds raised by Access.
var (
	ErrNotMapped     = errors.New("pagetable: address not mapped")
	ErrProtViolation = errors.New("pagetable: protection violation")
	ErrOverlap       = errors.New("pagetable: mapping overlaps existing mapping")
	ErrMisaligned    = errors.New("pagetable: misaligned mapping")
	// ErrTransient is a retryable map failure (the kernel's "try again" paths:
	// allocation of the PTE frame raced, memory momentarily tight). Only fault
	// injection raises it; MapRetry absorbs it with bounded retries.
	ErrTransient = errors.New("pagetable: transient map failure")
)

const (
	ptesPerFrame = 512 // one 4 KB frame of 8-byte PTEs
	pgdSpan      = units.PageSize2M
)

// Entry describes one resolved translation.
type Entry struct {
	PFN  uint64 // physical frame number in 4 KB units
	Size units.PageSize
	Prot Prot
}

// WalkResult reports the cost of resolving a translation.
type WalkResult struct {
	MemRefs int // memory references performed by the walk
	Entry   Entry
}

// Packed walk-result layout (low to high): Size (1 bit), Prot (2 bits),
// MemRefs (6 bits), PFN (44 bits) — 53 bits total, leaving headroom for
// callers to pack their own metadata alongside.
const (
	packProtShift = 1
	packRefShift  = 3
	packPFNShift  = 9
	// PackedWalkBits is the width of a packed walk result.
	PackedWalkBits = 53
)

// Pack encodes the result into the low PackedWalkBits bits of a uint64, for
// compact per-context translation caches. ok is false when the result
// exceeds the packed ranges (a PFN at or above 2^44, or a walk of 64+ memory
// references) — callers simply skip caching such results.
func (wr WalkResult) Pack() (v uint64, ok bool) {
	if wr.Entry.PFN >= 1<<44 || wr.MemRefs < 0 || wr.MemRefs >= 64 {
		return 0, false
	}
	v = uint64(wr.Entry.Size)&1 |
		uint64(wr.Entry.Prot)<<packProtShift |
		uint64(wr.MemRefs)<<packRefShift |
		wr.Entry.PFN<<packPFNShift
	return v, true
}

// UnpackWalk is the inverse of Pack.
func UnpackWalk(v uint64) WalkResult {
	return WalkResult{
		MemRefs: int(v >> packRefShift & 0x3f),
		Entry: Entry{
			PFN:  v >> packPFNShift & (1<<44 - 1),
			Size: units.PageSize(v & 1),
			Prot: Prot(v >> packProtShift & 3),
		},
	}
}

type pgdEntry struct {
	large bool
	// large mapping
	pfn  uint64
	prot Prot
	// small mappings. After Fork the frame (and the entry itself) may be
	// aliased by several tables; shared marks that state, and every mutation
	// must first clone the entry into the writing table through ensureOwned,
	// the copy-on-write barrier. simlint's cowshared analyzer enforces that
	// writes to ptes happen only inside //simlint:cowbarrier functions.
	//
	//simlint:cowshared
	ptes   *[ptesPerFrame]pte
	used   int  // live PTEs; the frame is freed when it reaches zero
	shared bool // entry is (or was) aliased by a forked table
}

type pte struct {
	present bool
	pfn     uint64
	prot    Prot
}

// Table is one process's page table. It is safe for concurrent translation;
// mapping operations take the write lock.
//
// The PGD is a flat slice for the low address range (the simulated process
// layout lives below 16 GB) with a map fallback for arbitrary high
// addresses; page walks are the simulator's hottest slow path and the slice
// lookup keeps them cheap.
//
// Every mutation (Map, Unmap, Protect) advances the generation counter.
// The machine layer stamps its per-context translation caches with the
// generation observed before a walk; an entry whose stamp still equals
// Gen() is provably a result the table could return right now, so repeat
// walks become lock-free reads. A stale stamp merely forces a locked
// re-walk — the invalidation protocol is purely monotonic.
type Table struct {
	mu      sync.RWMutex
	pgdLow  []*pgdEntry // indices below lowPGDs
	pgdHigh map[uint64]*pgdEntry

	gen      atomic.Uint64 // mutation generation; starts at 1 (see New)
	mapped4K atomic.Int64
	mapped2M atomic.Int64

	fault      *faultinject.Plan // nil = no injection
	mapRetries atomic.Uint64     // transient Map failures absorbed by MapRetry
}

// lowPGDs covers virtual addresses below 16 GB with the slice-indexed PGD.
const lowPGDs = uint64((16 << 30) / pgdSpan)

// New creates an empty page table.
func New() *Table {
	t := &Table{
		pgdLow:  make([]*pgdEntry, lowPGDs),
		pgdHigh: make(map[uint64]*pgdEntry),
	}
	// Generation 0 is reserved as "never valid" so zero-valued translation
	// cache entries can never match a live table.
	t.gen.Store(1)
	return t
}

// Gen returns the current mutation generation (lock-free).
func (t *Table) Gen() uint64 { return t.gen.Load() }

// entry returns the PGD entry for index gi, or nil.
func (t *Table) entry(gi uint64) *pgdEntry {
	if gi < lowPGDs {
		return t.pgdLow[gi]
	}
	return t.pgdHigh[gi]
}

// setEntry installs or clears the PGD entry for index gi.
func (t *Table) setEntry(gi uint64, e *pgdEntry) {
	if gi < lowPGDs {
		t.pgdLow[gi] = e
		return
	}
	if e == nil {
		delete(t.pgdHigh, gi)
		return
	}
	t.pgdHigh[gi] = e
}

func pgdIndex(va units.Addr) uint64 { return uint64(va) >> units.PageShift2M }
func pteIndex(va units.Addr) uint64 {
	return (uint64(va) >> units.PageShift4K) % ptesPerFrame
}

// Map installs a mapping of one page of the given size at va. va must be
// size-aligned and must not overlap an existing mapping. pfn is in 4 KB
// units; for a 2 MB page it must be 512-aligned (naturally aligned frame).
func (t *Table) Map(va units.Addr, size units.PageSize, pfn uint64, prot Prot) error {
	return t.mapAttempt(va, size, pfn, prot, 0)
}

// mapAttempt is Map with an attempt index folded into the fault-decision key:
// the target VA keeps concurrent mappers schedule-independent, the attempt
// number gives each MapRetry round a fresh draw so a faulted VA is not
// faulted forever.
func (t *Table) mapAttempt(va units.Addr, size units.PageSize, pfn uint64, prot Prot, attempt uint64) error {
	if uint64(va)&uint64(size.Mask()) != 0 {
		return fmt.Errorf("%w: va %#x for %s page", ErrMisaligned, va, size)
	}
	key := uint64(va) ^ uint64(size) ^ attempt*0x9e3779b97f4a7c15
	if t.fault.ShouldKey(faultinject.SitePTMap, key) {
		return fmt.Errorf("%w: va %#x attempt %d (injected)", ErrTransient, va, attempt)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	gi := pgdIndex(va)
	e := t.entry(gi)
	if size == units.Size2M {
		if pfn%uint64(ptesPerFrame) != 0 {
			return fmt.Errorf("%w: pfn %#x for 2MB frame", ErrMisaligned, pfn)
		}
		if e != nil {
			return fmt.Errorf("%w: 2MB at %#x", ErrOverlap, va)
		}
		t.setEntry(gi, &pgdEntry{large: true, pfn: pfn, prot: prot})
		t.mapped2M.Add(1)
		t.gen.Add(1)
		return nil
	}
	if e == nil {
		e = &pgdEntry{ptes: new([ptesPerFrame]pte)}
		t.setEntry(gi, e)
	} else if e.large {
		return fmt.Errorf("%w: 4KB inside 2MB at %#x", ErrOverlap, va)
	}
	pi := pteIndex(va)
	if e.ptes[pi].present {
		return fmt.Errorf("%w: 4KB at %#x", ErrOverlap, va)
	}
	e = t.ensureOwned(gi, e)
	t.writePTE(e, pi, pte{present: true, pfn: pfn, prot: prot})
	e.used++
	t.mapped4K.Add(1)
	t.gen.Add(1)
	return nil
}

// Unmap removes the mapping of the page of the given size at va and returns
// its entry (so the caller can free the physical frame).
func (t *Table) Unmap(va units.Addr, size units.PageSize) (Entry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	gi := pgdIndex(va)
	e := t.entry(gi)
	if e == nil {
		return Entry{}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	if size == units.Size2M {
		if !e.large {
			return Entry{}, fmt.Errorf("%w: no 2MB mapping at %#x", ErrNotMapped, va)
		}
		ent := Entry{PFN: e.pfn, Size: units.Size2M, Prot: e.prot}
		t.setEntry(gi, nil)
		t.mapped2M.Add(-1)
		t.gen.Add(1)
		return ent, nil
	}
	if e.large {
		return Entry{}, fmt.Errorf("%w: 2MB mapping at %#x, not 4KB", ErrNotMapped, va)
	}
	pi := pteIndex(va)
	p := e.ptes[pi]
	if !p.present {
		return Entry{}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	ent := Entry{PFN: p.pfn, Size: units.Size4K, Prot: p.prot}
	e = t.ensureOwned(gi, e)
	t.writePTE(e, pi, pte{})
	e.used--
	t.mapped4K.Add(-1)
	t.gen.Add(1)
	if e.used == 0 {
		// Free the empty PTE frame so the slot can take a 2 MB mapping
		// (huge-page promotion collapses the whole directory entry).
		t.setEntry(gi, nil)
	}
	return ent, nil
}

// Protect changes the protection of the page containing va. It returns the
// page size of the affected mapping. Used by the SCASH coherence protocol to
// arm and disarm access traps.
func (t *Table) Protect(va units.Addr, prot Prot) (units.PageSize, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	gi := pgdIndex(va)
	e := t.entry(gi)
	if e == nil {
		return 0, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	if e.large {
		e = t.ensureOwned(gi, e)
		e.prot = prot
		t.gen.Add(1)
		return units.Size2M, nil
	}
	pi := pteIndex(va)
	p := e.ptes[pi]
	if !p.present {
		return 0, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	p.prot = prot
	e = t.ensureOwned(gi, e)
	t.writePTE(e, pi, p)
	t.gen.Add(1)
	return units.Size4K, nil
}

// ensureOwned returns a PGD entry the table may mutate: if e is aliased by a
// forked table (shared), it clones the entry — including its PTE frame — and
// installs the private copy at slot gi, leaving the shared original untouched
// for the other tables. O(1) when the entry is already private, one 4 KB
// frame copy on the first write after a fork. Caller holds t.mu.
//
//simlint:cowbarrier
func (t *Table) ensureOwned(gi uint64, e *pgdEntry) *pgdEntry {
	if !e.shared {
		return e
	}
	ne := &pgdEntry{large: e.large, pfn: e.pfn, prot: e.prot, used: e.used}
	if e.ptes != nil {
		ne.ptes = new([ptesPerFrame]pte)
		*ne.ptes = *e.ptes
	}
	t.setEntry(gi, ne)
	return ne
}

// writePTE stores one PTE into an entry this table owns. It is the single
// write point for the COW-shared ptes frames: callers must route the entry
// through ensureOwned first — checked at run time by the shared panic and
// statically by simlint's cowshared analyzer (writes to a //simlint:cowshared
// field are legal only inside //simlint:cowbarrier functions).
//
//simlint:cowbarrier
func (t *Table) writePTE(e *pgdEntry, pi uint64, p pte) {
	if e.shared {
		panic("pagetable: write to COW-shared PTE frame without ensureOwned")
	}
	e.ptes[pi] = p
}

// Fork returns a copy-on-write duplicate of the table: the fork observes
// exactly the mappings, generation and counters of t at the time of the call,
// but shares every PGD entry (and its 4 KB PTE frame) with t until one side
// writes it, at which point the writer clones just that entry (ensureOwned).
// Forking is O(PGD slots) — it copies pointer slices, never PTE frames — so
// duplicating a fully mapped table costs metadata, not memory.
//
// The fault-injection plan is deliberately not inherited (plans carry
// occurrence counters and must not be shared between runs); arm the fork with
// SetFaultPlan if injection is wanted. The generation counter is preserved,
// so translation caches stamped against t remain provably valid against the
// fork.
func (t *Table) Fork() *Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	nt := &Table{
		pgdLow:  make([]*pgdEntry, lowPGDs),
		pgdHigh: make(map[uint64]*pgdEntry, len(t.pgdHigh)),
	}
	for gi, e := range t.pgdLow {
		if e != nil {
			e.shared = true
			nt.pgdLow[gi] = e
		}
	}
	for gi, e := range t.pgdHigh {
		e.shared = true
		nt.pgdHigh[gi] = e
	}
	nt.gen.Store(t.gen.Load())
	nt.mapped4K.Store(t.mapped4K.Load())
	nt.mapped2M.Store(t.mapped2M.Load())
	nt.mapRetries.Store(t.mapRetries.Load())
	return nt
}

// Translate performs a page walk for va, ignoring protections. The returned
// WalkResult reports the memory references the hardware walker performed:
// 2 for a 4 KB page (PGD entry, then PTE), 1 for a 2 MB page (PGD entry
// only). This asymmetry is one of the two sources of large-page benefit in
// the paper (the other being TLB reach).
func (t *Table) Translate(va units.Addr) (WalkResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e := t.entry(pgdIndex(va))
	if e == nil {
		return WalkResult{MemRefs: 1}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	if e.large {
		return WalkResult{
			MemRefs: 1,
			Entry:   Entry{PFN: e.pfn, Size: units.Size2M, Prot: e.prot},
		}, nil
	}
	p := e.ptes[pteIndex(va)]
	if !p.present {
		return WalkResult{MemRefs: 2}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	return WalkResult{
		MemRefs: 2,
		Entry:   Entry{PFN: p.pfn, Size: units.Size4K, Prot: p.prot},
	}, nil
}

// Access resolves va and checks that the access kind (write or read) is
// permitted, returning ErrProtViolation if the page is mapped but protected.
// The SCASH layer uses the violation as its coherence trap.
func (t *Table) Access(va units.Addr, write bool) (WalkResult, error) {
	wr, err := t.Translate(va)
	if err != nil {
		return wr, err
	}
	need := ProtRead
	if write {
		need = ProtWrite
	}
	if wr.Entry.Prot&need == 0 {
		return wr, fmt.Errorf("%w: %#x (write=%v)", ErrProtViolation, va, write)
	}
	return wr, nil
}

// PhysAddr computes the physical address for va given its entry.
func PhysAddr(va units.Addr, e Entry) units.Addr {
	return units.Addr(e.PFN)*units.Addr(units.PageSize4K) + (va & e.Size.Mask())
}

// SetFaultPlan arms (or, with nil, disarms) fault injection for this table.
// Call before the run starts; decisions themselves are concurrency-safe.
func (t *Table) SetFaultPlan(p *faultinject.Plan) { t.fault = p }

// maxMapRetries bounds MapRetry. A plan firing at a fixed rate r leaves a
// residual r^(n+1) chance of hard failure; 8 retries make even rate 0.5
// effectively always succeed while still exercising the retry path.
const maxMapRetries = 8

// MapRetry is Map with bounded retry over ErrTransient, the path callers in
// the memory stack use so injected transient faults degrade to extra work
// (counted in MapRetries) instead of failed runs. Non-transient errors
// return immediately.
func (t *Table) MapRetry(va units.Addr, size units.PageSize, pfn uint64, prot Prot) error {
	var err error
	for attempt := uint64(0); attempt <= maxMapRetries; attempt++ {
		err = t.mapAttempt(va, size, pfn, prot, attempt)
		if !errors.Is(err, ErrTransient) {
			return err
		}
		t.mapRetries.Add(1)
	}
	return err
}

// MapRetries returns how many transient Map failures were absorbed by
// MapRetry (lock-free).
func (t *Table) MapRetries() uint64 { return t.mapRetries.Load() }

// Mapped4K returns the number of live 4 KB mappings (lock-free).
func (t *Table) Mapped4K() int { return int(t.mapped4K.Load()) }

// Mapped2M returns the number of live 2 MB mappings (lock-free).
func (t *Table) Mapped2M() int { return int(t.mapped2M.Load()) }

// MappedBytes returns the total bytes mapped (lock-free).
func (t *Table) MappedBytes() int64 {
	return t.mapped4K.Load()*units.PageSize4K + t.mapped2M.Load()*units.PageSize2M
}
