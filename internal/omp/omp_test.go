package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hugeomp/internal/machine"
	"hugeomp/internal/pagetable"
	"hugeomp/internal/units"
)

func newRT(t *testing.T, model machine.Model, threads int, opts ...Option) *RT {
	t.Helper()
	pt := pagetable.New()
	for off := int64(0); off < 16*units.MB; off += units.PageSize4K {
		if err := pt.Map(units.Addr(off), units.Size4K, uint64(off/units.PageSize4K), pagetable.ProtRW); err != nil {
			t.Fatal(err)
		}
	}
	m := machine.New(model)
	m.AttachProcess(pt)
	rt, err := New(m, threads, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestParallelRunsAllThreads(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 4)
	var ran [4]atomic.Bool
	rt.Parallel(nil, func(tid int, c *machine.Context) {
		ran[tid].Store(true)
	})
	for i := range ran {
		if !ran[i].Load() {
			t.Errorf("thread %d did not run", i)
		}
	}
	if rt.Regions() != 1 {
		t.Errorf("regions = %d", rt.Regions())
	}
	if rt.WallCycles() == 0 {
		t.Error("region cost not charged")
	}
}

func TestNestedParallelPanics(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 2)
	var panicked atomic.Bool
	rt.Parallel(nil, func(tid int, c *machine.Context) {
		if tid == 0 {
			func() {
				defer func() {
					if recover() != nil {
						panicked.Store(true)
					}
				}()
				rt.Parallel(nil, func(int, *machine.Context) {})
			}()
		}
	})
	if !panicked.Load() {
		t.Error("nested parallel should panic")
	}
}

func coverage(t *testing.T, rt *RT, n int, f For) []int32 {
	t.Helper()
	counts := make([]int32, n)
	rt.ParallelFor(nil, n, f, func(tid int, c *machine.Context, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	return counts
}

func TestSchedulesCoverEveryIterationExactlyOnce(t *testing.T) {
	for _, sched := range []For{
		{Schedule: Static},
		{Schedule: Static, Chunk: 3},
		{Schedule: Dynamic},
		{Schedule: Dynamic, Chunk: 7},
		{Schedule: Guided},
		{Schedule: Guided, Chunk: 4},
	} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			rt := newRT(t, machine.Opteron270(), 4)
			counts := coverage(t, rt, n, sched)
			for i, got := range counts {
				if got != 1 {
					t.Errorf("%v n=%d: iteration %d ran %d times", sched, n, i, got)
				}
			}
		}
	}
}

// Property: any (schedule, chunk, n, threads) combination covers [0,n)
// exactly once.
func TestScheduleCoverageProperty(t *testing.T) {
	f := func(kind uint8, chunk uint8, nRaw uint16, threadsRaw uint8) bool {
		n := int(nRaw) % 500
		threads := int(threadsRaw)%4 + 1
		sched := For{
			Schedule: ScheduleKind(kind % 3),
			Chunk:    int(chunk) % 16,
		}
		rt := newRT(t, machine.Opteron270(), threads)
		counts := coverage(t, rt, n, sched)
		for _, got := range counts {
			if got != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStaticDefaultIsContiguousBlocks(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 4)
	bounds := make([][2]int, 4)
	rt.ParallelFor(nil, 100, For{Schedule: Static}, func(tid int, c *machine.Context, lo, hi int) {
		bounds[tid] = [2]int{lo, hi}
	})
	if bounds[0] != [2]int{0, 25} || bounds[3] != [2]int{75, 100} {
		t.Errorf("static blocks = %v", bounds)
	}
}

func TestReduction(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 4)
	// Sum of 0..999 (the paper's Algorithm 3.1 shape).
	got := rt.ParallelForReduce(nil, 1000, For{Schedule: Static}, 0,
		func(tid int, c *machine.Context, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	if got != 499500 {
		t.Errorf("reduction = %v, want 499500", got)
	}
}

// TestReductionDeterministic: the mutex-free reduction combines the padded
// per-thread partials in tid order after the join, so a float combine whose
// result depends on operand order must come out bit-identical on every run —
// equal to the serial tid-order fold — no matter how the threads interleave.
func TestReductionDeterministic(t *testing.T) {
	const threads, n = 4, 1000
	// Mixed magnitudes make float addition order-sensitive.
	val := func(i int) float64 { return 1e16*float64(i%7) + 1e-3*float64(i) }
	body := func(tid int, c *machine.Context, lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += val(i)
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }

	// Serial reference: fold the per-thread partials in tid order.
	ref := newRT(t, machine.Opteron270(), threads)
	want := 0.0
	for tid := 0; tid < threads; tid++ {
		lo, hi := tid*n/threads, (tid+1)*n/threads
		want = add(want, body(tid, ref.Contexts()[0], lo, hi))
	}

	for rep := 0; rep < 10; rep++ {
		rt := newRT(t, machine.Opteron270(), threads)
		got := rt.ParallelForReduce(nil, n, For{Schedule: Static}, 0, body, add)
		if got != want {
			t.Fatalf("rep %d: reduction = %v, want tid-order fold %v", rep, got, want)
		}
	}
}

func TestBarrierMovesRealMessages(t *testing.T) {
	for _, algo := range []BarrierAlgo{CentralBarrier, TreeBarrier} {
		rt := newRT(t, machine.Opteron270(), 4, WithBarrier(algo))
		rt.Barrier()
		var msgs uint64
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				msgs += rt.Mesh().Chan(i, j).Msgs()
			}
		}
		if msgs == 0 {
			t.Errorf("%v barrier moved no messages", algo)
		}
		total := rt.TotalCounters()
		if total.BarrierCyc == 0 {
			t.Errorf("%v barrier charged no cycles", algo)
		}
	}
}

func TestCentralBarrierCostsMoreAtMaster(t *testing.T) {
	rtc := newRT(t, machine.Opteron270(), 4, WithBarrier(CentralBarrier))
	rtt := newRT(t, machine.Opteron270(), 4, WithBarrier(TreeBarrier))
	rtc.Barrier()
	rtt.Barrier()
	// Central master: 2*(T-1) = 6 message costs; tree: 2*ceil(log2 4) = 4.
	mc := rtc.Contexts()[0].Ctr.BarrierCyc
	mt := rtt.Contexts()[0].Ctr.BarrierCyc
	if mc <= mt {
		t.Errorf("central master barrier cycles %d <= tree %d", mc, mt)
	}
}

func TestSMTCoreSerialisationInWallClock(t *testing.T) {
	// The same total work on the Xeon at 4 threads vs 8 threads: wall time
	// must NOT improve by 2x (siblings serialise); the paper's Figure 4.
	run := func(threads int) uint64 {
		rt := newRT(t, machine.XeonHT(), threads)
		rt.ParallelFor(nil, 1<<16, For{Schedule: Static},
			func(tid int, c *machine.Context, lo, hi int) {
				c.AccessRange(units.Addr(lo*8), hi-lo, 8, false)
				c.Compute(uint64(hi-lo) * 4)
			})
		return rt.WallCycles()
	}
	t4, t8 := run(4), run(8)
	if float64(t4)/float64(t8) > 1.3 {
		t.Errorf("8 threads %.2fx faster than 4 on SMT; siblings should serialise (t4=%d t8=%d)",
			float64(t4)/float64(t8), t4, t8)
	}
}

func TestScalingOnSeparateCores(t *testing.T) {
	// 1 -> 4 threads on the Opteron should speed up nearly linearly for a
	// compute-heavy loop.
	run := func(threads int) uint64 {
		rt := newRT(t, machine.Opteron270(), threads)
		rt.ParallelFor(nil, 1<<14, For{Schedule: Static},
			func(tid int, c *machine.Context, lo, hi int) {
				c.Compute(uint64(hi-lo) * 400)
			})
		return rt.WallCycles()
	}
	t1, t4 := run(1), run(4)
	speedup := float64(t1) / float64(t4)
	if speedup < 3.2 {
		t.Errorf("4-thread speedup = %.2f, want >3.2", speedup)
	}
}

func TestSingleRunsOnce(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 4)
	var n atomic.Int32
	s := rt.NewSingle()
	rt.Parallel(nil, func(tid int, c *machine.Context) {
		if s.Try() {
			n.Add(1)
		}
	})
	if n.Load() != 1 {
		t.Errorf("single executed %d times", n.Load())
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 4)
	cs := rt.NewCritical()
	counter := 0
	rt.ParallelFor(nil, 1000, For{Schedule: Dynamic, Chunk: 10},
		func(tid int, c *machine.Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				rt.CriticalDo(cs, c, func() { counter++ })
			}
		})
	if counter != 1000 {
		t.Errorf("counter = %d, want 1000 (lost updates)", counter)
	}
}

func TestSpinLockMutualExclusionAndCost(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 4)
	l := rt.NewSpinLock(units.Addr(8 * units.MB)) // mapped, away from data
	counter := 0
	const iters = 1000
	before := rt.TotalCounters()
	rt.ParallelFor(nil, iters, For{Schedule: Dynamic, Chunk: 10},
		func(tid int, c *machine.Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				rt.SpinLockDo(l, c, func() { counter++ })
			}
		})
	if counter != iters {
		t.Errorf("counter = %d, want %d (lost updates)", counter, iters)
	}
	after := rt.TotalCounters()
	// The acquire/release sequence is fixed — one lock-word load and two
	// stores per critical section — so the totals are exact regardless of
	// how the host scheduled the team.
	if got := after.Loads - before.Loads; got != iters {
		t.Errorf("lock-word loads = %d, want %d", got, iters)
	}
	if got := after.Stores - before.Stores; got != 2*iters {
		t.Errorf("lock-word stores = %d, want %d", got, 2*iters)
	}
}

func TestSectionsEachRunOnce(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 2)
	var ran [5]atomic.Int32
	secs := make([]func(*machine.Context), 5)
	for i := range secs {
		i := i
		secs[i] = func(*machine.Context) { ran[i].Add(1) }
	}
	rt.ParallelSections(nil, secs)
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Errorf("section %d ran %d times", i, ran[i].Load())
		}
	}
}

func TestSerialChargesWall(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 4)
	before := rt.WallCycles()
	rt.Serial(func(c *machine.Context) { c.Compute(12345) })
	if rt.WallCycles()-before != 12345 {
		t.Errorf("serial delta = %d", rt.WallCycles()-before)
	}
}

func TestCodeRegionFetches(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 2)
	code := &CodeRegion{Name: "loop", Base: 0, Size: 3 * units.PageSize4K}
	rt.Parallel(code, func(tid int, c *machine.Context) {})
	total := rt.TotalCounters()
	if total.Fetches != 2*3 {
		t.Errorf("fetches = %d, want 6 (3 pages x 2 threads)", total.Fetches)
	}
}

func TestDynamicBalancesSkewedWork(t *testing.T) {
	// Iteration i costs i cycles; static gives thread 3 the heavy tail,
	// dynamic balances. Wall clock must be lower with dynamic.
	run := func(f For) uint64 {
		rt := newRT(t, machine.Opteron270(), 4)
		rt.ParallelFor(nil, 2000, f, func(tid int, c *machine.Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Compute(uint64(i))
			}
		})
		return rt.WallCycles()
	}
	static := run(For{Schedule: Static})
	dynamic := run(For{Schedule: Dynamic, Chunk: 16})
	if dynamic >= static {
		t.Errorf("dynamic (%d) not faster than static (%d) on skewed work", dynamic, static)
	}
}

func TestConcurrentCounterIsolation(t *testing.T) {
	// Contexts accumulate independently without data races (run with -race).
	rt := newRT(t, machine.Opteron270(), 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	rt.ParallelFor(nil, 4096, For{Schedule: Static},
		func(tid int, c *machine.Context, lo, hi int) {
			c.AccessRange(units.Addr(lo*8), hi-lo, 8, false)
		})
	wg.Wait()
	total := rt.TotalCounters()
	if total.Loads != 4096 {
		t.Errorf("loads = %d", total.Loads)
	}
}

func TestRegionProfilesAttributeWork(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 2)
	heavy := &CodeRegion{Name: "heavy", Base: 0, Size: units.PageSize4K}
	light := &CodeRegion{Name: "light", Base: units.Addr(units.PageSize4K), Size: units.PageSize4K}
	for i := 0; i < 3; i++ {
		rt.ParallelFor(heavy, 1024, For{}, func(tid int, c *machine.Context, lo, hi int) {
			c.Compute(uint64(1000 * (hi - lo)))
		})
	}
	rt.ParallelFor(light, 16, For{}, func(tid int, c *machine.Context, lo, hi int) {
		c.Compute(uint64(hi - lo))
	})
	profs := rt.RegionProfiles()
	if len(profs) != 2 {
		t.Fatalf("profiles = %d, want 2", len(profs))
	}
	if profs[0].Name != "heavy" {
		t.Errorf("most expensive region = %s, want heavy", profs[0].Name)
	}
	if profs[0].Entries != 3 {
		t.Errorf("heavy entries = %d", profs[0].Entries)
	}
	var sum uint64
	for _, p := range profs {
		sum += p.WallCycles
	}
	if sum != rt.WallCycles() {
		t.Errorf("region wall sum %d != total wall %d", sum, rt.WallCycles())
	}
}

func TestInterleavedSMTHidesMemoryStalls(t *testing.T) {
	// The same memory-bound work on a flush-on-switch core vs an
	// interleaved core (paper §2.1's two SMT designs): with both hardware
	// threads of a core loaded, the interleaved design overlaps one
	// thread's stalls with the other's execution.
	run := func(model machine.Model) uint64 {
		rt := newRT(t, model, model.MaxThreads())
		rt.ParallelFor(nil, 1<<11, For{Schedule: Static},
			func(tid int, c *machine.Context, lo, hi int) {
				// Strided loads: all memory misses (within the mapped 16MB).
				c.AccessRange(units.Addr(lo*4096), hi-lo, 4096, false)
			})
		return rt.WallCycles()
	}
	flush := machine.XeonHT() // 2 threads/core, flush on switch
	inter := flush
	inter.SMT = machine.SMTInterleave
	inter.Name = "XeonInterleave"
	wFlush, wInter := run(flush), run(inter)
	if wInter >= wFlush {
		t.Errorf("interleaved SMT (%d cyc) not faster than flush-on-switch (%d cyc)", wInter, wFlush)
	}
}
