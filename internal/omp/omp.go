// Package omp is the OpenMP runtime of the reproduction: a fork-join
// execution model (the paper's Figure 1) with worksharing loops
// (static/dynamic/guided schedules), barriers, reductions, critical sections
// and single regions, executing on the simulated hardware contexts of a
// machine.Machine.
//
// Timing model: each context accumulates busy cycles for its own work; a
// parallel region's wall-clock cost is the maximum busy delta over physical
// cores (SMT siblings co-scheduled on one core serialise, so a core's delta
// is the SUM of its contexts' deltas — this is what makes the Xeon's
// 8-thread runs scale poorly, as in the paper's Figure 4), plus fork
// overhead. Barriers and reductions move real messages over the
// shared-memory channel mesh and charge per-message cycles to the
// participants.
package omp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"hugeomp/internal/machine"
	"hugeomp/internal/profile"
	"hugeomp/internal/shmem"
	"hugeomp/internal/units"
)

// ErrAborted is wrapped by every error a cancelled run reports: a kernel
// whose bound context expires returns an error satisfying both
// errors.Is(err, ErrAborted) and errors.Is(err, ctx.Err()).
var ErrAborted = errors.New("omp: run aborted")

// ScheduleKind selects a worksharing schedule.
type ScheduleKind uint8

const (
	Static ScheduleKind = iota
	Dynamic
	Guided
)

// String implements fmt.Stringer.
func (k ScheduleKind) String() string {
	switch k {
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "static"
	}
}

// For configures a worksharing loop, like the schedule clause of `#pragma
// omp parallel for`.
type For struct {
	Schedule ScheduleKind
	Chunk    int  // chunk size; 0 means schedule default
	NoWait   bool // skip the implicit barrier at loop end
}

// BarrierAlgo selects the barrier implementation.
type BarrierAlgo uint8

const (
	// CentralBarrier: gather at the master, then broadcast (2·(T−1)
	// messages through the master — serialises there).
	CentralBarrier BarrierAlgo = iota
	// TreeBarrier: dissemination barrier, ⌈log2 T⌉ rounds of pairwise
	// messages.
	TreeBarrier
)

// String implements fmt.Stringer.
func (b BarrierAlgo) String() string {
	if b == TreeBarrier {
		return "tree"
	}
	return "central"
}

// CodeRegion describes the code footprint of a parallel region: entering
// the region fetches each (4 KB) code page once per thread, which is how the
// instruction-TLB behaviour of the paper's Figure 3 arises.
type CodeRegion struct {
	Name string
	Base units.Addr
	Size int64
}

func (r *CodeRegion) touch(c *machine.Context) {
	if r == nil {
		return
	}
	// One fetch block per 4 KB code page, issued as a batched range so the
	// machine layer amortises the ITLB probe per page instead of per block.
	blocks := int((r.Size + units.PageSize4K - 1) / units.PageSize4K)
	c.FetchRange(r.Base, blocks, units.PageSize4K)
}

// RT is an OpenMP runtime instance bound to a machine and a thread count.
type RT struct {
	m       *machine.Machine
	ctxs    []*machine.Context
	mesh    *shmem.Mesh
	barrier BarrierAlgo

	wall    uint64 // simulated wall-clock cycles accumulated so far
	regions uint64 // parallel regions executed
	inPar   bool   // guard against nested Parallel (unsupported, like Omni)

	msgBuf [][]byte // per-thread scratch for barrier payloads

	// deltas holds each thread's counter delta for the current region in a
	// padded per-thread shard (written concurrently by the team's goroutines
	// at region exit without false sharing, merged in ascending tid order at
	// the join — the deterministic merge point).
	deltas *profile.ShardedCounters
	// snap is the virtual-time scheduler's entry-snapshot scratch.
	snap []profile.Counters
	// partials is the reduction scratch: one padded slot per thread, so
	// concurrent partial updates never share a cache line (and never need a
	// lock).
	partials []reducePartial

	// Per-code-region profile (the OProfile per-symbol view): aggregated
	// counter deltas and wall cycles for every named CodeRegion.
	regionProf map[string]*RegionProfile

	// runCtx is the cancellation source bound by Bind (nil = the run can
	// never be aborted); abortErr latches the first cancellation observed
	// at a Checkpoint so every later call reports the same error.
	runCtx   context.Context
	abortErr error
}

// RegionProfile aggregates the activity attributed to one named parallel
// region across the run.
type RegionProfile struct {
	Name       string
	Entries    uint64 // times the region executed
	WallCycles uint64 // wall-clock cycles attributed to the region
	Counters   profile.Counters
}

// Option customises the runtime.
type Option func(*RT)

// WithBarrier selects the barrier algorithm.
func WithBarrier(b BarrierAlgo) Option { return func(rt *RT) { rt.barrier = b } }

// New builds a runtime with nthreads threads on m. The machine must already
// have a process page table attached.
func New(m *machine.Machine, nthreads int, opts ...Option) (*RT, error) {
	ctxs, err := m.Configure(nthreads)
	if err != nil {
		return nil, err
	}
	rt := &RT{
		m:          m,
		ctxs:       ctxs,
		mesh:       shmem.NewMesh(nthreads),
		barrier:    TreeBarrier,
		regionProf: make(map[string]*RegionProfile),
	}
	rt.msgBuf = make([][]byte, nthreads)
	for i := range rt.msgBuf {
		rt.msgBuf[i] = make([]byte, shmem.MaxMsgSize)
	}
	rt.deltas = profile.NewShardedCounters(nthreads)
	rt.snap = make([]profile.Counters, nthreads)
	rt.partials = make([]reducePartial, nthreads)
	for _, o := range opts {
		o(rt)
	}
	return rt, nil
}

// Threads returns the team size.
func (rt *RT) Threads() int { return len(rt.ctxs) }

// Machine returns the underlying machine.
func (rt *RT) Machine() *machine.Machine { return rt.m }

// Contexts returns the team's hardware contexts.
func (rt *RT) Contexts() []*machine.Context { return rt.ctxs }

// Mesh exposes the channel fabric (tests).
func (rt *RT) Mesh() *shmem.Mesh { return rt.mesh }

// WallCycles returns the simulated wall-clock cycles accumulated by serial
// sections and parallel regions so far.
func (rt *RT) WallCycles() uint64 { return rt.wall }

// Seconds converts the accumulated wall clock to simulated seconds.
func (rt *RT) Seconds() float64 { return rt.m.Seconds(rt.wall) }

// Regions returns the number of parallel regions executed.
func (rt *RT) Regions() uint64 { return rt.regions }

// Bind attaches ctx as the runtime's cancellation source. Worksharing loops
// poll it between chunks and stop issuing work once it is done (the region
// still runs its barrier and merges its counter deltas, so the machine stays
// audit-consistent); kernels observe the abort at their next Checkpoint. A
// nil or never-done context leaves the run uncancellable, and the polls are
// pure reads — a run with an idle context is bit-identical to an unbound one.
func (rt *RT) Bind(ctx context.Context) { rt.runCtx = ctx }

// Checkpoint is the cooperative cancellation point kernels call at quiescent
// boundaries (between timestep iterations, after reductions feeding control
// flow): nil while the bound context is live, and a sticky error wrapping
// ErrAborted and the context's error once it is done. After a non-nil
// Checkpoint the runtime must not be used for further regions — the caller
// abandons the run and its fork.
func (rt *RT) Checkpoint() error {
	if rt.abortErr != nil {
		return rt.abortErr
	}
	if rt.runCtx == nil {
		return nil
	}
	if err := rt.runCtx.Err(); err != nil {
		rt.abortErr = fmt.Errorf("%w at region %d: %w", ErrAborted, rt.regions, err)
	}
	return rt.abortErr
}

// interrupted polls the bound context from worksharing loops; safe from team
// goroutines (context.Err is concurrency-safe, and rt.runCtx is written only
// between regions).
func (rt *RT) interrupted() bool {
	return rt.runCtx != nil && rt.runCtx.Err() != nil
}

// AddSerial charges cyc cycles of master-only serial execution to the wall
// clock (the sequential sections of the fork-join model).
func (rt *RT) AddSerial(cyc uint64) { rt.wall += cyc }

// Serial runs fn on the master context and charges its busy delta to the
// wall clock (sequential section between parallel regions).
func (rt *RT) Serial(fn func(c *machine.Context)) {
	c := rt.ctxs[0]
	before := c.Ctr.Busy
	fn(c)
	rt.wall += c.Ctr.Busy - before
}

// Parallel executes body on every thread of the team (the fork-join of
// `#pragma omp parallel`), including the implicit barrier, and advances the
// wall clock by the region's cost.
func (rt *RT) Parallel(code *CodeRegion, body func(tid int, c *machine.Context)) {
	if rt.inPar {
		panic("omp: nested parallel regions are not supported (Omni serialises them)")
	}
	rt.inPar = true
	defer func() { rt.inPar = false }()

	n := len(rt.ctxs)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(tid int) {
			defer wg.Done()
			c := rt.ctxs[tid]
			// Entry snapshot and exit delta are the worker's own: each
			// thread writes only its padded shard, concurrently but without
			// false sharing; the join below is the merge point.
			entry := c.Ctr
			code.touch(c)
			body(tid, c)
			rt.barrierWait(tid)
			*rt.deltas.Shard(tid) = c.Ctr.Delta(entry)
		}(i)
	}
	wg.Wait()

	// Wall-clock cost: SMT siblings serialise on their core, so sum busy
	// deltas per core and take the slowest core.
	rt.accountRegion(code)
}

// barrierWait performs the team barrier with real messages over the mesh,
// charging per-message cycles to each participant.
func (rt *RT) barrierWait(tid int) {
	n := len(rt.ctxs)
	if n == 1 {
		return
	}
	c := rt.ctxs[tid]
	msg := rt.msgBuf[tid]
	cost := rt.m.Model.Costs.MsgCyc
	switch rt.barrier {
	case CentralBarrier:
		if tid == 0 {
			for j := 1; j < n; j++ {
				rt.mesh.Chan(j, 0).Recv(msg)
				c.Wait(cost)
			}
			for j := 1; j < n; j++ {
				if err := rt.mesh.Chan(0, j).Send([]byte{1}); err != nil {
					panic(fmt.Sprintf("omp: barrier send: %v", err))
				}
				c.Wait(cost)
			}
		} else {
			if err := rt.mesh.Chan(tid, 0).Send([]byte{1}); err != nil {
				panic(fmt.Sprintf("omp: barrier send: %v", err))
			}
			c.Wait(cost)
			rt.mesh.Chan(0, tid).Recv(msg)
			c.Wait(cost)
		}
	case TreeBarrier:
		// Dissemination barrier: round r exchanges with tid±2^r.
		for r := 1; r < n; r <<= 1 {
			to := (tid + r) % n
			from := (tid - r + n) % n
			if err := rt.mesh.Chan(tid, to).Send([]byte{byte(r)}); err != nil {
				panic(fmt.Sprintf("omp: barrier send: %v", err))
			}
			c.Wait(cost)
			rt.mesh.Chan(from, tid).Recv(msg)
			c.Wait(cost)
		}
	}
}

// Barrier runs a standalone team barrier as its own mini-region (usable only
// outside Parallel; inside a region the loop constructs provide the implied
// barriers).
func (rt *RT) Barrier() {
	rt.Parallel(nil, func(int, *machine.Context) {})
}

// chunkFor computes the effective chunk for a schedule.
func (f For) chunk(n, nthreads int) int {
	if f.Chunk > 0 {
		return f.Chunk
	}
	switch f.Schedule {
	case Dynamic:
		return 1
	case Guided:
		return 1 // minimum chunk; guided computes per-grab
	default:
		return (n + nthreads - 1) / nthreads
	}
}

// ParallelFor executes `#pragma omp parallel for` over the iteration space
// [0, n): body(tid, c, lo, hi) processes iterations [lo, hi). The schedule
// determines how iterations map to threads; dynamic/guided grabs charge an
// atomic-operation cost per chunk.
//
// Static schedules run the team as real goroutines. Dynamic and guided
// schedules dispatch chunks in *simulated-time* order — always to the
// context with the least accumulated busy time — executed sequentially; this
// keeps the load balancing deterministic and faithful to what the schedule
// would do on real hardware, instead of depending on Go scheduler timing.
func (rt *RT) ParallelFor(code *CodeRegion, n int, f For, body func(tid int, c *machine.Context, lo, hi int)) {
	nt := len(rt.ctxs)
	switch f.Schedule {
	case Static:
		chunk := f.chunk(n, nt)
		rt.Parallel(code, func(tid int, c *machine.Context) {
			// Chunked round-robin; with the default chunk this is one
			// contiguous block per thread. A cancelled run stops issuing
			// chunks — the checkpoint interval of an abandoned request —
			// and falls through to the implicit barrier, leaving every
			// completed access fully counted.
			for lo := tid * chunk; lo < n; lo += nt * chunk {
				if rt.interrupted() {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(tid, c, lo, hi)
			}
		})
	case Dynamic, Guided:
		rt.virtualTimeFor(code, n, f, body)
	}
	_ = f.NoWait // the implicit barrier is part of Parallel; NoWait regions
	// are expressed by fusing loops into one Parallel call.
}

// virtualTimeFor implements dynamic/guided worksharing by virtual-time
// simulation: the next chunk always goes to the thread whose simulated clock
// is furthest behind, which is exactly what a work queue yields on real
// hardware when threads grab chunks as they finish.
func (rt *RT) virtualTimeFor(code *CodeRegion, n int, f For, body func(tid int, c *machine.Context, lo, hi int)) {
	if rt.inPar {
		panic("omp: nested parallel regions are not supported (Omni serialises them)")
	}
	rt.inPar = true
	defer func() { rt.inPar = false }()

	nt := len(rt.ctxs)
	before := rt.snap
	for i, c := range rt.ctxs {
		before[i] = c.Ctr
		code.touch(c)
	}
	delta := func(i int) uint64 { return rt.ctxs[i].Ctr.Busy - before[i].Busy }

	minChunk := f.chunk(n, nt)
	remaining := n
	lo := 0
	for remaining > 0 && !rt.interrupted() {
		// Pick the most-idle context.
		tid := 0
		for i := 1; i < nt; i++ {
			if delta(i) < delta(tid) {
				tid = i
			}
		}
		sz := minChunk
		if f.Schedule == Guided {
			if g := remaining / (2 * nt); g > sz {
				sz = g
			}
		}
		if sz > remaining {
			sz = remaining
		}
		c := rt.ctxs[tid]
		c.Compute(rt.m.Model.Costs.AtomicCyc) // chunk grab
		body(tid, c, lo, lo+sz)
		lo += sz
		remaining -= sz
	}
	rt.sequentialBarrier()
	for i, c := range rt.ctxs {
		*rt.deltas.Shard(i) = c.Ctr.Delta(before[i])
	}
	rt.accountRegion(code)
}

// sequentialBarrier performs the team barrier from a single goroutine,
// moving the same messages as barrierWait. Sends happen before receives in
// each phase/round, which the 32-slot channels absorb.
func (rt *RT) sequentialBarrier() {
	n := len(rt.ctxs)
	if n == 1 {
		return
	}
	cost := rt.m.Model.Costs.MsgCyc
	send := func(from, to int) {
		if err := rt.mesh.Chan(from, to).Send([]byte{1}); err != nil {
			panic(fmt.Sprintf("omp: barrier send: %v", err))
		}
		rt.ctxs[from].Wait(cost)
	}
	recv := func(from, to int) {
		rt.mesh.Chan(from, to).Recv(rt.msgBuf[to])
		rt.ctxs[to].Wait(cost)
	}
	switch rt.barrier {
	case CentralBarrier:
		for j := 1; j < n; j++ {
			send(j, 0)
		}
		for j := 1; j < n; j++ {
			recv(j, 0)
		}
		for j := 1; j < n; j++ {
			send(0, j)
			recv(0, j)
		}
	case TreeBarrier:
		for r := 1; r < n; r <<= 1 {
			for tid := 0; tid < n; tid++ {
				send(tid, (tid+r)%n)
			}
			for tid := 0; tid < n; tid++ {
				recv((tid-r+n)%n, tid)
			}
		}
	}
}

// accountRegion charges the wall clock for a completed region from the
// per-thread delta shards filled at region exit, and attributes the deltas
// to the region's profile entry. It runs after the team joins, reading the
// shards in ascending tid order — the deterministic merge point for the
// sharded counters.
func (rt *RT) accountRegion(code *CodeRegion) {
	// Per-core aggregation: SMT siblings serialise on the execution units.
	// Under flush-on-switch SMT (Xeon) memory stalls serialise too; under
	// interleaved SMT (Niagara) one thread's memory stalls are filled with
	// the other threads' execution, so a core's time is its execution work
	// plus only the unhidden stall tail (floored by the slowest single
	// thread).
	interleave := rt.m.Model.SMT == machine.SMTInterleave
	// Dense per-core slices (CoreOf keys are contiguous): the aggregation
	// and the fold below visit cores in index order, so the merge is
	// deterministic by construction, not by map luck.
	ncores := rt.m.Model.Cores()
	coreBusy := make([]uint64, ncores)
	coreMem := make([]uint64, ncores)
	coreMaxThread := make([]uint64, ncores)
	for i, c := range rt.ctxs {
		core := rt.m.CoreOf(c)
		d := rt.deltas.Shard(i)
		coreBusy[core] += d.Busy
		coreMem[core] += d.MemCyc
		if d.Busy > coreMaxThread[core] {
			coreMaxThread[core] = d.Busy
		}
	}
	var max uint64
	for core, b := range coreBusy {
		t := b
		if interleave {
			exec := b - coreMem[core]
			t = exec
			if coreMaxThread[core] > t {
				t = coreMaxThread[core]
			}
		}
		if t > max {
			max = t
		}
	}
	regionWall := rt.m.Model.Costs.ForkCyc + max
	rt.wall += regionWall
	rt.regions++

	name := "(anonymous)"
	if code != nil {
		name = code.Name
	}
	prof := rt.regionProf[name]
	if prof == nil {
		prof = &RegionProfile{Name: name}
		rt.regionProf[name] = prof
	}
	prof.Entries++
	prof.WallCycles += regionWall
	for i := range rt.ctxs {
		prof.Counters.Add(rt.deltas.Shard(i))
	}
}

// RegionProfiles returns the per-region profile entries sorted by wall
// cycles, most expensive first (the OProfile per-symbol view). Regions with
// equal wall cycles tie-break on name: the slice is collected from a map, so
// without a total order the report would shuffle between identical runs.
func (rt *RT) RegionProfiles() []*RegionProfile {
	out := make([]*RegionProfile, 0, len(rt.regionProf))
	for _, p := range rt.regionProf {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallCycles != out[j].WallCycles {
			return out[i].WallCycles > out[j].WallCycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// reducePartial is one thread's reduction slot, padded to a full host cache
// line so concurrent partial updates from different threads never share one
// (layout checked by simlint's padding analyzer).
//
//simlint:padded
type reducePartial struct {
	v float64
	_ [56]byte
}

// ParallelForReduce runs a worksharing loop whose body returns a partial
// float64 value; partials are combined pairwise up a tree with real messages
// (`reduction(+:x)` and friends).
//
// Each thread folds into its own padded partial slot — no lock, no shared
// line — and the master combines the slots in ascending tid order after the
// join, so the float summation order is deterministic by construction (it
// never depends on thread finish order).
func (rt *RT) ParallelForReduce(code *CodeRegion, n int, f For, identity float64,
	body func(tid int, c *machine.Context, lo, hi int) float64,
	combine func(a, b float64) float64) float64 {

	nt := len(rt.ctxs)
	partials := rt.partials
	for i := range partials {
		partials[i].v = identity
	}
	inner := func(tid int, c *machine.Context, lo, hi int) {
		v := body(tid, c, lo, hi)
		partials[tid].v = combine(partials[tid].v, v)
	}
	rt.ParallelFor(code, n, f, inner)

	// Tree combine with message costs charged to the master-side wall: the
	// reduction happens inside the implicit barrier in real runtimes; here
	// we charge ⌈log2 T⌉ message rounds.
	result := partials[0].v
	for i := 1; i < nt; i++ {
		result = combine(result, partials[i].v)
	}
	if nt > 1 {
		rounds := uint64(math.Ceil(math.Log2(float64(nt))))
		rt.wall += rounds * rt.m.Model.Costs.MsgCyc
	}
	return result
}

// Single returns a one-shot guard for `#pragma omp single`: exactly one
// Try() per region returns true.
type Single struct{ done atomic.Bool }

// NewSingle creates a fresh single guard (one per use site per region).
func (rt *RT) NewSingle() *Single { return &Single{} }

// Try reports whether the caller is the executing thread.
func (s *Single) Try() bool { return s.done.CompareAndSwap(false, true) }

// Critical executes fn under the team's critical-section lock, charging the
// lock handoff cost to c.
type Critical struct {
	mu sync.Mutex
}

// NewCritical creates a named critical section.
func (rt *RT) NewCritical() *Critical { return &Critical{} }

// Enter runs fn inside the critical section on context c.
func (rt *RT) CriticalDo(cs *Critical, c *machine.Context, fn func()) {
	cs.mu.Lock()
	c.Compute(2 * rt.m.Model.Costs.AtomicCyc) // acquire + release
	fn()
	cs.mu.Unlock()
}

// SpinLock models an `omp_lock_t` resident at a data address: acquisition is
// a test-and-test-and-set against the lock word, so every acquire performs a
// simulated load and store of the same address plus the atomic's cycle cost,
// and release performs the unlocking store. Repeated acquires are exactly the
// single-address pattern the scalar fast path's fold memo collapses to one
// probe with bulk-accounted hit cycles, and under coherence the lock word's
// cache line bounces between owners like a real contended lock. Unlike
// Critical — which charges a flat handoff cost and touches no memory —
// SpinLock's cost flows through the memory system.
//
// The access sequence per acquire/release pair is fixed (load, store, atomic,
// releasing store) regardless of host scheduling, so counter totals stay
// deterministic; the real mutex only provides the mutual exclusion.
type SpinLock struct {
	mu sync.Mutex
	va units.Addr
}

// NewSpinLock creates a spin lock whose lock word lives at va — any mapped
// data address, e.g. a cell set aside in a shared region.
func (rt *RT) NewSpinLock(va units.Addr) *SpinLock { return &SpinLock{va: va} }

// Addr returns the lock word's address.
func (l *SpinLock) Addr() units.Addr { return l.va }

// SpinLockDo runs fn holding l on context c, charging the test-and-test-
// and-set acquire and the releasing store to c.
func (rt *RT) SpinLockDo(l *SpinLock, c *machine.Context, fn func()) {
	l.mu.Lock()
	c.Load(l.va)  // test: read the (usually cached) lock word
	c.Store(l.va) // set: the winning RMW's store half
	c.Compute(rt.m.Model.Costs.AtomicCyc)
	fn()
	c.Store(l.va) // release store
	l.mu.Unlock()
}

// ParallelSections runs each section function once, distributing sections
// over threads dynamically (`#pragma omp sections`).
func (rt *RT) ParallelSections(code *CodeRegion, sections []func(c *machine.Context)) {
	var next atomic.Int64
	rt.Parallel(code, func(tid int, c *machine.Context) {
		for !rt.interrupted() {
			i := int(next.Add(1)) - 1
			if i >= len(sections) {
				return
			}
			c.Compute(rt.m.Model.Costs.AtomicCyc)
			sections[i](c)
		}
	})
}

// TotalCounters merges every context's counters.
func (rt *RT) TotalCounters() profile.Counters {
	var total profile.Counters
	for _, c := range rt.ctxs {
		total.Add(&c.Ctr)
	}
	return total
}
