package omp

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"hugeomp/internal/machine"
)

func TestCheckpointUnboundAndLive(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 2)
	if err := rt.Checkpoint(); err != nil {
		t.Fatalf("unbound Checkpoint = %v, want nil", err)
	}
	rt.Bind(context.Background())
	if err := rt.Checkpoint(); err != nil {
		t.Fatalf("live-context Checkpoint = %v, want nil", err)
	}
}

func TestCheckpointAbortIsSticky(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	rt.Bind(ctx)
	cancel()
	err := rt.Checkpoint()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("Checkpoint = %v, want ErrAborted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Checkpoint = %v, want wrapped context.Canceled", err)
	}
	if again := rt.Checkpoint(); again != err { //nolint:errorlint // identity: sticky
		t.Fatalf("second Checkpoint = %v, want the latched %v", again, err)
	}
}

// TestCancelledWorksharingSkipsChunksConserved: once the bound context is
// done, worksharing loops stop issuing chunks, but the region still runs its
// implicit barrier and merges its deltas — the runtime stays audit-consistent
// and the region count advances.
func TestCancelledWorksharingSkipsChunksConserved(t *testing.T) {
	for _, sched := range []ScheduleKind{Static, Dynamic, Guided} {
		t.Run(sched.String(), func(t *testing.T) {
			rt := newRT(t, machine.Opteron270(), 4)
			ctx, cancel := context.WithCancel(context.Background())
			rt.Bind(ctx)
			cancel()

			var bodies atomic.Int64
			rt.ParallelFor(nil, 1024, For{Schedule: sched},
				func(tid int, c *machine.Context, lo, hi int) { bodies.Add(1) })
			if got := bodies.Load(); got != 0 {
				t.Errorf("cancelled %s loop ran %d chunks, want 0", sched, got)
			}
			if rt.Regions() != 1 {
				t.Errorf("regions = %d, want 1 (aborted region must still account)", rt.Regions())
			}
			// The barrier's messages were really sent and charged: with 4
			// threads the region cost cannot be fork overhead alone.
			if rt.WallCycles() <= rt.m.Model.Costs.ForkCyc {
				t.Errorf("wall = %d cycles, want > fork overhead %d (barrier must still run)",
					rt.WallCycles(), rt.m.Model.Costs.ForkCyc)
			}
			// The merged deltas equal the raw context counters: nothing was
			// lost between the shards and the totals.
			var shardSum, ctxSum uint64
			for i, c := range rt.ctxs {
				shardSum += rt.deltas.Shard(i).Busy
				ctxSum += c.Ctr.Busy
			}
			if shardSum != ctxSum {
				t.Errorf("merged busy deltas %d != context busy total %d", shardSum, ctxSum)
			}
		})
	}
}

func TestCancelledSectionsSkipAll(t *testing.T) {
	rt := newRT(t, machine.Opteron270(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	rt.Bind(ctx)
	cancel()
	var ran atomic.Int64
	rt.ParallelSections(nil, []func(c *machine.Context){
		func(c *machine.Context) { ran.Add(1) },
		func(c *machine.Context) { ran.Add(1) },
	})
	if ran.Load() != 0 {
		t.Errorf("cancelled sections ran %d, want 0", ran.Load())
	}
}

// TestIdleContextBitIdentical: binding a context that never fires must not
// change a single counter — the cancellation polls are pure reads.
func TestIdleContextBitIdentical(t *testing.T) {
	run := func(bind bool) (uint64, uint64) {
		rt := newRT(t, machine.XeonHT(), 4)
		if bind {
			rt.Bind(context.Background())
		}
		for _, sched := range []ScheduleKind{Static, Dynamic, Guided} {
			rt.ParallelFor(nil, 512, For{Schedule: sched},
				func(tid int, c *machine.Context, lo, hi int) {
					c.Compute(uint64(hi - lo))
				})
		}
		return rt.WallCycles(), rt.TotalCounters().Busy
	}
	w0, b0 := run(false)
	w1, b1 := run(true)
	if w0 != w1 || b0 != b1 {
		t.Errorf("idle bound run (wall=%d busy=%d) differs from unbound (wall=%d busy=%d)",
			w1, b1, w0, b0)
	}
}
