package faultinject

import (
	"sync"
	"testing"
)

// TestNilPlanIsDisabled: every decision and accessor on a nil plan must be a
// no-op — injection points guard the fast path with exactly this.
func TestNilPlanIsDisabled(t *testing.T) {
	var p *Plan
	for i := 0; i < 100; i++ {
		if p.Should(SiteHugetlbTake) || p.ShouldKey(SiteTHPAlloc, uint64(i)) {
			t.Fatal("nil plan fired")
		}
	}
	if p.Count(SitePTMap) != 0 || p.Injected(SitePTMap) != 0 || p.TotalInjected() != 0 {
		t.Fatal("nil plan kept counts")
	}
	if p.Seed() != 0 {
		t.Fatal("nil plan seed")
	}
	if p.String() != "faultplan(disabled)" {
		t.Fatalf("nil plan string = %q", p.String())
	}
}

// TestUnarmedSiteNeverFires: arming one site must not leak into others.
func TestUnarmedSiteNeverFires(t *testing.T) {
	p := New(7).Enable(SiteMPILoss, 1)
	for i := 0; i < 100; i++ {
		if p.Should(SiteHugetlbTake) {
			t.Fatal("unarmed site fired")
		}
	}
	if p.Count(SiteHugetlbTake) != 0 {
		t.Fatal("unarmed site counted")
	}
}

// TestDeterministicReplay: two plans with the same seed and rules make the
// same decision sequence — the replayability the chaos harness depends on.
func TestDeterministicReplay(t *testing.T) {
	run := func() []bool {
		p := New(0xdecaf).Enable(SiteTHPAlloc, 0.3).Enable(SitePTMap, 0.1)
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, p.ShouldKey(SiteTHPAlloc, uint64(i)*0x200000))
			out = append(out, p.Should(SitePTMap))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across replays", i)
		}
	}
}

// TestSeedsDiffer: different seeds must give different decision streams
// (overwhelmingly likely at 500 draws of rate 0.5).
func TestSeedsDiffer(t *testing.T) {
	draw := func(seed uint64) []bool {
		p := New(seed).Enable(SitePTMap, 0.5)
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, p.Should(SitePTMap))
		}
		return out
	}
	a, b := draw(1), draw(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical decision streams")
	}
}

// TestRateExtremes: rate 1 always fires, rate 0 never fires.
func TestRateExtremes(t *testing.T) {
	always := New(3).Enable(SiteMPILoss, 1)
	never := New(3).Enable(SiteMPILoss, 0)
	for i := 0; i < 200; i++ {
		if !always.Should(SiteMPILoss) {
			t.Fatal("rate 1 did not fire")
		}
		if never.Should(SiteMPILoss) {
			t.Fatal("rate 0 fired")
		}
	}
	if always.Injected(SiteMPILoss) != 200 || never.Injected(SiteMPILoss) != 0 {
		t.Fatalf("injected counts: %d, %d", always.Injected(SiteMPILoss), never.Injected(SiteMPILoss))
	}
}

// TestRateApproximation: at rate r, roughly r·n of n occurrence draws fire.
func TestRateApproximation(t *testing.T) {
	p := New(99).Enable(SiteHugetlbTake, 0.25)
	n := 10000
	for i := 0; i < n; i++ {
		p.Should(SiteHugetlbTake)
	}
	got := float64(p.Injected(SiteHugetlbTake)) / float64(n)
	if got < 0.2 || got > 0.3 {
		t.Fatalf("rate 0.25 fired at %.3f", got)
	}
}

// TestEnableAt: exact-occurrence arming fires at precisely those indices.
func TestEnableAt(t *testing.T) {
	p := New(1).EnableAt(SiteHugetlbReserve, 2, 5)
	var fired []int
	for i := 0; i < 10; i++ {
		if p.Should(SiteHugetlbReserve) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired at %v, want [2 5]", fired)
	}
	if p.Count(SiteHugetlbReserve) != 10 || p.Injected(SiteHugetlbReserve) != 2 {
		t.Fatalf("count=%d injected=%d", p.Count(SiteHugetlbReserve), p.Injected(SiteHugetlbReserve))
	}
}

// TestKeyedDecisionsScheduleIndependent: ShouldKey ignores call order — the
// property that keeps concurrent THP faulting deterministic.
func TestKeyedDecisionsScheduleIndependent(t *testing.T) {
	decide := func(keys []uint64) map[uint64]bool {
		p := New(42).Enable(SiteTHPAlloc, 0.5)
		out := make(map[uint64]bool)
		for _, k := range keys {
			out[k] = p.ShouldKey(SiteTHPAlloc, k)
		}
		return out
	}
	fwd := decide([]uint64{10, 20, 30, 40, 50})
	rev := decide([]uint64{50, 40, 30, 20, 10})
	for k, v := range fwd {
		if rev[k] != v {
			t.Fatalf("key %d decision depends on call order", k)
		}
	}
}

// TestConcurrentDecisions: concurrent keyed decisions race-free and agree
// with the sequential result (run under -race in make check).
func TestConcurrentDecisions(t *testing.T) {
	p := New(11).Enable(SiteTHPAlloc, 0.4)
	want := make([]bool, 256)
	ref := New(11).Enable(SiteTHPAlloc, 0.4)
	for i := range want {
		want[i] = ref.ShouldKey(SiteTHPAlloc, uint64(i))
	}
	got := make([]bool, len(want))
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = p.ShouldKey(SiteTHPAlloc, uint64(i))
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d: concurrent decision differs from sequential", i)
		}
	}
	if p.Count(SiteTHPAlloc) != uint64(len(want)) {
		t.Fatalf("count = %d", p.Count(SiteTHPAlloc))
	}
}

// TestStringReport: the summary names armed sites with fired/total counts.
func TestStringReport(t *testing.T) {
	p := New(0x5eed).Enable(SiteMPILoss, 1)
	p.Should(SiteMPILoss)
	p.Should(SiteMPILoss)
	want := "faultplan(seed=0x5eed mpi/loss:2/2)"
	if p.String() != want {
		t.Fatalf("String() = %q, want %q", p.String(), want)
	}
}
