// Package faultinject is a deterministic, seed-driven fault-plan engine for
// the simulator. Real systems do not get the paper's luxury of a huge-page
// pool that is "preallocated and always available": pools exhaust, THP
// allocations fail, khugepaged splits mappings under pressure and messages
// are lost on the wire. A Plan decides — reproducibly, from a single seed —
// at which points the simulated memory stack misbehaves, so every degraded
// path can be exercised and replayed exactly.
//
// Design rules:
//
//   - Decisions are pure functions of (seed, site, key). A site is a named
//     injection point ("hugetlbfs/take", "thp/alloc2m", …); the key is either
//     the site's occurrence index (for sites visited in a deterministic
//     order, e.g. single-threaded setup) or a stable site-specific key such
//     as a chunk address or a per-channel message sequence number (for sites
//     reached concurrently, where an occurrence index would depend on
//     goroutine scheduling). Same seed, same plan, same workload ⇒ the same
//     faults fire, in the same places, every run.
//   - A nil *Plan is the disabled engine: every injection point guards with
//     a nil check that costs one compare on the fast path and nothing else.
//   - The fault CONTRACT (enforced by cmd/chaos and the degraded-mode tests)
//     is that an injected fault may only shift performance counters; the run
//     must complete with byte-identical numerics.
package faultinject

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Site names one injection point. The convention is "package/event".
type Site string

// The injection sites threaded through the memory stack. Packages reference
// these constants rather than inventing strings, so the full site inventory
// is auditable here.
const (
	// SiteHugetlbReserve fails a pool reservation (Mount/Resize preallocation
	// growth), keyed by occurrence.
	SiteHugetlbReserve Site = "hugetlbfs/reserve"
	// SiteHugetlbTake fails a frame grab at file-create time (mid-run pool
	// exhaustion, ENOSPC), keyed by occurrence.
	SiteHugetlbTake Site = "hugetlbfs/take"
	// SiteTHPAlloc fails a transparent-huge-page 2 MB reservation, keyed by
	// the chunk's virtual address (schedule-independent under concurrent
	// faulting).
	SiteTHPAlloc Site = "thp/alloc2m"
	// SiteTHPPressure triggers a memory-pressure event that splits (demotes)
	// a promoted 2 MB mapping back to 4 KB pages, keyed by occurrence of the
	// fault handler.
	SiteTHPPressure Site = "thp/pressure"
	// SitePTMap makes a page-table Map transiently fail (the kernel's
	// "try again" paths), keyed by occurrence.
	SitePTMap Site = "pagetable/map"
	// SiteMPILoss loses an MPI control message so the sender retries with
	// backoff, keyed by the (sender,receiver) pair's message sequence.
	SiteMPILoss Site = "mpi/loss"
	// SiteMPIDup duplicates an MPI control message so the receiver drops one,
	// keyed by the pair's receive sequence.
	SiteMPIDup Site = "mpi/dup"
	// SiteSCASHFetch loses a DSM page-fetch reply so the faulting process
	// refetches, keyed by occurrence.
	SiteSCASHFetch Site = "scash/fetch"
)

// Sites lists every known injection site (for cmd/chaos plan generation).
func Sites() []Site {
	return []Site{
		SiteHugetlbReserve, SiteHugetlbTake,
		SiteTHPAlloc, SiteTHPPressure,
		SitePTMap,
		SiteMPILoss, SiteMPIDup,
		SiteSCASHFetch,
	}
}

// rule configures one site.
type rule struct {
	// threshold compares against the 64-bit site/key hash; a hash below it
	// fires. 0 = never, ^uint64(0) = always.
	threshold uint64
	// exact, when non-nil, overrides threshold: the fault fires exactly at
	// these occurrence keys.
	exact map[uint64]bool
}

// siteState is the runtime state of one armed site.
type siteState struct {
	rule     rule
	count    atomic.Uint64 // occurrence index, pre-increment
	injected atomic.Uint64 // decisions that fired
}

// Plan is one deterministic fault plan. The zero value and the nil plan are
// both fully disabled. Arming (Enable/EnableAt) must finish before the run
// starts; decisions (Should/ShouldKey) are safe for concurrent use.
type Plan struct {
	seed  uint64
	mu    sync.Mutex // guards sites map growth during arming
	sites map[Site]*siteState
}

// New creates an empty plan for seed. An empty plan injects nothing until
// sites are armed.
func New(seed uint64) *Plan {
	return &Plan{seed: seed, sites: make(map[Site]*siteState)}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Enable arms site with a fault rate in [0,1]: each decision fires when the
// (seed, site, key) hash falls below rate. Rate 1 fires every time.
func (p *Plan) Enable(site Site, rate float64) *Plan {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	var th uint64
	if rate == 1 {
		th = ^uint64(0)
	} else {
		th = uint64(rate * float64(1<<63) * 2)
	}
	p.arm(site, rule{threshold: th})
	return p
}

// EnableAt arms site to fire at exactly the given occurrence indices
// (0-based). For key-addressed sites the values are matched against the key.
func (p *Plan) EnableAt(site Site, occurrences ...uint64) *Plan {
	ex := make(map[uint64]bool, len(occurrences))
	for _, o := range occurrences {
		ex[o] = true
	}
	p.arm(site, rule{exact: ex})
	return p
}

func (p *Plan) arm(site Site, r rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sites[site] = &siteState{rule: r}
}

// Should decides one occurrence-keyed injection: the site's occurrence
// counter provides the key. Nil-safe: a nil plan never fires and keeps no
// counts.
func (p *Plan) Should(site Site) bool {
	if p == nil {
		return false
	}
	s := p.sites[site]
	if s == nil {
		return false
	}
	key := s.count.Add(1) - 1
	return p.decide(site, s, key)
}

// ShouldKey decides one injection for an explicitly keyed site (chunk
// address, message sequence, …). The occurrence counter still advances so
// reports show traffic. Nil-safe.
func (p *Plan) ShouldKey(site Site, key uint64) bool {
	if p == nil {
		return false
	}
	s := p.sites[site]
	if s == nil {
		return false
	}
	s.count.Add(1)
	return p.decide(site, s, key)
}

func (p *Plan) decide(site Site, s *siteState, key uint64) bool {
	var fire bool
	if s.rule.exact != nil {
		fire = s.rule.exact[key]
	} else {
		fire = hash(p.seed, site, key) < s.rule.threshold
	}
	if fire {
		s.injected.Add(1)
	}
	return fire
}

// hash mixes (seed, site, key) with splitmix64; the site name is folded in
// with FNV-1a so distinct sites get independent decision streams.
func hash(seed uint64, site Site, key uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	x := seed ^ h ^ (key * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Count returns how many decisions site has taken (fired or not). Nil-safe.
func (p *Plan) Count(site Site) uint64 {
	if p == nil {
		return 0
	}
	if s := p.sites[site]; s != nil {
		return s.count.Load()
	}
	return 0
}

// Injected returns how many decisions at site fired. Nil-safe.
func (p *Plan) Injected(site Site) uint64 {
	if p == nil {
		return 0
	}
	if s := p.sites[site]; s != nil {
		return s.injected.Load()
	}
	return 0
}

// TotalInjected sums fired decisions across all sites. Nil-safe.
func (p *Plan) TotalInjected() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for _, s := range p.sites {
		n += s.injected.Load()
	}
	return n
}

// String summarises the plan and its activity so far, sites sorted by name
// for stable output.
func (p *Plan) String() string {
	if p == nil {
		return "faultplan(disabled)"
	}
	names := make([]string, 0, len(p.sites))
	for site := range p.sites {
		names = append(names, string(site))
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "faultplan(seed=%#x", p.seed)
	for _, n := range names {
		s := p.sites[Site(n)]
		fmt.Fprintf(&b, " %s:%d/%d", n, s.injected.Load(), s.count.Load())
	}
	b.WriteString(")")
	return b.String()
}
