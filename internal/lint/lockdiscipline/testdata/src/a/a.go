// Corpus for the lockdiscipline analyzer: the hot-path defer rule.
// (Lock ordering and cross-call discipline live in the lockorder corpus.)
package a

import "sync"

type Cache struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	set map[uint64]bool
}

// hot is on the per-access path: it must not defer its unlock.
//
//simlint:hotpath
func hot(c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock() // want `defer c\.mu\.Unlock\(\) in a //simlint:hotpath function`
}

// Read locks count too.
//
//simlint:hotpath
func hotRead(c *Cache) bool {
	c.rw.RLock()
	defer c.rw.RUnlock() // want `defer c\.rw\.RUnlock\(\) in a //simlint:hotpath function`
	return c.set[1]
}

// Explicit unlocks are the sanctioned hot-path shape.
//
//simlint:hotpath
func hotExplicit(c *Cache) bool {
	c.mu.Lock()
	v := c.set[1]
	c.mu.Unlock()
	return v
}

// Outside a hotpath, deferring the unlock is idiomatic and encouraged.
func cold(c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// Non-mutex defers in a hotpath are fine.
//
//simlint:hotpath
func hotCleanup(c *Cache, done func()) {
	defer done()
	c.mu.Lock()
	c.mu.Unlock()
}

// A function literal inside a hotpath function runs in its own context (it
// is typically a slow-path closure handed elsewhere); its defers are exempt.
//
//simlint:hotpath
func hotWithLit(c *Cache) func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
}
