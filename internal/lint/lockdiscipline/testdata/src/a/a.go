// Corpus for the lockdiscipline analyzer. The test configures the lock
// order "Shard < Cache" and the bus type "Bus", mirroring the simulator's
// busShard → Cache hierarchy.
package a

import "sync"

type Shard struct{ mu sync.Mutex }

type Cache struct{ mu sync.Mutex }

type Bus struct{ shards [4]Shard }

func (b *Bus) Access(c *Cache, line uint64) bool { return false }

func (b *Bus) AccessLines(c *Cache, lines []uint64) {}

// The documented order: shard first, then at most one cache mutex.
func good(sh *Shard, c *Cache) {
	sh.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	sh.mu.Unlock()
}

// Reversed acquisition deadlocks against good().
func reversed(sh *Shard, c *Cache) {
	c.mu.Lock()
	sh.mu.Lock() // want `lock order violation`
	sh.mu.Unlock()
	c.mu.Unlock()
}

// Two same-class locks at once: the bus protocol holds at most one.
func twoCaches(c1, c2 *Cache) {
	c1.mu.Lock()
	c2.mu.Lock() // want `two Cache-class locks`
	c2.mu.Unlock()
	c1.mu.Unlock()
}

// Sequential per-peer locking (the AccessLines snoop loop shape) is legal:
// each peer mutex is released before the next is taken.
func sequentialPeers(sh *Shard, peers []*Cache) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		p.mu.Unlock()
	}
}

// A foreign mutex held across a bus transaction.
func heldAcrossBus(b *Bus, c *Cache, mu *sync.Mutex) {
	mu.Lock()
	b.Access(c, 1) // want `held across bus transaction`
	mu.Unlock()
}

// Releasing before the transaction is the sanctioned shape.
func releasedBeforeBus(b *Bus, c *Cache, mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
	b.Access(c, 1)
}

// Deferred unlocks also count as held for the whole function.
func deferredAcrossBus(b *Bus, c *Cache, mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	b.AccessLines(c, nil) // want `held across bus transaction`
}

// A conditional lock is tracked past its if (the cacheAccess shape).
func conditional(b *Bus, c *Cache, mu *sync.Mutex, locked bool) {
	if locked {
		mu.Lock()
	}
	b.Access(c, 1) // want `held across bus transaction`
	if locked {
		mu.Unlock()
	}
	b.Access(c, 2)
}

// hot is on the per-access path: it must not defer its unlock.
//
//simlint:hotpath
func hot(c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock() // want `defer .* //simlint:hotpath`
}

// Outside a hotpath, deferring the unlock is idiomatic and encouraged.
func cold(c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// A function literal runs in its own lock context (it may execute after
// the surrounding locks are gone); its body is analyzed independently.
func litScope(b *Bus, c *Cache, mu *sync.Mutex) {
	mu.Lock()
	flush := func() { b.AccessLines(c, nil) }
	mu.Unlock()
	flush()
}

// Methods named Access* on non-bus types are not bus transactions.
func cacheAccessOK(c *Cache, other *Cache, mu *sync.Mutex) {
	mu.Lock()
	_ = other.AccessProbe(1)
	mu.Unlock()
}

func (c *Cache) AccessProbe(line uint64) bool { return false }
