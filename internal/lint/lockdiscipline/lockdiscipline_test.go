package lockdiscipline_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockdiscipline.Analyzer, "a")
}
