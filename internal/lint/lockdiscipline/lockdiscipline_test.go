package lockdiscipline_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	defer func(order, bus string) {
		lockdiscipline.Order, lockdiscipline.BusTypes = order, bus
	}(lockdiscipline.Order, lockdiscipline.BusTypes)
	lockdiscipline.Order = "Shard < Cache"
	lockdiscipline.BusTypes = "Bus"

	analysistest.Run(t, analysistest.TestData(), lockdiscipline.Analyzer, "a")
}
