// Package lockdiscipline enforces the simulator's documented locking
// protocol, which the sharded coherence bus depends on for deadlock freedom
// and which the hot path depends on for speed:
//
//  1. Lock ordering. Locks are ranked by the named type that owns the mutex
//     field (default: machine-level shared-structure mutexes → cache.busShard
//     → cache.Cache). Acquiring a lock whose rank is ≤ the rank of a lock
//     already held — including a second lock of the same class — is an
//     error: the bus protocol takes one shard lock, then at most one cache
//     mutex at a time, never the reverse.
//  2. No foreign mutex held across Bus.Access* calls: a bus transaction
//     takes shard and cache locks internally, so entering it with an
//     unrelated mutex held extends that mutex's hold time over the whole
//     snoop and risks order inversions the analyzer cannot see. (The one
//     deliberate exception, the shared-L2 serialisation mutex, carries a
//     //simlint:ignore with its hierarchy argument.)
//  3. No `defer mu.Unlock()` in functions marked //simlint:hotpath: defer
//     costs tens of nanoseconds per call on the per-access path, which is
//     why the hot functions unlock explicitly.
//
// The analysis is intra-procedural and flow-insensitive across branches
// (nested blocks are walked in source order against one held-lock set);
// that is exactly enough for the simulator's straight-line locking idioms,
// and the corpus in testdata pins the supported shapes.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "enforce lock ordering (shard before cache, one per class), forbid foreign mutexes " +
		"across Bus.Access* calls and deferred unlocks in //simlint:hotpath functions",
	Run: run,
}

// Order is the documented lock hierarchy: "<" separates levels acquired
// strictly in left-to-right order, "," separates type names sharing a
// level. A lock's class is the named type owning its mutex field. The
// driver exposes it as -lockdiscipline.order.
var Order = "busShard < Cache, cacheFields"

// BusTypes names the types whose Access* methods are coherence-bus
// transactions (comma-separated). The driver exposes it as
// -lockdiscipline.bus.
var BusTypes = "Bus"

type heldLock struct {
	expr  string // rendered mutex expression, e.g. "sh.mu"
	class string
	rank  int // -1 when the class is not in Order
	pos   ast.Node
}

type checker struct {
	pass    *analysis.Pass
	ranks   map[string]int
	busType map[string]bool
	hotpath bool
	held    []heldLock
}

func parseOrder(spec string) map[string]int {
	ranks := make(map[string]int)
	for rank, level := range strings.Split(spec, "<") {
		for _, name := range strings.Split(level, ",") {
			if name = strings.TrimSpace(name); name != "" {
				ranks[name] = rank
			}
		}
	}
	return ranks
}

func run(pass *analysis.Pass) (any, error) {
	ranks := parseOrder(Order)
	busType := make(map[string]bool)
	for _, name := range strings.Split(BusTypes, ",") {
		if name = strings.TrimSpace(name); name != "" {
			busType[name] = true
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ck := &checker{
				pass:    pass,
				ranks:   ranks,
				busType: busType,
				hotpath: directive.Has(directive.Func(fd), "hotpath"),
			}
			ck.block(fd.Body.List)
		}
	}
	return nil, nil
}

// block walks statements in source order against the shared held set,
// flattening nested control flow (see package doc).
func (ck *checker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		ck.stmt(s)
	}
}

func (ck *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		ck.expr(s.X)
	case *ast.DeferStmt:
		if mu, kind := ck.mutexCall(s.Call); kind == "unlock" {
			if ck.hotpath {
				ck.pass.Reportf(s.Pos(),
					"defer %s.Unlock() in a //simlint:hotpath function: hot-path functions unlock explicitly (defer costs on every simulated access)", mu)
			}
			// The lock stays held to the end of the function, which is
			// exactly what the held set should reflect; nothing to remove.
			return
		}
		ck.funcLits(s.Call)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ck.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ck.stmt(s.Init)
		}
		ck.expr(s.Cond)
		ck.block(s.Body.List)
		if s.Else != nil {
			ck.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ck.stmt(s.Init)
		}
		if s.Cond != nil {
			ck.expr(s.Cond)
		}
		ck.block(s.Body.List)
		if s.Post != nil {
			ck.stmt(s.Post)
		}
	case *ast.RangeStmt:
		ck.expr(s.X)
		ck.block(s.Body.List)
	case *ast.BlockStmt:
		ck.block(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ck.stmt(s.Init)
		}
		if s.Tag != nil {
			ck.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			ck.block(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			ck.block(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			ck.block(c.(*ast.CommClause).Body)
		}
	case *ast.GoStmt:
		ck.funcLits(s.Call)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ck.expr(e)
		}
	case *ast.LabeledStmt:
		ck.stmt(s.Stmt)
	}
}

// expr processes calls (and function literals) inside an expression.
func (ck *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs with its own lock context (it may run
			// later or on another goroutine); analyze it independently.
			sub := &checker{pass: ck.pass, ranks: ck.ranks, busType: ck.busType}
			sub.block(n.Body.List)
			return false
		case *ast.CallExpr:
			ck.call(n)
			// Arguments were visited by call via Inspect recursion below.
		}
		return true
	})
}

// funcLits analyzes only the function literals inside a call (for go/defer,
// whose direct lock effects are handled separately).
func (ck *checker) funcLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			sub := &checker{pass: ck.pass, ranks: ck.ranks, busType: ck.busType}
			sub.block(lit.Body.List)
			return false
		}
		return true
	})
}

// call handles Lock/Unlock transitions and the bus-transaction rule.
func (ck *checker) call(call *ast.CallExpr) {
	if mu, kind := ck.mutexCall(call); kind != "" {
		switch kind {
		case "lock":
			ck.acquire(call, mu)
		case "unlock":
			ck.release(mu)
		}
		return
	}
	if name, ok := ck.busAccessCall(call); ok && len(ck.held) > 0 {
		for _, h := range ck.held {
			ck.pass.Reportf(call.Pos(),
				"mutex %s held across bus transaction %s: bus calls take shard and cache locks internally, so callers must not enter them holding their own locks", h.expr, name)
		}
	}
}

func (ck *checker) acquire(at ast.Node, mu mutexRef) {
	rank, ranked := ck.ranks[mu.class]
	if !ranked {
		rank = -1
	}
	for _, h := range ck.held {
		if rank >= 0 && h.rank >= 0 {
			switch {
			case h.rank > rank:
				ck.pass.Reportf(at.Pos(),
					"lock order violation: %s (class %s) acquired while %s (class %s) is held; the documented order is %s", mu.expr, mu.class, h.expr, h.class, Order)
			case h.rank == rank:
				ck.pass.Reportf(at.Pos(),
					"two %s-class locks held at once (%s while holding %s): the bus protocol takes at most one lock per class", mu.class, mu.expr, h.expr)
			}
		}
	}
	ck.held = append(ck.held, heldLock{expr: mu.expr, class: mu.class, rank: rank, pos: at})
}

func (ck *checker) release(mu mutexRef) {
	for i := len(ck.held) - 1; i >= 0; i-- {
		if ck.held[i].expr == mu.expr {
			ck.held = append(ck.held[:i], ck.held[i+1:]...)
			return
		}
	}
}

type mutexRef struct {
	expr  string // rendered receiver, e.g. "sh.mu" or "c.l2Mu"
	class string // named type owning the mutex field, "" if none
}

// mutexCall recognises m.Lock/RLock ("lock") and m.Unlock/RUnlock
// ("unlock") calls on sync.Mutex/RWMutex values and returns the mutex
// reference.
func (ck *checker) mutexCall(call *ast.CallExpr) (mutexRef, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexRef{}, ""
	}
	fn, _ := ck.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexRef{}, ""
	}
	recv := analysis.TypeName(recvType(fn))
	if recv != "Mutex" && recv != "RWMutex" {
		return mutexRef{}, ""
	}
	var kind string
	switch fn.Name() {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return mutexRef{}, ""
	}
	return mutexRef{expr: renderExpr(sel.X), class: ck.ownerClass(sel.X)}, kind
}

// ownerClass names the struct type that owns the mutex: for `sh.mu.Lock()`
// the named type of `sh` ("busShard"); for a bare local/parameter mutex,
// "".
func (ck *checker) ownerClass(mu ast.Expr) string {
	if sel, ok := ast.Unparen(mu).(*ast.SelectorExpr); ok {
		if name := analysis.TypeName(ck.pass.TypesInfo.TypeOf(sel.X)); name != "" {
			return name
		}
	}
	return ""
}

// busAccessCall recognises method calls named Access* on a configured bus
// type and returns "Type.Method".
func (ck *checker) busAccessCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Access") {
		return "", false
	}
	fn, _ := ck.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false
	}
	recv := analysis.TypeName(recvType(fn))
	if recv == "" || !ck.busType[recv] {
		return "", false
	}
	return recv + "." + fn.Name(), true
}

func recvType(fn *types.Func) types.Type {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// renderExpr prints a selector chain for held-set identity.
func renderExpr(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return renderExpr(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(v.X) + "[" + renderExpr(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + renderExpr(v.X)
	case *ast.CallExpr:
		return renderExpr(v.Fun) + "()"
	case *ast.BasicLit:
		return v.Value
	default:
		return "?"
	}
}
