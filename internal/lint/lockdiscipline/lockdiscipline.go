// Package lockdiscipline enforces the hot-path locking rule: no
// `defer mu.Unlock()` in functions marked //simlint:hotpath. Defer costs
// tens of nanoseconds per call on the per-access path, which is why the hot
// functions unlock explicitly.
//
// The lock-ordering and bus-transaction rules that used to live here were
// replaced by the interprocedural lockorder analyzer: rank inversions,
// same-class double acquisitions and unranked locks held across ranked
// acquisitions are now detected across call chains and packages instead of
// syntactically within one function (see internal/lint/lockorder).
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "forbid deferred mutex unlocks in //simlint:hotpath functions (defer costs on every simulated access)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !directive.Has(directive.Func(fd), "hotpath") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					_ = lit // literals run in their own context; the directive binds the declared body
					return false
				}
				ds, ok := n.(*ast.DeferStmt)
				if !ok {
					return true
				}
				if mu, ok := mutexUnlock(pass.TypesInfo, ds.Call); ok {
					pass.Reportf(ds.Pos(),
						"defer %s() in a //simlint:hotpath function: hot-path functions unlock explicitly (defer costs on every simulated access)", mu)
				}
				return true
			})
		}
	}
	return nil, nil
}

// mutexUnlock recognises `defer m.Unlock()` / `defer m.RUnlock()` on
// sync.Mutex/RWMutex values and returns the rendered call expression.
func mutexUnlock(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	if fn.Name() != "Unlock" && fn.Name() != "RUnlock" {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	recv := analysis.TypeName(sig.Recv().Type())
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false
	}
	return renderExpr(sel.X) + "." + fn.Name(), true
}

// renderExpr prints a selector chain for the diagnostic.
func renderExpr(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return renderExpr(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(v.X) + "[" + renderExpr(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + renderExpr(v.X)
	case *ast.CallExpr:
		return renderExpr(v.Fun) + "()"
	case *ast.BasicLit:
		return v.Value
	default:
		return "?"
	}
}
