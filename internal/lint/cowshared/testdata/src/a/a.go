// Corpus for the cowshared analyzer: the annotated frame pointer mirrors
// the page table's COW-aliased PTE frames.
package a

const frameLen = 512

type pte struct {
	present bool
	pfn     uint64
}

type entry struct {
	pfn uint64
	//simlint:cowshared
	ptes   *[frameLen]pte
	used   int
	shared bool
}

type table struct {
	slots []*entry
}

// ensureOwned is the write barrier: cloning into the writer is its job, so
// it may touch the shared frame freely.
//
//simlint:cowbarrier
func (t *table) ensureOwned(gi int, e *entry) *entry {
	if !e.shared {
		return e
	}
	ne := &entry{pfn: e.pfn, used: e.used}
	if e.ptes != nil {
		ne.ptes = new([frameLen]pte)
		*ne.ptes = *e.ptes
	}
	t.slots[gi] = ne
	return ne
}

// writePTE is the sanctioned single write point.
//
//simlint:cowbarrier
func (t *table) writePTE(e *entry, pi int, p pte) {
	if e.shared {
		panic("write to shared frame")
	}
	e.ptes[pi] = p
}

// Function literals inside a barrier inherit its license.
//
//simlint:cowbarrier
func (t *table) writeAll(e *entry, p pte) {
	each := func(pi int) { e.ptes[pi] = p }
	for pi := range e.ptes {
		each(pi)
	}
}

// Reads are unrestricted: read-sharing is the point.
func reads(e *entry) (pte, int) {
	p := e.ptes[3]
	n := 0
	if e.ptes != nil {
		n = len(e.ptes)
	}
	for _, q := range e.ptes {
		if q.present {
			n++
		}
	}
	return p, n
}

// Keyed composite-literal initialisation builds a private value.
func build() *entry {
	return &entry{ptes: new([frameLen]pte)}
}

// Unannotated neighbours stay unrestricted.
func neighbours(e *entry) {
	e.pfn = 7
	e.used++
	e.shared = true
}

// The field used as an index (not as the indexed chain) is a read.
func asIndex(e *entry, xs []int) int {
	return xs[e.used]
}

// Writes outside the barrier are the bug class.
func plainFieldWrite(e *entry) {
	e.ptes = nil // want `write of ptes`
}

func plainElemWrite(e *entry, p pte) {
	e.ptes[0] = p // want `write of ptes`
}

func plainDerefWrite(e *entry, f [frameLen]pte) {
	*e.ptes = f // want `write of ptes`
}

func parenWrite(e *entry, p pte) {
	(e.ptes)[1] = p // want `write of ptes`
}

// A member write through an element still mutates the shared frame.
func fieldThroughElem(e *entry) {
	e.ptes[2].pfn = 9 // want `write of ptes`
}

// A member read through an element is still a read.
func memberRead(e *entry) uint64 {
	return e.ptes[2].pfn
}

// Taking the address leaks a writable alias past the barrier.
func escape(e *entry, f func(*pte)) {
	f(&e.ptes[4]) // want `address escape of ptes`
}

func escapeField(e *entry) **[frameLen]pte {
	return &e.ptes // want `address escape of ptes`
}
