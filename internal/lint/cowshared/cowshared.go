// Package cowshared enforces the snapshot layer's copy-on-write write
// barrier: struct fields annotated //simlint:cowshared (the page table's
// aliased PTE frames, for example) may be shared read-only between a forked
// table and its parent, so every mutation must route through a function
// annotated //simlint:cowbarrier — the barrier clones the shared structure
// into the writer before touching it. A write (or an address escape) of an
// annotated field anywhere else is an error: it compiles, works until the
// first fork, and then silently leaks one fork's mutations into every
// sibling.
//
// Flagged accesses outside //simlint:cowbarrier functions:
//
//   - assignment to the field (`e.ptes = x`), to an element reached through
//     it (`e.ptes[i] = p`), or through a dereference (`*e.ptes = v`);
//   - ++/-- on the field or an element reached through it;
//   - &f (or &f[i], &*f...): the address can be written by unchecked code.
//
// Reads are unrestricted — read-sharing is the point of the annotation —
// and keyed composite-literal initialisation is fine (the value is private
// while it is being built, and literal keys are plain identifiers anyway).
// A justified exception needs a //simlint:ignore cowshared <reason>.
//
// Like //simlint:atomic, the annotation is package-local by design:
// annotated fields should be unexported, so all their accesses type-check in
// the declaring package.
package cowshared

import (
	"go/ast"
	"go/token"
	"go/types"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "cowshared",
	Doc: "fields annotated //simlint:cowshared may only be written inside " +
		"//simlint:cowbarrier functions (the COW write barrier)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	annotated := collect(pass)
	if len(annotated) == 0 {
		return nil, nil
	}
	barriers := collectBarriers(pass)
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || !annotated[obj] {
			return true
		}
		if inBarrier(stack, barriers) {
			return true
		}
		if kind := mutation(stack); kind != "" {
			pass.Reportf(sel.Pos(),
				"%s of %s, which is marked //simlint:cowshared, outside a //simlint:cowbarrier function: "+
					"route the mutation through the COW write barrier (or justify with //simlint:ignore cowshared <reason>)",
				kind, obj.Name())
		}
		return true
	})
	return nil, nil
}

// collect gathers the *types.Var objects of every //simlint:cowshared field
// declared in this package.
func collect(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	analysis.Preorder(pass.Files, func(n ast.Node) {
		st, ok := n.(*ast.StructType)
		if !ok {
			return
		}
		for _, f := range st.Fields.List {
			if !directive.Has(directive.Field(f), "cowshared") {
				continue
			}
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	})
	return out
}

// collectBarriers gathers the function declarations whose doc comment
// carries //simlint:cowbarrier.
func collectBarriers(pass *analysis.Pass) map[*ast.FuncDecl]bool {
	out := make(map[*ast.FuncDecl]bool)
	analysis.Preorder(pass.Files, func(n ast.Node) {
		if fd, ok := n.(*ast.FuncDecl); ok && directive.Has(directive.Func(fd), "cowbarrier") {
			out[fd] = true
		}
	})
	return out
}

// inBarrier reports whether the matched selector sits inside a
// //simlint:cowbarrier function (function literals inherit the enclosing
// declaration's annotation — the barrier is a lexical region).
func inBarrier(stack []ast.Node, barriers map[*ast.FuncDecl]bool) bool {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return barriers[fd]
		}
	}
	return false
}

// mutation classifies the access at the top of the stack: it climbs the
// expression chain rooted at the annotated selector (index, dereference,
// member selection, parens) and reports "write" if the chain is assigned or
// ++/--'d, "address escape" if its address is taken, and "" for reads.
func mutation(stack []ast.Node) string {
	i := len(stack) - 1 // stack[i] is the SelectorExpr itself
	node := stack[i]
	for i > 0 {
		switch p := stack[i-1].(type) {
		case *ast.IndexExpr:
			if p.X != node {
				return "" // field used as the index — a read
			}
		case *ast.SelectorExpr:
			if p.X != node {
				return ""
			}
		case *ast.StarExpr, *ast.ParenExpr:
			// climb
		default:
			goto classify
		}
		i--
		node = stack[i]
	}
classify:
	if i == 0 {
		return ""
	}
	switch p := stack[i-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == node {
				return "write"
			}
		}
	case *ast.IncDecStmt:
		if p.X == node {
			return "write"
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return "address escape"
		}
	}
	return ""
}
