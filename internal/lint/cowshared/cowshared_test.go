package cowshared_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/cowshared"
)

func TestCowShared(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), cowshared.Analyzer, "a")
}
