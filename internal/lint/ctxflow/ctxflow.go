// Package ctxflow checks cancellation propagation in the NPB kernels: every
// loop that issues omp parallel regions — directly or through any chain of
// calls — must also reach rt.Checkpoint() in its body, or carry an explicit
// //simlint:nocheckpoint <reason> annotation. The contract
// (docs/ROBUSTNESS.md) is that kernel iteration boundaries stay cancellable:
// a deadline or cancellation must be observed within one outer iteration,
// never after the whole run.
//
// The analysis is interprocedural: each function's summary records whether
// it (transitively) issues a region, with a representative call chain, and
// whether it (transitively) reaches a checkpoint. A loop is then judged at
// its own nesting level: calls in its body are resolved through summaries,
// but nested loops are excluded — they are judged separately, and a
// checkpoint inside a nested loop does not bound the outer iteration.
// Function literals in the body are folded in (worksharing bodies run
// synchronously inside the region).
//
// Annotations are tracked for honesty both ways: a reasonless
// //simlint:nocheckpoint suppresses nothing and is reported, and a stale one
// (excusing a loop that no longer needs it) is reported for deletion.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/callgraph"
	"hugeomp/internal/lint/directive"
	"hugeomp/internal/lint/interproc"
)

const name = "ctxflow"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "every loop that issues omp regions (directly or through calls) must reach rt.Checkpoint() " +
		"in its body or carry //simlint:nocheckpoint <reason>: kernel iteration boundaries stay cancellable",
	Run: run,
}

// Packages limits reporting to the kernel packages (summaries are computed
// everywhere). The driver exposes it as -ctxflow.packages.
var Packages = []string{"internal/npb"}

// RTType names the runtime type whose methods delimit regions and
// checkpoints, matched as a "pkg.Type" suffix of the receiver's qualified
// name. The driver exposes it as -ctxflow.rttype.
var RTType = "omp.RT"

// RegionMethods are the RTType methods that issue simulated parallel work.
var RegionMethods = "Serial,Parallel,ParallelFor,ParallelForReduce,ParallelSections,Barrier"

// CheckpointMethods are the RTType methods that observe cancellation.
var CheckpointMethods = "Checkpoint"

func inScope(path string) bool {
	for _, p := range Packages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// Summary is the per-function fact.
type Summary struct {
	// Region is non-nil when the function may issue an omp region; it holds
	// the call chain down to the region call.
	Region []string `json:"region,omitempty"`
	// Checkpoint reports whether the function may reach rt.Checkpoint().
	Checkpoint bool `json:"checkpoint,omitempty"`
}

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass)
	cands := callgraph.Candidates(pass.Pkg)

	an := &interproc.Analysis[Summary]{
		Facts:  name,
		Bottom: func(*types.Func) Summary { return Summary{} },
		Transfer: func(n *callgraph.Node, lookup func(*types.Func) Summary) Summary {
			var s Summary
			ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
				if call, ok := nd.(*ast.CallExpr); ok {
					scanCall(pass, cands, call, lookup, &s)
				}
				return true
			})
			return s
		},
		Equal: func(a, b Summary) bool {
			if a.Checkpoint != b.Checkpoint || len(a.Region) != len(b.Region) {
				return false
			}
			for i := range a.Region {
				if a.Region[i] != b.Region[i] {
					return false
				}
			}
			return true
		},
	}
	sums := interproc.Solve(pass, g, an)

	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}

	final := func(fn *types.Func) Summary {
		if s, ok := sums[fn]; ok {
			return s
		}
		var s Summary
		pass.Facts.Get(name, fn.FullName(), &s)
		return s
	}

	ncs := directive.NoCheckpoints(pass.Fset, pass.Files)
	for _, n := range g.Funcs() {
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.ForStmt:
				checkLoop(pass, cands, final, ncs, nd, nd.Body)
			case *ast.RangeStmt:
				checkLoop(pass, cands, final, ncs, nd, nd.Body)
			}
			return true
		})
	}
	for _, nc := range ncs.Invalid() {
		pass.Reportf(nc.Pos, "//simlint:nocheckpoint needs a reason: say why this loop may run regions without observing cancellation")
	}
	for _, nc := range ncs.Stale() {
		pass.Reportf(nc.Pos, "stale //simlint:nocheckpoint (%s): no checkpoint-free region-issuing loop here any more; delete it", nc.Reason)
	}
	return nil, nil
}

// scanCall folds one call site into a region/checkpoint summary.
func scanCall(pass *analysis.Pass, cands []types.Type, call *ast.CallExpr, lookup func(*types.Func) Summary, s *Summary) {
	if m, ok := rtCall(pass, call); ok {
		if inList(m, CheckpointMethods) {
			s.Checkpoint = true
		} else if inList(m, RegionMethods) && s.Region == nil {
			s.Region = []string{frame(pass, call, "omp region "+m)}
		}
		return
	}
	for _, tg := range callgraph.ResolveCall(pass, cands, call) {
		cs := lookup(tg.Fn)
		if cs.Checkpoint {
			s.Checkpoint = true
		}
		if cs.Region != nil && s.Region == nil {
			s.Region = append([]string{frame(pass, call, "call "+tg.Fn.FullName())}, cs.Region...)
		}
	}
}

// checkLoop judges one loop at its own nesting level: nested loops are
// excluded (each is judged separately), function literals are folded in.
func checkLoop(pass *analysis.Pass, cands []types.Type, lookup func(*types.Func) Summary, ncs *directive.NoCheckpointSet, loop ast.Node, body *ast.BlockStmt) {
	var s Summary
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false // judged separately at its own level
		case *ast.CallExpr:
			scanCall(pass, cands, nd, lookup, &s)
		}
		return true
	})
	if s.Region == nil || s.Checkpoint {
		return
	}
	if ncs.Match(pass.Fset, loop.Pos()) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos: loop.Pos(),
		Message: fmt.Sprintf(
			"loop issues omp regions without reaching rt.Checkpoint(): iteration boundaries must stay cancellable — checkpoint once per iteration or annotate //simlint:nocheckpoint <reason> (region path: %s)",
			strings.Join(s.Region, " -> ")),
		Trace: s.Region,
	})
}

// rtCall reports whether call invokes a method on the configured runtime
// type, returning the method name.
func rtCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if qual != RTType && !strings.HasSuffix(qual, "/"+RTType) {
		return "", false
	}
	return fn.Name(), true
}

func inList(name, list string) bool {
	for _, m := range strings.Split(list, ",") {
		if strings.TrimSpace(m) == name {
			return true
		}
	}
	return false
}

func frame(pass *analysis.Pass, at ast.Node, what string) string {
	return pass.Fset.Position(at.Pos()).String() + ": " + what
}
