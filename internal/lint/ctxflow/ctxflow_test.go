package ctxflow_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	defer func(pkgs []string, rt string) {
		ctxflow.Packages, ctxflow.RTType = pkgs, rt
	}(ctxflow.Packages, ctxflow.RTType)
	ctxflow.Packages = []string{"a"}
	ctxflow.RTType = "a.RT"

	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "a")
}
