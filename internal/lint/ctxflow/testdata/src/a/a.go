// Corpus for the ctxflow analyzer. The test configures RTType = "a.RT" and
// Packages = ["a"].
package a

type Context struct{}

// RT stands in for omp.RT.
type RT struct{}

func (rt *RT) Parallel(body func(c *Context))           {}
func (rt *RT) ParallelFor(n int, body func(lo, hi int)) {}
func (rt *RT) Barrier()                                 {}
func (rt *RT) Checkpoint() error                        { return nil }

// --- negative controls ------------------------------------------------------

// The canonical Run loop: checkpoint at every iteration boundary.
func good(rt *RT, iters int) error {
	for it := 0; it < iters; it++ {
		if err := rt.Checkpoint(); err != nil {
			return err
		}
		rt.ParallelFor(100, func(lo, hi int) {})
	}
	return nil
}

// A loop with no region work needs no checkpoint.
func computeOnly(data []float64) float64 {
	s := 0.0
	for _, v := range data {
		s += v
	}
	return s
}

// Inner compute loops inside a worksharing body issue no regions themselves.
func worksharing(rt *RT, data []float64) {
	rt.ParallelFor(len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] *= 2
		}
	})
}

// A checkpoint reached through a helper counts.
func pause(rt *RT) error { return rt.Checkpoint() }

func indirectCheckpoint(rt *RT, n int) {
	for i := 0; i < n; i++ {
		if err := pause(rt); err != nil {
			return
		}
		sweep(rt)
	}
}

// --- direct violation -------------------------------------------------------

func bad(rt *RT, iters int) {
	for it := 0; it < iters; it++ { // want `loop issues omp regions without reaching rt\.Checkpoint`
		rt.ParallelFor(100, func(lo, hi int) {})
	}
}

// --- regions issued two calls down ------------------------------------------

func sweep(rt *RT)  { rt.Parallel(func(c *Context) {}) }
func sweeps(rt *RT) { sweep(rt) }

func indirect(rt *RT, n int) {
	for i := 0; i < n; i++ { // want `without reaching rt\.Checkpoint.*call a\.sweeps.*call a\.sweep.*omp region Parallel`
		sweeps(rt)
	}
}

// --- nested loops are judged at their own level -------------------------------

// The outer loop's own level issues no regions; only the inner loop (which
// checkpoints) does, so neither is flagged.
func nestedOK(rt *RT, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rt.Checkpoint() != nil {
				return
			}
			sweep(rt)
		}
	}
}

// A checkpoint inside a nested loop does not bound the outer iteration: the
// inner loop is fine, the outer one is flagged for its own region call.
func nestedBad(rt *RT, n int) {
	for i := 0; i < n; i++ { // want `without reaching rt\.Checkpoint`
		sweep(rt)
		for j := 0; j < n; j++ {
			if rt.Checkpoint() != nil {
				return
			}
		}
	}
}

// --- annotations ------------------------------------------------------------

// A reasoned annotation suppresses the report.
func annotated(rt *RT, n int) {
	//simlint:nocheckpoint bounded level sweep; the caller checkpoints per V-cycle
	for i := 0; i < n; i++ {
		sweep(rt)
	}
}

// A reasonless annotation suppresses nothing: the loop stays flagged and the
// annotation itself is reported.
func reasonless(rt *RT, n int) {
	for i := 0; i < n; i++ { /* want `needs a reason` `without reaching rt\.Checkpoint` */ //simlint:nocheckpoint
		sweep(rt)
	}
}

// A stale annotation (the loop checkpoints) is reported for deletion.
func stale(rt *RT, n int) {
	for i := 0; i < n; i++ { /* want `stale //simlint:nocheckpoint` */ //simlint:nocheckpoint overcautious
		if rt.Checkpoint() != nil {
			return
		}
		sweep(rt)
	}
}
