// Package dettaint is the interprocedural determinism-taint analyzer. The
// simulator's bit-determinism contract (same seed → identical counters,
// docs/ROBUSTNESS.md) is enforced syntactically by the determinism analyzer;
// dettaint closes the laundering hole: a wall-clock read stashed in a helper's
// return value, threaded through a struct field, and finally added to a
// profile counter three calls later is invisible to any single-function check.
//
// The model is flow-insensitive, object-granular taint:
//
//   - Sources are calls that observe host state: time.Now/Since/Until, the
//     global math/rand generators, runtime scheduling queries
//     (runtime.NumGoroutine, GOMAXPROCS, NumCPU) — see SourceCall, which the
//     determinism analyzer shares — plus map-iteration key/value variables
//     (iteration order is randomized per run).
//   - Taint propagates through assignments, struct fields and composite
//     literals, arithmetic, and calls: each function's summary records
//     whether its results carry source taint (Ret, with the chain), which
//     parameters its results derive from (RetParams), and which parameters
//     reach a sink inside it (Sinks). Summaries are solved bottom-up over
//     call-graph SCCs and flow across packages as facts. Externals without
//     summaries conservatively pass argument taint to their results.
//   - Sinks are the determinism-bearing outputs: methods on the profile
//     counter types (SinkTypes) and the memoization key builders (SinkFuncs).
//     Taint meeting a sink is reported with the full source→sink path.
//
// context.Context values are sanitized by type: the service layer's deadline
// contexts are wall-clock-bearing by design and never feed simulation
// results, so taint does not flow through them.
package dettaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/callgraph"
	"hugeomp/internal/lint/interproc"
)

const name = "dettaint"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "interprocedural determinism taint: track wall-clock, global math/rand, scheduler-state and " +
		"map-order values through returns, parameters and struct fields into profile counters and " +
		"memoization keys, and report the full source→sink path",
	Run: run,
}

// Packages limits *reporting* to the packages bound by the determinism
// contract (summaries are computed everywhere so taint can cross any
// boundary). Same matching rules as determinism.Packages. The driver exposes
// it as -dettaint.packages.
var Packages = []string{
	"internal/cache",
	"internal/machine",
	"internal/tlb",
	"internal/pagetable",
	"internal/omp",
	"internal/profile",
	"internal/stats",
	"internal/check",
	"internal/npb",
	"internal/memo",
	"internal/shmem",
}

// SinkTypes is the comma-separated list of named types whose methods are
// determinism-sensitive sinks (any tainted argument is a violation). The
// driver exposes it as -dettaint.sinktypes.
var SinkTypes = "Counters,OSCounters,ShardedCounters"

// SinkFuncs is the comma-separated list of sink functions, matched as
// "pkg.Func" suffixes of the full name. The driver exposes it as
// -dettaint.sinkfuncs.
var SinkFuncs = "memo.KeyOf,npb.RunKey"

func inScope(path string) bool {
	for _, p := range Packages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// --- shared source table ----------------------------------------------------

// SourceKind classifies a non-determinism source call.
type SourceKind int

const (
	WallClock  SourceKind = iota // time.Now / Since / Until
	GlobalRand                   // package-level math/rand generator use
	SchedQuery                   // runtime scheduling / host state queries
)

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors build seeded generators and are deterministic given the
// seed; only draws from the package-level generator are sources.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// schedFuncs observe scheduler or host state that varies run to run (or
// machine to machine).
var schedFuncs = map[string]bool{"NumGoroutine": true, "NumCPU": true, "GOMAXPROCS": true}

// SourceCall reports whether call is a non-determinism source, with its kind
// and a human-readable description. The determinism analyzer shares this
// table so the two passes can never disagree about what a source is.
func SourceCall(info *types.Info, call *ast.CallExpr) (SourceKind, string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return 0, "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return 0, "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return WallClock, "time." + fn.Name() + "() (wall clock)", true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return GlobalRand, fn.Pkg().Name() + "." + fn.Name() + "() (global math/rand)", true
		}
	case "runtime":
		if schedFuncs[fn.Name()] {
			return SchedQuery, "runtime." + fn.Name() + "() (scheduler/host state)", true
		}
	}
	return 0, "", false
}

// --- summaries --------------------------------------------------------------

// A ParamSink records that a parameter value reaches a determinism sink
// inside the function (or below it), so callers passing tainted arguments
// are reported at their own call sites with the stitched chain.
type ParamSink struct {
	Param int      `json:"param"` // 0 = receiver for methods, then positional
	Sink  string   `json:"sink"`  // the sink's description
	Chain []string `json:"chain,omitempty"`
}

// Summary is the per-function fact.
type Summary struct {
	// Ret is non-nil when a result may carry source taint independent of the
	// arguments; it holds the source-first chain.
	Ret []string `json:"ret,omitempty"`
	// RetParams is the bitmask of parameters the results may derive from.
	RetParams uint64 `json:"retParams,omitempty"`
	// Sinks lists parameters that reach a sink inside the function.
	Sinks []ParamSink `json:"sinks,omitempty"`
}

// taint is the abstract value of one expression or variable.
type taint struct {
	chain  []string // source-first path, nil when no source taint
	params uint64   // parameter bits the value may derive from
}

func union(a, b taint) taint {
	out := taint{chain: a.chain, params: a.params | b.params}
	if out.chain == nil {
		out.chain = b.chain
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass)
	cands := callgraph.Candidates(pass.Pkg)

	an := &interproc.Analysis[Summary]{
		Facts:  name,
		Bottom: func(*types.Func) Summary { return Summary{} },
		// Unknown externals conservatively launder argument taint into their
		// results (fmt.Sprintf, strconv, time.Time methods, ...).
		External: func(*types.Func) (Summary, bool) {
			return Summary{RetParams: ^uint64(0)}, true
		},
		Transfer: func(n *callgraph.Node, lookup func(*types.Func) Summary) Summary {
			w := newWalker(pass, cands, lookup, n)
			w.solveEnv(n.Decl.Body)
			return w.collect(n.Decl.Body, nil)
		},
		Equal: func(a, b Summary) bool { return reflect.DeepEqual(a, b) },
	}
	sums := interproc.Solve(pass, g, an)

	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}

	final := func(fn *types.Func) Summary {
		if s, ok := sums[fn]; ok {
			return s
		}
		var s Summary
		if pass.Facts.Get(name, fn.FullName(), &s) {
			return s
		}
		return Summary{RetParams: ^uint64(0)}
	}
	seen := map[string]bool{}
	emit := func(pos token.Pos, sink string, chain []string) {
		key := pass.Fset.Position(pos).String() + "\x00" + sink + "\x00" + strings.Join(chain, "|")
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Report(analysis.Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf(
				"non-deterministic value flows into %s: the bit-determinism contract requires identical replays (taint path: %s)",
				sink, strings.Join(chain, " -> ")),
			Trace: chain,
		})
	}
	for _, n := range g.Funcs() {
		w := newWalker(pass, cands, final, n)
		w.solveEnv(n.Decl.Body)
		w.collect(n.Decl.Body, emit)
	}
	return nil, nil
}

// --- per-function walk ------------------------------------------------------

type walker struct {
	pass    *analysis.Pass
	cands   []types.Type
	lookup  func(*types.Func) Summary
	env     map[types.Object]taint
	nparams int
	results []types.Object // named result objects, for bare returns
	ret     taint
	sinks   map[int]ParamSink
	// changedEnv is set by set() when the environment grows (fixpoint test).
	changedEnv bool
}

func newWalker(pass *analysis.Pass, cands []types.Type, lookup func(*types.Func) Summary, n *callgraph.Node) *walker {
	w := &walker{pass: pass, cands: cands, lookup: lookup,
		env: map[types.Object]taint{}, sinks: map[int]ParamSink{}}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil {
		return w
	}
	bit := 0
	seed := func(v *types.Var) {
		if v != nil && bit < 63 {
			w.env[v] = taint{params: 1 << uint(bit)}
		}
		bit++
	}
	if sig.Recv() != nil {
		seed(sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		seed(sig.Params().At(i))
	}
	w.nparams = bit
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); v.Name() != "" {
			w.results = append(w.results, v)
		}
	}
	return w
}

// solveEnv runs the intra-function environment to a fixpoint: assignments,
// range statements and declarations may feed taint into variables that
// earlier statements already read (loops), so iterate until stable.
func (w *walker) solveEnv(body *ast.BlockStmt) {
	for round := 0; round < 10; round++ {
		w.changedEnv = false
		ast.Inspect(body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.AssignStmt:
				w.assign(nd)
			case *ast.RangeStmt:
				w.rangeStmt(nd)
			case *ast.ValueSpec:
				w.valueSpec(nd)
			}
			return true
		})
		if !w.changedEnv {
			return
		}
	}
}

// set unions t into the environment entry of e's root object.
func (w *walker) set(e ast.Expr, t taint) {
	if t.chain == nil && t.params == 0 {
		return
	}
	obj := rootObj(w.pass.TypesInfo, e)
	if obj == nil {
		return
	}
	old := w.env[obj]
	next := union(old, t)
	if next.params != old.params || (old.chain == nil && next.chain != nil) {
		w.env[obj] = next
		w.changedEnv = true
	}
}

func (w *walker) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		t := w.eval(s.Rhs[0]) // multi-value call: all targets get its taint
		for _, lhs := range s.Lhs {
			w.set(lhs, t)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			continue
		}
		t := w.eval(s.Rhs[i])
		// Rebuild idiom: `m2[k] = v` where both the key and the value carry
		// only iteration-order taint copies every entry of a map under its
		// own key — the resulting container is the same whatever the order,
		// so the order taint stops here (matching the determinism analyzer's
		// keyed-write allowance). Restricted to plain assignment: op-assigns
		// accumulate, and accumulation may not commute.
		if s.Tok == token.ASSIGN {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok &&
				mapOrderOnly(w.eval(ix.Index)) && mapOrderOnly(t) {
				t = taint{params: t.params}
			}
		}
		w.set(lhs, t)
	}
}

// mapOrderOnly reports whether t's source chain is exactly a map-iteration
// source (no wall clock, rand or scheduler taint mixed in via the chain).
func mapOrderOnly(t taint) bool {
	return t.chain != nil && strings.HasSuffix(t.chain[0], "map iteration order")
}

func (w *walker) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		t := w.eval(vs.Values[0])
		for _, id := range vs.Names {
			w.set(id, t)
		}
		return
	}
	for i, id := range vs.Names {
		if i < len(vs.Values) {
			w.set(id, w.eval(vs.Values[i]))
		}
	}
}

func (w *walker) rangeStmt(rs *ast.RangeStmt) {
	t := w.eval(rs.X)
	if xt := w.pass.TypesInfo.TypeOf(rs.X); xt != nil {
		if _, isMap := xt.Underlying().(*types.Map); isMap {
			t = union(t, taint{chain: []string{w.frame(rs, "map iteration order")}})
		}
	}
	if rs.Key != nil {
		w.set(rs.Key, t)
	}
	if rs.Value != nil {
		w.set(rs.Value, t)
	}
}

// collect runs the summary/report pass over a solved environment: sink
// contacts at every call, return taint, and the parameter-sink table. emit
// is nil while summaries are being solved and non-nil in the reporting pass.
func (w *walker) collect(body *ast.BlockStmt, emit func(token.Pos, string, []string)) Summary {
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			w.checkCall(nd, emit)
		case *ast.ReturnStmt:
			if len(nd.Results) == 0 {
				for _, obj := range w.results {
					w.ret = union(w.ret, w.env[obj])
				}
			}
			for _, e := range nd.Results {
				w.ret = union(w.ret, w.eval(e))
			}
		}
		return true
	})

	s := Summary{Ret: w.ret.chain, RetParams: w.ret.params}
	params := make([]int, 0, len(w.sinks))
	for p := range w.sinks {
		params = append(params, p)
	}
	sort.Ints(params)
	for _, p := range params {
		s.Sinks = append(s.Sinks, w.sinks[p])
	}
	return s
}

// checkCall tests one call site for sink contact: direct sinks take any
// tainted argument; other callees may declare parameter sinks in their
// summaries, which stitch onto the argument's taint here.
func (w *walker) checkCall(call *ast.CallExpr, emit func(token.Pos, string, []string)) {
	for _, tg := range callgraph.ResolveCall(w.pass, w.cands, call) {
		if desc, ok := sinkOf(tg.Fn); ok {
			for _, a := range call.Args { // the receiver is the sink itself
				w.sinkContact(call, emit, desc, w.eval(a),
					[]string{w.frame(call, "argument to "+desc)})
			}
			continue
		}
		s := w.lookup(tg.Fn)
		for _, ps := range s.Sinks {
			at := w.argTaintForParam(call, tg.Fn, ps.Param)
			tail := append([]string{w.frame(call, "call "+tg.Fn.FullName())}, ps.Chain...)
			w.sinkContact(call, emit, ps.Sink, at, tail)
		}
	}
}

// sinkContact handles taint meeting a sink: chain taint is reported, and
// parameter taint becomes this function's own ParamSink entries.
func (w *walker) sinkContact(call *ast.CallExpr, emit func(token.Pos, string, []string), sink string, at taint, tail []string) {
	if at.chain != nil && emit != nil {
		emit(call.Pos(), sink, append(append([]string{}, at.chain...), tail...))
	}
	for p := 0; p < w.nparams; p++ {
		if at.params&(1<<uint(p)) == 0 {
			continue
		}
		if _, ok := w.sinks[p]; !ok {
			w.sinks[p] = ParamSink{Param: p, Sink: sink, Chain: tail}
		}
	}
}

// eval computes the taint of an expression. context.Context values are
// sanitized by type (see the package comment).
func (w *walker) eval(e ast.Expr) taint {
	if e == nil {
		return taint{}
	}
	if isContext(w.pass.TypesInfo.TypeOf(e)) {
		return taint{}
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.pass.TypesInfo.ObjectOf(e); obj != nil {
			return w.env[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := w.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return w.eval(e.X) // object-granular: a field carries its owner's taint
		}
	case *ast.CallExpr:
		return w.evalCall(e)
	case *ast.BinaryExpr:
		return union(w.eval(e.X), w.eval(e.Y))
	case *ast.UnaryExpr:
		return w.eval(e.X)
	case *ast.StarExpr:
		return w.eval(e.X)
	case *ast.IndexExpr:
		return union(w.eval(e.X), w.eval(e.Index))
	case *ast.SliceExpr:
		return w.eval(e.X)
	case *ast.TypeAssertExpr:
		return w.eval(e.X)
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = union(t, w.eval(el))
		}
		return t
	}
	return taint{}
}

func (w *walker) evalCall(call *ast.CallExpr) taint {
	info := w.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() { // conversion
		if len(call.Args) == 1 {
			return w.eval(call.Args[0])
		}
		return taint{}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "copy", "min", "max":
				var t taint
				for _, a := range call.Args {
					t = union(t, w.eval(a))
				}
				return t
			}
			return taint{}
		}
	}
	if _, desc, ok := SourceCall(info, call); ok {
		return taint{chain: []string{w.frame(call, desc)}}
	}
	targets := callgraph.ResolveCall(w.pass, w.cands, call)
	if len(targets) == 0 {
		// Function-valued call: launder argument taint conservatively.
		var t taint
		for _, a := range call.Args {
			t = union(t, w.eval(a))
		}
		return t
	}
	var out taint
	for _, tg := range targets {
		s := w.lookup(tg.Fn)
		if s.Ret != nil {
			out = union(out, taint{chain: append(append([]string{}, s.Ret...),
				w.frame(call, "returned by "+tg.Fn.FullName()))})
		}
		if s.RetParams == 0 {
			continue
		}
		for i, a := range argsFor(call, tg.Fn) {
			bit := clampParam(tg.Fn, i)
			if s.RetParams&(1<<uint(bit)) == 0 {
				continue
			}
			at := w.eval(a)
			if at.chain != nil {
				out = union(out, taint{chain: append(append([]string{}, at.chain...),
					w.frame(call, "through "+tg.Fn.FullName()))})
			}
			out.params |= at.params
		}
	}
	return out
}

// argTaintForParam unions the taint of every actual argument that maps to
// the callee's parameter index (variadic arguments all map to the last).
func (w *walker) argTaintForParam(call *ast.CallExpr, fn *types.Func, param int) taint {
	var t taint
	for i, a := range argsFor(call, fn) {
		if clampParam(fn, i) == param {
			t = union(t, w.eval(a))
		}
	}
	return t
}

func (w *walker) frame(at ast.Node, what string) string {
	return w.pass.Fset.Position(at.Pos()).String() + ": " + what
}

// argsFor aligns a call's actual arguments with the callee's parameter
// indices: for methods, index 0 is the receiver expression.
func argsFor(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	var args []ast.Expr
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args, sel.X)
		} else {
			args = append(args, nil) // method expression: receiver is args[0] twice; harmless
		}
	}
	return append(args, call.Args...)
}

// clampParam folds argument indices beyond the parameter count onto the
// last (variadic) parameter.
func clampParam(fn *types.Func, i int) int {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return i
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if n == 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// --- sink recognition -------------------------------------------------------

func sinkOf(fn *types.Func) (string, bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := analysis.TypeName(sig.Recv().Type())
		for _, t := range strings.Split(SinkTypes, ",") {
			if recv == strings.TrimSpace(t) {
				return fn.FullName(), true
			}
		}
		return "", false
	}
	full := fn.FullName()
	for _, s := range strings.Split(SinkFuncs, ",") {
		s = strings.TrimSpace(s)
		if s != "" && (full == s || strings.HasSuffix(full, "/"+s)) {
			return full, true
		}
	}
	return "", false
}

func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
