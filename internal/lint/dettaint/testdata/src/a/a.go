// Corpus for the dettaint analyzer. The test configures
// SinkTypes = "Counters" and SinkFuncs = "a.Key".
package a

import (
	"context"
	"math/rand"
	"runtime"
	"time"
)

// Counters stands in for the profile counter types (a sink type).
type Counters struct {
	N uint64
	T int64
}

func (c *Counters) Add(v int64) { c.T += v }

// Key stands in for the memoization key builders (a sink func).
func Key(parts ...int64) int64 {
	var k int64
	for _, p := range parts {
		k = k*31 + p
	}
	return k
}

// --- negative controls ------------------------------------------------------

// Deterministic values into a sink are fine.
func goodAdd(c *Counters, cycles int64) {
	c.Add(cycles)
	c.Add(42)
}

// A seeded *rand.Rand owned by the run is deterministic: method draws are
// not sources (only the package-level generator is).
func seededRand(c *Counters) {
	rng := rand.New(rand.NewSource(7))
	c.Add(rng.Int63())
}

// context.Context values are sanitized: service deadline contexts carry wall
// clock by design and never feed simulation results.
func viaContext(c *Counters, ctx context.Context) {
	d, _ := ctx.Deadline()
	_ = d
	c.Add(0)
}

// Wall clock that stays in diagnostics (no sink contact) is not dettaint's
// business; the determinism analyzer owns the per-package scope rule.
func timedButUnsunk() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// --- direct source → sink ---------------------------------------------------

func direct(c *Counters) {
	c.Add(time.Now().UnixNano()) // want `non-deterministic value flows into \(\*a\.Counters\)\.Add.*time\.Now`
}

func schedState(c *Counters) {
	c.Add(int64(runtime.NumGoroutine())) // want `runtime\.NumGoroutine.*scheduler`
}

func globalRand(c *Counters) {
	c.Add(rand.Int63()) // want `global math/rand`
}

// --- laundering through a helper return value -------------------------------

// stamp launders the wall clock through a return value; its summary carries
// the source chain.
func stamp() int64 {
	return time.Now().UnixNano()
}

func laundered(c *Counters) {
	c.Add(stamp()) // want `flows into \(\*a\.Counters\)\.Add.*time\.Now.*returned by a\.stamp`
}

// Two levels: the chain threads both helpers.
func restamp() int64 { return stamp() }

func laundered2(c *Counters) {
	c.Add(restamp()) // want `time\.Now.*returned by a\.restamp`
}

// --- laundering through a struct field --------------------------------------

type result struct {
	cycles int64
	when   int64
}

func fielded(c *Counters) {
	r := result{when: stamp()}
	c.Add(r.when) // want `time\.Now`
}

// --- parameter sinks: the sink is inside the callee -------------------------

// sinkParam's summary says "param 1 reaches (*a.Counters).Add".
func sinkParam(c *Counters, v int64) {
	c.Add(v)
}

func callsSinkParam(c *Counters) {
	sinkParam(c, stamp()) // want `time\.Now.*call a\.sinkParam`
}

// Passing a clean value through the same parameter sink is fine.
func callsSinkParamClean(c *Counters, v int64) {
	sinkParam(c, v)
}

// --- map iteration order ----------------------------------------------------

func mapOrder(c *Counters, m map[int]int64) {
	var last int64
	for _, v := range m {
		last = v
	}
	c.Add(last) // want `map iteration order`
}

// --- sink functions ---------------------------------------------------------

func goodKey(n int64) int64 {
	return Key(n, 7)
}

func badKey() int64 {
	return Key(time.Now().UnixNano()) // want `flows into a\.Key.*time\.Now`
}

// --- keyed map rebuild ------------------------------------------------------

// Copying a map into another map under the iteration key is the same
// container whatever the order: the rebuild idiom stops map-order taint.
func rebuild(c *Counters, src map[int]int64) {
	dst := make(map[int]int64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	c.Add(dst[0])
}

// The exemption is only about iteration ORDER: a wall-clock value stored
// under a map key still taints the container.
func rebuildStamped(c *Counters, src map[int]int64) {
	dst := make(map[int]int64, len(src))
	for k := range src {
		dst[k] = time.Now().UnixNano()
	}
	c.Add(dst[0]) // want `non-deterministic value flows into \(\*a\.Counters\)\.Add.*time\.Now`
}
