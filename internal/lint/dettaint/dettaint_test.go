package dettaint_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/dettaint"
)

func TestDetTaint(t *testing.T) {
	defer func(pkgs []string, st, sf string) {
		dettaint.Packages, dettaint.SinkTypes, dettaint.SinkFuncs = pkgs, st, sf
	}(dettaint.Packages, dettaint.SinkTypes, dettaint.SinkFuncs)
	dettaint.Packages = []string{"a"}
	dettaint.SinkTypes = "Counters"
	dettaint.SinkFuncs = "a.Key"

	analysistest.Run(t, analysistest.TestData(), dettaint.Analyzer, "a")
}
