package panicboundary_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/panicboundary"
)

func TestPanicBoundary(t *testing.T) {
	// Corpus "a" declares boundaries: annotated entry points must really
	// recover, and every goroutine must start inside one.
	analysistest.Run(t, analysistest.TestData(), panicboundary.Analyzer, "a")

	// Negative control: a package with goroutines but no annotations is out
	// of scope and must produce no diagnostics.
	analysistest.Run(t, analysistest.TestData(), panicboundary.Analyzer, "optout")
}
