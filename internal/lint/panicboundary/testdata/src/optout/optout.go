// A package with goroutines but no //simlint:panicboundary annotation: the
// rule does not apply — batch harnesses crash loudly by design, and only
// packages that declare boundaries are held to them.
package optout

import "sync"

func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = i * i
		}()
	}
	wg.Wait()
}
