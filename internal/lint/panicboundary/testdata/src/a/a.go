// Corpus for the panicboundary analyzer: the package declares boundaries,
// so every goroutine must start in one.
package a

import "sync"

// worker is a proper boundary: the leading defers include a call to a
// same-package function whose body recovers.
//
//simlint:panicboundary
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	defer backstop()
	work()
}

// backstop absorbs a session's panic.
func backstop() {
	if r := recover(); r != nil {
		_ = r
	}
}

// pool carries the method form of a boundary.
type pool struct{ panics int }

//simlint:panicboundary
func (p *pool) run() {
	defer p.absorb()
	work()
}

func (p *pool) absorb() {
	if recover() != nil {
		p.panics++
	}
}

// bad promises a boundary but never installs recover.
//
//simlint:panicboundary
func bad() { // want `does not install recover`
	work()
}

// lateRecover installs the backstop only after real work has begun: a panic
// in the first call escapes, so the leading-prefix rule rejects it.
//
//simlint:panicboundary
func lateRecover() { // want `does not install recover`
	work()
	defer backstop()
}

// nonRecoveringDefers has leading defers, none of which recover.
//
//simlint:panicboundary
func nonRecoveringDefers(wg *sync.WaitGroup) { // want `does not install recover`
	defer wg.Done()
	work()
}

func work() {}

func launch(p *pool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg) // boundary by annotation
	go p.run()     // method boundary by annotation
	go work()      // want `outside a panic boundary`
	go func() {    // literal installing recover directly
		defer func() { _ = recover() }()
		work()
	}()
	go func() { // literal deferring a recovering same-package helper
		defer backstop()
		work()
	}()
	go func() { // want `outside a panic boundary`
		work()
	}()
	go func() { // want `outside a panic boundary`
		defer wg.Done() // leading defer, but nothing recovers
		work()
	}()
	f := work
	go f() // want `outside a panic boundary`
}
