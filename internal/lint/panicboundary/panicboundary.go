// Package panicboundary enforces the service layer's panic-quarantine
// contract: in a package that declares panic boundaries (one or more
// functions annotated //simlint:panicboundary), every goroutine must start
// inside one. A panic escaping a goroutine kills the whole process — for the
// simulator service that means one poisoned session taking down every other
// in-flight request — so goroutine entry points must install recover before
// doing any work.
//
// The rule is opt-in per package: a package with no //simlint:panicboundary
// annotation is out of scope (batch harnesses crash loudly by design; only
// long-running services quarantine). In an opted-in package every `go`
// statement must launch either
//
//   - a same-package function or method annotated //simlint:panicboundary, or
//   - a function literal that installs recover in its leading defer prefix:
//     one of the defers at the top of the body, before any other statement,
//     is a literal calling recover() or a call to a same-package function
//     whose body calls recover().
//
// Each annotated function is held to the same bar: its leading defer prefix
// must install recover, otherwise the annotation is a lie. "Leading" is the
// point — a defer placed after real work has begun leaves a window where a
// panic escapes the boundary.
//
// A justified exception needs //simlint:ignore panicboundary <reason>.
package panicboundary

import (
	"go/ast"
	"go/types"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "panicboundary",
	Doc: "in packages declaring //simlint:panicboundary functions, every goroutine " +
		"must start in one (or in a literal that installs recover in its leading defers)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	decls := collectDecls(pass)
	boundaries := map[types.Object]bool{}
	for obj, fd := range decls {
		if directive.Has(directive.Func(fd), "panicboundary") {
			boundaries[obj] = true
		}
	}
	if len(boundaries) == 0 {
		return nil, nil // package has no boundaries: out of scope
	}

	// Every annotated function must really install recover up front.
	for obj, fd := range decls {
		if !boundaries[obj] || fd.Body == nil {
			continue
		}
		if !installsRecover(pass, decls, fd.Body) {
			pass.Reportf(fd.Name.Pos(),
				"//simlint:panicboundary function %s does not install recover in its leading defers: "+
					"the annotation promises a panic cannot escape this entry point", fd.Name.Name)
		}
	}

	analysis.Preorder(pass.Files, func(n ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			if !installsRecover(pass, decls, lit.Body) {
				pass.Reportf(g.Pos(),
					"goroutine starts outside a panic boundary: install recover in the literal's "+
						"leading defers or launch a //simlint:panicboundary function "+
						"(or justify with //simlint:ignore panicboundary <reason>)")
			}
			return
		}
		fn := analysis.Callee(pass.TypesInfo, g.Call)
		if fn == nil || fn.Pkg() != pass.Pkg || !boundaries[fn] {
			pass.Reportf(g.Pos(),
				"goroutine starts outside a panic boundary: launch a //simlint:panicboundary "+
					"function of this package "+
					"(or justify with //simlint:ignore panicboundary <reason>)")
		}
	})
	return nil, nil
}

// collectDecls maps every function/method object declared in the package to
// its declaration.
func collectDecls(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// installsRecover reports whether the body's leading defer prefix — the run
// of DeferStmts before any other statement — installs a recover: a deferred
// literal calling recover(), or a deferred call to a same-package function
// whose body calls recover().
func installsRecover(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		ds, ok := st.(*ast.DeferStmt)
		if !ok {
			return false // prefix over: recover installed too late or never
		}
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			if callsRecover(pass, lit.Body) {
				return true
			}
			continue
		}
		if fn := analysis.Callee(pass.TypesInfo, ds.Call); fn != nil && fn.Pkg() == pass.Pkg {
			if fd := decls[fn]; fd != nil && fd.Body != nil && callsRecover(pass, fd.Body) {
				return true
			}
		}
	}
	return false
}

// callsRecover reports whether the node contains a call to the recover
// builtin.
func callsRecover(pass *analysis.Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
