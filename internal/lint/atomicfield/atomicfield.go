// Package atomicfield enforces the simulator's published-word contract:
// struct fields annotated //simlint:atomic (the CAS-published MESI
// line-state words, for example) are racily shared between the owning
// context's goroutine and peer bus transactions, so every touch must go
// through sync/atomic. A plain read or write of an annotated field is an
// error: mixed plain/atomic access is exactly the bug class the annotation
// exists to keep out, because it compiles, passes most runs, and corrupts
// coherence state only under contention.
//
// Allowed accesses:
//
//   - &f (or &f[i] for slice fields) passed directly to a sync/atomic call;
//   - len(f), cap(f);
//   - `for i := range f` with no value variable (length-only iteration);
//   - keyed struct-literal initialisation (the struct is unpublished while
//     it is being built).
//
// Anything else — including a deliberate mutex-protected plain read — needs
// a //simlint:ignore atomicfield <reason>.
//
// The annotation is package-local by design: annotated fields should be
// unexported, so all their accesses type-check in the declaring package.
package atomicfield

import (
	"go/ast"
	"go/types"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "fields annotated //simlint:atomic may only be accessed through sync/atomic; " +
		"mixed plain/atomic access is an error",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	annotated := collect(pass)
	if len(annotated) == 0 {
		return nil, nil
	}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || !annotated[obj] {
			return true
		}
		if !allowed(pass, stack) {
			pass.Reportf(sel.Pos(),
				"plain access to %s, which is marked //simlint:atomic: use sync/atomic (or justify with //simlint:ignore atomicfield <reason>)",
				obj.Name())
		}
		return true
	})
	return nil, nil
}

// collect gathers the *types.Var objects of every //simlint:atomic field
// declared in this package.
func collect(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	analysis.Preorder(pass.Files, func(n ast.Node) {
		st, ok := n.(*ast.StructType)
		if !ok {
			return
		}
		for _, f := range st.Fields.List {
			if !directive.Has(directive.Field(f), "atomic") {
				continue
			}
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	})
	return out
}

// allowed inspects the ancestor chain of the matched selector (the last
// stack entry) and accepts the atomic-access shapes listed in the package
// doc.
func allowed(pass *analysis.Pass, stack []ast.Node) bool {
	i := len(stack) - 1 // stack[i] is the SelectorExpr itself
	parent := func(k int) ast.Node {
		if i-k < 0 {
			return nil
		}
		return stack[i-k]
	}

	// Struct-literal key: `cacheFields{states: ...}`. The key ident of a
	// KeyValueExpr resolves to the field object, and its parent chain is
	// CompositeLit → KeyValueExpr. Only the key position is sanctioned: the
	// value side of `other{f: src.state}` is a plain read like any other.
	// (A SelectorExpr never is a literal key, so the key arm only matters
	// for the Ident fallback — kept for clarity.)
	if kv, ok := parent(1).(*ast.KeyValueExpr); ok {
		if _, ok := parent(2).(*ast.CompositeLit); ok {
			return kv.Key == stack[i]
		}
	}

	n := 1
	// Step over an index expression on slice/array fields: &f[i].
	if ix, ok := parent(n).(*ast.IndexExpr); ok && ix.X == stack[i] {
		n++
	}

	switch p := parent(n).(type) {
	case *ast.UnaryExpr:
		// &f or &f[i]: fine exactly when the address feeds sync/atomic.
		if p.Op.String() != "&" {
			return false
		}
		call, ok := parent(n + 1).(*ast.CallExpr)
		return ok && isAtomicCall(pass, call)
	case *ast.CallExpr:
		// len(f) / cap(f) read only the header.
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				return b.Name() == "len" || b.Name() == "cap"
			}
		}
		return false
	case *ast.RangeStmt:
		// `for i := range f`: length-only; a value variable would read
		// elements plainly.
		return p.X == stack[i-n+1] && p.Value == nil
	}
	return false
}

func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
