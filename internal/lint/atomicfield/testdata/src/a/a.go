// Corpus for the atomicfield analyzer: the annotated state word and state
// slice mirror the simulator's CAS-published MESI line states.
package a

import "sync/atomic"

type line struct {
	state uint32 //simlint:atomic
	tag   uint64 // unannotated: plain access is fine
}

type table struct {
	states []uint32 //simlint:atomic
	tags   []uint64
}

// Every sync/atomic shape is sanctioned.
func atomics(l *line, t *table, i int) uint32 {
	s := atomic.LoadUint32(&l.state)
	atomic.StoreUint32(&l.state, 1)
	s += atomic.AddUint32(&t.states[i], 1)
	atomic.CompareAndSwapUint32(&l.state, 0, 1)
	atomic.SwapUint32(&t.states[i], 2)
	return s
}

// Header-only reads and length-only iteration never touch the elements.
func headers(t *table) int {
	n := len(t.states) + cap(t.states)
	for i := range t.states {
		n += i
	}
	for range t.states {
		n++
	}
	return n
}

// Keyed struct-literal initialisation happens before the value is
// published.
func build(n int) *table {
	return &table{states: make([]uint32, n), tags: make([]uint64, n)}
}

// Unannotated neighbours stay unrestricted.
func neighbours(l *line, t *table, i int) uint64 {
	l.tag = 7
	t.tags[i] = l.tag
	return t.tags[i]
}

// Plain reads and writes of annotated fields are the bug class.
func plainWrite(l *line) {
	l.state = 1 // want `plain access to state`
}

func plainRead(l *line) uint32 {
	return l.state // want `plain access to state`
}

func plainIndex(t *table, i int) uint32 {
	t.states[i] = 1    // want `plain access to states`
	return t.states[i] // want `plain access to states`
}

// A value-capturing range reads every element plainly.
func rangeValues(t *table) uint32 {
	var s uint32
	for _, v := range t.states { // want `plain access to states`
		s += v
	}
	return s
}

// Taking the address for anything but sync/atomic leaks the word to
// unchecked code.
func escape(l *line, f func(*uint32)) {
	f(&l.state) // want `plain access to state`
}

// The snapshot layer's forked-counter shape: a fork must copy a peer's
// atomic words via Load/Store pairs (bus shard generations, shootdown
// flags), never by plain assignment — a struct copy of the containing
// value would smuggle the word across without a fence.
type forkedFlag struct {
	armed uint64 //simlint:atomic
	owner int
}

func forkFlag(src *forkedFlag) *forkedFlag {
	dst := &forkedFlag{owner: src.owner}
	atomic.StoreUint64(&dst.armed, atomic.LoadUint64(&src.armed))
	return dst
}

func forkFlagPlain(src *forkedFlag) *forkedFlag {
	return &forkedFlag{armed: src.armed, owner: src.owner} // want `plain access to armed`
}
