package atomicfield_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "a")
}
