// Package callgraph builds a type-resolved static call graph over one
// package, the substrate of simlint's interprocedural analyzers (lockorder,
// dettaint, ctxflow).
//
// Resolution is CHA-style (class-hierarchy analysis): direct calls resolve
// through the type checker to their *types.Func; calls through an interface
// method fan out to that method on every concrete named type — declared in
// this package or in a directly imported one — whose method set implements
// the interface. That is exactly strong enough for the simulator's
// interfaces (npb.Kernel, the cache/bus wiring), which are closed sets of
// in-module implementations. Calls through function-typed values produce no
// edge; analyzers treat their effects conservatively at the few places it
// matters (documented per analyzer).
//
// Calls inside a function literal are attributed to the enclosing declared
// function (with Edge.InLit set): the simulator's literals are worksharing
// bodies invoked synchronously by the runtime, so folding them into the
// parent's summary is the conservative direction for every client analysis.
package callgraph

import (
	"go/ast"
	"go/types"

	"hugeomp/internal/lint/analysis"
)

// A Node is one function declared in the package under analysis.
type Node struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []Edge
}

// An Edge is one resolved call site.
type Edge struct {
	Callee *types.Func   // resolved target; may belong to another package
	Site   *ast.CallExpr // the call expression
	InLit  bool          // the call occurs inside a func literal of the caller
	Iface  *types.Func   // the abstract method, when resolved by CHA; else nil
}

// A Graph holds the package's nodes in declaration order.
type Graph struct {
	Pkg   *types.Package
	nodes map[*types.Func]*Node
	order []*Node
}

// Node returns the graph node for fn, or nil if fn is not declared (with a
// body) in this package.
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Funcs returns every node in source declaration order.
func (g *Graph) Funcs() []*Node { return g.order }

// Build constructs the call graph for the package in pass.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{Pkg: pass.Pkg, nodes: make(map[*types.Func]*Node)}
	cands := concreteTypes(pass.Pkg)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := &Node{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					// Everything inside the literal (including nested
					// literals) is attributed to the caller with InLit set.
					ast.Inspect(x.Body, func(y ast.Node) bool {
						if call, ok := y.(*ast.CallExpr); ok {
							n.addCall(pass, cands, call, true)
						}
						return true
					})
					return false
				case *ast.CallExpr:
					n.addCall(pass, cands, x, false)
				}
				return true
			})
			g.nodes[fn] = n
			g.order = append(g.order, n)
		}
	}
	return g
}

// addCall resolves one call site into zero or more edges.
func (n *Node) addCall(pass *analysis.Pass, cands []types.Type, call *ast.CallExpr, inLit bool) {
	for _, target := range ResolveCall(pass, cands, call) {
		e := Edge{Callee: target.Fn, Site: call, InLit: inLit, Iface: target.Iface}
		n.Calls = append(n.Calls, e)
	}
}

// A Target is one possible callee of a call site.
type Target struct {
	Fn    *types.Func
	Iface *types.Func // non-nil when Fn was found by CHA under this abstract method
}

// ResolveCall returns the possible static targets of a call expression:
// the checked callee for direct calls, or the CHA expansion for interface
// method calls over the candidate concrete types. Builtins, conversions and
// function-value calls resolve to nothing.
func ResolveCall(pass *analysis.Pass, cands []types.Type, call *ast.CallExpr) []Target {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	recv := sig.Recv()
	if recv == nil || !types.IsInterface(recv.Type()) {
		return []Target{{Fn: fn}}
	}
	// Interface method: fan out to every candidate implementation.
	iface, _ := recv.Type().Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}
	var out []Target
	for _, t := range cands {
		impl := t
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(t)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, fn.Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			out = append(out, Target{Fn: m, Iface: fn})
		}
	}
	return out
}

// Candidates returns the concrete named types visible to the package (its
// own scope plus directly imported packages), the CHA universe for
// interface call resolution.
func Candidates(pkg *types.Package) []types.Type { return concreteTypes(pkg) }

func concreteTypes(pkg *types.Package) []types.Type {
	var out []types.Type
	collect := func(p *types.Package) {
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			out = append(out, named)
		}
	}
	collect(pkg)
	for _, imp := range pkg.Imports() {
		collect(imp)
	}
	return out
}

// SCCs returns the strongly connected components of the intra-package call
// graph in callee-first (reverse topological) order: by the time a
// component is visited, every component it calls into has already been
// emitted. Tarjan's algorithm yields exactly this order.
func (g *Graph) SCCs() [][]*Node {
	type vstate struct {
		index, low int
		onStack    bool
	}
	state := make(map[*Node]*vstate, len(g.order))
	var stack []*Node
	var sccs [][]*Node
	next := 0

	var strong func(n *Node)
	strong = func(n *Node) {
		st := &vstate{index: next, low: next}
		next++
		state[n] = st
		stack = append(stack, n)
		st.onStack = true
		for _, e := range n.Calls {
			m := g.nodes[e.Callee]
			if m == nil {
				continue // external callee: not part of this graph
			}
			ms, seen := state[m]
			if !seen {
				strong(m)
				if ml := state[m].low; ml < st.low {
					st.low = ml
				}
			} else if ms.onStack && ms.index < st.low {
				st.low = ms.index
			}
		}
		if st.low == st.index {
			var scc []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				state[m].onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range g.order {
		if _, seen := state[n]; !seen {
			strong(n)
		}
	}
	return sccs
}
