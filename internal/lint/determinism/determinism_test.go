package determinism_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	defer func(old []string) { determinism.Packages = old }(determinism.Packages)
	determinism.Packages = []string{"a"}

	// Corpus "a" holds one true positive and one true negative per rule.
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "a")

	// A package outside the simulator set is exempt even though it reads
	// the wall clock (the bench harness does, on purpose).
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "outofscope")
}
