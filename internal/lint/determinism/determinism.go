// Package determinism enforces the simulator's bit-determinism contract:
// same seed → identical counters. In the simulator packages it forbids the
// three classic sources of run-to-run variation:
//
//  1. wall-clock reads (time.Now and friends) — simulated time comes from
//     the cost model, never from the host;
//  2. the global math/rand generators — randomness must flow from a seeded
//     *rand.Rand owned by the run so replays are exact;
//  3. scheduler/host-state queries (runtime.NumGoroutine and friends) —
//     thread counts come from the simulated machine config;
//  4. iteration over a map in an order-sensitive way. A map range is allowed
//     only when the loop provably feeds an order-insensitive sink (integer
//     accumulation, min/max folds, writes keyed by the iteration key,
//     delete) or the collect-then-sort idiom (append into a slice that is
//     sorted later in the same function).
//
// Floating-point accumulation across a map range is flagged even though it
// "only" perturbs low bits: FP addition does not commute, and the NPB
// verification thresholds assume bit-identical replays.
//
// The source-call table is shared with the interprocedural dettaint
// analyzer (dettaint.SourceCall): determinism flags the direct call sites,
// dettaint follows laundered values across functions into the sinks.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/dettaint"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and order-sensitive map iteration " +
		"in the simulator packages (bit-determinism contract)",
	Run: run,
}

// Packages limits the analyzer to the packages whose determinism the replay
// and audit machinery depends on. An entry matches a package whose import
// path equals it or ends with "/"+it. The driver exposes it as
// -determinism.packages.
var Packages = []string{
	"internal/cache",
	"internal/machine",
	"internal/tlb",
	"internal/pagetable",
	"internal/omp",
	"internal/profile",
	"internal/stats",
	"internal/check",
	"internal/npb",
}

func inScope(path string) bool {
	for _, p := range Packages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					checkMapRange(pass, n, enclosingBody(stack))
				}
			}
		}
		return true
	})
	return nil, nil
}

// enclosingBody returns the body of the innermost function (decl or literal)
// on the stack, for locating sort calls that follow a map range.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// checkCall flags direct source calls in simulator packages, using the
// source table shared with the interprocedural dettaint analyzer so the two
// passes can never disagree about what a source is.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	kind, _, ok := dettaint.SourceCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	switch kind {
	case dettaint.WallClock:
		pass.Reportf(call.Pos(),
			"wall-clock read time.%s in a simulator package: simulated time must come from the cost model, not the host clock", fn.Name())
	case dettaint.GlobalRand:
		pass.Reportf(call.Pos(),
			"global %s.%s in a simulator package: use a seeded *rand.Rand owned by the run so replays are bit-identical", fn.Pkg().Name(), fn.Name())
	case dettaint.SchedQuery:
		pass.Reportf(call.Pos(),
			"scheduler/host-state read runtime.%s in a simulator package: thread counts come from the simulated machine config, not the host", fn.Name())
	}
}

// mapLoop analyses one `for ... range m` over a map for order sensitivity.
type mapLoop struct {
	pass     *analysis.Pass
	rs       *ast.RangeStmt
	funcBody *ast.BlockStmt
	// locals are objects declared inside the loop (including the key and
	// value variables): writes to them have no effect outside an iteration.
	locals map[types.Object]bool
	// appends records `s = append(s, x)` statements whose target s is
	// declared outside the loop; they are deterministic only if s is sorted
	// after the loop (collect-then-sort idiom).
	appends []appendTo
}

type appendTo struct {
	target types.Object
	pos    token.Pos
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ml := &mapLoop{pass: pass, rs: rs, funcBody: funcBody, locals: map[types.Object]bool{}}
	ml.declare(rs.Key)
	ml.declare(rs.Value)
	// Pre-collect every object declared anywhere inside the loop body, so a
	// write to an iteration-scoped variable is never mistaken for a write
	// that survives the loop.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				ml.locals[obj] = true
			}
		}
		return true
	})
	ml.stmts(rs.Body.List)
	ml.checkAppends()
}

func (ml *mapLoop) declare(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		if obj := ml.pass.TypesInfo.Defs[id]; obj != nil {
			ml.locals[obj] = true
		}
	}
}

func (ml *mapLoop) report(n ast.Node, format string, args ...any) {
	ml.pass.Reportf(n.Pos(), "map iteration order reaches an order-sensitive sink: %s (sort the keys first, or restructure; see docs/LINTING.md)",
		fmt.Sprintf(format, args...))
}

func (ml *mapLoop) stmts(list []ast.Stmt) {
	for _, s := range list {
		ml.stmt(s)
	}
}

// stmt checks one statement of the loop body for order sensitivity.
func (ml *mapLoop) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		ml.assign(s)
	case *ast.IncDecStmt:
		// x++ / x-- commute when x is an integer.
		if !ml.isInteger(s.X) {
			ml.report(s, "non-integer %s of %s", s.Tok, render(s.X))
		}
	case *ast.DeclStmt:
		gd, _ := s.Decl.(*ast.GenDecl)
		if gd != nil {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ml.expr(v)
					}
				}
			}
		}
	case *ast.IfStmt:
		ml.ifStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ml.stmt(s.Init)
		}
		if s.Tag != nil {
			ml.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				ml.expr(e)
			}
			ml.stmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ml.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			ml.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ml.stmt(s.Init)
		}
		if s.Cond != nil {
			ml.expr(s.Cond)
		}
		if s.Post != nil {
			ml.stmt(s.Post)
		}
		ml.stmts(s.Body.List)
	case *ast.RangeStmt:
		ml.declare(s.Key)
		ml.declare(s.Value)
		ml.expr(s.X)
		ml.stmts(s.Body.List)
	case *ast.BlockStmt:
		ml.stmts(s.List)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if ok && isBuiltin(ml.pass.TypesInfo, call, "delete") {
			for _, a := range call.Args {
				ml.expr(a)
			}
			return // delete(m2, k) commutes across distinct keys
		}
		ml.report(s, "statement with side effects (%s)", render(s.X))
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return
		}
		ml.report(s, "%s makes the set of processed entries depend on iteration order", s.Tok)
	case *ast.ReturnStmt:
		ml.report(s, "return inside a map range exits on an order-dependent entry")
	case *ast.EmptyStmt:
	default:
		ml.report(s, "unsupported statement kind %T", s)
	}
}

// ifStmt allows pure conditions over order-insensitive branches, plus the
// min/max fold idiom `if x > acc { acc = x }` (the assigned accumulator must
// itself appear in the comparison).
func (ml *mapLoop) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		ml.stmt(s.Init)
	}
	ml.expr(s.Cond)
	if as, target, ok := singleAssign(s.Body); ok && !ml.isLocalExpr(target) {
		if comparesAgainst(s.Cond, target) && ml.pure(as.Rhs[0]) {
			// min/max fold: order-insensitive by construction.
			if s.Else != nil {
				ml.stmt(s.Else)
			}
			return
		}
	}
	ml.stmts(s.Body.List)
	if s.Else != nil {
		ml.stmt(s.Else)
	}
}

// assign classifies one assignment.
func (ml *mapLoop) assign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		ml.expr(rhs)
	}
	// Op-assignments: integer accumulation commutes; float/string do not.
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN,
		token.SUB_ASSIGN, token.MUL_ASSIGN:
		lhs := s.Lhs[0]
		if ml.isLocalExpr(lhs) {
			return
		}
		if !ml.isInteger(lhs) {
			ml.report(s, "%s on non-integer %s does not commute (float/string accumulation is order-sensitive)", s.Tok, render(lhs))
		}
		return
	default:
		lhs := s.Lhs[0]
		if !ml.isLocalExpr(lhs) {
			ml.report(s, "%s on %s outside the loop", s.Tok, render(lhs))
		}
		return
	}
	for i, lhs := range s.Lhs {
		if ml.isLocalExpr(lhs) {
			continue // writes to iteration-scoped state don't escape
		}
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			// m2[k] = v / s[k] = v: distinct keys target distinct cells.
			ml.expr(l.X)
			ml.expr(l.Index)
			continue
		}
		// `s = append(s, x)` collecting into an outer slice: legal only as
		// the collect-then-sort idiom, judged after the loop.
		if i < len(s.Rhs) {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isBuiltin(ml.pass.TypesInfo, call, "append") {
				if obj := ml.objOf(lhs); obj != nil && sameObj(ml.pass.TypesInfo, call.Args[0], obj) {
					ml.appends = append(ml.appends, appendTo{target: obj, pos: s.Pos()})
					continue
				}
			}
		}
		ml.report(s, "assignment to %s outside the loop (only op-assign accumulation, keyed writes, or append-then-sort are order-insensitive)", render(lhs))
	}
}

// checkAppends verifies the collect-then-sort idiom: every slice appended to
// from inside the loop must be passed to a sort.* or slices.Sort* call after
// the loop, in the same function.
func (ml *mapLoop) checkAppends() {
	for _, ap := range ml.appends {
		if !ml.sortedAfterLoop(ap.target) {
			ml.pass.Reportf(ap.pos,
				"map iteration appends to %q without sorting it afterwards: the slice order is the map order (sort it after the loop, or iterate sorted keys)",
				ap.target.Name())
		}
	}
}

func (ml *mapLoop) sortedAfterLoop(obj types.Object) bool {
	if ml.funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(ml.funcBody, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < ml.rs.End() {
			return true
		}
		fn := analysis.Callee(ml.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, a := range call.Args {
			if sameObj(ml.pass.TypesInfo, a, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// expr flags order-sensitive sub-expressions: any call that is not a pure
// builtin or conversion may observe or effect state in iteration order.
func (ml *mapLoop) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if ml.pureCall(n) {
				return true
			}
			ml.report(n, "call %s inside a map range (calls may observe iteration order)", render(n.Fun))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ml.report(n, "channel receive inside a map range")
				return false
			}
		case *ast.FuncLit:
			return false // a declaration alone has no effect
		}
		return true
	})
}

// pure reports whether e contains no impure calls.
func (ml *mapLoop) pure(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall && !ml.pureCall(call) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"make": true, "new": true, "append": true, "copy": true, "delete": true,
}

// pureCall accepts pure builtins and type conversions.
func (ml *mapLoop) pureCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := ml.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return pureBuiltins[obj.Name()]
		}
	}
	// Type conversion?
	if tv, ok := ml.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// isLocalExpr reports whether the root object of an lvalue is loop-local.
func (ml *mapLoop) isLocalExpr(e ast.Expr) bool {
	obj := ml.objOf(e)
	return obj != nil && ml.locals[obj]
}

// objOf resolves the root object of an lvalue (x, x.f, x[i] → x).
func (ml *mapLoop) objOf(e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return ml.pass.TypesInfo.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func (ml *mapLoop) isInteger(e ast.Expr) bool {
	t := ml.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// singleAssign matches a block containing exactly one plain assignment and
// returns it with its target.
func singleAssign(b *ast.BlockStmt) (*ast.AssignStmt, ast.Expr, bool) {
	if len(b.List) != 1 {
		return nil, nil, false
	}
	as, ok := b.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil, false
	}
	return as, as.Lhs[0], true
}

// comparesAgainst reports whether cond contains an ordered comparison with
// target as one operand (textually).
func comparesAgainst(cond ast.Expr, target ast.Expr) bool {
	want := render(target)
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok {
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				if render(be.X) == want || render(be.Y) == want {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// render prints a small expression for diagnostics and structural equality.
func render(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return render(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return render(v.X) + "[" + render(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + render(v.X)
	case *ast.CallExpr:
		return render(v.Fun) + "(...)"
	case *ast.BasicLit:
		return v.Value
	case *ast.BinaryExpr:
		return render(v.X) + v.Op.String() + render(v.Y)
	case *ast.UnaryExpr:
		return v.Op.String() + render(v.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// sameObj reports whether expr is a bare identifier denoting obj.
func sameObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}
