// Corpus for the determinism analyzer: true positives.
package a

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

func clocks() time.Duration {
	t := time.Now()      // want `wall-clock read time\.Now`
	return time.Since(t) // want `wall-clock read time\.Since`
}

func globalRand() int64 {
	return rand.Int63() // want `global rand\.Int63`
}

func schedState() int {
	return runtime.NumGoroutine() // want `scheduler/host-state read runtime\.NumGoroutine`
}

// Seeded generators are deterministic given the seed: constructors are not
// sources, and draws from an owned *rand.Rand are the sanctioned shape.
func seededLocal() int64 {
	rng := rand.New(rand.NewSource(7))
	return rng.Int63()
}

func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `does not commute`
	}
	return sum
}

func unsortedKeys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `without sorting it afterwards`
	}
	return keys
}

func earlyReturn(m map[int]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("bad %d", k) // want `order-dependent entry`
		}
	}
	return nil
}

func sideEffects(m map[int]int, sink func(int)) {
	for k := range m {
		sink(k) // want `statement with side effects`
	}
}

func anyKey(m map[int]int) int {
	for k := range m {
		return k // want `order-dependent entry`
	}
	return -1
}

func breakOut(m map[int]int, stop int) int {
	n := 0
	for k := range m {
		if k == stop {
			break // want `depend on iteration order`
		}
		n++
	}
	return n
}

func stringConcat(m map[int]string) string {
	var s string
	for _, v := range m {
		s += v // want `does not commute`
	}
	return s
}

func plainOverwrite(m map[int]int) int {
	last := 0
	for k := range m {
		last = k // want `assignment to last outside the loop`
	}
	return last
}
