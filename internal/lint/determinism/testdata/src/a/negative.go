// Corpus for the determinism analyzer: true negatives — the documented
// order-insensitive sinks and sorted-key idioms must not be flagged.
package a

import (
	"math/rand"
	"sort"
	"time"
)

// A seeded generator owned by the caller is the sanctioned randomness.
func seeded(r *rand.Rand) int64 { return r.Int63() }

// Pure duration arithmetic reads no clock.
func scale(d time.Duration) time.Duration { return 2 * d }

// Collect-then-sort: the canonical sorted-key iteration.
func sortedKeys(m map[int]uint64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Tid-ordered merge: sorted keys drive a deterministic second pass.
func tidOrderedMerge(byTid map[int]uint64) []uint64 {
	tids := make([]int, 0, len(byTid))
	for tid := range byTid {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	out := make([]uint64, 0, len(tids))
	for _, tid := range tids {
		out = append(out, byTid[tid])
	}
	return out
}

// Integer accumulation, keyed writes, min/max folds and counters all
// commute across iteration order.
func folds(m map[int]uint64) (uint64, uint64, int) {
	var total, maxv uint64
	n := 0
	hist := map[int]uint64{}
	for k, v := range m {
		total += v
		hist[k] = v
		if v > maxv {
			maxv = v
		}
		n++
	}
	return total, maxv, n
}

// Loop-local scratch state may do anything; only escaping writes matter.
func locals(m map[int]uint64, floor uint64) uint64 {
	var peak uint64
	for _, v := range m {
		t := v
		if t < floor {
			t = floor
		}
		if t > peak {
			peak = t
		}
	}
	return peak
}

// delete with the iteration key commutes across distinct keys.
func drain(done map[int]bool, pending map[int]int) {
	for k := range done {
		delete(pending, k)
	}
}

// Sorting through sort.Slice after collecting values is the report path's
// idiom (the comparator must break ties deterministically — reviewed, not
// machine-checked).
func collectSorted(m map[string]uint64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Struct-field counters behind a map lookup commute (integer increments).
func fieldCounters(snap map[uint64]int, agg map[uint64]*struct{ a, b int }) {
	for line, st := range snap {
		o := agg[line]
		if o == nil {
			o = &struct{ a, b int }{}
			agg[line] = o
		}
		switch st {
		case 0:
			o.a++
		default:
			o.b++
		}
	}
}
