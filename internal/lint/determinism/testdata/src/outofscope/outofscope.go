// A package outside the configured simulator set: the determinism contract
// does not apply (the bench harness reads the host clock on purpose).
package outofscope

import "time"

func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
