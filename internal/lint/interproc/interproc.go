// Package interproc is the shared fixpoint engine of simlint's
// interprocedural analyzers. An analyzer describes a per-function summary
// domain (any JSON-serializable type) and a transfer function; the engine
// solves the package bottom-up over the strongly connected components of
// its call graph, iterating each SCC to a fixpoint so mutual recursion
// converges, and bridges package boundaries through the pass's FactStore:
// summaries of dependency packages are looked up as facts, and the solved
// summaries are exported as facts for downstream packages.
//
// The domains used by the simlint analyzers are finite (sets of lock
// classes, parameter bitmasks, booleans with bounded chains), and transfer
// functions are monotone over them, so the fixpoint terminates; the engine
// additionally hard-caps SCC iteration at a generous round count as a
// defense against a non-monotone transfer bug.
package interproc

import (
	"go/types"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/callgraph"
)

// An Analysis describes one summary domain over functions.
type Analysis[S any] struct {
	// Facts namespaces this analysis's summaries in the FactStore;
	// conventionally the analyzer name.
	Facts string

	// Bottom returns the least summary for fn: the starting point of the
	// fixpoint and the fallback for unresolvable externals.
	Bottom func(fn *types.Func) S

	// External, if non-nil, supplies built-in summaries for functions with
	// no body in the package and no recorded fact (standard library,
	// runtime intrinsics). Returning ok=false falls back to Bottom.
	External func(fn *types.Func) (S, bool)

	// Transfer recomputes n's summary from its body, resolving callee
	// summaries through lookup. It must be monotone in the callee
	// summaries for the fixpoint to converge.
	Transfer func(n *callgraph.Node, lookup func(*types.Func) S) S

	// Equal reports whether two summaries are equal (fixpoint test).
	Equal func(a, b S) bool
}

// maxRounds bounds fixpoint iteration per SCC; the simulator's SCCs are
// tiny, so hitting this indicates a non-monotone transfer function.
const maxRounds = 64

// Solve computes the summary of every function declared in g and exports
// each to pass.Facts under a.Facts keyed by the function's FullName.
func Solve[S any](pass *analysis.Pass, g *callgraph.Graph, a *Analysis[S]) map[*types.Func]S {
	sum := make(map[*types.Func]S, len(g.Funcs()))
	lookup := func(fn *types.Func) S {
		if n := g.Node(fn); n != nil {
			if s, ok := sum[fn]; ok {
				return s
			}
			// Forward reference within the SCC being iterated (or a
			// not-yet-visited mutual-recursion partner): start from bottom.
			return a.Bottom(fn)
		}
		var s S
		if pass.Facts.Get(a.Facts, fn.FullName(), &s) {
			return s
		}
		if a.External != nil {
			if s, ok := a.External(fn); ok {
				return s
			}
		}
		return a.Bottom(fn)
	}

	for _, scc := range g.SCCs() {
		for _, n := range scc {
			sum[n.Fn] = a.Bottom(n.Fn)
		}
		for round := 0; round < maxRounds; round++ {
			changed := false
			for _, n := range scc {
				next := a.Transfer(n, lookup)
				if !a.Equal(sum[n.Fn], next) {
					sum[n.Fn] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	for _, n := range g.Funcs() {
		pass.Facts.Set(a.Facts, n.Fn.FullName(), sum[n.Fn])
	}
	return sum
}
