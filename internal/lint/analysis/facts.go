package analysis

import (
	"encoding/json"
	"sort"
	"strings"
)

// A FactStore carries serialized per-function summaries ("facts") across
// package boundaries, which is what turns the per-package analyzers into a
// whole-program analysis:
//
//   - In standalone mode the driver walks the module in dependency order
//     with one shared store, so by the time a package is analyzed every
//     summary of its dependencies is already present.
//   - In `go vet -vettool` mode each package runs in its own process; the
//     store is seeded from the .vetx fact files of the dependencies
//     (cfg.PackageVetx) and the merged store is written to cfg.VetxOutput.
//     cmd/go caches those files keyed by the package's export data, which is
//     what keeps the interprocedural analyzers incremental.
//
// Keys are "analyzer\x00name" where name is normally a *types.Func FullName
// (e.g. "(*hugeomp/internal/cache.Bus).AccessLines") but may be any string
// an analyzer chooses (lockorder uses a per-package "edges/<path>" fact for
// its acquisition graph). Values are JSON so the store is self-describing
// and diffable.
type FactStore struct {
	m map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]json.RawMessage)}
}

const factKeySep = "\x00"

// Get decodes the fact recorded under (analyzer, name) into out and reports
// whether one was present.
func (s *FactStore) Get(analyzer, name string, out any) bool {
	if s == nil {
		return false
	}
	raw, ok := s.m[analyzer+factKeySep+name]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Set records v as the fact for (analyzer, name), replacing any previous
// value.
func (s *FactStore) Set(analyzer, name string, v any) {
	if s == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		// Summaries are plain data structs; a marshal failure is an
		// analyzer bug, not an input condition.
		panic("lint/analysis: unmarshalable fact for " + analyzer + "/" + name + ": " + err.Error())
	}
	s.m[analyzer+factKeySep+name] = raw
}

// Range calls fn for every fact recorded under analyzer, in sorted name
// order (deterministic across runs and drivers).
func (s *FactStore) Range(analyzer string, fn func(name string, raw json.RawMessage)) {
	if s == nil {
		return
	}
	prefix := analyzer + factKeySep
	names := make([]string, 0, len(s.m))
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			names = append(names, strings.TrimPrefix(k, prefix))
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fn(name, s.m[prefix+name])
	}
}

// Encode serializes the whole store (imported and locally exported facts
// alike: downstream packages need the transitive closure, mirroring how
// x/tools fact files re-export imported facts).
func (s *FactStore) Encode() ([]byte, error) {
	if s == nil || len(s.m) == 0 {
		return nil, nil
	}
	// encoding/json sorts map keys, so the output is deterministic.
	return json.Marshal(s.m)
}

// MergeEncoded folds a blob produced by Encode into the store. Existing
// entries win: a package's own summaries are authoritative over re-exports.
func (s *FactStore) MergeEncoded(raw []byte) error {
	if len(raw) == 0 {
		return nil
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return err
	}
	for k, v := range m {
		if _, ok := s.m[k]; !ok {
			s.m[k] = v
		}
	}
	return nil
}
