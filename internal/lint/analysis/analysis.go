// Package analysis is a minimal, self-contained reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic) on
// the standard library alone. The container this repo builds in has no
// network and no x/tools module, so simlint carries its own framework; the
// API deliberately mirrors x/tools so the analyzers could be ported to the
// real framework by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, a doc string, and a Run function
// applied to one package at a time. Analyzers are package-local (no
// cross-package fact propagation): every simlint rule is checkable from a
// single package plus its type information.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//simlint:ignore <name> <reason>" suppressions.
	Name string

	// Doc is the one-paragraph description shown by `simlint help`.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// A Pass provides one package's syntax and types to an Analyzer's Run.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Facts carries serialized cross-package function summaries for the
	// interprocedural analyzers: summaries of dependency packages are read
	// from it and this package's summaries are written back. May be nil
	// (analysistest), in which case every external function gets its
	// analyzer's conservative default summary.
	Facts *FactStore

	// Report delivers one diagnostic. The driver owns it (it applies
	// //simlint:ignore filtering there, not in the analyzers).
	Report func(Diagnostic)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name; filled by the driver if empty
	Message  string

	// Trace is the call chain that produces interprocedural findings
	// (outermost frame first), e.g. the acquisition path of a lock-order
	// inversion. Empty for intra-function findings.
	Trace []string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder calls fn for every node in every file, in depth-first preorder.
func Preorder(files []*ast.File, fn func(ast.Node)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// WithStack calls fn for every node in preorder with the path of ancestors
// (stack[0] is the *ast.File, stack[len-1] is n itself). If fn returns
// false the node's children are skipped.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// Children are skipped, so ast.Inspect will not deliver
				// the matching pop; unwind here.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}
