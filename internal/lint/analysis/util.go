package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the *types.Func a call expression invokes (package
// function, method, or method value), or nil for builtins, conversions,
// function-typed variables and indirect calls.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// NamedOf unwraps pointers and aliases and returns the named type beneath t,
// or nil if t does not reach a named type (unnamed structs, basics, etc.).
func NamedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// TypeName returns the bare name of the named type beneath t ("Cache" for
// *cache.Cache), or "" if there is none.
func TypeName(t types.Type) string {
	if n := NamedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}
