// Package padding checks the cache-line-layout annotations that replace the
// simulator's former ad-hoc `const _ uintptr = -(unsafe.Sizeof(T{}) % 64)`
// compile-time asserts:
//
//   - a struct annotated //simlint:padded must be a whole multiple of 64
//     bytes (the host cache line), so adjacently allocated instances meet
//     exactly on a line boundary and never false-share;
//   - fields annotated //simlint:writer <name> are single-writer words; two
//     fields with different writer names must not share a 64-byte line
//     within the struct, or the writers false-share (writer checks apply to
//     any struct, padded or not).
//
// Sizes and offsets come from the gc layout rules for the build
// architecture (types.SizesFor), which is what the old unsafe.Sizeof
// asserts measured — but with an error message, and with the
// cross-line-sharing check the asserts could not express.
package padding

import (
	"go/ast"
	"go/types"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "padding",
	Doc: "structs annotated //simlint:padded must be 64-byte multiples, and //simlint:writer " +
		"fields with different writers must not share a cache line",
	Run: run,
}

// LineBytes is the host cache line the layout contract is written against.
const LineBytes = 64

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				check(pass, gd, ts, st)
			}
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	styp, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	padded := directive.Has(directive.Type(gd, ts), "padded")

	if padded {
		sz := pass.TypesSizes.Sizeof(styp)
		if sz == 0 || sz%LineBytes != 0 {
			pass.Reportf(ts.Pos(),
				"struct %s is %d bytes, not a positive multiple of %d: //simlint:padded structs must end exactly on a cache-line boundary (add or resize the trailing _ [N]byte pad)",
				ts.Name.Name, sz, LineBytes)
		}
	}

	// Writer-line check: fields carrying //simlint:writer <name>.
	type writerField struct {
		name   string // field name
		writer string
		lo, hi int64 // byte extent [lo, hi)
	}
	var fields []*types.Var
	for i := 0; i < styp.NumFields(); i++ {
		fields = append(fields, styp.Field(i))
	}
	var offsets []int64
	if len(fields) > 0 {
		offsets = pass.TypesSizes.Offsetsof(fields)
	}
	var writers []writerField
	fieldIdx := 0
	for _, fld := range st.Fields.List {
		names := len(fld.Names)
		if names == 0 {
			names = 1 // embedded field
		}
		w, hasW := directive.Arg(directive.Field(fld), "writer")
		for k := 0; k < names; k++ {
			v := fields[fieldIdx]
			off := offsets[fieldIdx]
			fieldIdx++
			if !hasW {
				continue
			}
			if w == "" {
				pass.Reportf(fld.Pos(), "//simlint:writer on %s.%s needs a writer name", ts.Name.Name, v.Name())
				continue
			}
			writers = append(writers, writerField{
				name:   v.Name(),
				writer: w,
				lo:     off,
				hi:     off + pass.TypesSizes.Sizeof(v.Type()),
			})
		}
	}
	for i := range writers {
		for j := i + 1; j < len(writers); j++ {
			a, b := writers[i], writers[j]
			if a.writer == b.writer {
				continue
			}
			if a.lo/LineBytes <= (b.hi-1)/LineBytes && b.lo/LineBytes <= (a.hi-1)/LineBytes {
				pass.Reportf(ts.Pos(),
					"fields %s.%s (writer %q, bytes %d-%d) and %s.%s (writer %q, bytes %d-%d) share a %d-byte line: single-writer fields of different writers must live on separate lines",
					ts.Name.Name, a.name, a.writer, a.lo, a.hi-1,
					ts.Name.Name, b.name, b.writer, b.lo, b.hi-1, LineBytes)
			}
		}
	}
}
