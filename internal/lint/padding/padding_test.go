package padding_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/padding"
)

func TestPadding(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), padding.Analyzer, "a")
}
