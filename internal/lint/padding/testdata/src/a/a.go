// Corpus for the padding analyzer. Field types are fixed-width so the
// layout is identical on every 64-bit architecture.
package a

// A correctly padded single-line struct.
//
//simlint:padded
type padded struct {
	a uint64
	b uint32
	_ [52]byte
}

// Padding may span several whole lines.
//
//simlint:padded
type twoLines struct {
	a [16]uint64
}

//simlint:padded
type unpadded struct { // want `72 bytes, not a positive multiple of 64`
	a [8]uint64
	b uint64
}

//simlint:padded
type empty struct{} // want `0 bytes, not a positive multiple of 64`

// Distinct single writers on separate lines: the shmem Channel shape.
//
//simlint:padded
type splitWriters struct {
	head uint64 //simlint:writer sender
	_    [56]byte
	tail uint64 //simlint:writer receiver
	_    [56]byte
}

// Distinct writers sharing one line is the false-sharing bug the
// annotation exists to catch (the struct size itself is fine).
//
//simlint:padded
type sharedLine struct { // want `share a 64-byte line`
	head uint64 //simlint:writer sender
	tail uint64 //simlint:writer receiver
	_    [48]byte
}

// One writer may own many words of its line.
type sameWriter struct {
	busy  uint64 //simlint:writer owner
	mem   uint64 //simlint:writer owner
	stall uint64 //simlint:writer owner
}

// The writer check applies without //simlint:padded too.
type unpaddedWriters struct { // want `share a 64-byte line`
	produced uint64 //simlint:writer producer
	consumed uint64 //simlint:writer consumer
}

// A missing writer name is itself an error.
type anonWriter struct {
	//simlint:writer
	x uint64 // want `needs a writer name`
}

// The memo cache's hit/miss stats: two atomically bumped words padded out
// to a full line so concurrent sweep workers never false-share with the
// neighbouring map header (uint64 stands in for atomic.Uint64 — same
// 8-byte layout, and the corpus imports only what it must).
//
//simlint:padded
type memoStats struct {
	hits   uint64
	misses uint64
	_      [48]byte
}

// A snapshot template: a frozen pointer guarded by a mutex-sized word. Its
// natural size is 16 bytes — snapshot structs are cold (one per sweep, not
// per cell), so padding them would be cargo cult; the corpus pins that the
// analyzer still demands the annotation be honest if someone adds it.
//
//simlint:padded
type snapshotLike struct { // want `16 bytes, not a positive multiple of 64`
	mu     uint64
	frozen *memoStats
}
