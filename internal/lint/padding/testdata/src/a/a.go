// Corpus for the padding analyzer. Field types are fixed-width so the
// layout is identical on every 64-bit architecture.
package a

// A correctly padded single-line struct.
//
//simlint:padded
type padded struct {
	a uint64
	b uint32
	_ [52]byte
}

// Padding may span several whole lines.
//
//simlint:padded
type twoLines struct {
	a [16]uint64
}

//simlint:padded
type unpadded struct { // want `72 bytes, not a positive multiple of 64`
	a [8]uint64
	b uint64
}

//simlint:padded
type empty struct{} // want `0 bytes, not a positive multiple of 64`

// Distinct single writers on separate lines: the shmem Channel shape.
//
//simlint:padded
type splitWriters struct {
	head uint64 //simlint:writer sender
	_    [56]byte
	tail uint64 //simlint:writer receiver
	_    [56]byte
}

// Distinct writers sharing one line is the false-sharing bug the
// annotation exists to catch (the struct size itself is fine).
//
//simlint:padded
type sharedLine struct { // want `share a 64-byte line`
	head uint64 //simlint:writer sender
	tail uint64 //simlint:writer receiver
	_    [48]byte
}

// One writer may own many words of its line.
type sameWriter struct {
	busy  uint64 //simlint:writer owner
	mem   uint64 //simlint:writer owner
	stall uint64 //simlint:writer owner
}

// The writer check applies without //simlint:padded too.
type unpaddedWriters struct { // want `share a 64-byte line`
	produced uint64 //simlint:writer producer
	consumed uint64 //simlint:writer consumer
}

// A missing writer name is itself an error.
type anonWriter struct {
	//simlint:writer
	x uint64 // want `needs a writer name`
}
