// Package directive parses the //simlint: comment directives that carry the
// simulator's machine-checked contracts:
//
//	//simlint:atomic              field is accessed only via sync/atomic
//	//simlint:padded              struct must be a 64-byte multiple
//	//simlint:writer <name>       single-writer field; fields with different
//	//                            writer names must not share a 64-byte line
//	//simlint:hotpath             function may not defer mutex unlocks
//	//simlint:ignore <rule> <why> suppress one rule on this (or the next)
//	//                            line; the reason is mandatory
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "//simlint:"

// A Directive is one parsed //simlint: comment.
type Directive struct {
	Kind string // "atomic", "padded", "writer", "hotpath", "ignore", ...
	Args string // remainder of the line, space-trimmed
	Pos  token.Pos
}

// parse extracts a directive from one comment, if present.
func parse(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	kind, args, _ := strings.Cut(rest, " ")
	kind = strings.TrimSpace(kind)
	if kind == "" {
		return Directive{}, false
	}
	return Directive{Kind: kind, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// fromGroups collects directives from any of the comment groups.
func fromGroups(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := parse(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// Field returns the directives attached to a struct field (doc comment above
// or line comment after).
func Field(f *ast.Field) []Directive { return fromGroups(f.Doc, f.Comment) }

// Func returns the directives in a function's doc comment.
func Func(fd *ast.FuncDecl) []Directive { return fromGroups(fd.Doc) }

// Type returns the directives attached to a type declaration: the GenDecl
// doc (the usual position), the TypeSpec doc, or the TypeSpec line comment.
func Type(gd *ast.GenDecl, ts *ast.TypeSpec) []Directive {
	return fromGroups(gd.Doc, ts.Doc, ts.Comment)
}

// Has reports whether ds contains a directive of the given kind.
func Has(ds []Directive, kind string) bool {
	for _, d := range ds {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// Arg returns the Args of the first directive of the given kind, and whether
// one was found.
func Arg(ds []Directive, kind string) (string, bool) {
	for _, d := range ds {
		if d.Kind == kind {
			return d.Args, true
		}
	}
	return "", false
}

// An Ignore is one //simlint:ignore suppression.
type Ignore struct {
	Rule   string
	Reason string
	File   string
	Line   int
	Pos    token.Pos
}

// IgnoreSet indexes every //simlint:ignore directive in a set of files.
type IgnoreSet struct {
	byLine map[string]map[int][]*Ignore // file -> line -> ignores
	all    []*Ignore
}

// Ignores scans files for //simlint:ignore directives. A suppression on
// line L covers diagnostics reported on line L (trailing comment) and line
// L+1 (standalone comment above the offending statement).
func Ignores(fset *token.FileSet, files []*ast.File) *IgnoreSet {
	s := &IgnoreSet{byLine: make(map[string]map[int][]*Ignore)}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parse(c)
				if !ok || d.Kind != "ignore" {
					continue
				}
				rule, reason, _ := strings.Cut(d.Args, " ")
				p := fset.Position(c.Pos())
				ig := &Ignore{
					Rule:   rule,
					Reason: strings.TrimSpace(reason),
					File:   p.Filename,
					Line:   p.Line,
					Pos:    c.Pos(),
				}
				m := s.byLine[ig.File]
				if m == nil {
					m = make(map[int][]*Ignore)
					s.byLine[ig.File] = m
				}
				m[ig.Line] = append(m[ig.Line], ig)
				s.all = append(s.all, ig)
			}
		}
	}
	return s
}

// Match reports whether a diagnostic of the given rule at pos is suppressed.
func (s *IgnoreSet) Match(fset *token.FileSet, rule string, pos token.Pos) bool {
	p := fset.Position(pos)
	m := s.byLine[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, ig := range m[line] {
			if ig.Rule == rule && ig.Reason != "" {
				return true
			}
		}
	}
	return false
}

// Invalid returns the ignores that carry no written reason; the driver
// reports these as errors (a suppression must justify itself).
func (s *IgnoreSet) Invalid() []*Ignore {
	var out []*Ignore
	for _, ig := range s.all {
		if ig.Rule == "" || ig.Reason == "" {
			out = append(out, ig)
		}
	}
	return out
}
