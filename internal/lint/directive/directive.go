// Package directive parses the //simlint: comment directives that carry the
// simulator's machine-checked contracts:
//
//	//simlint:atomic                  field is accessed only via sync/atomic
//	//simlint:padded                  struct must be a 64-byte multiple
//	//simlint:writer <name>           single-writer field; fields with different
//	//                                writer names must not share a 64-byte line
//	//simlint:hotpath                 function may not defer mutex unlocks
//	//simlint:ignore <rules> <why>    suppress one or more rules (comma-
//	//                                separated) on this (or the next) line;
//	//                                the reason is mandatory
//	//simlint:nocheckpoint <why>      the loop on this (or the next) line
//	//                                intentionally issues omp regions without
//	//                                calling rt.Checkpoint(); the reason is
//	//                                mandatory
//
// Parsing is forgiving about whitespace: arguments may be separated by
// spaces or tabs, and CRLF line endings do not leak a '\r' into the last
// argument. Both ignore and nocheckpoint directives track whether they
// actually suppressed anything, so the driver can report stale ones.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "//simlint:"

// A Directive is one parsed //simlint: comment.
type Directive struct {
	Kind string // "atomic", "padded", "writer", "hotpath", "ignore", ...
	Args string // remainder of the line, whitespace-trimmed
	Pos  token.Pos
}

// cutArg splits the first whitespace-separated (space or tab) token off s.
func cutArg(s string) (head, rest string) {
	s = strings.TrimLeft(s, " \t")
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimLeft(s[i:], " \t")
}

// parse extracts a directive from one comment, if present.
func parse(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	// A file with CRLF endings carries the '\r' in the comment text.
	rest := strings.TrimRight(strings.TrimPrefix(c.Text, prefix), "\r\n\t ")
	kind, args := cutArg(rest)
	if kind == "" {
		return Directive{}, false
	}
	return Directive{Kind: kind, Args: args, Pos: c.Pos()}, true
}

// fromGroups collects directives from any of the comment groups.
func fromGroups(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := parse(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// Field returns the directives attached to a struct field (doc comment above
// or line comment after).
func Field(f *ast.Field) []Directive { return fromGroups(f.Doc, f.Comment) }

// Func returns the directives in a function's doc comment.
func Func(fd *ast.FuncDecl) []Directive { return fromGroups(fd.Doc) }

// Type returns the directives attached to a type declaration: the GenDecl
// doc (the usual position), the TypeSpec doc, or the TypeSpec line comment.
func Type(gd *ast.GenDecl, ts *ast.TypeSpec) []Directive {
	return fromGroups(gd.Doc, ts.Doc, ts.Comment)
}

// Has reports whether ds contains a directive of the given kind.
func Has(ds []Directive, kind string) bool {
	for _, d := range ds {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// Arg returns the Args of the first directive of the given kind, and whether
// one was found.
func Arg(ds []Directive, kind string) (string, bool) {
	for _, d := range ds {
		if d.Kind == kind {
			return d.Args, true
		}
	}
	return "", false
}

// An Ignore is one //simlint:ignore suppression. One directive may suppress
// several rules on the same line: "//simlint:ignore ruleA,ruleB reason".
type Ignore struct {
	Rules  []string
	Reason string
	File   string
	Line   int
	Pos    token.Pos

	used bool // set by Match when the ignore suppresses a diagnostic
}

// Covers reports whether the ignore names the rule.
func (ig *Ignore) Covers(rule string) bool {
	for _, r := range ig.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// RuleList renders the rule list for diagnostics.
func (ig *Ignore) RuleList() string { return strings.Join(ig.Rules, ",") }

// IgnoreSet indexes every //simlint:ignore directive in a set of files.
type IgnoreSet struct {
	byLine map[string]map[int][]*Ignore // file -> line -> ignores
	all    []*Ignore
}

// Ignores scans files for //simlint:ignore directives. A suppression on
// line L covers diagnostics reported on line L (trailing comment) and line
// L+1 (standalone comment above the offending statement).
func Ignores(fset *token.FileSet, files []*ast.File) *IgnoreSet {
	s := &IgnoreSet{byLine: make(map[string]map[int][]*Ignore)}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parse(c)
				if !ok || d.Kind != "ignore" {
					continue
				}
				rules, reason := cutArg(d.Args)
				p := fset.Position(c.Pos())
				ig := &Ignore{
					Reason: reason,
					File:   p.Filename,
					Line:   p.Line,
					Pos:    c.Pos(),
				}
				for _, r := range strings.Split(rules, ",") {
					if r = strings.TrimSpace(r); r != "" {
						ig.Rules = append(ig.Rules, r)
					}
				}
				m := s.byLine[ig.File]
				if m == nil {
					m = make(map[int][]*Ignore)
					s.byLine[ig.File] = m
				}
				m[ig.Line] = append(m[ig.Line], ig)
				s.all = append(s.all, ig)
			}
		}
	}
	return s
}

// Match reports whether a diagnostic of the given rule at pos is suppressed,
// and marks the matching ignore as used (see Stale).
func (s *IgnoreSet) Match(fset *token.FileSet, rule string, pos token.Pos) bool {
	return s.Find(fset, rule, pos) != nil
}

// Find returns the ignore suppressing a diagnostic of the given rule at pos
// (or nil), marking it used. Reasonless ignores never match.
func (s *IgnoreSet) Find(fset *token.FileSet, rule string, pos token.Pos) *Ignore {
	p := fset.Position(pos)
	m := s.byLine[p.Filename]
	if m == nil {
		return nil
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, ig := range m[line] {
			if ig.Covers(rule) && ig.Reason != "" {
				ig.used = true
				return ig
			}
		}
	}
	return nil
}

// Invalid returns the ignores that carry no rule or no written reason; the
// driver reports these as errors (a suppression must justify itself).
func (s *IgnoreSet) Invalid() []*Ignore {
	var out []*Ignore
	for _, ig := range s.all {
		if len(ig.Rules) == 0 || ig.Reason == "" {
			out = append(out, ig)
		}
	}
	return out
}

// Stale returns the well-formed ignores that suppressed nothing in this run:
// the code they excused has been fixed or moved, so they should be deleted.
// Only meaningful after every diagnostic has been filtered through Match.
func (s *IgnoreSet) Stale() []*Ignore {
	var out []*Ignore
	for _, ig := range s.all {
		if len(ig.Rules) > 0 && ig.Reason != "" && !ig.used {
			out = append(out, ig)
		}
	}
	return out
}

// A NoCheckpoint is one //simlint:nocheckpoint annotation: the loop it
// covers intentionally issues omp regions without reaching rt.Checkpoint().
type NoCheckpoint struct {
	Reason string
	File   string
	Line   int
	Pos    token.Pos

	used bool
}

// NoCheckpointSet indexes every //simlint:nocheckpoint annotation in a set
// of files.
type NoCheckpointSet struct {
	byLine map[string]map[int][]*NoCheckpoint
	all    []*NoCheckpoint
}

// NoCheckpoints scans files for //simlint:nocheckpoint annotations. Like
// ignores, an annotation on line L covers a loop starting on line L
// (trailing comment) or line L+1 (standalone comment above the loop).
func NoCheckpoints(fset *token.FileSet, files []*ast.File) *NoCheckpointSet {
	s := &NoCheckpointSet{byLine: make(map[string]map[int][]*NoCheckpoint)}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parse(c)
				if !ok || d.Kind != "nocheckpoint" {
					continue
				}
				p := fset.Position(c.Pos())
				nc := &NoCheckpoint{Reason: d.Args, File: p.Filename, Line: p.Line, Pos: c.Pos()}
				m := s.byLine[nc.File]
				if m == nil {
					m = make(map[int][]*NoCheckpoint)
					s.byLine[nc.File] = m
				}
				m[nc.Line] = append(m[nc.Line], nc)
				s.all = append(s.all, nc)
			}
		}
	}
	return s
}

// Match reports whether a loop starting at pos is annotated, and marks the
// annotation used. Reasonless annotations never match.
func (s *NoCheckpointSet) Match(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	m := s.byLine[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, nc := range m[line] {
			if nc.Reason != "" {
				nc.used = true
				return true
			}
		}
	}
	return false
}

// Invalid returns the annotations with no written reason.
func (s *NoCheckpointSet) Invalid() []*NoCheckpoint {
	var out []*NoCheckpoint
	for _, nc := range s.all {
		if nc.Reason == "" {
			out = append(out, nc)
		}
	}
	return out
}

// Stale returns the well-formed annotations that excused no loop.
func (s *NoCheckpointSet) Stale() []*NoCheckpoint {
	var out []*NoCheckpoint
	for _, nc := range s.all {
		if nc.Reason != "" && !nc.used {
			out = append(out, nc)
		}
	}
	return out
}
