package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"hugeomp/internal/lint/directive"
)

const src = `package p

import "sync"

type s struct {
	mu sync.Mutex

	// doc directive
	//simlint:atomic
	word uint32

	slice []uint32 //simlint:atomic
	plain uint64
}

//simlint:hotpath
func hot() {}

func cold() {}

func body() {
	x := 1 //simlint:ignore determinism trailing: same-line suppression
	_ = x
	//simlint:ignore atomicfield standalone: covers the next line
	y := 2
	_ = y
	z := 3 //simlint:ignore lockdiscipline
	_ = z
}
`

func parse(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestFieldAndFuncDirectives(t *testing.T) {
	fset, f := parse(t)
	_ = fset
	var atomicFields []string
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			if directive.Has(directive.Field(fld), "atomic") {
				atomicFields = append(atomicFields, fld.Names[0].Name)
			}
		}
		return true
	})
	if len(atomicFields) != 2 || atomicFields[0] != "word" || atomicFields[1] != "slice" {
		t.Fatalf("atomic fields = %v, want [word slice]", atomicFields)
	}

	hot := 0
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && directive.Has(directive.Func(fd), "hotpath") {
			hot++
			if fd.Name.Name != "hot" {
				t.Fatalf("hotpath on %s", fd.Name.Name)
			}
		}
	}
	if hot != 1 {
		t.Fatalf("hotpath count = %d", hot)
	}
}

func TestIgnores(t *testing.T) {
	fset, f := parse(t)
	igs := directive.Ignores(fset, []*ast.File{f})

	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	// Line 22: trailing ignore for determinism suppresses its own line.
	if !igs.Match(fset, "determinism", pos(22)) {
		t.Error("trailing ignore did not match its own line")
	}
	if igs.Match(fset, "atomicfield", pos(22)) {
		t.Error("ignore matched the wrong rule")
	}
	// Line 24 holds a standalone ignore: it covers line 25.
	if !igs.Match(fset, "atomicfield", pos(25)) {
		t.Error("standalone ignore did not cover the following line")
	}
	if igs.Match(fset, "atomicfield", pos(27)) {
		t.Error("ignore leaked past the following line")
	}
	// The reasonless ignore on line 27 is invalid: it matches nothing and
	// is reported.
	if igs.Match(fset, "lockdiscipline", pos(27)) {
		t.Error("reasonless ignore suppressed a diagnostic")
	}
	inv := igs.Invalid()
	if len(inv) != 1 || inv[0].Rule != "lockdiscipline" {
		t.Fatalf("Invalid() = %+v, want the one reasonless lockdiscipline ignore", inv)
	}
}
