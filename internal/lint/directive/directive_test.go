package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"hugeomp/internal/lint/directive"
)

const src = `package p

import "sync"

type s struct {
	mu sync.Mutex

	// doc directive
	//simlint:atomic
	word uint32

	slice []uint32 //simlint:atomic
	plain uint64
}

//simlint:hotpath
func hot() {}

func cold() {}

func body() {
	x := 1 //simlint:ignore determinism trailing: same-line suppression
	_ = x
	//simlint:ignore atomicfield standalone: covers the next line
	y := 2
	_ = y
	z := 3 //simlint:ignore lockdiscipline
	_ = z
	w := 4 //simlint:ignore determinism,lockorder shared setup is replay-checked elsewhere
	_ = w
	v := 5 //simlint:ignore padding never matched in this test
	_ = v
}
`

func parseSrc(t *testing.T, name, text string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, text, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func parse(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	return parseSrc(t, "p.go", src)
}

func TestFieldAndFuncDirectives(t *testing.T) {
	_, f := parse(t)
	var atomicFields []string
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			if directive.Has(directive.Field(fld), "atomic") {
				atomicFields = append(atomicFields, fld.Names[0].Name)
			}
		}
		return true
	})
	if len(atomicFields) != 2 || atomicFields[0] != "word" || atomicFields[1] != "slice" {
		t.Fatalf("atomic fields = %v, want [word slice]", atomicFields)
	}

	hot := 0
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && directive.Has(directive.Func(fd), "hotpath") {
			hot++
			if fd.Name.Name != "hot" {
				t.Fatalf("hotpath on %s", fd.Name.Name)
			}
		}
	}
	if hot != 1 {
		t.Fatalf("hotpath count = %d", hot)
	}
}

func TestIgnores(t *testing.T) {
	fset, f := parse(t)
	igs := directive.Ignores(fset, []*ast.File{f})

	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	// Line 22: trailing ignore for determinism suppresses its own line.
	if !igs.Match(fset, "determinism", pos(22)) {
		t.Error("trailing ignore did not match its own line")
	}
	if igs.Match(fset, "atomicfield", pos(22)) {
		t.Error("ignore matched the wrong rule")
	}
	// Line 24 holds a standalone ignore: it covers line 25.
	if !igs.Match(fset, "atomicfield", pos(25)) {
		t.Error("standalone ignore did not cover the following line")
	}
	if igs.Match(fset, "atomicfield", pos(27)) {
		t.Error("ignore leaked past the following line")
	}
	// The reasonless ignore on line 27 is invalid: it matches nothing.
	if igs.Match(fset, "lockdiscipline", pos(27)) {
		t.Error("reasonless ignore suppressed a diagnostic")
	}
	inv := igs.Invalid()
	if len(inv) != 1 || inv[0].RuleList() != "lockdiscipline" {
		t.Fatalf("Invalid() = %+v, want the one reasonless lockdiscipline ignore", inv)
	}

	// Line 29: one directive, two comma-separated rules, one shared reason.
	if !igs.Match(fset, "determinism", pos(29)) {
		t.Error("multi-rule ignore did not cover its first rule")
	}
	if !igs.Match(fset, "lockorder", pos(29)) {
		t.Error("multi-rule ignore did not cover its second rule")
	}
	if igs.Match(fset, "ctxflow", pos(29)) {
		t.Error("multi-rule ignore covered a rule it does not name")
	}

	// Only the never-matched padding ignore on line 31 is stale; everything
	// else either matched above or is invalid.
	st := igs.Stale()
	if len(st) != 1 || st[0].RuleList() != "padding" || st[0].Line != 31 {
		t.Fatalf("Stale() = %+v, want the one unmatched padding ignore", st)
	}
}

// TestParseEdgeCases drives the directive tokenizer through the whitespace
// and line-ending shapes that show up in real trees.
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		line   string // the full source line carrying the directive
		rules  string // expected Ignore.RuleList()
		reason string
	}{
		{"space separated", "//simlint:ignore determinism flaky clock", "determinism", "flaky clock"},
		{"tab separated", "//simlint:ignore\tdeterminism\ttab-separated reason", "determinism", "tab-separated reason"},
		{"mixed tabs and spaces", "//simlint:ignore \t lockorder \t boot path only", "lockorder", "boot path only"},
		{"multi rule", "//simlint:ignore a,b,c shared reason", "a,b,c", "shared reason"},
		{"multi rule stray comma", "//simlint:ignore a,,b shared reason", "a,b", "shared reason"},
		{"trailing whitespace", "//simlint:ignore determinism reason with trailing space   ", "determinism", "reason with trailing space"},
		{"trailing tab", "//simlint:ignore determinism reason\t", "determinism", "reason"},
		{"reasonless", "//simlint:ignore determinism", "determinism", ""},
		{"empty", "//simlint:ignore", "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			text := "package p\n\nfunc f() {\n\t_ = 1 " + tc.line + "\n}\n"
			fset, f := parseSrc(t, "edge.go", text)
			igs := directive.Ignores(fset, []*ast.File{f})
			all := append(igs.Invalid(), igs.Stale()...)
			if len(all) != 1 {
				t.Fatalf("parsed %d ignores, want 1", len(all))
			}
			ig := all[0]
			if ig.RuleList() != tc.rules {
				t.Errorf("rules = %q, want %q", ig.RuleList(), tc.rules)
			}
			if ig.Reason != tc.reason {
				t.Errorf("reason = %q, want %q", ig.Reason, tc.reason)
			}
		})
	}
}

// TestCRLF checks that Windows line endings do not leak a '\r' into the
// last argument of a directive.
func TestCRLF(t *testing.T) {
	text := strings.ReplaceAll(`package p

func f() {
	_ = 1 //simlint:ignore determinism crlf reason
}
`, "\n", "\r\n")
	fset, f := parseSrc(t, "crlf.go", text)
	igs := directive.Ignores(fset, []*ast.File{f})
	st := igs.Stale()
	if len(st) != 1 {
		t.Fatalf("parsed %d well-formed ignores, want 1", len(st))
	}
	if st[0].Reason != "crlf reason" {
		t.Errorf("reason = %q, want %q (no trailing CR)", st[0].Reason, "crlf reason")
	}
	if st[0].RuleList() != "determinism" {
		t.Errorf("rules = %q, want determinism", st[0].RuleList())
	}
}

func TestNoCheckpoints(t *testing.T) {
	text := `package p

func f(n int) {
	//simlint:nocheckpoint bounded sweep; caller checkpoints per cycle
	for i := 0; i < n; i++ {
	}
	for i := 0; i < n; i++ { //simlint:nocheckpoint
	}
	//simlint:nocheckpoint never matched
	_ = n
}
`
	fset, f := parseSrc(t, "nc.go", text)
	ncs := directive.NoCheckpoints(fset, []*ast.File{f})
	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}

	// The standalone annotation on line 4 covers the loop on line 5.
	if !ncs.Match(fset, pos(5)) {
		t.Error("standalone nocheckpoint did not cover the following line")
	}
	// The trailing reasonless annotation on line 7 never matches.
	if ncs.Match(fset, pos(7)) {
		t.Error("reasonless nocheckpoint matched")
	}
	inv := ncs.Invalid()
	if len(inv) != 1 || inv[0].Line != 7 {
		t.Fatalf("Invalid() = %+v, want the reasonless annotation on line 7", inv)
	}
	st := ncs.Stale()
	if len(st) != 1 || st[0].Reason != "never matched" {
		t.Fatalf("Stale() = %+v, want the unmatched annotation on line 9", st)
	}
}
