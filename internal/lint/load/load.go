// Package load turns `go list` package patterns into parsed, type-checked
// packages for the simlint analyzers. It is a miniature go/packages: the
// build list comes from `go list -deps -json`, module packages are
// type-checked from source in dependency order, and standard-library imports
// are satisfied by the compiler's source importer — no network, no export
// data, no x/tools.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	// Root marks a package matched by the load patterns (as opposed to an
	// in-module dependency pulled in for type-checking and fact computation).
	Root  bool
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// listItem is the subset of `go list -json` output the loader consumes.
type listItem struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// goList runs `go list` with the given arguments in dir and decodes the JSON
// stream.
func goList(dir string, args ...string) ([]*listItem, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports,Standard"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var items []*listItem
	for {
		it := new(listItem)
		if err := dec.Decode(it); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		items = append(items, it)
	}
	return items, nil
}

// Load type-checks the packages matching patterns plus their in-module
// dependencies and returns them ALL in dependency-first order, with Root set
// on the matched ones. Callers that only report on matched packages must
// still walk the dependencies first so interprocedural facts flow bottom-up.
// dir is the directory to resolve patterns from ("" for the current
// directory).
//
// `go list` applies the build context: files excluded by build tags never
// reach the parser, and GoFiles excludes _test.go files, so test code is
// invisible to this loader.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	deps, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	roots, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	isRoot := make(map[string]bool, len(roots))
	for _, r := range roots {
		isRoot[r.ImportPath] = true
	}

	byPath := make(map[string]*listItem, len(deps))
	var module []*listItem // non-standard packages, in go list (dependency-first) order
	for _, it := range deps {
		byPath[it.ImportPath] = it
		if !it.Standard && it.Name != "" {
			module = append(module, it)
		}
	}
	order, err := topo(module, byPath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*types.Package)
	imp := &chainImporter{checked: checked, std: std, byPath: byPath}

	var out []*Package
	for _, it := range order {
		files := make([]*ast.File, 0, len(it.GoFiles))
		for _, name := range it.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(it.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(it.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", it.ImportPath, err)
		}
		checked[it.ImportPath] = tpkg
		out = append(out, &Package{
			ImportPath: it.ImportPath,
			Dir:        it.Dir,
			Root:       isRoot[it.ImportPath],
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
			Sizes:      sizes,
		})
	}
	return out, nil
}

// chainImporter resolves module packages from the already-checked set and
// everything else (the standard library) through the source importer.
type chainImporter struct {
	checked map[string]*types.Package
	std     types.Importer
	byPath  map[string]*listItem
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.checked[path]; ok {
		return p, nil
	}
	if it, ok := c.byPath[path]; ok && !it.Standard {
		return nil, fmt.Errorf("module package %s imported before it was type-checked (loader bug)", path)
	}
	return c.std.Import(path)
}

// topo orders the module packages dependency-first. `go list -deps` already
// emits that order, but re-deriving it keeps the loader independent of that
// detail (and catches cycles with a clear error).
func topo(module []*listItem, byPath map[string]*listItem) ([]*listItem, error) {
	const (
		white = iota
		grey
		black
	)
	color := make(map[string]int, len(module))
	inModule := make(map[string]bool, len(module))
	for _, it := range module {
		inModule[it.ImportPath] = true
	}
	var out []*listItem
	var visit func(it *listItem) error
	visit = func(it *listItem) error {
		switch color[it.ImportPath] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle through %s", it.ImportPath)
		}
		color[it.ImportPath] = grey
		for _, imp := range it.Imports {
			if inModule[imp] {
				if err := visit(byPath[imp]); err != nil {
					return err
				}
			}
		}
		color[it.ImportPath] = black
		out = append(out, it)
		return nil
	}
	for _, it := range module {
		if err := visit(it); err != nil {
			return nil, err
		}
	}
	return out, nil
}
