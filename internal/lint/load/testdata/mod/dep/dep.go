// Package dep is an in-module dependency of root.
package dep

const D = 42
