//go:build loadtest_excluded

package root

// This file type-checks only if the loader wrongly ignores build tags: it
// references an undefined symbol.
var Excluded = undefinedSymbol
