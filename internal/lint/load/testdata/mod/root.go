// Package root is the pattern-matched package of the loader test module; it
// pulls in the dep package so dependency ordering is observable.
package root

import "loadtest/dep"

// Exclude is defined in tagged.go, which carries a build tag the test does
// not enable; referencing it here would break type-checking if the loader
// ever parsed tag-excluded files.
var V = dep.D
