package root

// Test files are outside the loader's view (GoFiles excludes them); this one
// would fail to type-check if it were ever loaded.
var TestOnly = alsoUndefined
