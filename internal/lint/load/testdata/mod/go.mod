module loadtest

go 1.22
