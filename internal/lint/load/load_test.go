package load_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hugeomp/internal/lint/load"
)

// loadMod loads the nested test module under testdata/mod. The module has
// its own go.mod so `go list` resolves patterns against it, not hugeomp.
func loadMod(t *testing.T, patterns ...string) []*load.Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestDependencyOrderAndRoots: loading only the root package must still
// type-check and return its in-module dependency, dependency first, with
// Root marking the matched package.
func TestDependencyOrderAndRoots(t *testing.T) {
	pkgs := loadMod(t, ".")
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (dep + root): %+v", len(pkgs), paths(pkgs))
	}
	if pkgs[0].ImportPath != "loadtest/dep" || pkgs[0].Root {
		t.Errorf("pkgs[0] = %s (root=%v), want loadtest/dep as non-root dependency", pkgs[0].ImportPath, pkgs[0].Root)
	}
	if pkgs[1].ImportPath != "loadtest" || !pkgs[1].Root {
		t.Errorf("pkgs[1] = %s (root=%v), want loadtest as root", pkgs[1].ImportPath, pkgs[1].Root)
	}
}

// TestBuildTagsExcluded: tagged.go carries //go:build loadtest_excluded and
// references an undefined symbol; if the loader ignored build tags, Load
// would fail type-checking. It must also never reach the parsed file list.
func TestBuildTagsExcluded(t *testing.T) {
	pkgs := loadMod(t, "./...")
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := filepath.Base(p.Fset.Position(f.Pos()).Filename)
			if name == "tagged.go" {
				t.Errorf("tag-excluded file tagged.go was parsed into %s", p.ImportPath)
			}
		}
	}
}

// TestTestFilesExcluded: root_test.go would fail to type-check if loaded;
// GoFiles keeps it out entirely.
func TestTestFilesExcluded(t *testing.T) {
	pkgs := loadMod(t, "./...")
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := filepath.Base(p.Fset.Position(f.Pos()).Filename)
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("test file %s was parsed into %s", name, p.ImportPath)
			}
		}
	}
}

// TestAllPatternsRoot: with ./... both packages are matched, and the order
// stays dependency-first.
func TestAllPatternsRoot(t *testing.T) {
	pkgs := loadMod(t, "./...")
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2: %v", len(pkgs), paths(pkgs))
	}
	for _, p := range pkgs {
		if !p.Root {
			t.Errorf("%s not marked Root under ./...", p.ImportPath)
		}
	}
	if pkgs[0].ImportPath != "loadtest/dep" {
		t.Errorf("dependency loadtest/dep not first: %v", paths(pkgs))
	}
	// The matched root really type-checked against the dep (V = dep.D).
	root := pkgs[1]
	if root.Types.Scope().Lookup("V") == nil {
		t.Error("root package lost its V declaration")
	}
}

func paths(pkgs []*load.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.ImportPath)
	}
	return out
}
