// Package lockorder infers held-lock sets across call edges and checks the
// simulator's documented lock hierarchy interprocedurally. It replaces the
// old syntactic "no mutex held across Bus.Access*" rule of lockdiscipline
// with a real acquisition-graph detector:
//
//   - Every function gets a summary of the lock classes it may acquire
//     (directly or through calls), with a representative call chain per
//     class. Summaries are solved bottom-up over the call-graph SCCs and
//     flow across package boundaries as facts, so holding a cache mutex
//     three calls above a bus transaction is seen exactly like holding it
//     on the same line.
//   - Acquiring class B while class A is held records the acquisition-graph
//     edge A → B. An edge that runs against the documented rank order
//     (Order, outermost first) is a rank inversion; an edge between two
//     locks of the same class is a same-class double acquisition; an edge
//     from a lock outside the hierarchy into a ranked lock hides the
//     ordering from review. All three are reported with the full call chain
//     from the holding function down to the offending Lock call.
//   - Edges are also exported per package and unioned across the module, so
//     a cycle assembled from acquisitions in different packages (A → B
//     here, B → A there) is detected even when every package looks locally
//     consistent.
//
// The lock identity model matches the simulator's: a lock's class is
// "OwnerType.field" for a mutex stored in a named struct (Context.l2Mu,
// busShard.mu, Cache.mu), and rank lookup falls back from the qualified
// name to the bare owner type, so Order may rank whole types or single
// fields. The shared-L2 serialisation mutex, which previously needed a
// //simlint:ignore on the bus rule, is now simply ranked above the bus
// (Context.l2Mu comes first in Order) — the analyzer proves the hierarchy
// instead of suppressing it.
//
// Held-set tracking inside a function is the same source-order walk the
// old lockdiscipline used (exactly enough for the simulator's straight-line
// locking idioms); function literals are analyzed with an empty held set
// (they may run on another goroutine) but their acquisitions fold into the
// enclosing function's summary, which is the conservative direction.
// Calls through function-typed values are invisible to the graph; the
// simulator's locking never passes lock-taking closures across packages.
package lockorder

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/callgraph"
	"hugeomp/internal/lint/interproc"
)

const name = "lockorder"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "interprocedural lock-order checking: infer acquired-lock summaries over the call graph, " +
		"report rank inversions, same-class double acquisitions, unranked locks held across ranked " +
		"acquisitions, and cross-package acquisition cycles, each with its full call chain",
	Run: run,
}

// Order is the documented lock hierarchy, outermost first: "<" separates
// rank levels, "," separates classes sharing a level. A class is either a
// qualified mutex field ("Context.l2Mu") or a bare owner type ("Cache",
// matching any mutex field it owns). Snapshot (fork template freeze) and
// SpinLock (simulated lock word) sit above the memory system: both hold
// their mutex while driving cache traffic, never the reverse. The driver
// exposes it as -lockorder.order.
var Order = "Snapshot, SpinLock < Context.l2Mu < busShard < Cache, cacheFields"

// Packages limits *reporting* to the packages that participate in the
// simulator's lock hierarchy (summaries and edges are still computed
// everywhere so chains can cross any boundary). Same matching rules as
// determinism.Packages. The driver exposes it as -lockorder.packages.
var Packages = []string{
	"internal/cache",
	"internal/machine",
	"internal/tlb",
	"internal/pagetable",
	"internal/omp",
	"internal/shmem",
	"internal/npb",
}

func inScope(path string) bool {
	for _, p := range Packages {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

// Summary is the per-function fact: the lock classes the function may
// acquire during its execution, each with one representative chain from the
// function's entry to the Lock call (entries are "pos: description").
type Summary struct {
	Acquires map[string][]string `json:"acquires,omitempty"`
}

func equalSummary(a, b Summary) bool {
	if len(a.Acquires) != len(b.Acquires) {
		return false
	}
	for k, av := range a.Acquires {
		bv, ok := b.Acquires[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// factEdge is one acquisition-graph edge as exported in the per-package
// "edges/<path>" fact.
type factEdge struct {
	From  string   `json:"from"`
	To    string   `json:"to"`
	Pos   string   `json:"pos"`
	Chain []string `json:"chain,omitempty"`
}

// localEdge carries the token.Pos needed to report at the site.
type localEdge struct {
	factEdge
	at token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	ranks := parseOrder(Order)
	g := callgraph.Build(pass)
	cands := callgraph.Candidates(pass.Pkg)

	var edges []localEdge
	seenEdge := map[string]bool{}
	addEdge := func(from, to string, at token.Pos, chain []string) {
		pos := pass.Fset.Position(at).String()
		key := from + "\x00" + to + "\x00" + pos
		if seenEdge[key] {
			return
		}
		seenEdge[key] = true
		edges = append(edges, localEdge{factEdge{From: from, To: to, Pos: pos, Chain: chain}, at})
	}

	an := &interproc.Analysis[Summary]{
		Facts:  name,
		Bottom: func(*types.Func) Summary { return Summary{} },
		Transfer: func(n *callgraph.Node, lookup func(*types.Func) Summary) Summary {
			w := &walker{
				pass:    pass,
				cands:   cands,
				lookup:  lookup,
				addEdge: addEdge,
				sum:     Summary{Acquires: map[string][]string{}},
			}
			w.block(n.Decl.Body.List)
			if len(w.sum.Acquires) == 0 {
				return Summary{}
			}
			return w.sum
		},
		Equal: equalSummary,
	}
	interproc.Solve(pass, g, an)

	if !inScope(pass.Pkg.Path()) {
		// Out-of-scope packages contribute summaries and edges (exported
		// below) but do not report.
		exportEdges(pass, edges)
		return nil, nil
	}

	for _, e := range edges {
		checkEdge(pass, ranks, e)
	}
	checkCycles(pass, ranks, edges)
	exportEdges(pass, edges)
	return nil, nil
}

func exportEdges(pass *analysis.Pass, edges []localEdge) {
	if len(edges) == 0 {
		return
	}
	out := make([]factEdge, len(edges))
	for i, e := range edges {
		out[i] = e.factEdge
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Pos < out[j].Pos
	})
	pass.Facts.Set(name, "edges/"+pass.Pkg.Path(), out)
}

// checkEdge applies the rank rules to one locally observed edge.
func checkEdge(pass *analysis.Pass, ranks map[string]int, e localEdge) {
	rf, fromRanked := rankOf(ranks, e.From)
	rt, toRanked := rankOf(ranks, e.To)
	switch {
	case fromRanked && toRanked && rf > rt:
		report(pass, e, fmt.Sprintf(
			"lock order violation: %s acquired while %s is held, against the documented order %q",
			e.To, e.From, Order))
	case fromRanked && toRanked && rf == rt:
		report(pass, e, fmt.Sprintf(
			"two %s-class locks held at once (%s acquired while %s is held): the protocol takes at most one lock per class",
			classType(e.To), e.To, e.From))
	case !fromRanked && toRanked:
		report(pass, e, fmt.Sprintf(
			"lock %s (outside the documented hierarchy %q) held while acquiring ranked lock %s: rank it in the order or restructure so the ranked lock is not nested under it",
			e.From, Order, e.To))
	}
}

// checkCycles unions this package's edges with every other package's
// exported edges and reports acquisition cycles that rank checking cannot
// see (at least one unranked class). Only cycles through a local edge are
// reported here — the package owning the other half reports its own side.
func checkCycles(pass *analysis.Pass, ranks map[string]int, local []localEdge) {
	adj := map[string]map[string][]string{} // from -> to -> chain
	add := func(e factEdge) {
		m := adj[e.From]
		if m == nil {
			m = map[string][]string{}
			adj[e.From] = m
		}
		if _, ok := m[e.To]; !ok {
			m[e.To] = e.Chain
		}
	}
	pass.Facts.Range(name, func(name string, raw json.RawMessage) {
		if !strings.HasPrefix(name, "edges/") || name == "edges/"+pass.Pkg.Path() {
			return
		}
		var es []factEdge
		if json.Unmarshal(raw, &es) == nil {
			for _, e := range es {
				add(e)
			}
		}
	})
	for _, e := range local {
		add(e.factEdge)
	}

	reported := map[string]bool{}
	for _, e := range local {
		_, fromRanked := rankOf(ranks, e.From)
		_, toRanked := rankOf(ranks, e.To)
		if fromRanked && toRanked {
			continue // rank checking already covers ranked-only cycles
		}
		if path := findPath(adj, e.To, e.From); path != nil {
			// path is [To, ..., From]; the cycle's node list starts at From
			// and must not repeat it, so canonicalization dedupes the same
			// cycle found from any of its edges.
			cyc := append([]string{e.From}, path[:len(path)-1]...)
			key := canonicalCycle(cyc)
			if reported[key] {
				continue
			}
			reported[key] = true
			report(pass, e, fmt.Sprintf(
				"lock acquisition cycle %s -> %s: these locks are taken in conflicting orders across the module (deadlock potential)",
				strings.Join(cyc, " -> "), cyc[0]))
		}
	}
}

// findPath returns a node path from -> ... -> to in adj, or nil.
func findPath(adj map[string]map[string][]string, from, to string) []string {
	seen := map[string]bool{}
	var dfs func(n string, path []string) []string
	dfs = func(n string, path []string) []string {
		if n == to {
			return append(path, n)
		}
		if seen[n] {
			return nil
		}
		seen[n] = true
		next := make([]string, 0, len(adj[n]))
		for m := range adj[n] {
			next = append(next, m)
		}
		sort.Strings(next)
		for _, m := range next {
			if p := dfs(m, append(path, n)); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(from, nil)
}

// canonicalCycle rotates a cycle's node list to start at its smallest
// element so the same cycle dedupes regardless of entry point.
func canonicalCycle(nodes []string) string {
	if len(nodes) == 0 {
		return ""
	}
	min := 0
	for i, n := range nodes {
		if n < nodes[min] {
			min = i
		}
	}
	rot := append(append([]string{}, nodes[min:]...), nodes[:min]...)
	return strings.Join(rot, "->")
}

func report(pass *analysis.Pass, e localEdge, msg string) {
	pass.Report(analysis.Diagnostic{
		Pos:     e.at,
		Message: msg + chainSuffix(e.Chain),
		Trace:   e.Chain,
	})
}

// chainSuffix renders an acquisition chain for the plain-text message; the
// structured trace rides separately on the diagnostic.
func chainSuffix(chain []string) string {
	if len(chain) <= 1 {
		return ""
	}
	return " (acquisition path: " + strings.Join(chain, " -> ") + ")"
}

// --- rank parsing ----------------------------------------------------------

func parseOrder(spec string) map[string]int {
	ranks := make(map[string]int)
	for rank, level := range strings.Split(spec, "<") {
		for _, name := range strings.Split(level, ",") {
			if name = strings.TrimSpace(name); name != "" {
				ranks[name] = rank
			}
		}
	}
	return ranks
}

// rankOf resolves a class ("Type.field") against Order entries: exact
// qualified match first, then the bare owner type.
func rankOf(ranks map[string]int, class string) (int, bool) {
	if r, ok := ranks[class]; ok {
		return r, true
	}
	if r, ok := ranks[classType(class)]; ok {
		return r, true
	}
	return -1, false
}

func classType(class string) string {
	if i := strings.IndexByte(class, '.'); i >= 0 {
		return class[:i]
	}
	return class
}

// --- per-function walk -----------------------------------------------------

type held struct {
	class string
	expr  string
	chain []string // chain of the acquisition (for edges it participates in)
}

type walker struct {
	pass    *analysis.Pass
	cands   []types.Type
	lookup  func(*types.Func) Summary
	addEdge func(from, to string, at token.Pos, chain []string)
	sum     Summary
	held    []held
}

func (w *walker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		if _, kind := w.mutexCall(s.Call); kind == "unlock" {
			// The lock is held to function end; the held set keeps it.
			return
		}
		w.funcLits(s.Call)
	case *ast.GoStmt:
		w.funcLits(s.Call)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.block(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.block(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		w.block(s.Body.List)
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			w.block(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.block(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.block(c.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// expr walks calls (and function literals) inside an expression in source
// order.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.lit(n)
			return false
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// lit analyzes a function literal with an empty held set (it may run later
// or elsewhere) but folds its acquisitions into the enclosing summary.
func (w *walker) lit(n *ast.FuncLit) {
	sub := &walker{pass: w.pass, cands: w.cands, lookup: w.lookup, addEdge: w.addEdge, sum: w.sum}
	sub.block(n.Body.List)
}

func (w *walker) funcLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.lit(lit)
			return false
		}
		return true
	})
}

// call handles lock transitions and propagates callee summaries into edges
// and the function's own summary.
func (w *walker) call(call *ast.CallExpr) {
	if mu, kind := w.mutexCall(call); kind != "" {
		switch kind {
		case "lock":
			w.acquire(call, mu)
		case "unlock":
			w.release(mu)
		}
		return
	}
	targets := callgraph.ResolveCall(w.pass, w.cands, call)
	for _, t := range targets {
		s := w.lookup(t.Fn)
		if len(s.Acquires) == 0 {
			continue
		}
		classes := make([]string, 0, len(s.Acquires))
		for c := range s.Acquires {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			chain := append([]string{w.frame(call, "call "+t.Fn.FullName())}, s.Acquires[c]...)
			for _, h := range w.held {
				w.addEdge(h.class, c, call.Pos(), chain)
			}
			w.record(c, chain)
		}
	}
}

func (w *walker) acquire(call *ast.CallExpr, mu mutexRef) {
	chain := []string{w.frame(call, mu.expr+".Lock()")}
	for _, h := range w.held {
		w.addEdge(h.class, mu.class, call.Pos(), chain)
	}
	w.held = append(w.held, held{class: mu.class, expr: mu.expr, chain: chain})
	w.record(mu.class, chain)
}

func (w *walker) release(mu mutexRef) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].expr == mu.expr {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// record notes that the function may acquire class c (first chain wins, so
// the representative stays stable across fixpoint rounds).
func (w *walker) record(c string, chain []string) {
	if w.sum.Acquires == nil {
		w.sum.Acquires = map[string][]string{}
	}
	if _, ok := w.sum.Acquires[c]; !ok {
		w.sum.Acquires[c] = chain
	}
}

func (w *walker) frame(at ast.Node, what string) string {
	return w.pass.Fset.Position(at.Pos()).String() + ": " + what
}

// --- mutex recognition -----------------------------------------------------

type mutexRef struct {
	expr  string // rendered lock expression, e.g. "sh.mu"
	class string // "OwnerType.field", or the rendered expr for bare mutexes
}

// mutexCall recognises m.Lock/RLock ("lock") and m.Unlock/RUnlock
// ("unlock") on sync.Mutex/RWMutex values.
func (w *walker) mutexCall(call *ast.CallExpr) (mutexRef, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexRef{}, ""
	}
	fn, _ := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexRef{}, ""
	}
	recv := analysis.TypeName(recvType(fn))
	if recv != "Mutex" && recv != "RWMutex" {
		return mutexRef{}, ""
	}
	var kind string
	switch fn.Name() {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return mutexRef{}, ""
	}
	expr := renderExpr(sel.X)
	return mutexRef{expr: expr, class: w.classOf(sel.X, expr)}, kind
}

// classOf names a lock's class: "OwnerType.field" for a mutex stored in a
// named struct, else the rendered expression (bare locals/parameters).
func (w *walker) classOf(mu ast.Expr, rendered string) string {
	if sel, ok := ast.Unparen(mu).(*ast.SelectorExpr); ok {
		if name := analysis.TypeName(w.pass.TypesInfo.TypeOf(sel.X)); name != "" {
			return name + "." + sel.Sel.Name
		}
	}
	return rendered
}

func recvType(fn *types.Func) types.Type {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func renderExpr(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return renderExpr(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(v.X) + "[" + renderExpr(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + renderExpr(v.X)
	case *ast.CallExpr:
		return renderExpr(v.Fun) + "()"
	case *ast.BasicLit:
		return v.Value
	default:
		return "?"
	}
}
