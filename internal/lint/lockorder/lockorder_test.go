package lockorder_test

import (
	"testing"

	"hugeomp/internal/lint/analysistest"
	"hugeomp/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	defer func(order string, pkgs []string) {
		lockorder.Order, lockorder.Packages = order, pkgs
	}(lockorder.Order, lockorder.Packages)
	lockorder.Order = "L2.mu < Shard < Cache"
	lockorder.Packages = []string{"a"}

	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "a")
}
