// Corpus for the lockorder analyzer. The test configures the order
// "L2.mu < Shard < Cache", mirroring the simulator's
// Context.l2Mu → busShard → Cache hierarchy.
package a

import "sync"

type L2 struct{ mu sync.Mutex }

type Shard struct{ mu sync.Mutex }

type Cache struct{ mu sync.Mutex }

type Foreign struct{ mu sync.Mutex }

// --- negative controls: the documented order, direct and through calls ----

// Straight-line acquisition in rank order is fine.
func good(l2 *L2, sh *Shard, c *Cache) {
	l2.mu.Lock()
	sh.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	sh.mu.Unlock()
	l2.mu.Unlock()
}

// lockShard takes a shard lock: callers above Shard rank may hold theirs.
func lockShard(sh *Shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
}

// Holding the outermost lock across a call that acquires a lower-ranked
// one follows the hierarchy.
func goodThroughCall(l2 *L2, sh *Shard) {
	l2.mu.Lock()
	lockShard(sh)
	l2.mu.Unlock()
}

// Releasing before the call keeps the held set empty: no edge, no report.
func releasedBeforeCall(c *Cache, sh *Shard) {
	c.mu.Lock()
	c.mu.Unlock()
	lockShard(sh)
}

// --- direct rank inversions ------------------------------------------------

// Reversed acquisition in one function.
func reversed(sh *Shard, c *Cache) {
	c.mu.Lock()
	sh.mu.Lock() // want `lock order violation`
	sh.mu.Unlock()
	c.mu.Unlock()
}

// Two same-class locks at once.
func twoCaches(c1, c2 *Cache) {
	c1.mu.Lock()
	c2.mu.Lock() // want `two Cache-class locks`
	c2.mu.Unlock()
	c1.mu.Unlock()
}

// --- interprocedural rank inversion two calls deep -------------------------

// inner actually takes the shard lock.
func inner(sh *Shard) {
	sh.mu.Lock()
	sh.mu.Unlock()
}

// mid only forwards; its summary must still say "acquires Shard.mu".
func mid(sh *Shard) {
	inner(sh)
}

// outer holds a Cache lock across mid → inner → Shard.mu.Lock: a rank
// inversion assembled across two call edges. The report carries the chain.
func outer(sh *Shard, c *Cache) {
	c.mu.Lock()
	mid(sh) // want `lock order violation: Shard\.mu acquired while Cache\.mu is held.*acquisition path:.*call a\.mid.*call a\.inner.*sh\.mu\.Lock`
	c.mu.Unlock()
}

// --- foreign (unranked) lock nested over the hierarchy ---------------------

// A lock outside the order held across a ranked acquisition hides the
// ordering from review (the old "no mutex held across bus traffic" rule,
// generalized).
func foreignOverRanked(f *Foreign, sh *Shard) {
	f.mu.Lock()
	lockShard(sh) // want `outside the documented hierarchy`
	f.mu.Unlock()
}

// An unranked lock acquired *under* a ranked one is allowed on its own
// (leaf-level private locks); only a conflicting reverse edge elsewhere
// turns it into a cycle.
type Leaf struct{ mu sync.Mutex }

func rankedOverLeaf(c *Cache, lf *Leaf) {
	c.mu.Lock()
	lf.mu.Lock()
	lf.mu.Unlock()
	c.mu.Unlock()
}

// --- same-lock re-acquisition ---------------------------------------------

func selfDeadlock(c *Cache) {
	c.mu.Lock()
	c.mu.Lock() // want `two Cache-class locks`
	c.mu.Unlock()
	c.mu.Unlock()
}

// --- acquisition cycles among unranked locks -------------------------------

type P struct{ mu sync.Mutex }

type Q struct{ mu sync.Mutex }

// pThenQ and qThenP individually look fine (both locks are outside the
// documented order), but together they form a cycle; the analyzer unions
// the acquisition edges and reports the first edge of the cycle it sees.
func pThenQ(p *P, q *Q) {
	p.mu.Lock()
	q.mu.Lock() // want `lock acquisition cycle P\.mu -> Q\.mu -> P\.mu`
	q.mu.Unlock()
	p.mu.Unlock()
}

func qThenP(p *P, q *Q) {
	q.mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	q.mu.Unlock()
}

// --- function literals -----------------------------------------------------

// A literal runs with its own lock context: acquiring a shard lock inside
// one while the caller holds a cache lock is not a (synchronous) inversion
// at this site, but the acquisition still folds into the summary — callers
// of lockViaLit holding a Cache lock are flagged at their own call site.
func lockViaLit(sh *Shard) {
	go func() {
		sh.mu.Lock()
		sh.mu.Unlock()
	}()
}

func callerOfLit(c *Cache, sh *Shard) {
	c.mu.Lock()
	lockViaLit(sh) // want `lock order violation`
	c.mu.Unlock()
}
