// Package lint ties the simlint pieces together: the analyzer registry and
// the per-package runner that applies analyzers and the //simlint:ignore
// suppression rules. Both driver modes of cmd/simlint (standalone and
// `go vet -vettool`) run packages through this code, so suppressions and
// reason-checking behave identically everywhere.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/atomicfield"
	"hugeomp/internal/lint/cowshared"
	"hugeomp/internal/lint/determinism"
	"hugeomp/internal/lint/directive"
	"hugeomp/internal/lint/lockdiscipline"
	"hugeomp/internal/lint/padding"
	"hugeomp/internal/lint/panicboundary"
)

// Analyzers is the simlint suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		lockdiscipline.Analyzer,
		atomicfield.Analyzer,
		cowshared.Analyzer,
		padding.Analyzer,
		panicboundary.Analyzer,
	}
}

// A Diagnostic is one reported finding after suppression filtering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Unit is the package material the runner needs (a subset of load.Package,
// shaped so the vettool mode can fill it without the loader).
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// Run applies the analyzers to one package, drops diagnostics suppressed by
// a reasoned //simlint:ignore, and reports reasonless ignores as findings
// of the "ignore" pseudo-rule. Diagnostics come back in file/line order.
func Run(u *Unit, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	igs := directive.Ignores(u.Fset, u.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      u.Files,
			Pkg:        u.Pkg,
			TypesInfo:  u.Info,
			TypesSizes: u.Sizes,
			Report: func(d analysis.Diagnostic) {
				if igs.Match(u.Fset, a.Name, d.Pos) {
					return
				}
				out = append(out, Diagnostic{
					Analyzer: a.Name,
					Pos:      u.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	for _, ig := range igs.Invalid() {
		out = append(out, Diagnostic{
			Analyzer: "ignore",
			Pos:      u.Fset.Position(ig.Pos),
			Message:  "//simlint:ignore needs a rule name and a written reason: every suppression must justify itself",
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
