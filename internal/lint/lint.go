// Package lint ties the simlint pieces together: the analyzer registry and
// the per-package runner that applies analyzers and the //simlint:ignore
// suppression rules. Both driver modes of cmd/simlint (standalone and
// `go vet -vettool`) run packages through this code, so suppressions,
// reason-checking and fact propagation behave identically everywhere.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hugeomp/internal/lint/analysis"
	"hugeomp/internal/lint/atomicfield"
	"hugeomp/internal/lint/cowshared"
	"hugeomp/internal/lint/ctxflow"
	"hugeomp/internal/lint/determinism"
	"hugeomp/internal/lint/dettaint"
	"hugeomp/internal/lint/directive"
	"hugeomp/internal/lint/lockdiscipline"
	"hugeomp/internal/lint/lockorder"
	"hugeomp/internal/lint/padding"
	"hugeomp/internal/lint/panicboundary"
)

// Analyzers is the simlint suite, in reporting order. The interprocedural
// analyzers (dettaint, lockorder, ctxflow) read and write facts through
// Unit.Facts; the rest are single-package.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		dettaint.Analyzer,
		lockdiscipline.Analyzer,
		lockorder.Analyzer,
		ctxflow.Analyzer,
		atomicfield.Analyzer,
		cowshared.Analyzer,
		padding.Analyzer,
		panicboundary.Analyzer,
	}
}

// A Diagnostic is one finding. Suppressed findings are included (for the
// machine-readable output, which records the ignore status); text printers
// and exit codes must filter on !Suppressed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Trace is the interprocedural call chain behind the finding, outermost
	// frame first (empty for single-function findings).
	Trace []string
	// Suppressed marks a finding covered by a reasoned //simlint:ignore;
	// SuppressReason carries the written justification.
	Suppressed     bool
	SuppressReason string
}

// Unit is the package material the runner needs (a subset of load.Package,
// shaped so the vettool mode can fill it without the loader).
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
	// Facts carries per-function summaries across packages for the
	// interprocedural analyzers. May be nil (single-package mode): analyzers
	// then assume conservative defaults at package boundaries.
	Facts *analysis.FactStore
}

// Run applies the analyzers to one package. Diagnostics suppressed by a
// reasoned //simlint:ignore are returned with Suppressed set; reasonless and
// stale ignores are reported as findings of the "ignore" pseudo-rule.
// Diagnostics come back in file/line order.
//
// Test files are excluded globally: the simlint contracts bind simulation
// results, not test diagnostics, and `go vet` (which runs analyzers on test
// variants) must agree finding-for-finding with the standalone runner.
func Run(u *Unit, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	files := u.Files[:0:0]
	for _, f := range u.Files {
		if !strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	igs := directive.Ignores(u.Fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      files,
			Pkg:        u.Pkg,
			TypesInfo:  u.Info,
			TypesSizes: u.Sizes,
			Facts:      u.Facts,
			Report: func(d analysis.Diagnostic) {
				diag := Diagnostic{
					Analyzer: a.Name,
					Pos:      u.Fset.Position(d.Pos),
					Message:  d.Message,
					Trace:    d.Trace,
				}
				if ig := igs.Find(u.Fset, a.Name, d.Pos); ig != nil {
					diag.Suppressed = true
					diag.SuppressReason = ig.Reason
				}
				out = append(out, diag)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	for _, ig := range igs.Invalid() {
		out = append(out, Diagnostic{
			Analyzer: "ignore",
			Pos:      u.Fset.Position(ig.Pos),
			Message:  "//simlint:ignore needs a rule name and a written reason: every suppression must justify itself",
		})
	}
	for _, ig := range igs.Stale() {
		out = append(out, Diagnostic{
			Analyzer: "ignore",
			Pos:      u.Fset.Position(ig.Pos),
			Message: "stale //simlint:ignore " + ig.RuleList() + " (" + ig.Reason +
				"): it no longer suppresses anything; delete it",
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
