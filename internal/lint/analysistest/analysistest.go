// Package analysistest runs an analyzer over a small corpus package and
// compares its diagnostics against `// want` comments, mirroring the
// x/tools package of the same name:
//
//	m := map[int]int{}
//	for k := range m {
//		total += float64(k) // want `does not commute`
//	}
//
// A want comment holds one or more Go string literals, each a regular
// expression that must match the message of a distinct diagnostic reported
// on that line. Lines without a want comment must produce no diagnostics.
// Corpus packages live under testdata/src/<name>/ and may import only the
// standard library (resolved by the compiler's source importer, so the
// harness works offline).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hugeomp/internal/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads testdata/src/<pkgname>, applies the analyzer, and reports any
// mismatch between its diagnostics and the corpus's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	pass, err := loadPackage(testdata, pkgname)
	if err != nil {
		t.Fatal(err)
	}

	var got []analysis.Diagnostic
	pass.Analyzer = a
	pass.Report = func(d analysis.Diagnostic) {
		if d.Category == "" {
			d.Category = a.Name
		}
		got = append(got, d)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, pass.Fset, pass.Files)
	matched := make([]bool, len(wants))

	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		p := pass.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", posn(p), d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("^(?:/[/*] *)?want (.*)$")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSuffix(c.Text, "*/")
				m := wantRE.FindStringSubmatch(strings.TrimSpace(text))
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				for _, lit := range splitLits(t, posn(p), m[1]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn(p), lit, err)
					}
					wants = append(wants, want{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitLits parses a sequence of Go string literals: `a` "b" ...
func splitLits(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var end int
		switch s[0] {
		case '`':
			end = strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern", pos)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			rest := s[1:]
			i := 0
			for ; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
				} else if rest[i] == '"' {
					break
				}
			}
			if i >= len(rest) {
				t.Fatalf("%s: unterminated want pattern", pos)
			}
			unq, err := strconv.Unquote(s[:i+2])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:i+2], err)
			}
			out = append(out, unq)
			s = s[i+2:]
		default:
			t.Fatalf("%s: want patterns must be Go string literals, got %q", pos, s)
		}
		s = strings.TrimSpace(s)
	}
	return out
}

func loadPackage(testdata, pkgname string) (*analysis.Pass, error) {
	dir := filepath.Join(testdata, "src", pkgname)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil), Sizes: sizes}
	pkg, err := conf.Check(pkgname, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgname, err)
	}
	return &analysis.Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: sizes,
	}, nil
}

func posn(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
