// Package diskcache is the crash-safe, content-addressed on-disk layer under
// internal/memo: a directory of result entries keyed by the memo's canonical
// SHA-256 keys, shared by every process pointed at the same path. A sweep
// populates it, a restarted simd serves from it, a chaos soak reuses it — the
// cross-process complement of the per-process memo.
//
// The store never trusts its own bytes. Every entry carries a fixed header
// (magic, format version, payload length, SHA-256 checksum) and is written to
// a temporary file in the same directory and atomically renamed into place,
// so a reader can only ever observe a complete entry or none. Anything else —
// truncated by a torn write, bit-flipped by a bad disk, left behind by a
// foreign format version — reads as a miss, is counted, and is deleted
// (garbage collection is lazy: the corrupt entry is removed the first time it
// is touched). A result-format change additionally changes every canonical
// key (memo.SchemaVersion is folded into the hash), so a stale entry can
// never decode as fresh even if its header survives.
//
// Concurrent processes coordinate through advisory per-key lock files:
// GetOrCompute lets exactly one process compute a missing entry while the
// others poll for the published result. A leader that fails releases its lock
// without publishing, so a waiter promotes itself and retries; a leader that
// dies without cleaning up is timed out (the lock's mtime exceeds the TTL)
// and its lock is stolen — waiters can stall for at most the TTL, never
// deadlock.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// FormatVersion is the on-disk entry format generation. A reader that finds
// any other version treats the entry as stale: a miss, counted and deleted.
const FormatVersion = 1

// magic marks an entry file as ours; anything else is foreign garbage.
var magic = [4]byte{'H', 'O', 'M', 'C'}

// headerSize is magic + version (uint32) + payload length (uint64) +
// SHA-256 checksum.
const headerSize = 4 + 4 + 8 + sha256.Size

const (
	defaultLockTTL = 2 * time.Minute
	defaultPoll    = 5 * time.Millisecond
)

// storeStats counts the store's outcomes on one padded cache line so
// concurrent readers and writers never false-share (layout checked by
// simlint's padding analyzer).
//
//simlint:padded
type storeStats struct {
	hits        atomic.Uint64
	misses      atomic.Uint64
	writes      atomic.Uint64
	corrupt     atomic.Uint64
	stale       atomic.Uint64
	waits       atomic.Uint64
	steals      atomic.Uint64
	writeErrors atomic.Uint64
}

// Stats is a snapshot of the store's lifetime counts.
type Stats struct {
	// Hits and Misses count Get outcomes (GetOrCompute calls Get under the
	// hood, so its lookups are included).
	Hits, Misses uint64
	// Writes counts entries atomically published.
	Writes uint64
	// CorruptSkips counts entries read as misses because they were torn,
	// truncated, bit-flipped or foreign garbage — and deleted.
	CorruptSkips uint64
	// StaleVersions counts entries read as misses because their format
	// version was not FormatVersion — and deleted.
	StaleVersions uint64
	// Waits counts GetOrCompute calls that found another process computing
	// and polled; Steals counts locks broken after the TTL.
	Waits, Steals uint64
	// WriteErrors counts computed results that could not be persisted (the
	// caller still gets the result; the cache just stays cold for that key).
	WriteErrors uint64
}

// Store is one handle on an on-disk cache directory. Handles are safe for
// concurrent use, and any number of handles — in any number of processes —
// may share a directory.
type Store struct {
	dir     string
	lockTTL time.Duration
	poll    time.Duration
	stats   storeStats
}

// Open creates (if needed) and opens the cache directory at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &Store{dir: dir, lockTTL: defaultLockTTL, poll: defaultPoll}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's lifetime counts.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:          s.stats.hits.Load(),
		Misses:        s.stats.misses.Load(),
		Writes:        s.stats.writes.Load(),
		CorruptSkips:  s.stats.corrupt.Load(),
		StaleVersions: s.stats.stale.Load(),
		Waits:         s.stats.waits.Load(),
		Steals:        s.stats.steals.Load(),
		WriteErrors:   s.stats.writeErrors.Load(),
	}
}

// entryPath maps a key to its file: two-level fan-out on the first hex byte
// so huge grids don't pile one directory up. Keys are the memo's lowercase
// hex SHA-256 strings; anything else is re-hashed into that alphabet first,
// so a hostile key can never escape the cache directory.
func (s *Store) entryPath(key string) string {
	key = safeKey(key)
	return filepath.Join(s.dir, key[:2], key+".e")
}

func (s *Store) lockPath(key string) string {
	key = safeKey(key)
	return filepath.Join(s.dir, key[:2], key+".lock")
}

func safeKey(key string) string {
	if len(key) >= 2 && isHex(key) {
		return key
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(key)))
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the payload stored under key. Absent entries are misses;
// corrupt, truncated or foreign-version entries are misses too, counted and
// garbage-collected, never errors: the disk layer can only ever cost a
// recomputation, not correctness.
func (s *Store) Get(key string) ([]byte, bool) {
	payload, ok := s.read(key)
	if ok {
		s.stats.hits.Add(1)
	} else {
		s.stats.misses.Add(1)
	}
	return payload, ok
}

// read is Get without the hit/miss accounting (corrupt and stale entries are
// still counted and collected): GetOrCompute's under-lock double-check uses
// it so one caller-visible lookup never counts as two.
func (s *Store) read(key string) ([]byte, bool) {
	path := s.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	payload, err := decodeEntry(raw)
	if err != nil {
		if errors.Is(err, errStaleVersion) {
			s.stats.stale.Add(1)
		} else {
			s.stats.corrupt.Add(1)
		}
		_ = os.Remove(path) // lazy GC: miss now, gone next time
		return nil, false
	}
	return payload, true
}

var errStaleVersion = errors.New("diskcache: foreign format version")

// decodeEntry validates raw against the header contract and returns the
// payload. Every failure mode reads as an error, never a panic, whatever the
// bytes are.
func decodeEntry(raw []byte) ([]byte, error) {
	if len(raw) < headerSize {
		return nil, fmt.Errorf("diskcache: entry truncated at %d bytes", len(raw))
	}
	if !bytes.Equal(raw[:4], magic[:]) {
		return nil, errors.New("diskcache: bad magic")
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != FormatVersion {
		return nil, errStaleVersion
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	payload := raw[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("diskcache: payload length %d, header says %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[16:16+sha256.Size]) {
		return nil, errors.New("diskcache: checksum mismatch")
	}
	return payload, nil
}

func encodeEntry(payload []byte) []byte {
	raw := make([]byte, headerSize+len(payload))
	copy(raw[:4], magic[:])
	binary.LittleEndian.PutUint32(raw[4:8], FormatVersion)
	binary.LittleEndian.PutUint64(raw[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(raw[16:16+sha256.Size], sum[:])
	copy(raw[headerSize:], payload)
	return raw
}

// Put publishes payload under key: written to a temporary file in the entry's
// directory, fsynced, and atomically renamed into place, so no reader —
// in this process or any other — can observe a partial entry.
func (s *Store) Put(key string, payload []byte) error {
	path := s.entryPath(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encodeEntry(payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	syncDir(dir)
	s.stats.writes.Add(1)
	return nil
}

// syncDir fsyncs a directory so the rename itself is durable; best-effort
// (some filesystems refuse directory fsync — the entry is still atomic).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// GetOrCompute returns the payload stored under key, computing and publishing
// it on first use — across processes. Exactly one process computes a missing
// key at a time: the first to create the key's advisory lock file leads,
// every other polls until the entry appears or the lock is released (a failed
// leader) or goes stale past the TTL (a dead one). A compute error is
// returned to the leader's caller and publishes nothing, so the key stays
// retryable. A computed result that cannot be persisted is still returned —
// persistence failures cost future hits, never the present answer.
func (s *Store) GetOrCompute(key string, compute func() ([]byte, error)) ([]byte, error) {
	for {
		if payload, ok := s.Get(key); ok {
			return payload, nil
		}
		locked, err := s.tryLock(key)
		if err != nil {
			// The directory itself is unusable (permissions, disk full):
			// degrade to computing without coordination.
			payload, cerr := compute()
			if cerr != nil {
				return nil, cerr
			}
			s.stats.writeErrors.Add(1)
			return payload, nil
		}
		if !locked {
			s.stats.waits.Add(1)
			s.waitFor(key)
			continue
		}
		// Leader. Double-check under the lock: the previous leader may have
		// published between our miss and our acquisition.
		if payload, ok := s.read(key); ok {
			s.stats.hits.Add(1)
			s.unlock(key)
			return payload, nil
		}
		payload, cerr := func() ([]byte, error) {
			defer s.unlock(key)
			payload, cerr := compute()
			if cerr != nil {
				return nil, cerr
			}
			if werr := s.Put(key, payload); werr != nil {
				s.stats.writeErrors.Add(1)
			}
			return payload, nil
		}()
		return payload, cerr
	}
}

// tryLock attempts to create the key's advisory lock file. (true, nil) means
// this process leads; (false, nil) means another holds it; an error means the
// directory cannot host lock files at all.
func (s *Store) tryLock(key string) (bool, error) {
	path := s.lockPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return false, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return false, nil
		}
		return false, err
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	_ = f.Close()
	return true, nil
}

func (s *Store) unlock(key string) {
	_ = os.Remove(s.lockPath(key))
}

// waitFor polls until the key's entry exists, its lock is released, or the
// lock goes stale past the TTL (in which case it is stolen). It never waits
// longer than the TTL, so a crashed leader cannot deadlock its waiters.
func (s *Store) waitFor(key string) {
	lock := s.lockPath(key)
	entry := s.entryPath(key)
	for {
		time.Sleep(s.poll)
		if _, err := os.Stat(entry); err == nil {
			return
		}
		fi, err := os.Stat(lock)
		if err != nil {
			return // lock released: retry acquisition
		}
		if time.Since(fi.ModTime()) > s.lockTTL {
			_ = os.Remove(lock)
			s.stats.steals.Add(1)
			return
		}
	}
}
