package diskcache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hugeomp/internal/memo"
)

func openTest(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.poll = time.Millisecond
	return s
}

const key = "0f1e2d3c4b5a69788796a5b4c3d2e1f00f1e2d3c4b5a69788796a5b4c3d2e1f0"

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t)
	payload := []byte(`{"cycles":12345}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	// A second handle on the same directory — another process — sees it.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("cross-handle Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 write", st)
	}
}

// TestCorruptEntriesReadAsMisses: every way an entry can rot — torn write
// (truncation, including inside the header), bit flip in the payload, bit
// flip in the header, foreign format version, foreign garbage — reads as a
// miss, never a panic or an error, and the rotten file is collected.
func TestCorruptEntriesReadAsMisses(t *testing.T) {
	payload := []byte(`{"kernel":"CG","cycles":987654321,"pad":"xxxxxxxxxxxxxxxx"}`)
	cases := []struct {
		name  string
		mutat func(raw []byte) []byte
		stale bool
	}{
		{"truncated-payload", func(raw []byte) []byte { return raw[:len(raw)-7] }, false},
		{"truncated-header", func(raw []byte) []byte { return raw[:headerSize/2] }, false},
		{"empty", func(raw []byte) []byte { return nil }, false},
		{"payload-bit-flip", func(raw []byte) []byte { raw[headerSize+3] ^= 0x40; return raw }, false},
		{"checksum-bit-flip", func(raw []byte) []byte { raw[20] ^= 0x01; return raw }, false},
		{"length-lie", func(raw []byte) []byte { binary.LittleEndian.PutUint64(raw[8:16], 3); return raw }, false},
		{"bad-magic", func(raw []byte) []byte { raw[0] = 'X'; return raw }, false},
		{"foreign-version", func(raw []byte) []byte {
			binary.LittleEndian.PutUint32(raw[4:8], FormatVersion+7)
			return raw
		}, true},
		{"garbage", func(raw []byte) []byte { return []byte("not an entry at all, just bytes") }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openTest(t)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := s.entryPath(key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutat(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Error("corrupt entry not garbage-collected")
			}
			st := s.Stats()
			if tc.stale {
				if st.StaleVersions != 1 {
					t.Errorf("stale versions = %d, want 1 (%+v)", st.StaleVersions, st)
				}
			} else if st.CorruptSkips != 1 {
				t.Errorf("corrupt skips = %d, want 1 (%+v)", st.CorruptSkips, st)
			}
			// The key is computable again after collection.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("re-put after GC: Get = %q, %v", got, ok)
			}
		})
	}
}

// TestGetOrComputeSingleFlightAcrossHandles: two handles on one directory —
// standing in for two processes — running many concurrent GetOrCompute calls
// over a shared key space compute each key exactly once.
func TestGetOrComputeSingleFlightAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.poll, b.poll = time.Millisecond, time.Millisecond

	const keys = 4
	const callers = 8
	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		s := a
		if c%2 == 1 {
			s = b
		}
		wg.Add(1)
		go func(s *Store, c int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				want := fmt.Sprintf(`{"k":%d}`, k)
				got, err := s.GetOrCompute(testKey(k), func() ([]byte, error) {
					computes[k].Add(1)
					time.Sleep(2 * time.Millisecond) // widen the race window
					return []byte(want), nil
				})
				if err != nil {
					t.Errorf("caller %d key %d: %v", c, k, err)
					return
				}
				if string(got) != want {
					t.Errorf("caller %d key %d: got %q want %q", c, k, got, want)
				}
			}
		}(s, c)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want exactly 1", k, n)
		}
	}
}

// TestLeaderAbortDoesNotDeadlock: a leader whose compute fails releases its
// lock without publishing, a concurrent waiter on another handle promotes
// itself and computes, and the key ends up cached — no deadlock, no lost
// result.
func TestLeaderAbortDoesNotDeadlock(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.poll, b.poll = time.Millisecond, time.Millisecond

	leaderIn := make(chan struct{})
	aborted := errors.New("leader aborted")
	done := make(chan error, 1)
	go func() {
		_, err := a.GetOrCompute(key, func() ([]byte, error) {
			close(leaderIn)
			time.Sleep(5 * time.Millisecond) // hold the lock while the waiter arrives
			return nil, aborted
		})
		done <- err
	}()
	<-leaderIn
	got, err := b.GetOrCompute(key, func() ([]byte, error) {
		return []byte("from-waiter"), nil
	})
	if err != nil {
		t.Fatalf("waiter: %v", err)
	}
	if string(got) != "from-waiter" {
		t.Fatalf("waiter got %q", got)
	}
	if err := <-done; !errors.Is(err, aborted) {
		t.Fatalf("leader error = %v, want its own abort", err)
	}
	// The waiter published, so a third read hits.
	if cached, ok := a.Get(key); !ok || string(cached) != "from-waiter" {
		t.Fatalf("after abort+retry: Get = %q, %v", cached, ok)
	}
	if _, err := os.Stat(a.lockPath(key)); !errors.Is(err, os.ErrNotExist) {
		t.Error("lock file leaked")
	}
}

// TestStaleLockIsStolen: a lock whose holder died (mtime past the TTL) is
// broken by a waiter instead of deadlocking it.
func TestStaleLockIsStolen(t *testing.T) {
	s := openTest(t)
	s.lockTTL = 10 * time.Millisecond
	// Fake a dead leader: create the lock by hand and never release it.
	if ok, err := s.tryLock(key); err != nil || !ok {
		t.Fatalf("tryLock = %v, %v", ok, err)
	}
	old := time.Now().Add(-time.Second)
	if err := os.Chtimes(s.lockPath(key), old, old); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetOrCompute(key, func() ([]byte, error) {
		return []byte("stolen"), nil
	})
	if err != nil || string(got) != "stolen" {
		t.Fatalf("GetOrCompute after steal = %q, %v", got, err)
	}
	if st := s.Stats(); st.Steals != 1 {
		t.Errorf("steals = %d, want 1 (%+v)", st.Steals, st)
	}
}

// TestUnusableDirectoryDegrades: a store whose directory cannot host files
// still answers — compute runs uncoordinated and the failure is counted.
func TestUnusableDirectoryDegrades(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "gone")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// Replace the directory with a file so MkdirAll fails too.
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetOrCompute(key, func() ([]byte, error) {
		return []byte("computed"), nil
	})
	if err != nil || string(got) != "computed" {
		t.Fatalf("GetOrCompute = %q, %v", got, err)
	}
	if st := s.Stats(); st.WriteErrors == 0 {
		t.Errorf("write errors = 0, want > 0 (%+v)", st)
	}
}

// TestHostileKeysStayInside: keys that are not canonical hex are re-hashed,
// so they cannot traverse outside the cache directory.
func TestHostileKeysStayInside(t *testing.T) {
	s := openTest(t)
	for _, k := range []string{"../../etc/passwd", "a/b", "", "UPPER", "short"} {
		if err := s.Put(k, []byte("v")); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
		got, ok := s.Get(k)
		if !ok || string(got) != "v" {
			t.Fatalf("Get(%q) = %q, %v", k, got, ok)
		}
		rel, err := filepath.Rel(s.Dir(), s.entryPath(k))
		if err != nil || rel == ".." || filepath.IsAbs(rel) || len(rel) > 0 && rel[0] == '.' && rel[1] == '.' {
			t.Fatalf("entryPath(%q) escapes: %q", k, s.entryPath(k))
		}
	}
}

func testKey(k int) string {
	return fmt.Sprintf("%064x", 0xabc0+k)
}

// TestLayeredWarmRestart pairs the real memo.Cache with the disk layer: a
// first process computes and publishes, a "restarted" process (fresh memo,
// same directory) serves the same key from disk without computing.
func TestLayeredWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := memo.New()
	c1.SetBacking(s1)
	type result struct{ Cycles uint64 }
	var v result
	if hit, err := c1.GetOrCompute(key, func() (any, error) { return result{77}, nil }, &v); err != nil || hit {
		t.Fatalf("first compute: hit=%v err=%v", hit, err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := memo.New()
	c2.SetBacking(s2)
	v = result{}
	hit, err := c2.GetOrCompute(key, func() (any, error) {
		t.Error("compute ran on warm restart")
		return nil, errors.New("unreachable")
	}, &v)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || v.Cycles != 77 {
		t.Fatalf("warm restart: hit=%v v=%+v", hit, v)
	}
	if st := s2.Stats(); st.Hits != 1 {
		t.Errorf("disk hits = %d, want 1 (%+v)", st.Hits, st)
	}
}
