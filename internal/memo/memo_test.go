package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

type cfg struct {
	Model   string
	Threads int
	Costs   map[string]uint64
}

func TestKeyOfStability(t *testing.T) {
	a := cfg{Model: "Opteron270", Threads: 4, Costs: map[string]uint64{"walk": 50, "mem": 120}}
	b := cfg{Model: "Opteron270", Threads: 4, Costs: map[string]uint64{"mem": 120, "walk": 50}}
	ka, err := KeyOf("sweep", a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := KeyOf("sweep", b)
	if err != nil {
		t.Fatal(err)
	}
	// encoding/json sorts map keys, so insertion order must not matter.
	if ka != kb {
		t.Errorf("structurally equal configs hashed differently: %s vs %s", ka, kb)
	}
	c := a
	c.Threads = 8
	if kc := MustKey("sweep", c); kc == ka {
		t.Error("different configs collided")
	}
	if kp := MustKey("chaos", a); kp == ka {
		t.Error("different prefixes collided")
	}
	if len(ka) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(ka))
	}
}

func TestKeyOfUnencodable(t *testing.T) {
	if _, err := KeyOf(func() {}); err == nil {
		t.Error("func value produced a key")
	}
}

func TestGetOrComputeRoundTrip(t *testing.T) {
	c := New()
	type result struct {
		Cycles uint64
		Name   string
	}
	calls := 0
	compute := func() (any, error) {
		calls++
		return result{Cycles: 1234, Name: "CG"}, nil
	}
	var r1, r2 result
	hit, err := c.GetOrCompute("k", compute, &r1)
	if err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v", hit, err)
	}
	hit, err = c.GetOrCompute("k", compute, &r2)
	if err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v", hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	if r1 != r2 || r1.Cycles != 1234 {
		t.Errorf("round trip mismatch: %+v vs %+v", r1, r2)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestGetOrComputeHitDoesNotAlias(t *testing.T) {
	c := New()
	type result struct{ Xs []int }
	var r1, r2 result
	if _, err := c.GetOrCompute("k", func() (any, error) {
		return result{Xs: []int{1, 2, 3}}, nil
	}, &r1); err != nil {
		t.Fatal(err)
	}
	r1.Xs[0] = 99 // mutating a returned result must not poison the cache
	if _, err := c.GetOrCompute("k", func() (any, error) {
		t.Fatal("compute re-ran on a hit")
		return nil, nil
	}, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Xs[0] != 1 {
		t.Errorf("hit observed a caller's mutation: %v", r2.Xs)
	}
}

func TestGetOrComputeErrorNotMemoized(t *testing.T) {
	c := New()
	want := errors.New("boom")
	var out int
	if _, err := c.GetOrCompute("k", func() (any, error) { return nil, want }, &out); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	// Errors are not content-addressed facts (a cancelled run says nothing
	// about the config): the key is forgotten and the next caller retries.
	if c.Len() != 0 {
		t.Fatalf("errored entry retained: len = %d, want 0", c.Len())
	}
	if _, err := c.GetOrCompute("k", func() (any, error) { return 7, nil }, &out); err != nil {
		t.Fatalf("retry after error: %v", err)
	}
	if out != 7 {
		t.Fatalf("retry decoded %d, want 7", out)
	}
}

func TestForget(t *testing.T) {
	c := New()
	calls := 0
	compute := func() (any, error) { calls++; return calls, nil }
	var out int
	for _, want := range []int{1, 1} {
		if _, err := c.GetOrCompute("k", compute, &out); err != nil || out != want {
			t.Fatalf("out = %d (err %v), want %d", out, err, want)
		}
	}
	c.Forget("k")
	if _, err := c.GetOrCompute("k", compute, &out); err != nil || out != 2 {
		t.Fatalf("after Forget: out = %d (err %v), want recompute = 2", out, err)
	}
}

// TestBoundedEviction: the capacity bound evicts in insertion order — the
// deterministic order a replayed request sequence reproduces — and counts
// every eviction.
func TestBoundedEviction(t *testing.T) {
	c := NewBounded(2)
	var out string
	get := func(key string) bool {
		t.Helper()
		hit, err := c.GetOrCompute(key, func() (any, error) { return key, nil }, &out)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	get("a")
	get("b")
	if !get("a") {
		t.Error("a evicted while within capacity")
	}
	get("c") // exceeds capacity: evicts "a" (oldest inserted, even though just hit)
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if got := c.Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if get("a") {
		t.Error("a still cached after eviction")
	}
	// Reinserting "a" evicted "b"; "c" must survive both rounds.
	if !get("c") {
		t.Error("c evicted out of insertion order")
	}
	if c.Len() != 2 || c.Evictions() != 2 {
		t.Errorf("len = %d evictions = %d, want 2 and 2", c.Len(), c.Evictions())
	}
}

// TestBoundedEvictionSkipsForgotten: order slots whose entry errored (and was
// dropped) or was explicitly forgotten are skipped without counting.
func TestBoundedEvictionSkipsForgotten(t *testing.T) {
	c := NewBounded(2)
	var out int
	boom := errors.New("boom")
	if _, err := c.GetOrCompute("err", func() (any, error) { return nil, boom }, &out); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	for i, key := range []string{"a", "b", "c"} {
		if _, err := c.GetOrCompute(key, func() (any, error) { return i, nil }, &out); err != nil {
			t.Fatal(err)
		}
	}
	// "err" was dropped on failure, so inserting c evicted a (the oldest
	// live entry), not the stale slot.
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1 (stale slots must not count)", c.Evictions())
	}
	if hit, _ := c.GetOrCompute("b", func() (any, error) { return 9, nil }, &out); !hit {
		t.Error("b evicted; the stale slot was charged against a live entry")
	}
}

// TestGetOrComputeSingleFlight: concurrent callers of one key run compute
// exactly once and all decode the same stored bytes — a sweep whose grid
// repeats a point simulates it once even under internal/par.
func TestGetOrComputeSingleFlight(t *testing.T) {
	c := New()
	var calls atomic.Int64
	const workers = 16
	results := make([]uint64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var v uint64
			if _, err := c.GetOrCompute("k", func() (any, error) {
				calls.Add(1)
				return uint64(42), nil
			}, &v); err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times under contention, want 1", calls.Load())
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("worker %d decoded %d, want 42", i, v)
		}
	}
	if hits, misses := c.Stats(); hits+misses != workers || misses < 1 {
		t.Errorf("stats = (%d, %d), want %d total with >= 1 miss", hits, misses, workers)
	}
}

// fakeBacking is an in-memory stand-in for the disk layer.
type fakeBacking struct {
	mu      sync.Mutex
	entries map[string][]byte
	hits    int
}

func newFakeBacking() *fakeBacking { return &fakeBacking{entries: map[string][]byte{}} }

func (f *fakeBacking) GetOrCompute(key string, compute func() ([]byte, error)) ([]byte, error) {
	f.mu.Lock()
	data, ok := f.entries[key]
	if ok {
		f.hits++
	}
	f.mu.Unlock()
	if ok {
		return data, nil
	}
	data, err := compute()
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.entries[key] = data
	f.mu.Unlock()
	return data, nil
}

// TestSchemaVersionFolded pins the key recipe: the schema-version line is
// hashed ahead of the parts, so bumping SchemaVersion reshuffles every key
// and a persistent store can never serve an old-format entry to new code.
func TestSchemaVersionFolded(t *testing.T) {
	h := sha256.New()
	fmt.Fprintf(h, "memo/schema/%d\n", SchemaVersion)
	if err := json.NewEncoder(h).Encode("probe"); err != nil {
		t.Fatal(err)
	}
	want := hex.EncodeToString(h.Sum(nil))
	if got := MustKey("probe"); got != want {
		t.Errorf("KeyOf does not fold the schema version:\ngot  %s\nwant %s", got, want)
	}
}

// TestBackingServesCrossProcessHits: a value published through one cache is
// served to a fresh cache (a restarted process) from the shared backing,
// without running compute, and reported as cached.
func TestBackingServesCrossProcessHits(t *testing.T) {
	b := newFakeBacking()
	c1 := New()
	c1.SetBacking(b)
	var v int
	hit, err := c1.GetOrCompute("k", func() (any, error) { return 7, nil }, &v)
	if err != nil || hit || v != 7 {
		t.Fatalf("first compute: hit=%v v=%d err=%v", hit, v, err)
	}
	c2 := New() // restart: empty memory, same backing
	c2.SetBacking(b)
	ran := false
	v = 0
	hit, err = c2.GetOrCompute("k", func() (any, error) { ran = true; return 0, nil }, &v)
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("compute ran despite a backing hit")
	}
	if !hit {
		t.Error("backing hit not reported as cached")
	}
	if v != 7 {
		t.Errorf("decoded %d from backing, want 7", v)
	}
	if b.hits != 1 {
		t.Errorf("backing hits = %d, want 1", b.hits)
	}
	// A second call on c2 is a pure memory hit: the backing is not touched.
	if hit, _ = c2.GetOrCompute("k", func() (any, error) { return 0, nil }, &v); !hit || b.hits != 1 {
		t.Errorf("memory layer did not absorb the repeat (hit=%v backing hits=%d)", hit, b.hits)
	}
}

// TestBackingErrorNotPublished: a failed compute publishes nothing to the
// backing store and stays retryable.
func TestBackingErrorNotPublished(t *testing.T) {
	b := newFakeBacking()
	c := New()
	c.SetBacking(b)
	boom := errors.New("boom")
	var v int
	if _, err := c.GetOrCompute("k", func() (any, error) { return nil, boom }, &v); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(b.entries) != 0 {
		t.Error("failed compute reached the backing store")
	}
	hit, err := c.GetOrCompute("k", func() (any, error) { return 5, nil }, &v)
	if err != nil || hit || v != 5 {
		t.Errorf("retry after failure: hit=%v v=%d err=%v", hit, v, err)
	}
	if len(b.entries) != 1 {
		t.Error("successful retry not published")
	}
}
