// Package memo provides deterministic result memoization for the simulator:
// a canonical content hash of (machine model, workload, params, seed, fault
// plan) keys a content-addressed cache of simulation results. Because every
// simulation is bit-deterministic, a cached result is indistinguishable from
// a re-run — drivers that revisit a (config, seed) grid point get counters
// back without simulating.
//
// Results are stored as their canonical JSON encoding (content-addressed
// bytes), so a hit decodes into the caller's result type without retaining
// any reference to the run that produced it, and any JSON-encodable result
// type works.
//
// Only successful computations are memoized. A compute that returns an error
// is reported to every caller collapsed onto it and then forgotten, so the
// next request for the key retries: error values are not content-addressed
// facts — a cancelled or deadline-expired run says something about the
// request that carried it, not about the (config, seed) point.
package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// SchemaVersion is the result-format generation folded into every canonical
// key. Bump it whenever the encoding of memoized results changes shape or
// meaning: the hash of every (config, seed) point changes with it, so a
// persistent store (internal/memo/diskcache) populated by an older binary can
// never be decoded as fresh — its stale entries become unreachable and are
// garbage-collected by the disk layer's own header check.
const SchemaVersion = 2

// KeyOf returns the canonical hash of the given parts: SHA-256 over the
// schema version followed by their JSON encodings in order. encoding/json
// writes struct fields in declared order and sorts map keys, so two
// structurally equal values always produce the same key. Parts that cannot
// be encoded (channels, funcs) are a caller bug and return an error.
func KeyOf(parts ...any) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "memo/schema/%d\n", SchemaVersion)
	enc := json.NewEncoder(h)
	for i, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("memo: key part %d: %w", i, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// MustKey is KeyOf for parts known to encode (config structs, scalars).
func MustKey(parts ...any) string {
	k, err := KeyOf(parts...)
	if err != nil {
		panic(err)
	}
	return k
}

// entry is one cached computation. once gives per-key single-flight: the
// first caller computes, concurrent callers with the same key block on the
// same once and then decode the stored bytes — so a sweep whose grid repeats
// a (config, seed) point simulates it exactly once even under internal/par.
// backed records that the flight was answered by the backing store without
// running compute (a cross-process hit).
type entry struct {
	key    string
	once   sync.Once
	data   []byte
	err    error
	backed bool
}

// Backing is an optional second-level store consulted when the in-memory
// layer misses: typically internal/memo/diskcache, shared across processes.
// GetOrCompute must return the bytes stored under key, running compute — at
// most once per key across every cooperating process — only when the store
// has none, and must not store anything when compute fails.
type Backing interface {
	GetOrCompute(key string, compute func() ([]byte, error)) ([]byte, error)
}

// cacheStats counts hits, misses and evictions on a padded line so
// concurrent sweep workers bumping them never false-share with the cache's
// map header (layout checked by simlint's padding analyzer).
//
//simlint:padded
type cacheStats struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	_         [40]byte
}

// Cache is a content-addressed result cache. The zero value is not usable;
// call New or NewBounded.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]*entry
	order    []*entry // insertion order; only maintained when bounded
	capacity int      // 0 = unbounded
	backing  Backing  // optional L2; nil = memory only
	stats    cacheStats
}

// New creates an empty, unbounded cache (batch drivers whose key space is the
// finite experiment grid).
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// NewBounded creates a cache holding at most capacity entries. When an
// insertion exceeds the capacity the oldest-inserted entry is evicted —
// eviction order is the deterministic insertion order, never host-timing
// access recency — so a long-lived service's memory stays bounded while the
// set of survivors after any request sequence is a pure function of that
// sequence. capacity <= 0 means unbounded.
func NewBounded(capacity int) *Cache {
	c := New()
	if capacity > 0 {
		c.capacity = capacity
	}
	return c
}

// SetBacking layers a second-level store under the in-memory cache: misses
// consult it before computing, computed results are published to it, and a
// backing hit counts as cached for the caller (the returned bool) without
// touching the in-memory hit/miss stats, which stay a statement about this
// process. Call before the cache is shared; not safe concurrently with
// GetOrCompute.
func (c *Cache) SetBacking(b Backing) { c.backing = b }

// GetOrCompute returns the result stored under key, computing and storing it
// on first use. compute's result is encoded to canonical JSON at store time
// and decoded into out (a non-nil pointer) on every return, hit or miss —
// so callers always observe the round-tripped value and a hit can never leak
// shared mutable state from the computing run. The returned bool reports
// whether the result came from a cache layer — this process's memory or the
// backing store (true) — or compute ran (false).
//
// If compute fails, every caller collapsed onto that flight observes its
// error and the key is forgotten, so a later identical request retries
// instead of replaying a stale failure. Nothing is published to the backing
// store on failure either, so the key stays retryable across processes.
func (c *Cache) GetOrCompute(key string, compute func() (any, error), out any) (bool, error) {
	c.mu.Lock()
	e, hit := c.entries[key]
	if !hit {
		e = &entry{key: key}
		c.entries[key] = e
		if c.capacity > 0 {
			c.order = append(c.order, e)
			c.evictLocked()
		}
	}
	c.mu.Unlock()
	if hit {
		c.stats.hits.Add(1)
	} else {
		c.stats.misses.Add(1)
	}
	e.once.Do(func() {
		if c.backing != nil {
			computed := false
			e.data, e.err = c.backing.GetOrCompute(e.key, func() ([]byte, error) {
				computed = true
				v, err := compute()
				if err != nil {
					return nil, err
				}
				return json.Marshal(v)
			})
			e.backed = e.err == nil && !computed
			return
		}
		v, err := compute()
		if err != nil {
			e.err = err
			return
		}
		e.data, e.err = json.Marshal(v)
	})
	if e.err != nil {
		c.forget(e)
		return hit, e.err
	}
	if err := json.Unmarshal(e.data, out); err != nil {
		return hit, fmt.Errorf("memo: decode %s: %w", key[:8], err)
	}
	return hit || e.backed, nil
}

// evictLocked trims the cache back to capacity, oldest insertion first. Order
// slots whose entry was already forgotten (errored computes, explicit
// Forget) are skipped without counting as evictions. Callers hold c.mu.
func (c *Cache) evictLocked() {
	for len(c.entries) > c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order[0] = nil
		c.order = c.order[1:]
		if c.entries[victim.key] == victim {
			delete(c.entries, victim.key)
			c.stats.evictions.Add(1)
		}
	}
}

// forget drops e if it is still the live entry for its key (a newer entry
// for the same key is left alone). The order slot goes stale and is skipped
// at eviction time.
func (c *Cache) forget(e *entry) {
	c.mu.Lock()
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
}

// Forget removes key from the cache if present, so the next GetOrCompute
// recomputes it. In-flight computations for the key are unaffected: their
// waiters still observe the flight's outcome.
func (c *Cache) Forget(key string) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// Stats returns the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.stats.hits.Load(), c.stats.misses.Load()
}

// Evictions returns the number of entries evicted by the capacity bound.
func (c *Cache) Evictions() uint64 { return c.stats.evictions.Load() }

// Capacity returns the configured bound (0 = unbounded).
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of distinct keys stored (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
