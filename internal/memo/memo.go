// Package memo provides deterministic result memoization for the simulator:
// a canonical content hash of (machine model, workload, params, seed, fault
// plan) keys a content-addressed cache of simulation results. Because every
// simulation is bit-deterministic, a cached result is indistinguishable from
// a re-run — drivers that revisit a (config, seed) grid point get counters
// back without simulating.
//
// Results are stored as their canonical JSON encoding (content-addressed
// bytes), so a hit decodes into the caller's result type without retaining
// any reference to the run that produced it, and any JSON-encodable result
// type works.
package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// KeyOf returns the canonical hash of the given parts: SHA-256 over their
// JSON encodings in order. encoding/json writes struct fields in declared
// order and sorts map keys, so two structurally equal values always produce
// the same key. Parts that cannot be encoded (channels, funcs) are a caller
// bug and return an error.
func KeyOf(parts ...any) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for i, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("memo: key part %d: %w", i, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// MustKey is KeyOf for parts known to encode (config structs, scalars).
func MustKey(parts ...any) string {
	k, err := KeyOf(parts...)
	if err != nil {
		panic(err)
	}
	return k
}

// entry is one cached computation. once gives per-key single-flight: the
// first caller computes, concurrent callers with the same key block on the
// same once and then decode the stored bytes — so a sweep whose grid repeats
// a (config, seed) point simulates it exactly once even under internal/par.
type entry struct {
	once sync.Once
	data []byte
	err  error
}

// cacheStats counts hits and misses on a padded line so concurrent sweep
// workers bumping them never false-share with the cache's map header
// (layout checked by simlint's padding analyzer).
//
//simlint:padded
type cacheStats struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	_      [48]byte
}

// Cache is a content-addressed result cache. The zero value is not usable;
// call New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	stats   cacheStats
}

// New creates an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// GetOrCompute returns the result stored under key, computing and storing it
// on first use. compute's result is encoded to canonical JSON at store time
// and decoded into out (a non-nil pointer) on every return, hit or miss —
// so callers always observe the round-tripped value and a hit can never leak
// shared mutable state from the computing run. The returned bool reports
// whether the result came from the cache (true) or compute ran (false).
func (c *Cache) GetOrCompute(key string, compute func() (any, error), out any) (bool, error) {
	c.mu.Lock()
	e, hit := c.entries[key]
	if !hit {
		e = &entry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if hit {
		c.stats.hits.Add(1)
	} else {
		c.stats.misses.Add(1)
	}
	e.once.Do(func() {
		v, err := compute()
		if err != nil {
			e.err = err
			return
		}
		e.data, e.err = json.Marshal(v)
	})
	if e.err != nil {
		return hit, e.err
	}
	if err := json.Unmarshal(e.data, out); err != nil {
		return hit, fmt.Errorf("memo: decode %s: %w", key[:8], err)
	}
	return hit, nil
}

// Stats returns the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.stats.hits.Load(), c.stats.misses.Load()
}

// Len returns the number of distinct keys stored (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
