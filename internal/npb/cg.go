package npb

import (
	"fmt"
	"math"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
)

// CG: a conjugate-gradient solve on a random sparse symmetric positive
// definite matrix, the NPB kernel with the least data locality: the matvec
// gathers p[colidx[k]] at random positions across a vector that spans far
// more 4 KB pages than the DTLB holds ("CG accesses randomly generated
// matrix entries. The stride size might be larger than a 4KB page and might
// benefit from large page support" — paper §4.2).
type CG struct {
	class Class
	n     int
	nzRow int

	a      *core.Array // matrix values, CSR
	colidx *core.Ints  // column indices
	rowstr *core.Ints  // row starts (n+1)
	x      *core.Array // rhs
	z      *core.Array // solution accumulator
	p, q   *core.Array // search direction, A·p
	r      *core.Array // residual

	codeMain *omp.CodeRegion
	codeVec  *omp.CodeRegion

	rho0, rhoFinal float64
	ran            bool
}

// NewCG returns a fresh CG kernel.
func NewCG() *CG { return &CG{} }

// Name implements Kernel.
func (k *CG) Name() string { return "CG" }

// PaperFootprint implements Kernel (Table 2, class B).
func (k *CG) PaperFootprint() (int64, int64) { return mb(1.4), mb(725) }

func (k *CG) geometry(class Class) (n, nzRow int) {
	// The gather vector (n x 8 bytes) must exceed the 4 KB DTLB reach
	// (Opteron: 2.2 MB = 544 pages) for the random gathers to walk, while
	// staying within the 16 MB 2 MB-page reach — the same relationship the
	// class-B vector (600 KB) had to the real TLBs under the full working
	// set pressure of the 725 MB matrix stream.
	switch class {
	case ClassS:
		return 65536, 6 // 512KB vector: mild pressure, fast tests
	case ClassW:
		return 524288, 4 // 4MB vector: ~half the gathers walk
	case ClassA:
		return 1310720, 4 // 10MB vector: most gathers walk
	default:
		return 2048, 5
	}
}

// DefaultIterations implements Kernel.
func (k *CG) DefaultIterations(class Class) int {
	switch class {
	case ClassS:
		return 3
	case ClassW:
		return 4
	case ClassA:
		return 5
	default:
		return 2
	}
}

// Setup implements Kernel: build the random SPD matrix (makea) and the
// vectors, all as transformed globals in the shared region.
func (k *CG) Setup(sys *core.System, class Class) error {
	k.class = class
	k.n, k.nzRow = k.geometry(class)

	// makea, phase 1: a random SYMMETRIC sparsity pattern — each row draws
	// `half` random partners and the entry is mirrored — made SPD later by
	// a barely-dominant diagonal, so CG is mathematically valid and
	// converges gradually (NPB CG's matrix is similarly mildly
	// conditioned). Exact nnz = n·(2·half + 1).
	rng := newLCG(314159)
	type ent struct {
		col int
		v   float64
	}
	half := (k.nzRow - 1) / 2
	if half < 1 {
		half = 1
	}
	rows := make([][]ent, k.n)
	for i := 0; i < k.n; i++ {
		for h := 0; h < half; h++ {
			j := rng.intn(k.n)
			if j == i {
				j = (j + 1) % k.n
			}
			v := rng.float() - 0.5
			rows[i] = append(rows[i], ent{j, v})
			rows[j] = append(rows[j], ent{i, v})
		}
	}
	nnz := k.n * (2*half + 1)

	var err error
	if k.a, err = sys.NewArray("cg.a", nnz); err != nil {
		return err
	}
	if k.colidx, err = sys.NewInts("cg.colidx", nnz); err != nil {
		return err
	}
	if k.rowstr, err = sys.NewInts("cg.rowstr", k.n+1); err != nil {
		return err
	}
	for _, v := range []struct {
		name string
		dst  **core.Array
	}{
		{"cg.x", &k.x}, {"cg.z", &k.z}, {"cg.p", &k.p}, {"cg.q", &k.q}, {"cg.r", &k.r},
	} {
		if *v.dst, err = sys.NewArray(v.name, k.n); err != nil {
			return err
		}
	}
	if k.codeMain, err = sys.NewCodeRegion("cg.matvec", 24*1024); err != nil {
		return err
	}
	if k.codeVec, err = sys.NewCodeRegion("cg.vecops", 12*1024); err != nil {
		return err
	}

	// makea, phase 2: pack CSR with the mirrored entries plus the dominant
	// diagonal.
	pos := 0
	for i := 0; i < k.n; i++ {
		k.rowstr.Data[i] = int64(pos)
		rowSum := 0.0
		for _, e := range rows[i] {
			k.colidx.Data[pos] = int64(e.col)
			k.a.Data[pos] = e.v
			rowSum += math.Abs(e.v)
			pos++
		}
		k.colidx.Data[pos] = int64(i)
		k.a.Data[pos] = rowSum + 0.05
		pos++
		rows[i] = nil
	}
	k.rowstr.Data[k.n] = int64(pos)
	if pos != nnz {
		return fmt.Errorf("cg: packed %d entries, expected %d", pos, nnz)
	}

	for i := 0; i < k.n; i++ {
		k.x.Data[i] = 1.0
	}
	return nil
}

// matvec computes q = A·p through the simulated memory system.
func (k *CG) matvec(rt *omp.RT) {
	rt.ParallelFor(k.codeMain, k.n, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			k.rowstr.LoadRange(c, lo, hi+1)
			for i := lo; i < hi; i++ {
				kb := int(k.rowstr.Data[i])
				ke := int(k.rowstr.Data[i+1])
				k.a.LoadRange(c, kb, ke)
				k.colidx.LoadRange(c, kb, ke)
				// The random gather: one bulk indexed access per row.
				// Row granularity preserves the kernel's DTLB pressure —
				// each row's handful of columns still lands on scattered
				// pages — while the fast path amortises translation and
				// cache probes within the row.
				k.p.Gather(c, k.colidx.Data[kb:ke])
				sum := 0.0
				for kk := kb; kk < ke; kk++ {
					sum += k.a.Data[kk] * k.p.Data[int(k.colidx.Data[kk])]
				}
				c.Compute(uint64(2 * (ke - kb)))
				k.q.Data[i] = sum
			}
			k.q.StoreRange(c, lo, hi)
		})
}

// dot computes x·y with a reduction.
func (k *CG) dot(rt *omp.RT, x, y *core.Array) float64 {
	return rt.ParallelForReduce(k.codeVec, k.n, omp.For{Schedule: omp.Static}, 0,
		func(tid int, c *machine.Context, lo, hi int) float64 {
			x.LoadRange(c, lo, hi)
			if y != x {
				y.LoadRange(c, lo, hi)
			}
			s := 0.0
			for i := lo; i < hi; i++ {
				s += x.Data[i] * y.Data[i]
			}
			c.Compute(uint64(2 * (hi - lo)))
			return s
		}, func(a, b float64) float64 { return a + b })
}

// axpy computes dst = dst + alpha·src.
func (k *CG) axpy(rt *omp.RT, dst, src *core.Array, alpha float64) {
	rt.ParallelFor(k.codeVec, k.n, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			src.LoadRange(c, lo, hi)
			dst.LoadRange(c, lo, hi)
			for i := lo; i < hi; i++ {
				dst.Data[i] += alpha * src.Data[i]
			}
			dst.StoreRange(c, lo, hi)
			c.Compute(uint64(2 * (hi - lo)))
		})
}

// xpby computes dst = src + beta·dst (the p update).
func (k *CG) xpby(rt *omp.RT, dst, src *core.Array, beta float64) {
	rt.ParallelFor(k.codeVec, k.n, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			src.LoadRange(c, lo, hi)
			dst.LoadRange(c, lo, hi)
			for i := lo; i < hi; i++ {
				dst.Data[i] = src.Data[i] + beta*dst.Data[i]
			}
			dst.StoreRange(c, lo, hi)
			c.Compute(uint64(2 * (hi - lo)))
		})
}

// Run implements Kernel: `iterations` CG steps on A·z = x starting from
// z = 0, r = p = x.
func (k *CG) Run(rt *omp.RT, iterations int) error {
	// z = 0; r = x; p = r.
	rt.ParallelFor(k.codeVec, k.n, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			k.x.LoadRange(c, lo, hi)
			for i := lo; i < hi; i++ {
				k.z.Data[i] = 0
				k.r.Data[i] = k.x.Data[i]
				k.p.Data[i] = k.x.Data[i]
			}
			k.z.StoreRange(c, lo, hi)
			k.r.StoreRange(c, lo, hi)
			k.p.StoreRange(c, lo, hi)
		})

	rho := k.dot(rt, k.r, k.r)
	k.rho0 = rho
	for it := 0; it < iterations; it++ {
		if err := rt.Checkpoint(); err != nil {
			return err
		}
		if rho <= k.rho0*1e-28 {
			break // converged to rounding noise; further steps break down
		}
		k.matvec(rt)
		pq := k.dot(rt, k.p, k.q)
		// An aborted dot skips chunks and yields a partial sum; check the
		// abort before interpreting pq, or a cancellation would masquerade
		// as numerical breakdown.
		if err := rt.Checkpoint(); err != nil {
			return err
		}
		if pq <= 0 {
			return fmt.Errorf("cg: breakdown at iteration %d (pq=%g)", it, pq)
		}
		alpha := rho / pq
		k.axpy(rt, k.z, k.p, alpha)
		k.axpy(rt, k.r, k.q, -alpha)
		rhoNew := k.dot(rt, k.r, k.r)
		beta := rhoNew / rho
		rho = rhoNew
		k.xpby(rt, k.p, k.r, beta)
	}
	if err := rt.Checkpoint(); err != nil {
		return err
	}
	k.rhoFinal = rho
	k.ran = true
	return nil
}

// Verify implements Kernel: CG on an SPD system must shrink the residual
// monotonically in exact arithmetic; we require a substantial reduction.
func (k *CG) Verify() error {
	if !k.ran {
		return fmt.Errorf("cg: not run")
	}
	if !(k.rhoFinal < k.rho0*0.5) {
		return fmt.Errorf("cg: residual did not converge: %g -> %g", k.rho0, k.rhoFinal)
	}
	if math.IsNaN(k.rhoFinal) || math.IsInf(k.rhoFinal, 0) {
		return fmt.Errorf("cg: residual is not finite")
	}
	return nil
}

func mb(f float64) int64 { return int64(f * 1024 * 1024) }
