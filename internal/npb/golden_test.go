package npb

import (
	"fmt"
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
)

// TestPrintGoldenChecksums regenerates the frozen values (run with
//
//	go test -run TestPrintGolden -v ./internal/npb/
//
// and update goldenT below when a kernel's numerics intentionally change).
func TestPrintGoldenChecksums(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("generator; run with -v")
	}
	for _, name := range Names() {
		k, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(k, RunConfig{
			Model: machine.Opteron270(), Threads: 1, Policy: core.Policy4K, Class: ClassT,
		}); err != nil {
			t.Fatal(err)
		}
		t.Logf("%q: %q,", name, fmt.Sprintf("%.17g", checksum(k)))
	}
}

// goldenT freezes the exact class-T single-thread results (like the NPB's
// own verification values): any unintended change to a kernel's numerics,
// input generation or iteration count fails here. The values are printed by
// TestPrintGoldenChecksums.
var goldenT = map[string]string{
	"BT": "6447.9099413111962",
	"CG": "40960.000000000015",
	"FT": "3.554447978966673e-16",
	"SP": "141.91608011916796",
	"MG": "0.0073023466240107904",
}

func TestGoldenChecksumsClassT(t *testing.T) {
	for _, name := range Names() {
		k, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(k, RunConfig{
			Model: machine.Opteron270(), Threads: 1, Policy: core.Policy4K, Class: ClassT,
		}); err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%.17g", checksum(k))
		if got != goldenT[name] {
			t.Errorf("%s: checksum %s != frozen %s (regenerate with TestPrintGoldenChecksums if intended)",
				name, got, goldenT[name])
		}
	}
}
