package npb

import (
	"reflect"
	"sync"
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/faultinject"
	"hugeomp/internal/machine"
)

// TestWarmForkEqualsCold is the correctness bar of the snapshot layer: a run
// forked from a warmed template must be bit-identical — every counter, cycle
// count and solution checksum — to a cold-constructed run of the same config.
func TestWarmForkEqualsCold(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := RunConfig{
				Model: machine.Opteron270(), Threads: 4, Policy: core.Policy2M, Class: ClassT,
			}
			w, err := NewWarm(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Run(ck, cfg)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			warm, wsum, err := w.RunChecksum(cfg)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			if !reflect.DeepEqual(cold, warm) {
				t.Errorf("forked result differs from cold run:\ncold: %+v\nwarm: %+v", cold, warm)
			}
			if csum := Checksum(ck); csum != wsum {
				t.Errorf("checksum: cold %v warm %v", csum, wsum)
			}
		})
	}
}

// TestWarmModelSwapEqualsCold: one warmed template serves an entire cost
// sweep — applying a different Model (and thread count) at fork time must
// match a cold run built with that model from scratch.
func TestWarmModelSwapEqualsCold(t *testing.T) {
	base := RunConfig{
		Model: machine.Opteron270(), Threads: 2, Policy: core.Policy4K, Class: ClassT,
	}
	w, err := NewWarm("cg", base)
	if err != nil {
		t.Fatal(err)
	}
	swept := base
	swept.Model = machine.XeonHT()
	swept.Model.Costs.WalkRefCyc *= 3
	swept.Model.Costs.MemCyc += 100
	swept.Threads = 8

	ck, err := New("cg")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(ck, swept)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := w.Run(swept)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("model-swapped fork differs from cold run:\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

// TestWarmForkIsolation: forks of one snapshot never observe each other's
// writes — concurrent forked runs all reproduce the cold result, and the
// frozen template is left untouched by any of them.
func TestWarmForkIsolation(t *testing.T) {
	cfg := RunConfig{
		Model: machine.Opteron270(), Threads: 4, Policy: core.PolicyMixed, Class: ClassT,
	}
	w, err := NewWarm("mg", cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := Checksum(w.kern)

	ck, err := New("mg")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(ck, cfg)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}

	const forks = 4
	results := make([]Result, forks)
	errs := make([]error, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = w.Run(cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < forks; i++ {
		if errs[i] != nil {
			t.Fatalf("fork %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(cold, results[i]) {
			t.Errorf("fork %d diverged from cold run (cross-fork write leak?)\ncold: %+v\nfork: %+v",
				i, cold, results[i])
		}
	}
	if after := Checksum(w.kern); after != before {
		t.Errorf("frozen template mutated by forked runs: checksum %v -> %v", before, after)
	}
}

// TestWarmRejectsIncompatibleConfigs: faulted configs and address-space
// reshaping must take the cold path.
func TestWarmRejectsIncompatibleConfigs(t *testing.T) {
	cfg := RunConfig{
		Model: machine.Opteron270(), Threads: 2, Policy: core.Policy4K, Class: ClassT,
	}
	w, err := NewWarm("sp", cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Policy = core.Policy2M
	if _, err := w.Run(bad); err == nil {
		t.Error("policy change accepted by warm run")
	}
	bad = cfg
	bad.Class = ClassS
	if _, err := w.Run(bad); err == nil {
		t.Error("class change accepted by warm run")
	}
	bad = cfg
	bad.Fault = &faultinject.Plan{}
	if _, err := w.Run(bad); err == nil {
		t.Error("fault plan accepted by warm run")
	}
	if _, err := NewWarm("sp", bad); err == nil {
		t.Error("fault plan accepted by warm template")
	}
}
