package npb

import (
	"hugeomp/internal/memo"
	"hugeomp/internal/units"
)

// RunKey returns the canonical content key of one simulated run: the
// memo-schema-versioned SHA-256 over the kernel name and the full run config
// (model cost tables included, request plumbing like Ctx excluded by its
// json:"-" tag). Every driver that shares results — cmd/sweep, cmd/simd via
// internal/simsrv, the bench harness — keys with this function, so a result
// computed by one process is addressable by all the others through a shared
// disk cache.
func RunKey(kernel string, cfg RunConfig) string {
	return memo.MustKey("npb/run", kernel, cfg)
}

// TemplateBytes estimates the resident host footprint of one warm template
// (npb.Warm) for class c: the snapshot pins the full shared region's backing
// arrays for the life of the template, plus page-table, cache and hugetlbfs
// metadata. The estimate is deliberately simple and slightly conservative —
// it prices admission and pool budgets, it does not account allocations.
func TemplateBytes(c Class) int64 {
	return sharedBytesFor(c) + 8*units.MB
}

// ForkBytes estimates the transient host footprint of one forked session for
// class c: kernels fork only their mutable arrays (roughly a quarter of the
// shared region; read-only statics such as CG's sparse matrix stay shared
// with the template through the COW snapshot) plus runtime metadata — forked
// page-table nodes, per-context TLBs and caches, profile counters. Like
// TemplateBytes, a deliberate estimate for budget charging, not an account.
func ForkBytes(c Class) int64 {
	return sharedBytesFor(c)/4 + 2*units.MB
}
