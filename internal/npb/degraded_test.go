package npb

import (
	"fmt"
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
)

// TestDegradedRunMatchesGoldenChecksums is the degradation contract end to
// end: a 2 MB-policy run on a host with an empty huge-page pool
// (vm.nr_hugepages = 0) silently falls back to 4 KB pages at the same
// virtual addresses and must reproduce the frozen golden checksums exactly —
// only the performance counters may shift.
func TestDegradedRunMatchesGoldenChecksums(t *testing.T) {
	for _, name := range Names() {
		k, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(k, RunConfig{
			Model: machine.Opteron270(), Threads: 1, Policy: core.Policy2M,
			Class: ClassT, HugePages: core.NoHugePages,
		})
		if err != nil {
			t.Fatalf("%s degraded run: %v", name, err)
		}
		if !res.Degraded {
			t.Errorf("%s: empty pool did not set Degraded", name)
		}
		if res.OS.HugePageFallbacks != 1 {
			t.Errorf("%s: HugePageFallbacks = %d, want 1", name, res.OS.HugePageFallbacks)
		}
		if got := fmt.Sprintf("%.17g", checksum(k)); got != goldenT[name] {
			t.Errorf("%s: degraded checksum %s != frozen %s", name, got, goldenT[name])
		}
		if res.Counters.DTLBWalks2M != 0 {
			t.Errorf("%s: degraded run performed %d 2MB walks", name, res.Counters.DTLBWalks2M)
		}
	}
}

// TestUndersizedPoolDegradesWholeRegion: a pool that exists but cannot back
// the whole shared region degrades exactly like an empty one (whole-region
// fallback, not a partial mix), with identical numerics and a costlier TLB
// profile than the healthy 2 MB run.
func TestUndersizedPoolDegradesWholeRegion(t *testing.T) {
	run := func(hugePages int) (Result, float64) {
		k, err := New("CG")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(k, RunConfig{
			Model: machine.Opteron270(), Threads: 2, Policy: core.Policy2M,
			Class: ClassT, HugePages: hugePages,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, checksum(k)
	}
	healthy, healthySum := run(0)
	if healthy.Degraded {
		t.Fatal("full pool degraded")
	}
	degraded, degradedSum := run(1) // class T needs 4 pages; give it 1
	if !degraded.Degraded {
		t.Fatal("one-page pool did not degrade")
	}
	if degradedSum != healthySum {
		t.Errorf("degradation changed the numerics: %v != %v", degradedSum, healthySum)
	}
	if degraded.Counters.DTLBWalks() <= healthy.Counters.DTLBWalks() {
		t.Errorf("degraded walks %d not above healthy walks %d",
			degraded.Counters.DTLBWalks(), healthy.Counters.DTLBWalks())
	}
}
