package npb

import "hugeomp/internal/core"

// Per-kernel warm-state forks. A kernel fork is an independent copy of the
// post-Setup state from which Run can start: arrays the kernel mutates during
// Run are privatized (deep-copied), while the big static inputs written only
// at Setup time — CG's CSR matrix, BT's forcing field, SP's rho field, FT's
// pristine reference, MG's input charges — are shared read-only between every
// fork (the copy-on-write discipline of the snapshot layer). Code regions are
// immutable descriptors and are always shared.
//
// The read-only/mutable split below is part of each kernel's Run contract:
// a kernel that starts writing a shared array must move it to the privatized
// set here, or concurrent forks will observe each other's writes (the
// fork-isolation property test pins this).

type forker interface{ fork() Kernel }

// forkKernel clones k's post-Setup state, reporting false for kernel types
// without warm-fork support.
func forkKernel(k Kernel) (Kernel, bool) {
	f, ok := k.(forker)
	if !ok {
		return nil, false
	}
	return f.fork(), true
}

func (k *CG) fork() Kernel {
	n := *k
	// a, colidx, rowstr, x: read-only in Run — shared.
	n.z = k.z.Fork()
	n.p = k.p.Fork()
	n.q = k.q.Fork()
	n.r = k.r.Fork()
	return &n
}

func (k *BT) fork() Kernel {
	n := *k
	// forcing: read-only in Run — shared.
	n.u = k.u.Fork()
	n.rhs = k.rhs.Fork()
	n.qs = k.qs.Fork()
	n.square = k.square.Fork()
	return &n
}

func (k *SP) fork() Kernel {
	n := *k
	// rho: read-only in Run — shared.
	n.u = k.u.Fork()
	n.rhs = k.rhs.Fork()
	return &n
}

func (k *FT) fork() Kernel {
	n := *k
	// orig: the pristine host-side reference — shared.
	n.re = k.re.Fork()
	n.im = k.im.Fork()
	return &n
}

func (k *MG) fork() Kernel {
	n := *k
	n.u = make([]*core.Array, len(k.u))
	n.r = make([]*core.Array, len(k.r))
	n.f = make([]*core.Array, len(k.f))
	for l := range k.u {
		n.u[l] = k.u[l].Fork()
		n.r[l] = k.r[l].Fork()
		if l == 0 {
			// The input field v (f[0]) is read-only in Run — shared; the
			// coarse right-hand sides are written by restriction.
			n.f[l] = k.f[l]
		} else {
			n.f[l] = k.f[l].Fork()
		}
	}
	return &n
}
