package npb

import (
	"fmt"
	"math"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
)

// MG: a multigrid V-cycle solver. "MG works continuously on a set of grids
// that are changed between coarse and fine. It tests both short and long
// distance data movement" (paper §4.2).
//
// Scaling note (see DESIGN.md): the class-B MG grid is 256³ (884 MB); its
// long-distance operations cross far more 4 KB pages than the DTLB holds.
// To preserve that behaviour at class-A cost this reproduction uses a
// SEMICOARSENING multigrid on an anisotropic grid — coarsened in z only,
// smoothed by z-line relaxation — a standard MG formulation for anisotropic
// problems. Short-distance movement is the plane-streamed residual/transfer
// work; long-distance movement is the z-line smoother, whose element stride
// is one full plane and whose page working set exceeds the 4 KB DTLB on the
// fine levels (exactly the property the 256³ grid has at class B).
type MG struct {
	class  Class
	levels int
	nx, ny int
	nzs    []int // nz per level (z-semicoarsening)

	u []*core.Array // solution per level
	r []*core.Array // residual per level
	f []*core.Array // right-hand side per level (f[0] is the input field v)

	codeSmooth *omp.CodeRegion
	codeComm   *omp.CodeRegion
	codeGrid   *omp.CodeRegion

	norm0, normF float64
	ran          bool
}

// NewMG returns a fresh MG kernel.
func NewMG() *MG { return &MG{} }

// Name implements Kernel.
func (k *MG) Name() string { return "MG" }

// PaperFootprint implements Kernel (Table 2, class B).
func (k *MG) PaperFootprint() (int64, int64) { return mb(1.4), mb(884) }

func (k *MG) geometry(class Class) (nx, ny, nzFine, levels int) {
	// 12 KB planes (see SP) and fine nz past the DTLB capacity at W/A.
	switch class {
	case ClassS:
		return 48, 32, 80, 3
	case ClassW:
		return 48, 32, 184, 4
	case ClassA:
		return 48, 32, 192, 4
	default:
		return 16, 16, 32, 2
	}
}

// DefaultIterations implements Kernel: number of V-cycles.
func (k *MG) DefaultIterations(class Class) int {
	switch class {
	case ClassW, ClassA:
		return 4
	default:
		return 3
	}
}

func (k *MG) size(l int) int { return k.nx * k.ny * k.nzs[l] }

// idx flattens (i,j,kk) at level l, i fastest.
func (k *MG) idx(l, i, j, kk int) int { return i + k.nx*(j+k.ny*kk) }

// plane returns the number of points in one k-plane.
func (k *MG) plane() int { return k.nx * k.ny }

// Setup implements Kernel.
func (k *MG) Setup(sys *core.System, class Class) error {
	var nzFine int
	k.nx, k.ny, nzFine, k.levels = k.geometry(class)
	k.class = class
	k.nzs = make([]int, k.levels)
	for l := 0; l < k.levels; l++ {
		k.nzs[l] = nzFine >> l
		if k.nzs[l] < 8 {
			return fmt.Errorf("mg: level %d too coarse (nz=%d)", l, k.nzs[l])
		}
	}
	k.u = make([]*core.Array, k.levels)
	k.r = make([]*core.Array, k.levels)
	k.f = make([]*core.Array, k.levels)
	var err error
	for l := 0; l < k.levels; l++ {
		if k.u[l], err = sys.NewArray(fmt.Sprintf("mg.u%d", l), k.size(l)); err != nil {
			return err
		}
		if k.r[l], err = sys.NewArray(fmt.Sprintf("mg.r%d", l), k.size(l)); err != nil {
			return err
		}
		name := fmt.Sprintf("mg.f%d", l)
		if l == 0 {
			name = "mg.v"
		}
		if k.f[l], err = sys.NewArray(name, k.size(l)); err != nil {
			return err
		}
	}
	if k.codeSmooth, err = sys.NewCodeRegion("mg.smooth", 64*1024); err != nil {
		return err
	}
	if k.codeComm, err = sys.NewCodeRegion("mg.comm3", 24*1024); err != nil {
		return err
	}
	if k.codeGrid, err = sys.NewCodeRegion("mg.gridops", 64*1024); err != nil {
		return err
	}

	// Point charges, as in the NPB MG input.
	rng := newLCG(577215)
	v := k.f[0]
	for c := 0; c < 20; c++ {
		v.Data[rng.intn(len(v.Data))] = 1.0
	}
	for c := 0; c < 20; c++ {
		v.Data[rng.intn(len(v.Data))] = -1.0
	}
	return nil
}

// comm3 exchanges the ghost faces of array a at level l: the constant-x
// faces are copied with periodic wraparound, one strided column per k-plane.
func (k *MG) comm3(rt *omp.RT, l int, a *core.Array) {
	d := k.nx
	rt.ParallelFor(k.codeComm, k.nzs[l], omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for kk := lo; kk < hi; kk++ {
				for _, pair := range [2][2]int{{0, d - 2}, {d - 1, 1}} {
					dst, src := pair[0], pair[1]
					a.LoadStride(c, k.idx(l, src, 0, kk), k.ny, d)
					a.StoreStride(c, k.idx(l, dst, 0, kk), k.ny, d)
					for j := 0; j < k.ny; j++ {
						a.Data[k.idx(l, dst, j, kk)] = a.Data[k.idx(l, src, j, kk)]
					}
				}
				c.Compute(uint64(4 * k.ny))
			}
		})
}

// smooth performs one damped z-line relaxation sweep at level l: for every
// (i,j) column the vertical part of the 7-point operator (−1, 6, −1) is
// solved exactly by the Thomas algorithm against the current x/y neighbour
// values (line Jacobi) — the long-distance operation: element stride is one
// plane (12 KB), and on fine levels the column's page working set exceeds
// the 4 KB DTLB.
func (k *MG) smooth(rt *omp.RT, l int) {
	nz := k.nzs[l]
	pl := k.plane()
	d := k.nx
	u, f, old := k.u[l], k.f[l], k.r[l]
	const omega = 0.85

	// Jacobi: snapshot u into the scratch array (r is free between resid
	// calls), so neighbour reads are race-free across threads.
	rt.ParallelFor(k.codeGrid, u.Len(), omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			u.LoadRange(c, lo, hi)
			copy(old.Data[lo:hi], u.Data[lo:hi])
			old.StoreRange(c, lo, hi)
		})

	rt.ParallelFor(k.codeSmooth, pl, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			cp := make([]float64, nz)
			dp := make([]float64, nz)
			for col := lo; col < hi; col++ {
				i := col % d
				j := col / d
				if i == 0 || i == d-1 || j == 0 || j == k.ny-1 {
					continue // ghosts and Dirichlet walls stay fixed
				}
				f.LoadStride(c, col, nz, pl)
				old.LoadStride(c, col, nz, pl)
				// rhs_t = f + x/y neighbours (previous sweep values);
				// solve (−1, 6, −1) in z exactly by the Thomas algorithm.
				cp[0] = -1.0 / 6.0
				dp[0] = (f.Data[col] + old.Data[col-1] + old.Data[col+1] +
					old.Data[col-d] + old.Data[col+d]) / 6.0
				for t := 1; t < nz; t++ {
					e := col + t*pl
					den := 6.0 + cp[t-1]
					cp[t] = -1.0 / den
					rhs := f.Data[e] + old.Data[e-1] + old.Data[e+1] +
						old.Data[e-d] + old.Data[e+d]
					dp[t] = (rhs + dp[t-1]) / den
				}
				star := dp[nz-1]
				e := col + (nz-1)*pl
				u.Data[e] = (1-omega)*old.Data[e] + omega*star
				for t := nz - 2; t >= 0; t-- {
					star = dp[t] - cp[t]*star
					e = col + t*pl
					u.Data[e] = (1-omega)*old.Data[e] + omega*star
				}
				u.StoreStride(c, col, nz, pl)
				c.Compute(uint64(14 * nz))
			}
		})
	k.comm3(rt, l, u)
}

// resid computes r = f − A·u (A = −∇², 7-point) with plane streaming (the
// short-distance movement).
func (k *MG) resid(rt *omp.RT, l int) {
	nz := k.nzs[l]
	pl := k.plane()
	d := k.nx
	u, r, v := k.u[l], k.r[l], k.f[l]
	rt.ParallelFor(k.codeSmooth, nz-2, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for kk := lo + 1; kk < hi+1; kk++ {
				u.LoadRange(c, (kk-1)*pl, (kk+2)*pl)
				v.LoadRange(c, kk*pl, (kk+1)*pl)
				for j := 1; j < k.ny-1; j++ {
					for i := 1; i < d-1; i++ {
						p := k.idx(l, i, j, kk)
						lap := u.Data[p-1] + u.Data[p+1] +
							u.Data[p-d] + u.Data[p+d] +
							u.Data[p-pl] + u.Data[p+pl] - 6*u.Data[p]
						r.Data[p] = v.Data[p] + lap
					}
				}
				r.StoreRange(c, kk*pl, (kk+1)*pl)
				c.Compute(uint64(10 * (k.ny - 2) * (d - 2)))
			}
		})
	k.comm3(rt, l, r)
}

// rprj3 restricts the residual of level l into the right-hand side of level
// l+1 by averaging adjacent z-planes (semicoarsening full weighting).
func (k *MG) rprj3(rt *omp.RT, l int) {
	nzc := k.nzs[l+1]
	pl := k.plane()
	fine, coarse := k.r[l], k.f[l+1]
	rt.ParallelFor(k.codeGrid, nzc-1, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for kc := lo; kc < hi; kc++ {
				kf := 2 * kc
				fine.LoadRange(c, kf*pl, (kf+2)*pl)
				for p := 0; p < pl; p++ {
					coarse.Data[kc*pl+p] = 0.5*fine.Data[kf*pl+p] + 0.5*fine.Data[(kf+1)*pl+p]
				}
				coarse.StoreRange(c, kc*pl, (kc+1)*pl)
				c.Compute(uint64(2 * pl))
			}
		})
}

// interp prolongates the coarse correction up to level l and adds it.
func (k *MG) interp(rt *omp.RT, l int) {
	nzc := k.nzs[l+1]
	pl := k.plane()
	fine, coarse := k.u[l], k.u[l+1]
	rt.ParallelFor(k.codeGrid, nzc-1, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for kc := lo; kc < hi; kc++ {
				kf := 2 * kc
				coarse.LoadRange(c, kc*pl, (kc+1)*pl)
				fine.LoadRange(c, kf*pl, (kf+2)*pl)
				for p := 0; p < pl; p++ {
					v := coarse.Data[kc*pl+p]
					fine.Data[kf*pl+p] += v
					fine.Data[(kf+1)*pl+p] += 0.5 * v
				}
				fine.StoreRange(c, kf*pl, (kf+2)*pl)
				c.Compute(uint64(3 * pl))
			}
		})
	k.comm3(rt, l, fine)
}

// zero clears u at a level.
func (k *MG) zero(rt *omp.RT, l int) {
	u := k.u[l]
	rt.ParallelFor(k.codeGrid, u.Len(), omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				u.Data[i] = 0
			}
			u.StoreRange(c, lo, hi)
		})
}

// norm2 computes the RMS of the fine residual (norm2u3).
func (k *MG) norm2(rt *omp.RT) float64 {
	r := k.r[0]
	s := rt.ParallelForReduce(k.codeGrid, r.Len(), omp.For{Schedule: omp.Static}, 0,
		func(tid int, c *machine.Context, lo, hi int) float64 {
			r.LoadRange(c, lo, hi)
			p := 0.0
			for i := lo; i < hi; i++ {
				p += r.Data[i] * r.Data[i]
			}
			c.Compute(uint64(2 * (hi - lo)))
			return p
		}, func(a, b float64) float64 { return a + b })
	return math.Sqrt(s / float64(r.Len()))
}

// vcycle: pre-smooth, restrict residuals down the hierarchy, smooth the
// coarse correction equations, prolongate back up with post-smoothing (a
// standard correction-scheme V-cycle).
func (k *MG) vcycle(rt *omp.RT) {
	//simlint:nocheckpoint bounded level sweep (log2 of the grid, ~8 levels); Run checkpoints once per V-cycle
	for l := 0; l < k.levels-1; l++ {
		k.resid(rt, l)
		k.rprj3(rt, l) // r[l] -> f[l+1]
		k.zero(rt, l+1)
	}
	k.smooth(rt, k.levels-1) // bottom solve (one exact-in-z sweep)
	//simlint:nocheckpoint bounded level sweep (log2 of the grid, ~8 levels); Run checkpoints once per V-cycle
	for l := k.levels - 2; l >= 0; l-- {
		k.interp(rt, l)
		k.smooth(rt, l) // post-smooth (sawtooth cycle)
	}
}

// Run implements Kernel.
func (k *MG) Run(rt *omp.RT, iterations int) error {
	k.resid(rt, 0)
	k.norm0 = k.norm2(rt)
	for it := 0; it < iterations; it++ {
		if err := rt.Checkpoint(); err != nil {
			return err
		}
		k.vcycle(rt)
	}
	if err := rt.Checkpoint(); err != nil {
		return err
	}
	k.resid(rt, 0)
	k.normF = k.norm2(rt)
	if err := rt.Checkpoint(); err != nil {
		return err
	}
	k.ran = true
	return nil
}

// Verify implements Kernel: V-cycles must reduce the fine-grid residual.
func (k *MG) Verify() error {
	if !k.ran {
		return fmt.Errorf("mg: not run")
	}
	if math.IsNaN(k.normF) || math.IsInf(k.normF, 0) {
		return fmt.Errorf("mg: norm not finite")
	}
	if k.normF >= k.norm0 {
		return fmt.Errorf("mg: residual did not decrease: %g -> %g", k.norm0, k.normF)
	}
	for _, a := range k.u {
		for i, v := range a.Data {
			if math.IsNaN(v) || math.Abs(v) > 1e9 {
				return fmt.Errorf("mg: %s diverged at %d: %g", a.Name, i, v)
			}
		}
	}
	return nil
}
