package npb

import (
	"math"
	"strings"
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
)

// Negative tests: each kernel's Verify must catch corrupted results — a
// simulator whose verification never fires is not verifying anything.

func runKernel(t *testing.T, name string) Kernel {
	t.Helper()
	k, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(k, RunConfig{
		Model: machine.Opteron270(), Threads: 2, Policy: core.Policy4K, Class: ClassT,
	}); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestVerifyCatchesUnrun(t *testing.T) {
	for _, name := range Names() {
		k, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Verify(); err == nil {
			t.Errorf("%s: Verify passed without a run", name)
		}
	}
}

func TestVerifyCatchesNaN(t *testing.T) {
	for _, tc := range []struct {
		name   string
		poison func(Kernel)
	}{
		{"CG", func(k Kernel) { k.(*CG).rhoFinal = math.NaN() }},
		{"SP", func(k Kernel) { k.(*SP).u.Data[0] = math.NaN() }},
		{"BT", func(k Kernel) { k.(*BT).u.Data[0] = math.NaN() }},
		{"MG", func(k Kernel) { k.(*MG).u[0].Data[0] = math.NaN() }},
		{"FT", func(k Kernel) { k.(*FT).maxErr = 1.0 }},
	} {
		k := runKernel(t, tc.name)
		if err := k.Verify(); err != nil {
			t.Fatalf("%s: clean run failed verification: %v", tc.name, err)
		}
		tc.poison(k)
		if err := k.Verify(); err == nil {
			t.Errorf("%s: Verify passed on poisoned results", tc.name)
		}
	}
}

func TestVerifyCatchesDivergence(t *testing.T) {
	k := runKernel(t, "SP").(*SP)
	k.u.Data[42] = 1e9
	if err := k.Verify(); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Errorf("SP divergence not caught: %v", err)
	}
}

func TestVerifyCatchesStagnantResidual(t *testing.T) {
	k := runKernel(t, "MG").(*MG)
	k.normF = k.norm0 * 2
	if err := k.Verify(); err == nil {
		t.Error("MG residual growth not caught")
	}
	cg := runKernel(t, "CG").(*CG)
	cg.rhoFinal = cg.rho0
	if err := cg.Verify(); err == nil {
		t.Error("CG stagnation not caught")
	}
}
