package npb

import (
	"fmt"
	"math"
	"math/cmplx"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
)

// FT: a 2D complex FFT (the NPB kernel factors its DFT into many smaller
// DFTs: "FT divides the DFT of any composite size N = N1 x N2 into many
// smaller DFTs of size N1 and N2" — paper §4.2). Row transforms are unit
// stride; the second dimension is transformed in place down "pencils" whose
// element stride is one full row (N1·16 bytes), so every pencil access lands
// on a different 4 KB page and the pencil cycles more pages than the DTLB
// holds. FT has the largest footprint of the suite, exceeding the Opteron's
// 16 MB large-page TLB reach at class A just as class B (2.4 GB) does — the
// reason FT gains little from 2 MB pages in the paper.
type FT struct {
	class  Class
	n1, n2 int

	re, im *core.Array // the complex grid, split re/im (two planes)

	codeRow *omp.CodeRegion
	codePen *omp.CodeRegion
	codeEvo *omp.CodeRegion

	orig   []complex128 // pristine copy for the inverse-transform check
	maxErr float64
	ran    bool
}

// NewFT returns a fresh FT kernel.
func NewFT() *FT { return &FT{} }

// Name implements Kernel.
func (k *FT) Name() string { return "FT" }

// PaperFootprint implements Kernel (Table 2, class B).
func (k *FT) PaperFootprint() (int64, int64) { return mb(1.4), mb(2.4 * 1024) }

func (k *FT) geometry(class Class) (n1, n2 int) {
	// n2 (the pencil length) exceeds the 544-entry Opteron 4 KB DTLB stack
	// from class W; class A's 24 MB footprint exceeds the Opteron's 16 MB
	// 2 MB-page reach.
	switch class {
	case ClassS:
		return 512, 256 // 2MB
	case ClassW:
		return 512, 1024 // 8MB
	case ClassA:
		return 1024, 2048 // 32MB
	default:
		return 128, 64 // 128KB
	}
}

// DefaultIterations implements Kernel: forward+inverse passes.
func (k *FT) DefaultIterations(class Class) int { return 1 }

// Setup implements Kernel.
func (k *FT) Setup(sys *core.System, class Class) error {
	k.class = class
	k.n1, k.n2 = k.geometry(class)
	n := k.n1 * k.n2
	var err error
	if k.re, err = sys.NewArray("ft.re", n); err != nil {
		return err
	}
	if k.im, err = sys.NewArray("ft.im", n); err != nil {
		return err
	}
	if k.codeRow, err = sys.NewCodeRegion("ft.rows", 20*1024); err != nil {
		return err
	}
	if k.codePen, err = sys.NewCodeRegion("ft.pencils", 20*1024); err != nil {
		return err
	}
	if k.codeEvo, err = sys.NewCodeRegion("ft.evolve", 8*1024); err != nil {
		return err
	}
	rng := newLCG(662607)
	k.orig = make([]complex128, n)
	for i := 0; i < n; i++ {
		v := complex(rng.float()-0.5, rng.float()-0.5)
		k.orig[i] = v
		k.re.Data[i] = real(v)
		k.im.Data[i] = imag(v)
	}
	return nil
}

// fft performs an in-place iterative radix-2 Cooley–Tukey transform of the
// `n`-element sequence at offsets start, start+stride, … (inverse when
// inv). Real math on the Data slices; the caller simulates the memory
// traffic of the passes.
func (k *FT) fft(start, n, stride int, inv bool) {
	re, im := k.re.Data, k.im.Data
	at := func(t int) int { return start + t*stride }
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a, b := at(i), at(j)
			re[a], re[b] = re[b], re[a]
			im[a], im[b] = im[b], im[a]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inv {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				a, b := at(i+j), at(i+j+length/2)
				u := complex(re[a], im[a])
				v := complex(re[b], im[b]) * w
				s, d := u+v, u-v
				re[a], im[a] = real(s), imag(s)
				re[b], im[b] = real(d), imag(d)
				w *= wl
			}
		}
	}
	if inv {
		for t := 0; t < n; t++ {
			i := at(t)
			re[i] /= float64(n)
			im[i] /= float64(n)
		}
	}
}

// rowPass transforms every row (unit stride).
func (k *FT) rowPass(rt *omp.RT, inv bool) {
	rt.ParallelFor(k.codeRow, k.n2, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for r := lo; r < hi; r++ {
				base := r * k.n1
				// log2(n1) butterfly passes stream the row; charge two
				// streaming passes of the row per transform plus the
				// arithmetic.
				k.re.LoadRange(c, base, base+k.n1)
				k.im.LoadRange(c, base, base+k.n1)
				k.fft(base, k.n1, 1, inv)
				k.re.StoreRange(c, base, base+k.n1)
				k.im.StoreRange(c, base, base+k.n1)
				c.Compute(uint64(5 * k.n1 * ilog2(k.n1)))
			}
		})
}

// colBlock is the column-blocking factor of the pencil pass: a cache-blocked
// FFT gathers a block of adjacent columns per row visit (the NPB 3.0 FT is
// similarly cache-blocked), so each touched page serves colBlock accesses
// instead of one. The pass still cycles the full second dimension, which
// exceeds the 4 KB DTLB at class W/A, and the 32 MB class-A footprint
// exceeds the Opteron's 16 MB large-page reach.
const colBlock = 64

// pencilPass transforms every column in place: the gather/scatter walks rows
// whose stride is n1 elements, blocked colBlock columns at a time.
func (k *FT) pencilPass(rt *omp.RT, inv bool) {
	blocks := (k.n1 + colBlock - 1) / colBlock
	rt.ParallelFor(k.codePen, blocks, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for b := lo; b < hi; b++ {
				cl := b * colBlock
				ch := cl + colBlock
				if ch > k.n1 {
					ch = k.n1
				}
				// Gather the column block row by row (contiguous within a
				// row), transform each column, scatter back.
				for r := 0; r < k.n2; r++ {
					k.re.LoadRange(c, r*k.n1+cl, r*k.n1+ch)
					k.im.LoadRange(c, r*k.n1+cl, r*k.n1+ch)
				}
				for col := cl; col < ch; col++ {
					k.fft(col, k.n2, k.n1, inv)
				}
				for r := 0; r < k.n2; r++ {
					k.re.StoreRange(c, r*k.n1+cl, r*k.n1+ch)
					k.im.StoreRange(c, r*k.n1+cl, r*k.n1+ch)
				}
				c.Compute(uint64(5 * (ch - cl) * k.n2 * ilog2(k.n2)))
			}
		})
}

// evolve multiplies by a diagonal phase factor (the time-evolution step of
// the NPB FT benchmark), one sequential pass.
func (k *FT) evolve(rt *omp.RT, step int) {
	n := k.n1 * k.n2
	rt.ParallelFor(k.codeEvo, n, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			k.re.LoadRange(c, lo, hi)
			k.im.LoadRange(c, lo, hi)
			for i := lo; i < hi; i++ {
				// Unit-magnitude factor keeps the inverse check exact.
				ph := 1e-6 * float64(step) * float64(i%97)
				cr, ci := math.Cos(ph), math.Sin(ph)
				r, im0 := k.re.Data[i], k.im.Data[i]
				k.re.Data[i] = r*cr - im0*ci
				k.im.Data[i] = r*ci + im0*cr
			}
			k.re.StoreRange(c, lo, hi)
			k.im.StoreRange(c, lo, hi)
			c.Compute(uint64(8 * (hi - lo)))
		})
}

// Run implements Kernel: each iteration does forward 2D FFT, phase
// evolution, inverse 2D FFT, inverse phase evolution — which must
// reconstruct the input.
func (k *FT) Run(rt *omp.RT, iterations int) error {
	for it := 0; it < iterations; it++ {
		if err := rt.Checkpoint(); err != nil {
			return err
		}
		k.rowPass(rt, false)
		k.pencilPass(rt, false)
		k.evolve(rt, it+1)
		k.evolve(rt, -(it + 1)) // unitary inverse of the evolution
		k.pencilPass(rt, true)
		k.rowPass(rt, true)
	}
	// An abort mid-cycle leaves the field un-reconstructed; bail before the
	// error scan would report that as a transform failure.
	if err := rt.Checkpoint(); err != nil {
		return err
	}
	// Compare against the pristine copy.
	k.maxErr = 0
	for i, want := range k.orig {
		got := complex(k.re.Data[i], k.im.Data[i])
		if e := cmplx.Abs(got - want); e > k.maxErr {
			k.maxErr = e
		}
	}
	k.ran = true
	return nil
}

// Verify implements Kernel: FFT⁻¹(FFT(x)) must reproduce x to rounding.
func (k *FT) Verify() error {
	if !k.ran {
		return fmt.Errorf("ft: not run")
	}
	if k.maxErr > 1e-9 {
		return fmt.Errorf("ft: inverse transform error %g exceeds 1e-9", k.maxErr)
	}
	return nil
}

func ilog2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
