package npb

import (
	"fmt"
	"math"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/omp"
)

// BT: a block-tridiagonal ADI solver. "BT sequentially accesses 5x5 blocks
// of 8-byte arrays. Several of these might fit in a single large page"
// (paper §4.2). The five solution components are interleaved per point
// (array-of-structures, as in the Fortran original), so sweeps are dense and
// unit-stride with heavy per-point 5x5 block arithmetic — the page walk cost
// is amortised over hundreds of accesses per page, which is why BT shows no
// significant large-page gain in the paper's Figure 4.
type BT struct {
	class      Class
	nx, ny, nz int

	u       *core.Array // 5 components per point, interleaved
	rhs     *core.Array // 5 components per point
	forcing *core.Array // 5 components per point
	qs      *core.Array // dynamic pressure per point
	square  *core.Array // square of velocities per point

	codeRHS   *omp.CodeRegion
	codeSolve *omp.CodeRegion
	codeAdd   *omp.CodeRegion

	initial  float64
	checksum float64
	ran      bool
}

// NewBT returns a fresh BT kernel.
func NewBT() *BT { return &BT{} }

// Name implements Kernel.
func (k *BT) Name() string { return "BT" }

// PaperFootprint implements Kernel (Table 2, class B).
func (k *BT) PaperFootprint() (int64, int64) { return mb(1.6), mb(371) }

func (k *BT) geometry(class Class) (nx, ny, nz int) {
	switch class {
	case ClassS:
		return 24, 24, 24
	case ClassW:
		return 32, 32, 32
	case ClassA:
		return 40, 40, 40
	default:
		return 12, 12, 12
	}
}

// DefaultIterations implements Kernel.
func (k *BT) DefaultIterations(class Class) int {
	switch class {
	case ClassS, ClassW:
		return 3
	case ClassA:
		return 4
	default:
		return 2
	}
}

func (k *BT) npts() int { return k.nx * k.ny * k.nz }

// pidx returns the point index of (i,j,kk).
func (k *BT) pidx(i, j, kk int) int { return i + k.nx*(j+k.ny*kk) }

// Setup implements Kernel.
func (k *BT) Setup(sys *core.System, class Class) error {
	k.class = class
	k.nx, k.ny, k.nz = k.geometry(class)
	n := k.npts()
	var err error
	if k.u, err = sys.NewArray("bt.u", 5*n); err != nil {
		return err
	}
	if k.rhs, err = sys.NewArray("bt.rhs", 5*n); err != nil {
		return err
	}
	if k.forcing, err = sys.NewArray("bt.forcing", 5*n); err != nil {
		return err
	}
	if k.qs, err = sys.NewArray("bt.qs", n); err != nil {
		return err
	}
	if k.square, err = sys.NewArray("bt.square", n); err != nil {
		return err
	}
	if k.codeRHS, err = sys.NewCodeRegion("bt.rhs", 32*1024); err != nil {
		return err
	}
	if k.codeSolve, err = sys.NewCodeRegion("bt.solve", 64*1024); err != nil {
		return err
	}
	if k.codeAdd, err = sys.NewCodeRegion("bt.add", 8*1024); err != nil {
		return err
	}

	rng := newLCG(161803)
	var sum float64
	for p := 0; p < n; p++ {
		for m := 0; m < 5; m++ {
			v := 1.0 + 0.1*rng.float()
			k.u.Data[5*p+m] = v
			sum += v
			k.forcing.Data[5*p+m] = 0.01 * (rng.float() - 0.5)
		}
	}
	k.initial = sum
	return nil
}

// computeRHS streams every array once, unit stride, with the per-point
// auxiliary computations (qs, square) of the original.
func (k *BT) computeRHS(rt *omp.RT) {
	n := k.npts()
	rt.ParallelFor(k.codeRHS, n, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			k.u.LoadRange(c, 5*lo, 5*hi)
			k.forcing.LoadRange(c, 5*lo, 5*hi)
			for p := lo; p < hi; p++ {
				rhoInv := 1.0 / k.u.Data[5*p]
				sq := 0.0
				for m := 1; m < 4; m++ {
					v := k.u.Data[5*p+m]
					sq += v * v
				}
				k.square.Data[p] = 0.5 * sq * rhoInv
				k.qs.Data[p] = sq * rhoInv * rhoInv
				for m := 0; m < 5; m++ {
					k.rhs.Data[5*p+m] = k.forcing.Data[5*p+m] - 0.05*(k.u.Data[5*p+m]-1.0)
				}
			}
			k.square.StoreRange(c, lo, hi)
			k.qs.StoreRange(c, lo, hi)
			k.rhs.StoreRange(c, 5*lo, 5*hi)
			c.Compute(uint64(25 * (hi - lo)))
		})
}

// solveLine performs a block-tridiagonal Thomas solve along a line of count
// points whose consecutive points are strideP points apart. The 5x5 block
// work (two block multiplies and one block solve per point, ~125 multiplies
// each) dominates arithmetically, as in the original BT.
func (k *BT) solveLine(c *machine.Context, start, count, strideP int, lam float64) {
	cp := make([]float64, count)
	b := 1 + 2*lam
	// Forward elimination on each of the 5 interleaved components; the
	// element stride in the array is 5*strideP (AoS layout).
	k.u.LoadStride(c, 5*start, count, 5*strideP)
	k.rhs.LoadStride(c, 5*start, count, 5*strideP)
	cp[0] = -lam / b
	for m := 0; m < 5; m++ {
		e := 5*start + m
		k.u.Data[e] = (k.u.Data[e] + lam*k.rhs.Data[e]) / b
	}
	for t := 1; t < count; t++ {
		den := b + lam*cp[t-1]
		cp[t] = -lam / den
		for m := 0; m < 5; m++ {
			e := 5*(start+t*strideP) + m
			ep := 5*(start+(t-1)*strideP) + m
			k.u.Data[e] = (k.u.Data[e] + lam*k.rhs.Data[e] + lam*k.u.Data[ep]) / den
		}
	}
	for t := count - 2; t >= 0; t-- {
		for m := 0; m < 5; m++ {
			e := 5*(start+t*strideP) + m
			en := 5*(start+(t+1)*strideP) + m
			k.u.Data[e] -= cp[t] * k.u.Data[en]
		}
	}
	k.u.StoreStride(c, 5*start, count, 5*strideP)
	// 5x5 block matmuls: ~250 multiply-adds per point.
	c.Compute(uint64(250 * count))
}

func (k *BT) xSolve(rt *omp.RT, lam float64) {
	lines := k.ny * k.nz
	rt.ParallelFor(k.codeSolve, lines, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for l := lo; l < hi; l++ {
				j, kk := l%k.ny, l/k.ny
				k.solveLine(c, k.pidx(0, j, kk), k.nx, 1, lam)
			}
		})
}

func (k *BT) ySolve(rt *omp.RT, lam float64) {
	lines := k.nx * k.nz
	rt.ParallelFor(k.codeSolve, lines, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for l := lo; l < hi; l++ {
				i, kk := l%k.nx, l/k.nx
				k.solveLine(c, k.pidx(i, 0, kk), k.ny, k.nx, lam)
			}
		})
}

func (k *BT) zSolve(rt *omp.RT, lam float64) {
	lines := k.nx * k.ny
	rt.ParallelFor(k.codeSolve, lines, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			for l := lo; l < hi; l++ {
				i, j := l%k.nx, l/k.nx
				k.solveLine(c, k.pidx(i, j, 0), k.nz, k.nx*k.ny, lam)
			}
		})
}

// add applies rhs to u (the final phase of a BT timestep).
func (k *BT) add(rt *omp.RT) {
	n := 5 * k.npts()
	rt.ParallelFor(k.codeAdd, n, omp.For{Schedule: omp.Static},
		func(tid int, c *machine.Context, lo, hi int) {
			k.u.LoadRange(c, lo, hi)
			k.rhs.LoadRange(c, lo, hi)
			for e := lo; e < hi; e++ {
				k.u.Data[e] += 0.05 * k.rhs.Data[e]
			}
			k.u.StoreRange(c, lo, hi)
			c.Compute(uint64(2 * (hi - lo)))
		})
}

// Run implements Kernel.
func (k *BT) Run(rt *omp.RT, iterations int) error {
	const lam = 0.4
	for it := 0; it < iterations; it++ {
		if err := rt.Checkpoint(); err != nil {
			return err
		}
		k.computeRHS(rt)
		k.xSolve(rt, lam)
		k.ySolve(rt, lam)
		k.zSolve(rt, lam)
		k.add(rt)
	}
	if err := rt.Checkpoint(); err != nil {
		return err
	}
	k.checksum = rt.ParallelForReduce(k.codeAdd, 5*k.npts(), omp.For{Schedule: omp.Static}, 0,
		func(tid int, c *machine.Context, lo, hi int) float64 {
			k.u.LoadRange(c, lo, hi)
			s := 0.0
			for e := lo; e < hi; e++ {
				s += k.u.Data[e]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	if err := rt.Checkpoint(); err != nil {
		return err
	}
	k.ran = true
	return nil
}

// Verify implements Kernel.
func (k *BT) Verify() error {
	if !k.ran {
		return fmt.Errorf("bt: not run")
	}
	if math.IsNaN(k.checksum) || math.IsInf(k.checksum, 0) {
		return fmt.Errorf("bt: checksum not finite")
	}
	for e, v := range k.u.Data {
		if math.IsNaN(v) || math.Abs(v) > 1e6 {
			return fmt.Errorf("bt: solution diverged at %d: %g", e, v)
		}
	}
	if math.Abs(k.checksum) > 10*math.Abs(k.initial)+1 {
		return fmt.Errorf("bt: checksum %g far from initial %g", k.checksum, k.initial)
	}
	return nil
}
