package npb

import (
	"testing"

	"hugeomp/internal/core"
	"hugeomp/internal/machine"
	"hugeomp/internal/stats"
)

// TestHeadlineShapeBandsClassW locks in the paper's Figure 4 shape at class
// W: the large-page gains of the five applications at 4 threads on the
// Opteron must stay within bands around the paper's reported values
// (CG ~25%, SP ~20%, MG ~17%, BT ~0, FT ~0). A cost-model or kernel change
// that silently breaks the reproduction fails here.
func TestHeadlineShapeBandsClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W sweep in -short mode")
	}
	bands := map[string][2]float64{ // min%, max%
		"CG": {15, 40},
		"SP": {8, 32},
		"MG": {8, 32},
		"BT": {-3, 8},
		"FT": {-3, 14},
	}
	gains := map[string]float64{}
	for _, name := range Names() {
		var secs [2]float64
		for i, policy := range []core.PagePolicy{core.Policy4K, core.Policy2M} {
			k, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(k, RunConfig{
				Model: machine.Opteron270(), Threads: 4, Policy: policy, Class: ClassW,
			})
			if err != nil {
				t.Fatal(err)
			}
			secs[i] = res.Seconds
		}
		gain := stats.ImprovementPct(secs[0], secs[1])
		gains[name] = gain
		b := bands[name]
		if gain < b[0] || gain > b[1] {
			t.Errorf("%s: 2MB gain %.1f%% outside band [%.0f%%, %.0f%%]", name, gain, b[0], b[1])
		}
	}
	// Relative ordering: the gaining group clearly beats the flat group.
	for _, big := range []string{"CG", "SP", "MG"} {
		for _, flat := range []string{"BT", "FT"} {
			if gains[big] <= gains[flat] {
				t.Errorf("%s gain (%.1f%%) should exceed %s gain (%.1f%%)",
					big, gains[big], flat, gains[flat])
			}
		}
	}
}

// TestXeonDegrades4To8ClassW locks in the paper's SMT scalability finding.
func TestXeonDegrades4To8ClassW(t *testing.T) {
	if testing.Short() {
		t.Skip("class W sweep in -short mode")
	}
	for _, name := range []string{"SP", "MG"} {
		var secs [2]float64
		for i, threads := range []int{4, 8} {
			k, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(k, RunConfig{
				Model: machine.XeonHT(), Threads: threads, Policy: core.Policy4K, Class: ClassW,
			})
			if err != nil {
				t.Fatal(err)
			}
			secs[i] = res.Seconds
		}
		if secs[1] <= secs[0] {
			t.Errorf("%s: 8 threads (%.4fs) faster than 4 (%.4fs); flush-on-switch SMT should degrade",
				name, secs[1], secs[0])
		}
	}
}
